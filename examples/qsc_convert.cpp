// qsc_convert: turn a text edge list into the mmap-able qsc-bin v1
// container that Compressor::FromFile serves zero-copy (README "Serving a
// SNAP graph", docs/FORMATS.md).
//
//   $ ./qsc_convert <input.txt> <output.qscbin> [--undirected]
//
// Two input dialects, auto-detected:
//
//   * the repo's own WriteEdgeList format — a "# nodes <n> directed <0|1>"
//     header line, then "src dst weight" lines (read via ReadEdgeList; the
//     header's directedness wins, --undirected is rejected);
//   * a raw SNAP-style edge list — '#' comment lines anywhere, then one
//     "src dst [weight]" pair per line with arbitrary non-negative i64
//     ids. Ids are compacted to [0, n) in first-appearance order, weight
//     defaults to 1, duplicate pairs sum their weights. Directed by
//     default; pass --undirected for files that list each edge once.

#include <cctype>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "qsc/graph/graph.h"
#include "qsc/graph/io.h"
#include "qsc/util/status.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.txt> <output.qscbin> [--undirected]\n",
               argv0);
  return 2;
}

// True when the file opens with the WriteEdgeList header (possibly after
// blank lines): "# nodes <n> directed <0|1>".
bool HasEdgeListHeader(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  char line[256];
  bool has_header = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    const char* p = line;
    while (std::isspace(static_cast<unsigned char>(*p))) ++p;
    if (*p == '\0') continue;
    has_header = std::strncmp(p, "# nodes ", 8) == 0;
    break;
  }
  std::fclose(f);
  return has_header;
}

// Parses the SNAP-style dialect: "src dst [weight]" with arbitrary ids.
qsc::StatusOr<qsc::Graph> ReadSnapStyle(const std::string& path,
                                        bool undirected) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return qsc::Status::NotFound("cannot open " + path);
  }
  std::unordered_map<int64_t, qsc::NodeId> remap;
  std::vector<qsc::EdgeTriple> edges;
  char line[512];
  int64_t line_no = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    const char* p = line;
    while (std::isspace(static_cast<unsigned char>(*p))) ++p;
    if (*p == '\0' || *p == '#') continue;
    int64_t src_id = 0, dst_id = 0;
    double weight = 1.0;
    const int fields =
        std::sscanf(p, "%" SCNd64 " %" SCNd64 " %lf", &src_id, &dst_id,
                    &weight);
    if (fields < 2) {
      std::fclose(f);
      return qsc::Status::InvalidArgument(
          path + " line " + std::to_string(line_no) +
          ": expected \"src dst [weight]\"");
    }
    if (fields < 3) weight = 1.0;
    const auto intern = [&remap](int64_t id) {
      const auto [it, inserted] =
          remap.try_emplace(id, static_cast<qsc::NodeId>(remap.size()));
      (void)inserted;
      return it->second;
    };
    edges.push_back({intern(src_id), intern(dst_id), weight});
  }
  std::fclose(f);
  return qsc::Graph::FromEdges(static_cast<qsc::NodeId>(remap.size()), edges,
                               undirected);
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, output;
  bool undirected = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--undirected") == 0) {
      undirected = true;
    } else if (input.empty()) {
      input = argv[i];
    } else if (output.empty()) {
      output = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (input.empty() || output.empty()) return Usage(argv[0]);

  qsc::StatusOr<qsc::Graph> graph = qsc::Status::Internal("unreached");
  if (HasEdgeListHeader(input)) {
    if (undirected) {
      std::fprintf(stderr,
                   "--undirected conflicts with the edge-list header "
                   "(directedness comes from the file)\n");
      return 2;
    }
    graph = qsc::ReadEdgeList(input);
  } else {
    graph = ReadSnapStyle(input, undirected);
  }
  if (!graph.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }

  const qsc::Status written = qsc::WriteBinary(*graph, output);
  if (!written.ok()) {
    std::fprintf(stderr, "write failed: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf(
      "%s: %lld nodes, %lld arcs (%s) -> %s\n"
      "serve it without materializing:\n"
      "  auto session = qsc::Compressor::FromFile(\"%s\");\n",
      input.c_str(), static_cast<long long>(graph->num_nodes()),
      static_cast<long long>(graph->num_arcs()),
      graph->undirected() ? "undirected" : "directed", output.c_str(),
      output.c_str());
  return 0;
}
