// Quickstart: compress once, query many times.
//
//   $ ./quickstart
//
// Walks through the session API on Zachary's karate club (the paper's
// Figure 1): a qsc::Compressor owns the graph and a cache of colorings, so
// asking for more colors *continues* the cached refinement (the anytime
// property) and repeated queries are served from the cache. The exact
// stable coloring is shown for contrast.

#include <cstdio>

#include "qsc/api/compressor.h"
#include "qsc/coloring/q_error.h"
#include "qsc/coloring/reduced_graph.h"
#include "qsc/coloring/stable.h"
#include "qsc/graph/datasets.h"

int main() {
  qsc::Graph graph = qsc::KarateClub();
  std::printf("karate club: %d nodes, %lld edges\n", graph.num_nodes(),
              static_cast<long long>(graph.num_edges()));

  // 1. The exact stable coloring (1-WL): lossless but barely compresses.
  const qsc::Partition stable = qsc::StableColoring(graph);
  std::printf("stable coloring:        %d colors (%.0f%% of nodes)\n",
              stable.num_colors(),
              100.0 * stable.num_colors() / graph.num_nodes());

  // 2. The session: compress once ...
  qsc::Compressor session(std::move(graph));
  qsc::QueryOptions query;
  query.max_colors = 6;  // paper Figure 1b
  const auto quasi = session.Coloring(query);
  if (!quasi.ok()) {
    std::fprintf(stderr, "coloring failed: %s\n",
                 quasi.status().ToString().c_str());
    return 1;
  }
  const qsc::Partition& p6 = *quasi->coloring;
  const qsc::QErrorStats q = qsc::ComputeQError(session.graph(), p6);
  std::printf("quasi-stable coloring:  %d colors, max q = %.1f, mean q = %.2f\n",
              p6.num_colors(), q.max_q, q.mean_q);

  // 3. ... then query many times. A finer budget continues the cached
  // refinement instead of recoloring from scratch (bit-identical to a
  // fresh 12-color run), and the telemetry shows the amortization.
  query.max_colors = 12;
  const auto finer = session.Coloring(query);
  std::printf("refined to %d colors:   cache %s, %lld incremental splits\n",
              finer->coloring->num_colors(),
              finer->telemetry.coloring_cache_hit ? "hit" : "miss",
              static_cast<long long>(finer->telemetry.coloring_splits));

  // 4. Color membership: the club leaders (nodes 1 and 34 in 1-based ids)
  // separate from the rank-and-file.
  std::printf("leader colors: node 1 -> color %d (size %lld), "
              "node 34 -> color %d (size %lld)\n",
              p6.ColorOf(0),
              static_cast<long long>(p6.ColorSize(p6.ColorOf(0))),
              p6.ColorOf(33),
              static_cast<long long>(p6.ColorSize(p6.ColorOf(33))));

  // 5. The reduced graph: one node per color.
  const qsc::Graph reduced =
      qsc::BuildReducedGraph(session.graph(), p6, qsc::ReducedWeight::kSum);
  std::printf("reduced graph: %d nodes, %lld arcs (compression %.1f:1)\n",
              reduced.num_nodes(),
              static_cast<long long>(reduced.num_arcs()),
              p6.CompressionRatio());

  const qsc::CompressorStats& stats = session.stats();
  std::printf("session: %lld coloring lookups, %lld cache hits\n",
              static_cast<long long>(stats.coloring.lookups),
              static_cast<long long>(stats.coloring.hits));
  return 0;
}
