// Quickstart: color a real graph, inspect the compression, and build the
// reduced graph.
//
//   $ ./quickstart
//
// Walks through the core API on Zachary's karate club (the paper's
// Figure 1): stable coloring (exact, many colors) vs quasi-stable coloring
// (approximate, few colors), the q-error of the result, and the reduced
// graph.

#include <cstdio>

#include "qsc/coloring/q_error.h"
#include "qsc/coloring/reduced_graph.h"
#include "qsc/coloring/rothko.h"
#include "qsc/coloring/stable.h"
#include "qsc/graph/datasets.h"

int main() {
  const qsc::Graph graph = qsc::KarateClub();
  std::printf("karate club: %d nodes, %lld edges\n", graph.num_nodes(),
              static_cast<long long>(graph.num_edges()));

  // 1. The exact stable coloring (1-WL): lossless but barely compresses.
  const qsc::Partition stable = qsc::StableColoring(graph);
  std::printf("stable coloring:        %d colors (%.0f%% of nodes)\n",
              stable.num_colors(),
              100.0 * stable.num_colors() / graph.num_nodes());

  // 2. A quasi-stable coloring with 6 colors (paper Figure 1b).
  qsc::RothkoOptions options;
  options.max_colors = 6;
  const qsc::Partition quasi = qsc::RothkoColoring(graph, options);
  const qsc::QErrorStats q = qsc::ComputeQError(graph, quasi);
  std::printf("quasi-stable coloring:  %d colors, max q = %.1f, mean q = %.2f\n",
              quasi.num_colors(), q.max_q, q.mean_q);

  // 3. Color membership: the club leaders (nodes 1 and 34 in 1-based ids)
  // separate from the rank-and-file.
  std::printf("leader colors: node 1 -> color %d (size %lld), "
              "node 34 -> color %d (size %lld)\n",
              quasi.ColorOf(0),
              static_cast<long long>(quasi.ColorSize(quasi.ColorOf(0))),
              quasi.ColorOf(33),
              static_cast<long long>(quasi.ColorSize(quasi.ColorOf(33))));

  // 4. The reduced graph: one node per color.
  const qsc::Graph reduced =
      qsc::BuildReducedGraph(graph, quasi, qsc::ReducedWeight::kSum);
  std::printf("reduced graph: %d nodes, %lld arcs (compression %.1f:1)\n",
              reduced.num_nodes(),
              static_cast<long long>(reduced.num_arcs()),
              quasi.CompressionRatio());
  return 0;
}
