// Max-flow approximation on a vision-style grid network (paper Sec 4.2 /
// 6.1): exact push-relabel vs the coloring-based upper bound at several
// color budgets.
//
//   $ ./maxflow_approx [width] [height]

#include <cstdio>
#include <cstdlib>

#include "qsc/flow/approx_flow.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"
#include "qsc/util/stats.h"
#include "qsc/util/timer.h"

int main(int argc, char** argv) {
  const int width = argc > 1 ? std::atoi(argv[1]) : 80;
  const int height = argc > 2 ? std::atoi(argv[2]) : 40;
  qsc::Rng rng(7);
  const qsc::FlowInstance instance =
      qsc::SegmentationGridNetwork(width, height, 3, rng);
  std::printf("segmentation network %dx%d: %d nodes, %lld arcs\n", width,
              height, instance.graph.num_nodes(),
              static_cast<long long>(instance.graph.num_arcs()));

  qsc::WallTimer timer;
  const double exact = qsc::MaxFlowPushRelabel(instance.graph,
                                               instance.source,
                                               instance.sink);
  const double exact_seconds = timer.ElapsedSeconds();
  std::printf("exact max-flow (push-relabel): %.1f  [%.3fs]\n\n", exact,
              exact_seconds);

  std::printf("%8s  %12s  %10s  %10s\n", "colors", "approx", "rel.err",
              "time");
  for (qsc::ColorId colors : {4, 8, 16, 32, 64}) {
    qsc::FlowApproxOptions options;
    options.rothko.max_colors = colors;
    timer.Reset();
    const qsc::FlowApproxResult approx = qsc::ApproximateMaxFlow(
        instance.graph, instance.source, instance.sink, options);
    const double total = timer.ElapsedSeconds();
    std::printf("%8d  %12.1f  %10.3f  %9.3fs\n", approx.num_colors,
                approx.upper_bound,
                qsc::RelativeError(exact, approx.upper_bound), total);
  }
  std::printf("\nthe approximation is an upper bound (Theorem 6) and\n"
              "tightens as the color budget grows.\n");
  return 0;
}
