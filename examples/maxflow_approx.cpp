// Max-flow approximation on a vision-style grid network (paper Sec 4.2 /
// 6.1), compress-once/query-many style: one qsc::Compressor session serves
// the whole budget sweep, so each finer budget continues the cached
// coloring instead of recoloring from scratch. The results are
// bit-identical to cold ApproximateMaxFlow calls at each budget.
//
//   $ ./maxflow_approx [width] [height]

#include <cstdio>
#include <cstdlib>

#include "qsc/api/compressor.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"
#include "qsc/util/stats.h"
#include "qsc/util/timer.h"

int main(int argc, char** argv) {
  const int width = argc > 1 ? std::atoi(argv[1]) : 80;
  const int height = argc > 2 ? std::atoi(argv[2]) : 40;
  qsc::Rng rng(7);
  qsc::FlowInstance instance =
      qsc::SegmentationGridNetwork(width, height, 3, rng);
  std::printf("segmentation network %dx%d: %d nodes, %lld arcs\n", width,
              height, instance.graph.num_nodes(),
              static_cast<long long>(instance.graph.num_arcs()));

  qsc::WallTimer timer;
  const double exact = qsc::MaxFlowPushRelabel(instance.graph,
                                               instance.source,
                                               instance.sink);
  const double exact_seconds = timer.ElapsedSeconds();
  std::printf("exact max-flow (push-relabel): %.1f  [%.3fs]\n\n", exact,
              exact_seconds);

  qsc::Compressor session(std::move(instance.graph));

  std::printf("%8s  %12s  %10s  %10s  %8s  %8s\n", "colors", "approx",
              "rel.err", "time", "cache", "splits");
  for (qsc::ColorId colors : {4, 8, 16, 32, 64}) {
    qsc::QueryOptions query;
    query.max_colors = colors;
    timer.Reset();
    const auto approx =
        session.MaxFlow(instance.source, instance.sink, query);
    const double total = timer.ElapsedSeconds();
    if (!approx.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   approx.status().ToString().c_str());
      return 1;
    }
    std::printf("%8d  %12.1f  %10.3f  %9.3fs  %8s  %8lld\n",
                approx->num_colors, approx->upper_bound,
                qsc::RelativeError(exact, approx->upper_bound), total,
                approx->telemetry.coloring_cache_hit ? "hit" : "miss",
                static_cast<long long>(approx->telemetry.coloring_splits));
  }
  std::printf("\nthe approximation is an upper bound (Theorem 6) that\n"
              "tightens as the color budget grows; after the first query\n"
              "every budget resumes the cached refinement (cache column).\n");
  return 0;
}
