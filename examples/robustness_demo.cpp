// Robustness to perturbation (paper Figure 2): a synthetic graph with a
// compact 100-color stable coloring is perturbed with random edges; the
// stable coloring shatters while the q-stable coloring barely grows. Each
// noisy graph gets its own qsc::Compressor session (a session is bound to
// one graph; perturbation produces a *new* graph).
//
//   $ ./robustness_demo

#include <cstdio>

#include "qsc/api/compressor.h"
#include "qsc/coloring/stable.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/perturb.h"
#include "qsc/util/random.h"

int main() {
  qsc::Rng rng(31);
  const qsc::Graph base = qsc::BlockBiregularGraph(100, 10, 216, rng);
  std::printf("synthetic graph: %d nodes, %lld edges "
              "(paper Figure 2: |V|=1000, |E|=21600)\n\n",
              base.num_nodes(), static_cast<long long>(base.num_edges()));

  std::printf("%12s  %14s  %16s\n", "added edges", "stable colors",
              "q-stable colors");
  for (int added : {0, 50, 100, 150, 200, 250, 300}) {
    qsc::Graph noisy =
        added == 0 ? base : qsc::AddRandomEdges(base, added, rng);
    const qsc::ColorId stable = qsc::StableColoring(noisy).num_colors();

    qsc::Compressor session(std::move(noisy));
    qsc::QueryOptions query;
    query.max_colors = 1000;
    query.q_tolerance = 4.0;  // paper uses q = 4 in Figure 2
    const auto quasi = session.Coloring(query);
    if (!quasi.ok()) {
      std::fprintf(stderr, "coloring failed: %s\n",
                   quasi.status().ToString().c_str());
      return 1;
    }
    std::printf("%12d  %14d  %16d\n", added, stable,
                quasi->coloring->num_colors());
  }
  std::printf("\nstable coloring degenerates toward one color per node;\n"
              "the q-stable coloring absorbs the noise (paper Sec 6.3).\n");
  return 0;
}
