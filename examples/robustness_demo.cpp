// Robustness to perturbation (paper Figure 2): a synthetic graph with a
// compact 100-color stable coloring is perturbed with random edges; the
// stable coloring shatters while the q-stable coloring barely grows.
//
//   $ ./robustness_demo

#include <cstdio>

#include "qsc/coloring/rothko.h"
#include "qsc/coloring/stable.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/perturb.h"
#include "qsc/util/random.h"

int main() {
  qsc::Rng rng(31);
  const qsc::Graph base = qsc::BlockBiregularGraph(100, 10, 216, rng);
  std::printf("synthetic graph: %d nodes, %lld edges "
              "(paper Figure 2: |V|=1000, |E|=21600)\n\n",
              base.num_nodes(), static_cast<long long>(base.num_edges()));

  std::printf("%12s  %14s  %16s\n", "added edges", "stable colors",
              "q-stable colors");
  for (int added : {0, 50, 100, 150, 200, 250, 300}) {
    const qsc::Graph noisy =
        added == 0 ? base : qsc::AddRandomEdges(base, added, rng);
    const qsc::ColorId stable = qsc::StableColoring(noisy).num_colors();

    qsc::RothkoOptions options;
    options.max_colors = 1000;
    options.q_tolerance = 4.0;  // paper uses q = 4 in Figure 2
    const qsc::ColorId quasi =
        qsc::RothkoColoring(noisy, options).num_colors();
    std::printf("%12d  %14d  %16d\n", added, stable, quasi);
  }
  std::printf("\nstable coloring degenerates toward one color per node;\n"
              "the q-stable coloring absorbs the noise (paper Sec 6.3).\n");
  return 0;
}
