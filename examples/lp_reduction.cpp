// LP dimensionality reduction (paper Sec 4.1, Figure 3): walks through the
// paper's exact 5x3 example, then reduces a larger synthetic QAP-like LP at
// several color budgets and compares against the exact optimum.
//
//   $ ./lp_reduction

#include <cstdio>

#include "qsc/lp/generators.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/stats.h"
#include "qsc/util/timer.h"

int main() {
  // Part 1: the paper's Figure 3 example.
  const qsc::LpProblem example = qsc::Figure3Lp();
  const qsc::LpResult exact_example = qsc::SolveSimplex(example);
  std::printf("Figure 3 LP (5x3): exact optimum %.3f (paper: 128.157)\n",
              exact_example.objective);

  qsc::LpReduceOptions fig3;
  fig3.max_colors = 6;  // 2 row colors + 2 col colors + 2 pinned
  const qsc::ReducedLp reduced_example = qsc::ReduceLp(example, fig3);
  const qsc::LpResult red_result = qsc::SolveSimplex(reduced_example.lp);
  std::printf("  reduced to %dx%d with q = %.1f: optimum %.3f "
              "(paper: 130.199)\n\n",
              reduced_example.lp.num_rows, reduced_example.lp.num_cols,
              reduced_example.max_q, red_result.objective);

  // Part 2: a qap15-like block LP.
  const qsc::LpProblem lp = qsc::MakeQapLikeLp(10, 3);
  std::printf("QAP-like LP: %d rows, %d cols, %lld nonzeros\n", lp.num_rows,
              lp.num_cols, static_cast<long long>(lp.NumNonzeros()));
  qsc::WallTimer timer;
  const qsc::LpResult exact = qsc::SolveSimplex(lp);
  const double exact_seconds = timer.ElapsedSeconds();
  std::printf("exact optimum %.2f  [%.3fs]\n\n", exact.objective,
              exact_seconds);

  std::printf("%8s  %10s  %10s  %10s  %10s\n", "colors", "reduced",
              "objective", "rel.err", "time");
  for (qsc::ColorId colors : {8, 16, 32, 64}) {
    qsc::LpReduceOptions options;
    options.max_colors = colors;
    timer.Reset();
    const qsc::ReducedLp reduced = qsc::ReduceLp(lp, options);
    const qsc::LpResult result = qsc::SolveSimplex(reduced.lp);
    const double seconds = timer.ElapsedSeconds();
    char shape[32];
    std::snprintf(shape, sizeof(shape), "%dx%d", reduced.lp.num_rows,
                  reduced.lp.num_cols);
    std::printf("%8d  %10s  %10.2f  %10.3f  %9.3fs\n", colors, shape,
                result.objective,
                qsc::RelativeError(exact.objective, result.objective),
                seconds);
  }
  std::printf("\nTheorem 2: the reduced optimum converges to the true "
              "optimum as q -> 0.\n");
  return 0;
}
