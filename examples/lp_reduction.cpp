// LP dimensionality reduction (paper Sec 4.1, Figure 3) through the
// session API: one LP-only qsc::Compressor serves the paper's exact 5x3
// example and then sweeps a larger synthetic QAP-like LP over ascending
// color budgets — each budget resumes the cached matrix-graph coloring
// (Rothko as a co-routine) instead of recoloring from scratch.
//
//   $ ./lp_reduction

#include <cstdio>

#include "qsc/api/compressor.h"
#include "qsc/lp/generators.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/stats.h"
#include "qsc/util/timer.h"

int main() {
  qsc::Compressor session;  // LP-only session: no graph needed

  // Part 1: the paper's Figure 3 example.
  const qsc::LpProblem example = qsc::Figure3Lp();
  const qsc::LpResult exact_example = qsc::SolveSimplex(example);
  std::printf("Figure 3 LP (5x3): exact optimum %.3f (paper: 128.157)\n",
              exact_example.objective);

  qsc::QueryOptions fig3;
  fig3.max_colors = 6;  // 2 row colors + 2 col colors + 2 pinned
  const auto reduced_example = session.SolveLp(example, fig3);
  if (!reduced_example.ok()) {
    std::fprintf(stderr, "SolveLp failed: %s\n",
                 reduced_example.status().ToString().c_str());
    return 1;
  }
  std::printf("  reduced to %dx%d with q = %.1f: optimum %.3f "
              "(paper: 130.199)\n\n",
              reduced_example->reduced.lp.num_rows,
              reduced_example->reduced.lp.num_cols,
              reduced_example->reduced.max_q,
              reduced_example->solution.objective);

  // Part 2: a qap15-like block LP, swept budget by budget on one cached
  // matrix coloring.
  const qsc::LpProblem lp = qsc::MakeQapLikeLp(10, 3);
  std::printf("QAP-like LP: %d rows, %d cols, %lld nonzeros\n", lp.num_rows,
              lp.num_cols, static_cast<long long>(lp.NumNonzeros()));
  qsc::WallTimer timer;
  const qsc::LpResult exact = qsc::SolveSimplex(lp);
  const double exact_seconds = timer.ElapsedSeconds();
  std::printf("exact optimum %.2f  [%.3fs]\n\n", exact.objective,
              exact_seconds);

  std::printf("%8s  %10s  %10s  %10s  %10s  %8s\n", "colors", "reduced",
              "objective", "rel.err", "time", "cache");
  for (qsc::ColorId colors : {8, 16, 32, 64}) {
    qsc::QueryOptions query;
    query.max_colors = colors;
    timer.Reset();
    const auto result = session.SolveLp(lp, query);
    const double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "SolveLp failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    char shape[32];
    std::snprintf(shape, sizeof(shape), "%dx%d", result->reduced.lp.num_rows,
                  result->reduced.lp.num_cols);
    std::printf("%8d  %10s  %10.2f  %10.3f  %9.3fs  %8s\n", colors, shape,
                result->solution.objective,
                qsc::RelativeError(exact.objective,
                                   result->solution.objective),
                seconds,
                result->telemetry.coloring_cache_hit ? "hit" : "miss");
  }
  std::printf("\nTheorem 2: the reduced optimum converges to the true "
              "optimum as q -> 0.\n");
  return 0;
}
