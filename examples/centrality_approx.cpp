// Betweenness-centrality approximation (paper Sec 4.3) through the session
// API: exact Brandes once, then one qsc::Compressor serves the color-pivot
// estimator at several budgets, resuming the cached alpha=beta=1 coloring
// at each step (scored by Spearman rank correlation).
//
//   $ ./centrality_approx [nodes]

#include <cstdio>
#include <cstdlib>

#include "qsc/api/compressor.h"
#include "qsc/centrality/brandes.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"
#include "qsc/util/stats.h"
#include "qsc/util/timer.h"

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 2000;
  qsc::Rng rng(11);
  qsc::Graph g = qsc::BarabasiAlbert(nodes, 3, rng);
  std::printf("scale-free graph: %d nodes, %lld edges\n", g.num_nodes(),
              static_cast<long long>(g.num_edges()));

  qsc::WallTimer timer;
  const std::vector<double> exact = qsc::BetweennessExact(g);
  const double exact_seconds = timer.ElapsedSeconds();
  std::printf("exact betweenness (Brandes): %.3fs\n\n", exact_seconds);

  qsc::Compressor session(std::move(g));

  std::printf("%8s  %12s  %10s  %9s  %8s\n", "colors", "spearman", "time",
              "speedup", "cache");
  for (qsc::ColorId colors : {8, 16, 32, 64, 128}) {
    qsc::QueryOptions query;
    query.max_colors = colors;
    timer.Reset();
    const auto approx = session.Centrality(query);
    const double seconds = timer.ElapsedSeconds();
    if (!approx.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   approx.status().ToString().c_str());
      return 1;
    }
    std::printf("%8d  %12.4f  %9.3fs  %8.1fx  %8s\n", approx->num_colors,
                qsc::SpearmanCorrelation(approx->scores, exact), seconds,
                exact_seconds / seconds,
                approx->telemetry.coloring_cache_hit ? "hit" : "miss");
  }
  std::printf("\nnodes sharing a color are assumed to contribute\n"
              "interchangeably as shortest-path sources; one Brandes pass\n"
              "per color replaces one pass per node.\n");
  return 0;
}
