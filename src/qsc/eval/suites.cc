#include "qsc/eval/suites.h"

#include <memory>
#include <utility>

#include "qsc/graph/datasets.h"
#include "qsc/lp/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace eval {

std::vector<NamedGraph> GeneralGraphSuite() {
  std::vector<NamedGraph> out;
  out.push_back({"karate", "Karate", KarateClub(), /*real=*/true});
  {
    Rng rng(101);
    // Route multiplicities are small integers; large weight noise would
    // drown the degree structure the coloring exploits.
    out.push_back({"openflights-sim", "OpenFlights",
                   WeightedHubGraph(3400, 6, 3, rng), false});
  }
  {
    Rng rng(102);
    out.push_back({"dblp-sim", "Dblp", BarabasiAlbert(30000, 3, rng), false});
  }
  return out;
}

std::vector<NamedGraph> CentralityGraphSuite() {
  struct Spec {
    const char* name;
    const char* paper;
    NodeId nodes;
    int64_t edges;
    double gamma;
    uint64_t seed;
  };
  // Paper sizes (scaled ~1/4 for the single-core exact baselines):
  // Astrophysics 18.7k/198k, Facebook 22.5k/171k, Deezer 28k/93k,
  // Enron 37k/184k, Epinions 76k/509k.
  static constexpr Spec kSpecs[] = {
      {"astroph-sim", "Astrophysics", 4500, 48000, 2.8, 201},
      {"facebook-sim", "Facebook", 5500, 42000, 2.7, 202},
      {"deezer-sim", "Deezer", 7000, 23000, 2.9, 203},
      {"enron-sim", "Enron", 9000, 45000, 2.5, 204},
      {"epinions-sim", "Epinions", 12000, 80000, 2.3, 205},
  };
  std::vector<NamedGraph> out;
  for (const Spec& s : kSpecs) {
    Rng rng(s.seed);
    out.push_back(
        {s.name, s.paper, PowerLawGraph(s.nodes, s.edges, s.gamma, rng),
         false});
  }
  return out;
}

std::vector<NamedFlow> FlowSuite() {
  struct Spec {
    const char* name;
    const char* paper;
    int32_t width;
    int32_t height;
    int32_t objects;
    uint64_t seed;
  };
  // Paper instances are 110k-3.5M node vision grids (stereo and cell
  // segmentation); the stand-ins keep the per-pixel terminal + smoothness
  // structure at 10k-70k pixels.
  static constexpr Spec kSpecs[] = {
      {"tsukuba0-sim", "Tsukuba0", 150, 75, 3, 301},
      {"tsukuba2-sim", "Tsukuba2", 150, 75, 3, 302},
      {"venus0-sim", "Venus0", 200, 95, 4, 303},
      {"venus1-sim", "Venus1", 200, 95, 4, 304},
      {"sawtooth0-sim", "Sawtooth0", 200, 90, 3, 305},
      {"sawtooth1-sim", "Sawtooth1", 200, 90, 3, 306},
      {"simcells-sim", "SimCells", 300, 130, 8, 307},
      {"cells-sim", "Cells", 400, 170, 12, 308},
  };
  std::vector<NamedFlow> out;
  for (const Spec& s : kSpecs) {
    Rng rng(s.seed);
    out.push_back({s.name, s.paper,
                   SegmentationGridNetwork(s.width, s.height, s.objects,
                                           rng)});
  }
  return out;
}

std::vector<NamedLp> LpSuite() {
  std::vector<NamedLp> out;
  out.push_back({"qap15-sim", "qap15", MakeQapLikeLp(14, 401)});
  out.push_back({"nug08-sim", "nug08-3rd", MakeNugentLikeLp(13, 402)});
  out.push_back(
      {"support-sim", "supportcase10", MakeWideSupportLp(12, 403)});
  out.push_back({"ex10-sim", "ex10", MakeTallLp(9, 404)});
  return out;
}

namespace {

void RegisterAll(WorkloadRegistry& registry) {
  // --- max-flow scenarios -------------------------------------------
  registry.Register(std::make_unique<FlowWorkload>(
      WorkloadInfo{"maxflow/seg-grid", Application::kMaxFlow,
                   "48x24 segmentation grid with 2 foreground objects "
                   "(small Tsukuba-style instance)",
                   {5, 10, 20, 35}},
      [](Rng& rng) { return SegmentationGridNetwork(48, 24, 2, rng); }));
  registry.Register(std::make_unique<FlowWorkload>(
      WorkloadInfo{"maxflow/grid", Application::kMaxFlow,
                   "16x8 4-connected grid network with random integer "
                   "capacities",
                   {5, 10, 20, 40}},
      [](Rng& rng) { return GridFlowNetwork(16, 8, 10, 30, rng); }));
  registry.Register(std::make_unique<FlowWorkload>(
      WorkloadInfo{"maxflow/layered", Application::kMaxFlow,
                   "Example-7 layered diagonal network (adversarial gap "
                   "between the Theorem-6 bounds); ignores the seed",
                   {4, 8, 14}},
      [](Rng&) { return LayeredDiagonalNetwork(6, 12); }));

  // --- LP scenarios -------------------------------------------------
  registry.Register(std::make_unique<LpWorkload>(
      WorkloadInfo{"lp/qap", Application::kLp,
                   "qap15-style assignment polytope stand-in, scale 5",
                   {8, 16, 30}},
      [](Rng& rng) { return MakeQapLikeLp(5, rng.Next()); }));
  registry.Register(std::make_unique<LpWorkload>(
      WorkloadInfo{"lp/block", Application::kLp,
                   "block-structured LP, 4x4 groups of 6, 5% noise",
                   {8, 16, 32}},
      [](Rng& rng) {
        BlockLpSpec spec;
        spec.num_row_groups = 4;
        spec.num_col_groups = 4;
        spec.rows_per_group = 6;
        spec.cols_per_group = 6;
        spec.seed = rng.Next();
        return MakeBlockLp(spec);
      }));
  registry.Register(std::make_unique<LpWorkload>(
      WorkloadInfo{"lp/wide", Application::kLp,
                   "supportcase10-style wide LP (cols >> rows), scale 6",
                   {8, 16, 30}},
      [](Rng& rng) { return MakeWideSupportLp(6, rng.Next()); }));

  // --- centrality scenarios -----------------------------------------
  registry.Register(std::make_unique<CentralityWorkload>(
      WorkloadInfo{"centrality/powerlaw", Application::kCentrality,
                   "Chung-Lu power-law graph, 600 nodes / ~2400 edges, "
                   "gamma 2.6",
                   {10, 25, 50}},
      [](Rng& rng) { return PowerLawGraph(600, 2400, 2.6, rng); }));
  registry.Register(std::make_unique<CentralityWorkload>(
      WorkloadInfo{"centrality/ba", Application::kCentrality,
                   "Barabasi-Albert preferential attachment, 400 nodes, "
                   "3 edges per node",
                   {10, 25, 50}},
      [](Rng& rng) { return BarabasiAlbert(400, 3, rng); }));
  registry.Register(std::make_unique<CentralityWorkload>(
      WorkloadInfo{"centrality/karate", Application::kCentrality,
                   "Zachary's karate club (real dataset, Figure 1); "
                   "ignores the seed",
                   {4, 6, 10}},
      [](Rng&) { return KarateClub(); }));
}

}  // namespace

void RegisterBuiltinWorkloads() {
  static const bool registered = [] {
    RegisterAll(WorkloadRegistry::Global());
    return true;
  }();
  (void)registered;
}

}  // namespace eval
}  // namespace qsc
