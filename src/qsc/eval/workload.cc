#include "qsc/eval/workload.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "qsc/coloring/backend.h"
#include "qsc/eval/json.h"
#include "qsc/eval/pipelines.h"
#include "qsc/flow/dinic.h"
#include "qsc/flow/edmonds_karp.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/lp/interior_point.h"
#include "qsc/util/check.h"

namespace qsc {
namespace eval {

const char* ApplicationName(Application area) {
  switch (area) {
    case Application::kMaxFlow:
      return "maxflow";
    case Application::kLp:
      return "lp";
    case Application::kCentrality:
      return "centrality";
  }
  return "unknown";
}

const char* FlowSolverName(FlowSolver solver) {
  switch (solver) {
    case FlowSolver::kDinic:
      return "dinic";
    case FlowSolver::kEdmondsKarp:
      return "edmonds-karp";
    case FlowSolver::kPushRelabel:
      return "push-relabel";
  }
  return "unknown";
}

double SolveMaxFlowExact(FlowSolver solver, const Graph& g, NodeId source,
                         NodeId sink) {
  switch (solver) {
    case FlowSolver::kDinic:
      return MaxFlowDinic(g, source, sink);
    case FlowSolver::kEdmondsKarp:
      return MaxFlowEdmondsKarp(g, source, sink);
    case FlowSolver::kPushRelabel:
      return MaxFlowPushRelabel(g, source, sink);
  }
  QSC_CHECK(false);
  return 0.0;
}

const char* LpOracleName(LpOracle oracle) {
  switch (oracle) {
    case LpOracle::kSimplex:
      return "simplex";
    case LpOracle::kInteriorPoint:
      return "interior-point";
  }
  return "unknown";
}

LpResult SolveLpExact(LpOracle oracle, const LpProblem& lp) {
  switch (oracle) {
    case LpOracle::kSimplex:
      return SolveSimplex(lp);
    case LpOracle::kInteriorPoint: {
      const IpmResult ipm = SolveInteriorPoint(lp);
      LpResult out;
      out.status = ipm.status;
      out.objective = ipm.objective;
      out.x = ipm.x;
      out.iterations = ipm.iterations;
      return out;
    }
  }
  QSC_CHECK(false);
  return {};
}

namespace {

// Bitwise comparison that treats NaN == NaN (both "not applicable").
bool SameValue(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return a == b;
}

}  // namespace

bool MetricsEquivalent(const RunMetrics& a, const RunMetrics& b) {
  return a.color_budget == b.color_budget && a.num_colors == b.num_colors &&
         SameValue(a.max_q, b.max_q) &&
         SameValue(a.exact_value, b.exact_value) &&
         SameValue(a.approx_value, b.approx_value) &&
         SameValue(a.lower_bound, b.lower_bound) &&
         SameValue(a.relative_error, b.relative_error) &&
         SameValue(a.rank_correlation, b.rank_correlation);
}

void WriteResultJson(const WorkloadResult& result, JsonWriter& w) {
  w.BeginObject();
  w.KV("workload", result.workload);
  w.KV("area", ApplicationName(result.area));
  w.KV("seed", result.seed);
  w.KV("backend", result.backend.empty() ? std::string(kDefaultColoringBackend)
                                         : result.backend);
  w.Key("runs");
  w.BeginArray();
  for (const RunMetrics& m : result.runs) {
    w.BeginObject();
    w.KV("color_budget", m.color_budget);
    w.KV("num_colors", m.num_colors);
    w.Key("metrics");
    w.BeginObject();
    w.KV("max_q", m.max_q);
    w.KV("exact_value", m.exact_value);
    w.KV("approx_value", m.approx_value);
    w.KV("lower_bound", m.lower_bound);
    w.KV("relative_error", m.relative_error);
    w.KV("rank_correlation", m.rank_correlation);
    w.EndObject();
    w.Key("timing");
    w.BeginObject();
    w.KV("exact_seconds", m.exact_seconds);
    w.KV("approx_seconds", m.approx_seconds);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::vector<ColorId> NormalizeBudgets(std::vector<ColorId> budgets) {
  QSC_CHECK(!budgets.empty());
  std::sort(budgets.begin(), budgets.end());
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());
  return budgets;
}

std::vector<ColorId> Workload::BudgetsFor(const EvalOptions& options) const {
  return NormalizeBudgets(options.color_budgets.empty()
                              ? info_.default_budgets
                              : options.color_budgets);
}

FlowWorkload::FlowWorkload(WorkloadInfo info, Generator generator)
    : Workload(std::move(info)), generator_(std::move(generator)) {}

FlowInstance FlowWorkload::Instantiate(uint64_t seed) const {
  Rng rng(seed);
  return generator_(rng);
}

WorkloadResult FlowWorkload::Run(const EvalOptions& options) const {
  WorkloadResult result{name(), area(), options.seed, {}, options.backend};
  const FlowInstance instance = Instantiate(options.seed);
  result.runs = RunMaxFlowPipeline(instance, options, BudgetsFor(options));
  return result;
}

LpWorkload::LpWorkload(WorkloadInfo info, Generator generator)
    : Workload(std::move(info)), generator_(std::move(generator)) {}

LpProblem LpWorkload::Instantiate(uint64_t seed) const {
  Rng rng(seed);
  return generator_(rng);
}

WorkloadResult LpWorkload::Run(const EvalOptions& options) const {
  WorkloadResult result{name(), area(), options.seed, {}, options.backend};
  const LpProblem lp = Instantiate(options.seed);
  result.runs = RunLpPipeline(lp, options, BudgetsFor(options));
  return result;
}

CentralityWorkload::CentralityWorkload(WorkloadInfo info, Generator generator)
    : Workload(std::move(info)), generator_(std::move(generator)) {}

Graph CentralityWorkload::Instantiate(uint64_t seed) const {
  Rng rng(seed);
  return generator_(rng);
}

WorkloadResult CentralityWorkload::Run(const EvalOptions& options) const {
  WorkloadResult result{name(), area(), options.seed, {}, options.backend};
  const Graph g = Instantiate(options.seed);
  result.runs = RunCentralityPipeline(g, options, BudgetsFor(options));
  return result;
}

WorkloadRegistry& WorkloadRegistry::Global() {
  static WorkloadRegistry* registry = new WorkloadRegistry();
  return *registry;
}

void WorkloadRegistry::Register(std::unique_ptr<const Workload> workload) {
  QSC_CHECK(workload != nullptr);
  QSC_CHECK(Find(workload->name()) == nullptr);  // names are unique
  workloads_.push_back(std::move(workload));
}

const Workload* WorkloadRegistry::Find(const std::string& name) const {
  for (const auto& w : workloads_) {
    if (w->name() == name) return w.get();
  }
  return nullptr;
}

std::vector<const Workload*> WorkloadRegistry::List() const {
  std::vector<const Workload*> out;
  out.reserve(workloads_.size());
  for (const auto& w : workloads_) out.push_back(w.get());
  std::sort(out.begin(), out.end(),
            [](const Workload* a, const Workload* b) {
              return a->name() < b->name();
            });
  return out;
}

}  // namespace eval
}  // namespace qsc
