#include "qsc/eval/json.h"

#include <cmath>
#include <cstdio>

#include "qsc/util/check.h"

namespace qsc {
namespace eval {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  // Shortest representation that round-trips: try increasing precision.
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == value) break;
  }
  std::string out = buf;
  // "1e+06"-style exponents are valid JSON, but bare "inf"/"nan" never
  // reach here (filtered above).
  return out;
}

JsonWriter::JsonWriter(bool pretty) : pretty_(pretty) {}

void JsonWriter::Indent() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    QSC_CHECK(out_.empty());  // exactly one top-level value
    return;
  }
  if (stack_.back() == Frame::kObject) {
    QSC_CHECK(key_pending_);  // object members need a Key() first
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  Indent();
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
}

void JsonWriter::EndObject() {
  QSC_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  QSC_CHECK(!key_pending_);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) Indent();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
}

void JsonWriter::EndArray() {
  QSC_CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) Indent();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  QSC_CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  QSC_CHECK(!key_pending_);
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  Indent();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += pretty_ ? "\": " : "\":";
  key_pending_ = true;
}

void JsonWriter::Value(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Value(double value) {
  BeforeValue();
  out_ += JsonNumber(value);
}

void JsonWriter::Value(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Value(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

const std::string& JsonWriter::str() const {
  QSC_CHECK(stack_.empty());  // all containers closed
  return out_;
}

}  // namespace eval
}  // namespace qsc
