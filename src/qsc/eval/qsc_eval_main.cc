// qsc_eval: the unified evaluation CLI. Runs registered workloads through
// the shared "instance -> coloring -> application -> error vs. exact"
// pipelines and emits one JSON document with per-run metrics, so benchmark
// trajectories and regression baselines all come from one tool.
//
//   qsc_eval --list                      # registered workloads
//   qsc_eval                             # default trio, one per area
//   qsc_eval --all --seed=7 --check      # everything + invariant checks
//   qsc_eval --workload=lp/qap --colors=8,16,32 --lp-oracle=simplex
//
// Re-running with the same --seed reproduces identical metric values;
// only the "timing" objects differ between runs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "qsc/coloring/backend.h"

#include "qsc/eval/differential.h"
#include "qsc/eval/json.h"
#include "qsc/eval/suites.h"
#include "qsc/eval/workload.h"
#include "qsc/parallel/thread_pool.h"

namespace qsc {
namespace eval {
namespace {

constexpr const char* kDefaultWorkloads[] = {"maxflow/seg-grid", "lp/qap",
                                             "centrality/powerlaw"};

void PrintUsage(FILE* out) {
  std::fprintf(
      out,
      "usage: qsc_eval [options]\n"
      "  --list                 list registered workloads and exit\n"
      "  --all                  run every registered workload\n"
      "  --workload=NAME        run NAME (repeatable); default: %s %s %s\n"
      "  --seed=N               uint64 instance seed (default 1)\n"
      "  --colors=A,B,C         color-budget sweep (default: per workload)\n"
      "  --flow-solver=S        dinic | edmonds-karp | push-relabel\n"
      "  --lp-oracle=S          simplex | interior-point\n"
      "  --split-mean=S         arithmetic | geometric\n"
      "  --backend=A,B,C        coloring backends to sweep (registered\n"
      "                         names; default: rothko). Each backend runs\n"
      "                         every selected workload and gets its own\n"
      "                         Pareto front in the output\n"
      "  --threads=N            worker threads (metrics are identical for\n"
      "                         any N; default 1)\n"
      "  --flow-lower-bound     also compute the Theorem-6 c^1 bound\n"
      "  --check                run the differential invariant suite too\n"
      "  --compact              single-line JSON (default: pretty)\n",
      kDefaultWorkloads[0], kDefaultWorkloads[1], kDefaultWorkloads[2]);
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

std::vector<ColorId> ParseColorList(const std::string& csv) {
  std::vector<ColorId> out;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string token = csv.substr(pos, comma - pos);
    char* end = nullptr;
    const long value = std::strtol(token.c_str(), &end, 10);
    // A budget above the node count just refines to stability, but one
    // that cannot survive the ColorId cast (or trailing junk) is an error,
    // not something to truncate silently.
    if (token.empty() || *end != '\0' || value < 2 ||
        value > std::numeric_limits<ColorId>::max()) {
      std::fprintf(stderr, "qsc_eval: bad color budget '%s'\n", token.c_str());
      std::exit(2);
    }
    out.push_back(static_cast<ColorId>(value));
    pos = comma + 1;
  }
  if (out.empty()) {
    // An empty --colors= (e.g. from an unset shell variable) must not
    // silently fall back to the default sweep.
    std::fprintf(stderr, "qsc_eval: --colors needs at least one budget\n");
    std::exit(2);
  }
  return out;
}

std::vector<std::string> ParseBackendList(const std::string& csv) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    out.push_back(csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

// Canonicalizes and validates --backend values against the registry;
// exits like the other flag parsers on a name that cannot run.
std::vector<std::string> ResolveBackends(std::vector<std::string> raw) {
  ColoringBackendRegistry& registry = ColoringBackendRegistry::Global();
  if (raw.empty()) raw.push_back("");
  std::vector<std::string> out;
  for (const std::string& name : raw) {
    const StatusOr<std::string> canonical = CanonicalBackendName(name);
    if (!canonical.ok() || !registry.Contains(*canonical)) {
      std::string known;
      for (const std::string& n : registry.Names()) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      std::fprintf(stderr, "qsc_eval: unknown backend '%s' (registered: %s)\n",
                   name.c_str(), known.c_str());
      std::exit(2);
    }
    if (std::find(out.begin(), out.end(), *canonical) == out.end()) {
      out.push_back(*canonical);
    }
  }
  return out;
}

int ListWorkloads() {
  for (const Workload* w : WorkloadRegistry::Global().List()) {
    std::string budgets;
    for (const ColorId b : w->info().default_budgets) {
      if (!budgets.empty()) budgets += ",";
      budgets += std::to_string(b);
    }
    std::printf("%-22s %-11s colors=[%s]  %s\n", w->name().c_str(),
                ApplicationName(w->area()), budgets.c_str(),
                w->info().description.c_str());
  }
  return 0;
}

void WriteReportJson(const DifferentialReport& report,
                     const std::string& backend, JsonWriter& w) {
  w.BeginObject();
  w.KV("workload", report.workload);
  w.KV("area", ApplicationName(report.area));
  w.KV("backend", backend);
  w.KV("seed", report.seed);
  w.KV("checks", report.checks);
  w.KV("ok", report.ok());
  w.Key("violations");
  w.BeginArray();
  for (const InvariantViolation& v : report.violations) {
    w.BeginObject();
    w.KV("invariant", v.invariant);
    w.KV("detail", v.detail);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

int Main(int argc, char** argv) {
  RegisterBuiltinWorkloads();

  EvalOptions options;
  std::vector<std::string> names;
  std::vector<std::string> backends;
  bool list = false, all = false, run_checks = false, pretty = true;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--all") == 0) {
      all = true;
    } else if (std::strcmp(arg, "--check") == 0) {
      run_checks = true;
    } else if (std::strcmp(arg, "--compact") == 0) {
      pretty = false;
    } else if (std::strcmp(arg, "--flow-lower-bound") == 0) {
      options.compute_flow_lower_bound = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage(stdout);
      return 0;
    } else if (ParseFlag(arg, "--workload", &value)) {
      names.push_back(value);
    } else if (ParseFlag(arg, "--seed", &value)) {
      char* end = nullptr;
      options.seed = std::strtoull(value.c_str(), &end, 10);
      // strtoull wraps a leading '-' instead of failing; treat it as bad.
      if (value.empty() || value[0] == '-' || *end != '\0') {
        // A silently-misparsed seed would betray the reproducibility
        // contract; reject it like a bad color budget.
        std::fprintf(stderr, "qsc_eval: bad seed '%s'\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--colors", &value)) {
      options.color_budgets = ParseColorList(value);
    } else if (ParseFlag(arg, "--backend", &value)) {
      const std::vector<std::string> parsed = ParseBackendList(value);
      backends.insert(backends.end(), parsed.begin(), parsed.end());
    } else if (ParseFlag(arg, "--threads", &value)) {
      char* end = nullptr;
      const long threads = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || threads < 1) {
        std::fprintf(stderr, "qsc_eval: bad --threads '%s'\n", value.c_str());
        return 2;
      }
      SetDefaultPoolThreads(static_cast<int>(threads));
      options.pool = DefaultPool();
    } else if (ParseFlag(arg, "--flow-solver", &value)) {
      if (value == "dinic") {
        options.flow_solver = FlowSolver::kDinic;
      } else if (value == "edmonds-karp") {
        options.flow_solver = FlowSolver::kEdmondsKarp;
      } else if (value == "push-relabel") {
        options.flow_solver = FlowSolver::kPushRelabel;
      } else {
        std::fprintf(stderr, "qsc_eval: unknown flow solver '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--lp-oracle", &value)) {
      if (value == "simplex") {
        options.lp_oracle = LpOracle::kSimplex;
      } else if (value == "interior-point") {
        options.lp_oracle = LpOracle::kInteriorPoint;
      } else {
        std::fprintf(stderr, "qsc_eval: unknown LP oracle '%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (ParseFlag(arg, "--split-mean", &value)) {
      if (value == "arithmetic") {
        options.split_mean = RothkoOptions::SplitMean::kArithmetic;
      } else if (value == "geometric") {
        options.split_mean = RothkoOptions::SplitMean::kGeometric;
      } else {
        std::fprintf(stderr, "qsc_eval: unknown split mean '%s'\n",
                     value.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "qsc_eval: unknown argument '%s'\n", arg);
      PrintUsage(stderr);
      return 2;
    }
  }

  if (list) return ListWorkloads();

  backends = ResolveBackends(std::move(backends));

  const WorkloadRegistry& registry = WorkloadRegistry::Global();
  std::vector<const Workload*> selected;
  if (all) {
    selected = registry.List();
  } else {
    if (names.empty()) {
      names.assign(std::begin(kDefaultWorkloads), std::end(kDefaultWorkloads));
    }
    for (const std::string& name : names) {
      const Workload* w = registry.Find(name);
      if (w == nullptr) {
        std::fprintf(stderr,
                     "qsc_eval: unknown workload '%s' (try --list)\n",
                     name.c_str());
        return 2;
      }
      selected.push_back(w);
    }
  }

  JsonWriter json(pretty);
  json.BeginObject();
  json.KV("tool", "qsc_eval");
  json.KV("seed", options.seed);
  json.Key("options");
  json.BeginObject();
  json.KV("flow_solver", FlowSolverName(options.flow_solver));
  json.KV("lp_oracle", LpOracleName(options.lp_oracle));
  json.KV("split_mean",
          options.split_mean == RothkoOptions::SplitMean::kGeometric
              ? "geometric"
              : "arithmetic");
  json.KV("flow_lower_bound", options.compute_flow_lower_bound);
  json.Key("backends");
  json.BeginArray();
  for (const std::string& backend : backends) json.Value(backend);
  json.EndArray();
  json.EndObject();

  // Every (backend, workload) pair runs once; the flat "results" array
  // keeps the legacy per-run shape (each record carries its backend) and
  // "pareto" regroups the same sweeps as per-backend quality/cost fronts.
  std::vector<std::pair<std::string, std::vector<WorkloadResult>>> swept;
  json.Key("results");
  json.BeginArray();
  for (const std::string& backend : backends) {
    options.backend = backend;
    std::vector<WorkloadResult> results;
    results.reserve(selected.size());
    for (const Workload* w : selected) {
      results.push_back(w->Run(options));
      WriteResultJson(results.back(), json);
    }
    swept.emplace_back(backend, std::move(results));
  }
  json.EndArray();

  json.Key("pareto");
  json.BeginArray();
  for (const auto& [backend, results] : swept) {
    json.BeginObject();
    json.KV("backend", backend);
    json.Key("fronts");
    json.BeginArray();
    for (const WorkloadResult& r : results) {
      json.BeginObject();
      json.KV("workload", r.workload);
      json.KV("area", ApplicationName(r.area));
      json.Key("points");
      json.BeginArray();
      for (const RunMetrics& m : r.runs) {
        json.BeginObject();
        json.KV("colors", m.num_colors);
        json.KV("max_q", m.max_q);
        json.KV("relative_error", m.relative_error);
        json.KV("rank_correlation", m.rank_correlation);
        json.KV("approx_seconds", m.approx_seconds);
        json.EndObject();
      }
      json.EndArray();
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();

  bool checks_ok = true;
  if (run_checks) {
    // The runner re-instantiates each workload and re-runs the oracles
    // rather than reusing the results above — deliberate: the invariant
    // suite stays usable without a prior Run(), and the builtin scenarios
    // are small enough that the duplicated work is negligible.
    json.Key("differential");
    json.BeginArray();
    for (const std::string& backend : backends) {
      options.backend = backend;
      DifferentialRunner runner(options);
      for (const Workload* w : selected) {
        const DifferentialReport report = runner.Check(*w);
        checks_ok = checks_ok && report.ok();
        WriteReportJson(report, backend, json);
      }
    }
    json.EndArray();
  }
  json.EndObject();

  std::printf("%s\n", json.str().c_str());
  return checks_ok ? 0 : 1;
}

}  // namespace
}  // namespace eval
}  // namespace qsc

int main(int argc, char** argv) { return qsc::eval::Main(argc, argv); }
