// The evaluation harness's workload layer (ROADMAP "one place to add
// scenarios"). The paper's claims are all relative — a reduced-graph
// answer is judged against an exact solver under an error budget — so
// every experiment shares one pipeline shape:
//
//   instance (generator or dataset, keyed by a uint64 seed)
//     -> exact oracle (timed)
//     -> quasi-stable coloring at a sweep of color budgets
//     -> approximate solve per budget
//     -> error metrics (q-error, relative value error, rank correlation)
//
// A Workload packages the instance source and default sweep for one named
// scenario; the WorkloadRegistry makes scenarios addressable from the
// qsc_eval CLI, the bench binaries, and the differential test layer. All
// randomness flows through qsc::Rng seeded from EvalOptions::seed, so a
// (workload, seed, budgets) triple is bit-reproducible.

#ifndef QSC_EVAL_WORKLOAD_H_
#define QSC_EVAL_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "qsc/coloring/rothko.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/lp/model.h"
#include "qsc/lp/simplex.h"

namespace qsc {
namespace eval {

class JsonWriter;

// The three application areas of the paper's evaluation (Secs. 6-8).
enum class Application { kMaxFlow, kLp, kCentrality };
const char* ApplicationName(Application area);

// Exact max-flow oracles (paper Sec 6.1 baseline is push-relabel; the
// others serve as differential witnesses).
enum class FlowSolver { kDinic, kEdmondsKarp, kPushRelabel };
const char* FlowSolverName(FlowSolver solver);
double SolveMaxFlowExact(FlowSolver solver, const Graph& g, NodeId source,
                         NodeId sink);

// Exact LP oracles (the paper's baseline is an interior-point solver;
// simplex is the differential witness).
enum class LpOracle { kSimplex, kInteriorPoint };
const char* LpOracleName(LpOracle oracle);
LpResult SolveLpExact(LpOracle oracle, const LpProblem& lp);

// Cross-cutting run configuration. Everything that influences metric
// values is deterministic given this struct; wall-clock timings are the
// only nondeterministic outputs.
struct EvalOptions {
  uint64_t seed = 1;

  // Color budgets to sweep; empty means the workload's default sweep.
  std::vector<ColorId> color_budgets;

  FlowSolver flow_solver = FlowSolver::kPushRelabel;
  LpOracle lp_oracle = LpOracle::kInteriorPoint;

  // Split-mean rule for the colorings (paper Sec 5.2).
  RothkoOptions::SplitMean split_mean =
      RothkoOptions::SplitMean::kArithmetic;

  // Compression backend producing the colorings (coloring/backend.h); ""
  // means the default (rothko). Must canonicalize to a registered name —
  // the pipelines route it through the Compressor boundary, which
  // validates. Part of every metric value's provenance: different
  // backends give different colorings and therefore different metrics.
  std::string backend;

  // Also compute the Theorem-6 lower bound for max-flow workloads
  // (expensive: one maxUFlow bisection per color pair).
  bool compute_flow_lower_bound = false;

  // Optional worker pool for the pipeline sessions (qsc_eval --threads).
  // Not owned. Metric values are bit-identical for any pool size — the
  // qsc/parallel determinism contract — so this is pure wall-clock.
  ThreadPool* pool = nullptr;
};

// Metrics for one (instance, color budget) pipeline run. Fields that do
// not apply to an area are NaN and serialize to JSON null.
struct RunMetrics {
  ColorId color_budget = 0;  // requested budget
  ColorId num_colors = 0;    // achieved colors (LP: rows + cols + pinned)

  // Max q-error of the coloring (for LPs: of the extended-matrix graph).
  double max_q = 0.0;

  double exact_value = 0.0;   // oracle objective / flow value (NaN: n/a)
  double approx_value = 0.0;  // reduced-problem value (NaN: n/a)
  double lower_bound = 0.0;   // Theorem-6 flow lower bound (NaN unless on)

  // Paper error metrics: max(v/v^, v^/v) for flow and LP values, Spearman
  // rank correlation for centrality.
  double relative_error = 0.0;
  double rank_correlation = 0.0;

  // Wall-clock seconds; excluded from reproducibility comparisons.
  double exact_seconds = 0.0;
  double approx_seconds = 0.0;
};

// True iff every metric value (not timing) of `a` and `b` is bitwise
// identical; the reproducibility contract of a fixed (workload, seed).
bool MetricsEquivalent(const RunMetrics& a, const RunMetrics& b);

// Canonical budget sweep: sorted ascending, duplicates removed; aborts on
// an empty list. Shared by Workload::Run, the pipeline drivers, and the
// differential runner so every consumer agrees on the sweep.
std::vector<ColorId> NormalizeBudgets(std::vector<ColorId> budgets);

struct WorkloadResult {
  std::string workload;
  Application area = Application::kMaxFlow;
  uint64_t seed = 0;
  std::vector<RunMetrics> runs;  // one per budget, ascending
  // Coloring backend the runs used, as recorded from EvalOptions::backend
  // ("" = default; WriteResultJson serializes the canonical default name).
  std::string backend;
};

// Serializes `result` as one JSON object onto `w` (metrics and timings in
// separate sub-objects so reproducible fields are easy to diff).
void WriteResultJson(const WorkloadResult& result, JsonWriter& w);

// Description of a registered scenario.
struct WorkloadInfo {
  std::string name;  // "<area>/<scenario>", e.g. "maxflow/seg-grid"
  Application area = Application::kMaxFlow;
  std::string description;
  std::vector<ColorId> default_budgets;
};

// One named scenario. Concrete subclasses bind an instance generator; Run
// executes the full differential pipeline against the area's exact oracle.
class Workload {
 public:
  virtual ~Workload() = default;

  const WorkloadInfo& info() const { return info_; }
  const std::string& name() const { return info_.name; }
  Application area() const { return info_.area; }

  // Instantiates the scenario at options.seed and sweeps the pipeline over
  // the budgets (options.color_budgets or the default sweep), ascending.
  virtual WorkloadResult Run(const EvalOptions& options) const = 0;

 protected:
  explicit Workload(WorkloadInfo info) : info_(std::move(info)) {}

  // Budgets to use for `options`, sorted ascending.
  std::vector<ColorId> BudgetsFor(const EvalOptions& options) const;

 private:
  WorkloadInfo info_;
};

// Max-flow scenario: a generator producing a capacitated network from a
// seeded Rng. Dataset-style scenarios ignore the Rng.
class FlowWorkload : public Workload {
 public:
  using Generator = std::function<FlowInstance(Rng& rng)>;

  FlowWorkload(WorkloadInfo info, Generator generator);

  FlowInstance Instantiate(uint64_t seed) const;
  WorkloadResult Run(const EvalOptions& options) const override;

 private:
  Generator generator_;
};

class LpWorkload : public Workload {
 public:
  using Generator = std::function<LpProblem(Rng& rng)>;

  LpWorkload(WorkloadInfo info, Generator generator);

  LpProblem Instantiate(uint64_t seed) const;
  WorkloadResult Run(const EvalOptions& options) const override;

 private:
  Generator generator_;
};

class CentralityWorkload : public Workload {
 public:
  using Generator = std::function<Graph(Rng& rng)>;

  CentralityWorkload(WorkloadInfo info, Generator generator);

  Graph Instantiate(uint64_t seed) const;
  WorkloadResult Run(const EvalOptions& options) const override;

 private:
  Generator generator_;
};

// Process-wide name -> workload map. Registration is append-only; names
// must be unique.
class WorkloadRegistry {
 public:
  static WorkloadRegistry& Global();

  void Register(std::unique_ptr<const Workload> workload);

  // nullptr when absent.
  const Workload* Find(const std::string& name) const;

  // All workloads, sorted by name.
  std::vector<const Workload*> List() const;

 private:
  WorkloadRegistry() = default;
  std::vector<std::unique_ptr<const Workload>> workloads_;
};

}  // namespace eval
}  // namespace qsc

#endif  // QSC_EVAL_WORKLOAD_H_
