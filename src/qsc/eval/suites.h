// Named instance suites and the builtin workload registrations.
//
// The *suites* are the stand-ins for the paper's Table 2/3 datasets (see
// DESIGN.md §3), generated at their canonical seeds; the bench binaries
// draw their instances from here so the experiment index stays consistent.
// The *builtin workloads* are smaller seeded scenarios registered with the
// WorkloadRegistry for the qsc_eval CLI and the differential test layer —
// one or more per application area, fast enough to run in CI.

#ifndef QSC_EVAL_SUITES_H_
#define QSC_EVAL_SUITES_H_

#include <string>
#include <vector>

#include "qsc/eval/workload.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/lp/model.h"

namespace qsc {
namespace eval {

struct NamedGraph {
  std::string name;        // stand-in name (paper dataset it models)
  std::string paper_name;  // dataset in the paper's Table 2
  Graph graph;
  bool real = false;  // true only for the embedded karate club
};

// The "General evaluation" block of Table 2: Karate (real), OpenFlights
// and DBLP stand-ins.
std::vector<NamedGraph> GeneralGraphSuite();

// The "Centrality" block of Table 2: Astrophysics, Facebook, Deezer,
// Enron, Epinions stand-ins (power-law graphs with matched density).
std::vector<NamedGraph> CentralityGraphSuite();

struct NamedFlow {
  std::string name;
  std::string paper_name;
  FlowInstance instance;
};

// The "Maximum-flow" block of Table 2: vision-style grid networks standing
// in for Tsukuba/Venus/Sawtooth/SimCells/Cells.
std::vector<NamedFlow> FlowSuite();

struct NamedLp {
  std::string name;
  std::string paper_name;
  LpProblem lp;
};

// Table 3: qap15, nug08-3rd, supportcase10, ex10 stand-ins.
std::vector<NamedLp> LpSuite();

// Registers the builtin scenarios with WorkloadRegistry::Global().
// Idempotent; call before Find()/List().
void RegisterBuiltinWorkloads();

}  // namespace eval
}  // namespace qsc

#endif  // QSC_EVAL_SUITES_H_
