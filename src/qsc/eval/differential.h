// Differential testing layer: fans a workload instance through the
// approximate solvers AND their exact oracles and checks the paper's
// invariants rather than golden numbers, so every seeded instance is a test
// case. Checked per area:
//
//   max-flow   - Dinic, Edmonds-Karp and push-relabel agree; the min cut
//                certifies the flow (strong duality); the c^2 reduced-graph
//                flow upper-bounds the exact value at every budget and the
//                finest bound does not exceed the coarsest (anytime
//                improvement); the optional c^1 bound lower-bounds it
//                (Theorem 6).
//   LP         - simplex and interior-point agree on seeded feasible LPs;
//                LiftSolution round-trips the reduced objective into the
//                original objective exactly; at q = 0 the reduced optimum
//                equals the exact optimum (Theorem 1 — the direction the
//                paper guarantees), including at the full budget, which
//                must drive the matrix coloring stable. The q-error at
//                capped budget checkpoints is only checked for validity,
//                not monotonicity: a color cap can truncate a monotone
//                refinement step mid-recovery (see docs/TESTING.md).
//   centrality - the color-pivot estimator under the discrete coloring
//                degenerates to exact Brandes; Spearman's rho against the
//                exact scores is a valid correlation.
//
// All areas additionally check the selected compression backend's
// ColoringBackend contract on the instance (coloring/backend.h): Step()
// never increases CurrentMaxError(), every Step() adds colors, and
// replaying the same step sequence from the same initial partition lands
// on the identical partition (determinism / resume-equals-fresh). For the
// rothko backend the history() color counts are additionally checked. The
// backend under test comes from EvalOptions::backend; an unresolvable
// name is itself a reported violation.

#ifndef QSC_EVAL_DIFFERENTIAL_H_
#define QSC_EVAL_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qsc/dynamic/edit_stream.h"
#include "qsc/eval/workload.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/lp/model.h"

namespace qsc {
namespace eval {

// Knobs for DifferentialRunner::CheckDynamic: a seeded edit stream
// replayed over the instance graph, with the repair contract of
// dynamic/incremental.h under test.
struct DynamicCheckOptions {
  dynamic::EditStreamOptions stream;
  int64_t max_repair_splits = 256;
  // Tolerance of the coloring spec under test. > 0 enables the repair
  // path; 0 forces every batch onto the fallback, whose lazy recompute
  // must then be bitwise identical to from-scratch refinement.
  double q_tolerance = 1.0;
};

struct InvariantViolation {
  std::string invariant;  // short id, e.g. "flow/solver-agreement"
  std::string detail;     // human-readable evidence
};

struct DifferentialReport {
  std::string workload;
  Application area = Application::kMaxFlow;
  uint64_t seed = 0;
  int64_t checks = 0;  // individual assertions evaluated
  std::vector<InvariantViolation> violations;

  bool ok() const { return violations.empty(); }

  // "42 checks, 0 violations" or a newline-separated violation list; meant
  // for test failure messages and the CLI.
  std::string Summary() const;
};

class DifferentialRunner {
 public:
  explicit DifferentialRunner(EvalOptions options);

  // Instantiates `workload` at options.seed and runs its area's invariant
  // suite over the budget sweep.
  DifferentialReport Check(const Workload& workload) const;

  // Area entry points for instances that are not registered workloads.
  DifferentialReport CheckMaxFlow(const FlowInstance& instance,
                                  std::vector<ColorId> budgets) const;
  DifferentialReport CheckLp(const LpProblem& lp,
                             std::vector<ColorId> budgets) const;
  DifferentialReport CheckCentrality(const Graph& g,
                                     std::vector<ColorId> budgets) const;

  // Incremental-recoloring oracle (docs/DYNAMIC.md): replays the seeded
  // edit stream over `g` through an IncrementalRecolorer on the selected
  // backend and checks, at every checkpoint and every budget of the
  // options' sweep (ascending), the dynamic serving bound
  //     q_incremental <= max(q_scratch, q_tolerance)
  // against a fresh from-scratch refiner on the mutated graph — exactly,
  // not within a tolerance. Batches that fall back (and every batch at
  // q_tolerance = 0) must additionally reproduce the scratch partition
  // bit for bit at every budget.
  DifferentialReport CheckDynamic(const Graph& g,
                                  const DynamicCheckOptions& dyn) const;

 private:
  void CheckColoringAnytime(const Graph& g, double alpha, double beta,
                            DifferentialReport& report) const;

  EvalOptions options_;
};

}  // namespace eval
}  // namespace qsc

#endif  // QSC_EVAL_DIFFERENTIAL_H_
