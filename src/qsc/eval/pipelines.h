// The three "graph -> coloring -> application -> error vs. exact"
// pipeline drivers shared by Workload::Run, the bench binaries, and the
// differential layer. Each driver times the exact oracle once, then sweeps
// the coloring approximation over ascending color budgets through one
// qsc::Compressor session, so each budget *continues* the cached coloring
// (bit-identical to a fresh run per budget — the anytime property).
// approx_seconds is the incremental session cost of one budget (resume
// coloring + reduction + solve), comparable across areas; the sweep total
// is the compress-once-query-many cost of serving every budget.

#ifndef QSC_EVAL_PIPELINES_H_
#define QSC_EVAL_PIPELINES_H_

#include <vector>

#include "qsc/eval/workload.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/lp/model.h"

namespace qsc {
namespace eval {

// Exact flow via options.flow_solver; approximation via ApproximateMaxFlow
// (upper bound; Theorem-6 lower bound when options.compute_flow_lower_bound).
std::vector<RunMetrics> RunMaxFlowPipeline(const FlowInstance& instance,
                                           const EvalOptions& options,
                                           std::vector<ColorId> budgets);

// Exact LP via options.lp_oracle; approximation reduces the LP via
// q-stable coloring at each budget and solves the reduced LP with simplex.
std::vector<RunMetrics> RunLpPipeline(const LpProblem& lp,
                                      const EvalOptions& options,
                                      std::vector<ColorId> budgets);

// Exact betweenness via Brandes; approximation via the color-pivot
// estimator. rank_correlation is Spearman's rho against the exact scores.
std::vector<RunMetrics> RunCentralityPipeline(const Graph& g,
                                              const EvalOptions& options,
                                              std::vector<ColorId> budgets);

}  // namespace eval
}  // namespace qsc

#endif  // QSC_EVAL_PIPELINES_H_
