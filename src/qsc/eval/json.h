// Minimal streaming JSON writer for the evaluation harness. The eval CLI
// and the benchmark trajectories emit machine-readable per-run records;
// this writer guarantees two properties the harness relies on: output is
// always well-formed JSON, and a given double renders to the same text on
// every run (shortest round-trippable form), so equal metrics compare equal
// as strings.

#ifndef QSC_EVAL_JSON_H_
#define QSC_EVAL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qsc {
namespace eval {

// Escapes `s` for inclusion inside a JSON string literal (quotes excluded).
std::string JsonEscape(std::string_view s);

// Renders a double deterministically: shortest decimal form that
// round-trips ("%.17g" tightened), with NaN and infinities mapped to null
// (JSON has no encoding for them).
std::string JsonNumber(double value);

// Stack-based writer. Usage:
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("seed"); w.Value(uint64_t{42});
//   w.Key("runs"); w.BeginArray(); ... w.EndArray();
//   w.EndObject();
//   puts(w.str().c_str());
//
// Commas and (optional) indentation are inserted automatically. Structure
// errors (value without key inside an object, unbalanced End) abort via
// QSC_CHECK — emitting malformed JSON is a bug, not a data error.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty = false);

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(std::string_view key);

  void Value(std::string_view value);
  void Value(const char* value) { Value(std::string_view(value)); }
  void Value(double value);
  void Value(int64_t value);
  void Value(uint64_t value);
  void Value(int32_t value) { Value(static_cast<int64_t>(value)); }
  void Value(bool value);
  void Null();

  // Convenience: Key() + Value().
  template <typename T>
  void KV(std::string_view key, T value) {
    Key(key);
    Value(value);
  }

  // The serialized document; valid once all containers are closed.
  const std::string& str() const;

 private:
  enum class Frame { kObject, kArray };

  void BeforeValue();
  void Indent();

  bool pretty_;
  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
};

}  // namespace eval
}  // namespace qsc

#endif  // QSC_EVAL_JSON_H_
