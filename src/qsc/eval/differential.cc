#include "qsc/eval/differential.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <utility>

#include "qsc/api/compressor.h"
#include "qsc/centrality/brandes.h"
#include "qsc/centrality/color_pivot.h"
#include "qsc/coloring/backend.h"
#include "qsc/coloring/rothko.h"
#include "qsc/dynamic/incremental.h"
#include "qsc/flow/min_cut.h"
#include "qsc/lp/reduce.h"
#include "qsc/util/stats.h"

namespace qsc {
namespace eval {
namespace {

// Tolerance for "equal" double-precision objective values of magnitude v.
double EqTol(double v) { return 1e-9 * std::max(1.0, std::abs(v)); }

std::string Fmt(const char* format, double a, double b) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), format, a, b);
  return buf;
}

struct Checker {
  DifferentialReport* report;

  void Expect(bool condition, const char* invariant, std::string detail) {
    ++report->checks;
    if (!condition) report->violations.push_back({invariant, std::move(detail)});
  }
};

// Resolves a raw EvalOptions::backend to its registered canonical name;
// an unresolvable name is a reported violation, not an abort, so a bad
// --backend shows up in the differential report like any other finding.
bool ResolveBackendName(const std::string& raw, std::string* canonical,
                        Checker& check) {
  const StatusOr<std::string> name = CanonicalBackendName(raw);
  const bool ok =
      name.ok() && ColoringBackendRegistry::Global().Contains(*name);
  check.Expect(ok, "coloring/backend-registered",
               "'" + raw + "' does not name a registered coloring backend");
  if (ok) *canonical = *name;
  return ok;
}

// Borrows a caller-owned graph for a Compressor session (the aliasing
// shared_ptr constructor; the instance outlives the session here).
std::shared_ptr<const Graph> Borrow(const Graph& g) {
  return std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g);
}

// Budget-capped anytime refinement — the ColoringCache's up-budget loop.
void RefineTo(ColoringBackend& backend, ColorId budget) {
  while (backend.partition().num_colors() < budget && backend.Step(budget)) {
  }
}

bool SamePartition(const Partition& a, const Partition& b, NodeId n) {
  bool identical = a.num_colors() == b.num_colors();
  for (NodeId v = 0; identical && v < n; ++v) {
    identical = a.ColorOf(v) == b.ColorOf(v);
  }
  return identical;
}

}  // namespace

std::string DifferentialReport::Summary() const {
  if (ok()) {
    return std::to_string(checks) + " checks, 0 violations";
  }
  std::string out = std::to_string(violations.size()) + " violation(s) in " +
                    std::to_string(checks) + " checks:";
  for (const InvariantViolation& v : violations) {
    out += "\n  [" + v.invariant + "] " + v.detail;
  }
  return out;
}

DifferentialRunner::DifferentialRunner(EvalOptions options)
    : options_(std::move(options)) {}

DifferentialReport DifferentialRunner::Check(const Workload& workload) const {
  const std::vector<ColorId> budgets =
      NormalizeBudgets(options_.color_budgets.empty()
                           ? workload.info().default_budgets
                           : options_.color_budgets);
  DifferentialReport report;
  // Workload is open for subclassing, so an area() tag alone does not
  // prove the concrete type; a custom subclass we cannot instantiate is a
  // reported finding, not undefined behavior.
  if (const auto* flow = dynamic_cast<const FlowWorkload*>(&workload)) {
    report = CheckMaxFlow(flow->Instantiate(options_.seed), budgets);
  } else if (const auto* lp = dynamic_cast<const LpWorkload*>(&workload)) {
    report = CheckLp(lp->Instantiate(options_.seed), budgets);
  } else if (const auto* cent =
                 dynamic_cast<const CentralityWorkload*>(&workload)) {
    report = CheckCentrality(cent->Instantiate(options_.seed), budgets);
  } else {
    report.area = workload.area();
    report.seed = options_.seed;
    report.violations.push_back(
        {"differential/unsupported-workload",
         "workload '" + workload.name() +
             "' is not a Flow/Lp/CentralityWorkload; no instance to check"});
  }
  report.workload = workload.name();
  return report;
}

void DifferentialRunner::CheckColoringAnytime(
    const Graph& g, double alpha, double beta,
    DifferentialReport& report) const {
  Checker check{&report};
  std::string name;
  if (!ResolveBackendName(options_.backend, &name, check)) return;

  ColoringParams params;
  params.alpha = alpha;
  params.beta = beta;
  params.split_mean = options_.split_mean;
  ColoringBackendRegistry& registry = ColoringBackendRegistry::Global();
  std::unique_ptr<ColoringBackend> backend =
      registry.Create(name, g, Partition::Trivial(g.num_nodes()), params);
  double prev_error = backend->CurrentMaxError();
  ColorId prev_colors = backend->partition().num_colors();
  int steps = 0;
  while (steps < 40 && backend->Step()) {
    ++steps;
    const double error = backend->CurrentMaxError();
    const ColorId colors = backend->partition().num_colors();
    check.Expect(error <= prev_error + 1e-9, "coloring/anytime-monotone",
                 Fmt("Step() raised CurrentMaxError %.12g -> %.12g", prev_error,
                     error));
    check.Expect(colors > prev_colors, "coloring/colors-increasing",
                 Fmt("Step() left the color count at %.0f (was %.0f)",
                     static_cast<double>(colors),
                     static_cast<double>(prev_colors)));
    prev_error = error;
    prev_colors = colors;
  }

  // Determinism / resume-equals-fresh: replaying the same number of
  // uncapped steps from the same initial partition must reproduce the
  // partition bit-for-bit.
  std::unique_ptr<ColoringBackend> replay =
      registry.Create(name, g, Partition::Trivial(g.num_nodes()), params);
  for (int i = 0; i < steps; ++i) replay->Step();
  bool identical =
      replay->partition().num_colors() == backend->partition().num_colors();
  for (NodeId v = 0; identical && v < g.num_nodes(); ++v) {
    identical =
        replay->partition().ColorOf(v) == backend->partition().ColorOf(v);
  }
  check.Expect(identical, "coloring/deterministic-replay",
               Fmt("replaying %.0f steps produced a different partition "
                   "(%.0f colors)",
                   static_cast<double>(steps),
                   static_cast<double>(replay->partition().num_colors())));

  // Rothko-specific telemetry: the split history's color counts are
  // strictly increasing. Other backends do not expose a history.
  if (const auto* rothko = dynamic_cast<const RothkoRefiner*>(backend.get())) {
    ColorId hist_colors = 0;
    for (const RothkoStep& s : rothko->history()) {
      check.Expect(s.num_colors > hist_colors,
                   "rothko/history-colors-increasing",
                   Fmt("history color count %.0f after %.0f",
                       static_cast<double>(s.num_colors),
                       static_cast<double>(hist_colors)));
      hist_colors = s.num_colors;
    }
  }
}

DifferentialReport DifferentialRunner::CheckMaxFlow(
    const FlowInstance& instance, std::vector<ColorId> budgets) const {
  budgets = NormalizeBudgets(std::move(budgets));
  DifferentialReport report;
  report.area = Application::kMaxFlow;
  report.seed = options_.seed;
  Checker check{&report};

  const Graph& g = instance.graph;
  const double dinic = SolveMaxFlowExact(FlowSolver::kDinic, g,
                                         instance.source, instance.sink);
  const double ek = SolveMaxFlowExact(FlowSolver::kEdmondsKarp, g,
                                      instance.source, instance.sink);
  const double pr = SolveMaxFlowExact(FlowSolver::kPushRelabel, g,
                                      instance.source, instance.sink);
  check.Expect(std::abs(dinic - ek) <= EqTol(pr), "flow/solver-agreement",
               Fmt("Dinic %.12g vs Edmonds-Karp %.12g", dinic, ek));
  check.Expect(std::abs(dinic - pr) <= EqTol(pr), "flow/solver-agreement",
               Fmt("Dinic %.12g vs push-relabel %.12g", dinic, pr));

  const MinCutResult cut = MinCut(g, instance.source, instance.sink);
  check.Expect(std::abs(cut.value - pr) <= EqTol(pr), "flow/min-cut-duality",
               Fmt("min cut %.12g vs max flow %.12g", cut.value, pr));

  // The approximate side runs through a Compressor session, so the sweep
  // also exercises the coloring cache's anytime continuation for the
  // selected backend (ascending budgets continue one cached refiner).
  Compressor session(Borrow(g));
  double first_bound = 0.0, last_bound = 0.0;
  bool have_bounds = false;
  for (const ColorId budget : budgets) {
    QueryOptions query;
    query.max_colors = budget;
    query.split_mean = options_.split_mean;
    query.backend = options_.backend;
    query.compute_lower_bound = options_.compute_flow_lower_bound;
    const StatusOr<FlowQueryResult> approx =
        session.MaxFlow(instance.source, instance.sink, query);
    check.Expect(approx.ok(), "flow/query-ok",
                 approx.ok() ? "" : approx.status().ToString());
    if (!approx.ok()) continue;
    check.Expect(approx->upper_bound >= pr - EqTol(pr),
                 "flow/reduced-upper-bound",
                 Fmt("c^2 bound %.12g below exact %.12g", approx->upper_bound,
                     pr));
    if (options_.compute_flow_lower_bound) {
      check.Expect(approx->lower_bound <= pr + 1e-4 * std::max(1.0, pr),
                   "flow/reduced-lower-bound",
                   Fmt("c^1 bound %.12g above exact %.12g", approx->lower_bound,
                       pr));
    }
    if (!have_bounds) {
      first_bound = approx->upper_bound;
      have_bounds = true;
    }
    last_bound = approx->upper_bound;
  }
  check.Expect(!have_bounds || last_bound <= first_bound + EqTol(first_bound),
               "flow/anytime-improvement",
               Fmt("finest bound %.12g above coarsest %.12g", last_bound,
                   first_bound));

  CheckColoringAnytime(g, /*alpha=*/0.0, /*beta=*/0.0, report);
  return report;
}

DifferentialReport DifferentialRunner::CheckLp(
    const LpProblem& lp, std::vector<ColorId> budgets) const {
  budgets = NormalizeBudgets(std::move(budgets));
  DifferentialReport report;
  report.area = Application::kLp;
  report.seed = options_.seed;
  Checker check{&report};

  const LpResult simplex = SolveLpExact(LpOracle::kSimplex, lp);
  const LpResult ipm = SolveLpExact(LpOracle::kInteriorPoint, lp);
  check.Expect(simplex.status == LpStatus::kOptimal, "lp/simplex-optimal",
               "simplex did not reach optimality");
  check.Expect(ipm.status == LpStatus::kOptimal, "lp/ipm-optimal",
               "interior point did not reach optimality");
  if (simplex.status == LpStatus::kOptimal &&
      ipm.status == LpStatus::kOptimal) {
    check.Expect(RelativeError(simplex.objective, ipm.objective) <= 1.0 + 1e-3,
                 "lp/oracle-agreement",
                 Fmt("simplex %.12g vs interior point %.12g", simplex.objective,
                     ipm.objective));
  }

  // Direct LpColoringRefiner construction aborts on an unresolvable
  // backend, so resolve it here and report instead.
  std::string backend_name;
  if (!ResolveBackendName(options_.backend, &backend_name, check)) {
    return report;
  }
  LpReduceOptions reduce_options;
  reduce_options.split_mean = options_.split_mean;
  reduce_options.backend = backend_name;
  LpColoringRefiner refiner(lp, reduce_options);
  for (const ColorId budget : budgets) {
    const ReducedLp reduced = refiner.ReduceTo(std::max<ColorId>(budget, 4));
    // Note: max_q is NOT asserted monotone across capped budgets — a color
    // cap can truncate a monotone refinement step mid-recovery, so only
    // the uncapped Step() contract (CheckColoringAnytime) is guaranteed.
    check.Expect(std::isfinite(reduced.max_q) && reduced.max_q >= 0.0,
                 "lp/q-error-valid",
                 Fmt("matrix q-error %.12g at budget %.0f", reduced.max_q,
                     static_cast<double>(budget)));

    const LpResult red = SolveSimplex(reduced.lp);
    check.Expect(red.status == LpStatus::kOptimal, "lp/reduced-solvable",
                 "reduced LP did not reach optimality");
    if (red.status != LpStatus::kOptimal) continue;

    // LiftSolution reproduces the reduced objective in the original
    // objective exactly (both reduction variants).
    const std::vector<double> lifted = LiftSolution(reduced, red.x);
    const double lifted_obj = Objective(lp, lifted);
    check.Expect(std::abs(lifted_obj - red.objective) <= EqTol(red.objective),
                 "lp/lift-objective-roundtrip",
                 Fmt("lifted objective %.12g vs reduced %.12g", lifted_obj,
                     red.objective));

    // Theorem 1: a stable (q = 0) coloring loses nothing.
    if (reduced.max_q <= 1e-9 && simplex.status == LpStatus::kOptimal) {
      check.Expect(
          std::abs(red.objective - simplex.objective) <=
              1e-6 * std::max(1.0, std::abs(simplex.objective)),
          "lp/stable-exactness",
          Fmt("q=0 reduction got %.12g, exact %.12g", red.objective,
              simplex.objective));
    }
  }

  // Full refinement is the identity reduction: an unlimited budget drives
  // the matrix-graph coloring stable (q = 0), and the reduced LP must then
  // reproduce the exact optimum (Theorem 1 — the direction the paper
  // guarantees).
  {
    const ColorId full = static_cast<ColorId>(lp.num_rows + lp.num_cols + 2);
    const ReducedLp reduced = refiner.ReduceTo(full);
    check.Expect(reduced.max_q <= 1e-9, "lp/full-refinement-stable",
                 Fmt("max_q %.12g at the full budget %.0f", reduced.max_q,
                     static_cast<double>(full)));
    if (simplex.status == LpStatus::kOptimal) {
      const LpResult red = SolveSimplex(reduced.lp);
      check.Expect(red.status == LpStatus::kOptimal, "lp/reduced-solvable",
                   "fully refined LP did not reach optimality");
      if (red.status == LpStatus::kOptimal) {
        check.Expect(std::abs(red.objective - simplex.objective) <=
                         1e-6 * std::max(1.0, std::abs(simplex.objective)),
                     "lp/full-refinement-exact",
                     Fmt("full refinement got %.12g, exact %.12g",
                         red.objective, simplex.objective));
      }
    }
  }

  return report;
}

DifferentialReport DifferentialRunner::CheckCentrality(
    const Graph& g, std::vector<ColorId> budgets) const {
  budgets = NormalizeBudgets(std::move(budgets));
  DifferentialReport report;
  report.area = Application::kCentrality;
  report.seed = options_.seed;
  Checker check{&report};

  const std::vector<double> exact = BetweennessExact(g);

  // Degenerate differential oracle: one singleton color per node makes the
  // color-pivot estimator pick every node as its own pivot with weight 1,
  // which IS Brandes' algorithm.
  ColorPivotOptions discrete_options;
  discrete_options.seed = options_.seed;
  const ApproxBetweennessResult discrete = ApproximateBetweennessWithColoring(
      g, Partition::Discrete(g.num_nodes()), discrete_options);
  double worst = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    worst = std::max(worst, std::abs(discrete.scores[v] - exact[v]));
  }
  check.Expect(worst <= 1e-6, "centrality/discrete-equals-brandes",
               Fmt("max |approx - exact| = %.12g (n = %.0f)", worst,
                   static_cast<double>(g.num_nodes())));

  // As with max-flow, the approximate side runs through a session so the
  // sweep exercises the selected backend's cache continuation.
  Compressor session(Borrow(g));
  for (const ColorId budget : budgets) {
    QueryOptions query;
    query.max_colors = budget;
    query.split_mean = options_.split_mean;
    query.backend = options_.backend;
    query.seed = options_.seed;
    const StatusOr<CentralityQueryResult> approx = session.Centrality(query);
    check.Expect(approx.ok(), "centrality/query-ok",
                 approx.ok() ? "" : approx.status().ToString());
    if (!approx.ok()) continue;
    check.Expect(static_cast<NodeId>(approx->scores.size()) == g.num_nodes(),
                 "centrality/score-shape", "score vector size mismatch");
    bool finite_nonneg = true;
    for (const double s : approx->scores) {
      finite_nonneg = finite_nonneg && std::isfinite(s) && s >= -1e-9;
    }
    check.Expect(finite_nonneg, "centrality/scores-finite",
                 "non-finite or negative betweenness score");
    const double rho = SpearmanCorrelation(approx->scores, exact);
    check.Expect(rho >= -1.0 - 1e-9 && rho <= 1.0 + 1e-9,
                 "centrality/rho-range", Fmt("rho = %.12g (budget %.0f)", rho,
                                             static_cast<double>(budget)));
  }

  CheckColoringAnytime(g, /*alpha=*/1.0, /*beta=*/1.0, report);
  return report;
}

DifferentialReport DifferentialRunner::CheckDynamic(
    const Graph& g, const DynamicCheckOptions& dyn) const {
  DifferentialReport report;
  report.workload = "dynamic/incremental-recoloring";
  report.seed = options_.seed;
  Checker check{&report};
  std::string name;
  if (!ResolveBackendName(options_.backend, &name, check)) return report;

  const std::vector<ColorId> budgets = NormalizeBudgets(
      options_.color_budgets.empty() ? std::vector<ColorId>{4, 8, 16, 32}
                                     : options_.color_budgets);
  ColoringParams params;
  params.split_mean = options_.split_mean;
  params.q_tolerance = dyn.q_tolerance;

  const StatusOr<std::vector<std::vector<dynamic::EditOp>>> batches =
      dynamic::GenerateEditBatches(g, dyn.stream);
  check.Expect(batches.ok(), "dynamic/edit-stream-generates",
               batches.ok() ? "" : batches.status().ToString());
  if (!batches.ok()) return report;

  const NodeId n = g.num_nodes();
  auto current = std::make_shared<const Graph>(g);
  dynamic::IncrementalRecolorer inc(current, name, Partition::Trivial(n),
                                    params);
  // Warm to the top budget, as a session serving the sweep would.
  for (const ColorId budget : budgets) RefineTo(inc, budget);

  ColoringBackendRegistry& registry = ColoringBackendRegistry::Global();
  dynamic::RepairOptions repair;
  repair.max_repair_splits = dyn.max_repair_splits;

  for (size_t bi = 0; bi < batches->size(); ++bi) {
    const std::vector<dynamic::EditOp>& batch = (*batches)[bi];
    StatusOr<Graph> next = dynamic::ApplyEditBatch(*current, batch);
    check.Expect(next.ok(), "dynamic/edit-batch-applies",
                 next.ok() ? "" : next.status().ToString());
    if (!next.ok()) return report;
    current = std::make_shared<const Graph>(std::move(next).value());

    const dynamic::RepairOutcome outcome =
        inc.ApplyGraph(current, batch, repair);
    check.Expect(outcome.repaired == outcome.converged,
                 "dynamic/repair-outcome-consistent",
                 Fmt("repaired %.0f but converged %.0f",
                     outcome.repaired ? 1.0 : 0.0,
                     outcome.converged ? 1.0 : 0.0));
    check.Expect(dyn.q_tolerance > 0.0 || !outcome.repaired,
                 "dynamic/zero-tolerance-falls-back",
                 "q_tolerance = 0 batch reported a repair");
    check.Expect(outcome.repaired || outcome.splits == 0,
                 "dynamic/fallback-spends-no-splits",
                 Fmt("fallback reported %.0f repair splits",
                     static_cast<double>(outcome.splits), 0.0));

    // A from-scratch refiner on the mutated graph, swept over the same
    // ascending budgets the incremental side serves.
    std::unique_ptr<ColoringBackend> scratch =
        registry.Create(name, *current, Partition::Trivial(n), params);
    for (const ColorId budget : budgets) {
      RefineTo(inc, budget);
      RefineTo(*scratch, budget);
      const double q_inc = inc.CurrentMaxError();
      const double q_scratch = scratch->CurrentMaxError();
      check.Expect(q_inc <= std::max(q_scratch, dyn.q_tolerance),
                   "dynamic/q-error-bound",
                   Fmt("incremental q %.12g above max(scratch %.12g, tol)",
                       q_inc, q_scratch));
      if (!outcome.repaired) {
        check.Expect(
            SamePartition(inc.partition(), scratch->partition(), n),
            "dynamic/fallback-bitwise-scratch",
            Fmt("fallback partition differs from scratch at budget %.0f "
                "(batch %.0f)",
                static_cast<double>(budget), static_cast<double>(bi)));
      }
    }
  }
  return report;
}

}  // namespace eval
}  // namespace qsc
