#include "qsc/eval/pipelines.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "qsc/api/compressor.h"
#include "qsc/centrality/brandes.h"
#include "qsc/coloring/q_error.h"
#include "qsc/util/stats.h"
#include "qsc/util/timer.h"

namespace qsc {
namespace eval {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Borrow a caller-owned graph for a pipeline-lifetime session.
std::shared_ptr<const Graph> Borrow(const Graph& g) {
  return std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g);
}

}  // namespace

std::vector<RunMetrics> RunMaxFlowPipeline(const FlowInstance& instance,
                                           const EvalOptions& options,
                                           std::vector<ColorId> budgets) {
  budgets = NormalizeBudgets(std::move(budgets));
  WallTimer timer;
  const double exact = SolveMaxFlowExact(options.flow_solver, instance.graph,
                                         instance.source, instance.sink);
  const double exact_seconds = timer.ElapsedSeconds();

  // One session across the whole sweep: each budget continues the cached
  // refinement (bit-identical to a fresh coloring per budget), so
  // approx_seconds is the *incremental* session cost of that budget
  // (resume coloring + reduce + solve).
  Compressor session(Borrow(instance.graph), options.pool);

  std::vector<RunMetrics> out;
  out.reserve(budgets.size());
  for (const ColorId budget : budgets) {
    QueryOptions query;
    query.max_colors = budget;
    query.split_mean = options.split_mean;
    query.backend = options.backend;
    query.compute_lower_bound = options.compute_flow_lower_bound;
    timer.Reset();
    const StatusOr<FlowQueryResult> approx =
        session.MaxFlow(instance.source, instance.sink, query);
    QSC_CHECK_OK(approx);
    const double approx_seconds = timer.ElapsedSeconds();

    RunMetrics m;
    m.color_budget = budget;
    m.num_colors = approx->num_colors;
    m.max_q = ComputeQError(instance.graph, *approx->coloring).max_q;
    m.exact_value = exact;
    m.approx_value = approx->upper_bound;
    m.lower_bound =
        options.compute_flow_lower_bound ? approx->lower_bound : kNaN;
    m.relative_error = RelativeError(exact, approx->upper_bound);
    m.rank_correlation = kNaN;
    m.exact_seconds = exact_seconds;
    m.approx_seconds = approx_seconds;
    out.push_back(m);
  }
  return out;
}

std::vector<RunMetrics> RunLpPipeline(const LpProblem& lp,
                                      const EvalOptions& options,
                                      std::vector<ColorId> budgets) {
  // The LP reduction needs >= 4 matrix-graph colors (the two pinned
  // singletons plus one row and one column color); raising a smaller
  // budget *before* normalization keeps the recorded color_budget equal to
  // the budget actually used, so num_colors <= color_budget stays true.
  for (ColorId& budget : budgets) budget = std::max<ColorId>(budget, 4);
  budgets = NormalizeBudgets(std::move(budgets));
  WallTimer timer;
  const LpResult exact = SolveLpExact(options.lp_oracle, lp);
  const double exact_seconds = timer.ElapsedSeconds();
  const bool exact_ok = exact.status == LpStatus::kOptimal;

  // One LP-only session: ascending budgets resume the cached matrix-graph
  // refiner (the paper's Rothko-as-co-routine usage), bit-identical to a
  // fresh reduction per budget.
  Compressor session;

  std::vector<RunMetrics> out;
  out.reserve(budgets.size());
  for (const ColorId budget : budgets) {
    QueryOptions query;  // paper defaults: alpha=1, beta=0
    query.max_colors = budget;
    query.split_mean = options.split_mean;
    query.backend = options.backend;
    timer.Reset();
    const StatusOr<LpQueryResult> red = session.SolveLp(lp, query);
    QSC_CHECK_OK(red);
    const double approx_seconds = timer.ElapsedSeconds();
    const bool red_ok = red->solution.status == LpStatus::kOptimal;

    RunMetrics m;
    m.color_budget = budget;
    m.num_colors = static_cast<ColorId>(red->reduced.lp.num_rows +
                                        red->reduced.lp.num_cols + 2);
    m.max_q = red->reduced.max_q;
    m.exact_value = exact_ok ? exact.objective : kNaN;
    m.approx_value = red_ok ? red->solution.objective : kNaN;
    m.lower_bound = kNaN;
    m.relative_error =
        exact_ok && red_ok
            ? RelativeError(exact.objective, red->solution.objective)
            : kNaN;
    m.rank_correlation = kNaN;
    m.exact_seconds = exact_seconds;
    m.approx_seconds = approx_seconds;
    out.push_back(m);
  }
  return out;
}

std::vector<RunMetrics> RunCentralityPipeline(const Graph& g,
                                              const EvalOptions& options,
                                              std::vector<ColorId> budgets) {
  budgets = NormalizeBudgets(std::move(budgets));
  WallTimer timer;
  const std::vector<double> exact = BetweennessExact(g);
  const double exact_seconds = timer.ElapsedSeconds();

  Compressor session(Borrow(g), options.pool);

  std::vector<RunMetrics> out;
  out.reserve(budgets.size());
  for (const ColorId budget : budgets) {
    QueryOptions query;  // paper defaults: alpha=beta=1
    query.max_colors = budget;
    query.split_mean = options.split_mean;
    query.backend = options.backend;
    query.seed = options.seed;
    timer.Reset();
    const StatusOr<CentralityQueryResult> approx = session.Centrality(query);
    QSC_CHECK_OK(approx);
    const double approx_seconds = timer.ElapsedSeconds();

    RunMetrics m;
    m.color_budget = budget;
    m.num_colors = approx->num_colors;
    m.max_q = ComputeQError(g, *approx->coloring).max_q;
    m.exact_value = kNaN;
    m.approx_value = kNaN;
    m.lower_bound = kNaN;
    m.relative_error = kNaN;
    m.rank_correlation = SpearmanCorrelation(approx->scores, exact);
    m.exact_seconds = exact_seconds;
    m.approx_seconds = approx_seconds;
    out.push_back(m);
  }
  return out;
}

}  // namespace eval
}  // namespace qsc
