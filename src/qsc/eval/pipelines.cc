#include "qsc/eval/pipelines.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "qsc/centrality/brandes.h"
#include "qsc/centrality/color_pivot.h"
#include "qsc/coloring/q_error.h"
#include "qsc/flow/approx_flow.h"
#include "qsc/lp/reduce.h"
#include "qsc/util/stats.h"
#include "qsc/util/timer.h"

namespace qsc {
namespace eval {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

std::vector<RunMetrics> RunMaxFlowPipeline(const FlowInstance& instance,
                                           const EvalOptions& options,
                                           std::vector<ColorId> budgets) {
  budgets = NormalizeBudgets(std::move(budgets));
  WallTimer timer;
  const double exact = SolveMaxFlowExact(options.flow_solver, instance.graph,
                                         instance.source, instance.sink);
  const double exact_seconds = timer.ElapsedSeconds();

  std::vector<RunMetrics> out;
  out.reserve(budgets.size());
  for (const ColorId budget : budgets) {
    FlowApproxOptions approx_options;
    approx_options.rothko.max_colors = budget;
    approx_options.rothko.split_mean = options.split_mean;
    approx_options.compute_lower_bound = options.compute_flow_lower_bound;
    timer.Reset();
    const FlowApproxResult approx = ApproximateMaxFlow(
        instance.graph, instance.source, instance.sink, approx_options);
    const double approx_seconds = timer.ElapsedSeconds();

    RunMetrics m;
    m.color_budget = budget;
    m.num_colors = approx.num_colors;
    m.max_q = ComputeQError(instance.graph, approx.coloring).max_q;
    m.exact_value = exact;
    m.approx_value = approx.upper_bound;
    m.lower_bound =
        options.compute_flow_lower_bound ? approx.lower_bound : kNaN;
    m.relative_error = RelativeError(exact, approx.upper_bound);
    m.rank_correlation = kNaN;
    m.exact_seconds = exact_seconds;
    m.approx_seconds = approx_seconds;
    out.push_back(m);
  }
  return out;
}

std::vector<RunMetrics> RunLpPipeline(const LpProblem& lp,
                                      const EvalOptions& options,
                                      std::vector<ColorId> budgets) {
  // The LP reduction needs >= 4 matrix-graph colors (the two pinned
  // singletons plus one row and one column color); raising a smaller
  // budget *before* normalization keeps the recorded color_budget equal to
  // the budget actually used, so num_colors <= color_budget stays true.
  for (ColorId& budget : budgets) budget = std::max<ColorId>(budget, 4);
  budgets = NormalizeBudgets(std::move(budgets));
  WallTimer timer;
  const LpResult exact = SolveLpExact(options.lp_oracle, lp);
  const double exact_seconds = timer.ElapsedSeconds();
  const bool exact_ok = exact.status == LpStatus::kOptimal;

  std::vector<RunMetrics> out;
  out.reserve(budgets.size());
  for (const ColorId budget : budgets) {
    // A fresh reduction per budget keeps approx_seconds end-to-end
    // (coloring + reduction + solve), comparable across the three areas.
    // Rothko's split order is deterministic, so this yields the same
    // partition an anytime refiner resumed across budgets would.
    LpReduceOptions reduce_options;  // paper defaults: alpha=1, beta=0
    reduce_options.max_colors = budget;
    timer.Reset();
    const ReducedLp reduced = ReduceLp(lp, reduce_options);
    const LpResult red = SolveSimplex(reduced.lp);
    const double approx_seconds = timer.ElapsedSeconds();
    const bool red_ok = red.status == LpStatus::kOptimal;

    RunMetrics m;
    m.color_budget = budget;
    m.num_colors = static_cast<ColorId>(reduced.lp.num_rows +
                                        reduced.lp.num_cols + 2);
    m.max_q = reduced.max_q;
    m.exact_value = exact_ok ? exact.objective : kNaN;
    m.approx_value = red_ok ? red.objective : kNaN;
    m.lower_bound = kNaN;
    m.relative_error = exact_ok && red_ok
                           ? RelativeError(exact.objective, red.objective)
                           : kNaN;
    m.rank_correlation = kNaN;
    m.exact_seconds = exact_seconds;
    m.approx_seconds = approx_seconds;
    out.push_back(m);
  }
  return out;
}

std::vector<RunMetrics> RunCentralityPipeline(const Graph& g,
                                              const EvalOptions& options,
                                              std::vector<ColorId> budgets) {
  budgets = NormalizeBudgets(std::move(budgets));
  WallTimer timer;
  const std::vector<double> exact = BetweennessExact(g);
  const double exact_seconds = timer.ElapsedSeconds();

  std::vector<RunMetrics> out;
  out.reserve(budgets.size());
  for (const ColorId budget : budgets) {
    ColorPivotOptions approx_options;  // paper defaults: alpha=beta=1
    approx_options.rothko.max_colors = budget;
    approx_options.rothko.split_mean = options.split_mean;
    approx_options.seed = options.seed;
    timer.Reset();
    const ApproxBetweennessResult approx =
        ApproximateBetweenness(g, approx_options);
    const double approx_seconds = timer.ElapsedSeconds();

    RunMetrics m;
    m.color_budget = budget;
    m.num_colors = approx.num_colors;
    m.max_q = ComputeQError(g, approx.coloring).max_q;
    m.exact_value = kNaN;
    m.approx_value = kNaN;
    m.lower_bound = kNaN;
    m.relative_error = kNaN;
    m.rank_correlation = SpearmanCorrelation(approx.scores, exact);
    m.exact_seconds = exact_seconds;
    m.approx_seconds = approx_seconds;
    out.push_back(m);
  }
  return out;
}

}  // namespace eval
}  // namespace qsc
