#include "qsc/util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "qsc/util/check.h"

namespace qsc {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double GeometricMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    QSC_CHECK_GT(x, 0.0);
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double Median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  if (n % 2 == 1) return xs[n / 2];
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double Min(const std::vector<double>& xs) {
  QSC_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  QSC_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

std::vector<double> FractionalRanks(const std::vector<double>& xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average 1-based rank over the tie group [i, j].
    const double avg_rank = 0.5 * (static_cast<double>(i + 1) +
                                   static_cast<double>(j + 1));
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  QSC_CHECK_EQ(xs.size(), ys.size());
  const size_t n = xs.size();
  if (n == 0) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  return PearsonCorrelation(FractionalRanks(xs), FractionalRanks(ys));
}

double RelativeError(double actual, double predicted) {
  if (actual == 0.0 && predicted == 0.0) return 1.0;
  if (actual <= 0.0 || predicted <= 0.0) {
    if (actual == predicted) return 1.0;
    if (actual < 0.0 && predicted < 0.0) {
      return std::max(actual / predicted, predicted / actual);
    }
    return std::numeric_limits<double>::infinity();
  }
  return std::max(actual / predicted, predicted / actual);
}

}  // namespace qsc
