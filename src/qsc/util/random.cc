#include "qsc/util/random.h"

#include <unordered_set>

namespace qsc {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  QSC_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  QSC_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range (hi - lo == UINT64_MAX).
  if (span == 0) {
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  QSC_CHECK_LE(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  QSC_CHECK_GE(n, 0);
  QSC_CHECK_GE(k, 0);
  QSC_CHECK_LE(k, n);
  // For dense requests use a partial Fisher-Yates; for sparse use a set.
  if (k * 3 >= n) {
    std::vector<int64_t> all(n);
    for (int64_t i = 0; i < n; ++i) all[i] = i;
    for (int64_t i = 0; i < k; ++i) {
      int64_t j = i + static_cast<int64_t>(NextBounded(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  std::unordered_set<int64_t> chosen;
  std::vector<int64_t> out;
  out.reserve(k);
  while (static_cast<int64_t>(out.size()) < k) {
    int64_t candidate = static_cast<int64_t>(NextBounded(n));
    if (chosen.insert(candidate).second) {
      out.push_back(candidate);
    }
  }
  return out;
}

}  // namespace qsc
