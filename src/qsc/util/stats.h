// Statistical helpers used by the evaluation harness: summary statistics,
// rank transforms and Spearman's rank correlation (the paper's accuracy
// metric for betweenness centrality), and the paper's relative-error metric
// max(v/v_hat, v_hat/v) for max-flow and LP tasks.

#ifndef QSC_UTIL_STATS_H_
#define QSC_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace qsc {

// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

// Geometric mean; requires all entries > 0. 0 for empty input.
double GeometricMean(const std::vector<double>& xs);

// Median (average of the two middle elements for even sizes); 0 for empty.
double Median(std::vector<double> xs);

double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double StdDev(const std::vector<double>& xs);

// Fractional ranks (1-based, ties get the average rank), as used by
// Spearman's rho.
std::vector<double> FractionalRanks(const std::vector<double>& xs);

// Pearson correlation coefficient; 0 if either side has zero variance.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

// Spearman's rank correlation coefficient, with tie handling (Pearson
// correlation of fractional ranks). 1.0 means identical rankings.
double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

// The paper's relative-error metric: max(actual/predicted,
// predicted/actual). Ideal score is 1.0. If the values have different signs
// or one is zero (and the other is not), returns +infinity; 1.0 if both are
// zero.
double RelativeError(double actual, double predicted);

}  // namespace qsc

#endif  // QSC_UTIL_STATS_H_
