// Deterministic pseudo-random number generation for reproducible
// experiments. Rng wraps xoshiro256** seeded through SplitMix64, so the
// same seed yields the same workload on every platform.

#ifndef QSC_UTIL_RANDOM_H_
#define QSC_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "qsc/util/check.h"

namespace qsc {

// Small, fast, reproducible PRNG (xoshiro256**). Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform on the full 64-bit range.
  uint64_t Next();

  // Uniform integer in [0, bound). `bound` must be positive. Uses rejection
  // sampling, so the distribution is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Samples k distinct indices from [0, n) (k <= n), in arbitrary order.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

 private:
  uint64_t state_[4];
};

}  // namespace qsc

#endif  // QSC_UTIL_RANDOM_H_
