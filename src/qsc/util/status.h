// Error propagation without exceptions: Status and StatusOr<T>.
//
// Mirrors the absl::Status idiom at a much smaller scale. Functions that can
// fail for data-dependent reasons (bad input file, infeasible LP, ...)
// return Status or StatusOr<T>; contract violations abort via QSC_CHECK.

#ifndef QSC_UTIL_STATUS_H_
#define QSC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "qsc/util/check.h"

namespace qsc {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

// Human-readable name of a status code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// Value-semantic error descriptor. The default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Either a value of type T or an error Status. Accessing the value of a
// non-OK StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    QSC_CHECK(!status_.ok());  // OK status must carry a value.
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    QSC_CHECK(ok());
    return *value_;
  }
  T& value() & {
    QSC_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    QSC_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace qsc

// Propagates a non-OK status to the caller.
#define QSC_RETURN_IF_ERROR(expr)       \
  do {                                  \
    ::qsc::Status qsc_status_ = (expr); \
    if (!qsc_status_.ok()) {            \
      return qsc_status_;               \
    }                                   \
  } while (false)

#endif  // QSC_UTIL_STATUS_H_
