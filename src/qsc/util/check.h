// Lightweight fatal-assertion macros.
//
// The library does not use C++ exceptions (recoverable errors are reported
// through qsc::Status); QSC_CHECK* guard against programming errors and
// abort the process with a diagnostic when violated.

#ifndef QSC_UTIL_CHECK_H_
#define QSC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace qsc {
namespace internal {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "QSC_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace qsc

// Aborts the process if `cond` evaluates to false.
#define QSC_CHECK(cond)                                   \
  do {                                                    \
    if (!(cond)) {                                        \
      ::qsc::internal::CheckFail(__FILE__, __LINE__, #cond); \
    }                                                     \
  } while (false)

#define QSC_CHECK_EQ(a, b) QSC_CHECK((a) == (b))
#define QSC_CHECK_NE(a, b) QSC_CHECK((a) != (b))
#define QSC_CHECK_LT(a, b) QSC_CHECK((a) < (b))
#define QSC_CHECK_LE(a, b) QSC_CHECK((a) <= (b))
#define QSC_CHECK_GT(a, b) QSC_CHECK((a) > (b))
#define QSC_CHECK_GE(a, b) QSC_CHECK((a) >= (b))

// Aborts if a qsc::Status (or StatusOr) expression is not OK.
#define QSC_CHECK_OK(expr) QSC_CHECK((expr).ok())

// Debug-only check; compiled out in release builds.
#ifndef NDEBUG
#define QSC_DCHECK(cond) QSC_CHECK(cond)
#else
#define QSC_DCHECK(cond) \
  do {                   \
  } while (false)
#endif

#endif  // QSC_UTIL_CHECK_H_
