#include "qsc/util/table.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "qsc/util/check.h"

namespace qsc {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  QSC_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  for (size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToCsv() const {
  std::string out;
  auto append_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  append_row(header_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 0.001) {
    std::snprintf(buf, sizeof(buf), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else {
    const int minutes = static_cast<int>(seconds / 60.0);
    const int rem = static_cast<int>(seconds - 60.0 * minutes);
    std::snprintf(buf, sizeof(buf), "%dm%02ds", minutes, rem);
  }
  return buf;
}

std::string FormatCount(int64_t count) {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%" PRId64, count);
  std::string raw = digits;
  std::string out;
  const bool negative = !raw.empty() && raw[0] == '-';
  const size_t start = negative ? 1 : 0;
  const size_t len = raw.size() - start;
  for (size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out += ' ';
    out += raw[start + i];
  }
  return negative ? "-" + out : out;
}

std::string FormatRatio(double ratio) {
  if (ratio >= 10.0) {
    return FormatCount(static_cast<int64_t>(std::llround(ratio))) + ":1";
  }
  return FormatDouble(ratio, 2) + ":1";
}

}  // namespace qsc
