// Console table printing for the benchmark harnesses. Produces the aligned
// rows the paper's tables report, plus optional CSV output for plotting.

#ifndef QSC_UTIL_TABLE_H_
#define QSC_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qsc {

// Accumulates rows of string cells and renders them with aligned columns.
//
// Example:
//   TablePrinter t({"dataset", "colors", "error"});
//   t.AddRow({"karate", "6", "1.05"});
//   t.Print(stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Renders the header, a separator, and all rows.
  void Print(std::FILE* out) const;

  // Comma-separated dump (no alignment), suitable for plotting scripts.
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// printf-style float formatting helpers used by the bench binaries.
std::string FormatDouble(double value, int precision = 3);
std::string FormatSeconds(double seconds);  // "12.3ms", "4.56s", "2m08s"
std::string FormatCount(int64_t count);     // "1 234 567"
std::string FormatRatio(double ratio);      // "87:1", "3 500:1"

}  // namespace qsc

#endif  // QSC_UTIL_TABLE_H_
