// Deterministic data-parallel loops over a ThreadPool (see
// thread_pool.h for the determinism contract). Three shapes:
//
//  - ParallelFor: independent per-index work; indices may run in any
//    order, so each index must write only state private to it.
//  - ParallelReduce: chunk-local folds combined strictly in chunk-index
//    order. The chunk grid depends only on (size, grain), so the result
//    is bit-identical for every pool size — but for non-associative
//    operations (floating-point sums) it is a function of `grain`:
//    changing the grain changes the fold shape, so a call site that
//    feeds deterministic counters must pick its grain once and keep it.
//  - ParallelOrderedFor: concurrent work(i) with a serialized commit(i)
//    phase that runs strictly in increasing i — equivalent to the
//    sequential `for i { work(i); commit(i); }` whenever work only reads
//    shared state and all order-sensitive mutation lives in commit. This
//    is the "score in parallel, commit in order" primitive behind the
//    Rothko split scorer and the centrality pivot fan-out.
//
// All three treat a null pool (or a 1-thread pool) as the sequential
// path with zero synchronization overhead.

#ifndef QSC_PARALLEL_PARALLEL_FOR_H_
#define QSC_PARALLEL_PARALLEL_FOR_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "qsc/parallel/thread_pool.h"

namespace qsc {

// Chunk boundaries over [0, size) with `grain` indices per chunk (the
// last chunk may be short). A pure function of (size, grain): the worker
// count never shifts a boundary, which is what makes chunked reductions
// reproducible across pool sizes.
struct ChunkGrid {
  int64_t size = 0;
  int64_t grain = 1;

  int64_t num_chunks() const { return (size + grain - 1) / grain; }
  int64_t begin(int64_t chunk) const { return chunk * grain; }
  int64_t end(int64_t chunk) const {
    return std::min(size, (chunk + 1) * grain);
  }
};

// Calls fn(i) for every i in [0, size), `grain` consecutive indices per
// task. fn may run concurrently and out of order: it must only write
// state owned by index i.
template <typename Fn>
void ParallelFor(ThreadPool* pool, int64_t size, int64_t grain, Fn&& fn) {
  if (size <= 0) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (int64_t i = 0; i < size; ++i) fn(i);
    return;
  }
  const ChunkGrid grid{size, std::max<int64_t>(1, grain)};
  pool->RunChunks(grid.num_chunks(), [&](int64_t chunk) {
    const int64_t end = grid.end(chunk);
    for (int64_t i = grid.begin(chunk); i < end; ++i) fn(i);
  });
}

// Ordered chunked reduction: within each chunk, map(i) values fold left
// to right seeded by the chunk's first element; chunk partials then fold
// into `init` in increasing chunk order on the calling thread. The
// sequential path folds identically, so the result is bit-identical for
// every pool size at a fixed grain.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(ThreadPool* pool, int64_t size, int64_t grain, T init,
                 MapFn&& map, CombineFn&& combine) {
  if (size <= 0) return init;
  const ChunkGrid grid{size, std::max<int64_t>(1, grain)};
  const int64_t num_chunks = grid.num_chunks();

  auto chunk_partial = [&](int64_t chunk) {
    T acc = map(grid.begin(chunk));
    const int64_t end = grid.end(chunk);
    for (int64_t i = grid.begin(chunk) + 1; i < end; ++i) {
      acc = combine(acc, map(i));
    }
    return acc;
  };

  if (pool == nullptr || pool->num_threads() <= 1 || num_chunks == 1) {
    T total = init;
    for (int64_t chunk = 0; chunk < num_chunks; ++chunk) {
      total = combine(total, chunk_partial(chunk));
    }
    return total;
  }

  std::vector<T> partials(static_cast<size_t>(num_chunks));
  pool->RunChunks(num_chunks,
                  [&](int64_t chunk) { partials[chunk] = chunk_partial(chunk); });
  T total = init;
  for (int64_t chunk = 0; chunk < num_chunks; ++chunk) {
    total = combine(total, partials[chunk]);
  }
  return total;
}

// Concurrent work(i) over [0, size) with commit(i) serialized strictly in
// increasing i (each commit runs on the thread that ran its work).
// Equivalent to the sequential loop `for i { work(i); commit(i); }` when
// work(i) only reads shared state and writes i-private state.
// Deadlock-free because ThreadPool::RunChunks claims indices in
// increasing order: the owner of the lowest in-flight index never waits.
template <typename WorkFn, typename CommitFn>
void ParallelOrderedFor(ThreadPool* pool, int64_t size, WorkFn&& work,
                        CommitFn&& commit) {
  if (size <= 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || size == 1 ||
      pool->InWorker()) {
    for (int64_t i = 0; i < size; ++i) {
      work(i);
      commit(i);
    }
    return;
  }
  std::mutex mutex;
  std::condition_variable turn_cv;
  int64_t next_commit = 0;
  pool->RunChunks(size, [&](int64_t i) {
    work(i);
    {
      std::unique_lock<std::mutex> lock(mutex);
      turn_cv.wait(lock, [&] { return next_commit == i; });
      commit(i);
      ++next_commit;
    }
    turn_cv.notify_all();
  });
}

}  // namespace qsc

#endif  // QSC_PARALLEL_PARALLEL_FOR_H_
