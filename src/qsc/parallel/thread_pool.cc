#include "qsc/parallel/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "qsc/util/check.h"

namespace qsc {
namespace {

// The pool the calling thread is a worker of (nullptr on external
// threads). Lets RunChunks detect reentrant submissions and degrade them
// to inline execution instead of deadlocking on a fully-occupied pool.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

// One chunked loop in flight. Workers and the submitter claim chunk
// indices from `next`; the submitter blocks until `done` reaches
// `num_chunks`. Held by shared_ptr from the queue, every participating
// worker, and the submitter, so a worker observing an exhausted job after
// the submitter returned only ever touches live memory.
struct ThreadPool::Job {
  const std::function<void(int64_t)>* fn = nullptr;
  int64_t num_chunks = 0;
  std::atomic<int64_t> next{0};

  std::mutex done_mutex;
  std::condition_variable done_cv;
  int64_t done = 0;  // guarded by done_mutex

  // Claims and runs chunks until none remain. Chunk indices are handed
  // out in increasing order (fetch_add), the invariant the ordered-commit
  // primitives rely on.
  void RunClaimedChunks() {
    for (;;) {
      const int64_t chunk = next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      (*fn)(chunk);
      bool complete;
      {
        std::lock_guard<std::mutex> lock(done_mutex);
        complete = ++done == num_chunks;
      }
      if (complete) done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InWorker() const { return tls_worker_pool == this; }

void ThreadPool::RunChunks(int64_t num_chunks,
                           const std::function<void(int64_t)>& fn) {
  if (num_chunks <= 0) return;
  if (num_threads_ <= 1 || num_chunks == 1 || InWorker()) {
    for (int64_t chunk = 0; chunk < num_chunks; ++chunk) fn(chunk);
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    QSC_CHECK(!stop_);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();

  job->RunClaimedChunks();  // the submitter participates

  {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done_cv.wait(lock, [&] { return job->done == job->num_chunks; });
  }
  {
    // Workers that saw the job exhausted may have dropped it already.
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = std::find(jobs_.begin(), jobs_.end(), job);
    if (it != jobs_.end()) jobs_.erase(it);
  }
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
    if (jobs_.empty()) {
      if (stop_) return;
      continue;
    }
    std::shared_ptr<Job> job = jobs_.front();
    if (job->next.load(std::memory_order_relaxed) >= job->num_chunks) {
      // Exhausted but not yet reaped by its submitter; drop it so the
      // queue cannot spin on it. (Running chunks keep the Job alive
      // through their own shared_ptr.)
      jobs_.erase(jobs_.begin());
      continue;
    }
    lock.unlock();
    job->RunClaimedChunks();
    lock.lock();
  }
}

namespace {

std::unique_ptr<ThreadPool>& DefaultPoolSlot() {
  static std::unique_ptr<ThreadPool>* slot =
      new std::unique_ptr<ThreadPool>(std::make_unique<ThreadPool>(1));
  return *slot;
}

}  // namespace

ThreadPool* DefaultPool() { return DefaultPoolSlot().get(); }

void SetDefaultPoolThreads(int num_threads) {
  DefaultPoolSlot() = std::make_unique<ThreadPool>(num_threads);
}

}  // namespace qsc
