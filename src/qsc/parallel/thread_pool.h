// The deterministic parallel execution layer (docs/API.md "Parallelism").
//
// qsc parallelizes by *chunked fan-out with ordered commit*: a range of
// independent work items is cut into chunks whose boundaries depend only
// on the range and the grain — never on the worker count — and any result
// that is order-sensitive (floating-point reductions, heap pushes, version
// assignment) is folded back strictly in chunk-index order on one thread.
// Everything built on these primitives is therefore **bit-identical for
// every pool size, including 1**: the thread count changes wall-clock
// time, nothing else. The Rothko split scorer, the Compressor query
// fan-outs, and the bench/eval `--threads` plumbing all rest on this
// contract (enforced by tests/parallel_thread_pool_test.cc and the
// threads-{1,2,8} legs of tests/coloring_rothko_equivalence_test.cc).
//
// The pool itself is deliberately small: a fixed set of workers, no work
// stealing, no task futures. One job = one chunked loop; workers and the
// calling thread claim chunk indices from a shared atomic counter, and the
// call returns when every chunk has run. Multiple threads may submit jobs
// to one pool concurrently (the Compressor does this when distinct specs
// refine in parallel); a submission from *inside* a pool worker runs
// inline on that worker, so nested parallelism degrades to sequential
// execution instead of deadlocking.

#ifndef QSC_PARALLEL_THREAD_POOL_H_
#define QSC_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qsc {

class ThreadPool {
 public:
  // Spawns `num_threads - 1` workers (the submitting thread always
  // participates). num_threads <= 1 creates no workers: every Run call
  // executes inline, which is the sequential fast path.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(chunk) for every chunk in [0, num_chunks), distributed over
  // the workers plus the calling thread, and blocks until all chunks have
  // completed. Chunks are claimed in increasing index order (later chunks
  // never start before earlier ones have been claimed), which the
  // ordered-commit primitives in parallel_for.h rely on. `fn` must not
  // throw (the library reports errors via Status, never exceptions).
  //
  // Reentrant calls from a worker of this pool run all chunks inline on
  // that worker, in index order.
  void RunChunks(int64_t num_chunks, const std::function<void(int64_t)>& fn);

  // True when the calling thread is a worker of this pool (i.e. a
  // RunChunks here would execute inline).
  bool InWorker() const;

 private:
  struct Job;

  void WorkerLoop();

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;                 // guards jobs_ and stop_
  std::condition_variable work_cv_;  // workers wait here for jobs
  std::vector<std::shared_ptr<Job>> jobs_;  // active jobs, oldest first
  bool stop_ = false;
};

// The process-wide pool used by the CLI layers (qsc_bench / qsc_eval
// `--threads N`). Starts at 1 thread (sequential); SetDefaultPoolThreads
// recreates it and must only be called while no work is in flight —
// i.e. from startup code, before the pool is shared.
ThreadPool* DefaultPool();
void SetDefaultPoolThreads(int num_threads);

}  // namespace qsc

#endif  // QSC_PARALLEL_THREAD_POOL_H_
