#include "qsc/dynamic/incremental.h"

#include <unordered_set>
#include <utility>

#include "qsc/util/check.h"

namespace qsc {
namespace dynamic {
namespace {

GraphView ViewOfNonNull(const std::shared_ptr<const Graph>& graph) {
  QSC_CHECK(graph != nullptr);
  return GraphView(*graph);
}

}  // namespace

IncrementalRecolorer::IncrementalRecolorer(std::shared_ptr<const Graph> graph,
                                           std::string backend,
                                           Partition initial,
                                           const ColoringParams& params)
    : IncrementalRecolorer(ViewOfNonNull(graph),
                           std::shared_ptr<const void>(graph),
                           std::move(backend), std::move(initial), params) {}

IncrementalRecolorer::IncrementalRecolorer(GraphView view,
                                           std::shared_ptr<const void> keepalive,
                                           std::string backend,
                                           Partition initial,
                                           const ColoringParams& params)
    : view_(std::move(view)),
      keepalive_(std::move(keepalive)),
      backend_(std::move(backend)),
      initial_(std::move(initial)),
      params_(params) {
  impl_ = ColoringBackendRegistry::Global().Create(backend_, view_, initial_,
                                                   params_);
}

bool IncrementalRecolorer::Step(ColorId color_cap) {
  return impl_->Step(color_cap);
}

const Partition& IncrementalRecolorer::partition() const {
  return impl_->partition();
}

double IncrementalRecolorer::CurrentMaxError() const {
  return impl_->CurrentMaxError();
}

int64_t IncrementalRecolorer::MemoryBytes() const {
  return static_cast<int64_t>(sizeof(*this)) + initial_.MemoryBytes() +
         impl_->MemoryBytes();
}

RepairOutcome IncrementalRecolorer::ApplyGraph(
    std::shared_ptr<const Graph> graph, const std::vector<EditOp>& edits,
    const RepairOptions& options) {
  QSC_CHECK(graph != nullptr);
  RepairOutcome out;

  // The witness rows the batch invalidated: distinct pre-edit colors with
  // an edited endpoint. Telemetry for now — rebuilding the kernel from
  // the current partition re-derives every row against the new adjacency,
  // and the repair loop respends splits only where the error rose.
  {
    const Partition& p = impl_->partition();
    std::unordered_set<ColorId> dirty;
    for (const EditOp& op : edits) {
      for (const NodeId v : {op.src, op.dst}) {
        if (v >= 0 && v < p.num_nodes()) dirty.insert(p.ColorOf(v));
      }
    }
    out.dirty_colors = static_cast<int64_t>(dirty.size());
  }

  view_ = GraphView(*graph);
  keepalive_ = std::move(graph);
  const double tolerance = params_.q_tolerance;
  if (tolerance > 0.0) {
    // Repair path: continue from the pre-edit partition on the mutated
    // graph and re-split until the spec's tolerance certificate is
    // restored or the budget says the batch was too disruptive.
    auto repaired = ColoringBackendRegistry::Global().Create(
        backend_, view_, impl_->partition(), params_);
    bool kernel_converged = false;
    while (repaired->CurrentMaxError() > tolerance) {
      if (out.splits >= options.max_repair_splits) break;
      const ColorId before = repaired->partition().num_colors();
      if (!repaired->Step(/*color_cap=*/0)) {
        // Converged by the kernel's own rule; with no splittable color
        // left the error cannot be above a positive tolerance, but guard
        // against kernels that disagree.
        kernel_converged = true;
        break;
      }
      out.splits += repaired->partition().num_colors() - before;
    }
    const bool restored = repaired->CurrentMaxError() <= tolerance;
    if (restored || kernel_converged) {
      impl_ = std::move(repaired);
      out.repaired = true;
      // Error at or under tolerance means any further Step would refuse
      // to split; record convergence so cache budget loops skip it.
      out.converged = true;
      out.max_error = impl_->CurrentMaxError();
      out.num_colors = impl_->partition().num_colors();
      return out;
    }
    out.splits = 0;  // fallback: repair work is discarded
  }

  // Fallback (and the only path for q_tolerance == 0 specs): reset to the
  // spec's initial partition on the mutated graph. Refinement from here
  // is bit-identical to a from-scratch run.
  impl_ = ColoringBackendRegistry::Global().Create(backend_, view_, initial_,
                                                   params_);
  out.repaired = false;
  out.converged = false;
  out.max_error = impl_->CurrentMaxError();
  out.num_colors = impl_->partition().num_colors();
  return out;
}

}  // namespace dynamic
}  // namespace qsc
