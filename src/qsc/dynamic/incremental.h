// Incremental recoloring under graph edits (ROADMAP item 2; Slim Graph's
// evolving-analytics case for lossy compression, PAPERS.md).
//
// An IncrementalRecolorer wraps any registered ColoringBackend and is
// itself a ColoringBackend, so the session-level ColoringCache can hold
// one per cached spec and keep its anytime-resume guarantee untouched:
// while the graph is frozen every call delegates to the wrapped kernel,
// bit-identical to using the kernel directly.
//
// ApplyGraph is the new verb. On an edit batch the witness rows of the
// colors touched by the edits are stale; instead of discarding the
// partition, the recolorer rebuilds the wrapped kernel over the mutated
// graph *from the current partition* (witness rows re-derive against the
// new adjacency; prior splits are kept) and re-splits until the spec's
// q-tolerance is restored, under a repair split budget. Splits
// concentrate where the edits raised the error — that is the locality of
// the repair path.
//
// Repair/fallback contract (docs/DYNAMIC.md; the differential oracle in
// eval/differential.h gates it at zero tolerance):
//
//   - A spec is repairable iff q_tolerance > 0: the tolerance is the
//     certificate a local repair can restore. A repaired coloring
//     satisfies CurrentMaxError() <= q_tolerance on the mutated graph, so
//     every budget served from it meets the same q-error bound a
//     from-scratch coloring meets.
//   - q_tolerance == 0 specs ("refine to the color budget") and repairs
//     that exceed the split budget or stall fall back: the recolorer
//     resets to the spec's initial partition on the mutated graph, and
//     subsequent refinement is bit-identical to a from-scratch run (the
//     backend determinism contract).
//
// Either way the monotone q-error contract holds between edits, and the
// served coloring is never worse than max(q_tolerance, scratch error).

#ifndef QSC_DYNAMIC_INCREMENTAL_H_
#define QSC_DYNAMIC_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qsc/coloring/backend.h"
#include "qsc/coloring/params.h"
#include "qsc/coloring/partition.h"
#include "qsc/dynamic/edit_stream.h"
#include "qsc/graph/graph.h"
#include "qsc/graph/graph_view.h"

namespace qsc {
namespace dynamic {

struct RepairOptions {
  // Maximum splits one repair may spend before the edit batch is declared
  // too disruptive and the recolorer falls back to scratch. The budget is
  // checked between backend steps, so the final step may overshoot by its
  // own error-recovery splits. 0 means "no repair work": any batch that
  // leaves the error above tolerance falls back.
  int64_t max_repair_splits = 256;
};

struct RepairOutcome {
  // True when the partition was repaired in place (error back under the
  // spec tolerance); false when the recolorer fell back to the initial
  // partition for a from-scratch recoloring.
  bool repaired = false;
  // Splits the repair spent (0 on fallback).
  int64_t splits = 0;
  // Distinct colors of the pre-edit partition containing an edited
  // endpoint — the witness rows the batch invalidated.
  int64_t dirty_colors = 0;
  // True when the wrapped kernel reported convergence during the repair
  // (a converged entry stays converged until the next edit).
  bool converged = false;
  double max_error = 0.0;
  ColorId num_colors = 0;
};

class IncrementalRecolorer final : public ColoringBackend {
 public:
  // `backend` must be a canonical registered name (the Compressor
  // boundary validates); `initial` is the spec's initial partition (the
  // pin structure), which fallbacks reset to. The wrapped kernel is built
  // eagerly over `graph`.
  IncrementalRecolorer(std::shared_ptr<const Graph> graph, std::string backend,
                       Partition initial, const ColoringParams& params);

  // View-backed variant (the mmap serving path): the kernel runs over
  // `view`, and `keepalive` (may be null) pins whatever owns the viewed
  // arrays — a MappedGraph, an owning Graph, or nothing when the caller
  // guarantees the lifetime.
  IncrementalRecolorer(GraphView view, std::shared_ptr<const void> keepalive,
                       std::string backend, Partition initial,
                       const ColoringParams& params);

  // ColoringBackend: pure delegation to the wrapped kernel.
  bool Step(ColorId color_cap = 0) override;
  const Partition& partition() const override;
  double CurrentMaxError() const override;
  int64_t MemoryBytes() const override;

  // Swaps in the already-mutated graph (`edits` is the batch that
  // produced it, used only to identify the dirty colors) and repairs or
  // falls back per the contract above. Not safe concurrently with Step;
  // the ColoringCache serializes per entry.
  RepairOutcome ApplyGraph(std::shared_ptr<const Graph> graph,
                           const std::vector<EditOp>& edits,
                           const RepairOptions& options);

  // The graph the wrapped kernel currently runs over.
  const GraphView& graph_view() const { return view_; }
  const std::string& backend_name() const { return backend_; }

 private:
  GraphView view_;
  std::shared_ptr<const void> keepalive_;
  std::string backend_;
  Partition initial_;
  ColoringParams params_;
  std::unique_ptr<ColoringBackend> impl_;
};

}  // namespace dynamic
}  // namespace qsc

#endif  // QSC_DYNAMIC_INCREMENTAL_H_
