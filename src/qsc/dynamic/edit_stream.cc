#include "qsc/dynamic/edit_stream.h"

#include <cmath>
#include <string>
#include <unordered_set>
#include <utility>

#include "qsc/util/random.h"

namespace qsc {
namespace dynamic {
namespace {

uint64_t DirectedKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | static_cast<uint32_t>(v);
}

// The logical edges of `g` in Arcs() order (canonical u <= v arcs for
// undirected graphs) — the same enumeration perturb.cc uses, which the
// perturb-equivalence contract of GenerateEdits depends on.
std::vector<EdgeTriple> LogicalEdges(const Graph& g) {
  std::vector<EdgeTriple> edges;
  if (g.undirected()) {
    for (const EdgeTriple& a : g.Arcs()) {
      if (a.src <= a.dst) edges.push_back(a);
    }
  } else {
    edges = g.Arcs();
  }
  return edges;
}

// Distinct non-loop pairs an insert could still target.
int64_t InsertCapacity(const Graph& g, int64_t non_loop_edges) {
  const int64_t n = g.num_nodes();
  const int64_t pairs = g.undirected() ? n * (n - 1) / 2 : n * (n - 1);
  return pairs - non_loop_edges;
}

std::string DescribeOp(const EditOp& op) {
  return std::string(EditKindName(op.kind)) + " " + std::to_string(op.src) +
         "->" + std::to_string(op.dst);
}

}  // namespace

const char* EditKindName(EditKind kind) {
  switch (kind) {
    case EditKind::kInsertEdge:
      return "insert";
    case EditKind::kDeleteEdge:
      return "delete";
    case EditKind::kUpdateWeight:
      return "update";
  }
  return "unknown";
}

StatusOr<Graph> ApplyEditBatch(const Graph& g,
                               const std::vector<EditOp>& edits) {
  Graph out = g;
  for (size_t i = 0; i < edits.size(); ++i) {
    const EditOp& op = edits[i];
    Status s;
    switch (op.kind) {
      case EditKind::kInsertEdge:
        s = out.AddEdge(op.src, op.dst, op.weight);
        break;
      case EditKind::kDeleteEdge:
        s = out.RemoveEdge(op.src, op.dst);
        break;
      case EditKind::kUpdateWeight:
        s = out.SetWeight(op.src, op.dst, op.weight);
        break;
      default:
        s = Status::InvalidArgument("unknown edit kind");
        break;
    }
    if (!s.ok()) {
      return Status(s.code(), "edit " + std::to_string(i) + " (" +
                                  DescribeOp(op) + "): " + s.message());
    }
  }
  return out;
}

StatusOr<std::vector<EditOp>> GenerateEdits(const Graph& g, EditKind kind,
                                            int64_t count, uint64_t seed) {
  if (count < 0) {
    return Status::InvalidArgument("edit count must be >= 0; got " +
                                   std::to_string(count));
  }
  Rng rng(seed);
  std::vector<EditOp> ops;
  ops.reserve(count);
  switch (kind) {
    case EditKind::kInsertEdge: {
      const NodeId n = g.num_nodes();
      if (count > 0 && n < 2) {
        return Status::InvalidArgument(
            "insert stream needs a graph with at least 2 nodes");
      }
      std::unordered_set<uint64_t> present;
      int64_t non_loop = 0;
      for (const EdgeTriple& a : LogicalEdges(g)) {
        present.insert(DirectedKey(a.src, a.dst));
        if (a.src != a.dst) ++non_loop;
      }
      if (count > InsertCapacity(g, non_loop)) {
        return Status::InvalidArgument(
            "cannot insert " + std::to_string(count) + " edges: only " +
            std::to_string(InsertCapacity(g, non_loop)) +
            " absent non-loop pairs remain");
      }
      // Same rejection loop as AddRandomEdges, so an insert-only batch
      // reproduces the perturbed graph.
      int64_t added = 0;
      while (added < count) {
        NodeId u = static_cast<NodeId>(rng.NextBounded(n));
        NodeId v = static_cast<NodeId>(rng.NextBounded(n));
        if (u == v) continue;
        if (g.undirected() && u > v) std::swap(u, v);
        if (!present.insert(DirectedKey(u, v)).second) continue;
        ops.push_back({EditKind::kInsertEdge, u, v, 1.0});
        ++added;
      }
      break;
    }
    case EditKind::kDeleteEdge: {
      std::vector<EdgeTriple> edges = LogicalEdges(g);
      const int64_t m = static_cast<int64_t>(edges.size());
      if (count > m) {
        return Status::InvalidArgument(
            "cannot delete " + std::to_string(count) + " edges from a graph "
            "with " + std::to_string(m) + " edges");
      }
      // Same partial Fisher-Yates as RemoveRandomEdges.
      for (int64_t i = 0; i < count; ++i) {
        const int64_t j = i + static_cast<int64_t>(rng.NextBounded(m - i));
        std::swap(edges[i], edges[j]);
        ops.push_back({EditKind::kDeleteEdge, edges[i].src, edges[i].dst, 0.0});
      }
      break;
    }
    case EditKind::kUpdateWeight: {
      const std::vector<EdgeTriple> edges = LogicalEdges(g);
      if (count > 0 && edges.empty()) {
        return Status::InvalidArgument(
            "update stream needs a graph with at least 1 edge");
      }
      for (int64_t i = 0; i < count; ++i) {
        const EdgeTriple& e = edges[rng.NextBounded(edges.size())];
        ops.push_back({EditKind::kUpdateWeight, e.src, e.dst,
                       static_cast<double>(rng.UniformInt(1, 8))});
      }
      break;
    }
    default:
      return Status::InvalidArgument("unknown edit kind");
  }
  return ops;
}

StatusOr<std::vector<std::vector<EditOp>>> GenerateEditBatches(
    const Graph& g, const EditStreamOptions& options) {
  if (options.num_batches < 0) {
    return Status::InvalidArgument("num_batches must be >= 0; got " +
                                   std::to_string(options.num_batches));
  }
  if (options.num_batches > 0 && options.edits_per_batch < 1) {
    return Status::InvalidArgument("edits_per_batch must be >= 1; got " +
                                   std::to_string(options.edits_per_batch));
  }
  for (const double w : {options.insert_weight, options.delete_weight,
                         options.update_weight}) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument("kind weights must be finite and >= 0");
    }
  }
  const double total_odds = options.insert_weight + options.delete_weight +
                            options.update_weight;
  if (total_odds <= 0.0) {
    return Status::InvalidArgument("at least one kind weight must be > 0");
  }
  if (options.min_weight < 1 || options.min_weight > options.max_weight) {
    return Status::InvalidArgument(
        "edit weights need 1 <= min_weight <= max_weight");
  }

  // Model of the evolving logical edge set; ops are applied to it
  // immediately so every batch is valid against its predecessor's graph.
  Rng rng(options.seed);
  const NodeId n = g.num_nodes();
  std::vector<EdgeTriple> edges = LogicalEdges(g);
  std::unordered_set<uint64_t> present;
  int64_t non_loop = 0;
  for (const EdgeTriple& a : edges) {
    present.insert(DirectedKey(a.src, a.dst));
    if (a.src != a.dst) ++non_loop;
  }

  const auto insert_feasible = [&] {
    return n >= 2 && InsertCapacity(g, non_loop) > 0;
  };
  const auto mutate_feasible = [&] { return !edges.empty(); };

  std::vector<std::vector<EditOp>> batches;
  batches.reserve(options.num_batches);
  for (int64_t b = 0; b < options.num_batches; ++b) {
    std::vector<EditOp> batch;
    batch.reserve(options.edits_per_batch);
    for (int64_t i = 0; i < options.edits_per_batch; ++i) {
      const double x = rng.UniformDouble(0.0, total_odds);
      EditKind kind = x < options.insert_weight ? EditKind::kInsertEdge
                      : x < options.insert_weight + options.delete_weight
                          ? EditKind::kDeleteEdge
                          : EditKind::kUpdateWeight;
      // Fall through to the first feasible kind in insert -> delete ->
      // update order when the drawn kind has no valid target.
      const bool kind_feasible =
          kind == EditKind::kInsertEdge ? insert_feasible() : mutate_feasible();
      if (!kind_feasible) {
        if (insert_feasible()) {
          kind = EditKind::kInsertEdge;
        } else if (mutate_feasible()) {
          kind = EditKind::kDeleteEdge;
        } else {
          return Status::InvalidArgument(
              "graph exhausted at batch " + std::to_string(b) +
              ": no feasible edit kind remains");
        }
      }
      switch (kind) {
        case EditKind::kInsertEdge: {
          NodeId u, v;
          while (true) {
            u = static_cast<NodeId>(rng.NextBounded(n));
            v = static_cast<NodeId>(rng.NextBounded(n));
            if (u == v) continue;
            if (g.undirected() && u > v) std::swap(u, v);
            if (present.insert(DirectedKey(u, v)).second) break;
          }
          const double w = static_cast<double>(
              rng.UniformInt(options.min_weight, options.max_weight));
          edges.push_back({u, v, w});
          ++non_loop;
          batch.push_back({EditKind::kInsertEdge, u, v, w});
          break;
        }
        case EditKind::kDeleteEdge: {
          const int64_t j =
              static_cast<int64_t>(rng.NextBounded(edges.size()));
          const EdgeTriple e = edges[j];
          present.erase(DirectedKey(e.src, e.dst));
          if (e.src != e.dst) --non_loop;
          edges[j] = edges.back();
          edges.pop_back();
          batch.push_back({EditKind::kDeleteEdge, e.src, e.dst, 0.0});
          break;
        }
        case EditKind::kUpdateWeight: {
          const int64_t j =
              static_cast<int64_t>(rng.NextBounded(edges.size()));
          const double w = static_cast<double>(
              rng.UniformInt(options.min_weight, options.max_weight));
          edges[j].weight = w;
          batch.push_back(
              {EditKind::kUpdateWeight, edges[j].src, edges[j].dst, w});
          break;
        }
      }
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace dynamic
}  // namespace qsc
