// The edit model for dynamic graphs (ROADMAP item 2, docs/DYNAMIC.md):
// a small vocabulary of single-edge edits, all-or-nothing batch
// application on top of the Graph mutators, and seeded deterministic
// edit-stream generators.
//
// The generators are the churn counterpart of graph/perturb: the
// single-kind GenerateEdits draws exactly like AddRandomEdges /
// RemoveRandomEdges (same present-set rejection loop, same partial
// Fisher-Yates), so applying an insert-only or delete-only batch
// reproduces the perturbed graph bit for bit. GenerateEditBatches adds a
// mixed-kind stream whose batches stay valid against the evolving graph.
// Everything is a pure function of (graph, options/seed).

#ifndef QSC_DYNAMIC_EDIT_STREAM_H_
#define QSC_DYNAMIC_EDIT_STREAM_H_

#include <cstdint>
#include <vector>

#include "qsc/graph/graph.h"
#include "qsc/util/status.h"

namespace qsc {
namespace dynamic {

enum class EditKind {
  kInsertEdge = 0,
  kDeleteEdge = 1,
  kUpdateWeight = 2,
};
inline constexpr int kNumEditKinds = 3;

// "insert" | "delete" | "update" (also the qsc-trace v2 wire names).
const char* EditKindName(EditKind kind);

// One edit. On an undirected graph (src, dst) addresses the logical edge
// {src, dst}. `weight` is the new arc weight for inserts and updates and
// is ignored (conventionally 0) for deletes.
struct EditOp {
  EditKind kind = EditKind::kInsertEdge;
  NodeId src = 0;
  NodeId dst = 0;
  double weight = 0.0;

  friend bool operator==(const EditOp& a, const EditOp& b) {
    return a.kind == b.kind && a.src == b.src && a.dst == b.dst &&
           a.weight == b.weight;
  }
  friend bool operator!=(const EditOp& a, const EditOp& b) { return !(a == b); }
};

// Applies `edits` in order to a copy of `g` and returns the mutated
// graph; `g` itself is never modified. All-or-nothing: the first invalid
// edit (per the Graph mutator contracts — duplicate insert, absent
// delete/update, bad endpoint or weight) fails the whole batch with the
// mutator's status code and a message naming the offending edit.
StatusOr<Graph> ApplyEditBatch(const Graph& g, const std::vector<EditOp>& edits);

// One seeded batch of `count` edits of a single kind, valid against `g`
// when applied in order: inserts are distinct absent non-loop pairs
// (weight 1, drawn exactly like AddRandomEdges), deletes are distinct
// existing edges (drawn exactly like RemoveRandomEdges), updates
// re-weight existing edges with integer weights in [1, 8]. Rejects
// counts the graph cannot satisfy (more deletes than edges, more inserts
// than absent pairs, updates on an edgeless graph).
StatusOr<std::vector<EditOp>> GenerateEdits(const Graph& g, EditKind kind,
                                            int64_t count, uint64_t seed);

// A seeded mixed-kind stream: `num_batches` batches of `edits_per_batch`
// edits, each batch valid against the graph produced by applying the
// previous batches. Kinds are drawn per edit from the relative weights;
// a kind that is infeasible in the current state (delete/update with no
// edges, insert with every pair present) falls through to the first
// feasible kind in insert -> delete -> update order.
struct EditStreamOptions {
  uint64_t seed = 1;
  int64_t num_batches = 4;
  int64_t edits_per_batch = 8;

  // Relative kind odds; each must be >= 0 and they must not all be 0.
  double insert_weight = 1.0;
  double delete_weight = 1.0;
  double update_weight = 1.0;

  // Inserted / updated weights are integers drawn from this range
  // (1 <= min <= max keeps them valid arc weights).
  int64_t min_weight = 1;
  int64_t max_weight = 8;
};

StatusOr<std::vector<std::vector<EditOp>>> GenerateEditBatches(
    const Graph& g, const EditStreamOptions& options);

}  // namespace dynamic
}  // namespace qsc

#endif  // QSC_DYNAMIC_EDIT_STREAM_H_
