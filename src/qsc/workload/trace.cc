#include "qsc/workload/trace.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "qsc/eval/json.h"
#include "qsc/util/check.h"
#include "qsc/util/random.h"

namespace qsc {
namespace workload {
namespace {

constexpr const char* kHeaderV1 = "qsc-trace v1";
constexpr const char* kHeaderV2 = "qsc-trace v2";

const char* const kKindNames[kNumTraceEventKinds] = {
    "coloring", "maxflow", "maxflow-batch", "solvelp", "centrality",
    "insert",   "delete",  "update"};

// Zipf(s) sampler over ranks [0, n): cumulative weights built once, one
// uniform draw per sample. For the default s = 1 the weights are exact
// IEEE divisions (1.0 / rank), so the cumulative table — and therefore
// every sampled index — is bit-identical on every platform; other
// exponents go through std::pow.
class ZipfSampler {
 public:
  ZipfSampler(int32_t n, double s) {
    cumulative_.reserve(n);
    double total = 0.0;
    for (int32_t i = 0; i < n; ++i) {
      const double rank = static_cast<double>(i + 1);
      total += s == 1.0 ? 1.0 / rank : 1.0 / std::pow(rank, s);
      cumulative_.push_back(total);
    }
  }

  int32_t Sample(Rng& rng) const {
    const double u = rng.UniformDouble() * cumulative_.back();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    const size_t index = static_cast<size_t>(it - cumulative_.begin());
    return static_cast<int32_t>(
        std::min(index, cumulative_.size() - 1));
  }

 private:
  std::vector<double> cumulative_;
};

// The two built-in arrival models share one generator; they differ only
// in how interarrival gaps are drawn.
enum class ArrivalModel { kPoisson, kBursty };

// Draw order per event is part of the format contract: kind, spec,
// budget (no draw — a per-spec ascending cycle), then the interarrival
// gap. The gap is the only draw whose *value* touches libm (std::log), so
// the discrete fields — everything the deterministic serving counters are
// built from — are platform-exact, while arrival times are exact up to
// libm's last-ulp freedom.
class MixedTraceSource final : public TraceSource {
 public:
  MixedTraceSource(ArrivalModel model, const TraceGenOptions& options)
      : model_(model),
        options_(options),
        rng_(options.seed),
        edit_rng_(options.seed ^ 0x9e3779b97f4a7c15ull),
        zipf_(options.num_specs, options.zipf_s),
        budget_cursor_(options.num_specs, 0) {
    double total = 0.0;
    for (const double w : options_.kind_weights) {
      total += w;
      kind_cumulative_.push_back(total);
    }
  }

  bool Next(TraceEvent* event) override {
    if (emitted_ >= options_.num_events) return false;
    ++emitted_;

    // Every (edit_interval + 1)-th event is an edit batch. Its gap comes
    // from a dedicated rng stream, so the query subsequence — kinds,
    // specs, budgets, AND gaps — is exactly the edits-off trace.
    if (options_.edit_interval > 0 &&
        emitted_ % (options_.edit_interval + 1) == 0) {
      event->kind = static_cast<QueryKind>(
          kNumQueryKinds + static_cast<int>(edits_emitted_ % 3));
      event->budget = options_.edits_per_batch;
      event->spec_index = static_cast<int32_t>(edits_emitted_);
      event->batch_size = 1;
      ++edits_emitted_;
      clock_ += Exponential(edit_rng_, options_.mean_interarrival_seconds);
      event->arrival_seconds = clock_;
      return true;
    }

    event->kind = SampleKind();
    event->spec_index = zipf_.Sample(rng_);
    auto& cursor = budget_cursor_[event->spec_index];
    event->budget =
        options_.budgets[cursor % options_.budgets.size()];
    ++cursor;
    event->batch_size =
        event->kind == QueryKind::kMaxFlowBatch ? options_.batch_size : 1;

    AdvanceClock();
    event->arrival_seconds = clock_;
    return true;
  }

 private:
  void AdvanceClock() {
    double mean = options_.mean_interarrival_seconds;
    if (model_ == ArrivalModel::kBursty) {
      mean /= options_.burst_speedup;
      if (in_burst_ == options_.burst_length) {
        in_burst_ = 0;
        clock_ += Exponential(rng_, options_.idle_gap_seconds);
      }
      ++in_burst_;
    }
    clock_ += Exponential(rng_, mean);
  }

  QueryKind SampleKind() {
    const double u = rng_.UniformDouble() * kind_cumulative_.back();
    for (size_t i = 0; i < kind_cumulative_.size(); ++i) {
      if (u < kind_cumulative_[i]) return static_cast<QueryKind>(i);
    }
    return static_cast<QueryKind>(kind_cumulative_.size() - 1);
  }

  static double Exponential(Rng& rng, double mean) {
    if (mean <= 0.0) return 0.0;
    // 1 - u lies in (0, 1], so the log is finite and the gap positive.
    return -mean * std::log(1.0 - rng.UniformDouble());
  }

  const ArrivalModel model_;
  const TraceGenOptions options_;
  Rng rng_;
  Rng edit_rng_;  // edit-event gaps only; keeps the query stream untouched
  ZipfSampler zipf_;
  std::vector<double> kind_cumulative_;
  std::vector<uint32_t> budget_cursor_;  // per-spec ascending budget cycle
  int64_t emitted_ = 0;
  int64_t edits_emitted_ = 0;  // running edit counter (the spec-column salt)
  int32_t in_burst_ = 0;
  double clock_ = 0.0;
};

class ReplaySource final : public TraceSource {
 public:
  explicit ReplaySource(std::vector<TraceEvent> events)
      : events_(std::move(events)) {}

  bool Next(TraceEvent* event) override {
    if (next_ >= events_.size()) return false;
    *event = events_[next_++];
    return true;
  }

 private:
  std::vector<TraceEvent> events_;
  size_t next_ = 0;
};

Status ValidateGenOptions(const TraceGenOptions& o) {
  if (o.num_events < 0) {
    return Status::InvalidArgument("num_events must be >= 0; got " +
                                   std::to_string(o.num_events));
  }
  if (o.num_specs < 1) {
    return Status::InvalidArgument("num_specs must be >= 1; got " +
                                   std::to_string(o.num_specs));
  }
  if (!std::isfinite(o.zipf_s) || o.zipf_s < 0.0) {
    return Status::InvalidArgument("zipf_s must be finite and >= 0; got " +
                                   std::to_string(o.zipf_s));
  }
  if (!std::isfinite(o.mean_interarrival_seconds) ||
      o.mean_interarrival_seconds <= 0.0) {
    return Status::InvalidArgument(
        "mean_interarrival_seconds must be finite and positive; got " +
        std::to_string(o.mean_interarrival_seconds));
  }
  if (o.burst_length < 1) {
    return Status::InvalidArgument("burst_length must be >= 1; got " +
                                   std::to_string(o.burst_length));
  }
  if (!std::isfinite(o.burst_speedup) || o.burst_speedup < 1.0) {
    return Status::InvalidArgument(
        "burst_speedup must be finite and >= 1; got " +
        std::to_string(o.burst_speedup));
  }
  if (!std::isfinite(o.idle_gap_seconds) || o.idle_gap_seconds < 0.0) {
    return Status::InvalidArgument(
        "idle_gap_seconds must be finite and >= 0; got " +
        std::to_string(o.idle_gap_seconds));
  }
  if (o.budgets.empty()) {
    return Status::InvalidArgument("budgets must be non-empty");
  }
  for (const ColorId b : o.budgets) {
    if (b <= 0) {
      return Status::InvalidArgument("budgets must be positive; got " +
                                     std::to_string(b));
    }
  }
  if (o.kind_weights.size() != static_cast<size_t>(kNumQueryKinds)) {
    return Status::InvalidArgument(
        "kind_weights must have exactly " + std::to_string(kNumQueryKinds) +
        " entries; got " + std::to_string(o.kind_weights.size()));
  }
  double total = 0.0;
  for (const double w : o.kind_weights) {
    if (!std::isfinite(w) || w < 0.0) {
      return Status::InvalidArgument(
          "kind_weights must be finite and >= 0; got " + std::to_string(w));
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument(
        "kind_weights must have at least one positive entry");
  }
  if (o.batch_size < 1) {
    return Status::InvalidArgument("batch_size must be >= 1; got " +
                                   std::to_string(o.batch_size));
  }
  if (o.edit_interval < 0) {
    return Status::InvalidArgument("edit_interval must be >= 0; got " +
                                   std::to_string(o.edit_interval));
  }
  if (o.edits_per_batch < 1) {
    return Status::InvalidArgument("edits_per_batch must be >= 1; got " +
                                   std::to_string(o.edits_per_batch));
  }
  return Status::Ok();
}

Status LineError(size_t line_number, const std::string& what) {
  return Status::InvalidArgument("trace line " + std::to_string(line_number) +
                                 ": " + what);
}

// Splits `line` on runs of spaces/tabs (a trailing '\r' was stripped by
// the caller).
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(line.substr(start, i - start));
  }
  return tokens;
}

bool ParseDoubleToken(const std::string& token, double* out) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty() || errno != 0) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseIntToken(const std::string& token, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || token.empty() || errno != 0) {
    return false;
  }
  *out = static_cast<int64_t>(value);
  return true;
}

}  // namespace

TraceSource::~TraceSource() = default;

const char* QueryKindName(QueryKind kind) {
  const int index = static_cast<int>(kind);
  QSC_CHECK(index >= 0 && index < kNumTraceEventKinds);
  return kKindNames[index];
}

std::vector<std::string> TraceGeneratorNames() {
  return {"bursty-zipf-mixed", "poisson-zipf-mixed"};
}

StatusOr<std::unique_ptr<TraceSource>> MakeTraceSource(
    const std::string& name, const TraceGenOptions& options) {
  ArrivalModel model;
  if (name == "poisson-zipf-mixed") {
    model = ArrivalModel::kPoisson;
  } else if (name == "bursty-zipf-mixed") {
    model = ArrivalModel::kBursty;
  } else {
    return Status::NotFound("unknown trace generator \"" + name +
                            "\" (known: bursty-zipf-mixed, "
                            "poisson-zipf-mixed)");
  }
  QSC_RETURN_IF_ERROR(ValidateGenOptions(options));
  return std::unique_ptr<TraceSource>(
      std::make_unique<MixedTraceSource>(model, options));
}

std::unique_ptr<TraceSource> ReplayTraceSource(
    std::vector<TraceEvent> events) {
  return std::make_unique<ReplaySource>(std::move(events));
}

std::vector<TraceEvent> DrainTrace(TraceSource& source) {
  std::vector<TraceEvent> events;
  TraceEvent event;
  while (source.Next(&event)) events.push_back(event);
  return events;
}

std::string FormatTrace(const std::vector<TraceEvent>& events) {
  // The header is the lowest version that can express the events, so a
  // pure-query trace stays byte-identical to the v1 serializer.
  bool has_edits = false;
  for (const TraceEvent& e : events) has_edits |= IsEditEvent(e.kind);
  std::string out = has_edits ? kHeaderV2 : kHeaderV1;
  out += '\n';
  for (const TraceEvent& e : events) {
    out += eval::JsonNumber(e.arrival_seconds);
    out += ' ';
    out += QueryKindName(e.kind);
    out += ' ';
    out += std::to_string(e.budget);
    out += ' ';
    out += std::to_string(e.spec_index);
    out += ' ';
    out += std::to_string(e.batch_size);
    out += '\n';
  }
  return out;
}

StatusOr<std::vector<TraceEvent>> ParseTrace(std::string_view text) {
  std::vector<TraceEvent> events;
  bool saw_header = false;
  bool v2 = false;
  double last_arrival = -std::numeric_limits<double>::infinity();
  size_t line_number = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t newline = text.find('\n', pos);
    if (newline == std::string_view::npos) {
      if (pos == text.size()) break;  // no trailing fragment
      newline = text.size();
    }
    std::string_view line = text.substr(pos, newline - pos);
    pos = newline + 1;
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

    // Blank and comment lines are ignored everywhere.
    const size_t first =
        line.find_first_not_of(" \t");
    if (first == std::string_view::npos) continue;
    if (line[first] == '#') continue;

    if (!saw_header) {
      if (line != kHeaderV1 && line != kHeaderV2) {
        return LineError(line_number,
                         "expected header \"" + std::string(kHeaderV1) +
                             "\" or \"" + std::string(kHeaderV2) +
                             "\"; got \"" + std::string(line) + "\"");
      }
      v2 = line == kHeaderV2;
      saw_header = true;
      continue;
    }

    const std::vector<std::string> tokens = Tokenize(line);
    if (tokens.size() != 5) {
      return LineError(line_number, "expected 5 fields "
                                    "(arrival kind budget spec batch); got " +
                                        std::to_string(tokens.size()));
    }

    TraceEvent event;
    if (!ParseDoubleToken(tokens[0], &event.arrival_seconds) ||
        !std::isfinite(event.arrival_seconds) ||
        event.arrival_seconds < 0.0) {
      return LineError(line_number, "arrival_seconds must be a finite "
                                    "non-negative number; got \"" +
                                        tokens[0] + "\"");
    }
    if (event.arrival_seconds < last_arrival) {
      return LineError(line_number,
                       "arrival_seconds must be non-decreasing; " +
                           tokens[0] + " follows " +
                           eval::JsonNumber(last_arrival));
    }
    last_arrival = event.arrival_seconds;

    int kind = 0;
    for (; kind < kNumTraceEventKinds; ++kind) {
      if (tokens[1] == kKindNames[kind]) break;
    }
    if (kind == kNumTraceEventKinds) {
      return LineError(line_number,
                       "unknown query kind \"" + tokens[1] + "\"");
    }
    event.kind = static_cast<QueryKind>(kind);
    if (IsEditEvent(event.kind) && !v2) {
      return LineError(line_number, "edit event \"" + tokens[1] +
                                        "\" requires the \"" +
                                        std::string(kHeaderV2) + "\" header");
    }

    int64_t value = 0;
    if (!ParseIntToken(tokens[2], &value) || value <= 0 ||
        value > std::numeric_limits<ColorId>::max()) {
      return LineError(line_number, "budget must be a positive 32-bit "
                                    "integer; got \"" +
                                        tokens[2] + "\"");
    }
    event.budget = static_cast<ColorId>(value);

    if (!ParseIntToken(tokens[3], &value) || value < 0 ||
        value > std::numeric_limits<int32_t>::max()) {
      return LineError(line_number, "spec must be a non-negative 32-bit "
                                    "integer; got \"" +
                                        tokens[3] + "\"");
    }
    event.spec_index = static_cast<int32_t>(value);

    if (!ParseIntToken(tokens[4], &value) || value < 1 ||
        value > std::numeric_limits<int32_t>::max()) {
      return LineError(line_number, "batch must be a positive 32-bit "
                                    "integer; got \"" +
                                        tokens[4] + "\"");
    }
    event.batch_size = static_cast<int32_t>(value);

    events.push_back(event);
  }

  if (!saw_header) {
    return Status::InvalidArgument(
        "trace is missing the \"" + std::string(kHeaderV1) + "\" header");
  }
  return events;
}

}  // namespace workload
}  // namespace qsc
