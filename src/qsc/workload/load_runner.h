// The service-style load harness (docs/SERVING.md): fan a workload trace
// over one qsc::Compressor session from N client threads and report
// throughput, tail latency, and the session's amortization counters.
//
// Determinism contract — the backbone of the serving benchmarks and the
// seeded-determinism test tier: every *counter* in LoadReport
// (total/failed query counts, per-kind counts, per-kind result checksums)
// is a pure function of the trace and the query universe. Client threads
// claim events round-robin (thread t serves events i with i % T == t) and
// write only their own per-event result slots; the reduction into the
// report walks the slots in event order. Since every Compressor query
// result is itself bit-identical under concurrency (docs/API.md), the
// counters are bitwise equal for any thread count — LoadRunnerTest checks
// T in {1, 2, 8}, and the CI benchmark job gates --threads 1 against 4.
// Latency percentiles, qps, and wall time are gauges: machine- and
// schedule-dependent by nature, never gated.

#ifndef QSC_WORKLOAD_LOAD_RUNNER_H_
#define QSC_WORKLOAD_LOAD_RUNNER_H_

#include <cstdint>
#include <vector>

#include "qsc/api/compressor.h"
#include "qsc/lp/model.h"
#include "qsc/util/status.h"
#include "qsc/workload/trace.h"

namespace qsc {
namespace workload {

struct LoadRunnerOptions {
  // Client threads issuing queries concurrently. Each runs a closed loop
  // over its share of the trace unless `paced` is set.
  int32_t num_client_threads = 1;

  // Open-loop mode: each event waits until its trace arrival time
  // (scaled by `time_scale`) before issuing. Off by default — tests and
  // benchmarks want maximum pressure, not a wall-clock replay.
  bool paced = false;
  double time_scale = 1.0;

  // Universe of LP instances for kSolveLp events (spec_index selects
  // modulo its size). Required non-empty when the trace contains any
  // kSolveLp event.
  std::vector<LpProblem> lp_universe;
};

// Aggregate result of one load run. See the file comment for which
// fields are deterministic counters and which are gauges.
struct LoadReport {
  // -- Deterministic counters (gated in CI) --
  int64_t total_queries = 0;   // trace events served
  int64_t failed_queries = 0;  // events whose query returned an error
  // Per QueryKind (indexed by the enum), the event count and a checksum
  // of the results: coloring sums max_q + num_colors, maxflow the upper
  // bound, maxflow-batch the batch's summed upper bounds, solvelp the
  // reduced objective, centrality the summed scores. Any change in any
  // served result moves a checksum.
  std::vector<int64_t> kind_counts;
  std::vector<double> kind_checksums;

  // -- Gauges (machine-dependent; reported, never gated) --
  double wall_seconds = 0.0;
  double qps = 0.0;  // total_queries / wall_seconds
  // Nearest-rank percentiles over all per-event latencies.
  double latency_p50_s = 0.0;
  double latency_p95_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_max_s = 0.0;
  // Session counters snapshotted after the run (cache hits/misses/
  // evictions/bytes); deterministic at one thread count but attribution
  // can shift under races, so treated as a gauge.
  CompressorStats session_stats;
};

// Replays `trace` against `session` and aggregates a LoadReport.
// Validates options and the trace's requirements up front: a graph query
// in the trace needs a session with a graph, a kSolveLp event a
// non-empty lp_universe. Individual query failures during the run are
// *not* errors — they count into failed_queries (deterministically, so a
// trace that trips validation trips it identically at every thread
// count).
StatusOr<LoadReport> RunLoad(Compressor& session,
                             const std::vector<TraceEvent>& trace,
                             const LoadRunnerOptions& options = {});

}  // namespace workload
}  // namespace qsc

#endif  // QSC_WORKLOAD_LOAD_RUNNER_H_
