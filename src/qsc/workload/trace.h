// Seeded workload traces for the service-style load harness
// (docs/SERVING.md). A trace is a finite sequence of query arrival events
// against one qsc::Compressor session — what a serving deployment of the
// paper's compress-once/query-many model would see. Everything is
// deterministic: a generator is a pure function of its TraceGenOptions
// (all randomness flows through qsc::Rng), and a trace round-trips through
// the text format bit-identically, so a saved trace replays the exact
// workload on any platform.
//
// Generators are registered by name ("poisson-zipf-mixed",
// "bursty-zipf-mixed") behind the single TraceSource::Next() pull API, so
// the load runner, the serving benchmarks, and the tests all consume
// traces the same way regardless of origin (generator or parsed file).
//
// Text format (one event per line; blank lines and '#' comment lines are
// ignored):
//
//   qsc-trace v1
//   <arrival_seconds> <kind> <budget> <spec> <batch>
//
// with <kind> one of coloring | maxflow | maxflow-batch | solvelp |
// centrality, <arrival_seconds> a non-decreasing finite double rendered in
// shortest round-trip form (eval::JsonNumber), <budget> a positive color
// budget, <spec> a non-negative spec index, and <batch> a batch size >= 1
// (meaningful for maxflow-batch, fixed at 1 otherwise). ParseTrace rejects
// malformed input with a line-numbered InvalidArgument and never aborts —
// tests/workload_trace_test.cc fuzzes truncations and mutations.
//
// Version 2 (docs/DYNAMIC.md) adds graph-edit events to the same 5-field
// line under the header `qsc-trace v2`: <kind> may additionally be
// insert | delete | update, in which case <budget> is the number of
// single-edge edits in the batch (>= 1) and <spec> is the edit-stream
// salt the replayer mixes into its seed. ParseTrace accepts both headers;
// an edit event under the v1 header is a line-numbered error, and
// FormatTrace emits the v2 header exactly when the events contain an edit
// — a pure-query trace always serializes as v1, byte-identical to before.

#ifndef QSC_WORKLOAD_TRACE_H_
#define QSC_WORKLOAD_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "qsc/coloring/partition.h"
#include "qsc/util/status.h"

namespace qsc {
namespace workload {

// The event kinds a trace line can carry. The first five are queries,
// matching the Compressor surface (kMaxFlowBatch issues one MaxFlowBatch
// call of `batch_size` terminal pairs — the service-side amortization
// path); the last three are qsc-trace v2 graph-edit events, replayed
// through Compressor::ApplyEdits.
enum class QueryKind {
  kColoring = 0,
  kMaxFlow,
  kMaxFlowBatch,
  kSolveLp,
  kCentrality,
  kInsertEdge,    // v2: batch of edge insertions
  kDeleteEdge,    // v2: batch of edge deletions
  kUpdateWeight,  // v2: batch of weight updates
};
// Query kinds only — per-kind counters/checksum arrays are sized by this,
// so the v2 edit kinds deliberately do not extend it.
inline constexpr int kNumQueryKinds = 5;
// All trace event kinds, queries plus edits.
inline constexpr int kNumTraceEventKinds = 8;

// True for the v2 edit-event kinds.
inline constexpr bool IsEditEvent(QueryKind kind) {
  return static_cast<int>(kind) >= kNumQueryKinds;
}

// Stable wire name of a kind ("coloring", "maxflow", ..., "insert", ...).
const char* QueryKindName(QueryKind kind);

// One arrival in a workload trace. `spec_index` selects a query spec from
// the harness's universe (a pin set / LP instance / parameter bundle —
// the trace layer only guarantees determinism of the index); `budget` is
// the color budget the query runs at. For the v2 edit events the same
// fields are reinterpreted: `budget` is the number of single-edge edits
// in the batch and `spec_index` the edit-stream salt.
struct TraceEvent {
  double arrival_seconds = 0.0;  // offset from trace start; non-decreasing
  QueryKind kind = QueryKind::kColoring;
  ColorId budget = 1;
  int32_t spec_index = 0;  // >= 0
  int32_t batch_size = 1;  // >= 1; > 1 only meaningful for kMaxFlowBatch

  friend bool operator==(const TraceEvent& a, const TraceEvent& b) {
    return a.arrival_seconds == b.arrival_seconds && a.kind == b.kind &&
           a.budget == b.budget && a.spec_index == b.spec_index &&
           a.batch_size == b.batch_size;
  }
  friend bool operator!=(const TraceEvent& a, const TraceEvent& b) {
    return !(a == b);
  }
};

// Knobs shared by the built-in generators. Defaults give a small mixed
// open-loop workload suitable for tests; the serving benchmarks scale
// them up.
struct TraceGenOptions {
  uint64_t seed = 1;
  int64_t num_events = 256;

  // Spec universe: spec_index is Zipf(s)-distributed over
  // [0, num_specs) — rank 1 the hottest — so a few specs dominate, which
  // is what makes the coloring cache (and its eviction policy) earn its
  // keep.
  int32_t num_specs = 8;
  double zipf_s = 1.0;

  // Interarrival model. "poisson-zipf-mixed": exponential interarrivals
  // with this mean. "bursty-zipf-mixed": on/off bursts — within a burst
  // of `burst_length` events, interarrivals shrink by `burst_speedup`;
  // between bursts one idle gap of `idle_gap_seconds` mean is inserted.
  double mean_interarrival_seconds = 1e-3;
  int32_t burst_length = 16;
  double burst_speedup = 8.0;
  double idle_gap_seconds = 0.05;

  // Color budgets cycled through per spec (ascending sweeps are the
  // anytime-friendly direction; the mix still produces down-budget
  // requests when a hot spec is revisited at a lower rung).
  std::vector<ColorId> budgets = {8, 16, 32, 64};

  // Relative weight of each QueryKind, indexed by the enum order
  // (coloring, maxflow, maxflow-batch, solvelp, centrality). Zero
  // disables a kind; at least one weight must be positive.
  std::vector<double> kind_weights = {4.0, 3.0, 1.0, 1.0, 1.0};

  // Terminal pairs per kMaxFlowBatch event.
  int32_t batch_size = 4;

  // Edit-event cadence (qsc-trace v2): 0 disables edits (the default —
  // generator output is then byte-identical to the v1 format); k > 0
  // makes every (k+1)-th event an edit batch. Edit kinds cycle
  // insert -> delete -> update; the event's spec column carries a
  // running edit counter (the replayer's per-batch salt) and its budget
  // column carries `edits_per_batch`. Edit events consume only the
  // interarrival draw, so the query subsequence of an edited trace is
  // unchanged from the same options with edits off.
  int32_t edit_interval = 0;
  int32_t edits_per_batch = 4;
};

// Pull-based event stream. Next() fills `*event` and returns true, or
// returns false at end of trace (idempotent thereafter). Implementations
// are single-threaded; the LoadRunner drains a source once up front.
class TraceSource {
 public:
  virtual ~TraceSource();
  virtual bool Next(TraceEvent* event) = 0;
};

// Names of the registered generators, sorted.
std::vector<std::string> TraceGeneratorNames();

// Instantiates the named generator over `options`, validating both.
// Unknown names yield NotFound; invalid options InvalidArgument.
StatusOr<std::unique_ptr<TraceSource>> MakeTraceSource(
    const std::string& name, const TraceGenOptions& options);

// A TraceSource that replays an in-memory event sequence verbatim.
std::unique_ptr<TraceSource> ReplayTraceSource(std::vector<TraceEvent> events);

// Pulls `source` to exhaustion.
std::vector<TraceEvent> DrainTrace(TraceSource& source);

// Serializes events in the text format above. FormatTrace(ParseTrace(s))
// == s for any s FormatTrace produced (doubles render in shortest
// round-trip form), and ParseTrace(FormatTrace(e)) == e element-wise.
std::string FormatTrace(const std::vector<TraceEvent>& events);

// Parses the text format; see the file comment for the accepted grammar
// and the error contract (line-numbered InvalidArgument, never a crash).
StatusOr<std::vector<TraceEvent>> ParseTrace(std::string_view text);

}  // namespace workload
}  // namespace qsc

#endif  // QSC_WORKLOAD_TRACE_H_
