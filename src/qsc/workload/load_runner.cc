#include "qsc/workload/load_runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "qsc/dynamic/edit_stream.h"
#include "qsc/util/check.h"
#include "qsc/util/timer.h"

namespace qsc {
namespace workload {
namespace {

// Deterministic event -> query mapping. All index math is 64-bit and
// wraps into range, so any trace replay (including fuzzed spec indices)
// maps to *some* query; out-of-contract queries fail through the
// Compressor's validation and count into failed_queries.
NodeId WrapToNode(int64_t value, NodeId n) {
  return static_cast<NodeId>(((value % n) + n) % n);
}

std::pair<NodeId, NodeId> TerminalsFor(int64_t spec, NodeId n) {
  const NodeId source = WrapToNode(spec, n);
  if (n < 2) return {source, source};  // rejected by MaxFlow, by design
  const NodeId sink_base = n - 1 - WrapToNode(spec, n - 1);
  const NodeId sink =
      sink_base == source ? (source + 1) % n : sink_base;
  return {source, sink};
}

// Per-event result slot; written by exactly one client thread, reduced
// in event order after the join so aggregates are thread-count
// invariant. The edit fields are used only by edit-event slots.
struct EventSlot {
  double primary = 0.0;  // per-kind checksum contribution
  double latency_seconds = 0.0;
  bool ok = false;
  int64_t edits_applied = 0;
  int64_t repairs = 0;
  int64_t fallbacks = 0;
};

Status ValidateRun(const Compressor& session,
                   const std::vector<TraceEvent>& trace,
                   const LoadRunnerOptions& options) {
  if (options.num_client_threads < 1) {
    return Status::InvalidArgument(
        "num_client_threads must be >= 1; got " +
        std::to_string(options.num_client_threads));
  }
  if (!std::isfinite(options.time_scale) || options.time_scale < 0.0) {
    return Status::InvalidArgument("time_scale must be finite and >= 0; got " +
                                   std::to_string(options.time_scale));
  }
  if (options.max_repair_splits < 0) {
    return Status::InvalidArgument(
        "max_repair_splits must be >= 0; got " +
        std::to_string(options.max_repair_splits));
  }
  bool needs_graph = false;
  bool needs_lp = false;
  for (const TraceEvent& event : trace) {
    if (event.kind == QueryKind::kSolveLp) {
      needs_lp = true;
    } else {
      needs_graph = true;
    }
  }
  if (needs_graph && !session.has_graph()) {
    return Status::FailedPrecondition(
        "trace contains graph queries but the session has no graph");
  }
  if (needs_lp && options.lp_universe.empty()) {
    return Status::InvalidArgument(
        "trace contains solvelp events but lp_universe is empty");
  }
  return Status::Ok();
}

// Issues one event's query and fills its slot. The primary value is the
// checksum contribution documented on LoadReport::kind_checksums.
void ServeEvent(Compressor& session, const TraceEvent& event,
                const LoadRunnerOptions& options, EventSlot* slot) {
  const int64_t spec = event.spec_index;
  switch (event.kind) {
    case QueryKind::kColoring: {
      QueryOptions q;
      q.max_colors = event.budget;
      q.pinned = {WrapToNode(spec, session.graph().num_nodes())};
      StatusOr<ColoringResult> result = session.Coloring(q);
      if (result.ok()) {
        slot->ok = true;
        slot->primary =
            result->max_q + static_cast<double>(result->coloring->num_colors());
      }
      break;
    }
    case QueryKind::kMaxFlow: {
      QueryOptions q;
      q.max_colors = event.budget;
      const auto [source, sink] =
          TerminalsFor(spec, session.graph().num_nodes());
      StatusOr<FlowQueryResult> result = session.MaxFlow(source, sink, q);
      if (result.ok()) {
        slot->ok = true;
        slot->primary = result->upper_bound;
      }
      break;
    }
    case QueryKind::kMaxFlowBatch: {
      QueryOptions q;
      q.max_colors = event.budget;
      std::vector<std::pair<NodeId, NodeId>> pairs;
      pairs.reserve(event.batch_size);
      for (int32_t j = 0; j < event.batch_size; ++j) {
        pairs.push_back(TerminalsFor(spec + j, session.graph().num_nodes()));
      }
      StatusOr<std::vector<FlowQueryResult>> result =
          session.MaxFlowBatch(pairs, q);
      if (result.ok()) {
        slot->ok = true;
        double sum = 0.0;
        for (const FlowQueryResult& r : *result) sum += r.upper_bound;
        slot->primary = sum;
      }
      break;
    }
    case QueryKind::kSolveLp: {
      QueryOptions q;
      // SolveLp's floor of 4 colors (two pins + a row and a column
      // color) is a query contract, not a trace concern.
      q.max_colors = std::max<ColorId>(event.budget, 4);
      const size_t which = static_cast<size_t>(
          ((spec % static_cast<int64_t>(options.lp_universe.size())) +
           static_cast<int64_t>(options.lp_universe.size())) %
          static_cast<int64_t>(options.lp_universe.size()));
      StatusOr<LpQueryResult> result =
          session.SolveLp(options.lp_universe[which], q);
      if (result.ok()) {
        slot->ok = true;
        slot->primary = result->solution.status == LpStatus::kOptimal
                            ? result->solution.objective
                            : 0.0;
      }
      break;
    }
    case QueryKind::kCentrality: {
      QueryOptions q;
      q.max_colors = event.budget;
      q.pinned = {WrapToNode(spec, session.graph().num_nodes())};
      StatusOr<CentralityQueryResult> result = session.Centrality(q);
      if (result.ok()) {
        slot->ok = true;
        double sum = 0.0;
        for (const double s : result->scores) sum += s;
        slot->primary = sum;
      }
      break;
    }
    case QueryKind::kInsertEdge:
    case QueryKind::kDeleteEdge:
    case QueryKind::kUpdateWeight:
      // Edit events are applied at segment barriers by RunLoad itself,
      // never dispatched through the client threads' query path.
      QSC_CHECK(false);
  }
}

// Generates and applies one edit event's batch. Runs on one thread at a
// segment barrier, after every earlier query has completed; a failure at
// either stage (generation or application) leaves the slot !ok and the
// graph unchanged.
void ApplyEditEvent(Compressor& session, const TraceEvent& event,
                    const LoadRunnerOptions& options, EventSlot* slot) {
  const dynamic::EditKind kind = static_cast<dynamic::EditKind>(
      static_cast<int>(event.kind) - kNumQueryKinds);
  const uint64_t seed =
      options.edit_seed ^ static_cast<uint64_t>(event.spec_index);
  StatusOr<std::vector<dynamic::EditOp>> ops =
      dynamic::GenerateEdits(session.graph(), kind, event.budget, seed);
  if (!ops.ok()) return;
  EditApplyOptions apply;
  apply.max_repair_splits = options.max_repair_splits;
  StatusOr<EditApplyResult> result = session.ApplyEdits(*ops, apply);
  if (!result.ok()) return;
  slot->ok = true;
  slot->edits_applied = result->edits_applied;
  slot->repairs = result->repairs;
  slot->fallbacks = result->fallbacks;
}

double NearestRank(const std::vector<double>& sorted, double percentile) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(percentile / 100.0 *
                                static_cast<double>(sorted.size()));
  const size_t index = static_cast<size_t>(
      std::max(1.0, std::min(rank, static_cast<double>(sorted.size()))));
  return sorted[index - 1];
}

}  // namespace

StatusOr<LoadReport> RunLoad(Compressor& session,
                             const std::vector<TraceEvent>& trace,
                             const LoadRunnerOptions& options) {
  QSC_RETURN_IF_ERROR(ValidateRun(session, trace, options));

  const size_t num_events = trace.size();
  const int32_t num_threads = std::min<int32_t>(
      options.num_client_threads,
      std::max<int32_t>(1, static_cast<int32_t>(num_events)));
  std::vector<EventSlot> slots(num_events);

  const auto run_start = std::chrono::steady_clock::now();
  WallTimer run_timer;
  const auto paced_wait = [&](size_t i) {
    if (!options.paced) return;
    const auto due =
        run_start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            trace[i].arrival_seconds * options.time_scale));
    std::this_thread::sleep_until(due);
  };

  // Serves the query events in [begin, end) round-robin over the client
  // threads; returns after all of them completed.
  const auto serve_range = [&](size_t begin, size_t end) {
    if (begin >= end) return;
    const int32_t threads = std::min<int32_t>(
        num_threads, static_cast<int32_t>(end - begin));
    const auto client = [&, begin, end, threads](int32_t thread_id) {
      for (size_t i = begin + thread_id; i < end; i += threads) {
        paced_wait(i);
        WallTimer latency;
        ServeEvent(session, trace[i], options, &slots[i]);
        slots[i].latency_seconds = latency.ElapsedSeconds();
      }
    };
    if (threads == 1) {
      client(0);
    } else {
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (int32_t t = 0; t < threads; ++t) {
        workers.emplace_back(client, t);
      }
      for (std::thread& t : workers) t.join();
    }
  };

  // Edit events split the trace into barrier segments (the
  // LoadRunnerOptions contract): a segment's queries all complete, one
  // thread applies the edit batch, and the next segment starts on the new
  // graph version. ApplyEdits would serialize against racing queries
  // anyway; the barrier is what pins *which* queries precede each batch,
  // making the edit counters thread-count invariant.
  size_t cursor = 0;
  for (size_t i = 0; i < num_events; ++i) {
    if (!IsEditEvent(trace[i].kind)) continue;
    serve_range(cursor, i);
    paced_wait(i);
    WallTimer latency;
    ApplyEditEvent(session, trace[i], options, &slots[i]);
    slots[i].latency_seconds = latency.ElapsedSeconds();
    cursor = i + 1;
  }
  serve_range(cursor, num_events);
  const double wall_seconds = run_timer.ElapsedSeconds();

  // Event-order reduction: identical totals for every thread count.
  LoadReport report;
  report.kind_counts.assign(kNumQueryKinds, 0);
  report.kind_checksums.assign(kNumQueryKinds, 0.0);
  std::vector<double> latencies;
  latencies.reserve(num_events);
  for (size_t i = 0; i < num_events; ++i) {
    latencies.push_back(slots[i].latency_seconds);
    if (IsEditEvent(trace[i].kind)) {
      ++report.edit_events;
      if (slots[i].ok) {
        report.edits_applied += slots[i].edits_applied;
        report.edit_repairs += slots[i].repairs;
        report.edit_fallbacks += slots[i].fallbacks;
      } else {
        ++report.failed_edits;
      }
      continue;
    }
    const int kind = static_cast<int>(trace[i].kind);
    ++report.total_queries;
    ++report.kind_counts[kind];
    if (slots[i].ok) {
      report.kind_checksums[kind] += slots[i].primary;
    } else {
      ++report.failed_queries;
    }
  }

  std::sort(latencies.begin(), latencies.end());
  report.wall_seconds = wall_seconds;
  report.qps = wall_seconds > 0.0
                   ? static_cast<double>(report.total_queries) / wall_seconds
                   : 0.0;
  report.latency_p50_s = NearestRank(latencies, 50.0);
  report.latency_p95_s = NearestRank(latencies, 95.0);
  report.latency_p99_s = NearestRank(latencies, 99.0);
  report.latency_max_s = latencies.empty() ? 0.0 : latencies.back();
  report.session_stats = session.stats();
  return report;
}

}  // namespace workload
}  // namespace qsc
