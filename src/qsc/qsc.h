// Umbrella header: the full public API of the quasi-stable coloring
// library, a reproduction of Kayali & Suciu, "Quasi-stable Coloring for
// Graph Compression: Approximating Max-Flow, Linear Programs, and
// Centrality" (PVLDB 2022). Include individual headers for faster builds.

#ifndef QSC_QSC_H_
#define QSC_QSC_H_

#include "qsc/bench/compare.h"
#include "qsc/bench/report.h"
#include "qsc/bench/runner.h"
#include "qsc/bench/scenario.h"
#include "qsc/bench/stats.h"
#include "qsc/centrality/brandes.h"
#include "qsc/centrality/color_pivot.h"
#include "qsc/centrality/path_sampling.h"
#include "qsc/coloring/flat_rows.h"
#include "qsc/coloring/partition.h"
#include "qsc/coloring/q_error.h"
#include "qsc/coloring/reduced_graph.h"
#include "qsc/coloring/rothko.h"
#include "qsc/coloring/stable.h"
#include "qsc/coloring/wl2.h"
#include "qsc/eval/differential.h"
#include "qsc/eval/json.h"
#include "qsc/eval/pipelines.h"
#include "qsc/eval/suites.h"
#include "qsc/eval/workload.h"
#include "qsc/flow/approx_flow.h"
#include "qsc/flow/dinic.h"
#include "qsc/flow/edmonds_karp.h"
#include "qsc/flow/min_cut.h"
#include "qsc/flow/network.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/flow/uniform_flow.h"
#include "qsc/graph/datasets.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/graph/io.h"
#include "qsc/graph/perturb.h"
#include "qsc/lp/generators.h"
#include "qsc/lp/interior_point.h"
#include "qsc/lp/io.h"
#include "qsc/lp/model.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/random.h"
#include "qsc/util/stats.h"
#include "qsc/util/status.h"
#include "qsc/util/table.h"
#include "qsc/util/timer.h"

#endif  // QSC_QSC_H_
