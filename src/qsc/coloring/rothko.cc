#include "qsc/coloring/rothko.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "qsc/coloring/flat_rows.h"
#include "qsc/parallel/parallel_for.h"
#include "qsc/util/timer.h"

namespace qsc {
namespace {

// Members below these sizes are cheaper to scan inline than to dispatch;
// both thresholds only gate the dispatch, never the result (the parallel
// and sequential paths are bit-identical by construction).
constexpr int64_t kMinParallelMembers = 4096;
constexpr int64_t kMemberGrain = 2048;

}  // namespace

class RothkoRefiner::Impl {
 public:
  Impl(const GraphView& g, Partition initial, RothkoOptions options)
      : graph_(g),
        options_(options),
        partition_(std::move(initial)),
        directed_(!g.undirected()) {
    QSC_CHECK_EQ(g.num_nodes(), partition_.num_nodes());
    BuildDegreeRows();
    out_agg_.resize(partition_.num_colors());
    if (directed_) in_agg_.resize(partition_.num_colors());
    GrowScratch();
    for (ColorId c = 0; c < partition_.num_colors(); ++c) {
      RebuildSourceAggregates(c);
      if (directed_) RebuildTargetInAggregates(c);
    }
  }

  bool Step(ColorId color_cap) {
    HeapEntry raw_top;
    if (!PeekValid(raw_heap_, &raw_top)) return false;
    if (raw_top.priority <= options_.q_tolerance) return false;

    // Monotone step (see header): split, then keep splitting while the max
    // q-error sits strictly above its pre-step value. Terminates because
    // refinement reaches a stable coloring (error 0) in at most n-1 splits.
    const double pre_step_error = raw_top.priority;
    for (;;) {
      HeapEntry witness;
      QSC_CHECK(PeekValid(weighted_heap_, &witness));
      ApplySplit(witness);
      if (color_cap > 0 && partition_.num_colors() >= color_cap) break;
      if (!PeekValid(raw_heap_, &raw_top)) break;
      if (raw_top.priority <= pre_step_error) break;
    }
    return true;
  }

  void Run() {
    while (partition_.num_colors() < options_.max_colors &&
           Step(options_.max_colors)) {
    }
  }

  const Partition& partition() const { return partition_; }

  double CurrentMaxError() const {
    HeapEntry top;
    if (!PeekValid(raw_heap_, &top)) return 0.0;
    return top.priority;
  }

  const std::vector<RothkoStep>& history() const { return history_; }

  int64_t MemoryBytes() const {
    int64_t bytes = static_cast<int64_t>(sizeof(Impl));
    bytes += partition_.MemoryBytes();
    bytes += out_deg_.MemoryBytes() + in_deg_.MemoryBytes();
    bytes += static_cast<int64_t>(out_agg_.capacity() * sizeof(AggRow));
    for (const AggRow& row : out_agg_) {
      bytes += static_cast<int64_t>(row.capacity() * sizeof(AggEntry));
    }
    bytes += static_cast<int64_t>(in_agg_.capacity() * sizeof(AggRow));
    for (const AggRow& row : in_agg_) {
      bytes += static_cast<int64_t>(row.capacity() * sizeof(AggEntry));
    }
    bytes += static_cast<int64_t>(
        (weighted_heap_.size() + raw_heap_.size()) * sizeof(HeapEntry));
    bytes += agg_scratch_.MemoryBytes() + out_affected_.MemoryBytes() +
             in_affected_.MemoryBytes();
    bytes += static_cast<int64_t>(
        sorted_keys_.capacity() * sizeof(ColorId) +
        split_values_.capacity() * sizeof(double) +
        eject_.capacity() * sizeof(NodeId) +
        affected_scratch_.capacity() * sizeof(ColorId) +
        score_scratch_.capacity() * sizeof(SplitPairScore) +
        history_.capacity() * sizeof(RothkoStep));
    return bytes;
  }

 private:
  // Max/min/presence-count of the witness degrees for one ordered color
  // pair in one direction. `version` identifies the generation; heap
  // entries carrying an older version are stale.
  struct PairAgg {
    double max_w = 0.0;
    double min_w = 0.0;
    int64_t count = 0;
    uint64_t version = 0;
  };

  // One aggregate row: the pair aggregates of a fixed color, sorted by the
  // other color's id (same flat layout as the degree rows).
  struct AggEntry {
    ColorId key;
    PairAgg agg;
  };
  using AggRow = std::vector<AggEntry>;

  struct HeapEntry {
    double priority;
    ColorId src;
    ColorId dst;
    uint8_t direction;  // 0: split src by out-weight; 1: split dst by
                        // in-weight.
    uint64_t version;

    bool operator<(const HeapEntry& o) const {
      if (priority != o.priority) return priority < o.priority;
      if (src != o.src) return src > o.src;  // deterministic tie-breaks
      if (dst != o.dst) return dst > o.dst;
      return direction > o.direction;
    }
  };

  static AggRow::iterator AggLowerBound(AggRow& row, ColorId key) {
    return std::lower_bound(
        row.begin(), row.end(), key,
        [](const AggEntry& e, ColorId k) { return e.key < k; });
  }

  static const PairAgg* FindAgg(const AggRow& row, ColorId key) {
    const auto it = std::lower_bound(
        row.begin(), row.end(), key,
        [](const AggEntry& e, ColorId k) { return e.key < k; });
    if (it == row.end() || it->key != key) return nullptr;
    return &it->agg;
  }

  void BuildDegreeRows() {
    const NodeId n = graph_.num_nodes();
    out_deg_.Reset(n);
    if (directed_) in_deg_.Reset(n);
    for (NodeId u = 0; u < n; ++u) {
      for (const NeighborEntry& e : graph_.OutNeighbors(u)) {
        out_deg_.Add(u, partition_.ColorOf(e.node), e.weight);
        if (directed_) {
          in_deg_.Add(e.node, partition_.ColorOf(u), e.weight);
        }
      }
    }
  }

  void GrowScratch() {
    agg_scratch_.Grow(partition_.num_colors());
    out_affected_.Grow(partition_.num_colors());
    if (directed_) in_affected_.Grow(partition_.num_colors());
  }

  // Spread of witness degrees, extending absent members as weight 0.
  double EffectiveError(const PairAgg& agg, int64_t color_size) const {
    double hi = agg.max_w;
    double lo = agg.min_w;
    if (agg.count < color_size) {
      hi = std::max(hi, 0.0);
      lo = std::min(lo, 0.0);
    }
    return hi - lo;
  }

  double WeightedPriority(double err, ColorId src, ColorId dst) const {
    double c = 1.0;
    if (options_.alpha != 0.0) {
      c *= std::pow(static_cast<double>(partition_.ColorSize(src)),
                    options_.alpha);
    }
    if (options_.beta != 0.0) {
      c *= std::pow(static_cast<double>(partition_.ColorSize(dst)),
                    options_.beta);
    }
    return err * c;
  }

  void PushEntries(ColorId src, ColorId dst, uint8_t direction,
                   const PairAgg& agg) {
    const ColorId stats_color = direction == 0 ? src : dst;
    const double err = EffectiveError(agg, partition_.ColorSize(stats_color));
    if (err <= 0.0) return;
    weighted_heap_.push(
        {WeightedPriority(err, src, dst), src, dst, direction, agg.version});
    raw_heap_.push({err, src, dst, direction, agg.version});
  }

  // Accumulates the members' rows of `deg` into agg_scratch_ and rebuilds
  // `aggs` as a sorted row. Shared tail of the two Rebuild* methods; the
  // scratch is epoch-reset, not cleared, so rebuild cost tracks the number
  // of touched pairs, not the historical maximum.
  void RebuildAggRow(ColorId c, const FlatWeightRows& deg, AggRow& aggs,
                     bool source_side, uint8_t direction) {
    agg_scratch_.NewEpoch();
    for (NodeId v : partition_.Members(c)) {
      for (const RowEntry& e : deg.RowOf(v)) {
        bool fresh;
        // A fresh slot is value-initialized (count 0), which MergeWeight
        // treats as the first sample.
        MergeWeight(agg_scratch_.Slot(e.key, &fresh), e.weight);
      }
    }
    sorted_keys_.assign(agg_scratch_.touched().begin(),
                        agg_scratch_.touched().end());
    std::sort(sorted_keys_.begin(), sorted_keys_.end());
    aggs.clear();
    aggs.reserve(sorted_keys_.size());
    for (const ColorId other : sorted_keys_) {
      PairAgg agg = agg_scratch_.At(other);
      agg.version = ++version_counter_;
      aggs.push_back({other, agg});
      const ColorId src = source_side ? c : other;
      const ColorId dst = source_side ? other : c;
      PushEntries(src, dst, direction, agg);
    }
  }

  // Rebuilds all out-direction aggregates with source color `c` (stats over
  // members of c of their out-weight per target color).
  void RebuildSourceAggregates(ColorId c) {
    RebuildAggRow(c, out_deg_, out_agg_[c], /*source_side=*/true,
                  /*direction=*/0);
  }

  // Rebuilds all in-direction aggregates with target color `c` (stats over
  // members of c of their in-weight per source color).
  void RebuildTargetInAggregates(ColorId c) {
    RebuildAggRow(c, in_deg_, in_agg_[c], /*source_side=*/false,
                  /*direction=*/1);
  }

  static void MergeWeight(PairAgg& agg, double w) {
    if (agg.count == 0) {
      agg.max_w = agg.min_w = w;
      agg.count = 1;
    } else {
      agg.max_w = std::max(agg.max_w, w);
      agg.min_w = std::min(agg.min_w, w);
      ++agg.count;
    }
  }

  // Stores `agg` for key `other` into `aggs` (erasing on empty) and pushes
  // the witness entries. `c` is the fixed color the row belongs to.
  void StoreAndPush(ColorId c, ColorId other, PairAgg agg, AggRow& aggs,
                    bool source_side, uint8_t direction) {
    auto it = AggLowerBound(aggs, other);
    const bool present = it != aggs.end() && it->key == other;
    if (agg.count == 0) {
      if (present) aggs.erase(it);
      return;
    }
    agg.version = ++version_counter_;
    if (present) {
      it->agg = agg;
    } else {
      aggs.insert(it, {other, agg});
    }
    const ColorId src = source_side ? c : other;
    const ColorId dst = source_side ? other : c;
    PushEntries(src, dst, direction, agg);
  }

  // The two recomputed aggregates of one affected color: stats over its
  // members toward the split color and toward the new color.
  struct SplitPairScore {
    PairAgg split_agg;
    PairAgg new_agg;
  };

  // Scores the two aggregates over members of `c` toward the split halves
  // in ONE pass over the members' rows (this is the per-split hot loop —
  // every color adjacent to the split pays it). `new_key` is the
  // just-created color and therefore the maximum id, so its entry can only
  // sit at a row's tail: an O(1) check replaces the second binary search.
  //
  // Pure with respect to shared state (reads the partition and the degree
  // rows, writes nothing), so distinct colors score concurrently; the
  // order-sensitive half — version assignment and heap pushes — lives in
  // CommitSplitPair, which ParallelOrderedFor serializes in the exact
  // sequential order.
  SplitPairScore ScoreSplitPair(ColorId c, ColorId split_key, ColorId new_key,
                                const FlatWeightRows& deg) const {
    QSC_DCHECK(new_key + 1 == partition_.num_colors());
    SplitPairScore score;
    for (NodeId v : partition_.Members(c)) {
      const FlatWeightRows::Row& row = deg.RowOf(v);
      if (row.empty()) continue;
      if (row.back().key == new_key) {
        MergeWeight(score.new_agg, row.back().weight);
      }
      const RowEntry* e = deg.Find(v, split_key);
      if (e != nullptr) MergeWeight(score.split_agg, e->weight);
    }
    return score;
  }

  void CommitSplitPair(ColorId c, ColorId split_key, ColorId new_key,
                       const SplitPairScore& score, AggRow& aggs,
                       bool source_side, uint8_t direction) {
    StoreAndPush(c, split_key, score.split_agg, aggs, source_side, direction);
    StoreAndPush(c, new_key, score.new_agg, aggs, source_side, direction);
  }

  // Recomputes every affected color's aggregates toward the two split
  // halves: scored in parallel over the pool, committed in list order.
  void RecomputeAffected(const std::vector<ColorId>& colors,
                         ColorId split_key, ColorId new_key,
                         const FlatWeightRows& deg, std::vector<AggRow>& aggs,
                         bool source_side, uint8_t direction) {
    score_scratch_.resize(colors.size());
    ParallelOrderedFor(
        options_.pool, static_cast<int64_t>(colors.size()),
        [&](int64_t k) {
          score_scratch_[k] =
              ScoreSplitPair(colors[k], split_key, new_key, deg);
        },
        [&](int64_t k) {
          CommitSplitPair(colors[k], split_key, new_key, score_scratch_[k],
                          aggs[colors[k]], source_side, direction);
        });
  }

  // Filters the split halves out of a touched-color list into
  // affected_scratch_, preserving touch order (the sequential commit
  // order).
  void GatherAffected(const std::vector<ColorId>& touched, ColorId split_color,
                      ColorId new_color) {
    affected_scratch_.clear();
    for (const ColorId c : touched) {
      if (c != split_color && c != new_color) affected_scratch_.push_back(c);
    }
  }

  // Pops stale entries off `heap` until its top is current; returns false
  // if the heap drains.
  bool PeekValid(std::priority_queue<HeapEntry>& heap, HeapEntry* out) const {
    while (!heap.empty()) {
      const HeapEntry& top = heap.top();
      const AggRow& row =
          top.direction == 0 ? out_agg_[top.src] : in_agg_[top.dst];
      const ColorId key = top.direction == 0 ? top.dst : top.src;
      const PairAgg* agg = FindAgg(row, key);
      if (agg != nullptr && agg->version == top.version) {
        *out = top;
        return true;
      }
      heap.pop();
    }
    return false;
  }

  void ApplySplit(const HeapEntry& witness) {
    const ColorId split_color =
        witness.direction == 0 ? witness.src : witness.dst;
    const ColorId other = witness.direction == 0 ? witness.dst : witness.src;
    FlatWeightRows& deg_rows = witness.direction == 0 ? out_deg_ : in_deg_;

    const std::vector<NodeId>& members = partition_.Members(split_color);
    const size_t size = members.size();
    QSC_CHECK_GE(size, 2u);

    // Witness degrees of every member (0 when absent). The gather is
    // independent per member and the min/max envelope is an associative
    // reduction, so both parallelize bit-identically; the arithmetic-mean
    // sum is order-sensitive and stays a sequential fold over the
    // materialized values, which accumulates in exactly the reference
    // implementation's index order.
    std::vector<double>& values = split_values_;
    values.resize(size);
    ThreadPool* scan_pool =
        static_cast<int64_t>(size) >= kMinParallelMembers ? options_.pool
                                                          : nullptr;
    ParallelFor(scan_pool, static_cast<int64_t>(size), kMemberGrain,
                [&](int64_t i) {
                  values[i] = deg_rows.WeightOrZero(members[i], other);
                });
    struct Envelope {
      double lo, hi;
    };
    const Envelope env = ParallelReduce(
        scan_pool, static_cast<int64_t>(size), kMemberGrain,
        Envelope{values[0], values[0]},
        [&](int64_t i) { return Envelope{values[i], values[i]}; },
        [](const Envelope& a, const Envelope& b) {
          return Envelope{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
        });
    const double lo = env.lo;
    const double hi = env.hi;
    bool has_negative = lo < 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < size; ++i) sum += values[i];
    QSC_CHECK_GT(hi, lo);  // Witness error was positive.

    double threshold;
    if (options_.split_mean == RothkoOptions::SplitMean::kGeometric &&
        !has_negative) {
      double log_sum = 0.0;
      for (double v : values) log_sum += std::log1p(v);
      threshold = std::expm1(log_sum / static_cast<double>(size));
    } else {
      threshold = sum / static_cast<double>(size);
    }

    // Retain nodes at or below the threshold, eject the rest (Algorithm 1
    // lines 10-13).
    std::vector<NodeId>& eject = eject_;
    eject.clear();
    for (size_t i = 0; i < size; ++i) {
      if (values[i] > threshold) eject.push_back(members[i]);
    }
    if (eject.empty() || eject.size() == size) {
      // Floating-point edge case (threshold rounded onto an extreme):
      // split strictly above the minimum instead.
      eject.clear();
      for (size_t i = 0; i < size; ++i) {
        if (values[i] > lo) eject.push_back(members[i]);
      }
      QSC_CHECK(!eject.empty());
      QSC_CHECK_LT(eject.size(), size);
    }

    const ColorId new_color = partition_.SplitColor(split_color, eject);
    out_agg_.emplace_back();
    if (directed_) in_agg_.emplace_back();
    GrowScratch();

    // Update the neighbors' degree rows and note which colors hold nodes
    // whose witness degrees changed.
    out_affected_.NewEpoch();  // colors with changed out-degrees to split
    if (directed_) in_affected_.NewEpoch();  // ... in-degrees from split
    for (NodeId v : eject) {
      for (const NeighborEntry& e : graph_.InNeighbors(v)) {
        out_deg_.Subtract(e.node, split_color, e.weight);
        out_deg_.Add(e.node, new_color, e.weight);
        out_affected_.Touch(partition_.ColorOf(e.node));
      }
      if (directed_) {
        for (const NeighborEntry& e : graph_.OutNeighbors(v)) {
          in_deg_.Subtract(e.node, split_color, e.weight);
          in_deg_.Add(e.node, new_color, e.weight);
          in_affected_.Touch(partition_.ColorOf(e.node));
        }
      }
    }

    // The two halves of the split need full rebuilds (their member sets
    // changed); other colors only need the entries toward the two halves.
    RebuildSourceAggregates(split_color);
    RebuildSourceAggregates(new_color);
    if (directed_) {
      RebuildTargetInAggregates(split_color);
      RebuildTargetInAggregates(new_color);
    }
    GatherAffected(out_affected_.touched(), split_color, new_color);
    RecomputeAffected(affected_scratch_, split_color, new_color, out_deg_,
                      out_agg_, /*source_side=*/true, /*direction=*/0);
    if (directed_) {
      GatherAffected(in_affected_.touched(), split_color, new_color);
      RecomputeAffected(affected_scratch_, split_color, new_color, in_deg_,
                        in_agg_, /*source_side=*/false, /*direction=*/1);
    }

    history_.push_back({split_color, new_color, hi - lo,
                        partition_.num_colors(), timer_.ElapsedSeconds()});
  }

  GraphView graph_;
  RothkoOptions options_;
  Partition partition_;
  bool directed_;

  // out_deg_ row v, key c = w(v, P_c); in_deg_ row v, key c = w(P_c, v)
  // (directed only).
  FlatWeightRows out_deg_;
  FlatWeightRows in_deg_;

  // out_agg_[i] key j: stats over members of P_i of out-weight into P_j.
  // in_agg_[j] key i: stats over members of P_j of in-weight from P_i.
  std::vector<AggRow> out_agg_;
  std::vector<AggRow> in_agg_;

  mutable std::priority_queue<HeapEntry> weighted_heap_;
  mutable std::priority_queue<HeapEntry> raw_heap_;
  uint64_t version_counter_ = 0;

  // Preallocated scratch reused across splits (see flat_rows.h).
  EpochScratch<PairAgg> agg_scratch_;
  EpochScratch<char> out_affected_;
  EpochScratch<char> in_affected_;
  std::vector<ColorId> sorted_keys_;
  std::vector<double> split_values_;
  std::vector<NodeId> eject_;
  std::vector<ColorId> affected_scratch_;
  std::vector<SplitPairScore> score_scratch_;

  WallTimer timer_;
  std::vector<RothkoStep> history_;
};

RothkoRefiner::RothkoRefiner(const GraphView& g, Partition initial,
                             RothkoOptions options)
    : impl_(new Impl(g, std::move(initial), options)) {}

RothkoRefiner::~RothkoRefiner() = default;

bool RothkoRefiner::Step(ColorId color_cap) { return impl_->Step(color_cap); }
void RothkoRefiner::Run() { impl_->Run(); }
const Partition& RothkoRefiner::partition() const {
  return impl_->partition();
}
double RothkoRefiner::CurrentMaxError() const {
  return impl_->CurrentMaxError();
}
const std::vector<RothkoStep>& RothkoRefiner::history() const {
  return impl_->history();
}
int64_t RothkoRefiner::MemoryBytes() const { return impl_->MemoryBytes(); }

Partition RothkoColoring(const GraphView& g, Partition initial,
                         const RothkoOptions& options) {
  RothkoRefiner refiner(g, std::move(initial), options);
  refiner.Run();
  return refiner.partition();
}

Partition RothkoColoring(const GraphView& g, const RothkoOptions& options) {
  return RothkoColoring(g, Partition::Trivial(g.num_nodes()), options);
}

}  // namespace qsc
