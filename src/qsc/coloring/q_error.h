// q-error of a coloring (paper Sec. 3): for every ordered color pair
// (P_i, P_j), the spread (max - min) over nodes of P_i of their total
// out-weight into P_j, and over nodes of P_j of their total in-weight from
// P_i. A coloring is q-stable iff every spread is <= q; it is stable iff
// the maximum spread is 0.

#ifndef QSC_COLORING_Q_ERROR_H_
#define QSC_COLORING_Q_ERROR_H_

#include <cstdint>

#include "qsc/coloring/partition.h"
#include "qsc/graph/graph_view.h"

namespace qsc {

struct QErrorStats {
  // Maximum spread over all ordered color pairs, both directions. This is
  // the q for which the coloring is q-stable (paper "Max q").
  double max_q = 0.0;
  // Mean spread over all (ordered pair, direction) entries with at least
  // one edge (paper Table 4 "Mean q"); pairs with no edges contribute
  // nothing.
  double mean_q = 0.0;
  // Number of (ordered pair, direction) entries with at least one edge.
  int64_t num_active_entries = 0;
};

// Computes the exact q-error statistics of `p` on `g`. For undirected
// graphs the in-direction mirrors the out-direction and is skipped (it
// would double every entry without changing max_q or mean_q).
QErrorStats ComputeQError(const GraphView& g, const Partition& p);

// epsilon-relative error of a coloring (paper Sec 3.1, "eps-relative
// coloring"): the smallest eps such that for every ordered color pair and
// direction, any two witness weights u, v satisfy u*e^-eps <= v <= u*e^eps
// — i.e. max over pairs of ln(max_w / min_w). Zero is similar only to
// itself, so a pair where one member has an edge and another does not (or
// where weights differ in sign) has infinite relative error.
//
// Requires non-negative weights; returns +infinity when no finite eps
// works.
double ComputeRelativeError(const GraphView& g, const Partition& p);

// The coarsest bisimulation coloring (paper Sec 3.1: the quasi-stable
// coloring under u ≡ v iff both or neither are zero). Equivalently the
// stable coloring of the graph with all weights set to 1 — the ≡ relation
// only sees edge presence.
Partition BisimulationColoring(const GraphView& g);

}  // namespace qsc

#endif  // QSC_COLORING_Q_ERROR_H_
