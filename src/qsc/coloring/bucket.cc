#include "qsc/coloring/bucket.h"

#include <algorithm>
#include <utility>

namespace qsc {

BucketRefiner::BucketRefiner(const GraphView& g, Partition initial,
                             const ColoringParams& params)
    : WitnessSplitRefiner(g, std::move(initial), params) {
  total_degree_.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    // For undirected graphs OutWeight == InWeight, so this double-counts
    // uniformly — ranks are unaffected.
    total_degree_.push_back(g.OutWeight(v) + g.InWeight(v));
  }
}

std::vector<NodeId> BucketRefiner::ChooseSplit(const Witness& witness) {
  std::vector<NodeId> ranked = partition().Members(witness.split_color);
  std::sort(ranked.begin(), ranked.end(), [this](NodeId a, NodeId b) {
    if (total_degree_[a] != total_degree_[b]) {
      return total_degree_[a] < total_degree_[b];
    }
    return a < b;
  });
  // Peel the upper half of the degree ranks; with >= 2 members both sides
  // are non-empty.
  return std::vector<NodeId>(ranked.begin() + ranked.size() / 2,
                             ranked.end());
}

int64_t BucketRefiner::MemoryBytes() const {
  return WitnessSplitRefiner::MemoryBytes() +
         static_cast<int64_t>(total_degree_.capacity() * sizeof(double));
}

}  // namespace qsc
