#include "qsc/coloring/q_error.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <tuple>
#include <unordered_map>
#include <vector>

namespace qsc {
namespace {

struct PairStats {
  double max_w = 0.0;
  double min_w = 0.0;
  int64_t count = 0;  // members with at least one edge toward the target
};

// Effective spread taking absent members (weight 0) into account.
double Spread(const PairStats& s, int64_t color_size) {
  double hi = s.max_w;
  double lo = s.min_w;
  if (s.count < color_size) {
    hi = std::max(hi, 0.0);
    lo = std::min(lo, 0.0);
  }
  return hi - lo;
}

}  // namespace

QErrorStats ComputeQError(const GraphView& g, const Partition& p) {
  QSC_CHECK_EQ(g.num_nodes(), p.num_nodes());
  QErrorStats stats;
  double total_spread = 0.0;

  // One direction at a time to bound memory: `forward` aggregates
  // out-weights of the source color's members; the second pass aggregates
  // in-weights of the target color's members.
  const int num_passes = g.undirected() ? 1 : 2;
  for (int pass = 0; pass < num_passes; ++pass) {
    for (ColorId c = 0; c < p.num_colors(); ++c) {
      // target color -> stats over members of c.
      std::unordered_map<ColorId, PairStats> per_target;
      std::unordered_map<ColorId, double> node_weight;
      for (NodeId v : p.Members(c)) {
        node_weight.clear();
        const auto neighbors =
            pass == 0 ? g.OutNeighbors(v) : g.InNeighbors(v);
        for (const NeighborEntry& e : neighbors) {
          node_weight[p.ColorOf(e.node)] += e.weight;
        }
        for (const auto& [target, w] : node_weight) {
          auto [it, inserted] = per_target.try_emplace(target);
          PairStats& s = it->second;
          if (inserted) {
            s.max_w = s.min_w = w;
            s.count = 1;
          } else {
            s.max_w = std::max(s.max_w, w);
            s.min_w = std::min(s.min_w, w);
            ++s.count;
          }
        }
      }
      const int64_t size = p.ColorSize(c);
      for (const auto& [target, s] : per_target) {
        const double spread = Spread(s, size);
        stats.max_q = std::max(stats.max_q, spread);
        total_spread += spread;
        ++stats.num_active_entries;
      }
    }
  }
  if (stats.num_active_entries > 0) {
    stats.mean_q = total_spread / static_cast<double>(stats.num_active_entries);
  }
  return stats;
}

double ComputeRelativeError(const GraphView& g, const Partition& p) {
  QSC_CHECK_EQ(g.num_nodes(), p.num_nodes());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double max_eps = 0.0;
  const int num_passes = g.undirected() ? 1 : 2;
  for (int pass = 0; pass < num_passes; ++pass) {
    for (ColorId c = 0; c < p.num_colors() && max_eps != kInf; ++c) {
      std::unordered_map<ColorId, PairStats> per_target;
      std::unordered_map<ColorId, double> node_weight;
      for (NodeId v : p.Members(c)) {
        node_weight.clear();
        const auto neighbors =
            pass == 0 ? g.OutNeighbors(v) : g.InNeighbors(v);
        for (const NeighborEntry& e : neighbors) {
          QSC_CHECK_GE(e.weight, 0.0);
          node_weight[p.ColorOf(e.node)] += e.weight;
        }
        for (const auto& [target, w] : node_weight) {
          auto [it, inserted] = per_target.try_emplace(target);
          PairStats& s = it->second;
          if (inserted) {
            s.max_w = s.min_w = w;
            s.count = 1;
          } else {
            s.max_w = std::max(s.max_w, w);
            s.min_w = std::min(s.min_w, w);
            ++s.count;
          }
        }
      }
      const int64_t size = p.ColorSize(c);
      for (const auto& [target, s] : per_target) {
        // A member without an edge has weight 0, which is only similar to
        // 0 itself; mixed zero / nonzero makes the pair unsatisfiable.
        if (s.count < size || s.min_w <= 0.0) {
          max_eps = kInf;
          break;
        }
        max_eps = std::max(max_eps, std::log(s.max_w / s.min_w));
      }
    }
  }
  return max_eps;
}

Partition BisimulationColoring(const GraphView& g) {
  // The ≡ relation (both zero or both nonzero) only observes *presence* of
  // edges toward each color — unlike stable coloring, the counts may
  // differ. Refine by the set of distinct out-/in-neighbor colors until
  // fixpoint; ≡ is a congruence for non-negative weights, so the coarsest
  // such coloring is unique (Theorem 12(1)).
  const NodeId n = g.num_nodes();
  std::vector<ColorId> color(n, 0);
  ColorId num_colors = n > 0 ? 1 : 0;
  while (true) {
    using Signature = std::tuple<ColorId, std::vector<ColorId>,
                                 std::vector<ColorId>>;
    std::map<Signature, ColorId> sig_to_color;
    std::vector<ColorId> next(n);
    for (NodeId v = 0; v < n; ++v) {
      std::vector<ColorId> out_set, in_set;
      for (const NeighborEntry& e : g.OutNeighbors(v)) {
        out_set.push_back(color[e.node]);
      }
      for (const NeighborEntry& e : g.InNeighbors(v)) {
        in_set.push_back(color[e.node]);
      }
      std::sort(out_set.begin(), out_set.end());
      out_set.erase(std::unique(out_set.begin(), out_set.end()),
                    out_set.end());
      std::sort(in_set.begin(), in_set.end());
      in_set.erase(std::unique(in_set.begin(), in_set.end()), in_set.end());
      const auto [it, inserted] = sig_to_color.try_emplace(
          Signature{color[v], std::move(out_set), std::move(in_set)},
          static_cast<ColorId>(sig_to_color.size()));
      next[v] = it->second;
    }
    const ColorId next_colors = static_cast<ColorId>(sig_to_color.size());
    if (next_colors == num_colors) break;
    color.swap(next);
    num_colors = next_colors;
  }
  return Partition::FromColorIds(color);
}

}  // namespace qsc
