#include "qsc/coloring/partition.h"

#include <algorithm>
#include <unordered_map>

namespace qsc {

Partition Partition::Trivial(NodeId num_nodes) {
  QSC_CHECK_GE(num_nodes, 0);
  Partition p;
  p.color_of_.assign(num_nodes, 0);
  if (num_nodes > 0) {
    p.members_.resize(1);
    p.members_[0].resize(num_nodes);
    for (NodeId v = 0; v < num_nodes; ++v) p.members_[0][v] = v;
  }
  return p;
}

Partition Partition::Discrete(NodeId num_nodes) {
  QSC_CHECK_GE(num_nodes, 0);
  Partition p;
  p.color_of_.resize(num_nodes);
  p.members_.resize(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    p.color_of_[v] = v;
    p.members_[v] = {v};
  }
  return p;
}

Partition Partition::FromColorIds(const std::vector<int32_t>& labels) {
  Partition p;
  p.color_of_.resize(labels.size());
  std::unordered_map<int32_t, ColorId> remap;
  remap.reserve(labels.size());
  for (size_t v = 0; v < labels.size(); ++v) {
    auto [it, inserted] =
        remap.try_emplace(labels[v], static_cast<ColorId>(remap.size()));
    const ColorId c = it->second;
    if (inserted) p.members_.emplace_back();
    p.color_of_[v] = c;
    p.members_[c].push_back(static_cast<NodeId>(v));
  }
  return p;
}

ColorId Partition::SplitColor(ColorId from, const std::vector<NodeId>& nodes) {
  QSC_CHECK(!nodes.empty());
  QSC_CHECK_LT(static_cast<int64_t>(nodes.size()), ColorSize(from));
  const ColorId fresh = num_colors();
  members_.emplace_back();
  members_[fresh].reserve(nodes.size());
  for (NodeId v : nodes) {
    QSC_CHECK_EQ(color_of_[v], from);
    color_of_[v] = fresh;
    members_[fresh].push_back(v);
  }
  // Compact the old color's member list in place.
  auto& old_members = members_[from];
  old_members.erase(
      std::remove_if(old_members.begin(), old_members.end(),
                     [this, fresh](NodeId v) {
                       return color_of_[v] == fresh;
                     }),
      old_members.end());
  QSC_CHECK(!old_members.empty());
  return fresh;
}

bool Partition::IsRefinementOf(const Partition& coarser) const {
  if (num_nodes() != coarser.num_nodes()) return false;
  // Each of our colors must map into exactly one of coarser's colors.
  std::vector<ColorId> image(num_colors(), -1);
  for (NodeId v = 0; v < num_nodes(); ++v) {
    const ColorId mine = color_of_[v];
    const ColorId theirs = coarser.color_of_[v];
    if (image[mine] == -1) {
      image[mine] = theirs;
    } else if (image[mine] != theirs) {
      return false;
    }
  }
  return true;
}

int64_t Partition::NumSingletons() const {
  int64_t count = 0;
  for (const auto& m : members_) {
    if (m.size() == 1) ++count;
  }
  return count;
}

std::vector<int64_t> Partition::ColorSizes() const {
  std::vector<int64_t> sizes;
  sizes.reserve(members_.size());
  for (const auto& m : members_) sizes.push_back(m.size());
  return sizes;
}

double Partition::CompressionRatio() const {
  if (num_colors() == 0) return 0.0;
  return static_cast<double>(num_nodes()) / num_colors();
}

int64_t Partition::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(Partition));
  bytes += static_cast<int64_t>(color_of_.capacity() * sizeof(ColorId));
  bytes +=
      static_cast<int64_t>(members_.capacity() * sizeof(std::vector<NodeId>));
  for (const auto& m : members_) {
    bytes += static_cast<int64_t>(m.capacity() * sizeof(NodeId));
  }
  return bytes;
}

bool operator==(const Partition& a, const Partition& b) {
  if (a.num_nodes() != b.num_nodes()) return false;
  return a.IsRefinementOf(b) && b.IsRefinementOf(a);
}

}  // namespace qsc
