#include "qsc/coloring/reduced_graph.h"

#include <cmath>
#include <unordered_map>
#include <vector>

namespace qsc {

Graph BuildReducedGraph(const GraphView& g, const Partition& p,
                        ReducedWeight weight) {
  QSC_CHECK_EQ(g.num_nodes(), p.num_nodes());
  const ColorId k = p.num_colors();
  // Aggregate arc weights between ordered color pairs.
  std::unordered_map<uint64_t, double> totals;
  totals.reserve(g.num_arcs() / 4 + 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const ColorId cu = p.ColorOf(u);
    for (const NeighborEntry& e : g.OutNeighbors(u)) {
      const ColorId cv = p.ColorOf(e.node);
      const uint64_t key =
          (static_cast<uint64_t>(cu) << 32) | static_cast<uint32_t>(cv);
      totals[key] += e.weight;
    }
  }
  std::vector<EdgeTriple> arcs;
  arcs.reserve(totals.size());
  for (const auto& [key, total] : totals) {
    const ColorId i = static_cast<ColorId>(key >> 32);
    const ColorId j = static_cast<ColorId>(key & 0xffffffffu);
    double w = total;
    const double si = static_cast<double>(p.ColorSize(i));
    const double sj = static_cast<double>(p.ColorSize(j));
    switch (weight) {
      case ReducedWeight::kSum:
        break;
      case ReducedWeight::kMean:
        w /= si * sj;
        break;
      case ReducedWeight::kSqrtNormalized:
        w /= std::sqrt(si * sj);
        break;
    }
    // For undirected graphs both arc directions were aggregated; emit only
    // the canonical one and let FromEdges mirror it.
    if (g.undirected() && i > j) continue;
    arcs.push_back({i, j, w});
  }
  return Graph::FromEdges(k, arcs, g.undirected());
}

}  // namespace qsc
