// Cache-friendly sparse-row containers for the Rothko hot path.
//
// The refiner keeps, per node, the aggregated edge weight toward every
// color ("degree rows"), and per color pair a max/min aggregate. Profiling
// the 100k-node scale-free refinement scenario (docs/BENCHMARKING.md)
// showed the former dominating: one std::unordered_map<ColorId, double>
// per node means a pointer chase plus a hash per weight update, and
// rebuild passes walk the maps in allocation order. This header provides
// the flat replacements:
//
//  - FlatWeightRows: per-node rows stored as small vectors of (key,
//    weight) entries sorted by key. Rows are short (the number of distinct
//    neighbor colors), so binary search plus a memmove-style insert beats
//    hashing, and sequential scans are cache-linear.
//  - EpochScratch<T>: a dense ColorId-indexed accumulator reused across
//    splits without clearing — a slot is "absent" unless its stamp equals
//    the current epoch. NewEpoch() is O(1), so per-split scratch work is
//    proportional to the keys actually touched, and the backing storage is
//    allocated once per capacity growth instead of once per split.
//
// Numeric behavior is bit-identical to the map-based code by construction:
// entries accumulate in the same arithmetic order and the same zero
// tolerance drops residue entries (see rothko.cc; equivalence is enforced
// by coloring_rothko_equivalence_test.cc).

#ifndef QSC_COLORING_FLAT_ROWS_H_
#define QSC_COLORING_FLAT_ROWS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "qsc/coloring/partition.h"
#include "qsc/graph/graph.h"
#include "qsc/util/check.h"

namespace qsc {

// Aggregated weights below this magnitude are treated as "no edge"; it
// absorbs floating-point residue from incremental subtraction.
constexpr double kZeroWeightTolerance = 1e-12;

// One (color, weight) entry of a sparse degree row.
struct RowEntry {
  ColorId key;
  double weight;
};

// Per-node sparse weight rows, each sorted by key.
class FlatWeightRows {
 public:
  using Row = std::vector<RowEntry>;

  void Reset(NodeId num_rows) {
    rows_.assign(static_cast<size_t>(num_rows), {});
  }

  bool empty() const { return rows_.empty(); }

  const Row& RowOf(NodeId v) const {
    QSC_DCHECK(v >= 0 && static_cast<size_t>(v) < rows_.size());
    return rows_[v];
  }

  // Pointer to the entry for `key` in row `v`; nullptr when absent.
  const RowEntry* Find(NodeId v, ColorId key) const {
    const Row& row = RowOf(v);
    const auto it = LowerBound(row, key);
    if (it == row.end() || it->key != key) return nullptr;
    return &*it;
  }

  // Weight for `key` in row `v`, 0.0 when absent (the sparse convention).
  double WeightOrZero(NodeId v, ColorId key) const {
    const RowEntry* e = Find(v, key);
    return e == nullptr ? 0.0 : e->weight;
  }

  // Accumulates `w` onto the entry (inserting it when absent) and drops the
  // entry if the result lies within the zero tolerance.
  void Add(NodeId v, ColorId key, double w) {
    Row& row = rows_[v];
    const auto it = LowerBound(row, key);
    if (it != row.end() && it->key == key) {
      it->weight += w;
      if (std::abs(it->weight) < kZeroWeightTolerance) row.erase(it);
      return;
    }
    if (std::abs(w) < kZeroWeightTolerance) return;  // would erase at once
    row.insert(it, {key, w});
  }

  // Subtracts `w`, treating an absent entry as an implicit 0. Absence is
  // legitimate even mid-update: positive and negative arc weights toward
  // `key` can cancel within the zero tolerance and drop the entry, after
  // which a neighbor move must re-materialize it with the remainder (the
  // map-based predecessor dereferenced end() here — silent UB in release
  // builds). Exactly Add with the sign flipped, so the tolerance policy
  // lives in one place.
  void Subtract(NodeId v, ColorId key, double w) { Add(v, key, -w); }

  // Heap footprint (row capacities) for the byte-budgeted cache.
  int64_t MemoryBytes() const {
    int64_t bytes = static_cast<int64_t>(rows_.capacity() * sizeof(Row));
    for (const Row& row : rows_) {
      bytes += static_cast<int64_t>(row.capacity() * sizeof(RowEntry));
    }
    return bytes;
  }

 private:
  static Row::iterator LowerBound(Row& row, ColorId key) {
    return std::lower_bound(
        row.begin(), row.end(), key,
        [](const RowEntry& e, ColorId k) { return e.key < k; });
  }
  static Row::const_iterator LowerBound(const Row& row, ColorId key) {
    return std::lower_bound(
        row.begin(), row.end(), key,
        [](const RowEntry& e, ColorId k) { return e.key < k; });
  }

  std::vector<Row> rows_;
};

// Dense ColorId-indexed scratch map with O(1) reuse. Values persist only
// within one epoch; Slot() reports through `fresh` whether the slot is
// first touched this epoch (its value then is a default-constructed T).
// touched() lists this epoch's keys in first-touch order.
template <typename T>
class EpochScratch {
 public:
  // Ensures keys in [0, num_keys) are addressable.
  void Grow(ColorId num_keys) {
    if (static_cast<size_t>(num_keys) > slots_.size()) {
      slots_.resize(num_keys);
      stamps_.resize(num_keys, 0);
    }
  }

  void NewEpoch() {
    ++epoch_;
    touched_.clear();
  }

  T& Slot(ColorId key, bool* fresh) {
    QSC_DCHECK(key >= 0 && static_cast<size_t>(key) < slots_.size());
    if (stamps_[key] != epoch_) {
      stamps_[key] = epoch_;
      slots_[key] = T{};
      touched_.push_back(key);
      *fresh = true;
    } else {
      *fresh = false;
    }
    return slots_[key];
  }

  // Marks `key` as touched (default value on first touch).
  void Touch(ColorId key) {
    bool fresh;
    Slot(key, &fresh);
  }

  bool Contains(ColorId key) const {
    return key >= 0 && static_cast<size_t>(key) < slots_.size() &&
           stamps_[key] == epoch_;
  }

  const T& At(ColorId key) const {
    QSC_DCHECK(Contains(key));
    return slots_[key];
  }

  const std::vector<ColorId>& touched() const { return touched_; }

  // Heap footprint (backing-store capacities) for the byte-budgeted cache.
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(slots_.capacity() * sizeof(T) +
                                stamps_.capacity() * sizeof(uint64_t) +
                                touched_.capacity() * sizeof(ColorId));
  }

 private:
  std::vector<T> slots_;
  std::vector<uint64_t> stamps_;
  std::vector<ColorId> touched_;
  // Starts above the zero-initialized stamps so no slot is "current"
  // before its first touch, even before the first NewEpoch().
  uint64_t epoch_ = 1;
};

}  // namespace qsc

#endif  // QSC_COLORING_FLAT_ROWS_H_
