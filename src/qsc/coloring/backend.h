// The compression-backend registry (ROADMAP item 4; Slim Graph's "menu of
// lossy compression kernels behind one interface").
//
// A ColoringBackend is a live anytime refiner: the exact contract the
// session-level ColoringCache depends on. Any kernel that honors it can be
// registered under a name and served through qsc::Compressor — specs name
// their backend, cache keys and byte budgets account per backend, and the
// eval harness scores every registered kernel on the same
// accuracy-vs-compression axes (qsc_eval --backend).
//
// Contract (what the cache relies on; see docs/API.md "Backends"):
//
//   1. Monotone anytime Step(): each call performs at least one witness
//      split and CurrentMaxError() never increases across uncapped calls;
//      Step returns false (leaving the partition unchanged) only when the
//      coloring converged (max error <= q_tolerance, or no splittable
//      color remains).
//   2. Determinism: the split sequence is a function of (graph, current
//      partition, params) only — independent of wall clock, thread pool
//      size, and of how Step() calls were batched. This is what makes a
//      budget-B continuation of a cached instance bit-identical to a
//      fresh run at budget B, the ColoringCache resume guarantee.
//   3. partition() snapshots are valid partitions of the graph's node set
//      and refine monotonically (colors only split, never merge), so
//      pinned singletons stay pinned.
//   4. MemoryBytes() approximates the live heap footprint for the
//      byte-budgeted cache's eviction accounting.
//
// Builtin backends (registered on first Global() use):
//
//   rothko      - the paper's Algorithm 1 (RothkoRefiner): size-weighted
//                 worst-witness selection, split at the witness mean.
//   lp-rounding - LP-relaxation splits: the worst witness's member
//                 weights are 2-center-clustered by a small assignment LP
//                 solved with the in-tree simplex, then rounded
//                 (coloring/lp_rounding.h).
//   bucket      - degree bucketing: the worst-witness color is split at
//                 the median rank of total weighted degree — the cheap
//                 structure-oblivious baseline (coloring/bucket.h).

#ifndef QSC_COLORING_BACKEND_H_
#define QSC_COLORING_BACKEND_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "qsc/coloring/params.h"
#include "qsc/coloring/partition.h"
#include "qsc/graph/graph_view.h"
#include "qsc/util/status.h"

namespace qsc {

// The refiner contract shared by all compression kernels.
class ColoringBackend {
 public:
  virtual ~ColoringBackend() = default;

  // One monotone refinement step (>= 1 split, possibly more to restore
  // the pre-step maximum error). `color_cap` (0 = unlimited) bounds the
  // monotone continuation: once the partition reaches `color_cap` colors
  // the step stops even if the error has not yet recovered. Returns false
  // (partition unchanged) when converged.
  virtual bool Step(ColorId color_cap = 0) = 0;

  virtual const Partition& partition() const = 0;

  // Maximum unweighted q-error of the current coloring, both directions.
  virtual double CurrentMaxError() const = 0;

  // Approximate heap footprint of the live instance, in bytes (the
  // byte-budgeted ColoringCache's eviction accounting).
  virtual int64_t MemoryBytes() const = 0;
};

// The canonical name of the default backend; ColoringSpec treats the
// empty string as this name (pre-registry specs keep their meaning, hash,
// and cache identity).
inline constexpr const char* kDefaultColoringBackend = "rothko";

// Canonicalizes a user-supplied backend name: ASCII whitespace trimmed,
// ASCII letters lowercased, "" mapped to kDefaultColoringBackend.
// Returns InvalidArgument for malformed names — after canonicalization a
// name must match [a-z0-9][a-z0-9_-]* (<= 64 chars). Whether the name is
// *registered* is a separate question (Registry::Contains); the
// Compressor boundary maps well-formed-but-unknown to NotFound.
StatusOr<std::string> CanonicalBackendName(const std::string& name);

// Builds a live refiner over `g` starting from `initial`.
using ColoringBackendFactory = std::function<std::unique_ptr<ColoringBackend>(
    const GraphView& g, Partition initial, const ColoringParams& params)>;

// Process-wide name -> factory map. Global() registers the three builtin
// backends on first use; user kernels may be added with Register (names
// must be canonical, unique, and well formed). All methods are safe for
// concurrent use.
class ColoringBackendRegistry {
 public:
  static ColoringBackendRegistry& Global();

  // `name` must already be canonical (CanonicalBackendName fixpoint) and
  // unregistered; violations abort (registration is programmer-owned,
  // not data-dependent).
  void Register(std::string name, std::string description,
                ColoringBackendFactory factory);

  bool Contains(const std::string& canonical_name) const;

  // Creates a refiner; aborts on unknown names (the Compressor boundary
  // validates first — see CanonicalBackendName).
  std::unique_ptr<ColoringBackend> Create(const std::string& canonical_name,
                                          const GraphView& g, Partition initial,
                                          const ColoringParams& params) const;

  // Registered canonical names, sorted; the "registered: ..." list in
  // boundary error messages.
  std::vector<std::string> Names() const;

  // One-line description of a registered backend ("" when absent).
  std::string Description(const std::string& canonical_name) const;

 private:
  ColoringBackendRegistry() = default;

  class Impl;
  Impl* impl() const;
};

}  // namespace qsc

#endif  // QSC_COLORING_BACKEND_H_
