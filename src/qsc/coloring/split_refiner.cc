#include "qsc/coloring/split_refiner.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qsc/util/check.h"

namespace qsc {
namespace {

struct PairStats {
  double max_w = 0.0;
  double min_w = 0.0;
  int64_t count = 0;  // members with at least one edge toward the target
};

// Effective spread taking absent members (weight 0) into account, exactly
// as ComputeQError does (q_error.cc).
double Spread(const PairStats& s, int64_t color_size) {
  double hi = s.max_w;
  double lo = s.min_w;
  if (s.count < color_size) {
    hi = std::max(hi, 0.0);
    lo = std::min(lo, 0.0);
  }
  return hi - lo;
}

}  // namespace

WitnessSplitRefiner::WitnessSplitRefiner(const GraphView& g, Partition initial,
                                         const ColoringParams& params)
    : graph_(g), params_(params), partition_(std::move(initial)) {
  QSC_CHECK_EQ(g.num_nodes(), partition_.num_nodes());
  // CurrentMaxError() must describe the initial partition before the first
  // Step() (the backend contract); the scan is cached for that Step.
  EnsureScanned();
}

bool WitnessSplitRefiner::FindWorstWitness(Witness* out) {
  const GraphView& g = graph_;
  const Partition& p = partition_;

  // Phase A: scan every (color, direction) for per-target spreads. The
  // best candidate is selected by size-weighted score with a total
  // tie-break, so the unordered_map iteration order cannot influence the
  // result.
  double max_error = 0.0;
  bool found = false;
  double best_score = 0.0;
  int best_pass = 0;
  ColorId best_color = -1;
  ColorId best_target = -1;
  const int num_passes = g.undirected() ? 1 : 2;
  for (int pass = 0; pass < num_passes; ++pass) {
    for (ColorId c = 0; c < p.num_colors(); ++c) {
      std::unordered_map<ColorId, PairStats> per_target;
      std::unordered_map<ColorId, double> node_weight;
      for (NodeId v : p.Members(c)) {
        node_weight.clear();
        const auto neighbors =
            pass == 0 ? g.OutNeighbors(v) : g.InNeighbors(v);
        for (const NeighborEntry& e : neighbors) {
          node_weight[p.ColorOf(e.node)] += e.weight;
        }
        for (const auto& [target, w] : node_weight) {
          auto [it, inserted] = per_target.try_emplace(target);
          PairStats& s = it->second;
          if (inserted) {
            s.max_w = s.min_w = w;
            s.count = 1;
          } else {
            s.max_w = std::max(s.max_w, w);
            s.min_w = std::min(s.min_w, w);
            ++s.count;
          }
        }
      }
      const int64_t size = p.ColorSize(c);
      const double size_c = static_cast<double>(size);
      for (const auto& [target, s] : per_target) {
        const double spread = Spread(s, size);
        max_error = std::max(max_error, spread);
        if (spread <= 0.0 || size < 2) continue;
        // Definition-1 pair weighting C_ij = |P_i|^alpha * |P_j|^beta with
        // i the source color: in the out direction c is the source; in the
        // in direction the witness target is the source and c (the color
        // being split) is the pair's j.
        const double size_t_ = static_cast<double>(p.ColorSize(target));
        const double weight =
            pass == 0 ? std::pow(size_c, params_.alpha) *
                            std::pow(size_t_, params_.beta)
                      : std::pow(size_t_, params_.alpha) *
                            std::pow(size_c, params_.beta);
        const double score = weight * spread;
        const bool better =
            !found || score > best_score ||
            (score == best_score &&
             (pass < best_pass ||
              (pass == best_pass &&
               (c < best_color ||
                (c == best_color && target < best_target)))));
        if (better) {
          found = true;
          best_score = score;
          best_pass = pass;
          best_color = c;
          best_target = target;
        }
      }
    }
  }
  current_error_ = max_error;
  if (!found) return false;

  // Phase B: materialize the winning witness's member weights, aligned
  // with Members(best_color).
  out->split_color = best_color;
  out->other_color = best_target;
  out->out_direction = best_pass == 0;
  out->weights.clear();
  double hi = 0.0, lo = 0.0;
  bool first = true;
  for (NodeId v : p.Members(best_color)) {
    double w = 0.0;
    const auto neighbors =
        best_pass == 0 ? g.OutNeighbors(v) : g.InNeighbors(v);
    for (const NeighborEntry& e : neighbors) {
      if (p.ColorOf(e.node) == best_target) w += e.weight;
    }
    out->weights.push_back(w);
    hi = first ? w : std::max(hi, w);
    lo = first ? w : std::min(lo, w);
    first = false;
  }
  out->spread = hi - lo;
  return true;
}

void WitnessSplitRefiner::EnsureScanned() {
  if (scanned_) return;
  has_witness_ = FindWorstWitness(&witness_);
  scanned_ = true;
}

bool WitnessSplitRefiner::SplitOnce(ColorId color_cap) {
  (void)color_cap;
  EnsureScanned();
  if (!has_witness_) return false;

  const std::vector<NodeId>& members = partition_.Members(witness_.split_color);
  std::vector<NodeId> subset = ChooseSplit(witness_);
  std::sort(subset.begin(), subset.end());
  subset.erase(std::unique(subset.begin(), subset.end()), subset.end());
  if (subset.empty() || subset.size() >= members.size()) {
    // Degenerate kernel answer: peel the single max-weight member (lowest
    // node id among ties) so progress is always made.
    size_t best = 0;
    for (size_t i = 1; i < witness_.weights.size(); ++i) {
      if (witness_.weights[i] > witness_.weights[best] ||
          (witness_.weights[i] == witness_.weights[best] &&
           members[i] < members[best])) {
        best = i;
      }
    }
    subset.assign(1, members[best]);
  }
  partition_.SplitColor(witness_.split_color, subset);
  scanned_ = false;
  return true;
}

bool WitnessSplitRefiner::Step(ColorId color_cap) {
  EnsureScanned();
  if (!has_witness_ || current_error_ <= params_.q_tolerance) return false;
  const double pre_error = current_error_;

  // At least one split, then keep splitting the running worst witness
  // until the maximum q-error recovers to its pre-step value (exactly the
  // RothkoRefiner monotone-recovery loop), the tolerance is met, or the
  // cap truncates the continuation.
  QSC_CHECK(SplitOnce(color_cap));
  EnsureScanned();
  while (has_witness_ && current_error_ > params_.q_tolerance &&
         current_error_ > pre_error &&
         (color_cap <= 0 || partition_.num_colors() < color_cap)) {
    QSC_CHECK(SplitOnce(color_cap));
    EnsureScanned();
  }
  return true;
}

int64_t WitnessSplitRefiner::MemoryBytes() const {
  return static_cast<int64_t>(sizeof(*this)) + partition_.MemoryBytes() +
         static_cast<int64_t>(witness_.weights.capacity() * sizeof(double));
}

}  // namespace qsc
