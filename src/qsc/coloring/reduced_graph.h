// Reduced (quotient) graph of a coloring (paper Sec. 3.2): one node per
// color, with an arc between two colors whenever any member-to-member arc
// exists. Several weight conventions are supported; the applications pick
// the one their theory calls for.

#ifndef QSC_COLORING_REDUCED_GRAPH_H_
#define QSC_COLORING_REDUCED_GRAPH_H_

#include "qsc/coloring/partition.h"
#include "qsc/graph/graph_view.h"

namespace qsc {

enum class ReducedWeight {
  // w^(i,j) = sum of all member weights w(P_i, P_j). This is the c^2
  // capacity of Theorem 6 and the default for max-flow.
  kSum,
  // w^(i,j) = w(P_i, P_j) / (|P_i| * |P_j|): average member-to-member
  // weight.
  kMean,
  // w^(i,j) = w(P_i, P_j) / sqrt(|P_i| * |P_j|): the Eq. (4) normalization
  // used by the LP reduction.
  kSqrtNormalized,
};

// Builds the reduced graph of `p` over `g`. Node i of the result is color
// i of the partition. The result is directed iff `g` is.
Graph BuildReducedGraph(const GraphView& g, const Partition& p,
                        ReducedWeight weight);

}  // namespace qsc

#endif  // QSC_COLORING_REDUCED_GRAPH_H_
