// The coloring parameters shared by every compression backend.
//
// Historically these knobs were duplicated across RothkoOptions,
// LpReduceOptions, and QueryOptions; the backend registry (backend.h)
// needs one canonical struct that any kernel can consume, so they live
// here and the per-algorithm option structs derive from it (the structs
// stay thin aliases — every existing call site that assigns
// `options.alpha = ...` compiles unchanged).

#ifndef QSC_COLORING_PARAMS_H_
#define QSC_COLORING_PARAMS_H_

namespace qsc {

class ThreadPool;

// Split-threshold rule for witness splits (paper Sec 5.2). Named
// RothkoOptions::SplitMean at most call sites via the nested alias in
// rothko.h; semantics are backend-agnostic — any kernel that thresholds
// witness weights may honor it.
enum class SplitMean {
  kArithmetic,  // threshold = mean degree (Algorithm 1 line 10)
  kGeometric,   // mean in log-space: exp(mean(log(1+d)))-1; requires
                // non-negative degrees, better balanced on scale-free
                // graphs (paper Sec 5.2). Falls back to arithmetic when a
                // negative degree is present.
};

// Everything that parameterizes a coloring kernel besides the graph, the
// initial partition, and the color budget (the budget is owned by the
// caller's refinement loop — see ColoringBackend::Step).
struct ColoringParams {
  // Witness weighting C_ij = |P_i|^alpha * |P_j|^beta (paper Sec 5.2:
  // alpha=beta=0 for max-flow, alpha=1 beta=0 for LPs, alpha=beta=1 for
  // centrality). Backends without a witness-weighting notion may ignore
  // them, but ignoring them must be deterministic and documented.
  double alpha = 0.0;
  double beta = 0.0;

  // Stop refining once the maximum (unweighted) q-error drops to or below
  // this bound (epsilon in Algorithm 1). 0 refines all the way to a
  // stable coloring if the budget permits.
  double q_tolerance = 0.0;

  SplitMean split_mean = SplitMean::kArithmetic;

  // Optional worker pool (qsc/parallel). Backends may use it to
  // accelerate internal scans but MUST produce bit-identical partitions
  // for every pool size, including none (the qsc/parallel determinism
  // contract). Not owned; must outlive the backend instance.
  ThreadPool* pool = nullptr;
};

}  // namespace qsc

#endif  // QSC_COLORING_PARAMS_H_
