// 2-dimensional Weisfeiler-Leman refinement (paper Sec 4.3).
//
// 2-WL colors ordered node *pairs*: chi(u,v) starts from the atomic type
// (u == v, arc weights u->v and v->u) and is refined by the multiset of
// neighbor color pairs {(chi(u,w), chi(w,v)) : w in V} until fixpoint.
// Nodes u, v are 2-WL equivalent iff chi(u,u) == chi(v,v).
//
// The paper's Theorem 11 proves that 2-WL-equivalent nodes have the same
// betweenness centrality — the positive counterpart to the Figure-5
// counterexample where 1-WL-equivalent nodes do not. O(n^3) per round; use
// on small graphs.

#ifndef QSC_COLORING_WL2_H_
#define QSC_COLORING_WL2_H_

#include "qsc/coloring/partition.h"
#include "qsc/graph/graph.h"

namespace qsc {

// The node partition induced by the stable 2-WL pair coloring
// (nodes grouped by their diagonal color chi(v,v)).
Partition Wl2NodeColoring(const Graph& g);

}  // namespace qsc

#endif  // QSC_COLORING_WL2_H_
