// The `bucket` compression backend: degree bucketing as the cheap,
// structure-oblivious baseline (Slim Graph's simplest kernel class).
//
// The scaffold (split_refiner.h) picks which color to split — the worst
// witness, as every backend does — but the cut itself ignores the witness
// weights entirely: members are ranked by total weighted degree
// (OutWeight + InWeight, ties by node id) and the upper half of the ranks
// is peeled into the new color. SplitMean is ignored (there is no
// threshold, only a median rank); alpha/beta still shape witness
// *selection* via the shared scaffold. This is the backend any
// quality-claims plot must beat to justify a smarter kernel.

#ifndef QSC_COLORING_BUCKET_H_
#define QSC_COLORING_BUCKET_H_

#include <vector>

#include "qsc/coloring/split_refiner.h"

namespace qsc {

class BucketRefiner : public WitnessSplitRefiner {
 public:
  BucketRefiner(const GraphView& g, Partition initial,
                const ColoringParams& params);

  int64_t MemoryBytes() const override;

 protected:
  std::vector<NodeId> ChooseSplit(const Witness& witness) override;

 private:
  std::vector<double> total_degree_;  // OutWeight + InWeight, per node
};

}  // namespace qsc

#endif  // QSC_COLORING_BUCKET_H_
