#include "qsc/coloring/lp_rounding.h"

#include <algorithm>
#include <utility>

#include "qsc/lp/model.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/check.h"

namespace qsc {

LpRoundingRefiner::LpRoundingRefiner(const GraphView& g, Partition initial,
                                     const ColoringParams& params)
    : WitnessSplitRefiner(g, std::move(initial), params) {}

std::vector<NodeId> LpRoundingRefiner::ChooseSplit(const Witness& witness) {
  const std::vector<NodeId>& members = partition().Members(witness.split_color);
  const std::vector<double>& weights = witness.weights;
  const int64_t n = static_cast<int64_t>(members.size());
  QSC_CHECK_EQ(n, static_cast<int64_t>(weights.size()));

  // Distinct witness weights, ascending; quantile-merge to <= kMaxGroups.
  std::vector<double> distinct = weights;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  const int64_t num_distinct = static_cast<int64_t>(distinct.size());
  const int64_t num_groups = std::min<int64_t>(num_distinct, kMaxGroups);
  auto group_of_weight = [&](double w) -> int64_t {
    const int64_t rank =
        std::lower_bound(distinct.begin(), distinct.end(), w) -
        distinct.begin();
    return rank * num_groups / num_distinct;
  };

  std::vector<int64_t> count(num_groups, 0);
  std::vector<double> sum(num_groups, 0.0);
  std::vector<int64_t> member_group(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t g = group_of_weight(weights[i]);
    member_group[i] = g;
    ++count[g];
    sum[g] += weights[i];
  }
  const double mid = (distinct.front() + distinct.back()) / 2.0;

  // maximize sum_g (w_g - mid) x_g  s.t.  x_g <= count_g,
  // sum x_g <= N-1, -sum x_g <= -1, x >= 0.
  LpProblem lp;
  lp.num_cols = static_cast<int32_t>(num_groups);
  lp.num_rows = static_cast<int32_t>(num_groups) + 2;
  for (int32_t g = 0; g < lp.num_cols; ++g) {
    lp.c.push_back(sum[g] / static_cast<double>(count[g]) - mid);
    lp.entries.push_back({g, g, 1.0});
    lp.entries.push_back({lp.num_cols, g, 1.0});
    lp.entries.push_back({lp.num_cols + 1, g, -1.0});
    lp.b.push_back(static_cast<double>(count[g]));
  }
  lp.b.push_back(static_cast<double>(n - 1));
  lp.b.push_back(-1.0);

  const LpResult result = SolveSimplex(lp);
  lp_iterations_ += result.iterations;

  std::vector<char> keep(num_groups, 0);
  if (result.status == LpStatus::kOptimal) {
    for (int64_t g = 0; g < num_groups; ++g) {
      keep[g] = result.x[g] + 1e-9 >= static_cast<double>(count[g]) / 2.0;
    }
  } else {
    // Unreachable on this bounded feasible family; deterministic anyway.
    for (int64_t g = 0; g < num_groups; ++g) {
      keep[g] = sum[g] / static_cast<double>(count[g]) > mid;
    }
  }

  // The coupling rows make the fractional solution non-degenerate, but
  // rounding can still collapse a side; clamp by toggling a boundary
  // group (num_groups >= 2 whenever the spread is positive).
  int64_t kept = 0;
  for (int64_t g = 0; g < num_groups; ++g) kept += keep[g] ? count[g] : 0;
  if (kept == 0) keep[num_groups - 1] = 1;
  if (kept == n) keep[0] = 0;

  std::vector<NodeId> subset;
  for (int64_t i = 0; i < n; ++i) {
    if (keep[member_group[i]]) subset.push_back(members[i]);
  }
  return subset;
}

int64_t LpRoundingRefiner::MemoryBytes() const {
  return WitnessSplitRefiner::MemoryBytes();
}

}  // namespace qsc
