// The Rothko algorithm (paper Algorithm 1): heuristic computation of a
// quasi-stable coloring by iterated witness splits.
//
// Starting from a coarse partition, each step finds the witness — the
// ordered color pair (P_i, P_j) and direction with the largest
// size-weighted degree spread — and splits the offending color at the mean
// degree. The process is *anytime*: it can be stopped after any step and
// still yields a valid coloring whose q-error only improves with more
// steps.
//
// Directed graphs consider both directions of Definition 1: an
// out-direction witness splits the source color by out-weight toward the
// target; an in-direction witness splits the target color by in-weight from
// the source. For undirected graphs the two coincide and only the
// out-direction is tracked.
//
// The implementation is incremental: per-node sparse color-weight maps and
// per-pair max/min aggregates are updated on each split (cost proportional
// to the split color's volume), and witnesses are found through lazy
// max-heaps, so building a k-color refinement does not rescan the graph k
// times.

#ifndef QSC_COLORING_ROTHKO_H_
#define QSC_COLORING_ROTHKO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "qsc/coloring/backend.h"
#include "qsc/coloring/params.h"
#include "qsc/coloring/partition.h"
#include "qsc/graph/graph_view.h"

namespace qsc {

class ThreadPool;

// The shared knobs (alpha, beta, q_tolerance, split_mean, pool) live in
// ColoringParams (coloring/params.h) so every backend consumes the same
// struct; RothkoOptions adds only the Rothko-specific stopping rule.
//
// Pool semantics for Rothko specifically: candidate colors are scored
// concurrently but scores commit through an ordered reduction, so the
// split sequence — and therefore every partition and q-error this refiner
// produces — is bit-identical for any pool size, including none
// (tests/coloring_rothko_equivalence_test.cc checks threads 1/2/8 against
// the frozen reference). The pool does NOT make the refiner itself
// thread-safe: concurrent Step() calls still require external
// serialization.
struct RothkoOptions : ColoringParams {
  // Pre-registry spelling of the split-threshold rule; the enumerators are
  // the namespace-scope qsc::SplitMean ones.
  using SplitMean = qsc::SplitMean;

  // Stop once the partition reaches this many colors (n in Algorithm 1).
  ColorId max_colors = 64;
};

// Telemetry for one split, recorded for the responsiveness study (paper
// Table 6).
struct RothkoStep {
  ColorId split_color;     // color that was split
  ColorId new_color;       // id of the newly created color
  double witness_error;    // unweighted q-error of the chosen witness
  ColorId num_colors;      // colors after the split
  double elapsed_seconds;  // since refiner construction
};

// Incremental refiner; use RothkoColoring() unless you need the anytime /
// co-routine interface. Registered as the `rothko` compression backend
// (coloring/backend.h).
class RothkoRefiner : public ColoringBackend {
 public:
  RothkoRefiner(const GraphView& g, Partition initial, RothkoOptions options);
  ~RothkoRefiner() override;

  RothkoRefiner(const RothkoRefiner&) = delete;
  RothkoRefiner& operator=(const RothkoRefiner&) = delete;

  // Performs one *monotone* refinement step. Returns false (and leaves the
  // partition unchanged) when converged: the maximum q-error is <=
  // q_tolerance, or no splittable color remains.
  //
  // A step begins with the witness split of Algorithm 1. A single split can
  // transiently *raise* the maximum q-error — splitting a color P_k also
  // splits every neighbor's witness weight w(v, P_k) into two components
  // whose spreads are not bounded by the old spread — so the step keeps
  // splitting the new worst witness until the maximum q-error is back at or
  // below its pre-step value. This makes the anytime guarantee exact:
  // CurrentMaxError() never increases across Step() calls.
  //
  // `color_cap` (0 = unlimited) bounds the monotone continuation: once the
  // partition reaches `color_cap` colors the step stops even if the error
  // has not yet recovered. At least one split is always performed. Ignores
  // options.max_colors; the caller owns that stopping rule.
  bool Step(ColorId color_cap = 0) override;

  // Runs Step() until convergence or options.max_colors colors.
  void Run();

  const Partition& partition() const override;

  // Maximum unweighted q-error of the current coloring, both directions.
  double CurrentMaxError() const override;

  const std::vector<RothkoStep>& history() const;

  // Approximate heap footprint of the live refiner (degree rows, pair
  // aggregates, witness heaps, scratch, history), in bytes. Capacities are
  // counted where accessible, element counts where not (the heaps), so the
  // number is a close lower bound on the allocator's view. Used by the
  // byte-budgeted ColoringCache to decide eviction.
  int64_t MemoryBytes() const override;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

// Convenience wrappers: refine from `initial` (or the trivial partition)
// until max_colors / q_tolerance.
Partition RothkoColoring(const GraphView& g, Partition initial,
                         const RothkoOptions& options);
Partition RothkoColoring(const GraphView& g, const RothkoOptions& options);

}  // namespace qsc

#endif  // QSC_COLORING_ROTHKO_H_
