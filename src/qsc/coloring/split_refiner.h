// Shared scaffold for witness-split compression backends.
//
// WitnessSplitRefiner owns everything the ColoringBackend contract
// demands except the split rule itself: it scans the partition for the
// worst witness (the ordered color pair and direction with the largest
// weight spread, Definition 1), asks the concrete kernel which members to
// peel off, and repeats inside one Step() until the maximum q-error is
// back at or below its pre-step value — the same monotone-recovery loop
// RothkoRefiner uses, so every kernel built on this base satisfies the
// anytime contract by construction.
//
// Unlike the incremental Rothko hot path (flat_rows.h), the scaffold
// recomputes the witness table from scratch after every split: O(m) per
// split instead of O(split volume). That is deliberate — baseline and
// experimental kernels value simplicity and obvious determinism over
// speed, and the registry makes them interchangeable with the fast
// kernel. The worst witness is selected with a total tie-break
// (spread desc, direction, source color asc, target color asc), so the
// split sequence is a pure function of (graph, partition, params).

#ifndef QSC_COLORING_SPLIT_REFINER_H_
#define QSC_COLORING_SPLIT_REFINER_H_

#include <cstdint>
#include <vector>

#include "qsc/coloring/backend.h"
#include "qsc/coloring/params.h"
#include "qsc/coloring/partition.h"
#include "qsc/graph/graph_view.h"

namespace qsc {

class WitnessSplitRefiner : public ColoringBackend {
 public:
  // `g` is borrowed and must outlive the refiner.
  WitnessSplitRefiner(const GraphView& g, Partition initial,
                      const ColoringParams& params);

  bool Step(ColorId color_cap = 0) final;
  const Partition& partition() const final { return partition_; }
  double CurrentMaxError() const final { return current_error_; }
  int64_t MemoryBytes() const override;

 protected:
  // The worst witness of the current partition, handed to the kernel.
  struct Witness {
    ColorId split_color = -1;  // color to split (>= 2 members)
    ColorId other_color = -1;  // the witness pair's other end
    // True: weights are out-weights of split_color's members into
    // other_color; false: in-weights from other_color (directed graphs
    // only; undirected graphs always report the out direction).
    bool out_direction = true;
    double spread = 0.0;  // max - min over `weights` (> 0)
    // Witness weight of every member, aligned with
    // partition().Members(split_color); members without an edge toward
    // the witness target contribute 0.
    std::vector<double> weights;
  };

  // Kernel hook: the member subset to peel into a new color. The scaffold
  // clamps degenerate answers (empty or full subsets fall back to peeling
  // the single max-weight member, lowest node id first), so kernels only
  // need to be deterministic.
  virtual std::vector<NodeId> ChooseSplit(const Witness& witness) = 0;

  const GraphView& graph() const { return graph_; }
  const ColoringParams& params() const { return params_; }

 private:
  // Fills `out` with the worst witness; false when the partition is
  // stable (every spread 0 — no splittable color). Also refreshes
  // current_error_ (the max spread found).
  bool FindWorstWitness(Witness* out);

  // One split of the current worst witness; false if no witness remains.
  bool SplitOnce(ColorId color_cap);

  void EnsureScanned();

  GraphView graph_;
  ColoringParams params_;
  Partition partition_;
  double current_error_ = 0.0;
  bool scanned_ = false;      // witness_ / current_error_ reflect partition_
  bool has_witness_ = false;  // some color still has positive spread
  Witness witness_;           // worst witness of the current partition
};

}  // namespace qsc

#endif  // QSC_COLORING_SPLIT_REFINER_H_
