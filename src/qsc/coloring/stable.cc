#include "qsc/coloring/stable.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "qsc/coloring/q_error.h"

namespace qsc {
namespace {

// A node's refinement signature: its current color plus, per neighbor
// color, the aggregated out- and in-weights. std::map keeps the key
// canonical (sorted by color).
struct Signature {
  ColorId own_color;
  // color -> (out weight, in weight)
  std::map<ColorId, std::pair<double, double>> weights;

  bool operator<(const Signature& other) const {
    if (own_color != other.own_color) return own_color < other.own_color;
    return weights < other.weights;
  }
};

}  // namespace

Partition StableColoring(const GraphView& g, const Partition& initial) {
  QSC_CHECK_EQ(g.num_nodes(), initial.num_nodes());
  const NodeId n = g.num_nodes();
  std::vector<ColorId> color(initial.color_of());
  ColorId num_colors = initial.num_colors();

  while (true) {
    // Compute every node's signature under the current coloring.
    std::map<Signature, ColorId> sig_to_color;
    std::vector<ColorId> next(n);
    for (NodeId v = 0; v < n; ++v) {
      Signature sig;
      sig.own_color = color[v];
      for (const NeighborEntry& e : g.OutNeighbors(v)) {
        sig.weights[color[e.node]].first += e.weight;
      }
      for (const NeighborEntry& e : g.InNeighbors(v)) {
        sig.weights[color[e.node]].second += e.weight;
      }
      const auto [it, inserted] = sig_to_color.try_emplace(
          std::move(sig), static_cast<ColorId>(sig_to_color.size()));
      next[v] = it->second;
    }
    const ColorId next_colors = static_cast<ColorId>(sig_to_color.size());
    QSC_CHECK_GE(next_colors, num_colors);
    if (next_colors == num_colors) break;  // Fixpoint reached.
    color.swap(next);
    num_colors = next_colors;
  }
  return Partition::FromColorIds(color);
}

Partition StableColoring(const GraphView& g) {
  return StableColoring(g, Partition::Trivial(g.num_nodes()));
}

bool IsStableColoring(const GraphView& g, const Partition& p) {
  return ComputeQError(g, p).max_q == 0.0;
}

}  // namespace qsc
