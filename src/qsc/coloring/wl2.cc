#include "qsc/coloring/wl2.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

namespace qsc {
namespace {

// Dense pair-color table, row-major: color of the ordered pair (u, v).
using PairColors = std::vector<int32_t>;

PairColors InitialPairColors(const Graph& g) {
  const NodeId n = g.num_nodes();
  PairColors colors(static_cast<size_t>(n) * n);
  // Atomic type: equality flag plus the two directed weights.
  std::map<std::tuple<bool, double, double>, int32_t> type_ids;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      const std::tuple<bool, double, double> type{
          u == v, g.ArcWeight(u, v), g.ArcWeight(v, u)};
      const auto [it, inserted] =
          type_ids.try_emplace(type, static_cast<int32_t>(type_ids.size()));
      colors[static_cast<size_t>(u) * n + v] = it->second;
    }
  }
  return colors;
}

}  // namespace

Partition Wl2NodeColoring(const Graph& g) {
  const NodeId n = g.num_nodes();
  if (n == 0) return Partition();
  PairColors colors = InitialPairColors(g);
  int64_t num_colors = -1;

  while (true) {
    using Signature = std::pair<int32_t, std::vector<std::pair<int32_t,
                                                              int32_t>>>;
    std::map<Signature, int32_t> sig_to_color;
    PairColors next(colors.size());
    std::vector<std::pair<int32_t, int32_t>> neighborhood(n);
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = 0; v < n; ++v) {
        for (NodeId w = 0; w < n; ++w) {
          neighborhood[w] = {colors[static_cast<size_t>(u) * n + w],
                             colors[static_cast<size_t>(w) * n + v]};
        }
        std::sort(neighborhood.begin(), neighborhood.end());
        const auto [it, inserted] = sig_to_color.try_emplace(
            Signature{colors[static_cast<size_t>(u) * n + v], neighborhood},
            static_cast<int32_t>(sig_to_color.size()));
        next[static_cast<size_t>(u) * n + v] = it->second;
      }
    }
    const int64_t next_colors = static_cast<int64_t>(sig_to_color.size());
    colors.swap(next);
    if (next_colors == num_colors) break;
    num_colors = next_colors;
  }

  std::vector<int32_t> diagonal(n);
  for (NodeId v = 0; v < n; ++v) {
    diagonal[v] = colors[static_cast<size_t>(v) * n + v];
  }
  return Partition::FromColorIds(diagonal);
}

}  // namespace qsc
