// Exact stable coloring (color refinement / 1-WL, paper Sec. 2).
//
// A coloring is stable when, for every pair of colors (P_i, P_j), all nodes
// of P_i have the same total edge weight into P_j and the same total weight
// from P_j. StableColoring computes the coarsest stable refinement of an
// initial partition by signature-hash refinement to fixpoint.

#ifndef QSC_COLORING_STABLE_H_
#define QSC_COLORING_STABLE_H_

#include "qsc/coloring/partition.h"
#include "qsc/graph/graph_view.h"

namespace qsc {

// Coarsest stable coloring refining `initial`.
Partition StableColoring(const GraphView& g, const Partition& initial);

// Coarsest stable coloring of the graph (initial = trivial partition).
Partition StableColoring(const GraphView& g);

// True iff `p` is a stable coloring of `g` (equivalently, its q-error is 0).
bool IsStableColoring(const GraphView& g, const Partition& p);

}  // namespace qsc

#endif  // QSC_COLORING_STABLE_H_
