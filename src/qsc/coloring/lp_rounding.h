// The `lp-rounding` compression backend: witness splits posed as a small
// assignment LP solved by the in-tree simplex, then rounded (the Limbo
// LPColoring recipe — relax the combinatorial choice, solve the LP,
// round the fractional solution).
//
// For the worst witness the kernel groups members by witness weight
// (quantile-merged to <= kMaxGroups groups), then solves
//
//     maximize  sum_g (w_g - mid) * x_g
//     s.t.      0 <= x_g <= count_g            (fractional membership)
//               1 <= sum_g x_g <= N - 1        (both sides non-empty)
//
// where mid is the weight midrange (lo+hi)/2. The LP pushes every group
// above the midrange fully into the new color and every group below fully
// out; the coupling row forces a boundary group fractional exactly when a
// pure midrange threshold would leave one side empty. Rounding keeps a
// group iff x_g >= count_g / 2. The cut is therefore a *midrange*
// threshold — genuinely different from rothko's mean split and bucket's
// median-rank split — with LP-certified non-degeneracy.
//
// Determinism: groups are built from sorted distinct weights, the LP is a
// fixed function of the witness, and SolveSimplex is deterministic, so
// the split sequence is a pure function of (graph, partition, params).
// If the solver ever fails to return an optimum (it cannot on this
// bounded feasible family, but the kernel does not rely on that), the
// kernel falls back to the plain midrange threshold.

#ifndef QSC_COLORING_LP_ROUNDING_H_
#define QSC_COLORING_LP_ROUNDING_H_

#include <cstdint>
#include <vector>

#include "qsc/coloring/split_refiner.h"

namespace qsc {

class LpRoundingRefiner : public WitnessSplitRefiner {
 public:
  // Cap on LP columns per split; larger witness colors are quantile-merged.
  static constexpr int kMaxGroups = 256;

  LpRoundingRefiner(const GraphView& g, Partition initial,
                    const ColoringParams& params);

  int64_t MemoryBytes() const override;

  // Total simplex iterations spent across all splits (telemetry).
  int64_t lp_iterations() const { return lp_iterations_; }

 protected:
  std::vector<NodeId> ChooseSplit(const Witness& witness) override;

 private:
  int64_t lp_iterations_ = 0;
};

}  // namespace qsc

#endif  // QSC_COLORING_LP_ROUNDING_H_
