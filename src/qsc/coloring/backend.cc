#include "qsc/coloring/backend.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "qsc/coloring/bucket.h"
#include "qsc/coloring/lp_rounding.h"
#include "qsc/coloring/rothko.h"
#include "qsc/util/check.h"

namespace qsc {
namespace {

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

char AsciiLower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool IsNameChar(char c, bool first) {
  const bool alnum = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9');
  return first ? alnum : alnum || c == '_' || c == '-';
}

}  // namespace

StatusOr<std::string> CanonicalBackendName(const std::string& name) {
  size_t begin = 0;
  size_t end = name.size();
  while (begin < end && IsAsciiSpace(name[begin])) ++begin;
  while (end > begin && IsAsciiSpace(name[end - 1])) --end;
  if (begin == end) return std::string(kDefaultColoringBackend);

  std::string canonical;
  canonical.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    canonical.push_back(AsciiLower(name[i]));
  }
  constexpr size_t kMaxLen = 64;
  if (canonical.size() > kMaxLen) {
    return Status::InvalidArgument("backend name longer than 64 characters");
  }
  for (size_t i = 0; i < canonical.size(); ++i) {
    if (!IsNameChar(canonical[i], /*first=*/i == 0)) {
      return Status::InvalidArgument(
          "malformed backend name \"" + canonical +
          "\": must match [a-z0-9][a-z0-9_-]*");
    }
  }
  return canonical;
}

class ColoringBackendRegistry::Impl {
 public:
  struct Entry {
    std::string description;
    ColoringBackendFactory factory;
  };

  // std::map keeps Names() sorted for free.
  mutable std::shared_mutex mutex;
  std::map<std::string, Entry> entries;
};

ColoringBackendRegistry::Impl* ColoringBackendRegistry::impl() const {
  static Impl* impl = new Impl();  // leaked: registry lives forever
  return impl;
}

ColoringBackendRegistry& ColoringBackendRegistry::Global() {
  static ColoringBackendRegistry* global = [] {
    auto* registry = new ColoringBackendRegistry();
    registry->Register(
        "rothko",
        "paper Algorithm 1: size-weighted worst-witness splits at the mean",
        [](const GraphView& g, Partition initial, const ColoringParams& params) {
          RothkoOptions options;
          static_cast<ColoringParams&>(options) = params;
          return std::unique_ptr<ColoringBackend>(
              new RothkoRefiner(g, std::move(initial), options));
        });
    registry->Register(
        "lp-rounding",
        "witness splits as assignment LPs solved by simplex, then rounded",
        [](const GraphView& g, Partition initial, const ColoringParams& params) {
          return std::unique_ptr<ColoringBackend>(
              new LpRoundingRefiner(g, std::move(initial), params));
        });
    registry->Register(
        "bucket",
        "weighted-degree bucketing at the median rank (cheap baseline)",
        [](const GraphView& g, Partition initial, const ColoringParams& params) {
          return std::unique_ptr<ColoringBackend>(
              new BucketRefiner(g, std::move(initial), params));
        });
    return registry;
  }();
  return *global;
}

void ColoringBackendRegistry::Register(std::string name,
                                       std::string description,
                                       ColoringBackendFactory factory) {
  QSC_CHECK(factory != nullptr);
  const StatusOr<std::string> canonical = CanonicalBackendName(name);
  QSC_CHECK(canonical.ok());
  QSC_CHECK(*canonical == name);  // registration names must be canonical
  Impl* i = impl();
  std::unique_lock lock(i->mutex);
  const auto [it, inserted] = i->entries.try_emplace(
      std::move(name),
      Impl::Entry{std::move(description), std::move(factory)});
  QSC_CHECK(inserted);  // duplicate backend registration
  (void)it;
}

bool ColoringBackendRegistry::Contains(
    const std::string& canonical_name) const {
  Impl* i = impl();
  std::shared_lock lock(i->mutex);
  return i->entries.count(canonical_name) > 0;
}

std::unique_ptr<ColoringBackend> ColoringBackendRegistry::Create(
    const std::string& canonical_name, const GraphView& g, Partition initial,
    const ColoringParams& params) const {
  ColoringBackendFactory factory;
  {
    Impl* i = impl();
    std::shared_lock lock(i->mutex);
    const auto it = i->entries.find(canonical_name);
    QSC_CHECK(it != i->entries.end());  // boundary validates first
    factory = it->second.factory;
  }
  return factory(g, std::move(initial), params);
}

std::vector<std::string> ColoringBackendRegistry::Names() const {
  Impl* i = impl();
  std::shared_lock lock(i->mutex);
  std::vector<std::string> names;
  names.reserve(i->entries.size());
  for (const auto& [name, entry] : i->entries) names.push_back(name);
  return names;
}

std::string ColoringBackendRegistry::Description(
    const std::string& canonical_name) const {
  Impl* i = impl();
  std::shared_lock lock(i->mutex);
  const auto it = i->entries.find(canonical_name);
  return it == i->entries.end() ? std::string() : it->second.description;
}

}  // namespace qsc
