// Colorings of a node set, i.e. partitions P = {P_1, ..., P_k} (paper
// Sec. 2). Colors are dense integer ids 0..k-1.

#ifndef QSC_COLORING_PARTITION_H_
#define QSC_COLORING_PARTITION_H_

#include <cstdint>
#include <vector>

#include "qsc/graph/graph.h"

namespace qsc {

using ColorId = int32_t;

class Partition {
 public:
  Partition() = default;

  // All nodes share one color (the coarsest partition, start of Rothko).
  static Partition Trivial(NodeId num_nodes);

  // Every node is its own color (P_bot in the paper).
  static Partition Discrete(NodeId num_nodes);

  // Builds from an arbitrary labeling; labels are renumbered to dense color
  // ids 0..k-1 in order of first appearance.
  static Partition FromColorIds(const std::vector<int32_t>& labels);

  NodeId num_nodes() const { return static_cast<NodeId>(color_of_.size()); }
  ColorId num_colors() const {
    return static_cast<ColorId>(members_.size());
  }

  ColorId ColorOf(NodeId v) const {
    QSC_DCHECK(v >= 0 && v < num_nodes());
    return color_of_[v];
  }

  const std::vector<NodeId>& Members(ColorId c) const {
    QSC_DCHECK(c >= 0 && c < num_colors());
    return members_[c];
  }

  int64_t ColorSize(ColorId c) const {
    return static_cast<int64_t>(Members(c).size());
  }

  const std::vector<ColorId>& color_of() const { return color_of_; }

  // Moves `nodes` (all currently colored `from`) into a brand-new color and
  // returns its id. `nodes` must be a strict non-empty subset of
  // Members(from).
  ColorId SplitColor(ColorId from, const std::vector<NodeId>& nodes);

  // True iff every color of *this is contained in a single color of
  // `coarser` (P ⊑ P', "this refines coarser").
  bool IsRefinementOf(const Partition& coarser) const;

  // Number of colors with exactly one member.
  int64_t NumSingletons() const;

  // Sizes of all colors.
  std::vector<int64_t> ColorSizes() const;

  // Compression ratio num_nodes / num_colors (paper Table 4 reports e.g.
  // "87:1").
  double CompressionRatio() const;

  // Heap footprint of this partition in bytes (capacities, not sizes, so
  // the number tracks what the allocator actually holds). Used by the
  // byte-budgeted ColoringCache to account cached snapshots.
  int64_t MemoryBytes() const;

  friend bool operator==(const Partition& a, const Partition& b);

 private:
  std::vector<ColorId> color_of_;
  std::vector<std::vector<NodeId>> members_;
};

}  // namespace qsc

#endif  // QSC_COLORING_PARTITION_H_
