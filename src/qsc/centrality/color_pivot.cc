#include "qsc/centrality/color_pivot.h"

#include <algorithm>

#include "qsc/centrality/brandes.h"
#include "qsc/util/random.h"
#include "qsc/util/timer.h"

namespace qsc {

ApproxBetweennessResult ApproximateBetweenness(
    const Graph& g, const ColorPivotOptions& options) {
  WallTimer timer;
  Partition coloring = RothkoColoring(g, options.rothko);
  const double coloring_seconds = timer.ElapsedSeconds();
  ApproxBetweennessResult result =
      ApproximateBetweennessWithColoring(g, coloring, options);
  result.coloring_seconds = coloring_seconds;
  return result;
}

ApproxBetweennessResult ApproximateBetweennessWithColoring(
    const Graph& g, const Partition& coloring,
    const ColorPivotOptions& options) {
  QSC_CHECK_EQ(g.num_nodes(), coloring.num_nodes());
  QSC_CHECK_GE(options.pivots_per_color, 1);
  ApproxBetweennessResult result;
  result.coloring = coloring;
  result.num_colors = coloring.num_colors();

  WallTimer timer;
  Rng rng(options.seed);
  BrandesWorkspace workspace(g);
  result.scores.assign(g.num_nodes(), 0.0);
  for (ColorId c = 0; c < coloring.num_colors(); ++c) {
    const std::vector<NodeId>& members = coloring.Members(c);
    const int32_t pivots = std::min<int32_t>(
        options.pivots_per_color, static_cast<int32_t>(members.size()));
    // Each pivot stands for |P_c| / pivots sources.
    const double scale =
        static_cast<double>(members.size()) / static_cast<double>(pivots);
    for (int64_t idx :
         rng.SampleWithoutReplacement(members.size(), pivots)) {
      workspace.AccumulateDependencies(members[idx], scale, result.scores);
    }
  }
  result.solve_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace qsc
