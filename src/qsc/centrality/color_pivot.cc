#include "qsc/centrality/color_pivot.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "qsc/api/compressor.h"
#include "qsc/centrality/brandes.h"
#include "qsc/parallel/parallel_for.h"
#include "qsc/util/random.h"
#include "qsc/util/timer.h"

namespace qsc {

std::vector<double> ColorPivotScores(const GraphView& g, const Partition& coloring,
                                     int32_t pivots_per_color, uint64_t seed,
                                     ThreadPool* pool) {
  QSC_CHECK_EQ(g.num_nodes(), coloring.num_nodes());
  QSC_CHECK_GE(pivots_per_color, 1);

  // Pivot sampling consumes one RNG stream and stays sequential: the
  // sampled pivots are identical for every pool size.
  struct Pivot {
    NodeId node;
    double scale;
  };
  Rng rng(seed);
  std::vector<Pivot> pivots;
  for (ColorId c = 0; c < coloring.num_colors(); ++c) {
    const std::vector<NodeId>& members = coloring.Members(c);
    const int32_t count = std::min<int32_t>(
        pivots_per_color, static_cast<int32_t>(members.size()));
    // Each pivot stands for |P_c| / count sources.
    const double scale =
        static_cast<double>(members.size()) / static_cast<double>(count);
    for (int64_t idx : rng.SampleWithoutReplacement(members.size(), count)) {
      pivots.push_back({members[idx], scale});
    }
  }

  std::vector<double> scores(g.num_nodes(), 0.0);
  if (pool == nullptr || pool->num_threads() <= 1 || pivots.size() <= 1) {
    BrandesWorkspace workspace(g);
    for (const Pivot& pivot : pivots) {
      workspace.AccumulateDependencies(pivot.node, pivot.scale, scores);
    }
    return scores;
  }

  // One Brandes pass per pivot, scored concurrently; contributions merge
  // strictly in pivot order. A pass writes each node's score at most once
  // (scores[w] += scale * delta_w) and every contribution is
  // non-negative, so accumulating a pass into a zeroed buffer and folding
  // the buffers in pivot order reproduces the sequential accumulation bit
  // for bit. At most ~pool-width contribution buffers are live at once
  // (each is released as soon as it commits).
  std::vector<std::vector<double>> contributions(pivots.size());
  ParallelOrderedFor(
      pool, static_cast<int64_t>(pivots.size()),
      [&](int64_t i) {
        contributions[i].assign(g.num_nodes(), 0.0);
        BrandesWorkspace workspace(g);
        workspace.AccumulateDependencies(pivots[i].node, pivots[i].scale,
                                         contributions[i]);
      },
      [&](int64_t i) {
        const std::vector<double>& contribution = contributions[i];
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          scores[v] += contribution[v];
        }
        contributions[i] = {};  // release before later pivots finish
      });
  return scores;
}

ApproxBetweennessResult ApproximateBetweenness(
    const Graph& g, const ColorPivotOptions& options) {
  // One-shot session over a borrowed graph (aliasing shared_ptr: the
  // session dies before `g`).
  Compressor session(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g));
  QueryOptions query;
  query.max_colors = options.rothko.max_colors;
  query.q_tolerance = options.rothko.q_tolerance;
  query.alpha = options.rothko.alpha;
  query.beta = options.rothko.beta;
  query.split_mean = options.rothko.split_mean;
  query.pivots_per_color = options.pivots_per_color;
  query.seed = options.seed;
  StatusOr<CentralityQueryResult> result = session.Centrality(query);
  QSC_CHECK_OK(result);  // legacy contract: invalid options abort

  ApproxBetweennessResult out;
  out.scores = std::move(result->scores);
  out.num_colors = result->num_colors;
  out.coloring_seconds = result->telemetry.coloring_seconds;
  out.solve_seconds = result->telemetry.solve_seconds;
  out.coloring = *result->coloring;
  return out;
}

ApproxBetweennessResult ApproximateBetweennessWithColoring(
    const Graph& g, const Partition& coloring,
    const ColorPivotOptions& options) {
  ApproxBetweennessResult result;
  result.coloring = coloring;
  result.num_colors = coloring.num_colors();
  WallTimer timer;
  result.scores =
      ColorPivotScores(g, coloring, options.pivots_per_color, options.seed);
  result.solve_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace qsc
