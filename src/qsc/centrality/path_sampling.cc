#include "qsc/centrality/path_sampling.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "qsc/util/random.h"

namespace qsc {
namespace {

// BFS returning (dist, sigma, visit order); shared by the diameter sweep
// and the path sampler.
struct BfsState {
  std::vector<int32_t> dist;
  std::vector<double> sigma;
  std::vector<NodeId> order;
};

// BFS from s; when `target` is non-negative, stops after finishing the
// target's level (all shortest paths to `target` are then counted).
void Bfs(const Graph& g, NodeId s, BfsState& state, NodeId target = -1) {
  state.dist.assign(g.num_nodes(), -1);
  state.sigma.assign(g.num_nodes(), 0.0);
  state.order.clear();
  state.dist[s] = 0;
  state.sigma[s] = 1.0;
  state.order.push_back(s);
  for (size_t head = 0; head < state.order.size(); ++head) {
    const NodeId u = state.order[head];
    if (target >= 0 && state.dist[target] != -1 &&
        state.dist[u] >= state.dist[target]) {
      break;  // target's level fully expanded
    }
    for (const NeighborEntry& e : g.OutNeighbors(u)) {
      if (state.dist[e.node] == -1) {
        state.dist[e.node] = state.dist[u] + 1;
        state.order.push_back(e.node);
      }
      if (state.dist[e.node] == state.dist[u] + 1) {
        state.sigma[e.node] += state.sigma[u];
      }
    }
  }
}

}  // namespace

int32_t ApproximateVertexDiameter(const Graph& g, NodeId start) {
  BfsState state;
  Bfs(g, start, state);
  if (state.order.size() <= 1) return 1;
  const NodeId far = state.order.back();
  Bfs(g, far, state);
  const int32_t hops = state.dist[state.order.back()];
  return hops + 1;  // path with `hops` edges touches hops+1 vertices
}

RkResult BetweennessRk(const Graph& g, const RkOptions& options) {
  const NodeId n = g.num_nodes();
  RkResult result;
  result.scores.assign(n, 0.0);
  if (n < 3) return result;

  Rng rng(options.seed);
  result.vertex_diameter_estimate = ApproximateVertexDiameter(
      g, static_cast<NodeId>(rng.NextBounded(n)));

  // r = (c/eps^2) * (floor(log2(VD-2)) + 1 + ln(1/delta))   [37]
  const double vd = std::max(3, result.vertex_diameter_estimate);
  const double r_real =
      options.c / (options.epsilon * options.epsilon) *
      (std::floor(std::log2(std::max(1.0, vd - 2.0))) + 1.0 +
       std::log(1.0 / options.delta));
  result.samples = std::min<int64_t>(
      options.max_samples, static_cast<int64_t>(std::ceil(r_real)));

  BfsState state;
  const double contribution = 1.0 / static_cast<double>(result.samples);
  for (int64_t sample = 0; sample < result.samples; ++sample) {
    const NodeId s = static_cast<NodeId>(rng.NextBounded(n));
    NodeId t = static_cast<NodeId>(rng.NextBounded(n));
    while (t == s) t = static_cast<NodeId>(rng.NextBounded(n));
    Bfs(g, s, state, t);
    if (state.dist[t] == -1) continue;  // disconnected pair: empty path set

    // Walk back from t, picking each predecessor with probability
    // proportional to its path count — a uniform sample over shortest
    // s-t paths.
    NodeId v = t;
    while (v != s) {
      double total = 0.0;
      for (const NeighborEntry& e : g.InNeighbors(v)) {
        if (state.dist[e.node] != -1 &&
            state.dist[e.node] + 1 == state.dist[v]) {
          total += state.sigma[e.node];
        }
      }
      double pick = rng.UniformDouble() * total;
      NodeId pred = -1;
      for (const NeighborEntry& e : g.InNeighbors(v)) {
        if (state.dist[e.node] != -1 &&
            state.dist[e.node] + 1 == state.dist[v]) {
          pick -= state.sigma[e.node];
          pred = e.node;
          if (pick <= 0.0) break;
        }
      }
      QSC_CHECK_NE(pred, -1);
      if (pred != s) result.scores[pred] += contribution;
      v = pred;
    }
  }
  return result;
}

}  // namespace qsc
