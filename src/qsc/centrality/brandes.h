// Betweenness centrality (paper Sec 4.3): exact computation with Brandes'
// algorithm [5], plus the reusable single-source dependency pass shared by
// the approximation schemes.
//
// Graphs are treated as unweighted (every arc is one hop); the score of v
// is g(v) = sum over ordered pairs (s,t), s != v != t, of
// sigma(s,t|v)/sigma(s,t). For undirected graphs each unordered pair is
// therefore counted twice — a constant factor that the rank-correlation
// metric ignores.

#ifndef QSC_CENTRALITY_BRANDES_H_
#define QSC_CENTRALITY_BRANDES_H_

#include <vector>

#include "qsc/graph/graph_view.h"

namespace qsc {

// Reusable buffers for repeated single-source passes.
class BrandesWorkspace {
 public:
  explicit BrandesWorkspace(const GraphView& g);

  // Computes the dependency delta_s(v) = sum_t sigma(s,t|v)/sigma(s,t) for
  // every v and accumulates `scale * delta_s(v)` into `scores`.
  void AccumulateDependencies(NodeId s, double scale,
                              std::vector<double>& scores);

 private:
  GraphView graph_;
  std::vector<int32_t> dist_;
  std::vector<double> sigma_;
  std::vector<double> delta_;
  std::vector<NodeId> order_;  // BFS visit order
};

// Exact betweenness centrality, O(V*E).
std::vector<double> BetweennessExact(const GraphView& g);

}  // namespace qsc

#endif  // QSC_CENTRALITY_BRANDES_H_
