// Coloring-based betweenness approximation (the paper's method, Sec 4.3 /
// 6.1): compute a quasi-stable coloring (alpha = beta = 1), assume nodes of
// one color contribute interchangeably as shortest-path sources, and run
// one Brandes dependency pass per color from a sampled pivot, weighting the
// pass by the color's size. With k colors the cost is k BFS passes instead
// of n — the paper's "compute (9) once per color" estimator.

#ifndef QSC_CENTRALITY_COLOR_PIVOT_H_
#define QSC_CENTRALITY_COLOR_PIVOT_H_

#include <cstdint>
#include <vector>

#include "qsc/coloring/partition.h"
#include "qsc/coloring/rothko.h"
#include "qsc/graph/graph_view.h"

namespace qsc {

struct ColorPivotOptions {
  ColorPivotOptions() {
    rothko.alpha = 1.0;
    rothko.beta = 1.0;
  }
  RothkoOptions rothko;  // max_colors governs the accuracy/speed trade-off
  int32_t pivots_per_color = 1;
  uint64_t seed = 17;
};

struct ApproxBetweennessResult {
  std::vector<double> scores;
  ColorId num_colors = 0;
  double coloring_seconds = 0.0;
  double solve_seconds = 0.0;
  Partition coloring;
};

// One-shot convenience wrapper over qsc::Compressor::Centrality; prefer
// the session API when issuing more than one query against a graph.
ApproxBetweennessResult ApproximateBetweenness(
    const Graph& g, const ColorPivotOptions& options);

// Variant that reuses an existing coloring (e.g. from an anytime refiner).
ApproxBetweennessResult ApproximateBetweennessWithColoring(
    const Graph& g, const Partition& coloring,
    const ColorPivotOptions& options);

// The estimator core: one size-weighted Brandes pass per sampled pivot.
// Returns only the scores, so callers holding a shared coloring (the
// session API) do not pay a Partition copy per query. With a pool the
// pivot passes run concurrently and their contributions merge strictly in
// pivot order; each pass writes every node's score once, so the result is
// bit-identical to the sequential loop for any pool size.
std::vector<double> ColorPivotScores(const GraphView& g, const Partition& coloring,
                                     int32_t pivots_per_color, uint64_t seed,
                                     ThreadPool* pool = nullptr);

}  // namespace qsc

#endif  // QSC_CENTRALITY_COLOR_PIVOT_H_
