// Riondato-Kornaropoulos betweenness approximation [37] — the prior-work
// baseline of Table 1 (top). Samples r shortest paths between uniform
// random node pairs, where r comes from a VC-dimension bound in terms of
// the vertex diameter; each sampled path adds 1/r to its interior nodes.
// Scores estimate the normalized betweenness; Spearman comparisons are
// scale-invariant.

#ifndef QSC_CENTRALITY_PATH_SAMPLING_H_
#define QSC_CENTRALITY_PATH_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "qsc/graph/graph.h"

namespace qsc {

struct RkOptions {
  double epsilon = 0.05;  // additive error bound
  double delta = 0.1;     // failure probability
  double c = 0.5;         // universal constant of the sample-size bound
  int64_t max_samples = 2000000;
  uint64_t seed = 23;
};

struct RkResult {
  std::vector<double> scores;
  int64_t samples = 0;
  int32_t vertex_diameter_estimate = 0;
};

RkResult BetweennessRk(const Graph& g, const RkOptions& options);

// Approximate vertex diameter (number of nodes on the longest shortest
// path) via a double BFS sweep from `start`.
int32_t ApproximateVertexDiameter(const Graph& g, NodeId start);

}  // namespace qsc

#endif  // QSC_CENTRALITY_PATH_SAMPLING_H_
