#include "qsc/centrality/brandes.h"

#include <algorithm>

namespace qsc {

BrandesWorkspace::BrandesWorkspace(const GraphView& g)
    : graph_(g),
      dist_(g.num_nodes()),
      sigma_(g.num_nodes()),
      delta_(g.num_nodes()) {
  order_.reserve(g.num_nodes());
}

void BrandesWorkspace::AccumulateDependencies(NodeId s, double scale,
                                              std::vector<double>& scores) {
  const GraphView& g = graph_;
  const NodeId n = g.num_nodes();
  QSC_CHECK_EQ(static_cast<NodeId>(scores.size()), n);
  std::fill(dist_.begin(), dist_.end(), -1);
  std::fill(sigma_.begin(), sigma_.end(), 0.0);
  order_.clear();

  // BFS shortest-path DAG from s; order_ doubles as the queue.
  dist_[s] = 0;
  sigma_[s] = 1.0;
  order_.push_back(s);
  for (size_t head = 0; head < order_.size(); ++head) {
    const NodeId u = order_[head];
    for (const NeighborEntry& e : g.OutNeighbors(u)) {
      const NodeId v = e.node;
      if (dist_[v] == -1) {
        dist_[v] = dist_[u] + 1;
        order_.push_back(v);
      }
      if (dist_[v] == dist_[u] + 1) sigma_[v] += sigma_[u];
    }
  }

  // Dependency accumulation in reverse BFS order. A predecessor of w on
  // the DAG is an in-neighbor u with dist(u) = dist(w) - 1.
  std::fill(delta_.begin(), delta_.end(), 0.0);
  for (size_t idx = order_.size(); idx-- > 0;) {
    const NodeId w = order_[idx];
    const double coeff = (1.0 + delta_[w]) / sigma_[w];
    for (const NeighborEntry& e : g.InNeighbors(w)) {
      const NodeId u = e.node;
      if (dist_[u] != -1 && dist_[u] + 1 == dist_[w]) {
        delta_[u] += sigma_[u] * coeff;
      }
    }
    if (w != s) scores[w] += scale * delta_[w];
  }
}

std::vector<double> BetweennessExact(const GraphView& g) {
  std::vector<double> scores(g.num_nodes(), 0.0);
  BrandesWorkspace workspace(g);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    workspace.AccumulateDependencies(s, 1.0, scores);
  }
  return scores;
}

}  // namespace qsc
