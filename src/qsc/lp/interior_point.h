// Primal-dual path-following interior-point solver for
// `maximize c^T x, Ax <= b, x >= 0`.
//
// This is the exact LP baseline of the paper's evaluation (Tulip, an
// interior-point solver) and, through `early_stop_rel_gap`, the
// "early-stopping" baseline of Table 1: iterate until the relative
// primal-dual gap certifies the requested relative error, then stop.
//
// Internally the problem is converted to standard form
//   min (-c)^T x  s.t.  Ax + w = b,  x, w >= 0
// and solved with Newton steps on the perturbed KKT system, using dense
// Cholesky on the normal equations A D A^T + D_w.

#ifndef QSC_LP_INTERIOR_POINT_H_
#define QSC_LP_INTERIOR_POINT_H_

#include <cstdint>
#include <vector>

#include "qsc/lp/model.h"
#include "qsc/lp/simplex.h"  // LpStatus / LpResult

namespace qsc {

struct IpmIterate {
  int32_t iteration;
  double primal_objective;  // c^T x (maximization sign)
  double dual_objective;    // b^T y
  double rel_gap;           // max(p/d, d/p) when both positive, else inf
  double primal_infeasibility;
  double elapsed_seconds;
};

struct IpmOptions {
  int32_t max_iterations = 200;
  double tolerance = 1e-8;  // convergence: residuals and complementarity
  // If > 1.0, stop as soon as the iterate is nearly primal feasible and
  // max(primal/dual, dual/primal) <= early_stop_rel_gap (the Table-1
  // early-stopping baseline). 0 disables early stopping.
  double early_stop_rel_gap = 0.0;
  double sigma = 0.2;  // centering parameter
};

struct IpmResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;
  int32_t iterations = 0;
  bool early_stopped = false;
  std::vector<IpmIterate> history;
};

IpmResult SolveInteriorPoint(const LpProblem& lp,
                             const IpmOptions& options = {});

}  // namespace qsc

#endif  // QSC_LP_INTERIOR_POINT_H_
