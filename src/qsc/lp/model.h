// Linear program model (paper Eq. 2):
//
//     maximize c^T x   subject to   A x <= b,  x >= 0
//
// with a sparse A given as (row, col, value) entries.

#ifndef QSC_LP_MODEL_H_
#define QSC_LP_MODEL_H_

#include <cstdint>
#include <vector>

#include "qsc/util/status.h"

namespace qsc {

struct LpEntry {
  int32_t row;
  int32_t col;
  double value;
};

struct LpProblem {
  int32_t num_rows = 0;
  int32_t num_cols = 0;
  std::vector<LpEntry> entries;  // sparse A
  std::vector<double> b;         // size num_rows
  std::vector<double> c;         // size num_cols

  int64_t NumNonzeros() const {
    return static_cast<int64_t>(entries.size());
  }
};

// Checks index ranges, vector sizes and finiteness of all coefficients.
Status ValidateLp(const LpProblem& lp);

// Sorts entries by (row, col) and sums duplicates; drops exact zeros.
void CanonicalizeLp(LpProblem& lp);

// Column-major view used by the solvers.
struct LpColumns {
  std::vector<int64_t> offsets;  // size num_cols + 1
  std::vector<int32_t> rows;
  std::vector<double> values;
};
LpColumns BuildColumns(const LpProblem& lp);

// Objective value c^T x.
double Objective(const LpProblem& lp, const std::vector<double>& x);

// Largest violation of Ax <= b, x >= 0 (0 when feasible).
double MaxConstraintViolation(const LpProblem& lp,
                              const std::vector<double>& x);

}  // namespace qsc

#endif  // QSC_LP_MODEL_H_
