#include "qsc/lp/interior_point.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "qsc/util/timer.h"

namespace qsc {
namespace {

// Dense symmetric positive-definite solve via Cholesky, in place.
// Returns false if the factorization breaks down.
bool CholeskySolve(std::vector<double>& h, int32_t m,
                   std::vector<double>& rhs) {
  auto at = [&h, m](int32_t i, int32_t j) -> double& {
    return h[static_cast<size_t>(i) * m + j];
  };
  for (int32_t k = 0; k < m; ++k) {
    double d = at(k, k);
    for (int32_t p = 0; p < k; ++p) d -= at(k, p) * at(k, p);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double l = std::sqrt(d);
    at(k, k) = l;
    for (int32_t i = k + 1; i < m; ++i) {
      double v = at(i, k);
      for (int32_t p = 0; p < k; ++p) v -= at(i, p) * at(k, p);
      at(i, k) = v / l;
    }
  }
  // Forward substitution L z = rhs.
  for (int32_t i = 0; i < m; ++i) {
    double v = rhs[i];
    for (int32_t p = 0; p < i; ++p) v -= at(i, p) * rhs[p];
    rhs[i] = v / at(i, i);
  }
  // Back substitution L^T x = z.
  for (int32_t i = m - 1; i >= 0; --i) {
    double v = rhs[i];
    for (int32_t p = i + 1; p < m; ++p) v -= at(p, i) * rhs[p];
    rhs[i] = v / at(i, i);
  }
  return true;
}

}  // namespace

IpmResult SolveInteriorPoint(const LpProblem& lp, const IpmOptions& options) {
  QSC_CHECK_OK(ValidateLp(lp));
  const int32_t m = lp.num_rows;
  const int32_t n = lp.num_cols;
  const int32_t big_n = n + m;  // x variables + slacks w
  IpmResult result;
  WallTimer timer;

  if (m == 0 || n == 0) {
    result.x.assign(n, 0.0);
    result.status = LpStatus::kOptimal;
    return result;
  }

  const LpColumns cols = BuildColumns(lp);

  // Standard-form cost q = (-c, 0).
  std::vector<double> q(big_n, 0.0);
  for (int32_t j = 0; j < n; ++j) q[j] = -lp.c[j];

  // M z: A x + w.
  auto apply_m = [&](const std::vector<double>& z, std::vector<double>& out) {
    std::fill(out.begin(), out.end(), 0.0);
    for (int32_t j = 0; j < n; ++j) {
      const double zj = z[j];
      if (zj == 0.0) continue;
      for (int64_t p = cols.offsets[j]; p < cols.offsets[j + 1]; ++p) {
        out[cols.rows[p]] += cols.values[p] * zj;
      }
    }
    for (int32_t i = 0; i < m; ++i) out[i] += z[n + i];
  };
  // M^T y: (A^T y, y).
  auto apply_mt = [&](const std::vector<double>& y, std::vector<double>& out) {
    for (int32_t j = 0; j < n; ++j) {
      double v = 0.0;
      for (int64_t p = cols.offsets[j]; p < cols.offsets[j + 1]; ++p) {
        v += cols.values[p] * y[cols.rows[p]];
      }
      out[j] = v;
    }
    for (int32_t i = 0; i < m; ++i) out[n + i] = y[i];
  };

  double scale = 1.0;
  for (double v : lp.b) scale = std::max(scale, std::abs(v));
  for (double v : q) scale = std::max(scale, std::abs(v));
  const double init = std::sqrt(scale);

  std::vector<double> z(big_n, init), s(big_n, init), y(m, 0.0);
  std::vector<double> rp(m), rd(big_n), mt_y(big_n), v(big_n), d(big_n);
  std::vector<double> h(static_cast<size_t>(m) * m);
  std::vector<double> dy(m), dz(big_n), ds(big_n), mv(m);

  double bmax = 0.0;
  for (double bi : lp.b) bmax = std::max(bmax, std::abs(bi));
  const double bnorm = 1.0 + bmax;

  for (int32_t iter = 0; iter < options.max_iterations; ++iter) {
    // Residuals.
    apply_m(z, rp);
    for (int32_t i = 0; i < m; ++i) rp[i] = lp.b[i] - rp[i];
    apply_mt(y, mt_y);
    for (int32_t j = 0; j < big_n; ++j) rd[j] = q[j] - mt_y[j] - s[j];
    double mu = 0.0;
    for (int32_t j = 0; j < big_n; ++j) mu += z[j] * s[j];
    mu /= big_n;

    // Telemetry.
    double primal_obj = 0.0;
    for (int32_t j = 0; j < n; ++j) primal_obj += lp.c[j] * z[j];
    double dual_obj = 0.0;
    for (int32_t i = 0; i < m; ++i) dual_obj += lp.b[i] * y[i];
    // For the max problem the dual objective is -b^T y of the min form;
    // with q = -c, the min-form dual is max -b^T y, so the max-form dual
    // bound is b^T (-y)... both signs occur during the run; report the
    // certified bound |b^T y|.
    dual_obj = std::abs(dual_obj);
    double pinf = 0.0;
    for (int32_t i = 0; i < m; ++i) pinf = std::max(pinf, std::abs(rp[i]));
    double rel_gap = std::numeric_limits<double>::infinity();
    if (primal_obj > 0.0 && dual_obj > 0.0) {
      rel_gap = std::max(primal_obj / dual_obj, dual_obj / primal_obj);
    }
    result.history.push_back({iter, primal_obj, dual_obj, rel_gap,
                              pinf, timer.ElapsedSeconds()});

    double dinf = 0.0;
    for (int32_t j = 0; j < big_n; ++j) dinf = std::max(dinf, std::abs(rd[j]));
    const bool primal_ok = pinf <= options.tolerance * bnorm;
    if (primal_ok && dinf <= options.tolerance * scale &&
        mu <= options.tolerance * scale) {
      result.status = LpStatus::kOptimal;
      break;
    }
    if (options.early_stop_rel_gap > 1.0 &&
        pinf <= 1e-6 * bnorm && rel_gap <= options.early_stop_rel_gap) {
      result.status = LpStatus::kOptimal;
      result.early_stopped = true;
      break;
    }

    // Newton direction with centering sigma*mu.
    const double target = options.sigma * mu;
    for (int32_t j = 0; j < big_n; ++j) {
      d[j] = z[j] / s[j];
      v[j] = target / s[j] - z[j];
    }
    // H = A D_x A^T + D_w (+ tiny regularization).
    std::fill(h.begin(), h.end(), 0.0);
    for (int32_t j = 0; j < n; ++j) {
      const double dj = d[j];
      for (int64_t p = cols.offsets[j]; p < cols.offsets[j + 1]; ++p) {
        const int32_t r1 = cols.rows[p];
        const double a1 = cols.values[p] * dj;
        for (int64_t p2 = cols.offsets[j]; p2 < cols.offsets[j + 1]; ++p2) {
          h[static_cast<size_t>(r1) * m + cols.rows[p2]] +=
              a1 * cols.values[p2];
        }
      }
    }
    double trace = 0.0;
    for (int32_t i = 0; i < m; ++i) {
      h[static_cast<size_t>(i) * m + i] += d[n + i];
      trace += h[static_cast<size_t>(i) * m + i];
    }
    const double reg = 1e-12 * std::max(trace / m, 1.0);
    for (int32_t i = 0; i < m; ++i) {
      h[static_cast<size_t>(i) * m + i] += reg;
    }

    // rhs = rp - M v + M D rd.
    std::vector<double> tmp(big_n);
    for (int32_t j = 0; j < big_n; ++j) tmp[j] = d[j] * rd[j] - v[j];
    apply_m(tmp, mv);
    for (int32_t i = 0; i < m; ++i) dy[i] = rp[i] + mv[i];
    if (!CholeskySolve(h, m, dy)) {
      result.status = LpStatus::kIterationLimit;
      break;
    }

    apply_mt(dy, ds);
    for (int32_t j = 0; j < big_n; ++j) ds[j] = rd[j] - ds[j];
    for (int32_t j = 0; j < big_n; ++j) dz[j] = v[j] - d[j] * ds[j];

    // Fraction-to-boundary steps.
    double alpha_p = 1.0, alpha_d = 1.0;
    for (int32_t j = 0; j < big_n; ++j) {
      if (dz[j] < 0.0) alpha_p = std::min(alpha_p, -z[j] / dz[j]);
      if (ds[j] < 0.0) alpha_d = std::min(alpha_d, -s[j] / ds[j]);
    }
    alpha_p = std::min(1.0, 0.995 * alpha_p);
    alpha_d = std::min(1.0, 0.995 * alpha_d);
    for (int32_t j = 0; j < big_n; ++j) z[j] += alpha_p * dz[j];
    for (int32_t i = 0; i < m; ++i) y[i] += alpha_d * dy[i];
    for (int32_t j = 0; j < big_n; ++j) s[j] += alpha_d * ds[j];
    ++result.iterations;
  }

  result.x.assign(z.begin(), z.begin() + n);
  for (double& xi : result.x) xi = std::max(xi, 0.0);
  result.objective = Objective(lp, result.x);
  return result;
}

}  // namespace qsc
