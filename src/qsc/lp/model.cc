#include "qsc/lp/model.h"

#include <algorithm>
#include <cmath>

namespace qsc {

Status ValidateLp(const LpProblem& lp) {
  if (lp.num_rows < 0 || lp.num_cols < 0) {
    return Status::InvalidArgument("negative LP dimensions");
  }
  if (static_cast<int32_t>(lp.b.size()) != lp.num_rows) {
    return Status::InvalidArgument("b size mismatch");
  }
  if (static_cast<int32_t>(lp.c.size()) != lp.num_cols) {
    return Status::InvalidArgument("c size mismatch");
  }
  for (const LpEntry& e : lp.entries) {
    if (e.row < 0 || e.row >= lp.num_rows || e.col < 0 ||
        e.col >= lp.num_cols) {
      return Status::InvalidArgument("entry index out of range");
    }
    if (!std::isfinite(e.value)) {
      return Status::InvalidArgument("non-finite entry value");
    }
  }
  for (double v : lp.b) {
    if (!std::isfinite(v)) return Status::InvalidArgument("non-finite b");
  }
  for (double v : lp.c) {
    if (!std::isfinite(v)) return Status::InvalidArgument("non-finite c");
  }
  return Status::Ok();
}

void CanonicalizeLp(LpProblem& lp) {
  std::sort(lp.entries.begin(), lp.entries.end(),
            [](const LpEntry& a, const LpEntry& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  std::vector<LpEntry> out;
  out.reserve(lp.entries.size());
  for (const LpEntry& e : lp.entries) {
    if (!out.empty() && out.back().row == e.row && out.back().col == e.col) {
      out.back().value += e.value;
    } else {
      out.push_back(e);
    }
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const LpEntry& e) { return e.value == 0.0; }),
            out.end());
  lp.entries = std::move(out);
}

LpColumns BuildColumns(const LpProblem& lp) {
  LpColumns cols;
  cols.offsets.assign(lp.num_cols + 1, 0);
  for (const LpEntry& e : lp.entries) ++cols.offsets[e.col + 1];
  for (int32_t j = 0; j < lp.num_cols; ++j) {
    cols.offsets[j + 1] += cols.offsets[j];
  }
  cols.rows.resize(lp.entries.size());
  cols.values.resize(lp.entries.size());
  std::vector<int64_t> pos(cols.offsets.begin(), cols.offsets.end() - 1);
  for (const LpEntry& e : lp.entries) {
    cols.rows[pos[e.col]] = e.row;
    cols.values[pos[e.col]] = e.value;
    ++pos[e.col];
  }
  return cols;
}

double Objective(const LpProblem& lp, const std::vector<double>& x) {
  QSC_CHECK_EQ(static_cast<int32_t>(x.size()), lp.num_cols);
  double obj = 0.0;
  for (int32_t j = 0; j < lp.num_cols; ++j) obj += lp.c[j] * x[j];
  return obj;
}

double MaxConstraintViolation(const LpProblem& lp,
                              const std::vector<double>& x) {
  QSC_CHECK_EQ(static_cast<int32_t>(x.size()), lp.num_cols);
  std::vector<double> row_activity(lp.num_rows, 0.0);
  for (const LpEntry& e : lp.entries) {
    row_activity[e.row] += e.value * x[e.col];
  }
  double violation = 0.0;
  for (int32_t i = 0; i < lp.num_rows; ++i) {
    violation = std::max(violation, row_activity[i] - lp.b[i]);
  }
  for (double v : x) violation = std::max(violation, -v);
  return violation;
}

}  // namespace qsc
