#include "qsc/lp/generators.h"

#include <vector>

#include "qsc/util/random.h"

namespace qsc {

LpProblem MakeBlockLp(const BlockLpSpec& spec) {
  QSC_CHECK_GE(spec.num_row_groups, 1);
  QSC_CHECK_GE(spec.num_col_groups, 1);
  QSC_CHECK_GE(spec.rows_per_group, 1);
  QSC_CHECK_GE(spec.cols_per_group, 1);
  Rng rng(spec.seed);
  LpProblem lp;
  lp.num_rows = spec.num_row_groups * spec.rows_per_group;
  lp.num_cols = spec.num_col_groups * spec.cols_per_group;

  // Pick active blocks; make sure every column group is covered so the LP
  // stays bounded, and every row group is covered so no row is vacuous.
  std::vector<std::vector<bool>> active(
      spec.num_row_groups, std::vector<bool>(spec.num_col_groups, false));
  for (int32_t g = 0; g < spec.num_row_groups; ++g) {
    for (int32_t h = 0; h < spec.num_col_groups; ++h) {
      active[g][h] = rng.Bernoulli(spec.density);
    }
  }
  for (int32_t h = 0; h < spec.num_col_groups; ++h) {
    bool covered = false;
    for (int32_t g = 0; g < spec.num_row_groups; ++g) covered |= active[g][h];
    if (!covered) {
      active[rng.NextBounded(spec.num_row_groups)][h] = true;
    }
  }
  for (int32_t g = 0; g < spec.num_row_groups; ++g) {
    bool covered = false;
    for (int32_t h = 0; h < spec.num_col_groups; ++h) covered |= active[g][h];
    if (!covered) {
      active[g][rng.NextBounded(spec.num_col_groups)] = true;
    }
  }

  std::vector<double> row_weight(lp.num_rows, 0.0);
  for (int32_t g = 0; g < spec.num_row_groups; ++g) {
    for (int32_t h = 0; h < spec.num_col_groups; ++h) {
      if (!active[g][h]) continue;
      const double base = rng.UniformDouble(1.0, 10.0);
      for (int32_t i = 0; i < spec.rows_per_group; ++i) {
        const int32_t row = g * spec.rows_per_group + i;
        for (int32_t j = 0; j < spec.cols_per_group; ++j) {
          const int32_t col = h * spec.cols_per_group + j;
          const double value =
              base * (1.0 + spec.noise * rng.UniformDouble(-1.0, 1.0));
          lp.entries.push_back({row, col, value});
          row_weight[row] += value;
        }
      }
    }
  }

  // b sized to the row weight so the optimum has O(1)-scale variables;
  // c per column group with the same noise model.
  lp.b.resize(lp.num_rows);
  for (int32_t i = 0; i < lp.num_rows; ++i) {
    lp.b[i] = row_weight[i] * rng.UniformDouble(0.8, 1.2) /
              static_cast<double>(spec.cols_per_group);
  }
  lp.c.resize(lp.num_cols);
  for (int32_t h = 0; h < spec.num_col_groups; ++h) {
    const double base = rng.UniformDouble(1.0, 10.0);
    for (int32_t j = 0; j < spec.cols_per_group; ++j) {
      lp.c[h * spec.cols_per_group + j] =
          base * (1.0 + spec.noise * rng.UniformDouble(-1.0, 1.0));
    }
  }
  CanonicalizeLp(lp);
  return lp;
}

LpProblem MakeQapLikeLp(int32_t scale, uint64_t seed) {
  // qap15: 6331 rows x 22275 cols. Shape: cols ~ 3.5x rows, block symmetry
  // from the facility/location structure.
  BlockLpSpec spec;
  spec.num_row_groups = scale;
  spec.rows_per_group = 2 * scale;
  spec.num_col_groups = scale;
  spec.cols_per_group = 7 * scale;
  spec.density = 0.35;
  spec.noise = 0.05;
  spec.seed = seed;
  return MakeBlockLp(spec);
}

LpProblem MakeNugentLikeLp(int32_t scale, uint64_t seed) {
  // nug08-3rd: 19728 x 20448 (near-square), denser.
  BlockLpSpec spec;
  spec.num_row_groups = scale;
  spec.rows_per_group = 3 * scale;
  spec.num_col_groups = scale;
  spec.cols_per_group = 3 * scale;
  spec.density = 0.5;
  spec.noise = 0.02;
  spec.seed = seed;
  return MakeBlockLp(spec);
}

LpProblem MakeWideSupportLp(int32_t scale, uint64_t seed) {
  // supportcase10: 10713 rows x 1.43M cols (wide), sparse.
  BlockLpSpec spec;
  spec.num_row_groups = scale;
  spec.rows_per_group = scale;
  spec.num_col_groups = 8 * scale;
  spec.cols_per_group = 4 * scale;
  spec.density = 0.15;
  spec.noise = 0.08;
  spec.seed = seed;
  return MakeBlockLp(spec);
}

LpProblem MakeTallLp(int32_t scale, uint64_t seed) {
  // ex10: 69609 rows x 17680 cols (tall).
  BlockLpSpec spec;
  spec.num_row_groups = 6 * scale;
  spec.rows_per_group = 2 * scale;
  spec.num_col_groups = scale;
  spec.cols_per_group = scale;
  spec.density = 0.3;
  spec.noise = 0.05;
  spec.seed = seed;
  return MakeBlockLp(spec);
}

LpProblem Figure3Lp() {
  LpProblem lp;
  lp.num_rows = 5;
  lp.num_cols = 3;
  const double a[5][3] = {{4, 8, 2},
                          {6, 5, 1},
                          {7, 4, 2},
                          {3, 1, 22},
                          {2, 3, 21}};
  for (int32_t i = 0; i < 5; ++i) {
    for (int32_t j = 0; j < 3; ++j) {
      lp.entries.push_back({i, j, a[i][j]});
    }
  }
  lp.b = {20, 20, 21, 50, 51};
  lp.c = {9, 10, 50};
  return lp;
}

}  // namespace qsc
