// LP serialization for exchanging instances like the paper's Table 3 LPs,
// in a minimal text format:
//   lp <num_rows> <num_cols> <num_entries>
//   c  <num_cols values>
//   b  <num_rows values>
//   <row> <col> <value>   (one line per entry)

#ifndef QSC_LP_IO_H_
#define QSC_LP_IO_H_

#include <string>

#include "qsc/lp/model.h"
#include "qsc/util/status.h"

namespace qsc {

Status WriteLpText(const LpProblem& lp, const std::string& path);
StatusOr<LpProblem> ReadLpText(const std::string& path);

}  // namespace qsc

#endif  // QSC_LP_IO_H_
