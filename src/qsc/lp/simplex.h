// Dense two-phase primal simplex for `maximize c^T x, Ax <= b, x >= 0`.
//
// Textbook tableau implementation with Dantzig pricing and a Bland's-rule
// fallback after a run of degenerate pivots (guaranteeing termination).
// Intended for the small reduced LPs the coloring produces (paper Sec 4.1)
// and as the reference solver in tests; the interior-point solver handles
// the larger exact baselines of the Table 3 experiments.

#ifndef QSC_LP_SIMPLEX_H_
#define QSC_LP_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "qsc/lp/model.h"

namespace qsc {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

const char* LpStatusName(LpStatus status);

struct LpResult {
  LpStatus status = LpStatus::kIterationLimit;
  double objective = 0.0;
  std::vector<double> x;  // primal solution (size num_cols) when optimal
  int64_t iterations = 0;
};

struct SimplexOptions {
  int64_t max_iterations = 200000;
  double tolerance = 1e-9;
  // Switch from Dantzig to Bland pricing after this many consecutive
  // degenerate pivots (anti-cycling).
  int64_t degenerate_switch = 200;
};

LpResult SolveSimplex(const LpProblem& lp, const SimplexOptions& options = {});

}  // namespace qsc

#endif  // QSC_LP_SIMPLEX_H_
