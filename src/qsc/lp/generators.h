// Synthetic LP generators standing in for the paper's Table-3 instances
// (qap15, nug08-3rd, supportcase10, ex10); see DESIGN.md §3. All
// generators produce well-behaved LPs: b > 0 (x = 0 feasible) and every
// column carries positive weight in some row (bounded).

#ifndef QSC_LP_GENERATORS_H_
#define QSC_LP_GENERATORS_H_

#include <cstdint>

#include "qsc/lp/model.h"

namespace qsc {

// Block-structured LP: rows are grouped into `num_row_groups` groups of
// `rows_per_group` (columns analogously); each (row group, col group) block
// is active with probability `density`, and active blocks are dense with
// entries base * (1 + noise * U(-1,1)). The block structure is what
// quasi-stable coloring exploits; `noise` controls how far from exactly
// compressible the instance is.
struct BlockLpSpec {
  int32_t num_row_groups = 10;
  int32_t num_col_groups = 10;
  int32_t rows_per_group = 10;
  int32_t cols_per_group = 10;
  double density = 0.4;
  double noise = 0.05;
  uint64_t seed = 1;
};
LpProblem MakeBlockLp(const BlockLpSpec& spec);

// qap15 stand-in: assignment-polytope-like shape, columns outnumber rows
// ~3.5x, strong block symmetry. `scale` = number of facilities (paper
// instance: 15); rows/cols grow quadratically/cubically with it.
LpProblem MakeQapLikeLp(int32_t scale, uint64_t seed);

// nug08-3rd stand-in: near-square, denser blocks, low noise.
LpProblem MakeNugentLikeLp(int32_t scale, uint64_t seed);

// supportcase10 stand-in: wide (cols >> rows), sparse blocks.
LpProblem MakeWideSupportLp(int32_t scale, uint64_t seed);

// ex10 stand-in: tall (rows >> cols).
LpProblem MakeTallLp(int32_t scale, uint64_t seed);

// The exact 5x3 example LP of the paper's Figure 3 (optimal 128.157...).
LpProblem Figure3Lp();

}  // namespace qsc

#endif  // QSC_LP_GENERATORS_H_
