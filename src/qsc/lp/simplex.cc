#include "qsc/lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace qsc {
namespace {

// Dense tableau simplex, minimization form. Columns: the problem variables
// (original + slack [+ artificial]); rows: constraints with b >= 0 after
// sign normalization. basis_[i] is the variable occupying row i.
class Tableau {
 public:
  Tableau(int32_t num_rows, int32_t num_vars)
      : m_(num_rows),
        n_(num_vars),
        a_(static_cast<size_t>(num_rows) * num_vars, 0.0),
        rhs_(num_rows, 0.0),
        cost_(num_vars, 0.0),
        reduced_(num_vars, 0.0),
        basis_(num_rows, -1) {}

  double& At(int32_t i, int32_t j) {
    return a_[static_cast<size_t>(i) * n_ + j];
  }
  double At(int32_t i, int32_t j) const {
    return a_[static_cast<size_t>(i) * n_ + j];
  }

  int32_t num_rows() const { return m_; }
  int32_t num_vars() const { return n_; }
  std::vector<double>& rhs() { return rhs_; }
  std::vector<double>& cost() { return cost_; }
  std::vector<int32_t>& basis() { return basis_; }
  const std::vector<int32_t>& basis() const { return basis_; }

  // Recomputes the reduced-cost row from the current basis:
  //   reduced_j = cost_j - cost_B^T B^{-1} A_j,
  // which for the maintained (already pivoted) tableau is simply cost_j
  // minus the basic costs times the tableau column.
  void PriceFromScratch() {
    std::vector<double> basic_cost(m_);
    for (int32_t i = 0; i < m_; ++i) basic_cost[i] = cost_[basis_[i]];
    for (int32_t j = 0; j < n_; ++j) {
      double r = cost_[j];
      for (int32_t i = 0; i < m_; ++i) {
        const double aij = At(i, j);
        if (aij != 0.0) r -= basic_cost[i] * aij;
      }
      reduced_[j] = r;
    }
    objective_ = 0.0;
    for (int32_t i = 0; i < m_; ++i) objective_ += cost_[basis_[i]] * rhs_[i];
  }

  double reduced(int32_t j) const { return reduced_[j]; }
  double objective() const { return objective_; }

  // Gauss-Jordan pivot on (row, col); updates the reduced-cost row too.
  void Pivot(int32_t row, int32_t col) {
    const double pivot = At(row, col);
    QSC_CHECK(std::abs(pivot) > 1e-13);
    const double inv = 1.0 / pivot;
    for (int32_t j = 0; j < n_; ++j) At(row, j) *= inv;
    rhs_[row] *= inv;
    At(row, col) = 1.0;  // exact
    for (int32_t i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double factor = At(i, col);
      if (factor == 0.0) continue;
      for (int32_t j = 0; j < n_; ++j) At(i, j) -= factor * At(row, j);
      At(i, col) = 0.0;  // exact
      rhs_[i] -= factor * rhs_[row];
    }
    const double rfactor = reduced_[col];
    if (rfactor != 0.0) {
      for (int32_t j = 0; j < n_; ++j) reduced_[j] -= rfactor * At(row, j);
      reduced_[col] = 0.0;
      objective_ += rfactor * rhs_[row];
    }
    basis_[row] = col;
  }

 private:
  int32_t m_;
  int32_t n_;
  std::vector<double> a_;
  std::vector<double> rhs_;
  std::vector<double> cost_;
  std::vector<double> reduced_;
  std::vector<int32_t> basis_;
  double objective_ = 0.0;
};

// Runs the simplex loop on `t` (minimization). `allowed` limits the
// entering candidates (used to exclude artificials in phase 2).
LpStatus Iterate(Tableau& t, const SimplexOptions& options, int32_t num_legal,
                 int64_t* iterations) {
  const double tol = options.tolerance;
  int64_t degenerate_run = 0;
  while (true) {
    if (*iterations >= options.max_iterations) {
      return LpStatus::kIterationLimit;
    }
    const bool bland = degenerate_run >= options.degenerate_switch;
    // Entering variable: most negative reduced cost (Dantzig) or first
    // negative (Bland).
    int32_t enter = -1;
    double best = -tol;
    for (int32_t j = 0; j < num_legal; ++j) {
      const double r = t.reduced(j);
      if (r < best) {
        enter = j;
        if (bland) break;
        best = r;
      }
    }
    if (enter == -1) return LpStatus::kOptimal;

    // Leaving row: minimum ratio rhs_i / a_ij over a_ij > tol; Bland
    // tie-break on the basic variable index.
    int32_t leave = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int32_t i = 0; i < t.num_rows(); ++i) {
      const double aij = t.At(i, enter);
      if (aij <= tol) continue;
      const double ratio = t.rhs()[i] / aij;
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && leave != -1 &&
           t.basis()[i] < t.basis()[leave])) {
        best_ratio = ratio;
        leave = i;
      }
    }
    if (leave == -1) return LpStatus::kUnbounded;

    degenerate_run = best_ratio <= tol ? degenerate_run + 1 : 0;
    t.Pivot(leave, enter);
    ++(*iterations);
  }
}

}  // namespace

const char* LpStatusName(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "OPTIMAL";
    case LpStatus::kInfeasible:
      return "INFEASIBLE";
    case LpStatus::kUnbounded:
      return "UNBOUNDED";
    case LpStatus::kIterationLimit:
      return "ITERATION_LIMIT";
  }
  return "UNKNOWN";
}

LpResult SolveSimplex(const LpProblem& lp, const SimplexOptions& options) {
  QSC_CHECK_OK(ValidateLp(lp));
  const int32_t m = lp.num_rows;
  const int32_t n = lp.num_cols;
  LpResult result;

  if (m == 0) {
    // No constraints: optimum is 0 at x = 0 unless some c_j > 0.
    result.x.assign(n, 0.0);
    for (int32_t j = 0; j < n; ++j) {
      if (lp.c[j] > options.tolerance) {
        result.status = LpStatus::kUnbounded;
        return result;
      }
    }
    result.status = LpStatus::kOptimal;
    result.objective = 0.0;
    return result;
  }

  // Sign-normalize rows so b >= 0. Row i keeps a slack with coefficient
  // sign_i; rows whose slack became -1 need an artificial variable.
  std::vector<double> sign(m, 1.0);
  int32_t num_artificial = 0;
  for (int32_t i = 0; i < m; ++i) {
    if (lp.b[i] < 0.0) {
      sign[i] = -1.0;
      ++num_artificial;
    }
  }
  const int32_t num_vars = n + m + num_artificial;
  Tableau t(m, num_vars);
  for (const LpEntry& e : lp.entries) {
    t.At(e.row, e.col) += sign[e.row] * e.value;
  }
  {
    int32_t art = 0;
    for (int32_t i = 0; i < m; ++i) {
      t.rhs()[i] = sign[i] * lp.b[i];
      t.At(i, n + i) = sign[i];  // slack
      if (sign[i] < 0.0) {
        t.At(i, n + m + art) = 1.0;  // artificial
        t.basis()[i] = n + m + art;
        ++art;
      } else {
        t.basis()[i] = n + i;
      }
    }
  }

  // Phase 1: minimize the sum of artificials.
  if (num_artificial > 0) {
    for (int32_t j = n + m; j < num_vars; ++j) t.cost()[j] = 1.0;
    t.PriceFromScratch();
    const LpStatus phase1 =
        Iterate(t, options, num_vars, &result.iterations);
    if (phase1 == LpStatus::kIterationLimit) {
      result.status = phase1;
      return result;
    }
    QSC_CHECK(phase1 != LpStatus::kUnbounded);  // Phase 1 is bounded below.
    if (t.objective() > 1e-7) {
      result.status = LpStatus::kInfeasible;
      return result;
    }
    // Drive any lingering (degenerate) artificials out of the basis.
    for (int32_t i = 0; i < m; ++i) {
      if (t.basis()[i] < n + m) continue;
      int32_t pivot_col = -1;
      for (int32_t j = 0; j < n + m; ++j) {
        if (std::abs(t.At(i, j)) > 1e-9) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col != -1) {
        t.Pivot(i, pivot_col);
        ++result.iterations;
      }
      // A fully-zero row is redundant; its artificial stays basic at zero
      // and never re-enters because phase 2 excludes artificial columns.
    }
  }

  // Phase 2: minimize -c^T x over the original + slack variables.
  for (int32_t j = 0; j < num_vars; ++j) t.cost()[j] = 0.0;
  for (int32_t j = 0; j < n; ++j) t.cost()[j] = -lp.c[j];
  t.PriceFromScratch();
  const LpStatus phase2 = Iterate(t, options, n + m, &result.iterations);
  result.status = phase2;
  if (phase2 != LpStatus::kOptimal) return result;

  result.x.assign(n, 0.0);
  for (int32_t i = 0; i < m; ++i) {
    if (t.basis()[i] < n) result.x[t.basis()[i]] = t.rhs()[i];
  }
  result.objective = -t.objective();
  return result;
}

}  // namespace qsc
