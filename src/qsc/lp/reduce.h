// LP dimensionality reduction via quasi-stable coloring (paper Sec 4.1).
//
// The LP is encoded as the weighted bipartite graph of its extended matrix
//   A_ext = [ A  b ]
//           [ c^T . ]
// whose rows and columns are colored by Rothko with two constraints: row
// and column nodes never share a color, and the objective row / rhs column
// are pinned to singleton colors. The reduced LP follows Eq. (6)
// (sqrt-normalized) or the Grohe et al. [16] variant; Theorem 2 bounds
// |OPT - OPT_reduced| by q * Delta.

#ifndef QSC_LP_REDUCE_H_
#define QSC_LP_REDUCE_H_

#include <memory>
#include <string>
#include <vector>

#include "qsc/coloring/backend.h"
#include "qsc/coloring/params.h"
#include "qsc/coloring/partition.h"
#include "qsc/coloring/rothko.h"
#include "qsc/lp/model.h"

namespace qsc {

enum class LpReduction {
  kSqrtNormalized,  // Eq. (6): A^(r,s) = A(P_r,Q_s)/sqrt(|P_r||Q_s|)
  kGrohe,           // [16]:    A^(r,s) = A(P_r,Q_s)/|Q_s|, b^ = b(P_r)
};

// The shared coloring knobs (alpha, beta, q_tolerance, split_mean, pool)
// come from ColoringParams; the constructor flips alpha to the paper's LP
// default (alpha=1, beta=0). The pool never changes the reduction.
struct LpReduceOptions : ColoringParams {
  LpReduceOptions() { alpha = 1.0; }

  // Total number of colors for the bipartite matrix graph, including the
  // two pinned singletons (objective row, rhs column). Must be >= 4.
  ColorId max_colors = 40;
  LpReduction variant = LpReduction::kSqrtNormalized;

  // Coloring backend for the matrix graph (coloring/backend.h); "" means
  // kDefaultColoringBackend. Must canonicalize to a registered backend —
  // qsc::Compressor::SolveLp validates; direct construction aborts on
  // malformed or unknown names.
  std::string backend;
};

struct ReducedLp {
  LpProblem lp;  // the reduced LP
  // Color of each original row / column, as indices into the reduced LP
  // (0..reduced.num_rows-1 / 0..reduced.num_cols-1).
  std::vector<int32_t> row_color;
  std::vector<int32_t> col_color;
  std::vector<int64_t> row_color_size;
  std::vector<int64_t> col_color_size;
  LpReduction variant = LpReduction::kSqrtNormalized;
  double max_q = 0.0;  // q-error of the coloring on the matrix graph
  double coloring_seconds = 0.0;
};

ReducedLp ReduceLp(const LpProblem& lp, const LpReduceOptions& options);

// Anytime variant (paper Sec 5.2: Rothko as a co-routine). Holds the
// matrix-graph coloring across calls so successive budgets refine the same
// partition instead of recoloring from scratch:
//
//   LpColoringRefiner refiner(lp, options);
//   for (ColorId k : {10, 20, 50}) {
//     ReducedLp reduced = refiner.ReduceTo(k);
//     ... solve, check the approximation, stop when good enough ...
//   }
class LpColoringRefiner {
 public:
  LpColoringRefiner(const LpProblem& lp, const LpReduceOptions& options);
  ~LpColoringRefiner();

  LpColoringRefiner(const LpColoringRefiner&) = delete;
  LpColoringRefiner& operator=(const LpColoringRefiner&) = delete;

  // Refines until the matrix graph has `max_colors` colors (or the
  // coloring converges) and extracts the reduced LP. Budgets must be
  // non-decreasing across calls.
  ReducedLp ReduceTo(ColorId max_colors);

  // Colors of the current matrix-graph partition (>= 4 once constructed).
  // A budget at or above this is a valid ReduceTo argument.
  ColorId num_colors() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

// Lifts a reduced solution x^ back to the original variable space
// (x_j = x^_s / sqrt(|Q_s|) for Eq. (6), x_j = x^_s / |Q_s| for Grohe).
// The lifted point reproduces the reduced objective value but is not
// necessarily feasible for the original LP (Theorem 2 bounds the value,
// not the point).
std::vector<double> LiftSolution(const ReducedLp& reduced,
                                 const std::vector<double>& reduced_x);

}  // namespace qsc

#endif  // QSC_LP_REDUCE_H_
