#include "qsc/lp/io.h"

#include <cinttypes>
#include <cstdio>
#include <memory>

namespace qsc {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status WriteLpText(const LpProblem& lp, const std::string& path) {
  QSC_RETURN_IF_ERROR(ValidateLp(lp));
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  std::fprintf(f.get(), "lp %d %d %" PRId64 "\n", lp.num_rows, lp.num_cols,
               lp.NumNonzeros());
  std::fprintf(f.get(), "c");
  for (double v : lp.c) std::fprintf(f.get(), " %.17g", v);
  std::fprintf(f.get(), "\nb");
  for (double v : lp.b) std::fprintf(f.get(), " %.17g", v);
  std::fprintf(f.get(), "\n");
  for (const LpEntry& e : lp.entries) {
    std::fprintf(f.get(), "%d %d %.17g\n", e.row, e.col, e.value);
  }
  return Status::Ok();
}

StatusOr<LpProblem> ReadLpText(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  LpProblem lp;
  int64_t num_entries = 0;
  if (std::fscanf(f.get(), "lp %d %d %" SCNd64, &lp.num_rows, &lp.num_cols,
                  &num_entries) != 3) {
    return Status::InvalidArgument("bad LP header in " + path);
  }
  char tag[4];
  if (std::fscanf(f.get(), " %1s", tag) != 1 || tag[0] != 'c') {
    return Status::InvalidArgument("expected c line in " + path);
  }
  lp.c.resize(lp.num_cols);
  for (double& v : lp.c) {
    if (std::fscanf(f.get(), "%lf", &v) != 1) {
      return Status::InvalidArgument("truncated c line in " + path);
    }
  }
  if (std::fscanf(f.get(), " %1s", tag) != 1 || tag[0] != 'b') {
    return Status::InvalidArgument("expected b line in " + path);
  }
  lp.b.resize(lp.num_rows);
  for (double& v : lp.b) {
    if (std::fscanf(f.get(), "%lf", &v) != 1) {
      return Status::InvalidArgument("truncated b line in " + path);
    }
  }
  lp.entries.reserve(num_entries);
  for (int64_t i = 0; i < num_entries; ++i) {
    LpEntry e;
    if (std::fscanf(f.get(), "%d %d %lf", &e.row, &e.col, &e.value) != 3) {
      return Status::InvalidArgument("truncated entries in " + path);
    }
    lp.entries.push_back(e);
  }
  QSC_RETURN_IF_ERROR(ValidateLp(lp));
  return lp;
}

}  // namespace qsc
