#include "qsc/lp/reduce.h"

#include <cmath>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qsc/graph/graph.h"
#include "qsc/util/timer.h"

namespace qsc {
namespace {

// Shared construction of the extended-matrix bipartite graph and the
// pinned initial partition (see header).
struct MatrixGraph {
  Graph graph;
  Partition initial;
  NodeId obj_row;
  NodeId col_base;
  NodeId rhs_col;
};

MatrixGraph BuildMatrixGraph(const LpProblem& lp) {
  const int32_t m = lp.num_rows;
  const int32_t n = lp.num_cols;
  MatrixGraph out;
  out.obj_row = m;
  out.col_base = m + 1;
  out.rhs_col = m + 1 + n;
  std::vector<EdgeTriple> arcs;
  arcs.reserve(lp.entries.size() + m + n);
  for (const LpEntry& e : lp.entries) {
    arcs.push_back({e.row, out.col_base + e.col, e.value});
  }
  for (int32_t i = 0; i < m; ++i) {
    if (lp.b[i] != 0.0) arcs.push_back({i, out.rhs_col, lp.b[i]});
  }
  for (int32_t j = 0; j < n; ++j) {
    if (lp.c[j] != 0.0) {
      arcs.push_back({out.obj_row, out.col_base + j, lp.c[j]});
    }
  }
  out.graph = Graph::FromEdges(out.rhs_col + 1, arcs, /*undirected=*/false);

  // Initial colors: {rows}, {objective row}, {columns}, {rhs column}.
  std::vector<int32_t> labels(out.rhs_col + 1);
  for (int32_t i = 0; i < m; ++i) labels[i] = 0;
  labels[out.obj_row] = 1;
  for (int32_t j = 0; j < n; ++j) labels[out.col_base + j] = 2;
  labels[out.rhs_col] = 3;
  out.initial = Partition::FromColorIds(labels);
  return out;
}

// Extracts the reduced LP of Eq. (6) (or the Grohe variant) from a
// coloring of the matrix graph.
ReducedLp ExtractReducedLp(const LpProblem& lp, const MatrixGraph& mg,
                           const Partition& p, LpReduction variant,
                           double max_q, double coloring_seconds) {
  const int32_t m = lp.num_rows;
  const int32_t n = lp.num_cols;
  ReducedLp out;
  out.variant = variant;
  out.max_q = max_q;
  out.coloring_seconds = coloring_seconds;

  // Densify color ids separately for rows and columns, excluding the
  // pinned objective/rhs singletons.
  const ColorId obj_color = p.ColorOf(mg.obj_row);
  const ColorId rhs_color = p.ColorOf(mg.rhs_col);
  std::unordered_map<ColorId, int32_t> row_id, col_id;
  out.row_color.resize(m);
  out.col_color.resize(n);
  for (int32_t i = 0; i < m; ++i) {
    const ColorId c = p.ColorOf(i);
    QSC_CHECK_NE(c, obj_color);
    QSC_CHECK_NE(c, rhs_color);
    auto [it, inserted] =
        row_id.try_emplace(c, static_cast<int32_t>(row_id.size()));
    out.row_color[i] = it->second;
  }
  for (int32_t j = 0; j < n; ++j) {
    const ColorId c = p.ColorOf(mg.col_base + j);
    QSC_CHECK_NE(c, obj_color);
    QSC_CHECK_NE(c, rhs_color);
    auto [it, inserted] =
        col_id.try_emplace(c, static_cast<int32_t>(col_id.size()));
    out.col_color[j] = it->second;
  }
  const int32_t k = static_cast<int32_t>(row_id.size());
  const int32_t l = static_cast<int32_t>(col_id.size());
  out.row_color_size.assign(k, 0);
  out.col_color_size.assign(l, 0);
  for (int32_t i = 0; i < m; ++i) ++out.row_color_size[out.row_color[i]];
  for (int32_t j = 0; j < n; ++j) ++out.col_color_size[out.col_color[j]];

  // Block sums A(P_r, Q_s), b(P_r), c(Q_s).
  std::unordered_map<int64_t, double> block;
  block.reserve(lp.entries.size() / 2 + 1);
  for (const LpEntry& e : lp.entries) {
    const int64_t key = static_cast<int64_t>(out.row_color[e.row]) * l +
                        out.col_color[e.col];
    block[key] += e.value;
  }
  std::vector<double> b_sum(k, 0.0), c_sum(l, 0.0);
  for (int32_t i = 0; i < m; ++i) b_sum[out.row_color[i]] += lp.b[i];
  for (int32_t j = 0; j < n; ++j) c_sum[out.col_color[j]] += lp.c[j];

  out.lp.num_rows = k;
  out.lp.num_cols = l;
  out.lp.entries.reserve(block.size());
  for (const auto& [key, sum] : block) {
    const int32_t r = static_cast<int32_t>(key / l);
    const int32_t s = static_cast<int32_t>(key % l);
    const double pr = static_cast<double>(out.row_color_size[r]);
    const double qs = static_cast<double>(out.col_color_size[s]);
    const double value = variant == LpReduction::kSqrtNormalized
                             ? sum / std::sqrt(pr * qs)
                             : sum / qs;
    if (value != 0.0) out.lp.entries.push_back({r, s, value});
  }
  out.lp.b.resize(k);
  out.lp.c.resize(l);
  for (int32_t r = 0; r < k; ++r) {
    const double pr = static_cast<double>(out.row_color_size[r]);
    out.lp.b[r] = variant == LpReduction::kSqrtNormalized
                      ? b_sum[r] / std::sqrt(pr)
                      : b_sum[r];
  }
  for (int32_t s = 0; s < l; ++s) {
    const double qs = static_cast<double>(out.col_color_size[s]);
    out.lp.c[s] = variant == LpReduction::kSqrtNormalized
                      ? c_sum[s] / std::sqrt(qs)
                      : c_sum[s] / qs;
  }
  CanonicalizeLp(out.lp);
  return out;
}

}  // namespace

class LpColoringRefiner::Impl {
 public:
  Impl(const LpProblem& lp, const LpReduceOptions& options)
      : lp_(&lp),
        options_(options),
        matrix_graph_(BuildMatrixGraph(lp)),
        // CanonicalBackendName aborts on malformed names and Create on
        // unregistered ones; Compressor::SolveLp validates at the API
        // boundary before constructing a refiner.
        refiner_(ColoringBackendRegistry::Global().Create(
            CanonicalBackendName(options.backend).value(),
            matrix_graph_.graph, matrix_graph_.initial,
            static_cast<const ColoringParams&>(options))) {}

  ReducedLp ReduceTo(ColorId max_colors) {
    QSC_CHECK_GE(max_colors, 4);
    WallTimer timer;
    while (refiner_->partition().num_colors() < max_colors) {
      if (!refiner_->Step(max_colors)) break;
    }
    coloring_seconds_ += timer.ElapsedSeconds();
    return ExtractReducedLp(*lp_, matrix_graph_, refiner_->partition(),
                            options_.variant, refiner_->CurrentMaxError(),
                            coloring_seconds_);
  }

  ColorId num_colors() const { return refiner_->partition().num_colors(); }

 private:
  const LpProblem* lp_;
  LpReduceOptions options_;
  MatrixGraph matrix_graph_;
  std::unique_ptr<ColoringBackend> refiner_;
  double coloring_seconds_ = 0.0;
};

LpColoringRefiner::LpColoringRefiner(const LpProblem& lp,
                                     const LpReduceOptions& options)
    : impl_(new Impl(lp, options)) {
  QSC_CHECK_OK(ValidateLp(lp));
}

LpColoringRefiner::~LpColoringRefiner() = default;

ReducedLp LpColoringRefiner::ReduceTo(ColorId max_colors) {
  return impl_->ReduceTo(max_colors);
}

ColorId LpColoringRefiner::num_colors() const { return impl_->num_colors(); }

ReducedLp ReduceLp(const LpProblem& lp, const LpReduceOptions& options) {
  QSC_CHECK_OK(ValidateLp(lp));
  QSC_CHECK_GE(options.max_colors, 4);
  LpColoringRefiner refiner(lp, options);
  return refiner.ReduceTo(options.max_colors);
}

std::vector<double> LiftSolution(const ReducedLp& reduced,
                                 const std::vector<double>& reduced_x) {
  QSC_CHECK_EQ(static_cast<int32_t>(reduced_x.size()), reduced.lp.num_cols);
  std::vector<double> x(reduced.col_color.size());
  for (size_t j = 0; j < x.size(); ++j) {
    const int32_t s = reduced.col_color[j];
    const double qs = static_cast<double>(reduced.col_color_size[s]);
    x[j] = reduced.variant == LpReduction::kSqrtNormalized
               ? reduced_x[s] / std::sqrt(qs)
               : reduced_x[s] / qs;
  }
  return x;
}

}  // namespace qsc
