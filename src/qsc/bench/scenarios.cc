// Builtin perf scenarios (see docs/BENCHMARKING.md for the registry
// contract). Four groups:
//
//  - "coloring": the refiner and its kernels on synthetic graphs at
//    10k-200k nodes. The headline scenario is rothko-ba-100k-c256 —
//    Rothko refinement of a 100k-node scale-free graph to 256 colors —
//    whose baseline records the flat sparse-row speedup.
//  - "pipelines": end-to-end instance -> coloring -> solve -> error runs
//    through qsc/eval, plus the solver kernels and the fig7 dataset
//    sweeps (single-shot paper reproductions at their canonical seeds).
//  - "serving": workload traces replayed against a Compressor session by
//    the qsc/workload load runner (scenarios_serving.cc).
//  - "flow": the max-flow solvers on the CSR ResidualNetwork, straight
//    on the ~100k-node segmentation network without the compression
//    pipeline around them (scenarios_flow.cc); their baseline records
//    the residual-network CSR speedup.
//
// Scenario counters are deterministic given the seed; instance
// construction happens outside the timed closure.

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qsc/api/compressor.h"
#include "qsc/bench/scenario.h"
#include "qsc/flow/approx_flow.h"
#include "qsc/centrality/brandes.h"
#include "qsc/coloring/partition.h"
#include "qsc/coloring/q_error.h"
#include "qsc/coloring/reduced_graph.h"
#include "qsc/coloring/rothko.h"
#include "qsc/coloring/stable.h"
#include "qsc/eval/pipelines.h"
#include "qsc/eval/suites.h"
#include "qsc/eval/workload.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/graph/generators.h"
#include "qsc/lp/generators.h"
#include "qsc/lp/simplex.h"
#include "qsc/parallel/thread_pool.h"
#include "qsc/util/check.h"
#include "qsc/util/random.h"
#include "qsc/util/stats.h"
#include "qsc/util/table.h"

namespace qsc {
namespace bench {
namespace {

std::string BudgetKey(ColorId budget, const char* metric) {
  return "b" + std::to_string(budget) + "_" + metric;
}

// --- coloring group ------------------------------------------------------

// Registers a Rothko refinement scenario over `factory`'s graph. The
// per-scenario `salt` decorrelates instances that share a CLI seed.
// `parallel` scenarios refine on the CLI-sized default pool; their
// counters must match the sequential twin bit for bit (the qsc/parallel
// determinism contract, enforced by the CI counter-identity gate).
void RegisterRothko(const char* name, bool smoke, const char* description,
                    Graph (*factory)(uint64_t seed), uint64_t salt,
                    ColorId max_colors,
                    RothkoOptions::SplitMean split_mean =
                        RothkoOptions::SplitMean::kArithmetic,
                    bool parallel = false) {
  Scenario::Info info;
  info.name = name;
  info.group = "coloring";
  info.description = description;
  info.smoke = smoke;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info), [factory, salt, max_colors, split_mean,
                        parallel](const BenchContext& ctx) {
        const Graph g = factory(ctx.seed ^ salt);
        RothkoOptions options;
        options.max_colors = max_colors;
        options.split_mean = split_mean;
        if (parallel) options.pool = DefaultPool();
        ColorId num_colors = 0;
        double splits = 0.0, max_q = 0.0;
        ScenarioResult r;
        r.timing = MeasureSeconds(ctx.measure, [&] {
          RothkoRefiner refiner(g, Partition::Trivial(g.num_nodes()),
                                options);
          refiner.Run();
          num_colors = refiner.partition().num_colors();
          splits = static_cast<double>(refiner.history().size());
          max_q = refiner.CurrentMaxError();
        });
        r.params = {{"nodes", static_cast<double>(g.num_nodes())},
                    {"arcs", static_cast<double>(g.num_arcs())},
                    {"max_colors", static_cast<double>(max_colors)}};
        r.counters = {{"num_colors", static_cast<double>(num_colors)},
                      {"splits", splits},
                      {"max_q", max_q}};
        return r;
      }));
}

Graph Ba10k(uint64_t seed) {
  Rng rng(seed);
  return BarabasiAlbert(10000, 3, rng);
}
Graph Ba100k(uint64_t seed) {
  Rng rng(seed);
  return BarabasiAlbert(100000, 3, rng);
}
Graph Ba200k(uint64_t seed) {
  Rng rng(seed);
  return BarabasiAlbert(200000, 3, rng);
}
Graph Er10k(uint64_t seed) {
  Rng rng(seed);
  return ErdosRenyiGnm(10000, 40000, rng);
}
Graph Er100k(uint64_t seed) {
  Rng rng(seed);
  return ErdosRenyiGnm(100000, 400000, rng);
}
Graph Grid10k(uint64_t seed) {
  Rng rng(seed);
  return SegmentationGridNetwork(100, 100, 4, rng).graph;
}
Graph Grid100k(uint64_t seed) {
  Rng rng(seed);
  return SegmentationGridNetwork(400, 250, 8, rng).graph;
}

// Registers a coloring-kernel scenario measured over a fixed prepared
// input (built once, outside the timed closure).
template <typename Prepare, typename Work>
void RegisterKernel(const char* name, const char* group, bool smoke,
                    const char* description, Prepare prepare, Work work) {
  Scenario::Info info;
  info.name = name;
  info.group = group;
  info.description = description;
  info.smoke = smoke;
  ScenarioRegistry::Global().Register(
      Scenario(std::move(info), [prepare, work](const BenchContext& ctx) {
        auto input = prepare(ctx);
        ScenarioResult r;
        r.timing =
            MeasureSeconds(ctx.measure, [&] { work(input, r.counters); });
        return r;
      }));
}

void RegisterColoringScenarios() {
  RegisterRothko("coloring/rothko-ba-10k-c64", /*smoke=*/true,
                 "Rothko to 64 colors on a 10k-node Barabasi-Albert graph",
                 &Ba10k, 0x9a01, 64);
  RegisterRothko(
      "coloring/rothko-ba-100k-c256", /*smoke=*/true,
      "HEADLINE: Rothko to 256 colors on a 100k-node scale-free graph",
      &Ba100k, 0x9a02, 256);
  RegisterRothko("coloring/rothko-ba-200k-c256", /*smoke=*/false,
                 "Rothko to 256 colors on a 200k-node scale-free graph",
                 &Ba200k, 0x9a03, 256);
  RegisterRothko("coloring/rothko-ba-100k-c256-geo", /*smoke=*/false,
                 "geometric split-mean variant of the headline scenario",
                 &Ba100k, 0x9a02, 256, RothkoOptions::SplitMean::kGeometric);
  RegisterRothko("coloring/rothko-er-10k-c64", /*smoke=*/true,
                 "Rothko to 64 colors on a G(10k, 40k) Erdos-Renyi graph",
                 &Er10k, 0x9a04, 64);
  RegisterRothko("coloring/rothko-er-100k-c128", /*smoke=*/false,
                 "Rothko to 128 colors on a G(100k, 400k) Erdos-Renyi graph",
                 &Er100k, 0x9a05, 128);
  RegisterRothko("coloring/rothko-parallel-ba-100k", /*smoke=*/true,
                 "the headline refinement on the --threads pool; counters "
                 "must equal rothko-ba-100k-c256 at every thread count",
                 &Ba100k, 0x9a02, 256,
                 RothkoOptions::SplitMean::kArithmetic, /*parallel=*/true);
  RegisterRothko("coloring/rothko-parallel-ba-10k", /*smoke=*/false,
                 "TSan-sized parallel refinement (the CI thread-sanitizer "
                 "job drives this by name)",
                 &Ba10k, 0x9a01, 64,
                 RothkoOptions::SplitMean::kArithmetic, /*parallel=*/true);
  RegisterRothko("coloring/rothko-grid-10k-c64", /*smoke=*/true,
                 "Rothko to 64 colors on a 100x100 segmentation grid",
                 &Grid10k, 0x9a06, 64);
  RegisterRothko("coloring/rothko-grid-100k-c128", /*smoke=*/false,
                 "Rothko to 128 colors on a 400x250 segmentation grid",
                 &Grid100k, 0x9a07, 128);

  RegisterKernel(
      "coloring/stable-ba-20k", "coloring", /*smoke=*/true,
      "stable coloring (color refinement to fixpoint) on a 20k-node "
      "Barabasi-Albert graph",
      [](const BenchContext& ctx) {
        Rng rng(ctx.seed ^ 0x9a08);
        return BarabasiAlbert(20000, 3, rng);
      },
      [](const Graph& g,
         std::vector<std::pair<std::string, double>>& counters) {
        const Partition p = StableColoring(g);
        counters = {{"num_colors", static_cast<double>(p.num_colors())}};
      });
  RegisterKernel(
      "coloring/qerror-ba-50k", "coloring", /*smoke=*/false,
      "from-scratch q-error recount of a 64-color Rothko coloring on a "
      "50k-node Barabasi-Albert graph",
      [](const BenchContext& ctx) {
        Rng rng(ctx.seed ^ 0x9a09);
        Graph g = BarabasiAlbert(50000, 3, rng);
        RothkoOptions options;
        options.max_colors = 64;
        Partition p = RothkoColoring(g, options);
        return std::make_pair(std::move(g), std::move(p));
      },
      [](const std::pair<Graph, Partition>& input,
         std::vector<std::pair<std::string, double>>& counters) {
        const QErrorStats report = ComputeQError(input.first, input.second);
        counters = {{"max_q", report.max_q}};
      });
  RegisterKernel(
      "coloring/reduced-ba-50k", "coloring", /*smoke=*/false,
      "reduced-graph construction from a 64-color coloring on a 50k-node "
      "Barabasi-Albert graph",
      [](const BenchContext& ctx) {
        Rng rng(ctx.seed ^ 0x9a0a);
        Graph g = BarabasiAlbert(50000, 3, rng);
        RothkoOptions options;
        options.max_colors = 64;
        Partition p = RothkoColoring(g, options);
        return std::make_pair(std::move(g), std::move(p));
      },
      [](const std::pair<Graph, Partition>& input,
         std::vector<std::pair<std::string, double>>& counters) {
        const Graph reduced =
            BuildReducedGraph(input.first, input.second, ReducedWeight::kSum);
        counters = {{"reduced_arcs", static_cast<double>(reduced.num_arcs())}};
      });
}

// --- pipelines group -----------------------------------------------------

// End-to-end eval workload: one timed unit is the full budget sweep
// (coloring + reduction + solve at every budget) including the exact
// oracle.
void RegisterEvalPipeline(const char* name, bool smoke,
                          const char* description,
                          const char* workload_name) {
  Scenario::Info info;
  info.name = name;
  info.group = "pipelines";
  info.description = description;
  info.smoke = smoke;
  ScenarioRegistry::Global().Register(
      Scenario(std::move(info), [workload_name](const BenchContext& ctx) {
        const eval::Workload* w =
            eval::WorkloadRegistry::Global().Find(workload_name);
        QSC_CHECK(w != nullptr);
        eval::EvalOptions options;
        options.seed = ctx.seed;
        eval::WorkloadResult res;
        ScenarioResult r;
        r.timing =
            MeasureSeconds(ctx.measure, [&] { res = w->Run(options); });
        for (const eval::RunMetrics& m : res.runs) {
          r.counters.push_back({BudgetKey(m.color_budget, "colors"),
                                static_cast<double>(m.num_colors)});
          r.counters.push_back({BudgetKey(m.color_budget, "max_q"), m.max_q});
          if (w->area() == eval::Application::kCentrality) {
            r.counters.push_back(
                {BudgetKey(m.color_budget, "rho"), m.rank_correlation});
          } else {
            r.counters.push_back(
                {BudgetKey(m.color_budget, "rel_err"), m.relative_error});
          }
        }
        return r;
      }));
}

// --- fig7 dataset sweeps -------------------------------------------------
//
// Single-shot reproductions of the paper's Figure 7 (one pass over the
// Table 2/3 dataset suites at their canonical baked-in seeds; the exact
// oracles dominate, so warmup/repeats are pinned to 0/1). They fill the
// human-readable table consumed by the bench_fig7_* frontends.

constexpr MeasureOptions kSingleShot{/*warmup=*/0, /*repeats=*/1};

void RegisterFig7MaxFlow() {
  Scenario::Info info;
  info.name = "pipelines/fig7-maxflow";
  info.group = "pipelines";
  info.description =
      "Figure 7(a): max-flow speed-accuracy sweep over the Table-2 flow "
      "suite; single-shot, canonical seeds";
  info.smoke = false;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info), [](const BenchContext&) {
        ScenarioResult r;
        r.table_header = {"dataset", "exact flow", "exact time", "colors",
                          "approx",  "rel.err",    "time",       "% of exact"};
        const eval::EvalOptions options;  // push-relabel oracle
        const std::vector<ColorId> budgets{5, 10, 20, 35};
        std::vector<double> errors_at_budget;
        r.timing = MeasureSeconds(kSingleShot, [&] {
          r.table_rows.clear();
          r.counters.clear();
          errors_at_budget.clear();
          for (const auto& dataset : eval::FlowSuite()) {
            const auto runs =
                eval::RunMaxFlowPipeline(dataset.instance, options, budgets);
            for (const eval::RunMetrics& m : runs) {
              if (m.color_budget == 35) {
                errors_at_budget.push_back(m.relative_error);
                r.counters.push_back(
                    {dataset.name + "_b35_rel_err", m.relative_error});
              }
              r.table_rows.push_back(
                  {dataset.name, FormatDouble(m.exact_value, 0),
                   FormatSeconds(m.exact_seconds),
                   std::to_string(m.color_budget),
                   FormatDouble(m.approx_value, 0),
                   FormatDouble(m.relative_error, 3),
                   FormatSeconds(m.approx_seconds),
                   FormatDouble(100.0 * m.approx_seconds / m.exact_seconds,
                                1)});
            }
          }
          r.counters.push_back(
              {"geomean_rel_err_b35", GeometricMean(errors_at_budget)});
        });
        return r;
      }));
}

void RegisterFig7Lp() {
  Scenario::Info info;
  info.name = "pipelines/fig7-lp";
  info.group = "pipelines";
  info.description =
      "Figure 7(b): LP speed-accuracy sweep over the Table-3 LP suite; "
      "single-shot, canonical seeds";
  info.smoke = false;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info), [](const BenchContext&) {
        ScenarioResult r;
        r.table_header = {"dataset", "exact obj", "exact time", "colors",
                          "approx obj", "rel.err", "time", "% of exact"};
        const eval::EvalOptions options;  // interior-point oracle
        const std::vector<ColorId> budgets{10, 25, 50, 100};
        std::vector<double> errors_at_100;
        r.timing = MeasureSeconds(kSingleShot, [&] {
          r.table_rows.clear();
          r.counters.clear();
          errors_at_100.clear();
          for (const auto& dataset : eval::LpSuite()) {
            const auto runs = eval::RunLpPipeline(dataset.lp, options, budgets);
            for (const eval::RunMetrics& m : runs) {
              if (m.color_budget == 100) {
                errors_at_100.push_back(m.relative_error);
                r.counters.push_back(
                    {dataset.name + "_b100_rel_err", m.relative_error});
              }
              r.table_rows.push_back(
                  {dataset.name, FormatDouble(m.exact_value, 1),
                   FormatSeconds(m.exact_seconds),
                   std::to_string(m.color_budget),
                   FormatDouble(m.approx_value, 1),
                   FormatDouble(m.relative_error, 3),
                   FormatSeconds(m.approx_seconds),
                   FormatDouble(100.0 * m.approx_seconds / m.exact_seconds,
                                2)});
            }
          }
          r.counters.push_back(
              {"geomean_rel_err_b100", GeometricMean(errors_at_100)});
        });
        return r;
      }));
}

void RegisterFig7Centrality() {
  Scenario::Info info;
  info.name = "pipelines/fig7-centrality";
  info.group = "pipelines";
  info.description =
      "Figure 7(c): betweenness-centrality sweep over the Table-2 "
      "centrality suite; single-shot, canonical seeds";
  info.smoke = false;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info), [](const BenchContext&) {
        ScenarioResult r;
        r.table_header = {"dataset", "exact time", "colors",
                          "spearman", "time",       "% of exact"};
        eval::EvalOptions options;
        options.seed = 17;  // pivot-sampling seed (matches the fig7 binary)
        const std::vector<ColorId> budgets{10, 25, 50, 100};
        std::vector<double> rho_at_50;
        r.timing = MeasureSeconds(kSingleShot, [&] {
          r.table_rows.clear();
          r.counters.clear();
          rho_at_50.clear();
          for (const auto& dataset : eval::CentralityGraphSuite()) {
            const auto runs = eval::RunCentralityPipeline(dataset.graph,
                                                          options, budgets);
            for (const eval::RunMetrics& m : runs) {
              if (m.color_budget == 50) {
                rho_at_50.push_back(m.rank_correlation);
                r.counters.push_back(
                    {dataset.name + "_b50_rho", m.rank_correlation});
              }
              r.table_rows.push_back(
                  {dataset.name, FormatSeconds(m.exact_seconds),
                   std::to_string(m.color_budget),
                   FormatDouble(m.rank_correlation, 3),
                   FormatSeconds(m.approx_seconds),
                   FormatDouble(100.0 * m.approx_seconds / m.exact_seconds,
                                1)});
            }
          }
          r.counters.push_back({"mean_rho_b50", Mean(rho_at_50)});
        });
        return r;
      }));
}

void RegisterSolverKernels() {
  RegisterKernel(
      "pipelines/solver-pushrelabel-grid100", "pipelines", /*smoke=*/false,
      "exact push-relabel max-flow on a 100x50 grid network",
      [](const BenchContext& ctx) {
        Rng rng(ctx.seed ^ 0x9a0b);
        return GridFlowNetwork(100, 50, 10, 40, rng);
      },
      [](const FlowInstance& inst,
         std::vector<std::pair<std::string, double>>& counters) {
        const double flow =
            MaxFlowPushRelabel(inst.graph, inst.source, inst.sink);
        counters = {{"max_flow", flow}};
      });
  RegisterKernel(
      "pipelines/solver-brandes-ba50k", "pipelines", /*smoke=*/false,
      "64 Brandes dependency-accumulation passes on a 50k-node "
      "Barabasi-Albert graph",
      [](const BenchContext& ctx) {
        Rng rng(ctx.seed ^ 0x9a0c);
        return BarabasiAlbert(50000, 3, rng);
      },
      [](const Graph& g,
         std::vector<std::pair<std::string, double>>& counters) {
        BrandesWorkspace workspace(g);
        std::vector<double> scores(g.num_nodes(), 0.0);
        for (NodeId s = 0; s < 64; ++s) {
          workspace.AccumulateDependencies(s, 1.0, scores);
        }
        counters = {{"score0", scores[0]}};
      });
  RegisterKernel(
      "pipelines/solver-simplex-block8", "pipelines", /*smoke=*/false,
      "simplex solve of an 8x8-group block LP",
      [](const BenchContext&) {
        BlockLpSpec spec;
        spec.num_row_groups = 8;
        spec.num_col_groups = 8;
        spec.rows_per_group = 8;
        spec.cols_per_group = 8;
        spec.seed = 5;
        return MakeBlockLp(spec);
      },
      [](const LpProblem& lp,
         std::vector<std::pair<std::string, double>>& counters) {
        const LpResult result = SolveSimplex(lp);
        counters = {{"objective", result.objective}};
      });
}

// --- session amortization ------------------------------------------------
//
// The compress-once/query-many claim of the api layer (docs/API.md), as a
// committed baseline pair: `compressor-batch-flow` serves k = 16 max-flow
// queries from one qsc::Compressor session (one coloring, 15 cache hits),
// `compressor-cold-flow` answers the same 16 queries with cold
// ApproximateMaxFlow calls (16 colorings). Their baseline medians document
// the amortization factor; the batch scenario's `abs_diff_vs_cold` counter
// pins the bit-identity of session results to the cold path.

constexpr int kBatchFlowQueries = 16;
constexpr ColorId kBatchFlowBudget = 64;

// The 100k-node BA scenario graph, materialized as a directed graph
// (capacity in both directions) so max-flow terminals can be pinned.
Graph DirectedBa100k(uint64_t seed) {
  Rng rng(seed);
  const Graph ba = BarabasiAlbert(100000, 3, rng);
  return Graph::FromArcs(ba.num_nodes(), ba.Arcs(), /*undirected=*/false);
}

void RegisterCompressorBatchFlow() {
  Scenario::Info info;
  info.name = "pipelines/compressor-batch-flow";
  info.group = "pipelines";
  info.description =
      "16 s-t max-flow queries served by one Compressor session on the "
      "100k-node BA graph (coloring computed once, 15 cache hits)";
  info.smoke = true;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info), [](const BenchContext& ctx) {
        const Graph g = DirectedBa100k(ctx.seed ^ 0x9a0d);
        const NodeId source = 0;
        const NodeId sink = g.num_nodes() - 1;
        const std::vector<std::pair<NodeId, NodeId>> pairs(
            kBatchFlowQueries, {source, sink});
        QueryOptions query;
        query.max_colors = kBatchFlowBudget;

        double cache_hits = 0.0, colorings = 0.0, upper = 0.0, colors = 0.0;
        ScenarioResult r;
        r.timing = MeasureSeconds(ctx.measure, [&] {
          Compressor session(std::shared_ptr<const Graph>(
              std::shared_ptr<const Graph>(), &g));
          const StatusOr<std::vector<FlowQueryResult>> batch =
              session.MaxFlowBatch(pairs, query);
          QSC_CHECK_OK(batch);
          const CompressorStats& stats = session.stats();
          cache_hits = static_cast<double>(stats.coloring.hits);
          colorings = static_cast<double>(stats.coloring.misses);
          upper = batch->back().upper_bound;
          colors = static_cast<double>(batch->back().num_colors);
        });

        // Cold reference, outside the timed closure: the committed
        // baseline asserts per-query bit-identity with the cold path.
        FlowApproxOptions cold;
        cold.rothko.max_colors = kBatchFlowBudget;
        const FlowApproxResult reference =
            ApproximateMaxFlow(g, source, sink, cold);

        r.params = {{"nodes", static_cast<double>(g.num_nodes())},
                    {"arcs", static_cast<double>(g.num_arcs())},
                    {"queries", static_cast<double>(kBatchFlowQueries)},
                    {"max_colors", static_cast<double>(kBatchFlowBudget)}};
        r.counters = {
            {"cache_hits", cache_hits},
            {"colorings_computed", colorings},
            {"num_colors", colors},
            {"upper_bound", upper},
            {"abs_diff_vs_cold", std::abs(upper - reference.upper_bound)}};
        return r;
      }));
}

void RegisterCompressorColdFlow() {
  Scenario::Info info;
  info.name = "pipelines/compressor-cold-flow";
  info.group = "pipelines";
  info.description =
      "the same 16 s-t max-flow queries as compressor-batch-flow, each as "
      "a cold ApproximateMaxFlow call (16 colorings); single-shot";
  info.smoke = true;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info), [](const BenchContext& ctx) {
        const Graph g = DirectedBa100k(ctx.seed ^ 0x9a0d);
        const NodeId source = 0;
        const NodeId sink = g.num_nodes() - 1;
        FlowApproxOptions cold;
        cold.rothko.max_colors = kBatchFlowBudget;

        double upper = 0.0, colors = 0.0;
        ScenarioResult r;
        // Single-shot: one pass is ~16 colorings of a 100k-node graph;
        // repeats would only slow CI without steadying the median.
        r.timing = MeasureSeconds(kSingleShot, [&] {
          for (int i = 0; i < kBatchFlowQueries; ++i) {
            const FlowApproxResult approx =
                ApproximateMaxFlow(g, source, sink, cold);
            upper = approx.upper_bound;
            colors = static_cast<double>(approx.num_colors);
          }
        });
        r.params = {{"nodes", static_cast<double>(g.num_nodes())},
                    {"arcs", static_cast<double>(g.num_arcs())},
                    {"queries", static_cast<double>(kBatchFlowQueries)},
                    {"max_colors", static_cast<double>(kBatchFlowBudget)}};
        r.counters = {{"num_colors", colors}, {"upper_bound", upper}};
        return r;
      }));
}

// The parallel-serving claim (ISSUE 5): 8 *distinct* terminal pairs —
// eight independent ColoringSpecs — served by one MaxFlowBatch call on
// the --threads pool. Distinct specs refine concurrently, so the timed
// median scales with the thread count while every counter stays
// bit-identical (the CI counter-identity gate compares --threads 1
// against --threads 4). `abs_diff_vs_serial` pins the batch results to a
// sequential per-query session, query by query.
constexpr int kParallelFlowQueries = 8;

void RegisterCompressorParallelFlow() {
  Scenario::Info info;
  info.name = "pipelines/compressor-parallel-flow";
  info.group = "pipelines";
  info.description =
      "8 distinct s-t max-flow queries fanned out over the --threads pool "
      "by one MaxFlowBatch on the 100k-node BA graph; single-shot";
  info.smoke = true;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info), [](const BenchContext& ctx) {
        const Graph g = DirectedBa100k(ctx.seed ^ 0x9a0d);
        std::vector<std::pair<NodeId, NodeId>> pairs;
        pairs.reserve(kParallelFlowQueries);
        for (NodeId i = 0; i < kParallelFlowQueries; ++i) {
          pairs.push_back({i, g.num_nodes() - 1 - i});
        }
        QueryOptions query;
        query.max_colors = kBatchFlowBudget;

        double colorings = 0.0, cache_hits = 0.0;
        double upper_sum = 0.0, colors = 0.0;
        std::vector<double> uppers(pairs.size(), 0.0);
        ScenarioResult r;
        // Single-shot: one pass is 8 colorings of a 100k-node graph
        // (concurrent when --threads > 1); repeats would slow CI without
        // steadying the median.
        r.timing = MeasureSeconds(kSingleShot, [&] {
          Compressor session(
              std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(),
                                           &g),
              DefaultPool());
          const StatusOr<std::vector<FlowQueryResult>> batch =
              session.MaxFlowBatch(pairs, query);
          QSC_CHECK_OK(batch);
          const CompressorStats stats = session.stats();
          colorings = static_cast<double>(stats.coloring.misses);
          cache_hits = static_cast<double>(stats.coloring.hits);
          upper_sum = 0.0;
          for (size_t i = 0; i < batch->size(); ++i) {
            uppers[i] = (*batch)[i].upper_bound;
            upper_sum += uppers[i];
          }
          colors = static_cast<double>(batch->back().num_colors);
        });

        // Sequential per-query reference, outside the timed closure: the
        // committed baseline asserts the fan-out changes no result.
        double abs_diff = 0.0;
        {
          Compressor serial(std::shared_ptr<const Graph>(
              std::shared_ptr<const Graph>(), &g));
          for (size_t i = 0; i < pairs.size(); ++i) {
            const StatusOr<FlowQueryResult> want =
                serial.MaxFlow(pairs[i].first, pairs[i].second, query);
            QSC_CHECK_OK(want);
            abs_diff += std::abs(uppers[i] - want->upper_bound);
          }
        }

        r.params = {{"nodes", static_cast<double>(g.num_nodes())},
                    {"arcs", static_cast<double>(g.num_arcs())},
                    {"queries", static_cast<double>(kParallelFlowQueries)},
                    {"max_colors", static_cast<double>(kBatchFlowBudget)}};
        r.counters = {{"colorings_computed", colorings},
                      {"cache_hits", cache_hits},
                      {"num_colors", colors},
                      {"upper_bound_sum", upper_sum},
                      {"abs_diff_vs_serial", abs_diff}};
        return r;
      }));
}

}  // namespace

void RegisterBuiltinScenarios() {
  static const bool registered = [] {
    eval::RegisterBuiltinWorkloads();
    RegisterColoringScenarios();
    RegisterEvalPipeline(
        "pipelines/flow-seg-grid", /*smoke=*/true,
        "end-to-end max-flow pipeline on the builtin seg-grid workload",
        "maxflow/seg-grid");
    RegisterEvalPipeline(
        "pipelines/lp-qap", /*smoke=*/true,
        "end-to-end LP pipeline on the builtin qap workload", "lp/qap");
    RegisterEvalPipeline(
        "pipelines/centrality-powerlaw", /*smoke=*/true,
        "end-to-end centrality pipeline on the builtin powerlaw workload",
        "centrality/powerlaw");
    RegisterFig7MaxFlow();
    RegisterFig7Lp();
    RegisterFig7Centrality();
    RegisterSolverKernels();
    RegisterCompressorBatchFlow();
    RegisterCompressorColdFlow();
    RegisterCompressorParallelFlow();
    RegisterServingScenarios();
    RegisterFlowScenarios();
    RegisterBackendScenarios();
    RegisterDynamicScenarios();
    return true;
  }();
  (void)registered;
}

}  // namespace bench
}  // namespace qsc
