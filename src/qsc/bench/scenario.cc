#include "qsc/bench/scenario.h"

#include <algorithm>

#include "qsc/util/check.h"

namespace qsc {
namespace bench {

ScenarioResult Scenario::Run(const BenchContext& context) const {
  ScenarioResult result = run_(context);
  result.name = info_.name;
  result.group = info_.group;
  return result;
}

ScenarioRegistry& ScenarioRegistry::Global() {
  static ScenarioRegistry* registry = new ScenarioRegistry();
  return *registry;
}

void ScenarioRegistry::Register(Scenario scenario) {
  QSC_CHECK(Find(scenario.name()) == nullptr);  // names must be unique
  scenarios_.push_back(std::make_unique<Scenario>(std::move(scenario)));
}

const Scenario* ScenarioRegistry::Find(const std::string& name) const {
  for (const auto& s : scenarios_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::List() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(s.get());
  std::sort(out.begin(), out.end(),
            [](const Scenario* a, const Scenario* b) {
              return a->name() < b->name();
            });
  return out;
}

}  // namespace bench
}  // namespace qsc
