// The perf-scenario registry (the bench-side sibling of
// qsc/eval/workload.h). A scenario is one named, seeded measurement:
// instance construction is excluded from timing, the measured closure is a
// complete unit of work (e.g. one full Rothko refinement, one eval
// pipeline sweep), and every metric value a scenario reports is
// deterministic given (scenario, seed) — wall-clock and RSS are the only
// machine-dependent outputs. That split is what lets CI diff committed
// baseline JSON against a fresh run: counters must match exactly, timings
// within a noise tolerance (docs/BENCHMARKING.md).

#ifndef QSC_BENCH_SCENARIO_H_
#define QSC_BENCH_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qsc/bench/runner.h"

namespace qsc {
namespace bench {

// Cross-cutting run configuration, set from the qsc_bench CLI.
struct BenchContext {
  uint64_t seed = 1;  // instance seed; counters are a function of this
  // Worker threads (--threads); the CLI sizes the default pool to match.
  // Counters stay a function of the seed alone — the parallel scenarios
  // are bit-identical across thread counts (the CI counter-identity gate).
  int threads = 1;
  MeasureOptions measure;
};

struct ScenarioResult {
  std::string name;
  std::string group;  // report file: BENCH_<group>.json

  // Instance dimensions (node/arc counts, budgets, ...). Deterministic
  // given the seed.
  std::vector<std::pair<std::string, double>> params;

  // Workload metrics (colors reached, q-error, relative error, ...).
  // Deterministic given the seed; compared exactly against baselines.
  std::vector<std::pair<std::string, double>> counters;

  // Machine-dependent measurements; compared within a noise tolerance.
  Measurement timing;

  // Machine-dependent scalar metrics beyond wall time (tail latencies,
  // qps, cache byte gauges of the serving scenarios). Serialized under
  // "gauges" for trend tracking but never compared against baselines —
  // the comparator only inspects params/counters/timing.
  std::vector<std::pair<std::string, double>> gauges;

  // Optional human-readable detail (per-dataset rows for the fig7-style
  // scenarios). Printed by the table frontends, never serialized.
  std::vector<std::string> table_header;
  std::vector<std::vector<std::string>> table_rows;
};

// One registered perf scenario.
class Scenario {
 public:
  struct Info {
    std::string name;   // "<group>/<scenario>", e.g. "coloring/rothko-ba-10k"
    std::string group;  // "coloring" | "pipelines" | "serving"
    std::string description;
    // Part of the fast CI suite (--suite=smoke). Full-only scenarios run
    // with --suite=full or by name.
    bool smoke = false;
  };

  using RunFn = std::function<ScenarioResult(const BenchContext&)>;

  Scenario(Info info, RunFn run)
      : info_(std::move(info)), run_(std::move(run)) {}

  const Info& info() const { return info_; }
  const std::string& name() const { return info_.name; }

  // Runs the scenario; fills name/group from info().
  ScenarioResult Run(const BenchContext& context) const;

 private:
  Info info_;
  RunFn run_;
};

// Process-wide name -> scenario map. Registration is append-only; names
// must be unique.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& Global();

  void Register(Scenario scenario);

  // nullptr when absent.
  const Scenario* Find(const std::string& name) const;

  // All scenarios, sorted by name.
  std::vector<const Scenario*> List() const;

 private:
  ScenarioRegistry() = default;
  std::vector<std::unique_ptr<Scenario>> scenarios_;
};

// Registers the builtin perf scenarios (scenarios.cc): Rothko refinement
// on Barabási–Albert / Erdős–Rényi / segmentation-grid graphs at 10k-200k
// nodes, the end-to-end eval pipelines, the fig7 dataset sweeps, and the
// serving load scenarios. Idempotent; call before Find()/List().
void RegisterBuiltinScenarios();

// The "serving" group (scenarios_serving.cc): seeded workload traces
// replayed against a Compressor session by the qsc/workload load runner.
// Called by RegisterBuiltinScenarios().
void RegisterServingScenarios();

// The "flow" group (scenarios_flow.cc): exact max-flow / min-cut solver
// kernels over the CSR ResidualNetwork on a shared vision-style grid
// instance. Called by RegisterBuiltinScenarios().
void RegisterFlowScenarios();

// The "backends" group (scenarios_backends.cc): every registered coloring
// backend swept over color budgets on one shared instance, emitting
// per-backend Pareto counters. Called by RegisterBuiltinScenarios().
void RegisterBackendScenarios();

// The "dynamic" group (scenarios_dynamic.cc): seeded edit-stream churn
// against a Compressor session — repair-path serving vs from-scratch
// recompute, with the incremental-vs-scratch q-error drift gated at
// exactly zero. Called by RegisterBuiltinScenarios().
void RegisterDynamicScenarios();

}  // namespace bench
}  // namespace qsc

#endif  // QSC_BENCH_SCENARIO_H_
