#include "qsc/bench/report.h"

#include <algorithm>
#include <cstdio>

#include "qsc/eval/json.h"

namespace qsc {
namespace bench {

std::vector<std::string> ReportGroups(const BenchReport& report) {
  std::vector<std::string> groups;
  for (const ScenarioResult& r : report.results) {
    if (std::find(groups.begin(), groups.end(), r.group) == groups.end()) {
      groups.push_back(r.group);
    }
  }
  std::sort(groups.begin(), groups.end());
  return groups;
}

namespace {

void WriteScenarioJson(const ScenarioResult& r, eval::JsonWriter& w) {
  w.BeginObject();
  w.KV("name", r.name);
  w.Key("params");
  w.BeginObject();
  for (const auto& [key, value] : r.params) w.KV(key, value);
  w.EndObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [key, value] : r.counters) w.KV(key, value);
  w.EndObject();
  if (!r.gauges.empty()) {
    w.Key("gauges");
    w.BeginObject();
    for (const auto& [key, value] : r.gauges) w.KV(key, value);
    w.EndObject();
  }
  w.Key("timing");
  w.BeginObject();
  w.KV("repeats", r.timing.seconds.count);
  w.KV("median_s", r.timing.seconds.median);
  w.KV("mad_s", r.timing.seconds.mad);
  w.KV("min_s", r.timing.seconds.min);
  w.KV("max_s", r.timing.seconds.max);
  w.KV("mean_s", r.timing.seconds.mean);
  w.EndObject();
  w.KV("peak_rss_mib", r.timing.peak_rss_mib);
  w.EndObject();
}

}  // namespace

std::string ReportGroupJson(const BenchReport& report,
                            const std::string& group, bool pretty) {
  std::vector<const ScenarioResult*> selected;
  for (const ScenarioResult& r : report.results) {
    if (r.group == group) selected.push_back(&r);
  }
  std::sort(selected.begin(), selected.end(),
            [](const ScenarioResult* a, const ScenarioResult* b) {
              return a->name < b->name;
            });

  eval::JsonWriter w(pretty);
  w.BeginObject();
  w.KV("tool", "qsc_bench");
  w.KV("schema_version", kBenchSchemaVersion);
  w.KV("group", group);
  w.KV("suite", report.suite);
  w.KV("seed", report.seed);
  w.KV("warmup", static_cast<int64_t>(report.measure.warmup));
  w.KV("repeats", static_cast<int64_t>(report.measure.repeats));
  w.KV("threads", static_cast<int64_t>(report.threads));
  w.Key("scenarios");
  w.BeginArray();
  for (const ScenarioResult* r : selected) WriteScenarioJson(*r, w);
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string BenchFileName(const std::string& group) {
  return "BENCH_" + group + ".json";
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != contents.size() || !close_ok) {
    return Status::Internal("short write: " + path);
  }
  return Status::Ok();
}

}  // namespace bench
}  // namespace qsc
