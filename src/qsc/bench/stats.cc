#include "qsc/bench/stats.h"

#include <cmath>

#include "qsc/util/stats.h"

namespace qsc {
namespace bench {

SampleStats Summarize(std::vector<double> samples) {
  SampleStats stats;
  stats.count = static_cast<int64_t>(samples.size());
  if (samples.empty()) return stats;
  stats.mean = Mean(samples);
  stats.min = Min(samples);
  stats.max = Max(samples);
  stats.median = Median(samples);
  std::vector<double> deviations;
  deviations.reserve(samples.size());
  for (const double x : samples) {
    deviations.push_back(std::abs(x - stats.median));
  }
  stats.mad = Median(std::move(deviations));
  return stats;
}

}  // namespace bench
}  // namespace qsc
