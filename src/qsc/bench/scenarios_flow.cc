// The "flow" scenario group: exact max-flow / min-cut solver kernels on a
// CI-sized vision-style instance, timed end to end over the CSR
// ResidualNetwork (network construction + solve — the unit every reduced
// and exact solve pays). The pair's baseline medians record the
// adjacency-list -> CSR speedup (docs/BENCHMARKING.md baseline history);
// the flow-value counters pin the swap to bit-identical results.
//
// Both scenarios share one instance (same seed salt): a 400x250
// segmentation grid — the family of the paper's Table-2 vision
// benchmarks — whose ~600k stored arcs put the residual network well
// outside cache, the regime the flat layout targets.

#include <string>
#include <utility>
#include <vector>

#include "qsc/bench/scenario.h"
#include "qsc/flow/dinic.h"
#include "qsc/flow/min_cut.h"
#include "qsc/flow/network.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace bench {
namespace {

constexpr uint64_t kFlowInstanceSalt = 0x9a10;

FlowInstance FlowBenchInstance(uint64_t seed) {
  Rng rng(seed);
  return SegmentationGridNetwork(400, 250, 8, rng);
}

void FillInstanceParams(const FlowInstance& inst, ScenarioResult* r) {
  r->params = {{"nodes", static_cast<double>(inst.graph.num_nodes())},
               {"arcs", static_cast<double>(inst.graph.num_arcs())}};
}

void RegisterDinicMinCut() {
  Scenario::Info info;
  info.name = "flow/dinic-mincut-seg-100k";
  info.group = "flow";
  info.description =
      "exact Dinic max-flow + residual-BFS min-cut extraction on a "
      "400x250 segmentation grid (network construction timed)";
  info.smoke = true;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info), [](const BenchContext& ctx) {
        const FlowInstance inst = FlowBenchInstance(ctx.seed ^
                                                    kFlowInstanceSalt);
        MinCutResult cut;
        ScenarioResult r;
        r.timing = MeasureSeconds(ctx.measure, [&] {
          cut = MinCut(inst.graph, inst.source, inst.sink);
        });
        FillInstanceParams(inst, &r);
        double source_side = 0.0;
        for (const bool b : cut.in_source_side) source_side += b ? 1.0 : 0.0;
        double cut_capacity = 0.0;
        for (const EdgeTriple& a : cut.cut_arcs) cut_capacity += a.weight;
        r.counters = {
            {"max_flow", cut.value},
            {"cut_arcs", static_cast<double>(cut.cut_arcs.size())},
            {"cut_capacity", cut_capacity},
            {"source_side", source_side}};
        return r;
      }));
}

void RegisterPushRelabel() {
  Scenario::Info info;
  info.name = "flow/pushrelabel-seg-100k";
  info.group = "flow";
  info.description =
      "exact push-relabel max-flow on the same 400x250 segmentation grid "
      "as flow/dinic-mincut-seg-100k (network construction timed)";
  info.smoke = true;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info), [](const BenchContext& ctx) {
        const FlowInstance inst = FlowBenchInstance(ctx.seed ^
                                                    kFlowInstanceSalt);
        double flow = 0.0;
        ScenarioResult r;
        r.timing = MeasureSeconds(ctx.measure, [&] {
          flow = MaxFlowPushRelabel(inst.graph, inst.source, inst.sink);
        });
        FillInstanceParams(inst, &r);
        r.counters = {{"max_flow", flow}};
        return r;
      }));
}

}  // namespace

void RegisterFlowScenarios() {
  RegisterDinicMinCut();
  RegisterPushRelabel();
}

}  // namespace bench
}  // namespace qsc
