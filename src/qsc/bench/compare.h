// Baseline comparison for the CI benchmark gate: parse two BENCH_*.json
// documents (a committed baseline and a fresh run) and flag regressions.
//
// The comparison mirrors the report's determinism split (report.h):
// "params" and "counters" must match the baseline to within a hair
// (1e-9 relative — bitwise in practice, with headroom for 1-ulp libm
// differences across toolchains); a drift means the scenario now does
// different work, which is either a bug or a change that must be
// accompanied by a baseline update. Timings are compared within a
// generous noise tolerance (default: fail only when the median slows
// down by more than 2x), and medians below a floor are skipped entirely,
// so shared-runner jitter cannot flake the gate.
//
// The parser is deliberately minimal: full JSON values, no streaming, no
// comments — just enough to read back what eval::JsonWriter emits.

#ifndef QSC_BENCH_COMPARE_H_
#define QSC_BENCH_COMPARE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "qsc/util/status.h"

namespace qsc {
namespace bench {

// Parsed JSON value (tagged union). Numbers are doubles, objects preserve
// insertion order; duplicate keys keep the last value (RFC 8259 allows
// either).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Get(std::string_view key) const;

  // Typed accessors returning a fallback on kind mismatch.
  double NumberOr(double fallback) const {
    return kind == Kind::kNumber ? number_value : fallback;
  }
  std::string StringOr(std::string fallback) const {
    return kind == Kind::kString ? string_value : std::move(fallback);
  }
};

// Parses exactly one JSON document (trailing garbage is an error).
Status ParseJson(std::string_view text, JsonValue* out);

struct CompareOptions {
  // A timing violation requires current_median > max_slowdown *
  // baseline_median.
  double max_slowdown = 2.0;
  // Baseline medians below this many seconds are too noisy to gate on and
  // are skipped.
  double min_median_seconds = 0.01;
  // Counter-identity mode (qsc_bench --compare-counters): compare only
  // params and counters — timings and the timing floor are ignored — and
  // require the two documents to contain exactly the same scenario set.
  // Used by CI to pin that a --threads N run reproduces the 1-thread
  // counters bit for bit.
  bool counters_only = false;
  // Relative tolerance for params/counters comparisons. Bitwise equality
  // in practice — a fixed seed reproduces identical doubles on one
  // machine — but libm functions (std::pow in the refiner's priorities)
  // are not correctly rounded, so baselines recorded under one
  // glibc/compiler can drift by ~1 ulp (~1e-16 relative) under another.
  // Real behavior changes move counters by far more than this.
  double counter_rel_tolerance = 1e-9;
};

struct CompareViolation {
  std::string scenario;  // empty for document-level violations
  std::string detail;
};

struct CompareReport {
  std::vector<CompareViolation> violations;
  std::vector<std::string> notes;  // informational (new scenarios, skips)
  int compared = 0;                // scenarios checked

  bool ok() const { return violations.empty(); }
};

// Compares `current` against `baseline` (both parsed BENCH_*.json docs).
CompareReport CompareBenchReports(const JsonValue& baseline,
                                  const JsonValue& current,
                                  const CompareOptions& options);

// Reads a whole file; error when unreadable.
Status ReadFile(const std::string& path, std::string* contents);

}  // namespace bench
}  // namespace qsc

#endif  // QSC_BENCH_COMPARE_H_
