// The "backends" scenario group: every registered compression backend
// refined over one shared instance, emitting a small Pareto front (colors
// reached vs. max q-error at each budget rung) per backend. The counters
// pin each kernel's split decisions — a kernel change that moves any
// partition shows up as a baseline diff — while the timing tracks the
// aggregate cost of the sweep.

#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qsc/bench/scenario.h"
#include "qsc/coloring/backend.h"
#include "qsc/coloring/q_error.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace bench {
namespace {

constexpr uint64_t kBackendInstanceSalt = 0x9a20;

// Color-budget rungs of the Pareto sweep (paper Figure 4 style).
const ColorId kBudgets[] = {16, 32, 64};

void RegisterParetoBa10k() {
  Scenario::Info info;
  info.name = "backends/pareto-ba-10k";
  info.group = "backends";
  info.description =
      "all registered coloring backends swept over color budgets "
      "{16,32,64} on a 10k-node Barabasi-Albert graph; per-backend "
      "colors/q-error Pareto counters";
  info.smoke = true;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info), [](const BenchContext& ctx) {
        Rng rng(ctx.seed ^ kBackendInstanceSalt);
        const Graph g = BarabasiAlbert(10000, 3, rng);

        const ColoringBackendRegistry& registry =
            ColoringBackendRegistry::Global();
        const std::vector<std::string> names = registry.Names();

        ScenarioResult r;
        r.params = {{"nodes", static_cast<double>(g.num_nodes())},
                    {"arcs", static_cast<double>(g.num_arcs())},
                    {"budget_rungs",
                     static_cast<double>(std::size(kBudgets))}};
        r.timing = MeasureSeconds(ctx.measure, [&] {
          r.counters.clear();
          for (const std::string& name : names) {
            ColoringParams params;
            std::unique_ptr<ColoringBackend> backend =
                registry.Create(name, g, Partition::Trivial(g.num_nodes()),
                                params);
            for (const ColorId budget : kBudgets) {
              while (backend->partition().num_colors() < budget &&
                     backend->Step(budget)) {
              }
              r.counters.emplace_back(
                  name + "_colors_" + std::to_string(budget),
                  static_cast<double>(backend->partition().num_colors()));
              r.counters.emplace_back(
                  name + "_max_q_" + std::to_string(budget),
                  ComputeQError(g, backend->partition()).max_q);
            }
          }
        });
        return r;
      }));
}

}  // namespace

void RegisterBackendScenarios() { RegisterParetoBa10k(); }

}  // namespace bench
}  // namespace qsc
