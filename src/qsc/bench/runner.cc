#include "qsc/bench/runner.h"

#include <cstdio>
#include <vector>

#include "qsc/util/check.h"
#include "qsc/util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__linux__)
#include <unistd.h>
#endif

namespace qsc {
namespace bench {

double PeakRssMib() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // kibibytes
#endif
#else
  return 0.0;
#endif
}

double CurrentRssMib() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared ... in pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long size = 0, resident = 0;
  const int fields = std::fscanf(f, "%ld %ld", &size, &resident);
  std::fclose(f);
  if (fields != 2) return 0.0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<double>(resident) * static_cast<double>(page) /
         (1024.0 * 1024.0);
#else
  return 0.0;
#endif
}

Measurement MeasureSeconds(const MeasureOptions& options,
                           const std::function<void()>& fn) {
  QSC_CHECK_GE(options.warmup, 0);
  QSC_CHECK_GT(options.repeats, 0);
  for (int i = 0; i < options.warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(options.repeats);
  for (int i = 0; i < options.repeats; ++i) {
    WallTimer timer;
    fn();
    samples.push_back(timer.ElapsedSeconds());
  }
  Measurement m;
  m.seconds = Summarize(std::move(samples));
  m.peak_rss_mib = PeakRssMib();
  return m;
}

}  // namespace bench
}  // namespace qsc
