// qsc_bench: the machine-readable performance harness (docs/BENCHMARKING.md).
//
// Run mode executes registered perf scenarios (steady-clock timing with
// warmup/repeat and median/MAD stats, peak-RSS sampling) and either prints
// human tables or, with --json, writes one schema-versioned artifact per
// scenario group: BENCH_coloring.json, BENCH_pipelines.json,
// BENCH_serving.json, and BENCH_flow.json.
//
//   qsc_bench --list
//   qsc_bench --suite smoke --json          # the CI benchmark job
//   qsc_bench --scenario coloring/rothko-ba-100k-c256 --repeats 9
//
// Compare mode gates a fresh run against a committed baseline: counters
// must match exactly, medians within a noise tolerance.
//
//   qsc_bench --compare bench/baselines/BENCH_coloring.json
//             BENCH_coloring.json --tolerance 2.0   (one command line)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "qsc/bench/compare.h"
#include "qsc/bench/report.h"
#include "qsc/bench/scenario.h"
#include "qsc/parallel/thread_pool.h"
#include "qsc/util/table.h"

namespace qsc {
namespace bench {
namespace {

void PrintUsage(FILE* out) {
  std::fprintf(
      out,
      "usage: qsc_bench [options]\n"
      "run mode (default):\n"
      "  --list                 list registered scenarios and exit\n"
      "  --suite=smoke|full     scenario selection (default smoke)\n"
      "  --scenario=NAME        run NAME (repeatable; overrides --suite)\n"
      "  --seed=N               uint64 instance seed (default 1)\n"
      "  --threads=N            worker threads (counters are identical for\n"
      "                         any N; only timings change; default 1)\n"
      "  --warmup=N             un-timed runs per scenario (default 1)\n"
      "  --repeats=N            timed runs per scenario (default 5)\n"
      "  --json                 write BENCH_<group>.json artifacts\n"
      "  --out-dir=DIR          artifact directory (default .)\n"
      "  --compact              single-line JSON artifacts\n"
      "compare mode:\n"
      "  --compare BASE CURRENT gate CURRENT against committed BASE\n"
      "  --compare-counters A B gate counter identity only (no timings;\n"
      "                         scenario sets must match exactly)\n"
      "  --tolerance=X          max median slowdown (default 2.0)\n"
      "  --min-median=S         timing-gate floor in seconds (default 0.01)\n"
      "flags accept both --flag=value and --flag value forms\n");
}

// Matches `--name=value` or `--name value`; advances *i for the latter.
bool MatchFlag(int argc, char** argv, int* i, const char* name,
               std::string* value) {
  const char* arg = argv[*i];
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0') {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "qsc_bench: %s needs a value\n", name);
      std::exit(2);
    }
    *value = argv[++*i];
    return true;
  }
  return false;
}

int64_t ParseInt(const std::string& value, const char* flag) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0') {
    std::fprintf(stderr, "qsc_bench: bad %s value '%s'\n", flag,
                 value.c_str());
    std::exit(2);
  }
  return parsed;
}

double ParseDouble(const std::string& value, const char* flag) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || *end != '\0') {
    std::fprintf(stderr, "qsc_bench: bad %s value '%s'\n", flag,
                 value.c_str());
    std::exit(2);
  }
  return parsed;
}

int ListScenarios() {
  for (const Scenario* s : ScenarioRegistry::Global().List()) {
    std::printf("%-36s %-6s %s\n", s->name().c_str(),
                s->info().smoke ? "smoke" : "full",
                s->info().description.c_str());
  }
  return 0;
}

int RunCompare(const std::string& baseline_path,
               const std::string& current_path,
               const CompareOptions& options) {
  std::string baseline_text, current_text;
  Status status = ReadFile(baseline_path, &baseline_text);
  if (status.ok()) status = ReadFile(current_path, &current_text);
  JsonValue baseline, current;
  if (status.ok()) status = ParseJson(baseline_text, &baseline);
  if (status.ok()) status = ParseJson(current_text, &current);
  if (!status.ok()) {
    std::fprintf(stderr, "qsc_bench: %s\n", status.message().c_str());
    return 2;
  }

  const CompareReport report = CompareBenchReports(baseline, current, options);
  for (const std::string& note : report.notes) {
    std::printf("note: %s\n", note.c_str());
  }
  for (const CompareViolation& v : report.violations) {
    std::printf("FAIL %s%s%s\n", v.scenario.c_str(),
                v.scenario.empty() ? "" : ": ", v.detail.c_str());
  }
  std::printf("%s: compared %d scenario(s) against %s: %zu violation(s)\n",
              report.ok() ? "OK" : "FAILED", report.compared,
              baseline_path.c_str(), report.violations.size());
  return report.ok() ? 0 : 1;
}

int Main(int argc, char** argv) {
  RegisterBuiltinScenarios();

  BenchContext context;
  std::string suite = "smoke";
  std::vector<std::string> names;
  std::string out_dir = ".";
  bool list = false, json = false, pretty = true;
  bool compare = false;
  std::string baseline_path, current_path;
  CompareOptions compare_options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--compact") == 0) {
      pretty = false;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage(stdout);
      return 0;
    } else if (std::strcmp(arg, "--compare") == 0 ||
               std::strcmp(arg, "--compare-counters") == 0) {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "qsc_bench: %s needs BASELINE and CURRENT\n",
                     arg);
        return 2;
      }
      compare = true;
      compare_options.counters_only =
          std::strcmp(arg, "--compare-counters") == 0;
      baseline_path = argv[++i];
      current_path = argv[++i];
    } else if (MatchFlag(argc, argv, &i, "--suite", &value)) {
      if (value != "smoke" && value != "full") {
        std::fprintf(stderr, "qsc_bench: unknown suite '%s'\n", value.c_str());
        return 2;
      }
      suite = value;
    } else if (MatchFlag(argc, argv, &i, "--scenario", &value)) {
      names.push_back(value);
    } else if (MatchFlag(argc, argv, &i, "--seed", &value)) {
      char* end = nullptr;
      context.seed = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || value[0] == '-' || *end != '\0') {
        std::fprintf(stderr, "qsc_bench: bad seed '%s'\n", value.c_str());
        return 2;
      }
    } else if (MatchFlag(argc, argv, &i, "--threads", &value)) {
      context.threads = static_cast<int>(ParseInt(value, "--threads"));
      if (context.threads < 1) {
        std::fprintf(stderr, "qsc_bench: --threads must be >= 1\n");
        return 2;
      }
    } else if (MatchFlag(argc, argv, &i, "--warmup", &value)) {
      context.measure.warmup = static_cast<int>(ParseInt(value, "--warmup"));
      if (context.measure.warmup < 0) {
        std::fprintf(stderr, "qsc_bench: --warmup must be >= 0\n");
        return 2;
      }
    } else if (MatchFlag(argc, argv, &i, "--repeats", &value)) {
      context.measure.repeats = static_cast<int>(ParseInt(value, "--repeats"));
      if (context.measure.repeats < 1) {
        std::fprintf(stderr, "qsc_bench: --repeats must be >= 1\n");
        return 2;
      }
    } else if (MatchFlag(argc, argv, &i, "--out-dir", &value)) {
      out_dir = value;
    } else if (MatchFlag(argc, argv, &i, "--tolerance", &value)) {
      compare_options.max_slowdown = ParseDouble(value, "--tolerance");
    } else if (MatchFlag(argc, argv, &i, "--min-median", &value)) {
      compare_options.min_median_seconds = ParseDouble(value, "--min-median");
    } else {
      std::fprintf(stderr, "qsc_bench: unknown argument '%s'\n", arg);
      PrintUsage(stderr);
      return 2;
    }
  }

  if (list) return ListScenarios();
  if (compare) {
    return RunCompare(baseline_path, current_path, compare_options);
  }

  // Size the process pool before any scenario runs; the parallel
  // scenarios pick it up via DefaultPool().
  SetDefaultPoolThreads(context.threads);

  const ScenarioRegistry& registry = ScenarioRegistry::Global();
  std::vector<const Scenario*> selected;
  if (!names.empty()) {
    suite = "custom";
    for (const std::string& name : names) {
      const Scenario* s = registry.Find(name);
      if (s == nullptr) {
        std::fprintf(stderr, "qsc_bench: unknown scenario '%s' (try --list)\n",
                     name.c_str());
        return 2;
      }
      selected.push_back(s);
    }
  } else {
    for (const Scenario* s : registry.List()) {
      if (suite == "full" || s->info().smoke) selected.push_back(s);
    }
  }

  BenchReport report;
  report.suite = suite;
  report.seed = context.seed;
  report.threads = context.threads;
  report.measure = context.measure;
  for (size_t i = 0; i < selected.size(); ++i) {
    std::fprintf(stderr, "[%zu/%zu] %s\n", i + 1, selected.size(),
                 selected[i]->name().c_str());
    report.results.push_back(selected[i]->Run(context));
    std::fprintf(stderr, "         median %s over %lld repeat(s)\n",
                 FormatSeconds(report.results.back().timing.seconds.median)
                     .c_str(),
                 static_cast<long long>(
                     report.results.back().timing.seconds.count));
  }

  if (json) {
    for (const std::string& group : ReportGroups(report)) {
      const std::string path = out_dir + "/" + BenchFileName(group);
      const Status status =
          WriteFile(path, ReportGroupJson(report, group, pretty) + "\n");
      if (!status.ok()) {
        std::fprintf(stderr, "qsc_bench: %s\n", status.message().c_str());
        return 2;
      }
      std::printf("wrote %s\n", path.c_str());
    }
    return 0;
  }

  for (const std::string& group : ReportGroups(report)) {
    std::printf("=== %s (suite: %s, seed: %llu) ===\n", group.c_str(),
                suite.c_str(), static_cast<unsigned long long>(report.seed));
    TablePrinter table(
        {"scenario", "median", "mad", "min", "repeats", "peak rss"});
    for (const ScenarioResult& r : report.results) {
      if (r.group != group) continue;
      table.AddRow({r.name, FormatSeconds(r.timing.seconds.median),
                    FormatSeconds(r.timing.seconds.mad),
                    FormatSeconds(r.timing.seconds.min),
                    std::to_string(r.timing.seconds.count),
                    FormatDouble(r.timing.peak_rss_mib, 1) + " MiB"});
    }
    table.Print(stdout);
    std::printf("\n");
    for (const ScenarioResult& r : report.results) {
      if (r.group != group || r.table_rows.empty()) continue;
      std::printf("--- %s ---\n", r.name.c_str());
      TablePrinter detail(r.table_header);
      for (const auto& row : r.table_rows) detail.AddRow(row);
      detail.Print(stdout);
      std::printf("\n");
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace qsc

int main(int argc, char** argv) { return qsc::bench::Main(argc, argv); }
