// Machine-readable benchmark reports. One report file per scenario group
// ("BENCH_coloring.json", "BENCH_pipelines.json"), schema-versioned so the
// baseline comparator can refuse documents it does not understand.
//
// Schema v1 (see docs/BENCHMARKING.md for the field contract):
//
//   {
//     "tool": "qsc_bench",
//     "schema_version": 1,
//     "group": "coloring",
//     "suite": "smoke",
//     "seed": 1,
//     "warmup": 1,
//     "repeats": 5,
//     "threads": 1,
//     "scenarios": [
//       {
//         "name": "coloring/rothko-ba-100k-c256",
//         "params":   {"nodes": 100000, ...},   // deterministic
//         "counters": {"num_colors": 256, ...}, // deterministic
//         "timing": {"repeats": 5, "median_s": ..., "mad_s": ...,
//                    "min_s": ..., "max_s": ..., "mean_s": ...},
//         "peak_rss_mib": 123.4
//       }, ...
//     ]
//   }
//
// "params" and "counters" are functions of (scenario, seed) and compare
// exactly across runs; "timing" and "peak_rss_mib" are machine-dependent.
// Doubles render via eval::JsonNumber, so equal values are textually equal.

#ifndef QSC_BENCH_REPORT_H_
#define QSC_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qsc/bench/scenario.h"
#include "qsc/util/status.h"

namespace qsc {
namespace bench {

constexpr int64_t kBenchSchemaVersion = 1;

// One qsc_bench invocation's worth of results (possibly several groups).
struct BenchReport {
  std::string suite;  // "smoke", "full", or "custom" (explicit --scenario)
  uint64_t seed = 1;
  // Worker threads the run used (--threads). Affects only the timing
  // section: counters are bit-identical across thread counts, which the
  // CI counter-identity gate (--compare-counters) enforces.
  int threads = 1;
  MeasureOptions measure;
  std::vector<ScenarioResult> results;
};

// Distinct groups present in `report`, sorted.
std::vector<std::string> ReportGroups(const BenchReport& report);

// Serializes the scenarios of `group` as one schema-v1 JSON document.
// Scenarios appear sorted by name regardless of execution order.
std::string ReportGroupJson(const BenchReport& report,
                            const std::string& group, bool pretty);

// Canonical artifact name for a group: "BENCH_<group>.json".
std::string BenchFileName(const std::string& group);

// Writes `contents` to `path` (error on I/O failure).
Status WriteFile(const std::string& path, const std::string& contents);

}  // namespace bench
}  // namespace qsc

#endif  // QSC_BENCH_REPORT_H_
