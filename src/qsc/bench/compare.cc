#include "qsc/bench/compare.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "qsc/eval/json.h"

namespace qsc {
namespace bench {

const JsonValue* JsonValue::Get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  // Last value wins on duplicates, matching the parser's store order.
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;
  }
  return found;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    Status status = ParseValue(out, /*depth=*/0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return Status::Ok();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return Status::Ok();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return Status::Ok();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        out->kind = JsonValue::Kind::kNull;
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      JsonValue value;
      Status status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as two separate 3-byte sequences; the writer never emits them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("bad number");
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = value;
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// Both null (how JsonNumber renders NaN) or numbers within `rel_tol`
// relative difference (0 demands bitwise equality).
bool NumbersMatch(const JsonValue& a, const JsonValue& b, double rel_tol) {
  if (a.is_null() && b.is_null()) return true;
  if (a.kind != JsonValue::Kind::kNumber ||
      b.kind != JsonValue::Kind::kNumber) {
    return false;
  }
  if (a.number_value == b.number_value) return true;
  const double scale =
      std::max(std::abs(a.number_value), std::abs(b.number_value));
  return std::abs(a.number_value - b.number_value) <= rel_tol * scale;
}

// Checks that every member of baseline object `section` matches `current`
// within the counter tolerance (used for "params" and "counters").
void CompareExactSection(const std::string& scenario, const char* section,
                         const JsonValue* base, const JsonValue* cur,
                         double rel_tol, CompareReport* report) {
  if (base == nullptr) return;  // older baseline without the section
  if (cur == nullptr) {
    report->violations.push_back(
        {scenario, std::string(section) + " section missing in current run"});
    return;
  }
  for (const auto& [key, base_value] : base->object) {
    const JsonValue* cur_value = cur->Get(key);
    if (cur_value == nullptr) {
      report->violations.push_back(
          {scenario, std::string(section) + "." + key +
                         " missing in current run"});
      continue;
    }
    if (!NumbersMatch(base_value, *cur_value, rel_tol)) {
      report->violations.push_back(
          {scenario,
           std::string(section) + "." + key + " drifted: baseline " +
               eval::JsonNumber(base_value.NumberOr(NAN)) + " vs current " +
               eval::JsonNumber(cur_value->NumberOr(NAN)) +
               " (deterministic value changed; bug or stale baseline)"});
    }
  }
}

}  // namespace

Status ParseJson(std::string_view text, JsonValue* out) {
  *out = JsonValue();
  return Parser(text).Parse(out);
}

CompareReport CompareBenchReports(const JsonValue& baseline,
                                  const JsonValue& current,
                                  const CompareOptions& options) {
  CompareReport report;

  const double base_schema =
      baseline.Get("schema_version") != nullptr
          ? baseline.Get("schema_version")->NumberOr(-1)
          : -1;
  const double cur_schema = current.Get("schema_version") != nullptr
                                ? current.Get("schema_version")->NumberOr(-1)
                                : -1;
  if (base_schema != cur_schema) {
    report.violations.push_back(
        {"", "schema_version mismatch: baseline " +
                 eval::JsonNumber(base_schema) + " vs current " +
                 eval::JsonNumber(cur_schema)});
    return report;
  }

  const JsonValue* base_scenarios = baseline.Get("scenarios");
  const JsonValue* cur_scenarios = current.Get("scenarios");
  if (base_scenarios == nullptr || cur_scenarios == nullptr) {
    report.violations.push_back({"", "missing \"scenarios\" array"});
    return report;
  }

  auto find_current = [&](const std::string& name) -> const JsonValue* {
    for (const JsonValue& s : cur_scenarios->array) {
      const JsonValue* n = s.Get("name");
      if (n != nullptr && n->kind == JsonValue::Kind::kString &&
          n->string_value == name) {
        return &s;
      }
    }
    return nullptr;
  };

  // Scenario-set asymmetries are collected and reported as one aggregate
  // violation in counters-only mode (the set mismatch is the finding, not
  // any single scenario), and per-scenario otherwise.
  std::vector<std::string> baseline_only;
  std::vector<std::string> current_only;

  for (const JsonValue& base_s : base_scenarios->array) {
    const JsonValue* name_value = base_s.Get("name");
    if (name_value == nullptr) continue;
    const std::string& name = name_value->string_value;
    const JsonValue* cur_s = find_current(name);
    if (cur_s == nullptr) {
      if (options.counters_only) {
        baseline_only.push_back(name);
      } else {
        report.violations.push_back(
            {name,
             "scenario present in baseline but missing from current run"});
      }
      continue;
    }
    ++report.compared;

    CompareExactSection(name, "params", base_s.Get("params"),
                        cur_s->Get("params"),
                        options.counter_rel_tolerance, &report);
    CompareExactSection(name, "counters", base_s.Get("counters"),
                        cur_s->Get("counters"),
                        options.counter_rel_tolerance, &report);

    if (options.counters_only) continue;  // timings deliberately ignored

    const JsonValue* base_timing = base_s.Get("timing");
    const JsonValue* cur_timing = cur_s->Get("timing");
    const double base_median =
        base_timing != nullptr && base_timing->Get("median_s") != nullptr
            ? base_timing->Get("median_s")->NumberOr(NAN)
            : NAN;
    const double cur_median =
        cur_timing != nullptr && cur_timing->Get("median_s") != nullptr
            ? cur_timing->Get("median_s")->NumberOr(NAN)
            : NAN;
    if (std::isnan(base_median) || std::isnan(cur_median)) {
      report.violations.push_back({name, "timing.median_s missing"});
      continue;
    }
    if (base_median < options.min_median_seconds) {
      report.notes.push_back(name + ": baseline median " +
                             eval::JsonNumber(base_median) +
                             "s below gating floor; timing not compared");
      continue;
    }
    if (cur_median > options.max_slowdown * base_median) {
      report.violations.push_back(
          {name, "median slowdown " +
                     eval::JsonNumber(cur_median / base_median) + "x (" +
                     eval::JsonNumber(base_median) + "s -> " +
                     eval::JsonNumber(cur_median) + "s) exceeds " +
                     eval::JsonNumber(options.max_slowdown) + "x tolerance"});
    }
  }

  for (const JsonValue& cur_s : cur_scenarios->array) {
    const JsonValue* n = cur_s.Get("name");
    if (n == nullptr) continue;
    bool in_baseline = false;
    for (const JsonValue& base_s : base_scenarios->array) {
      const JsonValue* bn = base_s.Get("name");
      if (bn != nullptr && bn->string_value == n->string_value) {
        in_baseline = true;
        break;
      }
    }
    if (!in_baseline) {
      if (options.counters_only) {
        current_only.push_back(n->string_value);
      } else {
        report.notes.push_back(n->string_value +
                               ": new scenario (not in baseline)");
      }
    }
  }

  // Counter-identity runs come from one binary: a scenario present on one
  // side only means the two runs did different work, so the whole set
  // mismatch is one violation with every offending name spelled out.
  if (!baseline_only.empty() || !current_only.empty()) {
    std::string detail = "scenario sets differ";
    const auto append_list = [&detail](const char* label,
                                       const std::vector<std::string>& names) {
      if (names.empty()) return;
      detail += "; only in ";
      detail += label;
      detail += ": ";
      for (size_t i = 0; i < names.size(); ++i) {
        if (i > 0) detail += ", ";
        detail += names[i];
      }
    };
    append_list("baseline", baseline_only);
    append_list("current", current_only);
    detail +=
        " — counter identity needs both reports to cover the same "
        "scenarios; if scenarios were intentionally added or removed, "
        "re-record the committed baseline (docs/BENCHMARKING.md, "
        "\"Updating baselines\")";
    report.violations.push_back({"", std::move(detail)});
  }

  return report;
}

Status ReadFile(const std::string& path, std::string* contents) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open: " + path);
  contents->clear();
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents->append(buffer, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("read error: " + path);
  return Status::Ok();
}

}  // namespace bench
}  // namespace qsc
