// The "dynamic" scenario group (docs/DYNAMIC.md): seeded edit-stream
// churn against a live Compressor session. Each scenario colors a BA
// graph once, then alternates ApplyEdits batches with coloring
// checkpoints — the repair path — and, outside the timed closure,
// recomputes every checkpoint from scratch on the mutated graph.
//
// Gated counters: the edit/repair/fallback/split totals (deterministic
// given the seed — the repair contract makes them a pure function of
// the edit stream) and `abs_q_error_diff_vs_scratch`, the summed
// violation of the dynamic serving bound
//     q_inc <= max(q_scratch, q_tolerance)
// across checkpoints. The committed baseline pins that counter at
// exactly 0: incremental serving is never worse than from-scratch
// recoloring beyond the requested tolerance. Wall-clock comparisons
// (repair vs scratch seconds, the speedup ratio) are machine-dependent
// and land in gauges.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qsc/api/compressor.h"
#include "qsc/bench/scenario.h"
#include "qsc/dynamic/edit_stream.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/parallel/thread_pool.h"
#include "qsc/util/check.h"
#include "qsc/util/random.h"
#include "qsc/util/timer.h"

namespace qsc {
namespace bench {
namespace {

// Shape of one churn scenario: graph size, edit stream, and the one
// ColoringSpec every checkpoint queries.
struct ChurnConfig {
  NodeId num_nodes = 10000;
  int64_t num_batches = 6;
  int64_t edits_per_batch = 16;
  ColorId max_colors = 4096;   // generous: convergence is tolerance-driven
  double q_tolerance = 8.0;    // must be reachable, else repairs can't land
  int64_t max_repair_splits = 256;
};

QueryOptions ChurnQuery(const ChurnConfig& config) {
  QueryOptions options;
  options.max_colors = config.max_colors;
  options.q_tolerance = config.q_tolerance;
  return options;
}

void RegisterChurn(const char* name, const char* description,
                   uint64_t salt, const ChurnConfig& config) {
  Scenario::Info info;
  info.name = name;
  info.group = "dynamic";
  info.description = description;
  info.smoke = true;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info), [salt, config](const BenchContext& ctx) {
        const uint64_t seed = ctx.seed ^ salt;
        Rng rng(seed);
        const Graph ba = BarabasiAlbert(config.num_nodes, 3, rng);
        const Graph g =
            Graph::FromArcs(ba.num_nodes(), ba.Arcs(), /*undirected=*/false);

        // The edit stream is part of the instance, not the measured work.
        dynamic::EditStreamOptions stream;
        stream.seed = seed + 1;
        stream.num_batches = config.num_batches;
        stream.edits_per_batch = config.edits_per_batch;
        StatusOr<std::vector<std::vector<dynamic::EditOp>>> batches =
            dynamic::GenerateEditBatches(g, stream);
        QSC_CHECK_OK(batches);

        const QueryOptions query = ChurnQuery(config);
        EditApplyOptions apply;
        apply.max_repair_splits = config.max_repair_splits;

        // The measured unit: a cold session colors the graph once, then
        // serves every edit batch through ApplyEdits (repairing the
        // cached coloring in place) with a coloring checkpoint after
        // each batch. Counters come from the last repeat.
        int64_t edits_applied = 0, repairs = 0, fallbacks = 0;
        int64_t repair_splits = 0;
        double q_checkpoint_sum = 0.0;
        double repair_seconds = 0.0;
        ColorId final_colors = 0;
        std::vector<double> q_inc(batches->size(), 0.0);
        ScenarioResult r;
        r.timing = MeasureSeconds(ctx.measure, [&] {
          edits_applied = repairs = fallbacks = repair_splits = 0;
          q_checkpoint_sum = 0.0;
          repair_seconds = 0.0;
          Compressor session(
              std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(),
                                           &g),
              DefaultPool());
          StatusOr<ColoringResult> warm = session.Coloring(query);
          QSC_CHECK_OK(warm);
          WallTimer timer;
          for (size_t b = 0; b < batches->size(); ++b) {
            StatusOr<EditApplyResult> applied =
                session.ApplyEdits((*batches)[b], apply);
            QSC_CHECK_OK(applied);
            edits_applied += applied->edits_applied;
            repairs += applied->repairs;
            fallbacks += applied->fallbacks;
            repair_splits += applied->repair_splits;
            StatusOr<ColoringResult> checkpoint = session.Coloring(query);
            QSC_CHECK_OK(checkpoint);
            q_inc[b] = checkpoint->max_q;
            q_checkpoint_sum += checkpoint->max_q;
            final_colors = checkpoint->coloring->num_colors();
          }
          repair_seconds = timer.ElapsedSeconds();
        });

        // The from-scratch oracle, outside the timed closure: replay the
        // edit stream on a plain Graph and recolor each checkpoint in a
        // fresh session. The bound counter sums how far each incremental
        // checkpoint lands above max(scratch, tolerance) — gated at 0.
        double abs_diff = 0.0;
        double scratch_seconds = 0.0;
        Graph current = g;
        for (size_t b = 0; b < batches->size(); ++b) {
          StatusOr<Graph> next =
              dynamic::ApplyEditBatch(current, (*batches)[b]);
          QSC_CHECK_OK(next);
          current = std::move(next).value();
          Compressor scratch(
              std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(),
                                           &current),
              DefaultPool());
          WallTimer timer;
          StatusOr<ColoringResult> cold = scratch.Coloring(query);
          scratch_seconds += timer.ElapsedSeconds();
          QSC_CHECK_OK(cold);
          abs_diff += std::max(
              0.0, q_inc[b] - std::max(cold->max_q, config.q_tolerance));
        }

        r.params = {
            {"nodes", static_cast<double>(g.num_nodes())},
            {"arcs", static_cast<double>(g.num_arcs())},
            {"batches", static_cast<double>(config.num_batches)},
            {"edits_per_batch",
             static_cast<double>(config.edits_per_batch)},
            {"max_colors", static_cast<double>(config.max_colors)},
            {"q_tolerance", config.q_tolerance},
            {"max_repair_splits",
             static_cast<double>(config.max_repair_splits)},
        };
        r.counters = {
            {"edits_applied", static_cast<double>(edits_applied)},
            {"repairs", static_cast<double>(repairs)},
            {"fallbacks", static_cast<double>(fallbacks)},
            {"repair_splits", static_cast<double>(repair_splits)},
            {"final_colors", static_cast<double>(final_colors)},
            {"q_checkpoint_sum", q_checkpoint_sum},
            {"abs_q_error_diff_vs_scratch", abs_diff},
        };
        r.gauges = {
            {"repair_seconds", repair_seconds},
            {"scratch_seconds", scratch_seconds},
            {"repair_speedup",
             scratch_seconds / std::max(repair_seconds, 1e-12)},
        };
        return r;
      }));
}

}  // namespace

void RegisterDynamicScenarios() {
  {
    ChurnConfig config;
    config.num_nodes = 10000;
    config.num_batches = 6;
    config.edits_per_batch = 16;
    RegisterChurn(
        "dynamic/recolor-churn-ba-10k",
        "6 batches of 16 mixed insert/delete/update edits against a live "
        "session on a 10k-node BA graph, coloring after each batch; gates "
        "the incremental-vs-scratch q-error drift at exactly 0 plus the "
        "repair/fallback counters",
        0xd1a0, config);
  }
  {
    ChurnConfig config;
    config.num_nodes = 100000;
    config.num_batches = 4;
    config.edits_per_batch = 32;
    RegisterChurn(
        "dynamic/recolor-churn-ba-100k",
        "4 batches of 32 mixed edits on a 100k-node BA graph — the "
        "full-size churn run whose gauges track how much cheaper repairing "
        "the cached coloring is than from-scratch recompute per checkpoint",
        0xd1a1, config);
  }
}

}  // namespace bench
}  // namespace qsc
