// Robust summary statistics for benchmark samples. Wall-clock repeats on
// shared machines are contaminated by one-sided noise (scheduler
// preemption, cache pollution), so the harness reports median and MAD
// (median absolute deviation) instead of mean/stddev: both are insensitive
// to a minority of slow outliers, which is exactly the contamination model
// of a busy CI runner.

#ifndef QSC_BENCH_STATS_H_
#define QSC_BENCH_STATS_H_

#include <cstdint>
#include <vector>

namespace qsc {
namespace bench {

struct SampleStats {
  int64_t count = 0;
  double median = 0.0;
  double mad = 0.0;  // median(|x_i - median|)
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

// Summarizes `samples`; all fields are 0 for empty input. Median follows
// qsc::Median (average of the two middle elements for even sizes).
SampleStats Summarize(std::vector<double> samples);

}  // namespace bench
}  // namespace qsc

#endif  // QSC_BENCH_STATS_H_
