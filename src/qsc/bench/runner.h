// The measurement core of the perf harness: steady-clock timing with
// warmup and repeats, summarized robustly (median/MAD, see stats.h), plus
// peak-RSS sampling. Scenario code supplies a closure that performs one
// complete unit of work; the runner owns the repetition protocol so every
// scenario measures the same way.

#ifndef QSC_BENCH_RUNNER_H_
#define QSC_BENCH_RUNNER_H_

#include <functional>

#include "qsc/bench/stats.h"

namespace qsc {
namespace bench {

struct MeasureOptions {
  // Un-timed runs before measurement starts (cache/branch-predictor/page
  // warmup; the first run also absorbs lazy allocations).
  int warmup = 1;
  // Timed runs; the reported median is over these.
  int repeats = 5;
};

struct Measurement {
  SampleStats seconds;  // per-repeat wall-clock seconds (steady clock)
  // Process peak resident-set size sampled after the last repeat, in MiB.
  // A high-water mark (the OS never lowers it), so it is informational:
  // attributable to a scenario only when scenarios run largest-last or in
  // separate processes. 0 when the platform offers no getrusage.
  double peak_rss_mib = 0.0;
};

// Runs `fn` warmup+repeats times and summarizes the timed repeats.
Measurement MeasureSeconds(const MeasureOptions& options,
                           const std::function<void()>& fn);

// Current process peak RSS in MiB; 0 when unavailable. A high-water
// mark: the OS never lowers it, so deltas across a scenario only show
// growth past the previous maximum.
double PeakRssMib();

// Current (not peak) resident-set size in MiB from /proc/self/statm;
// 0 when the platform has no procfs. Unlike PeakRssMib this moves both
// ways, so before/after deltas attribute footprint to a specific phase
// (the serving/mmap-* RSS gauges rely on this).
double CurrentRssMib();

}  // namespace bench
}  // namespace qsc

#endif  // QSC_BENCH_RUNNER_H_
