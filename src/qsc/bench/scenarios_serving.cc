// The "serving" scenario group (docs/SERVING.md): seeded workload traces
// replayed against one Compressor session by the qsc/workload load
// runner, measuring end-to-end service behavior — throughput, tail
// latency, cache amortization — rather than a single kernel.
//
// The split between gated and reported values follows the load runner's
// determinism contract: params and counters are pure functions of
// (seed), bitwise identical for any --threads value (the CI serving gate
// compares --threads 1 against 4), while tail latencies, qps, and the
// cache byte/hit gauges land in ScenarioResult::gauges — serialized for
// trend tracking, never compared against baselines.

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qsc/api/compressor.h"
#include "qsc/bench/scenario.h"
#include "qsc/graph/generators.h"
#include "qsc/lp/generators.h"
#include "qsc/parallel/thread_pool.h"
#include "qsc/util/check.h"
#include "qsc/util/random.h"
#include "qsc/workload/load_runner.h"
#include "qsc/workload/trace.h"

namespace qsc {
namespace bench {
namespace {

// A 1500-node directed scale-free graph: large enough that a cold
// coloring is measurable work, small enough that a few hundred mixed
// queries stay inside a CI smoke budget.
Graph DirectedBa1500(uint64_t seed) {
  Rng rng(seed);
  const Graph ba = BarabasiAlbert(1500, 3, rng);
  return Graph::FromArcs(ba.num_nodes(), ba.Arcs(), /*undirected=*/false);
}

// Shared trace shape of both serving scenarios; only the arrival model
// (and the session's byte budget) differs.
workload::TraceGenOptions ServingTraceOptions(uint64_t seed) {
  workload::TraceGenOptions options;
  options.seed = seed;
  options.num_events = 300;
  options.num_specs = 10;
  options.budgets = {8, 16, 32, 64};
  options.batch_size = 4;
  return options;
}

std::vector<LpProblem> ServingLpUniverse(uint64_t seed) {
  BlockLpSpec spec;
  spec.num_row_groups = 4;
  spec.num_col_groups = 4;
  spec.rows_per_group = 4;
  spec.cols_per_group = 4;
  spec.seed = seed;
  return {Figure3Lp(), MakeBlockLp(spec)};
}

// Fills the result's params/counters/gauges from one load run. The
// deterministic counters are the load runner's (per-kind counts and
// result checksums); everything schedule-dependent goes to gauges.
void FillServingResult(const workload::LoadReport& report,
                       ScenarioResult* r) {
  r->counters = {
      {"total_queries", static_cast<double>(report.total_queries)},
      {"failed_queries", static_cast<double>(report.failed_queries)},
  };
  for (int k = 0; k < workload::kNumQueryKinds; ++k) {
    const std::string kind =
        workload::QueryKindName(static_cast<workload::QueryKind>(k));
    r->counters.push_back(
        {kind + "_queries", static_cast<double>(report.kind_counts[k])});
    r->counters.push_back({kind + "_checksum", report.kind_checksums[k]});
  }
  const CacheStats& cache = report.session_stats.coloring;
  r->gauges = {
      {"qps", report.qps},
      {"latency_p50_ms", report.latency_p50_s * 1e3},
      {"latency_p95_ms", report.latency_p95_s * 1e3},
      {"latency_p99_ms", report.latency_p99_s * 1e3},
      {"latency_max_ms", report.latency_max_s * 1e3},
      {"cache_hits", static_cast<double>(cache.hits)},
      {"cache_misses", static_cast<double>(cache.misses)},
      {"cache_recolorings", static_cast<double>(cache.recolorings)},
      {"cache_evictions", static_cast<double>(cache.evictions)},
      {"cache_bytes_in_use", static_cast<double>(cache.bytes_in_use)},
      {"cache_peak_bytes", static_cast<double>(cache.peak_bytes)},
      {"lp_hits", static_cast<double>(report.session_stats.lp_hits)},
  };
}

// Registers one serving scenario: `generator` drives the trace,
// `byte_budget` configures the session's coloring cache (0 = unbounded).
// Every repeat replays the same trace against a *fresh* session — the
// measured unit is a cold service warming its cache over the trace.
void RegisterServing(const char* name, const char* description,
                     const char* generator, uint64_t salt,
                     int64_t byte_budget) {
  Scenario::Info info;
  info.name = name;
  info.group = "serving";
  info.description = description;
  info.smoke = true;
  const std::string generator_name = generator;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info),
      [generator_name, salt, byte_budget](const BenchContext& ctx) {
        const uint64_t seed = ctx.seed ^ salt;
        const Graph g = DirectedBa1500(seed);
        const workload::TraceGenOptions trace_options =
            ServingTraceOptions(seed);
        StatusOr<std::unique_ptr<workload::TraceSource>> source =
            workload::MakeTraceSource(generator_name, trace_options);
        QSC_CHECK_OK(source);
        const std::vector<workload::TraceEvent> trace =
            workload::DrainTrace(**source);

        workload::LoadRunnerOptions load_options;
        load_options.num_client_threads = ctx.threads;
        load_options.lp_universe = ServingLpUniverse(seed);
        CompressorOptions session_options;
        session_options.coloring_cache_byte_budget = byte_budget;

        workload::LoadReport report;
        ScenarioResult r;
        r.timing = MeasureSeconds(ctx.measure, [&] {
          Compressor session(
              std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(),
                                           &g),
              DefaultPool(), session_options);
          StatusOr<workload::LoadReport> run =
              workload::RunLoad(session, trace, load_options);
          QSC_CHECK_OK(run);
          report = std::move(run).value();
        });

        r.params = {
            {"nodes", static_cast<double>(g.num_nodes())},
            {"arcs", static_cast<double>(g.num_arcs())},
            {"events", static_cast<double>(trace_options.num_events)},
            {"specs", static_cast<double>(trace_options.num_specs)},
            {"budget_rungs",
             static_cast<double>(trace_options.budgets.size())},
            {"batch_size", static_cast<double>(trace_options.batch_size)},
            {"cache_byte_budget", static_cast<double>(byte_budget)},
        };
        FillServingResult(report, &r);

        if (byte_budget > 0) {
          // Eviction-transparency witness, outside the timed closure: an
          // unbudgeted single-client replay must produce bitwise equal
          // checksums (evicted specs recompute deterministically). The
          // committed baseline gates the diff at exactly 0.
          Compressor reference(
              std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(),
                                           &g),
              DefaultPool());
          workload::LoadRunnerOptions serial = load_options;
          serial.num_client_threads = 1;
          StatusOr<workload::LoadReport> want =
              workload::RunLoad(reference, trace, serial);
          QSC_CHECK_OK(want);
          double abs_diff = 0.0;
          for (int k = 0; k < workload::kNumQueryKinds; ++k) {
            abs_diff += std::abs(report.kind_checksums[k] -
                                 want->kind_checksums[k]);
          }
          abs_diff += std::abs(
              static_cast<double>(report.failed_queries -
                                  want->failed_queries));
          r.counters.push_back({"abs_diff_vs_unbudgeted", abs_diff});
        }
        return r;
      }));
}

}  // namespace

void RegisterServingScenarios() {
  RegisterServing(
      "serving/mixed-poisson-ba1500",
      "300 mixed coloring/flow/LP/centrality queries (Poisson arrivals, "
      "Zipf spec skew) replayed against one Compressor session on a "
      "1500-node BA graph by --threads client threads",
      "poisson-zipf-mixed", 0x9a0e, /*byte_budget=*/0);
  RegisterServing(
      "serving/bursty-churn-ba1500",
      "the same mixed workload with bursty on/off arrivals against a "
      "4 MiB byte-budgeted coloring cache (LRU eviction churn; checksums "
      "gated bitwise against an unbudgeted replay)",
      "bursty-zipf-mixed", 0x9a0f, /*byte_budget=*/4 << 20);
}

}  // namespace bench
}  // namespace qsc
