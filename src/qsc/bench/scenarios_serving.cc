// The "serving" scenario group (docs/SERVING.md): seeded workload traces
// replayed against one Compressor session by the qsc/workload load
// runner, measuring end-to-end service behavior — throughput, tail
// latency, cache amortization — rather than a single kernel.
//
// The split between gated and reported values follows the load runner's
// determinism contract: params and counters are pure functions of
// (seed), bitwise identical for any --threads value (the CI serving gate
// compares --threads 1 against 4), while tail latencies, qps, and the
// cache byte/hit gauges land in ScenarioResult::gauges — serialized for
// trend tracking, never compared against baselines.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "qsc/api/compressor.h"
#include "qsc/bench/scenario.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/io.h"
#include "qsc/lp/generators.h"
#include "qsc/parallel/thread_pool.h"
#include "qsc/util/check.h"
#include "qsc/util/random.h"
#include "qsc/workload/load_runner.h"
#include "qsc/workload/trace.h"

namespace qsc {
namespace bench {
namespace {

// A 1500-node directed scale-free graph: large enough that a cold
// coloring is measurable work, small enough that a few hundred mixed
// queries stay inside a CI smoke budget.
Graph DirectedBa1500(uint64_t seed) {
  Rng rng(seed);
  const Graph ba = BarabasiAlbert(1500, 3, rng);
  return Graph::FromArcs(ba.num_nodes(), ba.Arcs(), /*undirected=*/false);
}

// Shared trace shape of both serving scenarios; only the arrival model
// (and the session's byte budget) differs.
workload::TraceGenOptions ServingTraceOptions(uint64_t seed) {
  workload::TraceGenOptions options;
  options.seed = seed;
  options.num_events = 300;
  options.num_specs = 10;
  options.budgets = {8, 16, 32, 64};
  options.batch_size = 4;
  return options;
}

std::vector<LpProblem> ServingLpUniverse(uint64_t seed) {
  BlockLpSpec spec;
  spec.num_row_groups = 4;
  spec.num_col_groups = 4;
  spec.rows_per_group = 4;
  spec.cols_per_group = 4;
  spec.seed = seed;
  return {Figure3Lp(), MakeBlockLp(spec)};
}

// Fills the result's params/counters/gauges from one load run. The
// deterministic counters are the load runner's (per-kind counts and
// result checksums); everything schedule-dependent goes to gauges.
void FillServingResult(const workload::LoadReport& report,
                       ScenarioResult* r) {
  r->counters = {
      {"total_queries", static_cast<double>(report.total_queries)},
      {"failed_queries", static_cast<double>(report.failed_queries)},
  };
  for (int k = 0; k < workload::kNumQueryKinds; ++k) {
    const std::string kind =
        workload::QueryKindName(static_cast<workload::QueryKind>(k));
    r->counters.push_back(
        {kind + "_queries", static_cast<double>(report.kind_counts[k])});
    r->counters.push_back({kind + "_checksum", report.kind_checksums[k]});
  }
  const CacheStats& cache = report.session_stats.coloring;
  r->gauges = {
      {"qps", report.qps},
      {"latency_p50_ms", report.latency_p50_s * 1e3},
      {"latency_p95_ms", report.latency_p95_s * 1e3},
      {"latency_p99_ms", report.latency_p99_s * 1e3},
      {"latency_max_ms", report.latency_max_s * 1e3},
      {"cache_hits", static_cast<double>(cache.hits)},
      {"cache_misses", static_cast<double>(cache.misses)},
      {"cache_recolorings", static_cast<double>(cache.recolorings)},
      {"cache_evictions", static_cast<double>(cache.evictions)},
      {"cache_bytes_in_use", static_cast<double>(cache.bytes_in_use)},
      {"cache_peak_bytes", static_cast<double>(cache.peak_bytes)},
      {"lp_hits", static_cast<double>(report.session_stats.lp_hits)},
  };
}

// Registers one serving scenario: `generator` drives the trace,
// `byte_budget` configures the session's coloring cache (0 = unbounded).
// Every repeat replays the same trace against a *fresh* session — the
// measured unit is a cold service warming its cache over the trace.
void RegisterServing(const char* name, const char* description,
                     const char* generator, uint64_t salt,
                     int64_t byte_budget) {
  Scenario::Info info;
  info.name = name;
  info.group = "serving";
  info.description = description;
  info.smoke = true;
  const std::string generator_name = generator;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info),
      [generator_name, salt, byte_budget](const BenchContext& ctx) {
        const uint64_t seed = ctx.seed ^ salt;
        const Graph g = DirectedBa1500(seed);
        const workload::TraceGenOptions trace_options =
            ServingTraceOptions(seed);
        StatusOr<std::unique_ptr<workload::TraceSource>> source =
            workload::MakeTraceSource(generator_name, trace_options);
        QSC_CHECK_OK(source);
        const std::vector<workload::TraceEvent> trace =
            workload::DrainTrace(**source);

        workload::LoadRunnerOptions load_options;
        load_options.num_client_threads = ctx.threads;
        load_options.lp_universe = ServingLpUniverse(seed);
        CompressorOptions session_options;
        session_options.coloring_cache_byte_budget = byte_budget;

        workload::LoadReport report;
        ScenarioResult r;
        r.timing = MeasureSeconds(ctx.measure, [&] {
          Compressor session(
              std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(),
                                           &g),
              DefaultPool(), session_options);
          StatusOr<workload::LoadReport> run =
              workload::RunLoad(session, trace, load_options);
          QSC_CHECK_OK(run);
          report = std::move(run).value();
        });

        r.params = {
            {"nodes", static_cast<double>(g.num_nodes())},
            {"arcs", static_cast<double>(g.num_arcs())},
            {"events", static_cast<double>(trace_options.num_events)},
            {"specs", static_cast<double>(trace_options.num_specs)},
            {"budget_rungs",
             static_cast<double>(trace_options.budgets.size())},
            {"batch_size", static_cast<double>(trace_options.batch_size)},
            {"cache_byte_budget", static_cast<double>(byte_budget)},
        };
        FillServingResult(report, &r);

        if (byte_budget > 0) {
          // Eviction-transparency witness, outside the timed closure: an
          // unbudgeted single-client replay must produce bitwise equal
          // checksums (evicted specs recompute deterministically). The
          // committed baseline gates the diff at exactly 0.
          Compressor reference(
              std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(),
                                           &g),
              DefaultPool());
          workload::LoadRunnerOptions serial = load_options;
          serial.num_client_threads = 1;
          StatusOr<workload::LoadReport> want =
              workload::RunLoad(reference, trace, serial);
          QSC_CHECK_OK(want);
          double abs_diff = 0.0;
          for (int k = 0; k < workload::kNumQueryKinds; ++k) {
            abs_diff += std::abs(report.kind_checksums[k] -
                                 want->kind_checksums[k]);
          }
          abs_diff += std::abs(
              static_cast<double>(report.failed_queries -
                                  want->failed_queries));
          r.counters.push_back({"abs_diff_vs_unbudgeted", abs_diff});
        }
        return r;
      }));
}

// ---------------------------------------------------------------------------
// The mmap serving scenarios: Compressor::FromFile answering queries
// straight off a GraphView of a qsc-bin mapping, gated bitwise against
// the materialized in-memory path (the GraphView bit-identity invariant,
// docs/ARCHITECTURE.md) and published with the view-vs-materialized
// resident-footprint gauges.

std::string TempBinPath(const char* stem, uint64_t seed) {
  const char* dir = std::getenv("TMPDIR");
  const std::string base = (dir != nullptr && *dir != '\0') ? dir : "/tmp";
  return base + "/" + stem + "-" + std::to_string(seed) + ".qscbin";
}

// Order-sensitive partition digest: any relabeling, reassignment, or
// q-error drift moves it.
double ColoringChecksum(const ColoringResult& r) {
  const Partition& p = *r.coloring;
  double sum = r.max_q + static_cast<double>(p.num_colors());
  for (NodeId v = 0; v < p.num_nodes(); ++v) {
    sum += static_cast<double>(p.ColorOf(v)) * static_cast<double>(v % 97 + 1);
  }
  return sum;
}

// One deterministic query per kind — all five the Compressor serves.
struct ServeChecksums {
  double coloring = 0.0;
  double maxflow = 0.0;
  double maxflow_batch = 0.0;
  double solvelp = 0.0;
  double centrality = 0.0;

  double AbsDiff(const ServeChecksums& o) const {
    return std::abs(coloring - o.coloring) + std::abs(maxflow - o.maxflow) +
           std::abs(maxflow_batch - o.maxflow_batch) +
           std::abs(solvelp - o.solvelp) +
           std::abs(centrality - o.centrality);
  }
};

ServeChecksums ServeFiveKinds(Compressor& session, uint64_t seed) {
  ServeChecksums sums;
  {
    QueryOptions options;
    options.max_colors = 32;
    const StatusOr<ColoringResult> r = session.Coloring(options);
    QSC_CHECK_OK(r);
    sums.coloring = ColoringChecksum(*r);
  }
  {
    QueryOptions options;
    options.max_colors = 24;
    const StatusOr<FlowQueryResult> r = session.MaxFlow(0, 42, options);
    QSC_CHECK_OK(r);
    sums.maxflow = r->upper_bound + static_cast<double>(r->num_colors);
  }
  {
    QueryOptions options;
    options.max_colors = 24;
    const std::vector<std::pair<NodeId, NodeId>> pairs = {
        {1, 9}, {3, 27}, {0, 42}};
    const StatusOr<std::vector<FlowQueryResult>> r =
        session.MaxFlowBatch(pairs, options);
    QSC_CHECK_OK(r);
    for (const FlowQueryResult& q : *r) sums.maxflow_batch += q.upper_bound;
  }
  {
    QueryOptions options;
    options.max_colors = 8;
    const StatusOr<LpQueryResult> r = session.SolveLp(Figure3Lp(), options);
    QSC_CHECK_OK(r);
    for (const double x : r->lifted_x) sums.solvelp += x;
  }
  {
    QueryOptions options;
    options.max_colors = 16;
    options.seed = seed;
    const StatusOr<CentralityQueryResult> r = session.Centrality(options);
    QSC_CHECK_OK(r);
    for (const double s : r->scores) sums.centrality += s;
  }
  return sums;
}

// serving/mmap-identity-ba1500: all five query kinds served from a
// FromFile (mmap GraphView) session, counters gated bitwise against the
// materialized in-memory session, plus a copy-on-write witness (the
// first ApplyEdits on the mapped session materializes, and post-edit
// colorings must still match).
void RegisterMmapIdentity() {
  Scenario::Info info;
  info.name = "serving/mmap-identity-ba1500";
  info.group = "serving";
  info.description =
      "all five query kinds (coloring/flow/batch/LP/centrality) answered "
      "by a zero-copy Compressor::FromFile session over a qsc-bin "
      "mapping, checksums gated bitwise against the materialized "
      "in-memory path, plus a copy-on-write post-edit identity witness";
  info.smoke = true;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info), [](const BenchContext& ctx) {
        const uint64_t seed = ctx.seed ^ 0x9a10;
        const Graph g = DirectedBa1500(seed);
        const std::string path = TempBinPath("qsc-bench-mmap-identity", seed);
        QSC_CHECK_OK(WriteBinary(g, path));

        // Reference sweep on the materialized in-memory session.
        ServeChecksums want;
        {
          Compressor materialized(
              std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(),
                                           &g),
              DefaultPool());
          want = ServeFiveKinds(materialized, seed);
        }

        // Measured unit: open the mapping cold and serve the sweep.
        ServeChecksums got;
        ScenarioResult r;
        r.timing = MeasureSeconds(ctx.measure, [&] {
          StatusOr<Compressor> session =
              Compressor::FromFile(path, DefaultPool());
          QSC_CHECK_OK(session);
          got = ServeFiveKinds(*session, seed);
        });

        // Copy-on-write witness, outside the timed closure: an edit
        // batch against the mapped session materializes an owning graph
        // and must leave it serving identically to the in-memory
        // session after the same batch.
        double post_edit_abs_diff = 0.0;
        {
          const StatusOr<std::vector<dynamic::EditOp>> edits =
              dynamic::GenerateEdits(g, dynamic::EditKind::kInsertEdge,
                                     /*count=*/8, seed);
          QSC_CHECK_OK(edits);
          Compressor materialized(
              std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(),
                                           &g),
              DefaultPool());
          StatusOr<Compressor> mapped =
              Compressor::FromFile(path, DefaultPool());
          QSC_CHECK_OK(mapped);
          QSC_CHECK_OK(materialized.ApplyEdits(*edits));
          QSC_CHECK_OK(mapped->ApplyEdits(*edits));
          QueryOptions options;
          options.max_colors = 32;
          const StatusOr<ColoringResult> a = materialized.Coloring(options);
          const StatusOr<ColoringResult> b = mapped->Coloring(options);
          QSC_CHECK_OK(a);
          QSC_CHECK_OK(b);
          post_edit_abs_diff =
              std::abs(ColoringChecksum(*a) - ColoringChecksum(*b));
        }
        std::remove(path.c_str());

        r.params = {
            {"nodes", static_cast<double>(g.num_nodes())},
            {"arcs", static_cast<double>(g.num_arcs())},
            {"query_kinds", 5.0},
        };
        r.counters = {
            {"coloring_checksum", got.coloring},
            {"maxflow_checksum", got.maxflow},
            {"maxflow_batch_checksum", got.maxflow_batch},
            {"solvelp_checksum", got.solvelp},
            {"centrality_checksum", got.centrality},
            // The tentpole gate: the mmap view path answers bitwise
            // identically to the materialized path. Committed as 0.
            {"abs_diff_view_vs_materialized", got.AbsDiff(want)},
            {"abs_diff_post_edit", post_edit_abs_diff},
        };
        return r;
      }));
}

// serving/mmap-rss-ba1m (full suite): the resident-footprint gauge on a
// million-node graph. The generator graph is freed before measurement;
// the deltas attribute RSS to the view-serving phase and to the
// materialization that a graph() call adds on top of it.
void RegisterMmapRss() {
  Scenario::Info info;
  info.name = "serving/mmap-rss-ba1m";
  info.group = "serving";
  info.description =
      "peak/current-RSS gauges for zero-copy serving of a 1M-node BA "
      "graph written to qsc-bin at setup: rss_view_serving_mib is the "
      "footprint of FromFile + one coloring query off the mapping, "
      "rss_materialize_extra_mib what materializing the owning Graph "
      "adds on top";
  info.smoke = false;
  ScenarioRegistry::Global().Register(Scenario(
      std::move(info), [](const BenchContext& ctx) {
        const uint64_t seed = ctx.seed ^ 0x9a11;
        const std::string path = TempBinPath("qsc-bench-mmap-rss", seed);
        ScenarioResult r;
        {
          Rng rng(seed);
          const Graph g = BarabasiAlbert(1000000, 3, rng);
          QSC_CHECK_OK(WriteBinary(g, path));
          r.params = {
              {"nodes", static_cast<double>(g.num_nodes())},
              {"arcs", static_cast<double>(g.num_arcs())},
              {"max_colors", 8.0},
          };
        }  // the generator graph is freed here

        QueryOptions options;
        options.max_colors = 8;

        const double rss_before = CurrentRssMib();
        double rss_view = 0.0;
        double rss_materialized = 0.0;
        double view_checksum = 0.0;
        {
          StatusOr<Compressor> session = Compressor::FromFile(path);
          QSC_CHECK_OK(session);
          const StatusOr<ColoringResult> c = session->Coloring(options);
          QSC_CHECK_OK(c);
          view_checksum = ColoringChecksum(*c);
          rss_view = CurrentRssMib();
          // Force the copy-on-read materialization the view path avoids.
          const Graph& materialized = session->graph();
          QSC_CHECK_EQ(materialized.num_nodes(), 1000000);
          rss_materialized = CurrentRssMib();
        }

        // Measured unit: cold open + one coloring query, pure view path.
        r.timing = MeasureSeconds(ctx.measure, [&] {
          StatusOr<Compressor> session = Compressor::FromFile(path);
          QSC_CHECK_OK(session);
          QSC_CHECK_OK(session->Coloring(options));
        });
        std::remove(path.c_str());

        r.counters = {{"coloring_checksum", view_checksum}};
        r.gauges = {
            {"rss_before_mib", rss_before},
            {"rss_view_serving_mib", rss_view - rss_before},
            {"rss_materialize_extra_mib", rss_materialized - rss_view},
            {"peak_rss_mib", PeakRssMib()},
        };
        return r;
      }));
}

}  // namespace

void RegisterServingScenarios() {
  RegisterServing(
      "serving/mixed-poisson-ba1500",
      "300 mixed coloring/flow/LP/centrality queries (Poisson arrivals, "
      "Zipf spec skew) replayed against one Compressor session on a "
      "1500-node BA graph by --threads client threads",
      "poisson-zipf-mixed", 0x9a0e, /*byte_budget=*/0);
  RegisterServing(
      "serving/bursty-churn-ba1500",
      "the same mixed workload with bursty on/off arrivals against a "
      "4 MiB byte-budgeted coloring cache (LRU eviction churn; checksums "
      "gated bitwise against an unbudgeted replay)",
      "bursty-zipf-mixed", 0x9a0f, /*byte_budget=*/4 << 20);
  RegisterMmapIdentity();
  RegisterMmapRss();
}

}  // namespace bench
}  // namespace qsc
