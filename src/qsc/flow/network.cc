#include "qsc/flow/network.h"

namespace qsc {

ResidualNetwork ResidualNetwork::FromGraph(const Graph& g) {
  ResidualNetwork net(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NeighborEntry& e : g.OutNeighbors(u)) {
      QSC_CHECK_GE(e.weight, 0.0);
      net.AddArc(u, e.node, e.weight);
    }
  }
  return net;
}

int64_t ResidualNetwork::AddArc(NodeId u, NodeId v, double cap) {
  QSC_CHECK_GE(cap, 0.0);
  const int64_t id = static_cast<int64_t>(arcs_.size());
  arcs_.push_back({v, cap});
  arcs_.push_back({u, 0.0});
  adj_[u].push_back(id);
  adj_[v].push_back(id + 1);
  return id;
}

}  // namespace qsc
