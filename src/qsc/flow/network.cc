#include "qsc/flow/network.h"

#include <algorithm>

namespace qsc {

ResidualNetwork ResidualNetwork::FromGraph(const GraphView& g) {
  const NodeId n = g.num_nodes();
  ResidualNetwork net(n);
  net.arcs_.reserve(2 * g.num_arcs());

  // Pass 1: row sizes. Node u's row holds one forward arc per
  // out-neighbor and one reverse arc per in-neighbor.
  for (NodeId u = 0; u < n; ++u) {
    net.arc_offsets_[u + 1] = g.OutDegree(u) + g.InDegree(u);
  }
  for (NodeId u = 0; u < n; ++u) {
    net.arc_offsets_[u + 1] += net.arc_offsets_[u];
  }

  // Pass 2: place arc ids in creation order — ascending within each row,
  // matching what per-node AddArc appends would have produced.
  net.arc_ids_.assign(2 * g.num_arcs(), 0);
  std::vector<int64_t> cursor(net.arc_offsets_.begin(),
                              net.arc_offsets_.end() - 1);
  for (NodeId u = 0; u < n; ++u) {
    for (const NeighborEntry& e : g.OutNeighbors(u)) {
      QSC_CHECK_GE(e.weight, 0.0);
      const int64_t id = static_cast<int64_t>(net.arcs_.size());
      net.arcs_.push_back({e.node, e.weight});
      net.arcs_.push_back({u, 0.0});
      net.arc_ids_[cursor[u]++] = id;
      net.arc_ids_[cursor[e.node]++] = id + 1;
    }
  }
  return net;
}

int64_t ResidualNetwork::AddArc(NodeId u, NodeId v, double cap) {
  QSC_CHECK_GE(cap, 0.0);
  QSC_DCHECK(u >= 0 && u < num_nodes_);
  QSC_DCHECK(v >= 0 && v < num_nodes_);
  const int64_t id = static_cast<int64_t>(arcs_.size());
  arcs_.push_back({v, cap});
  arcs_.push_back({u, 0.0});
  finalized_ = false;
  return id;
}

void ResidualNetwork::Finalize() {
  if (finalized_) return;
  const int64_t m = num_arcs();
  std::fill(arc_offsets_.begin(), arc_offsets_.end(), 0);
  for (int64_t id = 0; id < m; ++id) {
    ++arc_offsets_[tail(id) + 1];
  }
  for (NodeId u = 0; u < num_nodes_; ++u) {
    arc_offsets_[u + 1] += arc_offsets_[u];
  }
  arc_ids_.assign(m, 0);
  std::vector<int64_t> cursor(arc_offsets_.begin(), arc_offsets_.end() - 1);
  for (int64_t id = 0; id < m; ++id) {
    arc_ids_[cursor[tail(id)]++] = id;
  }
  finalized_ = true;
}

}  // namespace qsc
