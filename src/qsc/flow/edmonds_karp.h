// Edmonds-Karp max-flow (BFS augmenting paths). O(V * E^2); used as the
// simple reference implementation that the faster solvers (Dinic,
// push-relabel — the paper's exact baseline of Sec 6.1) are tested against.

#ifndef QSC_FLOW_EDMONDS_KARP_H_
#define QSC_FLOW_EDMONDS_KARP_H_

#include "qsc/flow/network.h"
#include "qsc/graph/graph_view.h"

namespace qsc {

// Runs on (and mutates) an existing residual network.
double MaxFlowEdmondsKarp(ResidualNetwork& net, NodeId source, NodeId sink);

// Convenience: builds the residual network from `g` (weights = capacities).
double MaxFlowEdmondsKarp(const GraphView& g, NodeId source, NodeId sink);

}  // namespace qsc

#endif  // QSC_FLOW_EDMONDS_KARP_H_
