// Minimum s-t cut extraction (max-flow/min-cut duality, paper Sec 4.2).

#ifndef QSC_FLOW_MIN_CUT_H_
#define QSC_FLOW_MIN_CUT_H_

#include <vector>

#include "qsc/graph/graph_view.h"

namespace qsc {

struct MinCutResult {
  double value = 0.0;                  // cut capacity == max-flow value
  std::vector<bool> in_source_side;    // per node
  std::vector<EdgeTriple> cut_arcs;    // arcs crossing source->sink side
};

// Computes a minimum s-t cut of `g` (arc weights are capacities).
MinCutResult MinCut(const GraphView& g, NodeId source, NodeId sink);

}  // namespace qsc

#endif  // QSC_FLOW_MIN_CUT_H_
