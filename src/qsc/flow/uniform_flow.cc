#include "qsc/flow/uniform_flow.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "qsc/flow/dinic.h"
#include "qsc/flow/network.h"

namespace qsc {

double MaxUniformFlow(const GraphView& g, const std::vector<NodeId>& sources,
                      const std::vector<NodeId>& targets, double rel_tol) {
  QSC_CHECK(!sources.empty());
  QSC_CHECK(!targets.empty());
  const double nx = static_cast<double>(sources.size());
  const double ny = static_cast<double>(targets.size());

  // Compact ids: sources, then targets, then super-source / super-sink.
  std::unordered_map<NodeId, NodeId> target_id;
  target_id.reserve(targets.size() * 2);
  for (size_t i = 0; i < targets.size(); ++i) {
    target_id[targets[i]] = static_cast<NodeId>(sources.size() + i);
  }

  // Collect bipartite arcs and per-node capacity totals.
  struct BipartiteArc {
    NodeId from;  // compact source id
    NodeId to;    // compact target id
    double cap;
  };
  std::vector<BipartiteArc> arcs;
  std::vector<double> cap_out(sources.size(), 0.0);
  std::vector<double> cap_in(targets.size(), 0.0);
  for (size_t i = 0; i < sources.size(); ++i) {
    for (const NeighborEntry& e : g.OutNeighbors(sources[i])) {
      const auto it = target_id.find(e.node);
      if (it == target_id.end()) continue;
      QSC_CHECK_GE(e.weight, 0.0);
      arcs.push_back({static_cast<NodeId>(i), it->second, e.weight});
      cap_out[i] += e.weight;
      cap_in[it->second - sources.size()] += e.weight;
    }
  }
  // F/|X| <= c(x, Y) for every x, and F/|Y| <= c(X, y) for every y.
  double hi = nx * *std::min_element(cap_out.begin(), cap_out.end());
  hi = std::min(hi, ny * *std::min_element(cap_in.begin(), cap_in.end()));
  if (hi <= 0.0) return 0.0;

  const NodeId num_compact =
      static_cast<NodeId>(sources.size() + targets.size());
  const NodeId super_source = num_compact;
  const NodeId super_sink = num_compact + 1;

  auto feasible = [&](double f) {
    ResidualNetwork net(num_compact + 2);
    // One AddArc per terminal and bipartite arc; MaxFlowDinic finalizes
    // the CSR index before traversing.
    net.ReserveArcs(static_cast<int64_t>(sources.size() + targets.size() +
                                         arcs.size()));
    for (size_t i = 0; i < sources.size(); ++i) {
      net.AddArc(super_source, static_cast<NodeId>(i), f / nx);
    }
    for (const BipartiteArc& a : arcs) {
      net.AddArc(a.from, a.to, a.cap);
    }
    for (size_t j = 0; j < targets.size(); ++j) {
      net.AddArc(static_cast<NodeId>(sources.size() + j), super_sink, f / ny);
    }
    const double flow = MaxFlowDinic(net, super_source, super_sink);
    return flow >= f * (1.0 - 1e-9) - 1e-12;
  };

  if (feasible(hi)) return hi;
  double lo = 0.0;
  // Bisection: invariant feasible(lo), !feasible(hi); uniform flows scale,
  // so feasibility is monotone.
  while (hi - lo > rel_tol * hi + 1e-12) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace qsc
