// Push-relabel max-flow with highest-label selection and the gap
// heuristic — the paper's exact baseline ("state-of-the-art push-relabel
// algorithm", Sec 6.1).

#ifndef QSC_FLOW_PUSH_RELABEL_H_
#define QSC_FLOW_PUSH_RELABEL_H_

#include "qsc/flow/network.h"
#include "qsc/graph/graph_view.h"

namespace qsc {

double MaxFlowPushRelabel(ResidualNetwork& net, NodeId source, NodeId sink);
double MaxFlowPushRelabel(const GraphView& g, NodeId source, NodeId sink);

}  // namespace qsc

#endif  // QSC_FLOW_PUSH_RELABEL_H_
