#include "qsc/flow/dinic.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

namespace qsc {
namespace {

class DinicSolver {
 public:
  DinicSolver(ResidualNetwork& net, NodeId source, NodeId sink)
      : net_(net),
        source_(source),
        sink_(sink),
        level_(net.num_nodes()),
        next_arc_(net.num_nodes()) {}

  double Solve() {
    double total = 0.0;
    while (BuildLevels()) {
      std::fill(next_arc_.begin(), next_arc_.end(), size_t{0});
      while (true) {
        const double pushed =
            Augment(source_, std::numeric_limits<double>::infinity());
        if (pushed <= kFlowEps) break;
        total += pushed;
      }
    }
    return total;
  }

 private:
  bool BuildLevels() {
    std::fill(level_.begin(), level_.end(), -1);
    std::queue<NodeId> queue;
    level_[source_] = 0;
    queue.push(source_);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (int64_t id : net_.OutArcs(u)) {
        const auto& a = net_.arc(id);
        if (a.residual > kFlowEps && level_[a.head] == -1) {
          level_[a.head] = level_[u] + 1;
          queue.push(a.head);
        }
      }
    }
    return level_[sink_] != -1;
  }

  double Augment(NodeId u, double limit) {
    if (u == sink_) return limit;
    const auto& arcs = net_.OutArcs(u);
    for (size_t& i = next_arc_[u]; i < arcs.size(); ++i) {
      const int64_t id = arcs[i];
      const auto& a = net_.arc(id);
      if (a.residual <= kFlowEps || level_[a.head] != level_[u] + 1) continue;
      const double pushed =
          Augment(a.head, std::min(limit, a.residual));
      if (pushed > kFlowEps) {
        net_.Push(id, pushed);
        return pushed;
      }
    }
    return 0.0;
  }

  ResidualNetwork& net_;
  NodeId source_;
  NodeId sink_;
  std::vector<int32_t> level_;
  std::vector<size_t> next_arc_;
};

}  // namespace

double MaxFlowDinic(ResidualNetwork& net, NodeId source, NodeId sink) {
  QSC_CHECK_NE(source, sink);
  net.Finalize();  // no-op unless arcs were added since the last traversal
  return DinicSolver(net, source, sink).Solve();
}

double MaxFlowDinic(const GraphView& g, NodeId source, NodeId sink) {
  ResidualNetwork net = ResidualNetwork::FromGraph(g);
  return MaxFlowDinic(net, source, sink);
}

}  // namespace qsc
