// Residual network representation shared by the max-flow solvers — both the
// exact baselines and the reduced-graph solves of the paper's max-flow
// application (Sec 4.2 / 6.1).
//
// Arcs are stored in pairs: arc 2k is the forward arc, arc 2k+1 its
// reverse. Pushing flow decreases one residual capacity and increases the
// other, so the flow on a forward arc equals the residual capacity of its
// reverse.

#ifndef QSC_FLOW_NETWORK_H_
#define QSC_FLOW_NETWORK_H_

#include <cstdint>
#include <vector>

#include "qsc/graph/graph.h"

namespace qsc {

// Residual capacities below this threshold are treated as saturated; it
// guards the double-precision arithmetic of the augmenting-path solvers.
inline constexpr double kFlowEps = 1e-9;

class ResidualNetwork {
 public:
  struct Arc {
    NodeId head;
    double residual;  // remaining capacity
  };

  explicit ResidualNetwork(NodeId num_nodes) : adj_(num_nodes) {}

  // Builds a network whose arc capacities are the graph's weights. All
  // weights must be non-negative.
  static ResidualNetwork FromGraph(const Graph& g);

  // Adds a forward arc u->v with capacity `cap` (and its zero-capacity
  // reverse); returns the forward arc's index. The reverse is index ^ 1.
  int64_t AddArc(NodeId u, NodeId v, double cap);

  NodeId num_nodes() const { return static_cast<NodeId>(adj_.size()); }
  int64_t num_arcs() const { return static_cast<int64_t>(arcs_.size()); }

  const Arc& arc(int64_t id) const { return arcs_[id]; }
  Arc& arc(int64_t id) { return arcs_[id]; }

  // Flow currently routed on forward arc `id` (reverse residual).
  double Flow(int64_t id) const { return arcs_[id ^ 1].residual; }

  const std::vector<int64_t>& OutArcs(NodeId u) const { return adj_[u]; }

  // Sends `amount` along arc `id` (forward or residual direction).
  void Push(int64_t id, double amount) {
    arcs_[id].residual -= amount;
    arcs_[id ^ 1].residual += amount;
  }

 private:
  std::vector<Arc> arcs_;
  std::vector<std::vector<int64_t>> adj_;
};

}  // namespace qsc

#endif  // QSC_FLOW_NETWORK_H_
