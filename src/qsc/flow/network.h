// Residual network representation shared by the max-flow solvers — both the
// exact baselines and the reduced-graph solves of the paper's max-flow
// application (Sec 4.2 / 6.1).
//
// Arcs are stored in pairs: arc 2k is the forward arc, arc 2k+1 its
// reverse. Pushing flow decreases one residual capacity and increases the
// other, so the flow on a forward arc equals the residual capacity of its
// reverse.
//
// Adjacency is compressed sparse row, mirroring qsc::Graph: one
// arc_offsets_[|V|+1] index array over a packed arc-id array, so a node's
// out-arc ids are the contiguous range arc_ids_[arc_offsets_[u],
// arc_offsets_[u+1]) — no per-node heap vectors, no pointer chasing
// between rows. Within a row, ids appear in ascending order, which is
// exactly the historical insertion order of the per-node lists, so every
// solver traversal (and therefore every flow value and min-cut side) is
// bit-identical to the pre-CSR representation.
//
// Networks built incrementally via AddArc() must be finalized before
// traversal; the solver entry points call Finalize() (idempotent, a no-op
// on an up-to-date index) so callers never have to. FromGraph() returns a
// finalized network directly from a two-pass counting construction.

#ifndef QSC_FLOW_NETWORK_H_
#define QSC_FLOW_NETWORK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "qsc/graph/graph_view.h"

namespace qsc {

// Residual capacities below this threshold are treated as saturated; it
// guards the double-precision arithmetic of the augmenting-path solvers.
inline constexpr double kFlowEps = 1e-9;

class ResidualNetwork {
 public:
  struct Arc {
    NodeId head;
    double residual;  // remaining capacity
  };

  // Iterable view over one node's CSR row of arc ids (ascending).
  class ArcRange {
   public:
    ArcRange(const int64_t* begin, const int64_t* end)
        : begin_(begin), end_(end) {}
    const int64_t* begin() const { return begin_; }
    const int64_t* end() const { return end_; }
    size_t size() const { return static_cast<size_t>(end_ - begin_); }
    bool empty() const { return begin_ == end_; }
    int64_t operator[](size_t i) const { return begin_[i]; }

   private:
    const int64_t* begin_;
    const int64_t* end_;
  };

  explicit ResidualNetwork(NodeId num_nodes)
      : num_nodes_(num_nodes), arc_offsets_(num_nodes + 1, 0) {}

  // Builds a finalized network whose arc capacities are the graph's
  // weights, in one two-pass counting construction (row sizes are
  // out-degree + in-degree, then arcs are placed in id order). All
  // weights must be non-negative.
  static ResidualNetwork FromGraph(const GraphView& g);

  // Adds a forward arc u->v with capacity `cap` (and its zero-capacity
  // reverse); returns the forward arc's index. The reverse is index ^ 1.
  // Invalidates the CSR index until the next Finalize().
  int64_t AddArc(NodeId u, NodeId v, double cap);

  // Grows arc storage for `num_forward_arcs` AddArc calls up front.
  void ReserveArcs(int64_t num_forward_arcs) {
    arcs_.reserve(arcs_.size() + 2 * num_forward_arcs);
  }

  // Rebuilds the CSR index after AddArc calls: counts row sizes, prefix
  // sums them into arc_offsets_, then places ids in ascending order (a
  // stable counting sort by tail node — the insertion order of the old
  // per-node lists). Idempotent; O(|V| + |A|) when work is needed.
  void Finalize();
  bool finalized() const { return finalized_; }

  NodeId num_nodes() const { return num_nodes_; }
  int64_t num_arcs() const { return static_cast<int64_t>(arcs_.size()); }

  const Arc& arc(int64_t id) const { return arcs_[id]; }
  Arc& arc(int64_t id) { return arcs_[id]; }

  // Tail of arc `id`, i.e. the node whose row contains it (the head of
  // its paired arc).
  NodeId tail(int64_t id) const { return arcs_[id ^ 1].head; }

  // Flow currently routed on forward arc `id` (reverse residual).
  double Flow(int64_t id) const { return arcs_[id ^ 1].residual; }

  // CSR row of node u. Requires a finalized network.
  ArcRange OutArcs(NodeId u) const {
    QSC_DCHECK(finalized_);
    QSC_DCHECK(u >= 0 && u < num_nodes_);
    return ArcRange(arc_ids_.data() + arc_offsets_[u],
                    arc_ids_.data() + arc_offsets_[u + 1]);
  }

  // Sends `amount` along arc `id` (forward or residual direction).
  void Push(int64_t id, double amount) {
    arcs_[id].residual -= amount;
    arcs_[id ^ 1].residual += amount;
  }

 private:
  NodeId num_nodes_;
  std::vector<Arc> arcs_;             // paired: 2k forward, 2k+1 reverse
  std::vector<int64_t> arc_offsets_;  // size num_nodes_ + 1
  std::vector<int64_t> arc_ids_;      // packed rows, ascending ids
  bool finalized_ = true;             // an empty index is trivially valid
};

}  // namespace qsc

#endif  // QSC_FLOW_NETWORK_H_
