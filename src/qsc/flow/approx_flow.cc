#include "qsc/flow/approx_flow.h"

#include <memory>
#include <utility>

#include "qsc/api/compressor.h"

namespace qsc {

FlowApproxResult ApproximateMaxFlow(const Graph& g, NodeId source,
                                    NodeId sink,
                                    const FlowApproxOptions& options) {
  // One-shot session over a borrowed graph (aliasing shared_ptr: the
  // session dies before `g`). The session API validates and returns
  // Status; this legacy wrapper keeps the historical abort-on-bad-input
  // contract.
  Compressor session(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g));
  QueryOptions query;
  query.max_colors = options.rothko.max_colors;
  query.q_tolerance = options.rothko.q_tolerance;
  query.alpha = options.rothko.alpha;
  query.beta = options.rothko.beta;
  query.split_mean = options.rothko.split_mean;
  query.compute_lower_bound = options.compute_lower_bound;
  query.uniform_flow_tol = options.uniform_flow_tol;
  StatusOr<FlowQueryResult> result = session.MaxFlow(source, sink, query);
  QSC_CHECK_OK(result);

  FlowApproxResult out;
  out.upper_bound = result->upper_bound;
  out.lower_bound = result->lower_bound;
  out.num_colors = result->num_colors;
  out.coloring_seconds = result->telemetry.coloring_seconds;
  out.solve_seconds = result->telemetry.solve_seconds;
  out.coloring = *result->coloring;
  return out;
}

}  // namespace qsc
