#include "qsc/flow/approx_flow.h"

#include <unordered_map>
#include <vector>

#include "qsc/coloring/reduced_graph.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/flow/uniform_flow.h"
#include "qsc/util/timer.h"

namespace qsc {

FlowApproxResult ApproximateMaxFlow(const Graph& g, NodeId source,
                                    NodeId sink,
                                    const FlowApproxOptions& options) {
  QSC_CHECK_NE(source, sink);
  QSC_CHECK(!g.undirected());
  FlowApproxResult result;
  WallTimer timer;

  // Theorem 6 requires the terminals in their own singleton colors.
  std::vector<int32_t> labels(g.num_nodes(), 2);
  labels[source] = 0;
  labels[sink] = 1;
  Partition initial = Partition::FromColorIds(labels);

  RothkoRefiner refiner(g, std::move(initial), options.rothko);
  refiner.Run();
  result.coloring = refiner.partition();
  result.num_colors = result.coloring.num_colors();
  result.coloring_seconds = timer.ElapsedSeconds();

  timer.Reset();
  const Partition& p = result.coloring;
  const ColorId source_color = p.ColorOf(source);
  const ColorId sink_color = p.ColorOf(sink);

  // Upper bound: reduced graph with summed capacities.
  const Graph reduced = BuildReducedGraph(g, p, ReducedWeight::kSum);
  result.upper_bound =
      MaxFlowPushRelabel(reduced, source_color, sink_color);

  if (options.compute_lower_bound) {
    // c^1(i, j) = maxUFlow(P_i, P_j): the largest flow shippable between
    // the two colors with uniform per-node rates.
    std::vector<EdgeTriple> arcs;
    for (const EdgeTriple& a : reduced.Arcs()) {
      if (a.src == a.dst) continue;
      const double c1 =
          MaxUniformFlow(g, p.Members(a.src), p.Members(a.dst),
                         options.uniform_flow_tol);
      if (c1 > 0.0) {
        arcs.push_back({a.src, a.dst, c1});
      }
    }
    const Graph lower_graph =
        Graph::FromEdges(p.num_colors(), arcs, /*undirected=*/false);
    result.lower_bound =
        MaxFlowPushRelabel(lower_graph, source_color, sink_color);
  }
  result.solve_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace qsc
