// Dinic's max-flow algorithm (level graph + blocking flow). O(V^2 * E) in
// general, much faster in practice; the workhorse for reduced graphs and
// uniform-flow probes.

#ifndef QSC_FLOW_DINIC_H_
#define QSC_FLOW_DINIC_H_

#include "qsc/flow/network.h"
#include "qsc/graph/graph_view.h"

namespace qsc {

double MaxFlowDinic(ResidualNetwork& net, NodeId source, NodeId sink);
double MaxFlowDinic(const GraphView& g, NodeId source, NodeId sink);

}  // namespace qsc

#endif  // QSC_FLOW_DINIC_H_
