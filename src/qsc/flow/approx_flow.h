// Coloring-based max-flow approximation (paper Theorem 6 and Sec 6.1).
//
// A quasi-stable coloring is computed with the source and sink pinned to
// their own singleton colors; the reduced graph with capacities
// c^2(i,j) = c(P_i, P_j) (total capacity between the colors) is solved
// exactly, giving the paper's approximation — an upper bound on the true
// max-flow. Optionally the lower bound of Theorem 6 is computed too, with
// c^1(i,j) = maxUFlow(P_i, P_j, c).

#ifndef QSC_FLOW_APPROX_FLOW_H_
#define QSC_FLOW_APPROX_FLOW_H_

#include "qsc/coloring/partition.h"
#include "qsc/coloring/rothko.h"
#include "qsc/graph/graph.h"

namespace qsc {

struct FlowApproxOptions {
  // Coloring parameters; the paper uses alpha = beta = 0 for max-flow.
  RothkoOptions rothko;

  // Also compute the Theorem-6 lower bound (one maxUFlow bisection per
  // color pair; only advisable on small graphs).
  bool compute_lower_bound = false;
  double uniform_flow_tol = 1e-6;
};

struct FlowApproxResult {
  // maxFlow of the reduced graph under c^2 — the approximation reported in
  // the paper's experiments; an upper bound on maxFlow(G).
  double upper_bound = 0.0;
  // maxFlow of the reduced graph under c^1 (0 unless requested); a lower
  // bound on maxFlow(G).
  double lower_bound = 0.0;
  ColorId num_colors = 0;
  double coloring_seconds = 0.0;
  double solve_seconds = 0.0;
  Partition coloring;
};

// One-shot convenience wrapper over qsc::Compressor::MaxFlow; prefer the
// session API (qsc/api/compressor.h) when issuing more than one query
// against a graph — it amortizes the coloring across queries. Invalid
// inputs abort; the session API reports them as Status instead.
FlowApproxResult ApproximateMaxFlow(const Graph& g, NodeId source,
                                    NodeId sink,
                                    const FlowApproxOptions& options);

}  // namespace qsc

#endif  // QSC_FLOW_APPROX_FLOW_H_
