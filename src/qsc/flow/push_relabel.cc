#include "qsc/flow/push_relabel.h"

#include <algorithm>
#include <queue>
#include <vector>

namespace qsc {
namespace {

class PushRelabelSolver {
 public:
  PushRelabelSolver(ResidualNetwork& net, NodeId source, NodeId sink)
      : net_(net),
        source_(source),
        sink_(sink),
        n_(net.num_nodes()),
        height_(n_, 0),
        excess_(n_, 0.0),
        current_arc_(n_, 0),
        height_count_(2 * n_ + 1, 0),
        buckets_(2 * n_ + 1) {}

  double Solve() {
    GlobalRelabel();
    height_[source_] = n_;
    // Saturate all source arcs.
    for (int64_t id : net_.OutArcs(source_)) {
      const double cap = net_.arc(id).residual;
      if (cap > kFlowEps) {
        net_.Push(id, cap);
        const NodeId v = net_.arc(id).head;
        excess_[v] += cap;
        if (v != sink_ && v != source_ && excess_[v] > kFlowEps) {
          Activate(v);
        }
      }
    }
    RebuildHeightCounts();

    while (highest_ >= 0) {
      NodeId u = -1;
      while (highest_ >= 0) {
        auto& bucket = buckets_[highest_];
        while (!bucket.empty() &&
               (height_[bucket.back()] != highest_ ||
                excess_[bucket.back()] <= kFlowEps)) {
          bucket.pop_back();  // stale entry
        }
        if (bucket.empty()) {
          --highest_;
          continue;
        }
        u = bucket.back();
        bucket.pop_back();
        break;
      }
      if (u == -1) break;
      Discharge(u);
    }
    return excess_[sink_];
  }

 private:
  // Exact distance labels from the sink over the residual graph.
  void GlobalRelabel() {
    std::fill(height_.begin(), height_.end(), 2 * n_);
    height_[sink_] = 0;
    std::queue<NodeId> queue;
    queue.push(sink_);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop();
      for (int64_t id : net_.OutArcs(u)) {
        // Arc (v -> u) has residual iff reverse arc (id^1) from u's list
        // viewpoint: we need residual capacity on (head -> u).
        const NodeId v = net_.arc(id).head;
        if (height_[v] == 2 * n_ && net_.arc(id ^ 1).residual > kFlowEps) {
          height_[v] = height_[u] + 1;
          queue.push(v);
        }
      }
    }
  }

  void RebuildHeightCounts() {
    std::fill(height_count_.begin(), height_count_.end(), 0);
    for (NodeId v = 0; v < n_; ++v) {
      height_[v] = std::min(height_[v], 2 * n_);
      ++height_count_[height_[v]];
    }
  }

  void Activate(NodeId v) {
    buckets_[height_[v]].push_back(v);
    highest_ = std::max(highest_, height_[v]);
  }

  void Discharge(NodeId u) {
    while (excess_[u] > kFlowEps) {
      const auto& arcs = net_.OutArcs(u);
      if (current_arc_[u] >= arcs.size()) {
        Relabel(u);
        if (height_[u] >= 2 * n_) return;  // unreachable; drop excess
        continue;
      }
      const int64_t id = arcs[current_arc_[u]];
      const auto& a = net_.arc(id);
      if (a.residual > kFlowEps && height_[u] == height_[a.head] + 1) {
        const double amount = std::min(excess_[u], a.residual);
        net_.Push(id, amount);
        excess_[u] -= amount;
        excess_[a.head] += amount;
        if (a.head != source_ && a.head != sink_ &&
            excess_[a.head] > kFlowEps) {
          Activate(a.head);
        }
      } else {
        ++current_arc_[u];
      }
    }
  }

  void Relabel(NodeId u) {
    const int32_t old_height = height_[u];
    int32_t best = 2 * n_;
    for (int64_t id : net_.OutArcs(u)) {
      const auto& a = net_.arc(id);
      if (a.residual > kFlowEps) best = std::min(best, height_[a.head] + 1);
    }
    --height_count_[old_height];
    height_[u] = best;
    ++height_count_[std::min(best, 2 * n_)];
    current_arc_[u] = 0;
    if (best < 2 * n_) Activate(u);
    // Gap heuristic: if no node remains at old_height, every node above it
    // (below n_) can never reach the sink; lift them out of the game.
    if (height_count_[old_height] == 0 && old_height < n_) {
      for (NodeId v = 0; v < n_; ++v) {
        if (v != source_ && height_[v] > old_height && height_[v] < n_) {
          --height_count_[height_[v]];
          height_[v] = n_ + 1;
          ++height_count_[n_ + 1];
        }
      }
    }
  }

  ResidualNetwork& net_;
  NodeId source_;
  NodeId sink_;
  NodeId n_;
  std::vector<int32_t> height_;
  std::vector<double> excess_;
  std::vector<size_t> current_arc_;
  std::vector<int64_t> height_count_;
  std::vector<std::vector<NodeId>> buckets_;
  int32_t highest_ = -1;
};

}  // namespace

double MaxFlowPushRelabel(ResidualNetwork& net, NodeId source, NodeId sink) {
  QSC_CHECK_NE(source, sink);
  net.Finalize();  // no-op unless arcs were added since the last traversal
  return PushRelabelSolver(net, source, sink).Solve();
}

double MaxFlowPushRelabel(const GraphView& g, NodeId source, NodeId sink) {
  ResidualNetwork net = ResidualNetwork::FromGraph(g);
  return MaxFlowPushRelabel(net, source, sink);
}

}  // namespace qsc
