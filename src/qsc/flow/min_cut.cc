#include "qsc/flow/min_cut.h"

#include <queue>

#include "qsc/flow/dinic.h"
#include "qsc/flow/network.h"

namespace qsc {

MinCutResult MinCut(const GraphView& g, NodeId source, NodeId sink) {
  ResidualNetwork net = ResidualNetwork::FromGraph(g);
  MinCutResult result;
  result.value = MaxFlowDinic(net, source, sink);

  // Source side = nodes reachable from s in the residual graph.
  result.in_source_side.assign(g.num_nodes(), false);
  std::queue<NodeId> queue;
  queue.push(source);
  result.in_source_side[source] = true;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    for (int64_t id : net.OutArcs(u)) {
      const auto& a = net.arc(id);
      if (a.residual > kFlowEps && !result.in_source_side[a.head]) {
        result.in_source_side[a.head] = true;
        queue.push(a.head);
      }
    }
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (!result.in_source_side[u]) continue;
    for (const NeighborEntry& e : g.OutNeighbors(u)) {
      if (!result.in_source_side[e.node]) {
        result.cut_arcs.push_back({u, e.node, e.weight});
      }
    }
  }
  return result;
}

}  // namespace qsc
