#include "qsc/flow/edmonds_karp.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

namespace qsc {

double MaxFlowEdmondsKarp(ResidualNetwork& net, NodeId source, NodeId sink) {
  QSC_CHECK_NE(source, sink);
  net.Finalize();  // no-op unless arcs were added since the last traversal
  const NodeId n = net.num_nodes();
  double total = 0.0;
  std::vector<int64_t> parent_arc(n);
  while (true) {
    std::fill(parent_arc.begin(), parent_arc.end(), int64_t{-1});
    std::queue<NodeId> queue;
    queue.push(source);
    parent_arc[source] = -2;  // visited marker for the source
    while (!queue.empty() && parent_arc[sink] == -1) {
      const NodeId u = queue.front();
      queue.pop();
      for (int64_t id : net.OutArcs(u)) {
        const auto& a = net.arc(id);
        if (a.residual > kFlowEps && parent_arc[a.head] == -1) {
          parent_arc[a.head] = id;
          queue.push(a.head);
        }
      }
    }
    if (parent_arc[sink] == -1) break;  // no augmenting path
    // Bottleneck along the path.
    double bottleneck = std::numeric_limits<double>::infinity();
    for (NodeId v = sink; v != source;) {
      const int64_t id = parent_arc[v];
      bottleneck = std::min(bottleneck, net.arc(id).residual);
      v = net.arc(id ^ 1).head;
    }
    for (NodeId v = sink; v != source;) {
      const int64_t id = parent_arc[v];
      net.Push(id, bottleneck);
      v = net.arc(id ^ 1).head;
    }
    total += bottleneck;
  }
  return total;
}

double MaxFlowEdmondsKarp(const GraphView& g, NodeId source, NodeId sink) {
  ResidualNetwork net = ResidualNetwork::FromGraph(g);
  return MaxFlowEdmondsKarp(net, source, sink);
}

}  // namespace qsc
