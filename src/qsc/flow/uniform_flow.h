// Maximum uniform flow in a bipartite graph (paper Definition 5): a flow
// where every source node carries the same outgoing amount and every target
// node the same incoming amount. maxUFlow defines the lower-bound
// capacities c^1 of Theorem 6.

#ifndef QSC_FLOW_UNIFORM_FLOW_H_
#define QSC_FLOW_UNIFORM_FLOW_H_

#include <vector>

#include "qsc/graph/graph_view.h"

namespace qsc {

// Maximum value of a uniform flow from `sources` to `targets` using the
// arcs of `g` that go from a source to a target (weights = capacities; all
// other arcs are ignored). The two node sets must be disjoint and
// non-empty.
//
// Computed via the Lemma-8 construction: a uniform flow of value F exists
// iff the network {s -> x: F/|X|} ∪ {arcs} ∪ {y -> t: F/|Y|} carries F;
// feasibility is monotone in F (uniform flows scale), so the maximum is
// found by bisection to relative tolerance `rel_tol`.
double MaxUniformFlow(const GraphView& g, const std::vector<NodeId>& sources,
                      const std::vector<NodeId>& targets,
                      double rel_tol = 1e-7);

}  // namespace qsc

#endif  // QSC_FLOW_UNIFORM_FLOW_H_
