// Byte-mixing helpers shared by the api layer's cache keys
// (ColoringSpecHash and SolveLp's LP content fingerprint). Kept in one
// place so both keyings agree on canonicalization — in particular the
// -0.0 fold, which keeps bitwise hashing consistent with operator== on
// doubles. NaN never reaches a cache key (the Compressor boundary rejects
// non-finite options and ValidateLp rejects non-finite coefficients).

#ifndef QSC_API_HASHING_H_
#define QSC_API_HASHING_H_

#include <cstdint>
#include <cstring>

namespace qsc {
namespace api_internal {

// FNV-1a over the bytes of a 64-bit word.
inline uint64_t HashMixWord(uint64_t h, uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

inline uint64_t HashMixDouble(uint64_t h, double v) {
  if (v == 0.0) v = 0.0;  // fold -0.0 onto 0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return HashMixWord(h, bits);
}

constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ull;

}  // namespace api_internal
}  // namespace qsc

#endif  // QSC_API_HASHING_H_
