// Byte-mixing helpers shared by the api layer's cache keys
// (ColoringSpecHash and SolveLp's LP content fingerprint). Kept in one
// place so both keyings agree on canonicalization — in particular the
// -0.0 fold, which keeps bitwise hashing consistent with operator== on
// doubles. NaN never reaches a cache key (the Compressor boundary rejects
// non-finite options and ValidateLp rejects non-finite coefficients).

#ifndef QSC_API_HASHING_H_
#define QSC_API_HASHING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "qsc/coloring/backend.h"

namespace qsc {
namespace api_internal {

// FNV-1a over the bytes of a 64-bit word.
inline uint64_t HashMixWord(uint64_t h, uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

inline uint64_t HashMixDouble(uint64_t h, double v) {
  if (v == 0.0) v = 0.0;  // fold -0.0 onto 0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return HashMixWord(h, bits);
}

constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ull;

// Canonical backend spelling for equality and hashing: the empty string
// means the default backend (pre-registry specs keep their meaning).
// Callers store names already canonicalized by CanonicalBackendName; this
// only folds the ""-default equivalence.
inline const std::string& BackendOrDefault(const std::string& backend) {
  static const std::string kDefault(kDefaultColoringBackend);
  return backend.empty() ? kDefault : backend;
}

// Mixes a spec's backend name into a cache key. The default backend mixes
// *nothing*, so every pre-registry spec — default-constructed, backend
// unset — hashes exactly as it did before backends existed, keeping the
// committed cache-resume corpus hashes bit-identical for rothko.
inline uint64_t HashMixBackendName(uint64_t h, const std::string& backend) {
  const std::string& canonical = BackendOrDefault(backend);
  if (canonical == kDefaultColoringBackend) return h;
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace api_internal
}  // namespace qsc

#endif  // QSC_API_HASHING_H_
