#include "qsc/api/compressor.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <utility>

#include "qsc/api/hashing.h"
#include "qsc/centrality/color_pivot.h"
#include "qsc/coloring/reduced_graph.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/flow/uniform_flow.h"
#include "qsc/graph/graph_view.h"
#include "qsc/graph/io.h"
#include "qsc/parallel/parallel_for.h"
#include "qsc/util/timer.h"

namespace qsc {
namespace {

std::string NodeStr(NodeId v) { return std::to_string(v); }

// Shared option checks (satellite of the api_redesign issue: these used to
// abort via QSC_CHECK or silently index out of range).
Status ValidateCommonOptions(const QueryOptions& options) {
  if (options.max_colors <= 0) {
    return Status::InvalidArgument(
        "max_colors must be positive; got " +
        std::to_string(options.max_colors));
  }
  if (!std::isfinite(options.q_tolerance) || options.q_tolerance < 0.0) {
    return Status::InvalidArgument("q_tolerance must be finite and >= 0; got " +
                                   std::to_string(options.q_tolerance));
  }
  if (options.alpha.has_value() && !std::isfinite(*options.alpha)) {
    return Status::InvalidArgument("alpha must be finite; got " +
                                   std::to_string(*options.alpha));
  }
  if (options.beta.has_value() && !std::isfinite(*options.beta)) {
    return Status::InvalidArgument("beta must be finite; got " +
                                   std::to_string(*options.beta));
  }
  return Status::Ok();
}

// The backend half of the boundary contract (docs/API.md "Backends"):
// canonicalize, then check registration. Malformed names are
// InvalidArgument (the request can never be valid); well-formed names
// nobody registered are NotFound (the request might be valid against a
// process with that backend linked in).
StatusOr<std::string> ValidateBackend(const std::string& name) {
  StatusOr<std::string> canonical = CanonicalBackendName(name);
  if (!canonical.ok()) return canonical.status();
  const ColoringBackendRegistry& registry = ColoringBackendRegistry::Global();
  if (!registry.Contains(*canonical)) {
    std::string registered;
    for (const std::string& n : registry.Names()) {
      registered += registered.empty() ? n : ", " + n;
    }
    return Status::NotFound("unknown coloring backend \"" + *canonical +
                            "\"; registered: " + registered);
  }
  return canonical;
}

Status ValidatePins(const std::vector<NodeId>& pinned, NodeId num_nodes) {
  for (size_t i = 0; i < pinned.size(); ++i) {
    if (pinned[i] < 0 || pinned[i] >= num_nodes) {
      return Status::InvalidArgument(
          "pinned node id " + NodeStr(pinned[i]) + " out of range [0, " +
          NodeStr(num_nodes) + ")");
    }
    for (size_t j = 0; j < i; ++j) {
      if (pinned[j] == pinned[i]) {
        return Status::InvalidArgument("duplicate pinned node id " +
                                       NodeStr(pinned[i]));
      }
    }
  }
  return Status::Ok();
}

// Builds the cache key from options, filling unset witness exponents with
// the area defaults (paper Sec 5.2). `backend` must already be canonical
// (the ValidateBackend result).
ColoringSpec SpecFor(const QueryOptions& options, double default_alpha,
                     double default_beta, std::vector<NodeId> pinned,
                     std::string backend) {
  ColoringSpec spec;
  spec.alpha = options.alpha.value_or(default_alpha);
  spec.beta = options.beta.value_or(default_beta);
  spec.q_tolerance = options.q_tolerance;
  spec.split_mean = options.split_mean;
  spec.backend = std::move(backend);
  spec.pinned = std::move(pinned);
  return spec;
}

// Content fingerprint of an LP: SolveLp keys its matrix-coloring cache by
// value, so two calls with equal problems share one refiner even if they
// pass different objects. Not collision-resistant — hits are confirmed by
// LpEquals before a cached refiner is reused.
uint64_t FingerprintLp(const LpProblem& lp) {
  using api_internal::HashMixDouble;
  using api_internal::HashMixWord;
  uint64_t h = api_internal::kFnvOffsetBasis;
  h = HashMixWord(h, static_cast<uint64_t>(lp.num_rows));
  h = HashMixWord(h, static_cast<uint64_t>(lp.num_cols));
  for (const LpEntry& e : lp.entries) {
    h = HashMixWord(h, static_cast<uint64_t>(e.row));
    h = HashMixWord(h, static_cast<uint64_t>(e.col));
    h = HashMixDouble(h, e.value);
  }
  for (const double v : lp.b) h = HashMixDouble(h, v);
  for (const double v : lp.c) h = HashMixDouble(h, v);
  return h;
}

bool LpEquals(const LpProblem& a, const LpProblem& b) {
  if (a.num_rows != b.num_rows || a.num_cols != b.num_cols ||
      a.entries.size() != b.entries.size() || a.b != b.b || a.c != b.c) {
    return false;
  }
  for (size_t i = 0; i < a.entries.size(); ++i) {
    if (a.entries[i].row != b.entries[i].row ||
        a.entries[i].col != b.entries[i].col ||
        a.entries[i].value != b.entries[i].value) {
      return false;
    }
  }
  return true;
}

}  // namespace

class Compressor::Impl {
 public:
  Impl(std::shared_ptr<const Graph> graph, ThreadPool* pool,
       const CompressorOptions& options)
      : graph_(std::move(graph)), pool_(pool) {
    if (graph_ != nullptr) {
      view_ = GraphView(*graph_);
      if (graph_->num_nodes() > 0) {
        ColoringCacheOptions cache_options;
        cache_options.byte_budget = options.coloring_cache_byte_budget;
        cache_ = std::make_unique<ColoringCache>(graph_, pool_, cache_options);
      }
    }
  }

  // The mmap serving path (Compressor::FromFile): queries run over a view
  // of the mapped payload; no owning Graph exists until graph() or
  // ApplyEdits materializes one.
  Impl(std::shared_ptr<const MappedGraph> mapped, ThreadPool* pool,
       const CompressorOptions& options)
      : mapped_(std::move(mapped)), pool_(pool) {
    QSC_CHECK(mapped_ != nullptr);
    view_ = GraphView::Of(*mapped_);
    if (view_.num_nodes() > 0) {
      ColoringCacheOptions cache_options;
      cache_options.byte_budget = options.coloring_cache_byte_budget;
      cache_ = std::make_unique<ColoringCache>(view_, mapped_, pool_,
                                               cache_options);
    }
  }

  bool has_graph() const { return graph_ != nullptr || mapped_ != nullptr; }

  const Graph& graph() {
    {
      const std::shared_lock<std::shared_mutex> lock(session_mutex_);
      if (graph_ != nullptr) return *graph_;
    }
    // Mapped session, first graph() call: materialize an owning copy once,
    // under the writer lock. Queries keep serving from view_ (still on the
    // mapping), so this changes footprint, never results.
    const std::unique_lock<std::shared_mutex> lock(session_mutex_);
    QSC_CHECK(mapped_ != nullptr);
    if (graph_ == nullptr) {
      graph_ = std::make_shared<const Graph>(mapped_->Materialize());
    }
    return *graph_;
  }

  // FailedPrecondition (not InvalidArgument): the request may be fine, but
  // this session cannot serve graph queries.
  Status RequireGraph() const {
    if (graph_ == nullptr && mapped_ == nullptr) {
      return Status::FailedPrecondition(
          "graph query on an LP-only session (no graph)");
    }
    if (view_.num_nodes() == 0) {
      return Status::FailedPrecondition("session graph is empty");
    }
    return Status::Ok();
  }

  StatusOr<ColoringResult> Coloring(const QueryOptions& options) {
    const std::shared_lock<std::shared_mutex> session_lock(session_mutex_);
    QSC_RETURN_IF_ERROR(RequireGraph());
    QSC_RETURN_IF_ERROR(ValidateCommonOptions(options));
    QSC_RETURN_IF_ERROR(ValidatePins(options.pinned, view_.num_nodes()));
    StatusOr<std::string> backend = ValidateBackend(options.backend);
    if (!backend.ok()) return backend.status();

    const ColoringSpec spec =
        SpecFor(options, /*default_alpha=*/0.0, /*default_beta=*/0.0,
                options.pinned, *std::move(backend));
    const ColoringCache::Handle handle =
        cache_->Refine(spec, options.max_colors);
    ColoringResult result;
    result.coloring = handle.partition;
    result.max_q = handle.max_error;
    result.telemetry = TelemetryFor(handle);
    result.telemetry.graph_version = graph_version_;
    return result;
  }

  StatusOr<FlowQueryResult> MaxFlow(NodeId source, NodeId sink,
                                    const QueryOptions& options) {
    const std::shared_lock<std::shared_mutex> session_lock(session_mutex_);
    QSC_RETURN_IF_ERROR(RequireGraph());
    QSC_RETURN_IF_ERROR(ValidateFlowQuery(source, sink, options));
    return MaxFlowUnchecked(source, sink, options);
  }

  StatusOr<std::vector<FlowQueryResult>> MaxFlowBatch(
      const std::vector<std::pair<NodeId, NodeId>>& st_pairs,
      const QueryOptions& options) {
    // The batch holds the session reader lock for its whole fan-out;
    // MaxFlowUnchecked runs on pool workers, whose tasks the pool
    // synchronizes with this thread, so the lock covers them too.
    const std::shared_lock<std::shared_mutex> session_lock(session_mutex_);
    QSC_RETURN_IF_ERROR(RequireGraph());
    // Fail fast: validate every pair before serving any query, so a batch
    // either runs whole or not at all.
    for (const auto& [source, sink] : st_pairs) {
      QSC_RETURN_IF_ERROR(ValidateFlowQuery(source, sink, options));
    }
    // Fan the pairs out over the session pool (sequential when there is
    // none): each pair writes only its own slot and the coloring cache is
    // concurrency-safe, so the results match the sequential loop bit for
    // bit — distinct terminal pairs color concurrently, repeated pairs
    // queue on their shared spec and hit its cache.
    std::vector<FlowQueryResult> results(st_pairs.size());
    ParallelFor(pool_, static_cast<int64_t>(st_pairs.size()), /*grain=*/1,
                [&](int64_t i) {
                  StatusOr<FlowQueryResult> result = MaxFlowUnchecked(
                      st_pairs[i].first, st_pairs[i].second, options);
                  // Validated above; failures are internal bugs.
                  QSC_CHECK_OK(result);
                  results[i] = std::move(result).value();
                });
    return results;
  }

  StatusOr<LpQueryResult> SolveLp(const LpProblem& lp,
                                  const QueryOptions& options) {
    // LP colorings key on LP content, not the session graph, so edits
    // never invalidate them; the reader lock is only for the version
    // stamp and the uniform queries-concurrent/edits-exclusive contract.
    const std::shared_lock<std::shared_mutex> session_lock(session_mutex_);
    QSC_RETURN_IF_ERROR(ValidateCommonOptions(options));
    QSC_RETURN_IF_ERROR(ValidateLp(lp));
    if (options.max_colors < 4) {
      return Status::InvalidArgument(
          "SolveLp needs max_colors >= 4 (the two pinned singletons plus at "
          "least one row and one column color); got " +
          std::to_string(options.max_colors));
    }
    if (!options.pinned.empty()) {
      return Status::InvalidArgument(
          "SolveLp pins the objective row and rhs column internally; "
          "explicit pins are not supported");
    }
    StatusOr<std::string> backend = ValidateBackend(options.backend);
    if (!backend.ok()) return backend.status();

    LpReduceOptions reduce_options;
    reduce_options.max_colors = options.max_colors;
    reduce_options.q_tolerance = options.q_tolerance;
    reduce_options.alpha = options.alpha.value_or(reduce_options.alpha);
    reduce_options.beta = options.beta.value_or(reduce_options.beta);
    reduce_options.split_mean = options.split_mean;
    reduce_options.variant = options.lp_variant;
    reduce_options.backend = *std::move(backend);
    reduce_options.pool = pool_;

    WallTimer timer;
    const LpSessionKey key{FingerprintLp(lp), reduce_options.alpha,
                           reduce_options.beta, reduce_options.q_tolerance,
                           static_cast<int>(reduce_options.split_mean),
                           static_cast<int>(reduce_options.variant),
                           reduce_options.backend};
    // Find-or-insert under the map lock; the expensive matrix coloring
    // happens later under the per-session mutex, so distinct LPs reduce
    // concurrently. The fingerprint is not collision-resistant, so a key
    // maps to a bucket of sessions and a hit requires content equality.
    LpSession* session = nullptr;
    bool found = false;
    {
      std::lock_guard<std::mutex> lock(lp_mutex_);
      ++stats_.lp_lookups;
      std::vector<std::unique_ptr<LpSession>>& bucket = lp_entries_[key];
      for (const std::unique_ptr<LpSession>& candidate : bucket) {
        if (LpEquals(candidate->lp, lp)) {
          session = candidate.get();
          found = true;
          break;
        }
      }
      if (!found) {
        ++stats_.lp_misses;
        auto entry = std::make_unique<LpSession>();
        entry->lp = lp;
        bucket.push_back(std::move(entry));
        session = bucket.back().get();
      }
    }

    LpQueryResult result;
    {
      std::lock_guard<std::mutex> session_lock(session->mutex);
      if (session->refiner == nullptr) {
        session->refiner =
            std::make_unique<LpColoringRefiner>(session->lp, reduce_options);
      }
      if (session->refiner->num_colors() > options.max_colors) {
        // The cached matrix coloring has refined past this budget and
        // splits are not invertible: recompute this budget from scratch
        // once and memoize (mirrors ColoringCache's down-budget path).
        const auto served = session->down_served.find(options.max_colors);
        if (served != session->down_served.end()) {
          CountLpStat(&CompressorStats::lp_hits);
          result.telemetry.coloring_cache_hit = true;
          result.reduced = served->second;
        } else {
          CountLpStat(&CompressorStats::lp_recolorings);
          LpColoringRefiner fresh(session->lp, reduce_options);
          result.reduced = fresh.ReduceTo(options.max_colors);
          session->down_served.emplace(options.max_colors, result.reduced);
        }
      } else {
        if (found) CountLpStat(&CompressorStats::lp_hits);
        result.telemetry.coloring_cache_hit = found;
        result.reduced = session->refiner->ReduceTo(options.max_colors);
      }
    }
    result.telemetry.coloring_seconds = timer.ElapsedSeconds();

    timer.Reset();
    result.solution = SolveSimplex(result.reduced.lp);
    if (result.solution.status == LpStatus::kOptimal) {
      result.lifted_x = LiftSolution(result.reduced, result.solution.x);
    }
    result.telemetry.solve_seconds = timer.ElapsedSeconds();
    result.telemetry.graph_version = graph_version_;
    return result;
  }

  StatusOr<CentralityQueryResult> Centrality(const QueryOptions& options) {
    const std::shared_lock<std::shared_mutex> session_lock(session_mutex_);
    QSC_RETURN_IF_ERROR(RequireGraph());
    QSC_RETURN_IF_ERROR(ValidateCommonOptions(options));
    QSC_RETURN_IF_ERROR(ValidatePins(options.pinned, view_.num_nodes()));
    if (options.pivots_per_color < 1) {
      return Status::InvalidArgument(
          "pivots_per_color must be >= 1; got " +
          std::to_string(options.pivots_per_color));
    }

    StatusOr<std::string> backend = ValidateBackend(options.backend);
    if (!backend.ok()) return backend.status();
    const ColoringSpec spec =
        SpecFor(options, /*default_alpha=*/1.0, /*default_beta=*/1.0,
                options.pinned, *std::move(backend));
    const ColoringCache::Handle handle =
        cache_->Refine(spec, options.max_colors);

    CentralityQueryResult result;
    result.coloring = handle.partition;
    result.num_colors = handle.partition->num_colors();
    result.telemetry = TelemetryFor(handle);
    result.telemetry.graph_version = graph_version_;
    WallTimer timer;
    result.scores =
        ColorPivotScores(view_, *handle.partition, options.pivots_per_color,
                         options.seed, pool_);
    result.telemetry.solve_seconds = timer.ElapsedSeconds();
    return result;
  }

  StatusOr<EditApplyResult> ApplyEdits(const std::vector<dynamic::EditOp>& edits,
                                       const EditApplyOptions& options) {
    if (options.max_repair_splits < 0) {
      return Status::InvalidArgument(
          "max_repair_splits must be >= 0; got " +
          std::to_string(options.max_repair_splits));
    }
    if (edits.empty()) {
      return Status::InvalidArgument("empty edit batch");
    }
    WallTimer timer;
    // Writer lock: no query is mid-flight while the graph version
    // changes, so a query's coloring and solve always agree on one graph.
    const std::unique_lock<std::shared_mutex> session_lock(session_mutex_);
    QSC_RETURN_IF_ERROR(RequireGraph());
    if (graph_ == nullptr) {
      // Copy-on-write for mapped sessions: the first edit batch
      // materializes an owning graph to mutate (bit-identical to the
      // mapping; the qsc-bin round-trip contract).
      graph_ = std::make_shared<const Graph>(mapped_->Materialize());
    }
    StatusOr<Graph> mutated = dynamic::ApplyEditBatch(*graph_, edits);
    if (!mutated.ok()) return mutated.status();
    auto new_graph =
        std::make_shared<const Graph>(std::move(mutated).value());

    dynamic::RepairOptions repair;
    repair.max_repair_splits = options.max_repair_splits;
    const ColoringCache::EditApplyStats repaired =
        cache_->ApplyGraph(new_graph, edits, repair);
    graph_ = std::move(new_graph);
    view_ = GraphView(*graph_);
    mapped_.reset();  // the mapping no longer backs anything
    ++graph_version_;

    EditApplyResult result;
    result.edits_applied = static_cast<int64_t>(edits.size());
    result.repairs = repaired.repairs;
    result.fallbacks = repaired.fallbacks;
    result.repair_splits = repaired.repair_splits;
    result.graph_version = graph_version_;
    result.seconds = timer.ElapsedSeconds();
    return result;
  }

  int64_t graph_version() const {
    const std::shared_lock<std::shared_mutex> session_lock(session_mutex_);
    return graph_version_;
  }

  CompressorStats stats() const {
    CompressorStats snapshot;
    {
      std::lock_guard<std::mutex> lock(lp_mutex_);
      snapshot = stats_;
    }
    snapshot.coloring = cache_ != nullptr ? cache_->stats() : CacheStats{};
    return snapshot;
  }

 private:
  struct LpSessionKey {
    uint64_t fingerprint;
    double alpha, beta, q_tolerance;
    int split_mean, variant;
    std::string backend;  // canonical (ValidateBackend ran first)

    bool operator<(const LpSessionKey& o) const {
      return std::tie(fingerprint, alpha, beta, q_tolerance, split_mean,
                      variant, backend) <
             std::tie(o.fingerprint, o.alpha, o.beta, o.q_tolerance,
                      o.split_mean, o.variant, o.backend);
    }
  };

  struct LpSession {
    // Serializes refinement of this LP; distinct LPs reduce concurrently.
    std::mutex mutex;
    LpProblem lp;  // owned copy; the refiner holds a reference into it
    // Built lazily under `mutex`, so map insertion stays cheap.
    std::unique_ptr<LpColoringRefiner> refiner;
    // Down-budget reductions already recomputed, keyed by budget.
    std::map<ColorId, ReducedLp> down_served;
  };

  void CountLpStat(int64_t CompressorStats::* counter) {
    std::lock_guard<std::mutex> lock(lp_mutex_);
    ++(stats_.*counter);
  }

  static QueryTelemetry TelemetryFor(const ColoringCache::Handle& handle) {
    QueryTelemetry t;
    t.coloring_cache_hit = handle.cache_hit;
    t.coloring_splits = handle.splits;
    t.coloring_seconds = handle.seconds;
    return t;
  }

  Status ValidateFlowQuery(NodeId source, NodeId sink,
                           const QueryOptions& options) const {
    QSC_RETURN_IF_ERROR(ValidateCommonOptions(options));
    {
      const StatusOr<std::string> backend = ValidateBackend(options.backend);
      if (!backend.ok()) return backend.status();
    }
    const NodeId n = view_.num_nodes();
    if (source < 0 || source >= n) {
      return Status::InvalidArgument("source node id " + NodeStr(source) +
                                     " out of range [0, " + NodeStr(n) + ")");
    }
    if (sink < 0 || sink >= n) {
      return Status::InvalidArgument("sink node id " + NodeStr(sink) +
                                     " out of range [0, " + NodeStr(n) + ")");
    }
    if (source == sink) {
      return Status::InvalidArgument(
          "source and sink must differ; both are " + NodeStr(source));
    }
    if (view_.undirected()) {
      return Status::InvalidArgument(
          "MaxFlow requires a directed session graph (capacities are "
          "per-arc)");
    }
    if (!options.pinned.empty()) {
      return Status::InvalidArgument(
          "MaxFlow pins its terminals itself; explicit pins are not "
          "supported");
    }
    if (!std::isfinite(options.uniform_flow_tol) ||
        options.uniform_flow_tol <= 0.0) {
      return Status::InvalidArgument(
          "uniform_flow_tol must be finite and positive; got " +
          std::to_string(options.uniform_flow_tol));
    }
    return Status::Ok();
  }

  // The Theorem-6 pipeline of ApproximateMaxFlow, with the coloring served
  // from the session cache. Inputs already validated.
  StatusOr<FlowQueryResult> MaxFlowUnchecked(NodeId source, NodeId sink,
                                             const QueryOptions& options) {
    const ColoringSpec spec =
        SpecFor(options, /*default_alpha=*/0.0, /*default_beta=*/0.0,
                {source, sink},
                // Validated by ValidateFlowQuery; .value() cannot abort.
                CanonicalBackendName(options.backend).value());
    const ColoringCache::Handle handle =
        cache_->Refine(spec, options.max_colors);
    const Partition& p = *handle.partition;
    const GraphView& g = view_;

    FlowQueryResult result;
    result.coloring = handle.partition;
    result.num_colors = p.num_colors();
    result.telemetry = TelemetryFor(handle);
    result.telemetry.graph_version = graph_version_;

    WallTimer timer;
    const ColorId source_color = p.ColorOf(source);
    const ColorId sink_color = p.ColorOf(sink);

    // Upper bound: reduced graph with summed capacities (c^2).
    const Graph reduced = BuildReducedGraph(g, p, ReducedWeight::kSum);
    result.upper_bound =
        MaxFlowPushRelabel(reduced, source_color, sink_color);

    if (options.compute_lower_bound) {
      // c^1(i, j) = maxUFlow(P_i, P_j): the largest flow shippable between
      // the two colors with uniform per-node rates (Theorem 6).
      std::vector<EdgeTriple> arcs;
      for (const EdgeTriple& a : reduced.Arcs()) {
        if (a.src == a.dst) continue;
        const double c1 = MaxUniformFlow(g, p.Members(a.src), p.Members(a.dst),
                                         options.uniform_flow_tol);
        if (c1 > 0.0) {
          arcs.push_back({a.src, a.dst, c1});
        }
      }
      const Graph lower_graph =
          Graph::FromEdges(p.num_colors(), arcs, /*undirected=*/false);
      result.lower_bound =
          MaxFlowPushRelabel(lower_graph, source_color, sink_color);
    }
    result.telemetry.solve_seconds = timer.ElapsedSeconds();
    return result;
  }

  // Queries hold this shared for their whole duration; ApplyEdits holds
  // it unique while it swaps graph_/view_, repairs the cache, and bumps
  // graph_version_ (all guarded by it). At most one of graph_/mapped_ is
  // the serving substrate: view_ aliases whichever is live, and ApplyEdits
  // retires the mapping after its copy-on-write materialization.
  mutable std::shared_mutex session_mutex_;
  std::shared_ptr<const Graph> graph_;
  std::shared_ptr<const MappedGraph> mapped_;
  GraphView view_;
  int64_t graph_version_ = 0;
  ThreadPool* pool_;
  std::unique_ptr<ColoringCache> cache_;

  // Guards lp_entries_ (map and buckets, not the sessions) and the lp_*
  // counters of stats_ (the coloring counters live in the cache).
  mutable std::mutex lp_mutex_;
  std::map<LpSessionKey, std::vector<std::unique_ptr<LpSession>>> lp_entries_;
  CompressorStats stats_;
};

Compressor::Compressor()
    : impl_(new Impl(std::shared_ptr<const Graph>(), nullptr, {})) {}

Compressor::Compressor(Graph graph, ThreadPool* pool,
                       const CompressorOptions& options)
    : impl_(new Impl(std::make_shared<const Graph>(std::move(graph)), pool,
                     options)) {}

Compressor::Compressor(std::shared_ptr<const Graph> graph, ThreadPool* pool,
                       const CompressorOptions& options)
    : impl_(new Impl(std::move(graph), pool, options)) {}

StatusOr<Compressor> Compressor::FromFile(const std::string& path,
                                          ThreadPool* pool,
                                          const CompressorOptions& options) {
  StatusOr<MappedGraph> mapped = MapBinary(path);
  if (!mapped.ok()) return mapped.status();
  Compressor session;
  session.impl_ = std::make_unique<Impl>(
      std::make_shared<const MappedGraph>(std::move(mapped).value()), pool,
      options);
  return session;
}

Compressor::~Compressor() = default;
Compressor::Compressor(Compressor&&) noexcept = default;
Compressor& Compressor::operator=(Compressor&&) noexcept = default;

bool Compressor::has_graph() const { return impl_->has_graph(); }
const Graph& Compressor::graph() const { return impl_->graph(); }

StatusOr<ColoringResult> Compressor::Coloring(const QueryOptions& options) {
  return impl_->Coloring(options);
}

StatusOr<FlowQueryResult> Compressor::MaxFlow(NodeId source, NodeId sink,
                                              const QueryOptions& options) {
  return impl_->MaxFlow(source, sink, options);
}

StatusOr<std::vector<FlowQueryResult>> Compressor::MaxFlowBatch(
    const std::vector<std::pair<NodeId, NodeId>>& st_pairs,
    const QueryOptions& options) {
  return impl_->MaxFlowBatch(st_pairs, options);
}

StatusOr<LpQueryResult> Compressor::SolveLp(const LpProblem& lp,
                                            const QueryOptions& options) {
  return impl_->SolveLp(lp, options);
}

StatusOr<CentralityQueryResult> Compressor::Centrality(
    const QueryOptions& options) {
  return impl_->Centrality(options);
}

StatusOr<EditApplyResult> Compressor::ApplyEdits(
    const std::vector<dynamic::EditOp>& edits, const EditApplyOptions& options) {
  return impl_->ApplyEdits(edits, options);
}

int64_t Compressor::graph_version() const { return impl_->graph_version(); }

CompressorStats Compressor::stats() const { return impl_->stats(); }

}  // namespace qsc
