// qsc::Compressor — the compress-once, query-many session API
// (docs/API.md). The paper's value proposition is amortization: compute
// one quasi-stable coloring, then answer many max-flow / LP / centrality
// queries from the compressed representation. A Compressor owns the graph
// and a ColoringCache of live anytime refiners, so repeated queries that
// agree on their ColoringSpec (pins, alpha/beta, split rule, tolerance)
// share one coloring, and a request for more colors *continues* the cached
// refinement instead of recomputing — bit-identical to a fresh run.
//
// All queries validate their options and return StatusOr; the legacy free
// functions (ApproximateMaxFlow, ApproximateBetweenness) remain as thin
// one-shot wrappers that abort on errors the session API reports.
//
// Thread-safety (docs/API.md "Concurrency contract"): all queries and
// stats() may be called concurrently from any number of threads. The
// coloring cache serializes per ColoringSpec (distinct specs refine in
// parallel), the SolveLp cache serializes per cached LP, and every query
// result is bit-identical to the same query issued against a
// single-threaded session — concurrency changes wall-clock time and the
// hit/recoloring *attribution* of racing queries, never a result.
// Construction, move, and destruction are not thread-safe; publish the
// session to worker threads with the usual happens-before edge.
//
// Dynamic graphs (docs/DYNAMIC.md): ApplyEdits mutates the session graph
// in place and repairs the cached colorings instead of discarding them.
// It takes the session's writer lock while queries hold it shared, so
// edits serialize against queries (each query runs wholly on one graph
// version, stamped into its telemetry) and ApplyEdits may race queries
// safely — every result equals the same query issued before or after the
// batch. The reference from graph() is only stable until the next
// ApplyEdits; capture what you need, not the reference, across edits.
//
// Constructed with a ThreadPool, the session also parallelizes inside
// queries: Rothko split scoring, MaxFlowBatch fan-out, and the Centrality
// pivot passes all run on the pool, again with bit-identical results for
// any pool size (the deterministic ordered-commit primitives of
// qsc/parallel).

#ifndef QSC_API_COMPRESSOR_H_
#define QSC_API_COMPRESSOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "qsc/api/coloring_cache.h"
#include "qsc/coloring/partition.h"
#include "qsc/coloring/rothko.h"
#include "qsc/dynamic/edit_stream.h"
#include "qsc/graph/graph.h"
#include "qsc/lp/model.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/status.h"

namespace qsc {

// Per-query knobs, uniform across the four query kinds; fields that do not
// apply to a query are ignored by it (and documented below). Validated at
// the Compressor boundary: invalid values yield Status::InvalidArgument
// instead of the QSC_CHECK aborts of the legacy entry points.
struct QueryOptions {
  // Color budget for the coloring this query runs on. Queries at a larger
  // budget than a cached coloring continue its refinement (anytime
  // property); smaller budgets recompute once and are memoized.
  ColorId max_colors = 64;

  // Stop refining once the max q-error reaches this bound (0 = refine to
  // the budget). Part of the coloring cache key.
  double q_tolerance = 0.0;

  // Witness weighting exponents. Unset means the area's paper default:
  // alpha = beta = 0 for Coloring/MaxFlow, alpha = 1, beta = 0 for
  // SolveLp, alpha = beta = 1 for Centrality (paper Sec 5.2).
  std::optional<double> alpha;
  std::optional<double> beta;

  RothkoOptions::SplitMean split_mean = RothkoOptions::SplitMean::kArithmetic;

  // Compression backend that produces the coloring (coloring/backend.h):
  // "rothko", "lp-rounding", "bucket", or any registered name. "" means
  // kDefaultColoringBackend. Names are canonicalized (trimmed, lowercased)
  // at the boundary and become part of the coloring cache key; a malformed
  // name yields InvalidArgument, a well-formed but unregistered one
  // NotFound. Applies to all four query kinds (SolveLp colors the LP's
  // matrix graph with it).
  std::string backend;

  // Extra nodes to pin into singleton colors (Coloring and Centrality
  // queries only; MaxFlow pins its terminals itself and SolveLp pins the
  // objective row / rhs column internally — both reject explicit pins).
  std::vector<NodeId> pinned;

  // MaxFlow only: also compute the Theorem-6 lower bound (one maxUFlow
  // bisection per color pair; advisable on small graphs only).
  bool compute_lower_bound = false;
  double uniform_flow_tol = 1e-6;

  // SolveLp only: reduction variant (paper Eq. 6 or Grohe et al. [16]).
  LpReduction lp_variant = LpReduction::kSqrtNormalized;

  // Centrality only: pivots sampled per color and the sampling seed.
  int32_t pivots_per_color = 1;
  uint64_t seed = 17;
};

// Per-query amortization telemetry.
struct QueryTelemetry {
  // The coloring was served from the session cache (possibly after
  // continuing its refinement). False on the first query of a spec and on
  // down-budget recomputes.
  bool coloring_cache_hit = false;
  // Witness splits this query performed (0 = pure cache hit).
  int64_t coloring_splits = 0;
  // Incremental wall-clock cost of obtaining the coloring for this query —
  // near zero on a cache hit — and of the solve that followed.
  double coloring_seconds = 0.0;
  double solve_seconds = 0.0;
  // Session graph version this query ran against: 0 for the construction
  // graph, +1 per ApplyEdits batch. A query's coloring and solve always
  // share one version (the session lock).
  int64_t graph_version = 0;
};

// Result of Compressor::Coloring.
struct ColoringResult {
  // Shared immutable snapshot; never copied per query. Queries that agree
  // on spec and budget return the same pointer.
  std::shared_ptr<const Partition> coloring;
  double max_q = 0.0;  // max unweighted q-error, both directions
  QueryTelemetry telemetry;
};

// Result of Compressor::MaxFlow, mirroring FlowApproxResult with the
// partition shared instead of copied (batched queries would otherwise copy
// it per query).
struct FlowQueryResult {
  double upper_bound = 0.0;  // maxFlow of the c^2 reduced graph (Theorem 6)
  double lower_bound = 0.0;  // c^1 bound; 0 unless compute_lower_bound
  ColorId num_colors = 0;
  std::shared_ptr<const Partition> coloring;
  QueryTelemetry telemetry;
};

// Result of Compressor::SolveLp: the reduced LP (with its color maps), the
// reduced solve, and the solution lifted back to the original variable
// space (empty unless the reduced solve is optimal).
struct LpQueryResult {
  ReducedLp reduced;
  LpResult solution;
  std::vector<double> lifted_x;
  QueryTelemetry telemetry;
};

// Result of Compressor::Centrality.
struct CentralityQueryResult {
  std::vector<double> scores;  // approximate betweenness per node
  ColorId num_colors = 0;
  std::shared_ptr<const Partition> coloring;
  QueryTelemetry telemetry;
};

// Session-level cache statistics: the graph-coloring cache (including the
// dynamic repairs/fallbacks/edits_applied telemetry) plus the SolveLp
// matrix-coloring cache.
struct CompressorStats {
  CacheStats coloring;   // ColoringCache counters (hits/misses/splits,
                         // edit_batches/edits_applied/repairs/fallbacks)
  int64_t lp_lookups = 0;
  int64_t lp_hits = 0;   // SolveLp reused a cached matrix-graph refiner
  int64_t lp_misses = 0;
  int64_t lp_recolorings = 0;  // down-budget SolveLp recomputes
};

// Per-batch knobs for ApplyEdits.
struct EditApplyOptions {
  // Repair split budget per cached coloring (dynamic::RepairOptions):
  // a tolerance-bounded entry whose repair would need more splits falls
  // back to from-scratch recoloring instead.
  int64_t max_repair_splits = 256;
};

// Outcome of one ApplyEdits batch.
struct EditApplyResult {
  int64_t edits_applied = 0;  // single-edge edits in this batch
  int64_t repairs = 0;        // cached colorings repaired in place
  int64_t fallbacks = 0;      // cached colorings reset to scratch
  int64_t repair_splits = 0;  // witness splits the repairs spent
  int64_t graph_version = 0;  // session graph version after this batch
  double seconds = 0.0;       // wall-clock cost of the whole batch
};

class ThreadPool;

// Session-construction knobs. Everything here affects resource usage only,
// never results: a budgeted session answers every query bit-identically to
// an unbudgeted one (evicted colorings recompute deterministically).
struct CompressorOptions {
  // Byte budget for the session's coloring cache (live refiners plus
  // served partition snapshots); 0 = unlimited. See
  // ColoringCacheOptions::byte_budget for the eviction contract.
  int64_t coloring_cache_byte_budget = 0;
};

class Compressor {
 public:
  // An LP-only session: SolveLp works, graph queries return
  // FailedPrecondition.
  Compressor();

  // Takes ownership of (a move of) the graph. `pool` (not owned, may be
  // null, must outlive the session) enables intra- and inter-query
  // parallelism; results are bit-identical with and without it.
  explicit Compressor(Graph graph, ThreadPool* pool = nullptr,
                      const CompressorOptions& options = {});

  // Shares ownership; use the aliasing shared_ptr constructor to borrow a
  // caller-owned graph that outlives the session.
  explicit Compressor(std::shared_ptr<const Graph> graph,
                      ThreadPool* pool = nullptr,
                      const CompressorOptions& options = {});

  // Opens a qsc-bin file (docs/FORMATS.md) and serves it zero-copy: the
  // session's queries run over a GraphView of the mmap'd payload, so no
  // owning Graph is materialized and the resident footprint stays near the
  // derived in-CSR/weight caches instead of a full adjacency copy. All
  // five query kinds answer bit-identically to a session constructed from
  // ReadBinary(path) (the serving/mmap-* bench scenarios gate this).
  // graph() and ApplyEdits materialize an owning copy on first use
  // (copy-on-write); until then the file mapping must stay valid, which
  // the session guarantees by owning the MappedGraph. Fails with the
  // MapBinary status on a missing or malformed file.
  static StatusOr<Compressor> FromFile(const std::string& path,
                                       ThreadPool* pool = nullptr,
                                       const CompressorOptions& options = {});

  ~Compressor();

  Compressor(const Compressor&) = delete;
  Compressor& operator=(const Compressor&) = delete;
  Compressor(Compressor&&) noexcept;
  Compressor& operator=(Compressor&&) noexcept;

  // True when the session has a graph — owned or mapped (graph() is then
  // valid).
  bool has_graph() const;

  // The session graph as an owning Graph. On a FromFile session this
  // materializes an owning copy on first call (thread-safe, once); queries
  // keep running over the original view, so results are unaffected.
  const Graph& graph() const;

  // The quasi-stable coloring itself: compress the session graph under the
  // options' spec. Defaults: alpha = beta = 0.
  StatusOr<ColoringResult> Coloring(const QueryOptions& options = {});

  // Coloring-based max-flow approximation (paper Theorem 6): terminals
  // pinned to singletons, c^2 reduced graph solved exactly. Bit-identical
  // to ApproximateMaxFlow at the same options. Defaults: alpha = beta = 0.
  StatusOr<FlowQueryResult> MaxFlow(NodeId source, NodeId sink,
                                    const QueryOptions& options = {});

  // Serves each (source, sink) pair; pairs that agree share one coloring
  // through the cache, so k queries on one pair cost one coloring plus k
  // reduced solves. Validates every pair before running any query.
  // Results are identical to calling MaxFlow in a loop; with a session
  // ThreadPool the pairs fan out over the pool (distinct pairs color
  // concurrently) and only per-query telemetry attribution may differ
  // from the sequential loop.
  StatusOr<std::vector<FlowQueryResult>> MaxFlowBatch(
      const std::vector<std::pair<NodeId, NodeId>>& st_pairs,
      const QueryOptions& options = {});

  // LP reduction (paper Sec 4.1) + reduced simplex solve + lift. Colors
  // the LP's extended-matrix bipartite graph, not the session graph;
  // repeated SolveLp calls on the same LP (by content) reuse a cached
  // matrix-graph refiner across budgets. Requires max_colors >= 4.
  // Defaults: alpha = 1, beta = 0.
  StatusOr<LpQueryResult> SolveLp(const LpProblem& lp,
                                  const QueryOptions& options = {});

  // Color-pivot betweenness approximation (paper Sec 4.3). Bit-identical
  // to ApproximateBetweenness at the same options. Defaults:
  // alpha = beta = 1.
  StatusOr<CentralityQueryResult> Centrality(const QueryOptions& options = {});

  // Applies one edit batch to the session graph (docs/DYNAMIC.md). The
  // batch is validated and applied all-or-nothing via
  // dynamic::ApplyEditBatch — an invalid edit (duplicate insert, absent
  // delete/update, bad endpoint or weight) fails the whole call with the
  // graph unchanged. On success every cached coloring is repaired in
  // place or reset for from-scratch recoloring (the repair/fallback
  // contract of dynamic/incremental.h), the graph version increments, and
  // all five query kinds keep serving: post-batch results are identical
  // to the same queries against a fresh session on the mutated graph,
  // never worse than max(q_tolerance, scratch error) on the coloring.
  // Safe to call concurrently with queries (it takes the session writer
  // lock); concurrent ApplyEdits calls serialize. Rejects an empty batch
  // and, on an LP-only or empty-graph session, FailedPrecondition.
  // SolveLp's matrix-coloring cache keys on LP content, not the session
  // graph, so it is unaffected by edits.
  StatusOr<EditApplyResult> ApplyEdits(const std::vector<dynamic::EditOp>& edits,
                                       const EditApplyOptions& options = {});

  // Number of ApplyEdits batches applied so far (0 = construction graph).
  int64_t graph_version() const;

  // Snapshot of the session counters (consistent under concurrency).
  CompressorStats stats() const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qsc

#endif  // QSC_API_COMPRESSOR_H_
