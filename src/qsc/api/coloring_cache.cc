#include "qsc/api/coloring_cache.h"

#include <algorithm>
#include <utility>

#include "qsc/api/hashing.h"
#include "qsc/util/timer.h"

namespace qsc {
namespace {

RothkoOptions ToRothkoOptions(const ColoringSpec& spec) {
  RothkoOptions options;
  // max_colors is owned by the Refine() loop, not the refiner (Run() is
  // never called on cached refiners).
  options.q_tolerance = spec.q_tolerance;
  options.alpha = spec.alpha;
  options.beta = spec.beta;
  options.split_mean = spec.split_mean;
  return options;
}

}  // namespace

size_t ColoringSpecHash::operator()(const ColoringSpec& spec) const {
  using api_internal::HashMixDouble;
  using api_internal::HashMixWord;
  uint64_t h = api_internal::kFnvOffsetBasis;
  h = HashMixDouble(h, spec.alpha);
  h = HashMixDouble(h, spec.beta);
  h = HashMixDouble(h, spec.q_tolerance);
  h = HashMixWord(h, static_cast<uint64_t>(spec.split_mean));
  for (const NodeId pin : spec.pinned) {
    h = HashMixWord(h, static_cast<uint64_t>(pin));
  }
  return static_cast<size_t>(h);
}

Partition InitialPartition(const ColoringSpec& spec, NodeId num_nodes) {
  std::vector<int32_t> labels(num_nodes,
                              static_cast<int32_t>(spec.pinned.size()));
  for (size_t i = 0; i < spec.pinned.size(); ++i) {
    const NodeId pin = spec.pinned[i];
    QSC_CHECK(pin >= 0 && pin < num_nodes);
    labels[pin] = static_cast<int32_t>(i);
  }
  return Partition::FromColorIds(labels);
}

struct ColoringCache::Entry {
  Entry(const Graph& g, const ColoringSpec& spec)
      : refiner(g, InitialPartition(spec, g.num_nodes()),
                ToRothkoOptions(spec)),
        initial_colors(refiner.partition().num_colors()) {}

  RothkoRefiner refiner;
  // Colors of the spec's initial partition (pins + 1); no budget can go
  // below this, exactly as in RothkoRefiner::Run().
  ColorId initial_colors;
  // Step() returned false: the coloring converged (q <= tolerance or no
  // splittable color); larger budgets cannot advance it.
  bool converged = false;
  // Snapshot of the refiner's current partition; reset on refinement.
  std::shared_ptr<const Partition> head;
  // Snapshots previously served, keyed by requested budget. Serves
  // down-budget requests without rerunning (splits are not invertible).
  std::map<ColorId, std::pair<std::shared_ptr<const Partition>, double>>
      served;
};

ColoringCache::ColoringCache(std::shared_ptr<const Graph> graph)
    : graph_(std::move(graph)) {
  QSC_CHECK(graph_ != nullptr);
}

ColoringCache::~ColoringCache() = default;

ColoringCache::Handle ColoringCache::Refine(const ColoringSpec& spec,
                                            ColorId budget) {
  QSC_CHECK_GT(budget, 0);
  WallTimer timer;
  Handle handle;
  ++stats_.lookups;

  auto it = entries_.find(spec);
  const bool found = it != entries_.end();
  if (!found) {
    ++stats_.misses;
    it = entries_.emplace(spec, std::make_unique<Entry>(*graph_, spec)).first;
  }
  Entry& entry = *it->second;

  // A budget below the initial color count cannot be met (pins are never
  // merged); Run() serves the initial partition there, and so do we —
  // without taking the down-budget recompute path.
  budget = std::max(budget, entry.initial_colors);

  // Down-budget request on a refiner that has already split past `budget`:
  // serve the memoized snapshot, or recompute this budget once.
  if (entry.refiner.partition().num_colors() > budget) {
    const auto served = entry.served.find(budget);
    if (served != entry.served.end()) {
      ++stats_.hits;
      handle.cache_hit = true;
      handle.partition = served->second.first;
      handle.max_error = served->second.second;
      handle.seconds = timer.ElapsedSeconds();
      return handle;
    }
    ++stats_.recolorings;
    RothkoRefiner fresh(*graph_, InitialPartition(spec, graph_->num_nodes()),
                        ToRothkoOptions(spec));
    const ColorId initial = fresh.partition().num_colors();
    while (fresh.partition().num_colors() < budget && fresh.Step(budget)) {
    }
    handle.splits = fresh.partition().num_colors() - initial;
    stats_.refine_splits += handle.splits;
    handle.partition = std::make_shared<const Partition>(fresh.partition());
    handle.max_error = fresh.CurrentMaxError();
    entry.served[budget] = {handle.partition, handle.max_error};
    handle.seconds = timer.ElapsedSeconds();
    return handle;
  }

  // Continue the cached refinement — the same loop as RothkoRefiner::Run(),
  // so the result is bit-identical to a fresh run at `budget`.
  if (found) {
    ++stats_.hits;
    handle.cache_hit = true;
  }
  const ColorId before = entry.refiner.partition().num_colors();
  while (!entry.converged &&
         entry.refiner.partition().num_colors() < budget) {
    if (!entry.refiner.Step(budget)) {
      entry.converged = true;
    }
  }
  handle.splits = entry.refiner.partition().num_colors() - before;
  stats_.refine_splits += handle.splits;
  if (handle.splits > 0 || entry.head == nullptr) {
    entry.head =
        std::make_shared<const Partition>(entry.refiner.partition());
  }
  handle.partition = entry.head;
  handle.max_error = entry.refiner.CurrentMaxError();
  entry.served[budget] = {handle.partition, handle.max_error};
  handle.seconds = timer.ElapsedSeconds();
  return handle;
}

}  // namespace qsc
