#include "qsc/api/coloring_cache.h"

#include <algorithm>
#include <utility>

#include "qsc/api/hashing.h"
#include "qsc/parallel/thread_pool.h"
#include "qsc/util/timer.h"

namespace qsc {
namespace {

ColoringParams ToColoringParams(const ColoringSpec& spec, ThreadPool* pool) {
  ColoringParams params;
  // The color budget is owned by the Refine() loop, not the backend.
  params.q_tolerance = spec.q_tolerance;
  params.alpha = spec.alpha;
  params.beta = spec.beta;
  params.split_mean = spec.split_mean;
  params.pool = pool;  // speeds up internal scans; never changes a split
  return params;
}

// Builds the spec's live backend, wrapped in an IncrementalRecolorer so
// edit batches can repair it in place (ApplyGraph). While the graph is
// frozen the wrapper is pure delegation — bit-identical to the raw
// backend. Aborts on unregistered names (the Compressor boundary
// validates before a spec reaches the cache).
std::unique_ptr<dynamic::IncrementalRecolorer> MakeBackend(
    const GraphView& view, std::shared_ptr<const void> keepalive,
    const ColoringSpec& spec, ThreadPool* pool) {
  return std::make_unique<dynamic::IncrementalRecolorer>(
      view, std::move(keepalive), api_internal::BackendOrDefault(spec.backend),
      InitialPartition(spec, view.num_nodes()), ToColoringParams(spec, pool));
}

}  // namespace

bool operator==(const ColoringSpec& a, const ColoringSpec& b) {
  return a.alpha == b.alpha && a.beta == b.beta &&
         a.q_tolerance == b.q_tolerance && a.split_mean == b.split_mean &&
         api_internal::BackendOrDefault(a.backend) ==
             api_internal::BackendOrDefault(b.backend) &&
         a.pinned == b.pinned;
}

size_t ColoringSpecHash::operator()(const ColoringSpec& spec) const {
  using api_internal::HashMixDouble;
  using api_internal::HashMixWord;
  uint64_t h = api_internal::kFnvOffsetBasis;
  h = HashMixDouble(h, spec.alpha);
  h = HashMixDouble(h, spec.beta);
  h = HashMixDouble(h, spec.q_tolerance);
  h = HashMixWord(h, static_cast<uint64_t>(spec.split_mean));
  // The default backend mixes nothing (HashMixBackendName), keeping
  // default-constructed specs' hashes bit-identical to pre-registry ones.
  h = api_internal::HashMixBackendName(h, spec.backend);
  for (const NodeId pin : spec.pinned) {
    h = HashMixWord(h, static_cast<uint64_t>(pin));
  }
  return static_cast<size_t>(h);
}

Partition InitialPartition(const ColoringSpec& spec, NodeId num_nodes) {
  std::vector<int32_t> labels(num_nodes,
                              static_cast<int32_t>(spec.pinned.size()));
  for (size_t i = 0; i < spec.pinned.size(); ++i) {
    const NodeId pin = spec.pinned[i];
    QSC_CHECK(pin >= 0 && pin < num_nodes);
    labels[pin] = static_cast<int32_t>(i);
  }
  return Partition::FromColorIds(labels);
}

struct ColoringCache::Entry {
  // Serializes every read and write of the refinement fields below. Held
  // for the whole refinement of one request, so concurrent requests
  // against one spec queue behind each other while distinct specs proceed
  // in parallel.
  std::mutex mutex;

  // Built lazily under `mutex` on first use, so inserting the map slot
  // (under the cache-wide unique lock) stays O(1) and never blocks other
  // specs behind a graph scan. The wrapper holds the spec's backend and
  // gives ApplyGraph its repair verb.
  std::unique_ptr<dynamic::IncrementalRecolorer> refiner;

  // Colors of the spec's initial partition (pins + 1); no budget can go
  // below this, exactly as in RothkoRefiner::Run().
  ColorId initial_colors = 0;
  // Step() returned false: the coloring converged (q <= tolerance or no
  // splittable color); larger budgets cannot advance it.
  bool converged = false;
  // Snapshot of the refiner's current partition; reset on refinement.
  std::shared_ptr<const Partition> head;
  // Snapshots previously served, keyed by requested budget. Serves
  // down-budget requests without rerunning (splits are not invertible).
  std::map<ColorId, std::pair<std::shared_ptr<const Partition>, double>>
      served;

  // Pin count of in-flight Refine() calls. Increments happen under the
  // cache map lock (shared or unique) and the eviction scan runs under
  // the unique lock, so a scan that observes 0 cannot race a new pin;
  // only entries with active == 0 are evictable.
  std::atomic<int32_t> active{0};
  // LRU stamp from the cache-wide use clock, set at acquisition.
  std::atomic<uint64_t> last_used{0};
  // Footprint last folded into the cache total; guarded by the cache
  // map's unique lock.
  int64_t bytes = 0;

  // Footprint of this entry: the live refiner plus every distinct served
  // snapshot (down-budget memoizations often alias the head or each
  // other; each partition is counted once). Caller holds `mutex`.
  int64_t MemoryBytes() const {
    int64_t total = static_cast<int64_t>(sizeof(Entry));
    if (refiner != nullptr) total += refiner->MemoryBytes();
    std::vector<const Partition*> counted;
    const auto count = [&](const std::shared_ptr<const Partition>& p) {
      if (p == nullptr) return;
      if (std::find(counted.begin(), counted.end(), p.get()) !=
          counted.end()) {
        return;
      }
      counted.push_back(p.get());
      total += p->MemoryBytes();
    };
    count(head);
    for (const auto& [budget, snapshot] : served) {
      total += static_cast<int64_t>(sizeof(ColorId) + sizeof(snapshot));
      count(snapshot.first);
    }
    return total;
  }
};

ColoringCache::ColoringCache(std::shared_ptr<const Graph> graph,
                             ThreadPool* pool,
                             const ColoringCacheOptions& options)
    : graph_(std::move(graph)), pool_(pool), options_(options) {
  QSC_CHECK(graph_ != nullptr);
  QSC_CHECK_GE(options_.byte_budget, 0);
  view_ = GraphView(*graph_);
  keepalive_ = graph_;
}

ColoringCache::ColoringCache(GraphView view,
                             std::shared_ptr<const void> keepalive,
                             ThreadPool* pool,
                             const ColoringCacheOptions& options)
    : view_(std::move(view)),
      keepalive_(std::move(keepalive)),
      pool_(pool),
      options_(options) {
  QSC_CHECK_GE(options_.byte_budget, 0);
}

ColoringCache::~ColoringCache() = default;

CacheStats ColoringCache::stats() const {
  CacheStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
  }
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    snapshot.bytes_in_use = total_bytes_;
    snapshot.peak_bytes = peak_bytes_;
  }
  return snapshot;
}

int64_t ColoringCache::num_entries() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return static_cast<int64_t>(entries_.size());
}

ColoringCache::Handle ColoringCache::Refine(const ColoringSpec& spec,
                                            ColorId budget) {
  QSC_CHECK_GT(budget, 0);
  WallTimer timer;
  Handle handle;
  // Canonical accounting key; also the registry key MakeBackend uses, so
  // a lookup and its backend row can never disagree.
  const std::string& backend_name =
      api_internal::BackendOrDefault(spec.backend);

  // Find-or-insert the spec's entry: optimistic shared lock first, then
  // the unique lock only on the insert path (double-checked via
  // try_emplace, so two racing first queries create one entry and the
  // loser counts as a hit — the same totals a serialized pair produces).
  // The entry is pinned (active++) under the map lock, which keeps the
  // eviction scan — it runs under the unique lock and skips active
  // entries — from dropping an entry a request is about to refine.
  std::shared_ptr<Entry> entry;
  // The graph view this request refines against (plus the keepalive that
  // pins its storage), snapshotted under the map lock (never under an
  // entry mutex — ApplyGraph holds the map lock while acquiring entry
  // mutexes, so the reverse order would deadlock).
  GraphView view;
  std::shared_ptr<const void> keepalive;
  bool found = true;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    view = view_;
    keepalive = keepalive_;
    const auto it = entries_.find(spec);
    if (it != entries_.end()) {
      entry = it->second;
      entry->active.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (entry == nullptr) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    view = view_;
    keepalive = keepalive_;
    const auto [it, inserted] = entries_.try_emplace(spec, nullptr);
    if (inserted) it->second = std::make_shared<Entry>();
    found = !inserted;
    entry = it->second;
    entry->active.fetch_add(1, std::memory_order_relaxed);
  }
  entry->last_used.store(
      1 + use_clock_.fetch_add(1, std::memory_order_relaxed),
      std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.lookups;
    ++stats_.per_backend[backend_name].lookups;
    if (!found) {
      ++stats_.misses;
      ++stats_.per_backend[backend_name].misses;
    }
  }

  int64_t entry_bytes = 0;
  {
    std::lock_guard<std::mutex> entry_lock(entry->mutex);
    if (entry->refiner == nullptr) {
      entry->refiner = MakeBackend(view, keepalive, spec, pool_);
      entry->initial_colors = entry->refiner->partition().num_colors();
    }

    // A budget below the initial color count cannot be met (pins are never
    // merged); Run() serves the initial partition there, and so do we —
    // without taking the down-budget recompute path.
    budget = std::max(budget, entry->initial_colors);

    if (entry->refiner->partition().num_colors() > budget) {
      // Down-budget request on a refiner that has already split past
      // `budget`: serve the memoized snapshot, or recompute this budget
      // once.
      const auto served = entry->served.find(budget);
      if (served != entry->served.end()) {
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.hits;
          ++stats_.per_backend[backend_name].hits;
        }
        handle.cache_hit = true;
        handle.partition = served->second.first;
        handle.max_error = served->second.second;
      } else {
        std::unique_ptr<dynamic::IncrementalRecolorer> fresh =
            MakeBackend(view, keepalive, spec, pool_);
        const ColorId initial = fresh->partition().num_colors();
        while (fresh->partition().num_colors() < budget &&
               fresh->Step(budget)) {
        }
        handle.splits = fresh->partition().num_colors() - initial;
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.recolorings;
          stats_.refine_splits += handle.splits;
          CacheStats::BackendStats& row = stats_.per_backend[backend_name];
          ++row.recolorings;
          row.refine_splits += handle.splits;
        }
        handle.partition =
            std::make_shared<const Partition>(fresh->partition());
        handle.max_error = fresh->CurrentMaxError();
        entry->served[budget] = {handle.partition, handle.max_error};
      }
    } else {
      // Continue the cached refinement — the same loop as
      // RothkoRefiner::Run(), so the result is bit-identical to a fresh
      // run at `budget`.
      handle.cache_hit = found;
      const ColorId before = entry->refiner->partition().num_colors();
      while (!entry->converged &&
             entry->refiner->partition().num_colors() < budget) {
        if (!entry->refiner->Step(budget)) {
          entry->converged = true;
        }
      }
      handle.splits = entry->refiner->partition().num_colors() - before;
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.refine_splits += handle.splits;
        CacheStats::BackendStats& row = stats_.per_backend[backend_name];
        row.refine_splits += handle.splits;
        if (found) {
          ++stats_.hits;
          ++row.hits;
        }
      }
      if (handle.splits > 0 || entry->head == nullptr) {
        entry->head =
            std::make_shared<const Partition>(entry->refiner->partition());
      }
      handle.partition = entry->head;
      handle.max_error = entry->refiner->CurrentMaxError();
      entry->served[budget] = {handle.partition, handle.max_error};
    }
    entry_bytes = entry->MemoryBytes();
  }

  FinishUse(entry, entry_bytes);
  handle.seconds = timer.ElapsedSeconds();
  return handle;
}

ColoringCache::EditApplyStats ColoringCache::ApplyGraph(
    std::shared_ptr<const Graph> new_graph,
    const std::vector<dynamic::EditOp>& edits,
    const dynamic::RepairOptions& options) {
  QSC_CHECK(new_graph != nullptr);
  QSC_CHECK_EQ(new_graph->num_nodes(), view_.num_nodes());
  EditApplyStats result;
  // (backend row, repaired?) per visited entry, applied to the stats
  // after the map lock drops.
  std::vector<std::pair<std::string, bool>> attributions;
  {
    // The unique map lock serializes against every Refine(); entry
    // mutexes are acquired inside it, which is safe because Refine never
    // waits on the map lock while holding an entry mutex.
    std::unique_lock<std::shared_mutex> lock(mutex_);
    graph_ = std::move(new_graph);
    view_ = GraphView(*graph_);
    keepalive_ = graph_;
    for (auto& [spec, entry] : entries_) {
      std::lock_guard<std::mutex> entry_lock(entry->mutex);
      if (entry->refiner == nullptr) {
        // Never refined: nothing to repair. The next Refine() builds it
        // over the new graph.
        continue;
      }
      const dynamic::RepairOutcome outcome =
          entry->refiner->ApplyGraph(graph_, edits, options);
      entry->converged = outcome.converged;
      // Snapshots of the old graph's colorings must not be served again.
      entry->head = nullptr;
      entry->served.clear();
      ++result.entries;
      if (outcome.repaired) {
        ++result.repairs;
        result.repair_splits += outcome.splits;
      } else {
        ++result.fallbacks;
      }
      attributions.emplace_back(api_internal::BackendOrDefault(spec.backend),
                                outcome.repaired);
      const int64_t new_bytes = entry->MemoryBytes();
      total_bytes_ += new_bytes - entry->bytes;
      entry->bytes = new_bytes;
      if (total_bytes_ > peak_bytes_) peak_bytes_ = total_bytes_;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.edit_batches;
    stats_.edits_applied += static_cast<int64_t>(edits.size());
    stats_.repairs += result.repairs;
    stats_.fallbacks += result.fallbacks;
    stats_.repair_splits += result.repair_splits;
    for (const auto& [backend_name, repaired] : attributions) {
      CacheStats::BackendStats& row = stats_.per_backend[backend_name];
      if (repaired) {
        ++row.repairs;
      } else {
        ++row.fallbacks;
      }
    }
  }
  return result;
}

void ColoringCache::FinishUse(const std::shared_ptr<Entry>& entry,
                              int64_t new_bytes) {
  int64_t evicted = 0;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    total_bytes_ += new_bytes - entry->bytes;
    entry->bytes = new_bytes;
    if (total_bytes_ > peak_bytes_) peak_bytes_ = total_bytes_;
    // Unpin before evicting so the budget can be enforced even when this
    // request's own entry is the only candidate (a single entry larger
    // than the budget must not park the cache above it).
    entry->active.fetch_sub(1, std::memory_order_relaxed);
    if (options_.byte_budget > 0) {
      while (total_bytes_ > options_.byte_budget) {
        auto victim = entries_.end();
        uint64_t oldest = 0;
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
          const Entry& candidate = *it->second;
          if (candidate.active.load(std::memory_order_relaxed) != 0) continue;
          const uint64_t stamp =
              candidate.last_used.load(std::memory_order_relaxed);
          if (victim == entries_.end() || stamp < oldest) {
            victim = it;
            oldest = stamp;
          }
        }
        if (victim == entries_.end()) break;  // everything pinned
        total_bytes_ -= victim->second->bytes;
        entries_.erase(victim);
        ++evicted;
      }
    }
  }
  if (evicted > 0) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.evictions += evicted;
  }
}

}  // namespace qsc
