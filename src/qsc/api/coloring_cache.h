// The session-level coloring cache behind qsc::Compressor (paper Sec 5.2:
// Rothko as an anytime co-routine, amortized across queries).
//
// A cache entry is keyed by a ColoringSpec — everything that determines
// the Rothko split sequence except the color budget — and holds a *live*
// RothkoRefiner. Because each witness split is a deterministic function of
// the current partition only, a request for a larger budget continues the
// cached refinement and yields a partition bit-identical to a fresh run at
// that budget (tests/api_cache_resume_test.cc proves this over the shared
// 56-graph corpus). Partitions are handed out as shared snapshots, so
// serving a query never copies the coloring; repeated requests at one
// budget share one snapshot.
//
// Budgets below the cached refiner's current color count cannot be rolled
// back (splits are not invertible), so such requests recompute from
// scratch once and memoize the result per budget ("recoloring" in the
// stats). Sessions that sweep budgets in ascending order — the anytime
// direction, and what NormalizeBudgets produces — never pay this.
//
// Thread-safety: Refine() may be called concurrently from any number of
// threads. The spec map is guarded by a shared_mutex and each entry owns
// a mutex that serializes refinement of that spec, so queries against
// distinct specs refine concurrently while queries against one spec
// queue. The partition served for (spec, budget) is bit-identical no
// matter how calls interleave — an up-budget continuation equals a fresh
// run and a down-budget recompute starts from scratch — so only the
// *stats attribution* (hit vs recoloring for racing down-budget queries)
// depends on arrival order; totals still satisfy
// hits + misses + recolorings == lookups.
//
// Byte budget (ColoringCacheOptions): a long-lived server cannot let the
// entry map grow without bound, so the cache tracks the footprint of every
// entry (live refiner + distinct served snapshots) and, when a budget is
// configured, evicts least-recently-used idle entries after each request
// until the total is back within the budget. Eviction never changes a
// result: a re-queried evicted spec recomputes from scratch — a miss in
// the stats — and the anytime determinism makes the recomputed partition
// bitwise equal to the evicted one (tests/api_cache_eviction_test.cc
// proves this over the shared 56-graph corpus). Entries pinned by
// in-flight requests are not evictable, so under concurrency the budget
// is enforced whenever no request is mid-flight.

#ifndef QSC_API_COLORING_CACHE_H_
#define QSC_API_COLORING_CACHE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "qsc/coloring/backend.h"
#include "qsc/coloring/partition.h"
#include "qsc/coloring/rothko.h"
#include "qsc/dynamic/edit_stream.h"
#include "qsc/dynamic/incremental.h"
#include "qsc/graph/graph.h"
#include "qsc/graph/graph_view.h"

namespace qsc {

class ThreadPool;

// Cache key: the parameters that determine the backend's split sequence
// from a given graph. The color budget is deliberately absent — one entry
// serves every budget via the anytime property.
struct ColoringSpec {
  // Witness weighting C_ij = |P_i|^alpha * |P_j|^beta (paper Sec 5.2).
  double alpha = 0.0;
  double beta = 0.0;

  // Refinement stops once the max q-error drops to this bound.
  double q_tolerance = 0.0;

  RothkoOptions::SplitMean split_mean = RothkoOptions::SplitMean::kArithmetic;

  // Canonical name of the compression backend (coloring/backend.h); ""
  // means kDefaultColoringBackend and compares/hashes identically to it,
  // so pre-registry specs keep their cache identity. The cache requires
  // the name be a CanonicalBackendName fixpoint of a registered backend;
  // qsc::Compressor validates and canonicalizes at the API boundary.
  std::string backend;

  // Nodes seeded into their own singleton colors: pinned[i] is labeled i
  // and every other node shares label pinned.size(); the labels are then
  // renumbered to dense color ids in first-appearance node order by
  // Partition::FromColorIds (so pin order affects the split sequence, but
  // a pin's color id must be looked up via ColorOf, not assumed to be i).
  // The max-flow terminal pinning of Theorem 6 is pinned = {s, t}.
  std::vector<NodeId> pinned;

  // Equality folds "" onto the default backend; defined in
  // coloring_cache.cc next to ColoringSpecHash so the two stay in sync.
  friend bool operator==(const ColoringSpec& a, const ColoringSpec& b);
  friend bool operator!=(const ColoringSpec& a, const ColoringSpec& b) {
    return !(a == b);
  }
};

struct ColoringSpecHash {
  size_t operator()(const ColoringSpec& spec) const;
};

// The initial partition a spec induces: each pinned node in its own
// singleton color, the rest in one shared color (color ids assigned in
// first-appearance node order — see ColoringSpec::pinned). Matches
// Partition::Trivial for an empty pin set and ApproximateMaxFlow's
// historical terminal pinning for {s, t}.
Partition InitialPartition(const ColoringSpec& spec, NodeId num_nodes);

// Session-lifetime amortization counters.
//
// Reconciliation invariant: every lookup is attributed to exactly one of
// {hit, miss, recoloring}, so hits + misses + recolorings == lookups — in
// the totals AND within every per_backend row. Which bucket a racing
// down-budget pair lands in is arrival-order-dependent (documented in the
// file comment), but the invariant itself holds under any interleaving
// because the attribution is decided while the lookup is counted
// (tests/api_compressor_test.cc and the concurrency suite assert it).
struct CacheStats {
  // One backend's share of the traffic, keyed by canonical backend name
  // in per_backend (a "" spec is accounted under kDefaultColoringBackend).
  struct BackendStats {
    int64_t lookups = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t recolorings = 0;
    int64_t refine_splits = 0;
    int64_t repairs = 0;    // entries repaired in place across edit batches
    int64_t fallbacks = 0;  // entries reset for from-scratch recoloring
  };

  int64_t lookups = 0;       // coloring requests served
  int64_t hits = 0;          // served from a cached refiner (possibly after
                             // continuing its refinement)
  int64_t misses = 0;        // new spec: refiner built and run from scratch
  int64_t recolorings = 0;   // down-budget recomputes within a cached spec
  int64_t refine_splits = 0; // total witness splits performed
  int64_t evictions = 0;     // entries evicted to satisfy the byte budget
  int64_t bytes_in_use = 0;  // tracked footprint of all current entries
  int64_t peak_bytes = 0;    // high-water mark of bytes_in_use

  // Dynamic-graph telemetry (ApplyGraph; docs/DYNAMIC.md). Every live
  // entry of an edit batch is attributed to exactly one of
  // {repair, fallback}, so repairs + fallbacks counts entry-batch pairs.
  int64_t edit_batches = 0;   // ApplyGraph calls
  int64_t edits_applied = 0;  // single-edge edits across all batches
  int64_t repairs = 0;        // entries repaired in place
  int64_t fallbacks = 0;      // entries reset for from-scratch recoloring
  int64_t repair_splits = 0;  // witness splits spent by successful repairs

  // Per-backend breakdown of the five attribution counters above; the
  // column sums over all rows equal the totals.
  std::map<std::string, BackendStats> per_backend;
};

// Session-construction knobs for the cache.
struct ColoringCacheOptions {
  // Maximum total entry footprint in bytes; 0 = unlimited (never evict).
  // An entry's footprint is its live refiner (RothkoRefiner::MemoryBytes)
  // plus every distinct partition snapshot it serves. When a request
  // leaves the total above the budget, least-recently-used idle entries
  // are evicted — possibly including the entry the request itself used —
  // until the total is back within the budget, so with no concurrent
  // requests in flight, bytes_in_use <= byte_budget after every Refine().
  // Eviction is invisible to results: a re-queried evicted spec
  // recomputes bit-identically (and counts as a miss).
  int64_t byte_budget = 0;
};

// Spec-keyed store of live anytime refiners over one graph. Safe for
// concurrent Refine() calls (see the file comment for the locking
// granularity and the determinism guarantee).
class ColoringCache {
 public:
  // One served coloring. `partition` is a shared immutable snapshot —
  // callers must not assume it tracks later refinement.
  struct Handle {
    std::shared_ptr<const Partition> partition;
    double max_error = 0.0;  // max unweighted q-error of `partition`
    bool cache_hit = false;  // an existing entry served this request
    int64_t splits = 0;      // witness splits this request performed
    double seconds = 0.0;    // wall-clock cost of this request
  };

  // `graph` must be non-null; the cache shares ownership. `pool` (not
  // owned, may be null) accelerates each refiner's split scoring without
  // changing any partition — refinement is bit-identical for any pool
  // size (RothkoOptions::pool). `options` configures the byte budget.
  explicit ColoringCache(std::shared_ptr<const Graph> graph,
                         ThreadPool* pool = nullptr,
                         const ColoringCacheOptions& options = {});

  // View-backed construction (the mmap serving path): refiners run over
  // `view` without an owning Graph ever materializing. `keepalive` (may be
  // null) pins whatever owns the viewed arrays — typically the session's
  // MappedGraph. graph() is invalid on such a cache until the first
  // ApplyGraph(); every other member behaves identically.
  ColoringCache(GraphView view, std::shared_ptr<const void> keepalive,
                ThreadPool* pool = nullptr,
                const ColoringCacheOptions& options = {});
  ~ColoringCache();

  ColoringCache(const ColoringCache&) = delete;
  ColoringCache& operator=(const ColoringCache&) = delete;

  // Serves the spec's coloring refined to `budget` colors (or to
  // convergence, whichever comes first; budgets below the spec's initial
  // color count serve the initial partition, like RothkoRefiner::Run()).
  // Contract violations (unvalidated pins, non-positive budget, an
  // unregistered or non-canonical spec.backend) abort; qsc::Compressor
  // validates at the API boundary. The result is bit-identical to a fresh
  // run of the spec's backend from InitialPartition(spec, n) stepped to
  // `budget` colors — for the default backend, to
  //   RothkoColoring(graph, InitialPartition(spec, n),
  //                  {budget, spec.q_tolerance, spec.alpha, spec.beta,
  //                   spec.split_mean})
  // — regardless of which budgets were served before and of concurrent
  // callers (every backend honors the determinism contract of
  // coloring/backend.h).
  Handle Refine(const ColoringSpec& spec, ColorId budget);

  // Aggregate outcome of one ApplyGraph call.
  struct EditApplyStats {
    int64_t entries = 0;  // live entries visited (repairs + fallbacks)
    int64_t repairs = 0;
    int64_t fallbacks = 0;
    int64_t repair_splits = 0;
  };

  // Dynamic serving (docs/DYNAMIC.md): swaps in the already-mutated graph
  // (`edits` is the batch that produced it) and repairs every live entry
  // in place via IncrementalRecolorer::ApplyGraph — tolerance-bounded
  // specs are re-split locally under `options.max_repair_splits`,
  // everything else resets for a from-scratch recoloring that later
  // Refine() calls perform lazily and bit-identically to a fresh cache
  // over the new graph. Served snapshots of the old graph are dropped.
  //
  // Takes the cache-wide unique lock for the whole call, so it serializes
  // against every Refine(); qsc::Compressor additionally guarantees no
  // query is mid-flight (its session lock), which keeps a query's
  // coloring and solve on one graph version.
  EditApplyStats ApplyGraph(std::shared_ptr<const Graph> new_graph,
                            const std::vector<dynamic::EditOp>& edits,
                            const dynamic::RepairOptions& options);

  // The current owning graph. ApplyGraph replaces it, so the reference
  // from graph() is only stable between edit batches; shared_graph()
  // snapshots shared ownership under the map lock and is always safe.
  // Invalid (aborts) on a view-backed cache that has not seen ApplyGraph;
  // null from shared_graph() in that state.
  const Graph& graph() const {
    QSC_CHECK(graph_ != nullptr);
    return *graph_;
  }
  std::shared_ptr<const Graph> shared_graph() const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return graph_;
  }

  // Snapshot of the amortization counters (consistent under concurrency).
  CacheStats stats() const;
  int64_t num_entries() const;

 private:
  struct Entry;

  // Footprint accounting + unpin + budget enforcement after one Refine():
  // folds `new_bytes` into the total, releases the caller's pin, and
  // evicts LRU idle entries while the total exceeds the budget.
  void FinishUse(const std::shared_ptr<Entry>& entry, int64_t new_bytes);

  // The serving substrate: every refiner is built over view_, and
  // keepalive_ pins its backing storage (the owning graph_ or a mapped
  // file). graph_ is null for view-backed caches until ApplyGraph swaps
  // in an owning mutated graph. All three are guarded by mutex_.
  std::shared_ptr<const Graph> graph_;
  GraphView view_;
  std::shared_ptr<const void> keepalive_;
  ThreadPool* pool_;
  ColoringCacheOptions options_;

  mutable std::shared_mutex mutex_;  // guards entries_ and the byte
                                     // accounting (total_bytes_,
                                     // peak_bytes_, Entry::bytes); each
                                     // Entry serializes itself
  std::unordered_map<ColoringSpec, std::shared_ptr<Entry>, ColoringSpecHash>
      entries_;
  int64_t total_bytes_ = 0;
  int64_t peak_bytes_ = 0;

  // LRU clock: each Refine() stamps its entry with the next tick.
  std::atomic<uint64_t> use_clock_{0};

  mutable std::mutex stats_mutex_;
  CacheStats stats_;
};

}  // namespace qsc

#endif  // QSC_API_COLORING_CACHE_H_
