#include "qsc/graph/io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

namespace qsc {
namespace {

// fopen wrapper with RAII close.
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

Status LineError(const std::string& path, int64_t line, const std::string& what) {
  return Status::InvalidArgument(path + " line " + std::to_string(line) +
                                 ": " + what);
}

// Reads the whole file into an 8-byte-aligned heap buffer (new char[] is
// aligned to __STDCPP_DEFAULT_NEW_ALIGNMENT__), so binary payload sections
// can be reinterpreted in place.
Status ReadWholeFile(const std::string& path, std::unique_ptr<char[]>* data,
                     size_t* size) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  if (std::fseek(f.get(), 0, SEEK_END) != 0) {
    return Status::InvalidArgument("cannot seek: " + path);
  }
  const long end = std::ftell(f.get());
  if (end < 0) {
    return Status::InvalidArgument("cannot determine size of: " + path);
  }
  std::rewind(f.get());
  *size = static_cast<size_t>(end);
  data->reset(new char[*size + 1]);
  if (*size > 0 && std::fread(data->get(), 1, *size, f.get()) != *size) {
    return Status::InvalidArgument("short read: " + path);
  }
  (*data)[*size] = '\0';
  return Status::Ok();
}

// Splits `text` into '\n'-terminated lines (stripping a trailing '\r').
// Returns false if the final line lacks a terminating newline; *bad_line is
// then its 1-based number.
bool SplitLines(const char* text, size_t size,
                std::vector<std::pair<const char*, size_t>>* lines,
                int64_t* bad_line) {
  size_t start = 0;
  for (size_t i = 0; i < size; ++i) {
    if (text[i] == '\n') {
      size_t len = i - start;
      if (len > 0 && text[start + len - 1] == '\r') --len;
      lines->push_back({text + start, len});
      start = i + 1;
    }
  }
  if (start != size) {
    lines->push_back({text + start, size - start});
    *bad_line = static_cast<int64_t>(lines->size());
    return false;
  }
  return true;
}

std::vector<std::string> Tokenize(const char* line, size_t len) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < len) {
    while (i < len && (line[i] == ' ' || line[i] == '\t')) ++i;
    const size_t start = i;
    while (i < len && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.emplace_back(line + start, i - start);
  }
  return tokens;
}

bool ParseInt64Token(const std::string& token, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size() || token.empty()) {
    return false;
  }
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDoubleToken(const std::string& token, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (errno != 0 || end != token.c_str() + token.size() || token.empty()) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

Status WriteEdgeList(const Graph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  std::fprintf(f.get(), "# nodes %d directed %d\n", g.num_nodes(),
               g.undirected() ? 0 : 1);
  for (const EdgeTriple& a : g.Arcs()) {
    if (g.undirected() && a.src > a.dst) continue;
    std::fprintf(f.get(), "%d %d %.17g\n", a.src, a.dst, a.weight);
  }
  return Status::Ok();
}

StatusOr<Graph> ReadEdgeList(const std::string& path) {
  std::unique_ptr<char[]> data;
  size_t size = 0;
  QSC_RETURN_IF_ERROR(ReadWholeFile(path, &data, &size));
  std::vector<std::pair<const char*, size_t>> lines;
  int64_t bad_line = 0;
  if (!SplitLines(data.get(), size, &lines, &bad_line)) {
    return LineError(path, bad_line, "unterminated line (missing newline)");
  }
  if (lines.empty()) {
    return LineError(path, 1, "missing edge-list header");
  }

  // Header: "# nodes <n> directed <0|1>".
  const auto header = Tokenize(lines[0].first, lines[0].second);
  int64_t n = 0, directed = 0;
  if (header.size() != 5 || header[0] != "#" || header[1] != "nodes" ||
      header[3] != "directed" || !ParseInt64Token(header[2], &n) ||
      !ParseInt64Token(header[4], &directed)) {
    return LineError(path, 1,
                     "expected header '# nodes <n> directed <0|1>'");
  }
  if (n < 0 || n > std::numeric_limits<NodeId>::max()) {
    return LineError(path, 1, "node count out of range: " + header[2]);
  }
  if (directed != 0 && directed != 1) {
    return LineError(path, 1, "directed flag must be 0 or 1");
  }

  std::vector<EdgeTriple> edges;
  for (size_t i = 1; i < lines.size(); ++i) {
    const int64_t lineno = static_cast<int64_t>(i) + 1;
    if (lines[i].second == 0 || lines[i].first[0] == '#') continue;
    const auto tokens = Tokenize(lines[i].first, lines[i].second);
    if (tokens.empty()) continue;
    int64_t u = 0, v = 0;
    double w = 0.0;
    if (tokens.size() != 3 || !ParseInt64Token(tokens[0], &u) ||
        !ParseInt64Token(tokens[1], &v) || !ParseDoubleToken(tokens[2], &w)) {
      return LineError(path, lineno, "expected edge '<src> <dst> <weight>'");
    }
    if (u < 0 || u >= n || v < 0 || v >= n) {
      return LineError(path, lineno, "edge endpoint out of range [0, " +
                                         std::to_string(n) + ")");
    }
    if (!std::isfinite(w)) {
      return LineError(path, lineno, "non-finite edge weight: " + tokens[2]);
    }
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v), w});
  }
  return Graph::FromEdges(static_cast<NodeId>(n), edges, directed == 0);
}

Status WriteDimacsMaxFlow(const Graph& g, NodeId source, NodeId sink,
                          const std::string& path) {
  if (g.undirected()) {
    return Status::InvalidArgument(
        "DIMACS max-flow expects a directed network");
  }
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  std::fprintf(f.get(), "p max %d %" PRId64 "\n", g.num_nodes(),
               g.num_arcs());
  std::fprintf(f.get(), "n %d s\n", source + 1);
  std::fprintf(f.get(), "n %d t\n", sink + 1);
  for (const EdgeTriple& a : g.Arcs()) {
    std::fprintf(f.get(), "a %d %d %.17g\n", a.src + 1, a.dst + 1, a.weight);
  }
  return Status::Ok();
}

StatusOr<DimacsMaxFlowProblem> ReadDimacsMaxFlow(const std::string& path) {
  std::unique_ptr<char[]> data;
  size_t size = 0;
  QSC_RETURN_IF_ERROR(ReadWholeFile(path, &data, &size));
  std::vector<std::pair<const char*, size_t>> lines;
  int64_t bad_line = 0;
  if (!SplitLines(data.get(), size, &lines, &bad_line)) {
    return LineError(path, bad_line, "unterminated line (missing newline)");
  }

  int64_t num_nodes = -1;
  int64_t num_arcs = -1;
  NodeId source = -1, sink = -1;
  std::vector<EdgeTriple> arcs;
  for (size_t i = 0; i < lines.size(); ++i) {
    const int64_t lineno = static_cast<int64_t>(i) + 1;
    if (lines[i].second == 0) continue;
    const char prefix = lines[i].first[0];
    if (prefix == 'c') continue;  // comment
    const auto tokens = Tokenize(lines[i].first, lines[i].second);
    if (tokens.empty()) continue;
    if (prefix == 'p') {
      if (num_nodes >= 0) {
        return LineError(path, lineno, "duplicate problem line");
      }
      if (tokens.size() != 4 || tokens[0] != "p" || tokens[1] != "max" ||
          !ParseInt64Token(tokens[2], &num_nodes) ||
          !ParseInt64Token(tokens[3], &num_arcs)) {
        return LineError(path, lineno, "expected problem line 'p max <n> <m>'");
      }
      if (num_nodes < 0 || num_nodes > std::numeric_limits<NodeId>::max()) {
        return LineError(path, lineno, "node count out of range: " + tokens[2]);
      }
      if (num_arcs < 0) {
        return LineError(path, lineno, "negative arc count: " + tokens[3]);
      }
    } else if (prefix == 'n') {
      if (num_nodes < 0) {
        return LineError(path, lineno, "node descriptor before problem line");
      }
      int64_t id = 0;
      if (tokens.size() != 3 || tokens[0] != "n" ||
          !ParseInt64Token(tokens[1], &id)) {
        return LineError(path, lineno, "expected node line 'n <id> s|t'");
      }
      if (id < 1 || id > num_nodes) {
        return LineError(path, lineno, "node id out of range [1, " +
                                           std::to_string(num_nodes) + "]");
      }
      if (tokens[2] == "s") {
        if (source >= 0) return LineError(path, lineno, "duplicate source");
        source = static_cast<NodeId>(id - 1);
      } else if (tokens[2] == "t") {
        if (sink >= 0) return LineError(path, lineno, "duplicate sink");
        sink = static_cast<NodeId>(id - 1);
      } else {
        return LineError(path, lineno, "node kind must be 's' or 't'");
      }
    } else if (prefix == 'a') {
      if (num_nodes < 0) {
        return LineError(path, lineno, "arc descriptor before problem line");
      }
      int64_t u = 0, v = 0;
      double cap = 0.0;
      if (tokens.size() != 4 || tokens[0] != "a" ||
          !ParseInt64Token(tokens[1], &u) || !ParseInt64Token(tokens[2], &v) ||
          !ParseDoubleToken(tokens[3], &cap)) {
        return LineError(path, lineno, "expected arc line 'a <u> <v> <cap>'");
      }
      if (u < 1 || u > num_nodes || v < 1 || v > num_nodes) {
        return LineError(path, lineno, "arc endpoint out of range [1, " +
                                           std::to_string(num_nodes) + "]");
      }
      if (!std::isfinite(cap) || cap < 0.0) {
        return LineError(path, lineno, "capacity must be finite and >= 0");
      }
      arcs.push_back({static_cast<NodeId>(u - 1), static_cast<NodeId>(v - 1),
                      cap});
    } else {
      return LineError(path, lineno, std::string("unknown line prefix '") +
                                         prefix + "'");
    }
  }
  if (num_nodes < 0) {
    return Status::InvalidArgument("missing problem line in " + path);
  }
  if (source < 0 || sink < 0) {
    return Status::InvalidArgument("missing source or sink in " + path);
  }
  if (source == sink) {
    return Status::InvalidArgument("source equals sink in " + path);
  }
  if (static_cast<int64_t>(arcs.size()) != num_arcs) {
    return Status::InvalidArgument(
        path + ": arc count mismatch (problem line says " +
        std::to_string(num_arcs) + ", found " + std::to_string(arcs.size()) +
        ")");
  }
  return DimacsMaxFlowProblem{
      Graph::FromEdges(static_cast<NodeId>(num_nodes), arcs,
                       /*undirected=*/false),
      source, sink};
}

// ---------------------------------------------------------------------------
// qsc-bin v1
// ---------------------------------------------------------------------------

namespace {

constexpr char kQscBinMagic[8] = {'q', 's', 'c', 'b', 'i', 'n', '0', '1'};
constexpr uint32_t kQscBinVersion = 1;
constexpr uint32_t kQscBinFlagUndirected = 1u;
constexpr size_t kQscBinHeaderSize = 48;
constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvUpdate(uint64_t hash, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

// Validated zero-copy view of a qsc-bin image in memory.
struct QscBinView {
  int64_t num_nodes = 0;
  int64_t num_arcs = 0;
  bool undirected = false;
  const int64_t* offsets = nullptr;
  const int32_t* dst = nullptr;
  const double* weights = nullptr;
};

Status BinError(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("qsc-bin " + path + ": " + what);
}

// Full structural validation; `data` must be 8-byte aligned. Performs every
// check needed to guarantee that Materialize()/FromArcs cannot abort: sizes
// before array access, checksums before structure, canonical CSR form, and
// (for undirected graphs) bit-identical mirror arcs.
Status ValidateQscBin(const char* data, size_t size, const std::string& path,
                      QscBinView* out) {
  if (size < kQscBinHeaderSize) {
    return BinError(path, "file smaller than the 48-byte header");
  }
  if (std::memcmp(data, kQscBinMagic, sizeof(kQscBinMagic)) != 0) {
    return BinError(path, "bad magic (not a qsc-bin file)");
  }
  uint32_t version = 0, flags = 0;
  int64_t n = 0, m = 0;
  uint64_t payload_sum = 0, header_sum = 0;
  std::memcpy(&version, data + 8, 4);
  std::memcpy(&flags, data + 12, 4);
  std::memcpy(&n, data + 16, 8);
  std::memcpy(&m, data + 24, 8);
  std::memcpy(&payload_sum, data + 32, 8);
  std::memcpy(&header_sum, data + 40, 8);
  if (version != kQscBinVersion) {
    return BinError(path,
                    "unsupported version " + std::to_string(version) +
                        " (expected 1; qsc-bin is little-endian)");
  }
  if ((flags & ~kQscBinFlagUndirected) != 0) {
    return BinError(path, "unknown flag bits set");
  }
  if (QscBinChecksum(data, 40) != header_sum) {
    return BinError(path, "header checksum mismatch");
  }
  if (n < 0 || n > std::numeric_limits<NodeId>::max()) {
    return BinError(path, "node count out of range: " + std::to_string(n));
  }
  if (m < 0 || static_cast<uint64_t>(m) > size / 4) {
    return BinError(path, "arc count out of range: " + std::to_string(m));
  }
  const uint64_t off_bytes = 8 * (static_cast<uint64_t>(n) + 1);
  const uint64_t dst_bytes = 4 * static_cast<uint64_t>(m);
  const uint64_t pad_bytes = (8 - dst_bytes % 8) % 8;
  const uint64_t w_bytes = 8 * static_cast<uint64_t>(m);
  const uint64_t expected =
      kQscBinHeaderSize + off_bytes + dst_bytes + pad_bytes + w_bytes;
  if (expected != size) {
    return BinError(path, "file size mismatch: header implies " +
                              std::to_string(expected) + " bytes, file has " +
                              std::to_string(size));
  }
  if (QscBinChecksum(data + kQscBinHeaderSize, size - kQscBinHeaderSize) !=
      payload_sum) {
    return BinError(path, "payload checksum mismatch");
  }

  QscBinView view;
  view.num_nodes = n;
  view.num_arcs = m;
  view.undirected = (flags & kQscBinFlagUndirected) != 0;
  view.offsets = reinterpret_cast<const int64_t*>(data + kQscBinHeaderSize);
  view.dst =
      reinterpret_cast<const int32_t*>(data + kQscBinHeaderSize + off_bytes);
  view.weights = reinterpret_cast<const double*>(
      data + kQscBinHeaderSize + off_bytes + dst_bytes + pad_bytes);

  if (view.offsets[0] != 0 || view.offsets[n] != m) {
    return BinError(path, "offset array does not span [0, num_arcs]");
  }
  for (int64_t u = 0; u < n; ++u) {
    if (view.offsets[u + 1] < view.offsets[u]) {
      return BinError(path,
                      "offsets decrease at node " + std::to_string(u));
    }
    for (int64_t k = view.offsets[u]; k < view.offsets[u + 1]; ++k) {
      if (view.dst[k] < 0 || view.dst[k] >= n) {
        return BinError(path, "arc head out of range at node " +
                                  std::to_string(u));
      }
      if (k > view.offsets[u] && view.dst[k] <= view.dst[k - 1]) {
        return BinError(path, "adjacency row not strictly sorted at node " +
                                  std::to_string(u));
      }
    }
  }
  for (int64_t k = 0; k < m; ++k) {
    if (!std::isfinite(view.weights[k]) || view.weights[k] == 0.0) {
      return BinError(path, "weight " + std::to_string(k) +
                                " is not finite and non-zero");
    }
  }
  if (view.undirected) {
    for (int64_t u = 0; u < n; ++u) {
      for (int64_t k = view.offsets[u]; k < view.offsets[u + 1]; ++k) {
        const int32_t v = view.dst[k];
        const int64_t lo = view.offsets[v], hi = view.offsets[v + 1];
        const int32_t* row = view.dst + lo;
        const int32_t* pos = std::lower_bound(row, view.dst + hi,
                                              static_cast<int32_t>(u));
        if (pos == view.dst + hi || *pos != static_cast<int32_t>(u)) {
          return BinError(path, "undirected graph missing mirror arc " +
                                    std::to_string(v) + "->" +
                                    std::to_string(u));
        }
        uint64_t wa = 0, wb = 0;
        std::memcpy(&wa, &view.weights[k], 8);
        std::memcpy(&wb, &view.weights[lo + (pos - row)], 8);
        if (wa != wb) {
          return BinError(path, "undirected mirror arcs " +
                                    std::to_string(u) + "<->" +
                                    std::to_string(v) +
                                    " disagree on weight");
        }
      }
    }
  }
  *out = view;
  return Status::Ok();
}

Graph GraphFromView(const QscBinView& view) {
  std::vector<EdgeTriple> arcs;
  arcs.reserve(static_cast<size_t>(view.num_arcs));
  for (int64_t u = 0; u < view.num_nodes; ++u) {
    for (int64_t k = view.offsets[u]; k < view.offsets[u + 1]; ++k) {
      arcs.push_back({static_cast<NodeId>(u), view.dst[k], view.weights[k]});
    }
  }
  return Graph::FromArcs(static_cast<NodeId>(view.num_nodes), arcs,
                         view.undirected);
}

}  // namespace

uint64_t QscBinChecksum(const void* data, size_t size) {
  return FnvUpdate(kFnvOffsetBasis, data, size);
}

Status WriteBinary(const Graph& g, const std::string& path) {
  const int64_t n = g.num_nodes();
  const int64_t m = g.num_arcs();
  std::vector<int64_t> offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<int32_t> dst;
  std::vector<double> weights;
  dst.reserve(static_cast<size_t>(m));
  weights.reserve(static_cast<size_t>(m));
  for (NodeId u = 0; u < n; ++u) {
    for (const NeighborEntry& e : g.OutNeighbors(u)) {
      dst.push_back(e.node);
      weights.push_back(e.weight);
    }
    offsets[static_cast<size_t>(u) + 1] = static_cast<int64_t>(dst.size());
  }

  char header[kQscBinHeaderSize] = {};
  std::memcpy(header, kQscBinMagic, sizeof(kQscBinMagic));
  const uint32_t version = kQscBinVersion;
  const uint32_t flags = g.undirected() ? kQscBinFlagUndirected : 0u;
  std::memcpy(header + 8, &version, 4);
  std::memcpy(header + 12, &flags, 4);
  std::memcpy(header + 16, &n, 8);
  std::memcpy(header + 24, &m, 8);

  const uint64_t pad_bytes = (8 - (4 * static_cast<uint64_t>(m)) % 8) % 8;
  const char pad[8] = {};
  uint64_t payload_sum = kFnvOffsetBasis;
  payload_sum = FnvUpdate(payload_sum, offsets.data(), 8 * offsets.size());
  payload_sum = FnvUpdate(payload_sum, dst.data(), 4 * dst.size());
  payload_sum = FnvUpdate(payload_sum, pad, pad_bytes);
  payload_sum = FnvUpdate(payload_sum, weights.data(), 8 * weights.size());
  std::memcpy(header + 32, &payload_sum, 8);
  const uint64_t header_sum = QscBinChecksum(header, 40);
  std::memcpy(header + 40, &header_sum, 8);

  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  const auto write_all = [&f](const void* buf, size_t bytes) {
    return bytes == 0 || std::fwrite(buf, 1, bytes, f.get()) == bytes;
  };
  if (!write_all(header, kQscBinHeaderSize) ||
      !write_all(offsets.data(), 8 * offsets.size()) ||
      !write_all(dst.data(), 4 * dst.size()) || !write_all(pad, pad_bytes) ||
      !write_all(weights.data(), 8 * weights.size())) {
    return Status::InvalidArgument("short write: " + path);
  }
  return Status::Ok();
}

StatusOr<Graph> ReadBinary(const std::string& path) {
  std::unique_ptr<char[]> data;
  size_t size = 0;
  QSC_RETURN_IF_ERROR(ReadWholeFile(path, &data, &size));
  QscBinView view;
  QSC_RETURN_IF_ERROR(ValidateQscBin(data.get(), size, path, &view));
  return GraphFromView(view);
}

MappedGraph::MappedGraph(MappedGraph&& other) noexcept {
  *this = std::move(other);
}

MappedGraph& MappedGraph::operator=(MappedGraph&& other) noexcept {
  if (this != &other) {
    if (map_base_ != nullptr) ::munmap(map_base_, map_size_);
    map_base_ = other.map_base_;
    map_size_ = other.map_size_;
    num_nodes_ = other.num_nodes_;
    num_arcs_ = other.num_arcs_;
    undirected_ = other.undirected_;
    offsets_ = other.offsets_;
    dst_ = other.dst_;
    weights_ = other.weights_;
    other.map_base_ = nullptr;
    other.map_size_ = 0;
    other.offsets_ = nullptr;
    other.dst_ = nullptr;
    other.weights_ = nullptr;
  }
  return *this;
}

MappedGraph::~MappedGraph() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_size_);
}

Graph MappedGraph::Materialize() const {
  QscBinView view;
  view.num_nodes = num_nodes_;
  view.num_arcs = num_arcs_;
  view.undirected = undirected_;
  view.offsets = offsets_;
  view.dst = dst_;
  view.weights = weights_;
  return GraphFromView(view);
}

StatusOr<MappedGraph> MapBinary(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::InvalidArgument("cannot stat: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kQscBinHeaderSize) {
    ::close(fd);
    return BinError(path, "file smaller than the 48-byte header");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (base == MAP_FAILED) {
    return Status::InvalidArgument("mmap failed: " + path);
  }
  QscBinView view;
  const Status status =
      ValidateQscBin(static_cast<const char*>(base), size, path, &view);
  if (!status.ok()) {
    ::munmap(base, size);
    return status;
  }
  MappedGraph mapped;
  mapped.map_base_ = base;
  mapped.map_size_ = size;
  mapped.num_nodes_ = view.num_nodes;
  mapped.num_arcs_ = view.num_arcs;
  mapped.undirected_ = view.undirected;
  mapped.offsets_ = view.offsets;
  mapped.dst_ = view.dst;
  mapped.weights_ = view.weights;
  return mapped;
}

}  // namespace qsc
