#include "qsc/graph/io.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace qsc {
namespace {

// fopen wrapper with RAII close.
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

Status WriteEdgeList(const Graph& g, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  std::fprintf(f.get(), "# nodes %d directed %d\n", g.num_nodes(),
               g.undirected() ? 0 : 1);
  for (const EdgeTriple& a : g.Arcs()) {
    if (g.undirected() && a.src > a.dst) continue;
    std::fprintf(f.get(), "%d %d %.17g\n", a.src, a.dst, a.weight);
  }
  return Status::Ok();
}

StatusOr<Graph> ReadEdgeList(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  int num_nodes = 0;
  int directed = 0;
  if (std::fscanf(f.get(), "# nodes %d directed %d\n", &num_nodes,
                  &directed) != 2) {
    return Status::InvalidArgument("bad edge-list header in " + path);
  }
  std::vector<EdgeTriple> edges;
  int u = 0, v = 0;
  double w = 0.0;
  while (std::fscanf(f.get(), "%d %d %lf", &u, &v, &w) == 3) {
    if (u < 0 || u >= num_nodes || v < 0 || v >= num_nodes) {
      return Status::InvalidArgument("edge endpoint out of range in " + path);
    }
    edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v), w});
  }
  return Graph::FromEdges(static_cast<NodeId>(num_nodes), edges,
                          directed == 0);
}

Status WriteDimacsMaxFlow(const Graph& g, NodeId source, NodeId sink,
                          const std::string& path) {
  if (g.undirected()) {
    return Status::InvalidArgument(
        "DIMACS max-flow expects a directed network");
  }
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  std::fprintf(f.get(), "p max %d %" PRId64 "\n", g.num_nodes(),
               g.num_arcs());
  std::fprintf(f.get(), "n %d s\n", source + 1);
  std::fprintf(f.get(), "n %d t\n", sink + 1);
  for (const EdgeTriple& a : g.Arcs()) {
    std::fprintf(f.get(), "a %d %d %.17g\n", a.src + 1, a.dst + 1, a.weight);
  }
  return Status::Ok();
}

StatusOr<DimacsMaxFlowProblem> ReadDimacsMaxFlow(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  int num_nodes = -1;
  int64_t num_arcs = -1;
  NodeId source = -1, sink = -1;
  std::vector<EdgeTriple> arcs;
  char line[256];
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    if (line[0] == 'c' || line[0] == '\n') continue;
    if (line[0] == 'p') {
      if (std::sscanf(line, "p max %d %" SCNd64, &num_nodes, &num_arcs) != 2) {
        return Status::InvalidArgument("bad DIMACS problem line");
      }
    } else if (line[0] == 'n') {
      int id = 0;
      char kind = 0;
      if (std::sscanf(line, "n %d %c", &id, &kind) != 2) {
        return Status::InvalidArgument("bad DIMACS node line");
      }
      if (kind == 's') {
        source = id - 1;
      } else if (kind == 't') {
        sink = id - 1;
      } else {
        return Status::InvalidArgument("bad DIMACS node kind");
      }
    } else if (line[0] == 'a') {
      int u = 0, v = 0;
      double cap = 0.0;
      if (std::sscanf(line, "a %d %d %lf", &u, &v, &cap) != 3) {
        return Status::InvalidArgument("bad DIMACS arc line");
      }
      arcs.push_back({static_cast<NodeId>(u - 1), static_cast<NodeId>(v - 1),
                      cap});
    }
  }
  if (num_nodes < 0 || source < 0 || sink < 0) {
    return Status::InvalidArgument("incomplete DIMACS file: " + path);
  }
  return DimacsMaxFlowProblem{
      Graph::FromEdges(static_cast<NodeId>(num_nodes), arcs,
                       /*undirected=*/false),
      source, sink};
}

}  // namespace qsc
