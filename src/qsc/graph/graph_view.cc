#include "qsc/graph/graph_view.h"

#include <algorithm>

#include "qsc/graph/io.h"

namespace qsc {

GraphView::GraphView(const Graph& g)
    : num_nodes_(g.num_nodes_),
      num_arcs_(g.num_arcs()),
      num_edges_(g.num_edges_),
      undirected_(g.undirected_),
      total_weight_(g.total_weight_),
      out_offsets_(g.out_offsets_.data()),
      out_dst_(g.out_dst_.data()),
      out_w_(g.out_w_.data()),
      in_offsets_(g.in_offsets_.data()),
      in_src_(g.in_src_.data()),
      in_w_(g.in_w_.data()),
      out_weight_(g.out_weight_.data()),
      in_weight_(g.in_weight_.data()) {}

GraphView GraphView::Of(const MappedGraph& m) {
  GraphView v;
  const NodeId n = m.num_nodes();
  const int64_t arcs = m.num_arcs();
  const int64_t* off = m.offsets();
  const NodeId* dst = m.dst();
  const double* w = m.weights();
  QSC_CHECK(off != nullptr);  // rejects a moved-from MappedGraph

  v.num_nodes_ = n;
  v.num_arcs_ = arcs;
  v.undirected_ = m.undirected();
  v.out_offsets_ = off;
  v.out_dst_ = dst;
  v.out_w_ = w;

  auto derived = std::make_shared<Derived>();

  // Per-node weight caches, total weight, and the loop count for
  // num_edges, accumulated per arc in global (src, dst) order — the exact
  // order Graph::FromCoalescedArcs uses, so the mapped view's caches are
  // bitwise equal to Materialize()'s.
  derived->out_weight.assign(n, 0.0);
  derived->in_weight.assign(n, 0.0);
  double total = 0.0;
  int64_t loops = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (int64_t i = off[u]; i < off[u + 1]; ++i) {
      derived->out_weight[u] += w[i];
      derived->in_weight[dst[i]] += w[i];
      total += w[i];
      if (dst[i] == u) ++loops;
    }
  }
  v.total_weight_ = total;
  v.num_edges_ = v.undirected_ ? (arcs - loops) / 2 + loops : arcs;

  if (v.undirected_) {
    // The format validator guarantees a bit-identical mirror for every
    // arc, so the symmetric out-CSR doubles as the in-CSR.
    v.in_offsets_ = off;
    v.in_src_ = dst;
    v.in_w_ = w;
  } else {
    // Counting sort in (src, dst) order yields in-rows sorted by source,
    // matching the owning Graph's in-CSR exactly.
    derived->in_offsets.assign(n + 1, 0);
    for (int64_t i = 0; i < arcs; ++i) ++derived->in_offsets[dst[i] + 1];
    for (NodeId u = 0; u < n; ++u) {
      derived->in_offsets[u + 1] += derived->in_offsets[u];
    }
    derived->in_src.resize(arcs);
    derived->in_w.resize(arcs);
    std::vector<int64_t> cursor(derived->in_offsets.begin(),
                                derived->in_offsets.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      for (int64_t i = off[u]; i < off[u + 1]; ++i) {
        const int64_t pos = cursor[dst[i]]++;
        derived->in_src[pos] = u;
        derived->in_w[pos] = w[i];
      }
    }
    v.in_offsets_ = derived->in_offsets.data();
    v.in_src_ = derived->in_src.data();
    v.in_w_ = derived->in_w.data();
  }

  v.out_weight_ = derived->out_weight.data();
  v.in_weight_ = derived->in_weight.data();
  v.derived_ = std::move(derived);
  return v;
}

bool GraphView::HasArc(NodeId u, NodeId v) const {
  QSC_DCHECK(u >= 0 && u < num_nodes_);
  return std::binary_search(out_dst_ + out_offsets_[u],
                            out_dst_ + out_offsets_[u + 1], v);
}

double GraphView::ArcWeight(NodeId u, NodeId v) const {
  QSC_DCHECK(u >= 0 && u < num_nodes_);
  const NodeId* row_begin = out_dst_ + out_offsets_[u];
  const NodeId* row_end = out_dst_ + out_offsets_[u + 1];
  const NodeId* it = std::lower_bound(row_begin, row_end, v);
  if (it != row_end && *it == v) return out_w_[it - out_dst_];
  return 0.0;
}

std::vector<EdgeTriple> GraphView::Arcs() const {
  std::vector<EdgeTriple> arcs;
  arcs.reserve(num_arcs_);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (int64_t i = out_offsets_[u]; i < out_offsets_[u + 1]; ++i) {
      arcs.push_back({u, out_dst_[i], out_w_[i]});
    }
  }
  return arcs;
}

}  // namespace qsc
