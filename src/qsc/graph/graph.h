// Directed, weighted graph in compressed sparse row (CSR) form, with both
// out- and in-adjacency. This is the substrate shared by the coloring core
// and all three application areas (max-flow, LP bipartite matrices,
// centrality).
//
// Layout: struct-of-arrays. Endpoint ids and arc weights live in separate
// packed arrays (`index[|V|+1]` offsets over `NodeId[]` + `double[]`), so
// the witness scans and solvers stream two homogeneous, SIMD-friendly
// streams instead of interleaved 16-byte structs — and so the arrays can be
// aliased zero-copy by `GraphView` (qsc/graph/graph_view.h), including
// straight off an mmap'd qsc-bin payload.
//
// Conventions (paper Sec. 3): an arc (u,v) exists iff its weight is nonzero;
// undirected graphs are represented as symmetric directed graphs (each edge
// stored as two arcs). Parallel input edges are coalesced by summing their
// weights.

#ifndef QSC_GRAPH_GRAPH_H_
#define QSC_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "qsc/util/check.h"
#include "qsc/util/status.h"

namespace qsc {

// Node identifier; nodes of an n-node graph are [0, n).
using NodeId = int32_t;

// One adjacency entry: the endpoint and the (aggregated) arc weight.
// Materialized on the fly by NeighborRange iteration; the stored layout
// keeps ids and weights in separate arrays.
struct NeighborEntry {
  NodeId node;
  double weight;
};

// One arc for bulk construction / export.
struct EdgeTriple {
  NodeId src;
  NodeId dst;
  double weight;
};

// Iterable view over one node's adjacency list, sorted by endpoint id: a
// zip over the parallel (endpoint id, weight) arrays. Dereferencing yields
// a NeighborEntry by value; `nodes()`/`weights()` expose the raw SoA
// pointers for vectorizable inner loops. Cheap to copy; valid as long as
// the graph (or mapped payload) that produced it.
class NeighborRange {
 public:
  // Proxy iterator over the zipped arrays. Random-access navigation is
  // supported; dereference returns a NeighborEntry by value.
  class Iterator {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = NeighborEntry;
    using difference_type = std::ptrdiff_t;
    using pointer = const NeighborEntry*;
    using reference = NeighborEntry;

    Iterator(const NodeId* node, const double* weight)
        : node_(node), weight_(weight) {}

    NeighborEntry operator*() const { return NeighborEntry{*node_, *weight_}; }
    NeighborEntry operator[](difference_type i) const {
      return NeighborEntry{node_[i], weight_[i]};
    }

    Iterator& operator++() {
      ++node_;
      ++weight_;
      return *this;
    }
    Iterator operator++(int) {
      Iterator tmp = *this;
      ++*this;
      return tmp;
    }
    Iterator& operator--() {
      --node_;
      --weight_;
      return *this;
    }
    Iterator operator--(int) {
      Iterator tmp = *this;
      --*this;
      return tmp;
    }
    Iterator& operator+=(difference_type n) {
      node_ += n;
      weight_ += n;
      return *this;
    }
    Iterator& operator-=(difference_type n) { return *this += -n; }
    friend Iterator operator+(Iterator it, difference_type n) {
      return it += n;
    }
    friend Iterator operator+(difference_type n, Iterator it) {
      return it += n;
    }
    friend Iterator operator-(Iterator it, difference_type n) {
      return it -= n;
    }
    friend difference_type operator-(const Iterator& a, const Iterator& b) {
      return a.node_ - b.node_;
    }
    friend bool operator==(const Iterator& a, const Iterator& b) {
      return a.node_ == b.node_;
    }
    friend bool operator!=(const Iterator& a, const Iterator& b) {
      return a.node_ != b.node_;
    }
    friend bool operator<(const Iterator& a, const Iterator& b) {
      return a.node_ < b.node_;
    }
    friend bool operator>(const Iterator& a, const Iterator& b) {
      return b < a;
    }
    friend bool operator<=(const Iterator& a, const Iterator& b) {
      return !(b < a);
    }
    friend bool operator>=(const Iterator& a, const Iterator& b) {
      return !(a < b);
    }

   private:
    const NodeId* node_;
    const double* weight_;
  };

  NeighborRange(const NodeId* nodes, const double* weights, int64_t size)
      : nodes_(nodes), weights_(weights), size_(size) {}

  Iterator begin() const { return Iterator(nodes_, weights_); }
  Iterator end() const { return Iterator(nodes_ + size_, weights_ + size_); }
  int64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  NeighborEntry operator[](int64_t i) const {
    return NeighborEntry{nodes_[i], weights_[i]};
  }

  // Raw SoA pointers (size() entries each), for SIMD-friendly scans.
  const NodeId* nodes() const { return nodes_; }
  const double* weights() const { return weights_; }

 private:
  const NodeId* nodes_;
  const double* weights_;
  int64_t size_;
};

class GraphView;

// Owning CSR graph. Immutable after construction except through the
// Status-returning single-edge mutators.
class Graph {
 public:
  // Compatibility alias; NeighborRange lives at namespace scope so
  // GraphView can return the same type.
  using NeighborRange = ::qsc::NeighborRange;

  Graph() = default;

  // Builds a graph from arc triples.
  //
  // If `undirected` is true, each input edge {u,v} with u != v is stored as
  // the two arcs (u,v) and (v,u); self-loops are stored once. Duplicate
  // arcs are coalesced by summing weights; arcs whose aggregate weight is
  // exactly zero are dropped (paper convention: edge exists iff w != 0).
  static Graph FromEdges(NodeId num_nodes, const std::vector<EdgeTriple>& edges,
                         bool undirected);

  // Builds a graph from already-materialized arcs, i.e. the inverse of
  // Arcs(): no mirroring is applied even when `undirected` is true, so
  // FromArcs(g.num_nodes(), g.Arcs(), g.undirected()) == g for every graph
  // whose stored arc weights are exactly symmetric. (FromEdges would
  // re-mirror an undirected arc list and double every non-loop weight.)
  // Duplicate arcs are coalesced like in FromEdges; with `undirected` set,
  // the coalesced arc set must be symmetric up to rounding residue of
  // duplicate summation — ulp-skewed mirror weights are canonicalized onto
  // the (min,max)-direction value, and near-zero one-sided residues are
  // dropped; genuinely one-sided arcs abort.
  static Graph FromArcs(NodeId num_nodes, const std::vector<EdgeTriple>& arcs,
                        bool undirected);

  // Number of nodes |V|.
  NodeId num_nodes() const { return num_nodes_; }

  // Number of stored directed arcs (for undirected graphs, twice the number
  // of non-loop edges plus the number of loops).
  int64_t num_arcs() const { return static_cast<int64_t>(out_dst_.size()); }

  // Number of logical edges: arcs for directed graphs; for undirected
  // graphs, symmetric arc pairs count once.
  int64_t num_edges() const;

  // True when the graph stores a symmetric arc set addressed as edges.
  bool undirected() const { return undirected_; }

  // Out-adjacency of u, sorted by endpoint id.
  NeighborRange OutNeighbors(NodeId u) const {
    QSC_DCHECK(u >= 0 && u < num_nodes_);
    return NeighborRange(out_dst_.data() + out_offsets_[u],
                         out_w_.data() + out_offsets_[u],
                         out_offsets_[u + 1] - out_offsets_[u]);
  }
  // In-adjacency of u, sorted by source id.
  NeighborRange InNeighbors(NodeId u) const {
    QSC_DCHECK(u >= 0 && u < num_nodes_);
    return NeighborRange(in_src_.data() + in_offsets_[u],
                         in_w_.data() + in_offsets_[u],
                         in_offsets_[u + 1] - in_offsets_[u]);
  }

  // Arc counts of one node's rows.
  int64_t OutDegree(NodeId u) const { return OutNeighbors(u).size(); }
  int64_t InDegree(NodeId u) const { return InNeighbors(u).size(); }

  // Total outgoing / incoming weight of a node, i.e. w({u}, X) and
  // w(X, {u}) in the paper's notation (1).
  double OutWeight(NodeId u) const { return out_weight_[u]; }
  double InWeight(NodeId u) const { return in_weight_[u]; }

  // Sum of all arc weights.
  double TotalWeight() const { return total_weight_; }

  // True iff the arc (u,v) is present. O(log deg(u)).
  bool HasArc(NodeId u, NodeId v) const;

  // Weight of arc (u,v); 0 when absent. O(log deg(u)).
  double ArcWeight(NodeId u, NodeId v) const;

  // Materializes all stored arcs (src, dst, weight).
  std::vector<EdgeTriple> Arcs() const;

  // In-place single-edge mutators (the dynamic-graph substrate,
  // docs/DYNAMIC.md). On an undirected graph each call addresses the
  // logical edge {u,v} and keeps both stored arcs in sync. A mutated
  // graph is bit-identical (all fields, including the cached weight
  // aggregates) to FromArcs() over the mutated arc list, so downstream
  // consumers cannot tell a mutation from a rebuild.
  //
  // Rejections: out-of-range endpoint or a non-finite / zero weight (the
  // paper convention is that an arc exists iff its weight is nonzero)
  // => kInvalidArgument; AddEdge of a present arc => kInvalidArgument
  // (use SetWeight); RemoveEdge/SetWeight of an absent arc => kNotFound.
  // On any error the graph is unchanged. Each call is O(num_arcs).
  Status AddEdge(NodeId u, NodeId v, double weight);
  Status RemoveEdge(NodeId u, NodeId v);
  Status SetWeight(NodeId u, NodeId v, double weight);

  // Structural equality: same node count, directedness, and arc multiset
  // (weights compared exactly).
  friend bool operator==(const Graph& a, const Graph& b);
  friend bool operator!=(const Graph& a, const Graph& b) { return !(a == b); }

 private:
  // Aliases the SoA arrays zero-copy (qsc/graph/graph_view.h).
  friend class GraphView;

  // Shared tail of FromEdges/FromArcs: `arcs` must already be coalesced
  // (sorted by (src, dst), duplicates summed, exact zeros dropped).
  static Graph FromCoalescedArcs(NodeId num_nodes, std::vector<EdgeTriple> arcs,
                                 bool undirected);

  // Single-arc CSR surgery for the mutators above. Each touches exactly
  // one out-row and one in-row and shifts the offset tables; the caller
  // is responsible for mirroring on undirected graphs and for restoring
  // the weight aggregates via RecomputeWeightCaches.
  void InsertArcInPlace(NodeId u, NodeId v, double weight);
  void EraseArcInPlace(NodeId u, NodeId v);
  void SetArcWeightInPlace(NodeId u, NodeId v, double weight);

  // Recomputes out_weight_[u], in_weight_[v], and total_weight_ in the
  // same accumulation order FromCoalescedArcs uses (row order for node
  // sums, global (src, dst) order for the total), so a mutated graph
  // matches a rebuild bit for bit.
  void RecomputeWeightCaches(NodeId u, NodeId v);

  NodeId num_nodes_ = 0;
  bool undirected_ = false;
  int64_t num_edges_ = 0;

  // Out-CSR, sorted by (src, dst): offsets over parallel id/weight arrays.
  std::vector<int64_t> out_offsets_;  // size num_nodes_ + 1
  std::vector<NodeId> out_dst_;
  std::vector<double> out_w_;

  // In-CSR, rows sorted by source id.
  std::vector<int64_t> in_offsets_;
  std::vector<NodeId> in_src_;
  std::vector<double> in_w_;

  std::vector<double> out_weight_;
  std::vector<double> in_weight_;
  double total_weight_ = 0.0;
};

}  // namespace qsc

#endif  // QSC_GRAPH_GRAPH_H_
