// Directed, weighted graph in compressed sparse row (CSR) form, with both
// out- and in-adjacency. This is the substrate shared by the coloring core
// and all three application areas (max-flow, LP bipartite matrices,
// centrality).
//
// Conventions (paper Sec. 3): an arc (u,v) exists iff its weight is nonzero;
// undirected graphs are represented as symmetric directed graphs (each edge
// stored as two arcs). Parallel input edges are coalesced by summing their
// weights.

#ifndef QSC_GRAPH_GRAPH_H_
#define QSC_GRAPH_GRAPH_H_

#include <cstdint>
#include <vector>

#include "qsc/util/check.h"
#include "qsc/util/status.h"

namespace qsc {

using NodeId = int32_t;

// One adjacency entry: the endpoint and the (aggregated) arc weight.
struct NeighborEntry {
  NodeId node;
  double weight;
};

// One arc for bulk construction / export.
struct EdgeTriple {
  NodeId src;
  NodeId dst;
  double weight;
};

class Graph {
 public:
  // Iterable view over one node's adjacency list, sorted by endpoint id.
  class NeighborRange {
   public:
    NeighborRange(const NeighborEntry* begin, const NeighborEntry* end)
        : begin_(begin), end_(end) {}
    const NeighborEntry* begin() const { return begin_; }
    const NeighborEntry* end() const { return end_; }
    int64_t size() const { return end_ - begin_; }
    bool empty() const { return begin_ == end_; }

   private:
    const NeighborEntry* begin_;
    const NeighborEntry* end_;
  };

  Graph() = default;

  // Builds a graph from arc triples.
  //
  // If `undirected` is true, each input edge {u,v} with u != v is stored as
  // the two arcs (u,v) and (v,u); self-loops are stored once. Duplicate
  // arcs are coalesced by summing weights; arcs whose aggregate weight is
  // exactly zero are dropped (paper convention: edge exists iff w != 0).
  static Graph FromEdges(NodeId num_nodes, const std::vector<EdgeTriple>& edges,
                         bool undirected);

  // Builds a graph from already-materialized arcs, i.e. the inverse of
  // Arcs(): no mirroring is applied even when `undirected` is true, so
  // FromArcs(g.num_nodes(), g.Arcs(), g.undirected()) == g for every graph
  // whose stored arc weights are exactly symmetric. (FromEdges would
  // re-mirror an undirected arc list and double every non-loop weight.)
  // Duplicate arcs are coalesced like in FromEdges; with `undirected` set,
  // the coalesced arc set must be symmetric up to rounding residue of
  // duplicate summation — ulp-skewed mirror weights are canonicalized onto
  // the (min,max)-direction value, and near-zero one-sided residues are
  // dropped; genuinely one-sided arcs abort.
  static Graph FromArcs(NodeId num_nodes, const std::vector<EdgeTriple>& arcs,
                        bool undirected);

  NodeId num_nodes() const { return num_nodes_; }

  // Number of stored directed arcs (for undirected graphs, twice the number
  // of non-loop edges plus the number of loops).
  int64_t num_arcs() const { return static_cast<int64_t>(out_dst_.size()); }

  // Number of logical edges: arcs for directed graphs; for undirected
  // graphs, symmetric arc pairs count once.
  int64_t num_edges() const;

  bool undirected() const { return undirected_; }

  NeighborRange OutNeighbors(NodeId u) const {
    QSC_DCHECK(u >= 0 && u < num_nodes_);
    return NeighborRange(out_adj_.data() + out_offsets_[u],
                         out_adj_.data() + out_offsets_[u + 1]);
  }
  NeighborRange InNeighbors(NodeId u) const {
    QSC_DCHECK(u >= 0 && u < num_nodes_);
    return NeighborRange(in_adj_.data() + in_offsets_[u],
                         in_adj_.data() + in_offsets_[u + 1]);
  }

  int64_t OutDegree(NodeId u) const { return OutNeighbors(u).size(); }
  int64_t InDegree(NodeId u) const { return InNeighbors(u).size(); }

  // Total outgoing / incoming weight of a node, i.e. w({u}, X) and
  // w(X, {u}) in the paper's notation (1).
  double OutWeight(NodeId u) const { return out_weight_[u]; }
  double InWeight(NodeId u) const { return in_weight_[u]; }

  // Sum of all arc weights.
  double TotalWeight() const { return total_weight_; }

  // True iff the arc (u,v) is present. O(log deg(u)).
  bool HasArc(NodeId u, NodeId v) const;

  // Weight of arc (u,v); 0 when absent. O(log deg(u)).
  double ArcWeight(NodeId u, NodeId v) const;

  // Materializes all stored arcs (src, dst, weight).
  std::vector<EdgeTriple> Arcs() const;

  // In-place single-edge mutators (the dynamic-graph substrate,
  // docs/DYNAMIC.md). On an undirected graph each call addresses the
  // logical edge {u,v} and keeps both stored arcs in sync. A mutated
  // graph is bit-identical (all fields, including the cached weight
  // aggregates) to FromArcs() over the mutated arc list, so downstream
  // consumers cannot tell a mutation from a rebuild.
  //
  // Rejections: out-of-range endpoint or a non-finite / zero weight (the
  // paper convention is that an arc exists iff its weight is nonzero)
  // => kInvalidArgument; AddEdge of a present arc => kInvalidArgument
  // (use SetWeight); RemoveEdge/SetWeight of an absent arc => kNotFound.
  // On any error the graph is unchanged. Each call is O(num_arcs).
  Status AddEdge(NodeId u, NodeId v, double weight);
  Status RemoveEdge(NodeId u, NodeId v);
  Status SetWeight(NodeId u, NodeId v, double weight);

  // Structural equality: same node count, directedness, and arc multiset
  // (weights compared exactly).
  friend bool operator==(const Graph& a, const Graph& b);
  friend bool operator!=(const Graph& a, const Graph& b) { return !(a == b); }

 private:
  // Shared tail of FromEdges/FromArcs: `arcs` must already be coalesced
  // (sorted by (src, dst), duplicates summed, exact zeros dropped).
  static Graph FromCoalescedArcs(NodeId num_nodes, std::vector<EdgeTriple> arcs,
                                 bool undirected);

  // Single-arc CSR surgery for the mutators above. Each touches exactly
  // one out-row and one in-row and shifts the offset tables; the caller
  // is responsible for mirroring on undirected graphs and for restoring
  // the weight aggregates via RecomputeWeightCaches.
  void InsertArcInPlace(NodeId u, NodeId v, double weight);
  void EraseArcInPlace(NodeId u, NodeId v);
  void SetArcWeightInPlace(NodeId u, NodeId v, double weight);

  // Recomputes out_weight_[u], in_weight_[v], and total_weight_ in the
  // same accumulation order FromCoalescedArcs uses (row order for node
  // sums, global (src, dst) order for the total), so a mutated graph
  // matches a rebuild bit for bit.
  void RecomputeWeightCaches(NodeId u, NodeId v);

  NodeId num_nodes_ = 0;
  bool undirected_ = false;
  int64_t num_edges_ = 0;

  std::vector<int64_t> out_offsets_;  // size num_nodes_ + 1
  std::vector<NeighborEntry> out_adj_;
  std::vector<NodeId> out_dst_;  // parallel to out_adj_, for cheap scans

  std::vector<int64_t> in_offsets_;
  std::vector<NeighborEntry> in_adj_;

  std::vector<double> out_weight_;
  std::vector<double> in_weight_;
  double total_weight_ = 0.0;
};

}  // namespace qsc

#endif  // QSC_GRAPH_GRAPH_H_
