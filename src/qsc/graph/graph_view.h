// Non-owning CSR view of a graph: the read-only serving substrate
// (docs/ARCHITECTURE.md). A GraphView presents the same accessor surface as
// the owning qsc::Graph — node/arc counts, sorted neighbor ranges, cached
// node weights, O(log deg) arc lookup — over either
//
//   * an owning Graph (zero-copy alias of its SoA arrays), or
//   * a MappedGraph's mmap'd qsc-bin payload (zero-copy for the out-CSR;
//     the in-CSR and per-node weight caches are derived at view-build time
//     and shared between copies of the view).
//
// Every derived quantity is computed in the exact accumulation order
// Graph::FromEdges/FromArcs uses, so a kernel running over a mapped view is
// bit-identical to the same kernel over MappedGraph::Materialize() — the
// invariant the serving/mmap-* bench scenarios gate.
//
// Lifetime contract: a GraphView never extends the life of an owning Graph
// or a MappedGraph. The view (and every NeighborRange it hands out) is
// valid only while the viewed object is alive and unmutated; holders that
// need ownership keep a shared_ptr keepalive alongside the view (see
// ColoringCache / IncrementalRecolorer).

#ifndef QSC_GRAPH_GRAPH_VIEW_H_
#define QSC_GRAPH_GRAPH_VIEW_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "qsc/graph/graph.h"
#include "qsc/util/check.h"

namespace qsc {

class MappedGraph;

// Read-only CSR graph view; cheap to copy (pointers + one shared_ptr).
// Default-constructed views are empty (0 nodes, 0 arcs).
class GraphView {
 public:
  // Same iterable adjacency type Graph returns.
  using NeighborRange = ::qsc::NeighborRange;

  GraphView() = default;

  // Zero-copy alias of an owning Graph's arrays. Implicit on purpose:
  // every kernel that flipped its signature from `const Graph&` to
  // `GraphView` keeps accepting Graph arguments unchanged.
  GraphView(const Graph& g);  // NOLINT(google-explicit-constructor)

  // Builds a view over a mapped qsc-bin payload. The out-CSR aliases the
  // mapped arrays; the in-CSR is aliased too when the graph is undirected
  // (the format guarantees bit-identical mirror arcs) and derived by a
  // counting sort otherwise. Derived arrays are owned by the view and
  // shared across copies.
  static GraphView Of(const MappedGraph& m);

  // Number of nodes |V|.
  NodeId num_nodes() const { return num_nodes_; }

  // Number of stored directed arcs (both directions when undirected).
  int64_t num_arcs() const { return num_arcs_; }

  // Number of logical edges (symmetric arc pairs count once).
  int64_t num_edges() const { return num_edges_; }

  // True when the viewed graph stores a symmetric arc set.
  bool undirected() const { return undirected_; }

  // Out-adjacency of u, sorted by endpoint id.
  NeighborRange OutNeighbors(NodeId u) const {
    QSC_DCHECK(u >= 0 && u < num_nodes_);
    return NeighborRange(out_dst_ + out_offsets_[u], out_w_ + out_offsets_[u],
                         out_offsets_[u + 1] - out_offsets_[u]);
  }
  // In-adjacency of u, sorted by source id.
  NeighborRange InNeighbors(NodeId u) const {
    QSC_DCHECK(u >= 0 && u < num_nodes_);
    return NeighborRange(in_src_ + in_offsets_[u], in_w_ + in_offsets_[u],
                         in_offsets_[u + 1] - in_offsets_[u]);
  }

  // Arc counts of one node's rows.
  int64_t OutDegree(NodeId u) const { return OutNeighbors(u).size(); }
  int64_t InDegree(NodeId u) const { return InNeighbors(u).size(); }

  // Total outgoing / incoming weight of a node (paper notation (1)).
  double OutWeight(NodeId u) const {
    QSC_DCHECK(u >= 0 && u < num_nodes_);
    return out_weight_[u];
  }
  double InWeight(NodeId u) const {
    QSC_DCHECK(u >= 0 && u < num_nodes_);
    return in_weight_[u];
  }

  // Sum of all arc weights.
  double TotalWeight() const { return total_weight_; }

  // True iff the arc (u,v) is present. O(log deg(u)).
  bool HasArc(NodeId u, NodeId v) const;

  // Weight of arc (u,v); 0 when absent. O(log deg(u)).
  double ArcWeight(NodeId u, NodeId v) const;

  // Materializes all viewed arcs (src, dst, weight) in CSR order.
  std::vector<EdgeTriple> Arcs() const;

 private:
  // Arrays a mapped view must own (the file only stores the out-CSR).
  struct Derived {
    std::vector<int64_t> in_offsets;
    std::vector<NodeId> in_src;
    std::vector<double> in_w;
    std::vector<double> out_weight;
    std::vector<double> in_weight;
  };

  NodeId num_nodes_ = 0;
  int64_t num_arcs_ = 0;
  int64_t num_edges_ = 0;
  bool undirected_ = false;
  double total_weight_ = 0.0;

  const int64_t* out_offsets_ = nullptr;  // num_nodes_ + 1
  const NodeId* out_dst_ = nullptr;       // num_arcs_
  const double* out_w_ = nullptr;         // num_arcs_
  const int64_t* in_offsets_ = nullptr;
  const NodeId* in_src_ = nullptr;
  const double* in_w_ = nullptr;
  const double* out_weight_ = nullptr;  // num_nodes_
  const double* in_weight_ = nullptr;   // num_nodes_

  // Null for Graph-backed views; shared so copies stay cheap.
  std::shared_ptr<const Derived> derived_;
};

}  // namespace qsc

#endif  // QSC_GRAPH_GRAPH_VIEW_H_
