// Graph serialization: weighted edge lists and DIMACS max-flow files (the
// format of the paper's Table 2 flow instances, e.g. the vision benchmarks).

#ifndef QSC_GRAPH_IO_H_
#define QSC_GRAPH_IO_H_

#include <string>

#include "qsc/graph/graph.h"
#include "qsc/util/status.h"

namespace qsc {

// Writes one "src dst weight" line per stored arc, preceded by a header
// line "# nodes <n> directed <0|1>". Undirected graphs write each edge once
// (src <= dst).
Status WriteEdgeList(const Graph& g, const std::string& path);

// Reads the format produced by WriteEdgeList.
StatusOr<Graph> ReadEdgeList(const std::string& path);

// DIMACS max-flow format ("p max <n> <m>", "n <id> s|t", "a <u> <v> <cap>",
// 1-based ids). The returned graph is directed with capacities as weights.
struct DimacsMaxFlowProblem {
  Graph graph;
  NodeId source;
  NodeId sink;
};
Status WriteDimacsMaxFlow(const Graph& g, NodeId source, NodeId sink,
                          const std::string& path);
StatusOr<DimacsMaxFlowProblem> ReadDimacsMaxFlow(const std::string& path);

}  // namespace qsc

#endif  // QSC_GRAPH_IO_H_
