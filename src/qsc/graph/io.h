// Graph serialization: weighted edge lists, DIMACS max-flow files (the
// format of the paper's Table 2 flow instances, e.g. the vision benchmarks),
// and the mmap-able `qsc-bin v1` binary CSR container.
//
// Error contract: every reader returns Status instead of aborting. Malformed
// input — wrong header, out-of-range endpoint, non-finite weight, truncated
// or corrupted binary payload — yields InvalidArgument with the offending
// line number ("<path> line <n>: <what>") or byte-level diagnosis; a missing
// file yields NotFound. Readers never QSC_CHECK on file contents.

#ifndef QSC_GRAPH_IO_H_
#define QSC_GRAPH_IO_H_

#include <cstdint>
#include <string>

#include "qsc/graph/graph.h"
#include "qsc/util/status.h"

namespace qsc {

// Writes one "src dst weight" line per stored arc, preceded by a header
// line "# nodes <n> directed <0|1>". Undirected graphs write each edge once
// (src <= dst).
Status WriteEdgeList(const Graph& g, const std::string& path);

// Reads the format produced by WriteEdgeList. After the header, blank lines
// and '#' comment lines are skipped; every other line must be exactly
// "src dst weight" with endpoints in [0, nodes) and a finite weight.
StatusOr<Graph> ReadEdgeList(const std::string& path);

// DIMACS max-flow format ("p max <n> <m>", "n <id> s|t", "a <u> <v> <cap>",
// 1-based ids). The returned graph is directed with capacities as weights.
struct DimacsMaxFlowProblem {
  Graph graph;
  NodeId source;
  NodeId sink;
};
Status WriteDimacsMaxFlow(const Graph& g, NodeId source, NodeId sink,
                          const std::string& path);
// Requires one "p max" line before any node/arc lines, exactly one source
// and one sink (distinct, in range), exactly <m> arc lines with finite
// non-negative capacities, and no unknown line prefixes. Lines of any
// length are handled.
StatusOr<DimacsMaxFlowProblem> ReadDimacsMaxFlow(const std::string& path);

// ---------------------------------------------------------------------------
// qsc-bin v1: little-endian binary CSR container (see docs/FORMATS.md).
//
//   offset  size  field
//        0     8  magic "qscbin01"
//        8     4  version (u32, = 1)
//       12     4  flags (u32, bit 0 = undirected; other bits must be 0)
//       16     8  num_nodes (i64)
//       24     8  num_arcs (i64, stored arcs; both directions if undirected)
//       32     8  payload checksum (u64, FNV-1a over every byte after the
//                 header)
//       40     8  header checksum (u64, FNV-1a over bytes [0, 40))
//       48        payload: i64 offsets[num_nodes + 1], i32 dst[num_arcs],
//                 zero pad to 8-byte alignment, f64 weights[num_arcs]
//
// The payload arrays are the graph's CSR adjacency verbatim, in canonical
// form: offsets non-decreasing from 0 to num_arcs, each row sorted by dst
// with no duplicates, weights finite and non-zero, and (if undirected) a
// bit-identical mirror arc for every arc. Readers validate all of this
// before constructing a Graph, so no file contents can abort the process.
// ---------------------------------------------------------------------------

// FNV-1a 64-bit checksum used by the qsc-bin header. Exposed so tests can
// re-seal deliberately mutated files and reach the deep validators.
uint64_t QscBinChecksum(const void* data, size_t size);

// Writes `g` as qsc-bin v1. Overwrites `path`.
Status WriteBinary(const Graph& g, const std::string& path);

// Reads a qsc-bin v1 file into an owning Graph.
StatusOr<Graph> ReadBinary(const std::string& path);

// Read-only zero-copy view of a qsc-bin v1 file backed by mmap. Move-only;
// the mapping is released on destruction. All accessors are valid only
// while the object is alive.
class MappedGraph {
 public:
  MappedGraph(MappedGraph&& other) noexcept;
  MappedGraph& operator=(MappedGraph&& other) noexcept;
  MappedGraph(const MappedGraph&) = delete;
  MappedGraph& operator=(const MappedGraph&) = delete;
  ~MappedGraph();

  NodeId num_nodes() const { return static_cast<NodeId>(num_nodes_); }
  int64_t num_arcs() const { return num_arcs_; }
  bool undirected() const { return undirected_; }

  // CSR views into the mapped file (validated at open time).
  const int64_t* offsets() const { return offsets_; }  // num_nodes() + 1
  const int32_t* dst() const { return dst_; }          // num_arcs()
  const double* weights() const { return weights_; }   // num_arcs()

  // Materializes an owning Graph equal to the one WriteBinary serialized.
  Graph Materialize() const;

 private:
  friend StatusOr<MappedGraph> MapBinary(const std::string& path);
  MappedGraph() = default;

  void* map_base_ = nullptr;
  size_t map_size_ = 0;
  int64_t num_nodes_ = 0;
  int64_t num_arcs_ = 0;
  bool undirected_ = false;
  const int64_t* offsets_ = nullptr;
  const int32_t* dst_ = nullptr;
  const double* weights_ = nullptr;
};

// Maps a qsc-bin v1 file read-only and validates it fully (same checks as
// ReadBinary) before returning the view.
StatusOr<MappedGraph> MapBinary(const std::string& path);

}  // namespace qsc

#endif  // QSC_GRAPH_IO_H_
