#include "qsc/graph/perturb.h"

#include <unordered_set>
#include <utility>
#include <vector>

namespace qsc {
namespace {

uint64_t DirectedKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | static_cast<uint32_t>(v);
}

}  // namespace

Graph AddRandomEdges(const Graph& g, int64_t count, Rng& rng) {
  const NodeId n = g.num_nodes();
  QSC_CHECK_GE(n, 2);
  std::vector<EdgeTriple> edges;
  std::unordered_set<uint64_t> present;
  if (g.undirected()) {
    for (const EdgeTriple& a : g.Arcs()) {
      if (a.src <= a.dst) {
        edges.push_back(a);
        present.insert(DirectedKey(a.src, a.dst));
      }
    }
  } else {
    for (const EdgeTriple& a : g.Arcs()) {
      edges.push_back(a);
      present.insert(DirectedKey(a.src, a.dst));
    }
  }
  int64_t added = 0;
  while (added < count) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    if (g.undirected() && u > v) std::swap(u, v);
    if (!present.insert(DirectedKey(u, v)).second) continue;
    edges.push_back({u, v, 1.0});
    ++added;
  }
  return Graph::FromEdges(n, edges, g.undirected());
}

Graph RemoveRandomEdges(const Graph& g, int64_t count, Rng& rng) {
  std::vector<EdgeTriple> edges;
  if (g.undirected()) {
    for (const EdgeTriple& a : g.Arcs()) {
      if (a.src <= a.dst) edges.push_back(a);
    }
  } else {
    edges = g.Arcs();
  }
  QSC_CHECK_LE(count, static_cast<int64_t>(edges.size()));
  // Partial Fisher-Yates: move `count` random edges to the back and drop.
  const int64_t m = static_cast<int64_t>(edges.size());
  for (int64_t i = 0; i < count; ++i) {
    const int64_t j = i + static_cast<int64_t>(rng.NextBounded(m - i));
    std::swap(edges[i], edges[j]);
  }
  edges.erase(edges.begin(), edges.begin() + count);
  return Graph::FromEdges(g.num_nodes(), edges, g.undirected());
}

}  // namespace qsc
