#include "qsc/graph/graph.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace qsc {
namespace {

// Sorts arcs by (src, dst), sums duplicates, drops zero-weight aggregates.
std::vector<EdgeTriple> Coalesce(std::vector<EdgeTriple> arcs) {
  std::sort(arcs.begin(), arcs.end(), [](const EdgeTriple& a,
                                         const EdgeTriple& b) {
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  });
  std::vector<EdgeTriple> out;
  out.reserve(arcs.size());
  for (const EdgeTriple& arc : arcs) {
    if (!out.empty() && out.back().src == arc.src &&
        out.back().dst == arc.dst) {
      out.back().weight += arc.weight;
    } else {
      out.push_back(arc);
    }
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const EdgeTriple& a) { return a.weight == 0.0; }),
            out.end());
  return out;
}

}  // namespace

Graph Graph::FromEdges(NodeId num_nodes, const std::vector<EdgeTriple>& edges,
                       bool undirected) {
  QSC_CHECK_GE(num_nodes, 0);
  std::vector<EdgeTriple> arcs;
  arcs.reserve(undirected ? 2 * edges.size() : edges.size());
  for (const EdgeTriple& e : edges) {
    QSC_CHECK(e.src >= 0 && e.src < num_nodes);
    QSC_CHECK(e.dst >= 0 && e.dst < num_nodes);
    arcs.push_back(e);
    if (undirected && e.src != e.dst) {
      arcs.push_back({e.dst, e.src, e.weight});
    }
  }
  return FromCoalescedArcs(num_nodes, Coalesce(std::move(arcs)), undirected);
}

Graph Graph::FromArcs(NodeId num_nodes, const std::vector<EdgeTriple>& arcs,
                      bool undirected) {
  QSC_CHECK_GE(num_nodes, 0);
  for (const EdgeTriple& a : arcs) {
    QSC_CHECK(a.src >= 0 && a.src < num_nodes);
    QSC_CHECK(a.dst >= 0 && a.dst < num_nodes);
  }
  std::vector<EdgeTriple> coalesced = Coalesce(arcs);
  if (undirected) {
    // The stored representation of an undirected graph is a symmetric arc
    // set, which summing duplicates in unspecified order can miss by a
    // rounding residue (or drop one direction entirely when it cancels to
    // exactly zero while its mirror keeps an ulp). Symmetrize by
    // construction: both directions take the (min,max)-direction sum;
    // genuinely one-sided arcs — no mirror and a weight too large to be
    // rounding residue — are rejected.
    const auto mirror_of = [&coalesced](const EdgeTriple& a) {
      const auto it = std::lower_bound(
          coalesced.begin(), coalesced.end(), EdgeTriple{a.dst, a.src, 0.0},
          [](const EdgeTriple& x, const EdgeTriple& y) {
            if (x.src != y.src) return x.src < y.src;
            return x.dst < y.dst;
          });
      return it != coalesced.end() && it->src == a.dst && it->dst == a.src
                 ? &*it
                 : nullptr;
    };
    std::vector<EdgeTriple> symmetric;
    symmetric.reserve(coalesced.size());
    for (const EdgeTriple& a : coalesced) {
      if (a.src == a.dst) {
        symmetric.push_back(a);
        continue;
      }
      if (const EdgeTriple* m = mirror_of(a)) {
        QSC_CHECK(std::abs(m->weight - a.weight) <=
                  1e-9 * std::max(1.0, std::abs(a.weight)));
        symmetric.push_back(
            {a.src, a.dst, a.src < a.dst ? a.weight : m->weight});
      } else {
        QSC_CHECK(std::abs(a.weight) <= 1e-9);  // residue of a cancelled edge
      }
    }
    coalesced = std::move(symmetric);
  }
  return FromCoalescedArcs(num_nodes, std::move(coalesced), undirected);
}

Graph Graph::FromCoalescedArcs(NodeId num_nodes, std::vector<EdgeTriple> arcs,
                               bool undirected) {
  Graph g;
  g.num_nodes_ = num_nodes;
  g.undirected_ = undirected;

  g.out_offsets_.assign(num_nodes + 1, 0);
  g.in_offsets_.assign(num_nodes + 1, 0);
  for (const EdgeTriple& a : arcs) {
    ++g.out_offsets_[a.src + 1];
    ++g.in_offsets_[a.dst + 1];
  }
  for (NodeId v = 0; v < num_nodes; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }

  g.out_dst_.resize(arcs.size());
  g.out_w_.resize(arcs.size());
  g.in_src_.resize(arcs.size());
  g.in_w_.resize(arcs.size());
  g.out_weight_.assign(num_nodes, 0.0);
  g.in_weight_.assign(num_nodes, 0.0);

  std::vector<int64_t> out_pos(g.out_offsets_.begin(),
                               g.out_offsets_.end() - 1);
  std::vector<int64_t> in_pos(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (const EdgeTriple& a : arcs) {
    g.out_dst_[out_pos[a.src]] = a.dst;
    g.out_w_[out_pos[a.src]] = a.weight;
    ++out_pos[a.src];
    g.in_src_[in_pos[a.dst]] = a.src;
    g.in_w_[in_pos[a.dst]] = a.weight;
    ++in_pos[a.dst];
    g.out_weight_[a.src] += a.weight;
    g.in_weight_[a.dst] += a.weight;
    g.total_weight_ += a.weight;
  }
  // Arcs were globally sorted by (src, dst), so out-adjacency is sorted; the
  // in-adjacency inherits sortedness by src because insertion order is by
  // src within each dst bucket.

  int64_t loops = 0;
  for (const EdgeTriple& a : arcs) {
    if (a.src == a.dst) ++loops;
  }
  g.num_edges_ = undirected
                     ? (static_cast<int64_t>(arcs.size()) - loops) / 2 + loops
                     : static_cast<int64_t>(arcs.size());
  return g;
}

int64_t Graph::num_edges() const { return num_edges_; }

bool operator==(const Graph& a, const Graph& b) {
  return a.num_nodes_ == b.num_nodes_ && a.undirected_ == b.undirected_ &&
         a.out_offsets_ == b.out_offsets_ && a.out_dst_ == b.out_dst_ &&
         a.out_w_ == b.out_w_;
}

bool Graph::HasArc(NodeId u, NodeId v) const {
  QSC_DCHECK(u >= 0 && u < num_nodes_);
  return std::binary_search(out_dst_.begin() + out_offsets_[u],
                            out_dst_.begin() + out_offsets_[u + 1], v);
}

double Graph::ArcWeight(NodeId u, NodeId v) const {
  QSC_DCHECK(u >= 0 && u < num_nodes_);
  const auto row_begin = out_dst_.begin() + out_offsets_[u];
  const auto row_end = out_dst_.begin() + out_offsets_[u + 1];
  const auto it = std::lower_bound(row_begin, row_end, v);
  if (it != row_end && *it == v) return out_w_[it - out_dst_.begin()];
  return 0.0;
}

namespace {

std::string ArcName(NodeId u, NodeId v) {
  return "(" + std::to_string(u) + ", " + std::to_string(v) + ")";
}

Status CheckEndpoints(NodeId u, NodeId v, NodeId num_nodes) {
  if (u < 0 || u >= num_nodes) {
    return Status::InvalidArgument(
        "source node " + std::to_string(u) + " out of range [0, " +
        std::to_string(num_nodes) + ")");
  }
  if (v < 0 || v >= num_nodes) {
    return Status::InvalidArgument(
        "destination node " + std::to_string(v) + " out of range [0, " +
        std::to_string(num_nodes) + ")");
  }
  return Status::Ok();
}

Status CheckWeight(double weight) {
  if (!std::isfinite(weight)) {
    return Status::InvalidArgument("edge weight must be finite; got " +
                                   std::to_string(weight));
  }
  if (weight == 0.0) {
    return Status::InvalidArgument(
        "edge weight must be nonzero (an arc exists iff its weight is "
        "nonzero); use RemoveEdge to delete an edge");
  }
  return Status::Ok();
}

}  // namespace

Status Graph::AddEdge(NodeId u, NodeId v, double weight) {
  QSC_RETURN_IF_ERROR(CheckEndpoints(u, v, num_nodes_));
  QSC_RETURN_IF_ERROR(CheckWeight(weight));
  if (HasArc(u, v)) {
    return Status::InvalidArgument("arc " + ArcName(u, v) +
                                   " already present; use SetWeight");
  }
  InsertArcInPlace(u, v, weight);
  if (undirected_ && u != v) InsertArcInPlace(v, u, weight);
  ++num_edges_;
  RecomputeWeightCaches(u, v);
  return Status::Ok();
}

Status Graph::RemoveEdge(NodeId u, NodeId v) {
  QSC_RETURN_IF_ERROR(CheckEndpoints(u, v, num_nodes_));
  if (!HasArc(u, v)) {
    return Status::NotFound("no arc " + ArcName(u, v) + " in the graph");
  }
  EraseArcInPlace(u, v);
  if (undirected_ && u != v) EraseArcInPlace(v, u);
  --num_edges_;
  RecomputeWeightCaches(u, v);
  return Status::Ok();
}

Status Graph::SetWeight(NodeId u, NodeId v, double weight) {
  QSC_RETURN_IF_ERROR(CheckEndpoints(u, v, num_nodes_));
  QSC_RETURN_IF_ERROR(CheckWeight(weight));
  if (!HasArc(u, v)) {
    return Status::NotFound("no arc " + ArcName(u, v) + " in the graph");
  }
  SetArcWeightInPlace(u, v, weight);
  if (undirected_ && u != v) SetArcWeightInPlace(v, u, weight);
  RecomputeWeightCaches(u, v);
  return Status::Ok();
}

void Graph::InsertArcInPlace(NodeId u, NodeId v, double weight) {
  const auto out_it = std::lower_bound(out_dst_.begin() + out_offsets_[u],
                                       out_dst_.begin() + out_offsets_[u + 1],
                                       v);
  const int64_t out_pos = out_it - out_dst_.begin();
  out_dst_.insert(out_it, v);
  out_w_.insert(out_w_.begin() + out_pos, weight);
  for (NodeId w = u + 1; w <= num_nodes_; ++w) ++out_offsets_[w];

  const auto in_it = std::lower_bound(in_src_.begin() + in_offsets_[v],
                                      in_src_.begin() + in_offsets_[v + 1], u);
  const int64_t in_pos = in_it - in_src_.begin();
  in_src_.insert(in_it, u);
  in_w_.insert(in_w_.begin() + in_pos, weight);
  for (NodeId w = v + 1; w <= num_nodes_; ++w) ++in_offsets_[w];
}

void Graph::EraseArcInPlace(NodeId u, NodeId v) {
  const auto out_it = std::lower_bound(out_dst_.begin() + out_offsets_[u],
                                       out_dst_.begin() + out_offsets_[u + 1],
                                       v);
  QSC_CHECK(out_it != out_dst_.end() && *out_it == v);
  out_w_.erase(out_w_.begin() + (out_it - out_dst_.begin()));
  out_dst_.erase(out_it);
  for (NodeId w = u + 1; w <= num_nodes_; ++w) --out_offsets_[w];

  const auto in_it = std::lower_bound(in_src_.begin() + in_offsets_[v],
                                      in_src_.begin() + in_offsets_[v + 1], u);
  QSC_CHECK(in_it != in_src_.end() && *in_it == u);
  in_w_.erase(in_w_.begin() + (in_it - in_src_.begin()));
  in_src_.erase(in_it);
  for (NodeId w = v + 1; w <= num_nodes_; ++w) --in_offsets_[w];
}

void Graph::SetArcWeightInPlace(NodeId u, NodeId v, double weight) {
  const auto out_it = std::lower_bound(out_dst_.begin() + out_offsets_[u],
                                       out_dst_.begin() + out_offsets_[u + 1],
                                       v);
  QSC_CHECK(out_it != out_dst_.end() && *out_it == v);
  out_w_[out_it - out_dst_.begin()] = weight;

  const auto in_it = std::lower_bound(in_src_.begin() + in_offsets_[v],
                                      in_src_.begin() + in_offsets_[v + 1], u);
  QSC_CHECK(in_it != in_src_.end() && *in_it == u);
  in_w_[in_it - in_src_.begin()] = weight;
}

void Graph::RecomputeWeightCaches(NodeId u, NodeId v) {
  // Row sums in row order and the total in global (src, dst) order — the
  // exact accumulation order of FromCoalescedArcs, so the caches of a
  // mutated graph match a rebuild bit for bit. Undirected mutations touch
  // the rows of both endpoints in both directions.
  for (const NodeId x : {u, v}) {
    double out_sum = 0.0;
    for (const NeighborEntry e : OutNeighbors(x)) out_sum += e.weight;
    out_weight_[x] = out_sum;
    double in_sum = 0.0;
    for (const NeighborEntry e : InNeighbors(x)) in_sum += e.weight;
    in_weight_[x] = in_sum;
  }
  double total = 0.0;
  for (const double w : out_w_) total += w;
  total_weight_ = total;
}

std::vector<EdgeTriple> Graph::Arcs() const {
  std::vector<EdgeTriple> arcs;
  arcs.reserve(num_arcs());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (const NeighborEntry e : OutNeighbors(u)) {
      arcs.push_back({u, e.node, e.weight});
    }
  }
  return arcs;
}

}  // namespace qsc
