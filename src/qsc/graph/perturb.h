// Random graph perturbations (paper Figure 2 / Sec 6.3 robustness study).

#ifndef QSC_GRAPH_PERTURB_H_
#define QSC_GRAPH_PERTURB_H_

#include <cstdint>

#include "qsc/graph/graph.h"
#include "qsc/util/random.h"

namespace qsc {

// Returns a copy of `g` with `count` additional distinct random edges (no
// self-loops, no duplicates of existing edges), each with weight 1. For
// undirected graphs the new edges are undirected.
Graph AddRandomEdges(const Graph& g, int64_t count, Rng& rng);

// Returns a copy of `g` with `count` randomly chosen existing edges removed
// (for undirected graphs, both arc directions are removed together).
Graph RemoveRandomEdges(const Graph& g, int64_t count, Rng& rng);

}  // namespace qsc

#endif  // QSC_GRAPH_PERTURB_H_
