// Built-in datasets. The only real dataset small enough to embed verbatim
// is Zachary's karate club, which the paper uses for Figure 1.

#ifndef QSC_GRAPH_DATASETS_H_
#define QSC_GRAPH_DATASETS_H_

#include "qsc/graph/graph.h"

namespace qsc {

// Zachary's karate club network (Zachary 1977): 34 nodes, 78 undirected
// edges. Node 0 and node 33 are the two club leaders ("1" and "34" in the
// paper's 1-based Figure 1).
Graph KarateClub();

// A counterexample realizing the paper's Figure-5 phenomenon: nodes u and v
// share a stable color but have different betweenness centralities. Built
// as the union of a 6-cycle and two triangles: every node is 2-regular (one
// stable color), yet 6-cycle nodes lie on shortest paths while triangle
// nodes do not.
struct CentralityCounterexample {
  Graph graph;
  NodeId u;
  NodeId v;
};
CentralityCounterexample Figure5Graph();

}  // namespace qsc

#endif  // QSC_GRAPH_DATASETS_H_
