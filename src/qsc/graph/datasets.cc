#include "qsc/graph/datasets.h"

#include <vector>

namespace qsc {

Graph KarateClub() {
  // 1-based edge list from Zachary (1977), 78 edges.
  static constexpr int kEdges[][2] = {
      {1, 2},   {1, 3},   {1, 4},   {1, 5},   {1, 6},   {1, 7},   {1, 8},
      {1, 9},   {1, 11},  {1, 12},  {1, 13},  {1, 14},  {1, 18},  {1, 20},
      {1, 22},  {1, 32},  {2, 3},   {2, 4},   {2, 8},   {2, 14},  {2, 18},
      {2, 20},  {2, 22},  {2, 31},  {3, 4},   {3, 8},   {3, 9},   {3, 10},
      {3, 14},  {3, 28},  {3, 29},  {3, 33},  {4, 8},   {4, 13},  {4, 14},
      {5, 7},   {5, 11},  {6, 7},   {6, 11},  {6, 17},  {7, 17},  {9, 31},
      {9, 33},  {9, 34},  {10, 34}, {14, 34}, {15, 33}, {15, 34}, {16, 33},
      {16, 34}, {19, 33}, {19, 34}, {20, 34}, {21, 33}, {21, 34}, {23, 33},
      {23, 34}, {24, 26}, {24, 28}, {24, 30}, {24, 33}, {24, 34}, {25, 26},
      {25, 28}, {25, 32}, {26, 32}, {27, 30}, {27, 34}, {28, 34}, {29, 32},
      {29, 34}, {30, 33}, {30, 34}, {31, 33}, {31, 34}, {32, 33}, {32, 34},
      {33, 34},
  };
  std::vector<EdgeTriple> edges;
  edges.reserve(std::size(kEdges));
  for (const auto& e : kEdges) {
    edges.push_back({static_cast<NodeId>(e[0] - 1),
                     static_cast<NodeId>(e[1] - 1), 1.0});
  }
  return Graph::FromEdges(34, edges, /*undirected=*/true);
}

CentralityCounterexample Figure5Graph() {
  // Nodes 0..5: 6-cycle; nodes 6..8 and 9..11: triangles.
  std::vector<EdgeTriple> edges;
  for (NodeId i = 0; i < 6; ++i) {
    edges.push_back({i, static_cast<NodeId>((i + 1) % 6), 1.0});
  }
  for (NodeId base : {NodeId{6}, NodeId{9}}) {
    edges.push_back({base, static_cast<NodeId>(base + 1), 1.0});
    edges.push_back({static_cast<NodeId>(base + 1),
                     static_cast<NodeId>(base + 2), 1.0});
    edges.push_back({base, static_cast<NodeId>(base + 2), 1.0});
  }
  return {Graph::FromEdges(12, edges, /*undirected=*/true), /*u=*/0, /*v=*/6};
}

}  // namespace qsc
