// Synthetic workload generators. These stand in for the paper's datasets
// (Tables 2 and 3); see DESIGN.md §3 for the substitution rationale.

#ifndef QSC_GRAPH_GENERATORS_H_
#define QSC_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "qsc/graph/graph.h"
#include "qsc/util/random.h"

namespace qsc {

// Erdős–Rényi G(n, m): exactly `num_edges` distinct undirected non-loop
// edges chosen uniformly at random. Requires num_edges <= n*(n-1)/2.
Graph ErdosRenyiGnm(NodeId num_nodes, int64_t num_edges, Rng& rng);

// Barabási–Albert preferential attachment: starts from a clique of
// `edges_per_node` nodes, then each new node attaches to `edges_per_node`
// existing nodes with probability proportional to their degree. Undirected,
// unit weights; heavy-tailed degree distribution (stand-in for the paper's
// social / collaboration graphs).
Graph BarabasiAlbert(NodeId num_nodes, int32_t edges_per_node, Rng& rng);

// Chung–Lu style power-law graph: node weights w_i ~ (i + i0)^{-1/(gamma-1)}
// scaled so the expected edge count is `num_edges`; edges sampled by
// picking endpoints proportionally to weight. Duplicates and loops are
// discarded, so the realized edge count is slightly below the target.
Graph PowerLawGraph(NodeId num_nodes, int64_t num_edges, double gamma,
                    Rng& rng);

// Weighted directed hub-and-spoke graph (OpenFlights stand-in): a
// Barabási–Albert skeleton whose arcs get integer weights in
// [1, max_weight], materialized in both directions with independently drawn
// weights (routes are asymmetric).
Graph WeightedHubGraph(NodeId num_nodes, int32_t edges_per_node,
                       int32_t max_weight, Rng& rng);

// The Figure-2 graph: `num_groups` groups of `group_size` nodes; a random
// set of `num_group_pairs` distinct group pairs is connected completely
// bipartitely. The group partition is a stable coloring by construction
// (every node of group i has either `group_size` or 0 neighbors in group j),
// so the graph compresses to ~num_groups colors until it is perturbed.
//
// num_groups=100, group_size=10, num_group_pairs=216 gives the paper's
// |V|=1000, |E|=21600 synthetic graph.
Graph BlockBiregularGraph(int32_t num_groups, int32_t group_size,
                          int32_t num_group_pairs, Rng& rng);

// A flow instance: a graph whose arc weights are capacities plus designated
// source and sink nodes.
struct FlowInstance {
  Graph graph;
  NodeId source;
  NodeId sink;
};

// Vision-style grid network (Tsukuba/Venus/Sawtooth stand-in, Sec 6.1
// max-flow benchmarks): a width x height 4-connected grid with integer
// arc capacities in [1, max_capacity] (both directions, independently
// drawn), a super-source attached to every node of the first column and a
// super-sink attached to every node of the last column with capacities in
// [1, max_terminal_capacity].
FlowInstance GridFlowNetwork(int32_t width, int32_t height,
                             int32_t max_capacity,
                             int32_t max_terminal_capacity, Rng& rng);

// Segmentation-style network modeling the paper's vision instances
// (Tsukuba/Venus/Sawtooth/Cells): every pixel of a width x height grid has
// a source arc (foreground data term) and a sink arc (background data
// term), plus 4-neighbor smoothness arcs. `num_objects` rectangular
// foreground regions get strong source attraction (terms in [8,10] vs
// [1,3] elsewhere, swapped for the sink side); smoothness capacities are
// in [2,4]. The min cut selects per-pixel labels plus object perimeters —
// the structure a quasi-stable coloring compresses the way the paper's
// vision benchmarks do (pixels with similar data terms share colors).
FlowInstance SegmentationGridNetwork(int32_t width, int32_t height,
                                     int32_t num_objects, Rng& rng);

// The pathological network of Example 7 / Figure 4: `num_layers` layers of
// `layer_width` nodes; consecutive layers are connected by strictly
// shifted unit-capacity diagonals (node i -> node i+1), the source feeds
// the whole first layer and the last layer feeds the sink. The layer
// partition is a q-stable coloring with q = 1, each inter-layer capacity
// is layer_width - 1, the maximum uniform flow between layers is 0, and
// the true max-flow is max(0, layer_width - num_layers + 1). Used to
// exercise the gap between the Theorem-6 bounds.
FlowInstance LayeredDiagonalNetwork(int32_t num_layers, int32_t layer_width);

// Deterministic small graphs for tests and examples.
Graph PathGraph(NodeId num_nodes);          // undirected path
Graph CycleGraph(NodeId num_nodes);         // undirected cycle
Graph StarGraph(NodeId num_leaves);         // hub = node 0
Graph CompleteGraph(NodeId num_nodes);      // undirected clique
Graph CompleteBipartiteGraph(NodeId left, NodeId right);  // L = 0..left-1

}  // namespace qsc

#endif  // QSC_GRAPH_GENERATORS_H_
