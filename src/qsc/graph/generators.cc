#include "qsc/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

namespace qsc {
namespace {

// Packs an undirected pair with u < v into one key for dedup sets.
uint64_t PairKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | static_cast<uint32_t>(v);
}

}  // namespace

Graph ErdosRenyiGnm(NodeId num_nodes, int64_t num_edges, Rng& rng) {
  QSC_CHECK_GE(num_nodes, 2);
  const int64_t max_edges =
      static_cast<int64_t>(num_nodes) * (num_nodes - 1) / 2;
  QSC_CHECK_LE(num_edges, max_edges);
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(num_edges) * 2);
  std::vector<EdgeTriple> edges;
  edges.reserve(num_edges);
  while (static_cast<int64_t>(edges.size()) < num_edges) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (u == v) continue;
    if (!seen.insert(PairKey(u, v)).second) continue;
    edges.push_back({u, v, 1.0});
  }
  return Graph::FromEdges(num_nodes, edges, /*undirected=*/true);
}

Graph BarabasiAlbert(NodeId num_nodes, int32_t edges_per_node, Rng& rng) {
  QSC_CHECK_GE(edges_per_node, 1);
  QSC_CHECK_GT(num_nodes, edges_per_node);
  std::vector<EdgeTriple> edges;
  // Repeated-endpoint list: attaching proportionally to degree is equivalent
  // to sampling uniformly from the list of all edge endpoints so far.
  std::vector<NodeId> endpoints;
  // Seed clique over the first edges_per_node + 1 nodes.
  for (NodeId u = 0; u <= edges_per_node; ++u) {
    for (NodeId v = u + 1; v <= edges_per_node; ++v) {
      edges.push_back({u, v, 1.0});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::unordered_set<NodeId> targets;
  for (NodeId u = edges_per_node + 1; u < num_nodes; ++u) {
    targets.clear();
    while (static_cast<int32_t>(targets.size()) < edges_per_node) {
      const NodeId pick =
          endpoints[rng.NextBounded(endpoints.size())];
      targets.insert(pick);
    }
    for (NodeId v : targets) {
      edges.push_back({u, v, 1.0});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  return Graph::FromEdges(num_nodes, edges, /*undirected=*/true);
}

Graph PowerLawGraph(NodeId num_nodes, int64_t num_edges, double gamma,
                    Rng& rng) {
  QSC_CHECK_GT(gamma, 2.0);
  QSC_CHECK_GE(num_nodes, 2);
  // Chung-Lu expected-degree weights w_i = (i + i0)^{-1/(gamma-1)}.
  const double exponent = -1.0 / (gamma - 1.0);
  std::vector<double> weight(num_nodes);
  std::vector<double> cumulative(num_nodes);
  double total = 0.0;
  for (NodeId i = 0; i < num_nodes; ++i) {
    weight[i] = std::pow(static_cast<double>(i) + 10.0, exponent);
    total += weight[i];
    cumulative[i] = total;
  }
  auto sample_node = [&]() -> NodeId {
    const double r = rng.UniformDouble(0.0, total);
    const auto it =
        std::lower_bound(cumulative.begin(), cumulative.end(), r);
    return static_cast<NodeId>(it - cumulative.begin());
  };
  std::unordered_set<uint64_t> seen;
  seen.reserve(static_cast<size_t>(num_edges) * 2);
  std::vector<EdgeTriple> edges;
  edges.reserve(num_edges);
  // Sample up to 3x the target to absorb duplicate/loop rejections without
  // risking an endless loop on dense corners.
  int64_t attempts = 0;
  const int64_t max_attempts = 3 * num_edges + 1000;
  while (static_cast<int64_t>(edges.size()) < num_edges &&
         attempts < max_attempts) {
    ++attempts;
    const NodeId u = sample_node();
    const NodeId v = sample_node();
    if (u == v) continue;
    if (!seen.insert(PairKey(u, v)).second) continue;
    edges.push_back({u, v, 1.0});
  }
  return Graph::FromEdges(num_nodes, edges, /*undirected=*/true);
}

Graph WeightedHubGraph(NodeId num_nodes, int32_t edges_per_node,
                       int32_t max_weight, Rng& rng) {
  QSC_CHECK_GE(max_weight, 1);
  const Graph skeleton = BarabasiAlbert(num_nodes, edges_per_node, rng);
  std::vector<EdgeTriple> arcs;
  arcs.reserve(skeleton.num_arcs());
  for (NodeId u = 0; u < skeleton.num_nodes(); ++u) {
    for (const NeighborEntry& e : skeleton.OutNeighbors(u)) {
      // Each direction gets its own weight.
      arcs.push_back(
          {u, e.node, static_cast<double>(rng.UniformInt(1, max_weight))});
    }
  }
  return Graph::FromEdges(num_nodes, arcs, /*undirected=*/false);
}

Graph BlockBiregularGraph(int32_t num_groups, int32_t group_size,
                          int32_t num_group_pairs, Rng& rng) {
  QSC_CHECK_GE(num_groups, 2);
  QSC_CHECK_GE(group_size, 1);
  const int64_t max_pairs =
      static_cast<int64_t>(num_groups) * (num_groups - 1) / 2;
  QSC_CHECK_LE(num_group_pairs, max_pairs);
  std::unordered_set<uint64_t> chosen;
  while (static_cast<int32_t>(chosen.size()) < num_group_pairs) {
    const NodeId a = static_cast<NodeId>(rng.NextBounded(num_groups));
    const NodeId b = static_cast<NodeId>(rng.NextBounded(num_groups));
    if (a == b) continue;
    chosen.insert(PairKey(a, b));
  }
  std::vector<EdgeTriple> edges;
  edges.reserve(static_cast<size_t>(num_group_pairs) * group_size *
                group_size);
  for (uint64_t key : chosen) {
    const NodeId ga = static_cast<NodeId>(key >> 32);
    const NodeId gb = static_cast<NodeId>(key & 0xffffffffu);
    for (int32_t i = 0; i < group_size; ++i) {
      for (int32_t j = 0; j < group_size; ++j) {
        edges.push_back({ga * group_size + i, gb * group_size + j, 1.0});
      }
    }
  }
  return Graph::FromEdges(num_groups * group_size, edges,
                          /*undirected=*/true);
}

FlowInstance GridFlowNetwork(int32_t width, int32_t height,
                             int32_t max_capacity,
                             int32_t max_terminal_capacity, Rng& rng) {
  QSC_CHECK_GE(width, 2);
  QSC_CHECK_GE(height, 1);
  const NodeId grid_nodes = width * height;
  const NodeId source = grid_nodes;
  const NodeId sink = grid_nodes + 1;
  auto id = [width](int32_t x, int32_t y) -> NodeId { return y * width + x; };
  std::vector<EdgeTriple> arcs;
  arcs.reserve(static_cast<size_t>(grid_nodes) * 4 + 2 * height);
  for (int32_t y = 0; y < height; ++y) {
    for (int32_t x = 0; x < width; ++x) {
      if (x + 1 < width) {
        arcs.push_back({id(x, y), id(x + 1, y),
                        static_cast<double>(rng.UniformInt(1, max_capacity))});
        arcs.push_back({id(x + 1, y), id(x, y),
                        static_cast<double>(rng.UniformInt(1, max_capacity))});
      }
      if (y + 1 < height) {
        arcs.push_back({id(x, y), id(x, y + 1),
                        static_cast<double>(rng.UniformInt(1, max_capacity))});
        arcs.push_back({id(x, y + 1), id(x, y),
                        static_cast<double>(rng.UniformInt(1, max_capacity))});
      }
    }
  }
  for (int32_t y = 0; y < height; ++y) {
    arcs.push_back(
        {source, id(0, y),
         static_cast<double>(rng.UniformInt(1, max_terminal_capacity))});
    arcs.push_back(
        {id(width - 1, y), sink,
         static_cast<double>(rng.UniformInt(1, max_terminal_capacity))});
  }
  return {Graph::FromEdges(grid_nodes + 2, arcs, /*undirected=*/false),
          source, sink};
}

FlowInstance SegmentationGridNetwork(int32_t width, int32_t height,
                                     int32_t num_objects, Rng& rng) {
  QSC_CHECK_GE(width, 4);
  QSC_CHECK_GE(height, 4);
  QSC_CHECK_GE(num_objects, 1);
  // Foreground mask: random rectangles covering roughly a third of the
  // image between them.
  std::vector<bool> foreground(static_cast<size_t>(width) * height, false);
  for (int32_t obj = 0; obj < num_objects; ++obj) {
    const int32_t w = 2 + static_cast<int32_t>(rng.NextBounded(width / 3));
    const int32_t h = 2 + static_cast<int32_t>(rng.NextBounded(height / 3));
    const int32_t x0 = static_cast<int32_t>(rng.NextBounded(width - w));
    const int32_t y0 = static_cast<int32_t>(rng.NextBounded(height - h));
    for (int32_t y = y0; y < y0 + h; ++y) {
      for (int32_t x = x0; x < x0 + w; ++x) {
        foreground[static_cast<size_t>(y) * width + x] = true;
      }
    }
  }
  const NodeId grid_nodes = width * height;
  const NodeId source = grid_nodes;
  const NodeId sink = grid_nodes + 1;
  auto id = [width](int32_t x, int32_t y) -> NodeId { return y * width + x; };
  auto strong = [&rng]() -> double {
    return static_cast<double>(rng.UniformInt(8, 10));
  };
  auto weak = [&rng]() -> double {
    return static_cast<double>(rng.UniformInt(1, 3));
  };
  // Potts-model smoothness: constant capacity, as in the benchmark
  // segmentation instances. Keeping it noise-free lets the data-term
  // structure dominate the coloring's witness choices, mirroring the
  // region structure of the real instances.
  constexpr double kSmooth = 3.0;
  // An ambiguous band (e.g. motion blur / occlusion in the stereo
  // instances): data terms there are balanced, so the optimal labels are
  // decided by the smoothness term at pixel granularity — structure a
  // coarse coloring cannot resolve.
  const int32_t band_x0 = width / 5;
  const int32_t band_x1 = band_x0 + width / 6;
  std::vector<EdgeTriple> arcs;
  arcs.reserve(static_cast<size_t>(grid_nodes) * 6);
  for (int32_t y = 0; y < height; ++y) {
    for (int32_t x = 0; x < width; ++x) {
      const NodeId p = id(x, y);
      bool fg = foreground[static_cast<size_t>(y) * width + x];
      // Salt-and-pepper texture: isolated pixels with flipped data terms
      // whose optimal label is decided by their neighborhood.
      if (rng.Bernoulli(0.08)) fg = !fg;
      const bool ambiguous = x >= band_x0 && x < band_x1;
      // Data terms: foreground pixels attract the source, background
      // pixels the sink; ambiguous pixels attract both weakly.
      if (ambiguous) {
        arcs.push_back(
            {source, p, static_cast<double>(rng.UniformInt(4, 6))});
        arcs.push_back(
            {p, sink, static_cast<double>(rng.UniformInt(4, 6))});
      } else {
        arcs.push_back({source, p, fg ? strong() : weak()});
        arcs.push_back({p, sink, fg ? weak() : strong()});
      }
      // Smoothness terms.
      if (x + 1 < width) {
        arcs.push_back({p, id(x + 1, y), kSmooth});
        arcs.push_back({id(x + 1, y), p, kSmooth});
      }
      if (y + 1 < height) {
        arcs.push_back({p, id(x, y + 1), kSmooth});
        arcs.push_back({id(x, y + 1), p, kSmooth});
      }
    }
  }
  return {Graph::FromEdges(grid_nodes + 2, arcs, /*undirected=*/false),
          source, sink};
}

FlowInstance LayeredDiagonalNetwork(int32_t num_layers, int32_t layer_width) {
  QSC_CHECK_GE(num_layers, 2);
  QSC_CHECK_GE(layer_width, 2);
  const NodeId n = layer_width;
  const NodeId source = num_layers * n;
  const NodeId sink = source + 1;
  auto id = [n](int32_t layer, int32_t i) -> NodeId { return layer * n + i; };
  std::vector<EdgeTriple> arcs;
  // Source feeds the whole first layer; last layer feeds the sink.
  for (int32_t i = 0; i < n; ++i) {
    arcs.push_back({source, id(0, i), 1.0});
    arcs.push_back({id(num_layers - 1, i), sink, 1.0});
  }
  // Between consecutive layers: node i sends only to node i+1 of the next
  // layer (strict shifted diagonal). Out-degrees toward the next layer are
  // 1 except the top node's 0, so the layer partition is a q-stable
  // coloring with q = 1; the maximum uniform flow between layers is 0 (the
  // top node cannot carry its share), while c^2 between layers is
  // layer_width - 1. A path entering layer 0 at index i leaves the last
  // layer at i + num_layers - 1, so the true max-flow is
  // max(0, layer_width - num_layers + 1) — constant and tiny compared to
  // the c^2 bound (Example 7 / Figure 4).
  for (int32_t layer = 0; layer + 1 < num_layers; ++layer) {
    for (int32_t i = 0; i + 1 < n; ++i) {
      arcs.push_back({id(layer, i), id(layer + 1, i + 1), 1.0});
    }
  }
  return {Graph::FromEdges(num_layers * n + 2, arcs, /*undirected=*/false),
          source, sink};
}

Graph PathGraph(NodeId num_nodes) {
  std::vector<EdgeTriple> edges;
  for (NodeId i = 0; i + 1 < num_nodes; ++i) edges.push_back({i, i + 1, 1.0});
  return Graph::FromEdges(num_nodes, edges, /*undirected=*/true);
}

Graph CycleGraph(NodeId num_nodes) {
  QSC_CHECK_GE(num_nodes, 3);
  std::vector<EdgeTriple> edges;
  for (NodeId i = 0; i < num_nodes; ++i) {
    edges.push_back({i, static_cast<NodeId>((i + 1) % num_nodes), 1.0});
  }
  return Graph::FromEdges(num_nodes, edges, /*undirected=*/true);
}

Graph StarGraph(NodeId num_leaves) {
  std::vector<EdgeTriple> edges;
  for (NodeId i = 1; i <= num_leaves; ++i) edges.push_back({0, i, 1.0});
  return Graph::FromEdges(num_leaves + 1, edges, /*undirected=*/true);
}

Graph CompleteGraph(NodeId num_nodes) {
  std::vector<EdgeTriple> edges;
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (NodeId v = u + 1; v < num_nodes; ++v) edges.push_back({u, v, 1.0});
  }
  return Graph::FromEdges(num_nodes, edges, /*undirected=*/true);
}

Graph CompleteBipartiteGraph(NodeId left, NodeId right) {
  std::vector<EdgeTriple> edges;
  for (NodeId u = 0; u < left; ++u) {
    for (NodeId v = 0; v < right; ++v) {
      edges.push_back({u, static_cast<NodeId>(left + v), 1.0});
    }
  }
  return Graph::FromEdges(left + right, edges, /*undirected=*/true);
}

}  // namespace qsc
