#!/usr/bin/env bash
# The formatting gate, runnable locally: clang-format over every
# first-party source. The CI `format` job runs exactly this script, so a
# clean local run means the job cannot be the first thing you trip on.
#
#   scripts/check-format.sh        # dry-run, fails on drift (CI mode)
#   scripts/check-format.sh --fix  # rewrite files in place
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check-format: clang-format not found on PATH (apt-get install" \
       "clang-format); style is defined by .clang-format" >&2
  exit 1
fi

mode=(--dry-run --Werror)
if [[ "${1:-}" == "--fix" ]]; then
  mode=(-i)
fi

find src tests bench examples \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print0 |
  xargs -0 clang-format "${mode[@]}"
