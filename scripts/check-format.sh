#!/usr/bin/env bash
# The formatting gate, runnable locally: clang-format over every
# first-party source. The CI `format` job runs exactly this script, so a
# clean local run means the job cannot be the first thing you trip on.
#
#   scripts/check-format.sh        # dry-run, fails on drift (CI mode)
#   scripts/check-format.sh --fix  # rewrite files in place
set -euo pipefail
cd "$(dirname "$0")/.."

# The version CI pins: the `format` job runs on ubuntu-latest (24.04),
# whose default clang-format is 18. Other majors may format differently;
# match this locally when a clean dry-run matters.
ci_clang_format_version=18

if ! command -v clang-format >/dev/null 2>&1; then
  if [[ "${1:-}" == "--fix" ]]; then
    # --fix without the tool is a no-op, not an error: there is nothing
    # to rewrite, and failing here would block workflows (pre-commit
    # hooks, CI images without clang-format) that only format
    # opportunistically.
    echo "check-format: clang-format not found on PATH; --fix is a no-op." \
         "Install clang-format-${ci_clang_format_version} (the version CI" \
         "uses) to rewrite files; style is defined by .clang-format" >&2
    exit 0
  fi
  # Dry-run mode is the CI oracle: without the tool it cannot vouch for
  # anything, so it must fail loudly.
  echo "check-format: clang-format not found on PATH (apt-get install" \
       "clang-format-${ci_clang_format_version}, the version CI uses);" \
       "style is defined by .clang-format" >&2
  exit 1
fi

mode=(--dry-run --Werror)
if [[ "${1:-}" == "--fix" ]]; then
  mode=(-i)
fi

find src tests bench examples \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print0 |
  xargs -0 clang-format "${mode[@]}"
