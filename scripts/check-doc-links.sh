#!/usr/bin/env bash
# The documentation link gate, runnable locally: every intra-repo
# markdown link and every source-file path named in README.md and
# docs/*.md must point at a file that exists. The CI `format` job runs
# exactly this script, so docs cannot drift silently when files move.
#
#   scripts/check-doc-links.sh
set -euo pipefail
cd "$(dirname "$0")/.."

docs=(README.md docs/*.md)
failures=0

fail() {
  echo "check-doc-links: $1: broken reference: $2" >&2
  failures=$((failures + 1))
}

for doc in "${docs[@]}"; do
  dir=$(dirname "$doc")

  # Markdown links [text](target): keep relative intra-repo targets,
  # skip external schemes and pure #anchors, strip any #fragment.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|'#'*) continue ;;
    esac
    path="${target%%#*}"
    [[ -n "$path" ]] || continue
    # Links resolve relative to the containing file.
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      fail "$doc" "link ($target)"
    fi
  done < <(grep -oE '\]\(([^)]+)\)' "$doc" | sed -E 's/^\]\((.*)\)$/\1/')

  # Source-file mentions: any token ending in .h/.cc/.cpp (backticked
  # paths, bare mentions, "qsc/..." shorthand for "src/qsc/...").
  while IFS= read -r mention; do
    # Trim wrapping punctuation the prose attaches.
    path="${mention#\`}"
    path="${path%\`}"
    case "$path" in
      */*) ;;
      *) continue ;;  # bare filenames like graph.h are headline words
    esac
    if [[ -e "$path" || -e "src/$path" || -e "src/qsc/$path" ]]; then
      continue
    fi
    fail "$doc" "$path"
  done < <(grep -oE '[A-Za-z0-9_./-]+\.(h|cc|cpp)\b' "$doc" | sort -u)
done

if [[ "$failures" -gt 0 ]]; then
  echo "check-doc-links: $failures broken reference(s)" >&2
  exit 1
fi
echo "check-doc-links: all markdown links and source paths resolve"
