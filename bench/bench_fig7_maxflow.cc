// Figure 7(a): speed-accuracy trade-off for max-flow across the flow
// datasets. For each instance: exact push-relabel baseline, then the
// coloring approximation at growing color budgets; reports end-to-end time
// (coloring + reduction + solve) and the paper's relative-error metric.
//
// Shape targets: error near 1.0 at ~35 colors; runtime a small fraction of
// the exact solve; error shrinks as colors grow.

#include <cstdio>

#include "qsc/flow/approx_flow.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/util/stats.h"
#include "qsc/util/table.h"
#include "qsc/util/timer.h"
#include "workloads.h"

int main() {
  std::printf("=== Figure 7(a): max-flow speed-accuracy trade-off ===\n");
  std::printf("paper: geometric-mean error 1.17 within 1%% of the exact "
              "runtime at <= 35 colors\n\n");
  qsc::TablePrinter table({"dataset", "exact flow", "exact time", "colors",
                           "approx", "rel.err", "time", "% of exact"});
  std::vector<double> errors_at_budget;
  for (const auto& dataset : qsc::bench::FlowDatasets()) {
    const qsc::Graph& g = dataset.instance.graph;
    qsc::WallTimer timer;
    const double exact = qsc::MaxFlowPushRelabel(
        g, dataset.instance.source, dataset.instance.sink);
    const double exact_seconds = timer.ElapsedSeconds();

    for (qsc::ColorId colors : {5, 10, 20, 35}) {
      qsc::FlowApproxOptions options;
      options.rothko.max_colors = colors;
      timer.Reset();
      const qsc::FlowApproxResult approx = qsc::ApproximateMaxFlow(
          g, dataset.instance.source, dataset.instance.sink, options);
      const double seconds = timer.ElapsedSeconds();
      const double rel = qsc::RelativeError(exact, approx.upper_bound);
      if (colors == 35) errors_at_budget.push_back(rel);
      table.AddRow({dataset.name, qsc::FormatDouble(exact, 0),
                    qsc::FormatSeconds(exact_seconds),
                    std::to_string(colors),
                    qsc::FormatDouble(approx.upper_bound, 0),
                    qsc::FormatDouble(rel, 3), qsc::FormatSeconds(seconds),
                    qsc::FormatDouble(100.0 * seconds / exact_seconds, 1)});
    }
  }
  table.Print(stdout);
  std::printf("\ngeometric-mean rel.err at 35 colors: %.3f (paper: 1.17)\n",
              qsc::GeometricMean(errors_at_budget));
  return 0;
}
