// Figure 7(a): speed-accuracy trade-off for max-flow across the flow
// datasets. The sweep itself is the pipelines/fig7-maxflow scenario of the
// qsc/bench harness (exact push-relabel baseline, then the coloring
// approximation at growing color budgets; end-to-end time = coloring +
// reduction + solve); this binary is its human-readable frontend.
//
// Shape targets: error near 1.0 at ~35 colors; runtime a small fraction of
// the exact solve; error shrinks as colors grow.

#include <cstdio>

#include "fig7_common.h"

int main() {
  std::printf("=== Figure 7(a): max-flow speed-accuracy trade-off ===\n");
  std::printf("paper: geometric-mean error 1.17 within 1%% of the exact "
              "runtime at <= 35 colors\n\n");
  double geomean = 0.0;
  const int exit_code = qsc::bench::RunFig7Frontend(
      "pipelines/fig7-maxflow", "geomean_rel_err_b35", &geomean);
  if (exit_code != 0) return exit_code;
  std::printf("\ngeometric-mean rel.err at 35 colors: %.3f (paper: 1.17)\n",
              geomean);
  return 0;
}
