// Figure 7(a): speed-accuracy trade-off for max-flow across the flow
// datasets, driven by the qsc/eval pipeline: exact push-relabel baseline,
// then the coloring approximation at growing color budgets; reports
// end-to-end time (coloring + reduction + solve) and the paper's
// relative-error metric.
//
// Shape targets: error near 1.0 at ~35 colors; runtime a small fraction of
// the exact solve; error shrinks as colors grow.

#include <cstdio>

#include "qsc/eval/pipelines.h"
#include "qsc/util/stats.h"
#include "qsc/util/table.h"
#include "workloads.h"

int main() {
  std::printf("=== Figure 7(a): max-flow speed-accuracy trade-off ===\n");
  std::printf("paper: geometric-mean error 1.17 within 1%% of the exact "
              "runtime at <= 35 colors\n\n");
  qsc::TablePrinter table({"dataset", "exact flow", "exact time", "colors",
                           "approx", "rel.err", "time", "% of exact"});
  const qsc::eval::EvalOptions options;  // push-relabel oracle
  const std::vector<qsc::ColorId> budgets{5, 10, 20, 35};
  std::vector<double> errors_at_budget;
  for (const auto& dataset : qsc::bench::FlowDatasets()) {
    const auto runs =
        qsc::eval::RunMaxFlowPipeline(dataset.instance, options, budgets);
    for (const qsc::eval::RunMetrics& m : runs) {
      if (m.color_budget == 35) errors_at_budget.push_back(m.relative_error);
      table.AddRow({dataset.name, qsc::FormatDouble(m.exact_value, 0),
                    qsc::FormatSeconds(m.exact_seconds),
                    std::to_string(m.color_budget),
                    qsc::FormatDouble(m.approx_value, 0),
                    qsc::FormatDouble(m.relative_error, 3),
                    qsc::FormatSeconds(m.approx_seconds),
                    qsc::FormatDouble(
                        100.0 * m.approx_seconds / m.exact_seconds, 1)});
    }
  }
  table.Print(stdout);
  std::printf("\ngeometric-mean rel.err at 35 colors: %.3f (paper: 1.17)\n",
              qsc::GeometricMean(errors_at_budget));
  return 0;
}
