// Table 3: summary of the linear programs used for evaluation (stand-ins),
// with the exact interior-point solve time standing in for the paper's
// "Sol. time" column.

#include <cstdio>

#include "qsc/lp/interior_point.h"
#include "qsc/util/table.h"
#include "qsc/util/timer.h"
#include "workloads.h"

int main() {
  std::printf("=== Table 3: linear programs used for evaluation "
              "(stand-ins) ===\n\n");
  qsc::TablePrinter table({"name", "paper dataset", "rows", "cols",
                           "nonzeros", "sol. time"});
  for (const auto& d : qsc::bench::LpDatasets()) {
    qsc::WallTimer timer;
    const qsc::IpmResult exact = qsc::SolveInteriorPoint(d.lp);
    const double seconds = timer.ElapsedSeconds();
    table.AddRow({d.name, d.paper_name, qsc::FormatCount(d.lp.num_rows),
                  qsc::FormatCount(d.lp.num_cols),
                  qsc::FormatCount(d.lp.NumNonzeros()),
                  exact.status == qsc::LpStatus::kOptimal
                      ? qsc::FormatSeconds(seconds)
                      : "x"});
  }
  table.Print(stdout);
  return 0;
}
