// Figure 7(c): speed-accuracy trade-off for betweenness centrality across
// the five centrality datasets, driven by the qsc/eval pipeline. Exact
// baseline is Brandes; ours runs the color-pivot estimator at growing
// color budgets. Accuracy is Spearman's rank correlation against the
// exact scores.
//
// Shape targets: rho > 0.9 within ~1-10% of the exact runtime; larger
// datasets trade off more favorably.

#include <cstdio>

#include "qsc/eval/pipelines.h"
#include "qsc/util/stats.h"
#include "qsc/util/table.h"
#include "workloads.h"

int main() {
  std::printf("=== Figure 7(c): centrality speed-accuracy trade-off ===\n");
  std::printf("paper: rho ~0.973 at 1%% of the exact runtime; 50 colors "
              "give rho > 0.948\n\n");
  qsc::TablePrinter table({"dataset", "exact time", "colors", "spearman",
                           "time", "% of exact"});
  qsc::eval::EvalOptions options;
  options.seed = 17;  // pivot-sampling seed (matches ColorPivotOptions)
  const std::vector<qsc::ColorId> budgets{10, 25, 50, 100};
  std::vector<double> rho_at_50;
  for (const auto& dataset : qsc::bench::CentralityDatasets()) {
    const auto runs =
        qsc::eval::RunCentralityPipeline(dataset.graph, options, budgets);
    for (const qsc::eval::RunMetrics& m : runs) {
      if (m.color_budget == 50) rho_at_50.push_back(m.rank_correlation);
      table.AddRow({dataset.name, qsc::FormatSeconds(m.exact_seconds),
                    std::to_string(m.color_budget),
                    qsc::FormatDouble(m.rank_correlation, 3),
                    qsc::FormatSeconds(m.approx_seconds),
                    qsc::FormatDouble(
                        100.0 * m.approx_seconds / m.exact_seconds, 1)});
    }
  }
  table.Print(stdout);
  double mean_rho = qsc::Mean(rho_at_50);
  std::printf("\nmean spearman at 50 colors: %.3f (paper: > 0.948)\n",
              mean_rho);
  return 0;
}
