// Figure 7(c): speed-accuracy trade-off for betweenness centrality across
// the five centrality datasets. Exact baseline is Brandes; ours runs the
// color-pivot estimator at growing color budgets. Accuracy is Spearman's
// rank correlation against the exact scores.
//
// Shape targets: rho > 0.9 within ~1-10% of the exact runtime; larger
// datasets trade off more favorably.

#include <cstdio>

#include "qsc/centrality/brandes.h"
#include "qsc/centrality/color_pivot.h"
#include "qsc/util/stats.h"
#include "qsc/util/table.h"
#include "qsc/util/timer.h"
#include "workloads.h"

int main() {
  std::printf("=== Figure 7(c): centrality speed-accuracy trade-off ===\n");
  std::printf("paper: rho ~0.973 at 1%% of the exact runtime; 50 colors "
              "give rho > 0.948\n\n");
  qsc::TablePrinter table({"dataset", "exact time", "colors", "spearman",
                           "time", "% of exact"});
  std::vector<double> rho_at_50;
  for (const auto& dataset : qsc::bench::CentralityDatasets()) {
    qsc::WallTimer timer;
    const std::vector<double> exact = qsc::BetweennessExact(dataset.graph);
    const double exact_seconds = timer.ElapsedSeconds();

    for (qsc::ColorId colors : {10, 25, 50, 100}) {
      qsc::ColorPivotOptions options;
      options.rothko.max_colors = colors;
      timer.Reset();
      const auto approx = qsc::ApproximateBetweenness(dataset.graph,
                                                      options);
      const double seconds = timer.ElapsedSeconds();
      const double rho = qsc::SpearmanCorrelation(approx.scores, exact);
      if (colors == 50) rho_at_50.push_back(rho);
      table.AddRow({dataset.name, qsc::FormatSeconds(exact_seconds),
                    std::to_string(colors), qsc::FormatDouble(rho, 3),
                    qsc::FormatSeconds(seconds),
                    qsc::FormatDouble(100.0 * seconds / exact_seconds, 1)});
    }
  }
  table.Print(stdout);
  double mean_rho = qsc::Mean(rho_at_50);
  std::printf("\nmean spearman at 50 colors: %.3f (paper: > 0.948)\n",
              mean_rho);
  return 0;
}
