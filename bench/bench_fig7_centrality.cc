// Figure 7(c): speed-accuracy trade-off for betweenness centrality across
// the five centrality datasets. The sweep is the pipelines/fig7-centrality
// scenario of the qsc/bench harness (exact baseline is Brandes; ours runs
// the color-pivot estimator at growing color budgets; accuracy is
// Spearman's rank correlation against the exact scores); this binary is
// its human-readable frontend.
//
// Shape targets: rho > 0.9 within ~1-10% of the exact runtime; larger
// datasets trade off more favorably.

#include <cstdio>

#include "fig7_common.h"

int main() {
  std::printf("=== Figure 7(c): centrality speed-accuracy trade-off ===\n");
  std::printf("paper: rho ~0.973 at 1%% of the exact runtime; 50 colors "
              "give rho > 0.948\n\n");
  double mean_rho = 0.0;
  const int exit_code = qsc::bench::RunFig7Frontend(
      "pipelines/fig7-centrality", "mean_rho_b50", &mean_rho);
  if (exit_code != 0) return exit_code;
  std::printf("\nmean spearman at 50 colors: %.3f (paper: > 0.948)\n",
              mean_rho);
  return 0;
}
