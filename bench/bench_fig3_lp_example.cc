// Figure 3: the paper's worked 5x3 LP example. Prints the original LP's
// optimum, the q=1 block partition found by the coloring, the reduced
// matrix entries, and the reduced optimum (paper: 128.157 -> 130.199).

#include <cstdio>

#include "qsc/lp/generators.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/table.h"

int main() {
  std::printf("=== Figure 3: LP reduction worked example ===\n\n");
  const qsc::LpProblem lp = qsc::Figure3Lp();
  const qsc::LpResult exact = qsc::SolveSimplex(lp);
  std::printf("(a) original LP: 5 rows x 3 cols, optimal value %.3f "
              "(paper: 128.157)\n\n",
              exact.objective);

  qsc::LpReduceOptions options;
  options.max_colors = 6;
  const qsc::ReducedLp reduced = qsc::ReduceLp(lp, options);
  std::printf("(b) q-stable block partition (measured q = %.2f, paper q = "
              "1):\n    row colors:", reduced.max_q);
  for (int32_t i = 0; i < 5; ++i) {
    std::printf(" %d", reduced.row_color[i]);
  }
  std::printf("   col colors:");
  for (int32_t j = 0; j < 3; ++j) {
    std::printf(" %d", reduced.col_color[j]);
  }
  std::printf("\n\n    reduced extended matrix:\n");
  qsc::TablePrinter matrix({"block", "value", "paper"});
  auto entry = [&reduced](int32_t r, int32_t s) {
    for (const qsc::LpEntry& e : reduced.lp.entries) {
      if (e.row == r && e.col == s) return e.value;
    }
    return 0.0;
  };
  const int32_t r0 = reduced.row_color[0];
  const int32_t r1 = reduced.row_color[3];
  const int32_t s0 = reduced.col_color[0];
  const int32_t s1 = reduced.col_color[2];
  matrix.AddRow({"A(0,0)", qsc::FormatDouble(entry(r0, s0), 4),
                 "34/sqrt(6) = 13.8804"});
  matrix.AddRow({"A(0,1)", qsc::FormatDouble(entry(r0, s1), 4),
                 "5/sqrt(3) = 2.8868"});
  matrix.AddRow({"A(1,0)", qsc::FormatDouble(entry(r1, s0), 4),
                 "9/sqrt(4) = 4.5000"});
  matrix.AddRow({"A(1,1)", qsc::FormatDouble(entry(r1, s1), 4),
                 "43/sqrt(2) = 30.4056"});
  matrix.AddRow({"b(0)", qsc::FormatDouble(reduced.lp.b[r0], 4),
                 "61/sqrt(3) = 35.2184"});
  matrix.AddRow({"b(1)", qsc::FormatDouble(reduced.lp.b[r1], 4),
                 "101/sqrt(2) = 71.4178"});
  matrix.AddRow({"c(0)", qsc::FormatDouble(reduced.lp.c[s0], 4),
                 "19/sqrt(2) = 13.4350"});
  matrix.AddRow({"c(1)", qsc::FormatDouble(reduced.lp.c[s1], 4), "50"});
  matrix.Print(stdout);

  const qsc::LpResult red = qsc::SolveSimplex(reduced.lp);
  std::printf("\n(c) reduced LP optimal value: %.3f (paper: 130.199)\n",
              red.objective);
  return 0;
}
