// Shared benchmark workloads: the stand-ins for the paper's Tables 2 and 3
// datasets (see DESIGN.md §3), scaled to single-core budgets. Since the
// qsc/eval harness landed, the instance definitions live in
// qsc/eval/suites.{h,cc}; this header re-exports them under the historical
// bench names so every bench binary keeps drawing from one experiment
// index.

#ifndef QSC_BENCH_WORKLOADS_H_
#define QSC_BENCH_WORKLOADS_H_

#include <vector>

#include "qsc/eval/suites.h"

namespace qsc {
namespace bench {

// name / paper_name / graph / real flag (see qsc::eval::NamedGraph).
using GraphDataset = ::qsc::eval::NamedGraph;
using FlowDataset = ::qsc::eval::NamedFlow;
using LpDataset = ::qsc::eval::NamedLp;

// The "General evaluation" block of Table 2: Karate (real), OpenFlights
// and DBLP stand-ins.
std::vector<GraphDataset> GeneralDatasets();

// The "Centrality" block of Table 2: Astrophysics, Facebook, Deezer,
// Enron, Epinions stand-ins (power-law graphs with matched density).
std::vector<GraphDataset> CentralityDatasets();

// The "Maximum-flow" block of Table 2: vision-style grid networks standing
// in for Tsukuba/Venus/Sawtooth/SimCells/Cells.
std::vector<FlowDataset> FlowDatasets();

// Table 3: qap15, nug08-3rd, supportcase10, ex10 stand-ins.
std::vector<LpDataset> LpDatasets();

}  // namespace bench
}  // namespace qsc

#endif  // QSC_BENCH_WORKLOADS_H_
