// Shared benchmark workloads: the stand-ins for the paper's Tables 2 and 3
// datasets (see DESIGN.md §3), scaled to single-core budgets. Every bench
// binary draws its instances from here so the experiment index stays
// consistent.

#ifndef QSC_BENCH_WORKLOADS_H_
#define QSC_BENCH_WORKLOADS_H_

#include <string>
#include <vector>

#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/lp/model.h"

namespace qsc {
namespace bench {

struct GraphDataset {
  std::string name;        // stand-in name (paper dataset it models)
  std::string paper_name;  // dataset in the paper's Table 2
  Graph graph;
  bool real = false;  // true only for the embedded karate club
};

// The "General evaluation" block of Table 2: Karate (real), OpenFlights
// and DBLP stand-ins.
std::vector<GraphDataset> GeneralDatasets();

// The "Centrality" block of Table 2: Astrophysics, Facebook, Deezer,
// Enron, Epinions stand-ins (power-law graphs with matched density).
std::vector<GraphDataset> CentralityDatasets();

struct FlowDataset {
  std::string name;
  std::string paper_name;
  FlowInstance instance;
};

// The "Maximum-flow" block of Table 2: vision-style grid networks standing
// in for Tsukuba/Venus/Sawtooth/SimCells/Cells.
std::vector<FlowDataset> FlowDatasets();

struct LpDataset {
  std::string name;
  std::string paper_name;
  LpProblem lp;
};

// Table 3: qap15, nug08-3rd, supportcase10, ex10 stand-ins.
std::vector<LpDataset> LpDatasets();

}  // namespace bench
}  // namespace qsc

#endif  // QSC_BENCH_WORKLOADS_H_
