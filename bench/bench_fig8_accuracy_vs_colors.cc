// Figure 8: accuracy as a function of the number of colors, for all three
// task types. One representative dataset per task, swept over color
// budgets; the paper's claims are a diminishing-returns curve and
// convergence within ~150 colors (max-flow/centrality roughly monotone,
// LP non-monotone).

#include <cstdio>

#include "qsc/centrality/brandes.h"
#include "qsc/centrality/color_pivot.h"
#include "qsc/flow/approx_flow.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/lp/interior_point.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/stats.h"
#include "qsc/util/table.h"
#include "workloads.h"

namespace {

constexpr qsc::ColorId kBudgets[] = {5, 10, 20, 40, 80, 150};

}  // namespace

int main() {
  std::printf("=== Figure 8: accuracy vs number of colors ===\n\n");

  // (a) max-flow.
  {
    const auto datasets = qsc::bench::FlowDatasets();
    const auto& ds = datasets[2];  // venus0-sim
    const double exact = qsc::MaxFlowPushRelabel(
        ds.instance.graph, ds.instance.source, ds.instance.sink);
    qsc::TablePrinter table({"colors", "rel.err"});
    for (qsc::ColorId colors : kBudgets) {
      qsc::FlowApproxOptions options;
      options.rothko.max_colors = colors;
      const auto approx =
          qsc::ApproximateMaxFlow(ds.instance.graph, ds.instance.source,
                                  ds.instance.sink, options);
      table.AddRow({std::to_string(colors),
                    qsc::FormatDouble(
                        qsc::RelativeError(exact, approx.upper_bound), 3)});
    }
    std::printf("(a) max-flow on %s (ideal 1.0):\n", ds.name.c_str());
    table.Print(stdout);
  }

  // (b) linear optimization.
  {
    const auto datasets = qsc::bench::LpDatasets();
    const auto& ds = datasets[0];  // qap15-sim
    const qsc::IpmResult exact = qsc::SolveInteriorPoint(ds.lp);
    qsc::TablePrinter table({"colors", "rel.err"});
    for (qsc::ColorId colors : kBudgets) {
      qsc::LpReduceOptions options;
      options.max_colors = colors;
      const qsc::ReducedLp reduced = qsc::ReduceLp(ds.lp, options);
      const qsc::LpResult red = qsc::SolveSimplex(reduced.lp);
      table.AddRow(
          {std::to_string(colors),
           qsc::FormatDouble(
               qsc::RelativeError(exact.objective, red.objective), 3)});
    }
    std::printf("\n(b) linear optimization on %s (ideal 1.0, may be "
                "non-monotone):\n",
                ds.name.c_str());
    table.Print(stdout);
  }

  // (c) centrality.
  {
    const auto datasets = qsc::bench::CentralityDatasets();
    const auto& ds = datasets[0];  // astroph-sim
    const std::vector<double> exact = qsc::BetweennessExact(ds.graph);
    qsc::TablePrinter table({"colors", "spearman"});
    for (qsc::ColorId colors : kBudgets) {
      qsc::ColorPivotOptions options;
      options.rothko.max_colors = colors;
      const auto approx = qsc::ApproximateBetweenness(ds.graph, options);
      table.AddRow({std::to_string(colors),
                    qsc::FormatDouble(
                        qsc::SpearmanCorrelation(approx.scores, exact), 3)});
    }
    std::printf("\n(c) centrality on %s (ideal 1.0):\n", ds.name.c_str());
    table.Print(stdout);
  }
  return 0;
}
