// Ablations for the two design choices the paper motivates in Sec 5.2:
//
//  (A) split threshold: arithmetic vs geometric mean. On scale-free
//      graphs, arithmetic splits are badly unbalanced (the paper's
//      Barabási–Albert 1:216 example); geometric splits should need fewer
//      colors for the same q and produce better-balanced colors.
//
//  (B) witness weighting C_ij = |P_i|^alpha |P_j|^beta. The paper
//      prescribes alpha=beta=0 for max-flow, alpha=1 beta=0 for LPs and
//      alpha=beta=1 for centrality; each task is run with all three
//      settings at a fixed color budget.

#include <cstdio>

#include "qsc/centrality/brandes.h"
#include "qsc/centrality/color_pivot.h"
#include "qsc/coloring/q_error.h"
#include "qsc/coloring/rothko.h"
#include "qsc/flow/approx_flow.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/graph/generators.h"
#include "qsc/lp/interior_point.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/random.h"
#include "qsc/util/stats.h"
#include "qsc/util/table.h"
#include "workloads.h"

namespace {

int64_t LargestColor(const qsc::Partition& p) {
  int64_t largest = 0;
  for (int64_t s : p.ColorSizes()) largest = std::max(largest, s);
  return largest;
}

}  // namespace

int main() {
  std::printf("=== Ablation A: arithmetic vs geometric split threshold "
              "(Sec 5.2) ===\n\n");
  {
    qsc::Rng rng(71);
    const qsc::Graph g = qsc::BarabasiAlbert(20000, 3, rng);
    qsc::TablePrinter table({"split", "target q", "colors",
                             "largest color", "max q"});
    for (const auto split : {qsc::RothkoOptions::SplitMean::kArithmetic,
                             qsc::RothkoOptions::SplitMean::kGeometric}) {
      for (double q : {32.0, 16.0, 8.0}) {
        qsc::RothkoOptions options;
        options.max_colors = g.num_nodes();
        options.q_tolerance = q;
        options.split_mean = split;
        const qsc::Partition p = qsc::RothkoColoring(g, options);
        table.AddRow(
            {split == qsc::RothkoOptions::SplitMean::kArithmetic
                 ? "arithmetic"
                 : "geometric",
             qsc::FormatDouble(q, 0), qsc::FormatCount(p.num_colors()),
             qsc::FormatCount(LargestColor(p)),
             qsc::FormatDouble(qsc::ComputeQError(g, p).max_q, 1)});
      }
    }
    table.Print(stdout);
  }

  std::printf("\n=== Ablation B: witness weighting alpha/beta per task "
              "===\n\n");
  struct Weighting {
    const char* name;
    double alpha;
    double beta;
  };
  static constexpr Weighting kWeightings[] = {
      {"a=0 b=0", 0.0, 0.0}, {"a=1 b=0", 1.0, 0.0}, {"a=1 b=1", 1.0, 1.0}};

  {
    qsc::TablePrinter table({"task", "paper choice", "weighting",
                             "accuracy"});
    // Max-flow (paper: a=0 b=0), accuracy = relative error, lower better.
    const auto flow = qsc::bench::FlowDatasets()[2];
    const double exact_flow = qsc::MaxFlowPushRelabel(
        flow.instance.graph, flow.instance.source, flow.instance.sink);
    for (const Weighting& w : kWeightings) {
      qsc::FlowApproxOptions options;
      options.rothko.max_colors = 20;
      options.rothko.alpha = w.alpha;
      options.rothko.beta = w.beta;
      const auto approx =
          qsc::ApproximateMaxFlow(flow.instance.graph, flow.instance.source,
                                  flow.instance.sink, options);
      table.AddRow({"max-flow (rel.err)", "a=0 b=0", w.name,
                    qsc::FormatDouble(
                        qsc::RelativeError(exact_flow, approx.upper_bound),
                        3)});
    }

    // LP (paper: a=1 b=0).
    const auto lp = qsc::bench::LpDatasets()[0];
    const qsc::IpmResult exact_lp = qsc::SolveInteriorPoint(lp.lp);
    for (const Weighting& w : kWeightings) {
      qsc::LpReduceOptions options;
      options.max_colors = 40;
      options.alpha = w.alpha;
      options.beta = w.beta;
      const qsc::ReducedLp reduced = qsc::ReduceLp(lp.lp, options);
      const qsc::LpResult red = qsc::SolveSimplex(reduced.lp);
      table.AddRow(
          {"LP (rel.err)", "a=1 b=0", w.name,
           red.status == qsc::LpStatus::kOptimal
               ? qsc::FormatDouble(
                     qsc::RelativeError(exact_lp.objective, red.objective),
                     3)
               : "x"});
    }

    // Centrality (paper: a=1 b=1), accuracy = Spearman, higher better.
    const auto graph_ds = qsc::bench::CentralityDatasets()[0];
    const auto exact_scores = qsc::BetweennessExact(graph_ds.graph);
    for (const Weighting& w : kWeightings) {
      qsc::ColorPivotOptions options;
      options.rothko.max_colors = 50;
      options.rothko.alpha = w.alpha;
      options.rothko.beta = w.beta;
      const auto approx =
          qsc::ApproximateBetweenness(graph_ds.graph, options);
      table.AddRow({"centrality (rho)", "a=1 b=1", w.name,
                    qsc::FormatDouble(qsc::SpearmanCorrelation(
                                          approx.scores, exact_scores),
                                      3)});
    }
    table.Print(stdout);
  }
  return 0;
}
