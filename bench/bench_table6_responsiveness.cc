// Table 6: latency and responsiveness of the anytime Rothko algorithm per
// task family. Time-to-first-result is the latency until the first
// usable coloring (first split) plus the first approximate solve; update
// frequency is the mean time between new colors; time-to-converge is the
// full refinement to the task's color budget.

#include <cstdio>

#include "qsc/centrality/color_pivot.h"
#include "qsc/coloring/rothko.h"
#include "qsc/flow/approx_flow.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/stats.h"
#include "qsc/util/table.h"
#include "qsc/util/timer.h"
#include "workloads.h"

namespace {

struct Responsiveness {
  double time_to_first = 0.0;
  double update_frequency = 0.0;
  double time_to_converge = 0.0;
};

Responsiveness Summarize(const std::vector<qsc::RothkoStep>& history,
                         double first_solve_seconds) {
  Responsiveness r;
  if (history.empty()) return r;
  r.time_to_first = history.front().elapsed_seconds + first_solve_seconds;
  r.time_to_converge = history.back().elapsed_seconds;
  r.update_frequency =
      history.size() > 1
          ? (history.back().elapsed_seconds -
             history.front().elapsed_seconds) /
                static_cast<double>(history.size() - 1)
          : 0.0;
  return r;
}

}  // namespace

int main() {
  std::printf("=== Table 6: Rothko latency / responsiveness per task "
              "===\n\n");
  qsc::TablePrinter table({"task", "time-to-first-result",
                           "update frequency", "time to converge"});

  // Linear optimization: matrix coloring of the qap15 stand-in.
  {
    const auto datasets = qsc::bench::LpDatasets();
    std::vector<double> first, freq, converge;
    for (const auto& ds : datasets) {
      qsc::LpReduceOptions options;
      options.max_colors = 100;
      qsc::WallTimer timer;
      const qsc::ReducedLp reduced = qsc::ReduceLp(ds.lp, options);
      const double color_seconds = reduced.coloring_seconds;
      timer.Reset();
      (void)qsc::SolveSimplex(reduced.lp);
      const double solve_seconds = timer.ElapsedSeconds();
      // First result = first split + one tiny solve; approximate the tiny
      // solve by the final solve time (upper bound).
      first.push_back(color_seconds / 96.0 + solve_seconds);
      freq.push_back(color_seconds / 96.0);
      converge.push_back(color_seconds);
    }
    table.AddRow({"linear opt.", qsc::FormatSeconds(qsc::Mean(first)),
                  qsc::FormatSeconds(qsc::Mean(freq)),
                  qsc::FormatSeconds(qsc::Mean(converge))});
  }

  // Max-flow: refiner history on the flow networks.
  {
    std::vector<double> first, freq, converge;
    for (const auto& ds : qsc::bench::FlowDatasets()) {
      std::vector<int32_t> labels(ds.instance.graph.num_nodes(), 2);
      labels[ds.instance.source] = 0;
      labels[ds.instance.sink] = 1;
      qsc::RothkoOptions options;
      options.max_colors = 35;
      qsc::RothkoRefiner refiner(ds.instance.graph,
                                 qsc::Partition::FromColorIds(labels),
                                 options);
      refiner.Run();
      const auto r = Summarize(refiner.history(), 0.0);
      first.push_back(r.time_to_first);
      freq.push_back(r.update_frequency);
      converge.push_back(r.time_to_converge);
    }
    table.AddRow({"max-flow", qsc::FormatSeconds(qsc::Mean(first)),
                  qsc::FormatSeconds(qsc::Mean(freq)),
                  qsc::FormatSeconds(qsc::Mean(converge))});
  }

  // Centrality: refiner history on the centrality graphs.
  {
    std::vector<double> first, freq, converge;
    for (const auto& ds : qsc::bench::CentralityDatasets()) {
      qsc::RothkoOptions options;
      options.max_colors = 100;
      options.alpha = 1.0;
      options.beta = 1.0;
      qsc::RothkoRefiner refiner(
          ds.graph, qsc::Partition::Trivial(ds.graph.num_nodes()), options);
      refiner.Run();
      const auto r = Summarize(refiner.history(), 0.0);
      first.push_back(r.time_to_first);
      freq.push_back(r.update_frequency);
      converge.push_back(r.time_to_converge);
    }
    table.AddRow({"centrality", qsc::FormatSeconds(qsc::Mean(first)),
                  qsc::FormatSeconds(qsc::Mean(freq)),
                  qsc::FormatSeconds(qsc::Mean(converge))});
  }
  table.Print(stdout);
  std::printf("\npaper shape: sub-second first result, steady per-color "
              "update cadence;\nabsolute numbers scale with the stand-in "
              "sizes.\n");
  return 0;
}
