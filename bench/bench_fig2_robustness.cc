// Figure 2 / Sec 6.3 robustness: a synthetic |V|=1000, |E|=21600 graph
// with a 100-color stable coloring is perturbed with up to 1.5% random
// extra edges. Stable coloring shatters; the q=4 quasi-stable coloring
// keeps compressing.

#include <cstdio>

#include "qsc/coloring/rothko.h"
#include "qsc/coloring/stable.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/perturb.h"
#include "qsc/util/random.h"
#include "qsc/util/table.h"
#include "workloads.h"

int main() {
  std::printf("=== Figure 2: robustness of stable vs q-stable coloring "
              "===\n");
  std::printf("paper: stable coloring degrades to ~75%% of nodes at 1.5%% "
              "perturbation;\n       q=4 coloring keeps a ~6.5x "
              "compression\n\n");
  qsc::Rng rng(777);
  const qsc::Graph base = qsc::BlockBiregularGraph(100, 10, 216, rng);
  std::printf("base graph: %d nodes, %lld edges, stable colors = %d\n\n",
              base.num_nodes(), static_cast<long long>(base.num_edges()),
              qsc::StableColoring(base).num_colors());

  qsc::TablePrinter table({"edges added", "% perturbed", "stable colors",
                           "stable ratio", "q=4 colors", "q=4 ratio"});
  for (int added : {0, 54, 108, 162, 216, 270, 324}) {
    const qsc::Graph noisy =
        added == 0 ? base : qsc::AddRandomEdges(base, added, rng);
    const qsc::ColorId stable = qsc::StableColoring(noisy).num_colors();

    qsc::RothkoOptions options;
    options.max_colors = 1001;
    options.q_tolerance = 4.0;
    const qsc::ColorId quasi =
        qsc::RothkoColoring(noisy, options).num_colors();
    table.AddRow(
        {std::to_string(added),
         qsc::FormatDouble(100.0 * added / base.num_edges(), 2),
         std::to_string(stable),
         qsc::FormatRatio(1000.0 / stable), std::to_string(quasi),
         qsc::FormatRatio(1000.0 / quasi)});
  }
  table.Print(stdout);
  return 0;
}
