// Table 4: runtime and compression of quasi-stable coloring vs stable
// coloring on the general datasets. For each dataset: the stable coloring
// (q = 0) and Rothko runs targeting max q in {64, 32, 16, 8}; reports the
// measured max q, mean q, color count, compression ratio and runtime.
//
// Shape targets: stable coloring compresses ~1.3-1.4:1; q = 8..64 buys one
// to four orders of magnitude better ratios; mean q is far below max q.

#include <cstdio>

#include "qsc/coloring/q_error.h"
#include "qsc/coloring/rothko.h"
#include "qsc/coloring/stable.h"
#include "qsc/util/table.h"
#include "qsc/util/timer.h"
#include "workloads.h"

int main() {
  std::printf("=== Table 4: compression, quasi-stable vs stable coloring "
              "===\n\n");
  qsc::TablePrinter table({"dataset", "target", "max q", "mean q", "colors",
                           "compression", "time"});
  for (const auto& dataset : qsc::bench::GeneralDatasets()) {
    if (dataset.name == "karate") continue;  // covered by Figure 1
    const qsc::Graph& g = dataset.graph;

    qsc::WallTimer timer;
    const qsc::Partition stable = qsc::StableColoring(g);
    const double stable_seconds = timer.ElapsedSeconds();
    table.AddRow({dataset.name, "stable (q=0)", "0", "0",
                  qsc::FormatCount(stable.num_colors()),
                  qsc::FormatRatio(stable.CompressionRatio()),
                  qsc::FormatSeconds(stable_seconds)});

    for (double q : {64.0, 32.0, 16.0, 8.0}) {
      qsc::RothkoOptions options;
      options.max_colors = g.num_nodes();
      options.q_tolerance = q;
      options.split_mean = qsc::RothkoOptions::SplitMean::kGeometric;
      timer.Reset();
      const qsc::Partition p = qsc::RothkoColoring(g, options);
      const double seconds = timer.ElapsedSeconds();
      const qsc::QErrorStats stats = qsc::ComputeQError(g, p);
      char target[16];
      std::snprintf(target, sizeof(target), "q = %.0f", q);
      table.AddRow({dataset.name, target,
                    qsc::FormatDouble(stats.max_q, 2),
                    qsc::FormatDouble(stats.mean_q, 2),
                    qsc::FormatCount(p.num_colors()),
                    qsc::FormatRatio(p.CompressionRatio()),
                    qsc::FormatSeconds(seconds)});
    }
  }
  table.Print(stdout);
  std::printf("\npaper shape: stable coloring yields ~1.3:1; q-stable "
              "colorings reach\n10x-10000x with mean q << max q.\n");
  return 0;
}
