// Shared frontend helper for the three Figure-7 binaries. Since the
// qsc/bench harness landed, the sweep logic lives in the scenario registry
// (pipelines/fig7-*); the binaries print a banner, run the scenario
// single-shot, and render its table plus one summary counter.

#ifndef QSC_BENCH_FIG7_COMMON_H_
#define QSC_BENCH_FIG7_COMMON_H_

#include <cmath>
#include <cstdio>
#include <string>

#include "qsc/bench/scenario.h"
#include "qsc/util/table.h"

namespace qsc {
namespace bench {

// Runs `scenario_name` and prints its detail table. Returns the value of
// `summary_counter` through *summary (NaN when absent); exit code 0/1.
inline int RunFig7Frontend(const char* scenario_name,
                           const char* summary_counter, double* summary) {
  RegisterBuiltinScenarios();
  const Scenario* scenario =
      ScenarioRegistry::Global().Find(scenario_name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "missing scenario '%s'\n", scenario_name);
    return 1;
  }
  const ScenarioResult result = scenario->Run(BenchContext());
  TablePrinter table(result.table_header);
  for (const auto& row : result.table_rows) table.AddRow(row);
  table.Print(stdout);
  *summary = std::nan("");
  bool found = false;
  for (const auto& [name, value] : result.counters) {
    if (name == summary_counter) {
      *summary = value;
      found = true;
    }
  }
  if (!found) {
    // A renamed counter must fail loudly, not print "nan" and exit 0.
    std::fprintf(stderr, "scenario '%s' has no counter '%s'\n",
                 scenario_name, summary_counter);
    return 1;
  }
  return 0;
}

}  // namespace bench
}  // namespace qsc

#endif  // QSC_BENCH_FIG7_COMMON_H_
