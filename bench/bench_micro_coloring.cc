// Micro-benchmarks (google-benchmark) for the hot kernels: Rothko splits,
// stable coloring rounds, q-error computation, reduced-graph construction,
// and the substrate solvers they feed.

#include <benchmark/benchmark.h>

#include "qsc/centrality/brandes.h"
#include "qsc/coloring/q_error.h"
#include "qsc/coloring/reduced_graph.h"
#include "qsc/coloring/rothko.h"
#include "qsc/coloring/stable.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/graph/generators.h"
#include "qsc/lp/generators.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

Graph MakeBenchGraph(int64_t nodes) {
  Rng rng(4242);
  return BarabasiAlbert(static_cast<NodeId>(nodes), 3, rng);
}

void BM_RothkoColoring(benchmark::State& state) {
  const Graph g = MakeBenchGraph(state.range(0));
  RothkoOptions options;
  options.max_colors = static_cast<ColorId>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RothkoColoring(g, options));
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_RothkoColoring)
    ->Args({1000, 32})
    ->Args({10000, 32})
    ->Args({10000, 128})
    ->Args({50000, 64});

void BM_StableColoring(benchmark::State& state) {
  const Graph g = MakeBenchGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(StableColoring(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_StableColoring)->Arg(1000)->Arg(5000)->Arg(20000);

void BM_ComputeQError(benchmark::State& state) {
  const Graph g = MakeBenchGraph(state.range(0));
  RothkoOptions options;
  options.max_colors = 64;
  const Partition p = RothkoColoring(g, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeQError(g, p));
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_ComputeQError)->Arg(10000)->Arg(50000);

void BM_BuildReducedGraph(benchmark::State& state) {
  const Graph g = MakeBenchGraph(state.range(0));
  RothkoOptions options;
  options.max_colors = 64;
  const Partition p = RothkoColoring(g, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildReducedGraph(g, p, ReducedWeight::kSum));
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_BuildReducedGraph)->Arg(10000)->Arg(50000);

void BM_PushRelabelGrid(benchmark::State& state) {
  Rng rng(7);
  const FlowInstance inst = GridFlowNetwork(
      static_cast<int32_t>(state.range(0)),
      static_cast<int32_t>(state.range(0)) / 2, 10, 40, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxFlowPushRelabel(
        inst.graph, inst.source, inst.sink));
  }
  state.SetItemsProcessed(state.iterations() * inst.graph.num_arcs());
}
BENCHMARK(BM_PushRelabelGrid)->Arg(40)->Arg(100);

void BM_BrandesPass(benchmark::State& state) {
  const Graph g = MakeBenchGraph(state.range(0));
  BrandesWorkspace workspace(g);
  std::vector<double> scores(g.num_nodes(), 0.0);
  NodeId s = 0;
  for (auto _ : state) {
    workspace.AccumulateDependencies(s, 1.0, scores);
    s = (s + 1) % g.num_nodes();
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_BrandesPass)->Arg(10000)->Arg(50000);

void BM_SimplexBlockLp(benchmark::State& state) {
  BlockLpSpec spec;
  spec.num_row_groups = static_cast<int32_t>(state.range(0));
  spec.num_col_groups = static_cast<int32_t>(state.range(0));
  spec.rows_per_group = 8;
  spec.cols_per_group = 8;
  spec.seed = 5;
  const LpProblem lp = MakeBlockLp(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveSimplex(lp));
  }
}
BENCHMARK(BM_SimplexBlockLp)->Arg(4)->Arg(8);

}  // namespace
}  // namespace qsc
