// Micro-benchmarks for the hot kernels: Rothko splits, stable coloring
// rounds, q-error computation, reduced-graph construction, and the
// substrate solvers they feed. Since the qsc/bench harness landed this is
// a thin frontend over the shared scenario registry (the same scenarios
// qsc_bench runs), so timings printed here and CI baselines come from one
// measurement protocol. No google-benchmark dependency.
//
//   bench_micro_coloring [--repeats=N] [--warmup=N] [--seed=N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "qsc/bench/scenario.h"
#include "qsc/util/table.h"

namespace {

// The micro set: every coloring-group scenario that is not a full-suite
// large instance, plus the solver kernels.
constexpr const char* kMicroScenarios[] = {
    "coloring/rothko-ba-10k-c64",
    "coloring/rothko-er-10k-c64",
    "coloring/rothko-grid-10k-c64",
    "coloring/stable-ba-20k",
    "coloring/qerror-ba-50k",
    "coloring/reduced-ba-50k",
    "pipelines/solver-pushrelabel-grid100",
    "pipelines/solver-brandes-ba50k",
    "pipelines/solver-simplex-block8",
};

// Strict parse of --name=N; exits on malformed digits rather than running
// with a silently-misparsed value (same contract as qsc_bench).
bool ParseUintFlag(const char* arg, const char* name, uint64_t* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  const char* value = arg + len + 1;
  char* end = nullptr;
  *out = std::strtoull(value, &end, 10);
  if (*value == '\0' || *value == '-' || *end != '\0') {
    std::fprintf(stderr, "bench_micro_coloring: bad %s value '%s'\n", name,
                 value);
    std::exit(2);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  qsc::bench::RegisterBuiltinScenarios();

  qsc::bench::BenchContext context;
  for (int i = 1; i < argc; ++i) {
    uint64_t value = 0;
    if (ParseUintFlag(argv[i], "--repeats", &value) && value >= 1 &&
        value <= 1000) {
      context.measure.repeats = static_cast<int>(value);
    } else if (ParseUintFlag(argv[i], "--warmup", &value) && value <= 1000) {
      context.measure.warmup = static_cast<int>(value);
    } else if (ParseUintFlag(argv[i], "--seed", &value)) {
      context.seed = value;
    } else {
      std::fprintf(stderr, "usage: bench_micro_coloring [--repeats=N] "
                           "[--warmup=N] [--seed=N]\n");
      return 2;
    }
  }

  std::printf("=== micro-benchmarks (qsc/bench harness; %d warmup, "
              "%d repeats) ===\n\n",
              context.measure.warmup, context.measure.repeats);
  qsc::TablePrinter table(
      {"scenario", "median", "mad", "min", "max", "peak rss"});
  for (const char* name : kMicroScenarios) {
    const qsc::bench::Scenario* scenario =
        qsc::bench::ScenarioRegistry::Global().Find(name);
    if (scenario == nullptr) {
      std::fprintf(stderr, "missing scenario '%s'\n", name);
      return 1;
    }
    std::fprintf(stderr, "running %s...\n", name);
    const qsc::bench::ScenarioResult r = scenario->Run(context);
    table.AddRow({r.name, qsc::FormatSeconds(r.timing.seconds.median),
                  qsc::FormatSeconds(r.timing.seconds.mad),
                  qsc::FormatSeconds(r.timing.seconds.min),
                  qsc::FormatSeconds(r.timing.seconds.max),
                  qsc::FormatDouble(r.timing.peak_rss_mib, 1) + " MiB"});
  }
  table.Print(stdout);
  return 0;
}
