// Figure 1: coloring Zachary's karate club. The stable coloring needs 27
// colors; a quasi-stable coloring with q = 3 gets by with ~6, isolating
// the club leaders {1, 34} in a small color.

#include <cstdio>

#include "qsc/coloring/q_error.h"
#include "qsc/coloring/rothko.h"
#include "qsc/coloring/stable.h"
#include "qsc/graph/datasets.h"
#include "qsc/util/table.h"
#include "workloads.h"

int main() {
  std::printf("=== Figure 1: stable vs quasi-stable coloring of the "
              "karate club ===\n");
  std::printf("paper: stable needs 27 colors; q=3 quasi-stable needs 6\n\n");
  const qsc::Graph g = qsc::KarateClub();

  const qsc::Partition stable = qsc::StableColoring(g);
  std::printf("(a) stable coloring: %d colors on %d nodes (%.0f%%)\n",
              stable.num_colors(), g.num_nodes(),
              100.0 * stable.num_colors() / g.num_nodes());

  qsc::TablePrinter table({"max colors", "measured q", "mean q",
                           "leader color size"});
  for (qsc::ColorId k : {4, 5, 6, 7, 8}) {
    qsc::RothkoOptions options;
    options.max_colors = k;
    const qsc::Partition p = qsc::RothkoColoring(g, options);
    const qsc::QErrorStats stats = qsc::ComputeQError(g, p);
    const int64_t leader_color =
        p.ColorSize(p.ColorOf(33));  // node "34", the strongest leader
    table.AddRow({std::to_string(k), qsc::FormatDouble(stats.max_q, 1),
                  qsc::FormatDouble(stats.mean_q, 2),
                  std::to_string(leader_color)});
  }
  std::printf("\n(b) quasi-stable colorings:\n");
  table.Print(stdout);

  qsc::RothkoOptions q3;
  q3.max_colors = 64;
  q3.q_tolerance = 3.0;
  const qsc::Partition p3 = qsc::RothkoColoring(g, q3);
  std::printf("\nsmallest coloring with q <= 3 found by Rothko: %d colors "
              "(paper: 6)\n",
              p3.num_colors());
  return 0;
}
