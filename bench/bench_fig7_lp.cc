// Figure 7(b): speed-accuracy trade-off for linear optimization. The
// sweep is the pipelines/fig7-lp scenario of the qsc/bench harness (exact
// baseline is the interior-point solver, the paper's Tulip; the
// approximation reduces the LP via q-stable coloring and solves the small
// LP with simplex); this binary is its human-readable frontend.
//
// Shape targets: rel.err ~1.1-1.5 within a small fraction of the exact
// runtime; error need not be monotone in the number of colors.

#include <cstdio>

#include "fig7_common.h"

int main() {
  std::printf("=== Figure 7(b): LP speed-accuracy trade-off ===\n");
  std::printf("paper: geometric-mean rel.err 1.13 within 0.5%% of the "
              "exact runtime\n\n");
  double geomean = 0.0;
  const int exit_code = qsc::bench::RunFig7Frontend(
      "pipelines/fig7-lp", "geomean_rel_err_b100", &geomean);
  if (exit_code != 0) return exit_code;
  std::printf("\ngeometric-mean rel.err at 100 colors: %.3f (paper: 1.13)\n",
              geomean);
  return 0;
}
