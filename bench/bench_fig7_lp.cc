// Figure 7(b): speed-accuracy trade-off for linear optimization, driven by
// the qsc/eval pipeline. Exact baseline is the interior-point solver (the
// paper's Tulip); the approximation reduces the LP via q-stable coloring
// (anytime across the budget sweep) and solves the small LP with simplex.
//
// Shape targets: rel.err ~1.1-1.5 within a small fraction of the exact
// runtime; error need not be monotone in the number of colors.

#include <cstdio>

#include "qsc/eval/pipelines.h"
#include "qsc/util/stats.h"
#include "qsc/util/table.h"
#include "workloads.h"

int main() {
  std::printf("=== Figure 7(b): LP speed-accuracy trade-off ===\n");
  std::printf("paper: geometric-mean rel.err 1.13 within 0.5%% of the "
              "exact runtime\n\n");
  qsc::TablePrinter table({"dataset", "exact obj", "exact time", "colors",
                           "approx obj", "rel.err", "time", "% of exact"});
  const qsc::eval::EvalOptions options;  // interior-point oracle
  const std::vector<qsc::ColorId> budgets{10, 25, 50, 100};
  std::vector<double> errors_at_100;
  for (const auto& dataset : qsc::bench::LpDatasets()) {
    const auto runs = qsc::eval::RunLpPipeline(dataset.lp, options, budgets);
    for (const qsc::eval::RunMetrics& m : runs) {
      if (m.color_budget == 100) errors_at_100.push_back(m.relative_error);
      table.AddRow({dataset.name, qsc::FormatDouble(m.exact_value, 1),
                    qsc::FormatSeconds(m.exact_seconds),
                    std::to_string(m.color_budget),
                    qsc::FormatDouble(m.approx_value, 1),
                    qsc::FormatDouble(m.relative_error, 3),
                    qsc::FormatSeconds(m.approx_seconds),
                    qsc::FormatDouble(
                        100.0 * m.approx_seconds / m.exact_seconds, 2)});
    }
  }
  table.Print(stdout);
  std::printf("\ngeometric-mean rel.err at 100 colors: %.3f (paper: 1.13)\n",
              qsc::GeometricMean(errors_at_100));
  return 0;
}
