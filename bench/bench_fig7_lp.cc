// Figure 7(b): speed-accuracy trade-off for linear optimization. Exact
// baseline is the interior-point solver (the paper's Tulip); the
// approximation reduces the LP via q-stable coloring and solves the small
// LP with simplex. End-to-end time includes coloring + reduction + solve.
//
// Shape targets: rel.err ~1.1-1.5 within a small fraction of the exact
// runtime; error need not be monotone in the number of colors.

#include <cstdio>

#include "qsc/lp/interior_point.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/stats.h"
#include "qsc/util/table.h"
#include "qsc/util/timer.h"
#include "workloads.h"

int main() {
  std::printf("=== Figure 7(b): LP speed-accuracy trade-off ===\n");
  std::printf("paper: geometric-mean rel.err 1.13 within 0.5%% of the "
              "exact runtime\n\n");
  qsc::TablePrinter table({"dataset", "exact obj", "exact time", "colors",
                           "approx obj", "rel.err", "time", "% of exact"});
  std::vector<double> errors_at_100;
  for (const auto& dataset : qsc::bench::LpDatasets()) {
    qsc::WallTimer timer;
    const qsc::IpmResult exact = qsc::SolveInteriorPoint(dataset.lp);
    const double exact_seconds = timer.ElapsedSeconds();

    for (qsc::ColorId colors : {10, 25, 50, 100}) {
      qsc::LpReduceOptions options;
      options.max_colors = colors;
      timer.Reset();
      const qsc::ReducedLp reduced = qsc::ReduceLp(dataset.lp, options);
      const qsc::LpResult red = qsc::SolveSimplex(reduced.lp);
      const double seconds = timer.ElapsedSeconds();
      const double rel = qsc::RelativeError(exact.objective, red.objective);
      if (colors == 100) errors_at_100.push_back(rel);
      table.AddRow({dataset.name, qsc::FormatDouble(exact.objective, 1),
                    qsc::FormatSeconds(exact_seconds),
                    std::to_string(colors),
                    qsc::FormatDouble(red.objective, 1),
                    qsc::FormatDouble(rel, 3), qsc::FormatSeconds(seconds),
                    qsc::FormatDouble(100.0 * seconds / exact_seconds, 2)});
    }
  }
  table.Print(stdout);
  std::printf("\ngeometric-mean rel.err at 100 colors: %.3f (paper: 1.13)\n",
              qsc::GeometricMean(errors_at_100));
  return 0;
}
