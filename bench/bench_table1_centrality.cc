// Table 1 (top): runtime to reach a target rank correlation for
// betweenness centrality — ours (anytime color-pivot refinement) vs the
// Riondato-Kornaropoulos sampling baseline vs exact Brandes.
//
// Ours runs the Rothko refiner as a co-routine: every few extra colors it
// re-estimates the centralities and checks the correlation; the reported
// time is the cumulative anytime cost. The RK baseline tightens epsilon
// until the target correlation is met. Shape target: ours reaches each
// target faster than RK; both are far below the exact baseline.

#include <cstdio>

#include "qsc/centrality/brandes.h"
#include "qsc/centrality/color_pivot.h"
#include "qsc/centrality/path_sampling.h"
#include "qsc/util/stats.h"
#include "qsc/util/table.h"
#include "qsc/util/timer.h"
#include "workloads.h"

namespace {

constexpr double kTargets[] = {0.90, 0.95, 0.97};
constexpr double kTimeout = 120.0;  // seconds; "x" in the table

// Smallest cumulative time at which the anytime color-pivot estimator
// reaches each target rho. The budget ladder first grows the coloring,
// then the number of pivots per color (variance decays with the total
// number of dependency passes).
std::vector<double> OursTimes(const qsc::Graph& g,
                              const std::vector<double>& exact) {
  struct Checkpoint {
    qsc::ColorId colors;
    int32_t pivots;
  };
  static constexpr Checkpoint kLadder[] = {
      {10, 1}, {20, 1}, {35, 1},  {50, 1},  {100, 1},
      {200, 1}, {200, 2}, {200, 4}, {200, 8}, {200, 16},
  };
  std::vector<double> times(std::size(kTargets), -1.0);
  qsc::WallTimer timer;
  qsc::RothkoOptions rothko;
  rothko.alpha = 1.0;
  rothko.beta = 1.0;
  rothko.split_mean = qsc::RothkoOptions::SplitMean::kGeometric;
  rothko.max_colors = 400;
  qsc::RothkoRefiner refiner(g, qsc::Partition::Trivial(g.num_nodes()),
                             rothko);
  double coloring_seconds = 0.0;
  for (const Checkpoint& checkpoint : kLadder) {
    qsc::WallTimer step_timer;
    while (refiner.partition().num_colors() < checkpoint.colors) {
      if (!refiner.Step(checkpoint.colors)) break;
    }
    coloring_seconds += step_timer.ElapsedSeconds();

    qsc::ColorPivotOptions options;
    options.pivots_per_color = checkpoint.pivots;
    step_timer.Reset();
    const auto approx = qsc::ApproximateBetweennessWithColoring(
        g, refiner.partition(), options);
    const double solve_seconds = step_timer.ElapsedSeconds();
    const double rho = qsc::SpearmanCorrelation(approx.scores, exact);
    // Anytime cost: all coloring so far plus this checkpoint's solve.
    const double cumulative = coloring_seconds + solve_seconds;
    for (size_t t = 0; t < std::size(kTargets); ++t) {
      if (times[t] < 0 && rho >= kTargets[t]) times[t] = cumulative;
    }
    if (times.back() >= 0) break;
    if (timer.ElapsedSeconds() > kTimeout) break;
  }
  return times;
}

// RK baseline: tighten epsilon until each target rho is met; report the
// runtime of the first configuration that meets it (the practitioner's
// retry loop, charged only for the successful run, which favors RK).
std::vector<double> RkTimes(const qsc::Graph& g,
                            const std::vector<double>& exact) {
  std::vector<double> times(std::size(kTargets), -1.0);
  for (double eps : {0.1, 0.05, 0.02, 0.01}) {
    qsc::RkOptions options;
    options.epsilon = eps;
    qsc::WallTimer timer;
    const auto result = qsc::BetweennessRk(g, options);
    const double seconds = timer.ElapsedSeconds();
    const double rho = qsc::SpearmanCorrelation(result.scores, exact);
    for (size_t t = 0; t < std::size(kTargets); ++t) {
      if (times[t] < 0 && rho >= kTargets[t]) times[t] = seconds;
    }
    if (times.back() >= 0) break;
    if (seconds > kTimeout) break;
  }
  return times;
}

std::string FormatOrTimeout(double seconds) {
  return seconds < 0 ? "x" : qsc::FormatSeconds(seconds);
}

}  // namespace

int main() {
  std::printf("=== Table 1 (top): betweenness centrality — ours vs "
              "Riondato-Kornaropoulos vs Brandes ===\n");
  std::printf("units: runtime to reach the target rho; 'x' = not reached "
              "within budget\n\n");
  qsc::TablePrinter table({"dataset", "ours 0.90", "prior 0.90",
                           "ours 0.95", "prior 0.95", "ours 0.97",
                           "prior 0.97", "exact"});
  for (const auto& dataset : qsc::bench::CentralityDatasets()) {
    qsc::WallTimer timer;
    const std::vector<double> exact = qsc::BetweennessExact(dataset.graph);
    const double exact_seconds = timer.ElapsedSeconds();
    const auto ours = OursTimes(dataset.graph, exact);
    const auto prior = RkTimes(dataset.graph, exact);
    table.AddRow({dataset.name, FormatOrTimeout(ours[0]),
                  FormatOrTimeout(prior[0]), FormatOrTimeout(ours[1]),
                  FormatOrTimeout(prior[1]), FormatOrTimeout(ours[2]),
                  FormatOrTimeout(prior[2]),
                  qsc::FormatSeconds(exact_seconds)});
  }
  table.Print(stdout);
  std::printf("\npaper shape: ours is ~30x faster than the sampling "
              "baseline on average;\nboth are well below the exact "
              "runtime.\n");
  return 0;
}
