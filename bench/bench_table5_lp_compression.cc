// Table 5: characteristics of the compressed constraint matrices. For
// each LP stand-in and color budget {5-ish, 50, 100}: reduced rows/cols/
// nonzeros, compression ratio (original nnz / reduced nnz) and the
// relative error of the reduced optimum.
//
// Shape targets: compression 10^2-10^6; large error at ~5 colors shrinking
// to ~1.0-1.5 by 50-100 colors (supportcase10's tiny-budget blowup is
// expected).

#include <cmath>
#include <cstdio>

#include "qsc/lp/interior_point.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/stats.h"
#include "qsc/util/table.h"
#include "workloads.h"

int main() {
  std::printf("=== Table 5: compressed linear program characteristics "
              "===\n\n");
  qsc::TablePrinter table({"dataset", "colors", "rows", "cols", "nonzeros",
                           "compression", "rel.error"});
  for (const auto& dataset : qsc::bench::LpDatasets()) {
    const qsc::IpmResult exact = qsc::SolveInteriorPoint(dataset.lp);
    for (qsc::ColorId colors : {6, 50, 100}) {
      qsc::LpReduceOptions options;
      options.max_colors = colors;
      const qsc::ReducedLp reduced = qsc::ReduceLp(dataset.lp, options);
      const qsc::LpResult red = qsc::SolveSimplex(reduced.lp);
      const double rel =
          red.status == qsc::LpStatus::kOptimal
              ? qsc::RelativeError(exact.objective, red.objective)
              : std::numeric_limits<double>::infinity();
      const double compression =
          static_cast<double>(dataset.lp.NumNonzeros()) /
          std::max<int64_t>(1, reduced.lp.NumNonzeros());
      table.AddRow({dataset.name, std::to_string(colors),
                    qsc::FormatCount(reduced.lp.num_rows),
                    qsc::FormatCount(reduced.lp.num_cols),
                    qsc::FormatCount(reduced.lp.NumNonzeros()),
                    qsc::FormatRatio(compression),
                    std::isinf(rel) ? "inf" : qsc::FormatDouble(rel, 2)});
    }
  }
  table.Print(stdout);
  return 0;
}
