// Table 1 (bottom): runtime to reach a target relative error for linear
// optimization — ours (anytime coloring + reduced simplex) vs the
// early-stopped interior-point baseline vs the exact interior-point solve.
//
// The early-stopping baseline runs the IPM until its certified relative
// duality gap reaches the target (the recommended practice [33]); ours
// refines the matrix coloring in checkpoints, solving the growing reduced
// LP until the achieved error (vs the exact optimum) meets the target.

#include <cstdio>

#include "qsc/lp/interior_point.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/stats.h"
#include "qsc/util/table.h"
#include "qsc/util/timer.h"
#include "workloads.h"

namespace {

constexpr double kTargets[] = {3.0, 2.0, 1.5};

std::vector<double> OursTimes(const qsc::LpProblem& lp, double exact_obj) {
  std::vector<double> times(std::size(kTargets), -1.0);
  double cumulative = 0.0;
  // Anytime co-routine: the refiner keeps its coloring between budgets.
  qsc::LpReduceOptions options;
  qsc::LpColoringRefiner refiner(lp, options);
  for (qsc::ColorId colors : {8, 15, 25, 40, 60, 100, 150}) {
    qsc::WallTimer timer;
    const qsc::ReducedLp reduced = refiner.ReduceTo(colors);
    const qsc::LpResult red = qsc::SolveSimplex(reduced.lp);
    cumulative += timer.ElapsedSeconds();
    if (red.status != qsc::LpStatus::kOptimal) continue;
    const double rel = qsc::RelativeError(exact_obj, red.objective);
    for (size_t t = 0; t < std::size(kTargets); ++t) {
      if (times[t] < 0 && rel <= kTargets[t]) times[t] = cumulative;
    }
    if (times.back() >= 0) break;
  }
  return times;
}

std::vector<double> EarlyStopTimes(const qsc::LpProblem& lp) {
  std::vector<double> times(std::size(kTargets), -1.0);
  for (size_t t = 0; t < std::size(kTargets); ++t) {
    qsc::IpmOptions options;
    options.early_stop_rel_gap = kTargets[t];
    qsc::WallTimer timer;
    const qsc::IpmResult result = qsc::SolveInteriorPoint(lp, options);
    if (result.status == qsc::LpStatus::kOptimal) {
      times[t] = timer.ElapsedSeconds();
    }
  }
  return times;
}

std::string FormatOrTimeout(double seconds) {
  return seconds < 0 ? "x" : qsc::FormatSeconds(seconds);
}

}  // namespace

int main() {
  std::printf("=== Table 1 (bottom): linear optimization — ours vs "
              "early-stopping IPM vs exact ===\n");
  std::printf("units: runtime to certify the target relative error; 'x' = "
              "not reached\n\n");
  qsc::TablePrinter table({"dataset", "ours 3.0", "prior 3.0", "ours 2.0",
                           "prior 2.0", "ours 1.5", "prior 1.5", "exact"});
  for (const auto& dataset : qsc::bench::LpDatasets()) {
    qsc::WallTimer timer;
    const qsc::IpmResult exact = qsc::SolveInteriorPoint(dataset.lp);
    const double exact_seconds = timer.ElapsedSeconds();
    const auto ours = OursTimes(dataset.lp, exact.objective);
    const auto prior = EarlyStopTimes(dataset.lp);
    table.AddRow({dataset.name, FormatOrTimeout(ours[0]),
                  FormatOrTimeout(prior[0]), FormatOrTimeout(ours[1]),
                  FormatOrTimeout(prior[1]), FormatOrTimeout(ours[2]),
                  FormatOrTimeout(prior[2]),
                  qsc::FormatSeconds(exact_seconds)});
  }
  table.Print(stdout);
  std::printf("\npaper shape: q-stable coloring beats the early-stopping "
              "baseline by ~100x\non average (the IPM must run most of its "
              "iterations before its gap\ncertificate reaches loose "
              "targets).\n");
  return 0;
}
