#include "workloads.h"

#include "qsc/graph/datasets.h"
#include "qsc/lp/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace bench {

std::vector<GraphDataset> GeneralDatasets() {
  std::vector<GraphDataset> out;
  out.push_back({"karate", "Karate", KarateClub(), /*real=*/true});
  {
    Rng rng(101);
    // Route multiplicities are small integers; large weight noise would
    // drown the degree structure the coloring exploits.
    out.push_back({"openflights-sim", "OpenFlights",
                   WeightedHubGraph(3400, 6, 3, rng), false});
  }
  {
    Rng rng(102);
    out.push_back(
        {"dblp-sim", "Dblp", BarabasiAlbert(30000, 3, rng), false});
  }
  return out;
}

std::vector<GraphDataset> CentralityDatasets() {
  struct Spec {
    const char* name;
    const char* paper;
    NodeId nodes;
    int64_t edges;
    double gamma;
    uint64_t seed;
  };
  // Paper sizes (scaled ~1/4 for the single-core exact baselines):
  // Astrophysics 18.7k/198k, Facebook 22.5k/171k, Deezer 28k/93k,
  // Enron 37k/184k, Epinions 76k/509k.
  static constexpr Spec kSpecs[] = {
      {"astroph-sim", "Astrophysics", 4500, 48000, 2.8, 201},
      {"facebook-sim", "Facebook", 5500, 42000, 2.7, 202},
      {"deezer-sim", "Deezer", 7000, 23000, 2.9, 203},
      {"enron-sim", "Enron", 9000, 45000, 2.5, 204},
      {"epinions-sim", "Epinions", 12000, 80000, 2.3, 205},
  };
  std::vector<GraphDataset> out;
  for (const Spec& s : kSpecs) {
    Rng rng(s.seed);
    out.push_back(
        {s.name, s.paper, PowerLawGraph(s.nodes, s.edges, s.gamma, rng),
         false});
  }
  return out;
}

std::vector<FlowDataset> FlowDatasets() {
  struct Spec {
    const char* name;
    const char* paper;
    int32_t width;
    int32_t height;
    int32_t objects;
    uint64_t seed;
  };
  // Paper instances are 110k-3.5M node vision grids (stereo and cell
  // segmentation); the stand-ins keep the per-pixel terminal + smoothness
  // structure at 10k-70k pixels.
  static constexpr Spec kSpecs[] = {
      {"tsukuba0-sim", "Tsukuba0", 150, 75, 3, 301},
      {"tsukuba2-sim", "Tsukuba2", 150, 75, 3, 302},
      {"venus0-sim", "Venus0", 200, 95, 4, 303},
      {"venus1-sim", "Venus1", 200, 95, 4, 304},
      {"sawtooth0-sim", "Sawtooth0", 200, 90, 3, 305},
      {"sawtooth1-sim", "Sawtooth1", 200, 90, 3, 306},
      {"simcells-sim", "SimCells", 300, 130, 8, 307},
      {"cells-sim", "Cells", 400, 170, 12, 308},
  };
  std::vector<FlowDataset> out;
  for (const Spec& s : kSpecs) {
    Rng rng(s.seed);
    out.push_back({s.name, s.paper,
                   SegmentationGridNetwork(s.width, s.height, s.objects,
                                           rng)});
  }
  return out;
}

std::vector<LpDataset> LpDatasets() {
  std::vector<LpDataset> out;
  out.push_back({"qap15-sim", "qap15", MakeQapLikeLp(14, 401)});
  out.push_back({"nug08-sim", "nug08-3rd", MakeNugentLikeLp(13, 402)});
  out.push_back(
      {"support-sim", "supportcase10", MakeWideSupportLp(12, 403)});
  out.push_back({"ex10-sim", "ex10", MakeTallLp(9, 404)});
  return out;
}

}  // namespace bench
}  // namespace qsc
