#include "workloads.h"

namespace qsc {
namespace bench {

std::vector<GraphDataset> GeneralDatasets() {
  return ::qsc::eval::GeneralGraphSuite();
}

std::vector<GraphDataset> CentralityDatasets() {
  return ::qsc::eval::CentralityGraphSuite();
}

std::vector<FlowDataset> FlowDatasets() { return ::qsc::eval::FlowSuite(); }

std::vector<LpDataset> LpDatasets() { return ::qsc::eval::LpSuite(); }

}  // namespace bench
}  // namespace qsc
