// Table 2: summary of the graphs used in the evaluation — here, the
// synthetic stand-ins (plus the embedded real karate club). The paper's
// original sizes are listed next to each stand-in (see DESIGN.md §3 for
// the substitution rationale).

#include <cstdio>

#include "qsc/util/table.h"
#include "workloads.h"

namespace {

void AddRows(qsc::TablePrinter& table,
             const std::vector<qsc::bench::GraphDataset>& datasets,
             const char* block) {
  for (const auto& d : datasets) {
    table.AddRow({block, d.name, d.paper_name,
                  qsc::FormatCount(d.graph.num_nodes()),
                  qsc::FormatCount(d.graph.num_edges()),
                  d.real ? "R" : "S",
                  d.graph.undirected() ? "undirected" : "directed"});
  }
}

}  // namespace

int main() {
  std::printf("=== Table 2: graphs used for evaluation (stand-ins) ===\n\n");
  qsc::TablePrinter table({"block", "name", "paper dataset", "vertices",
                           "edges", "real/sim", "kind"});
  AddRows(table, qsc::bench::GeneralDatasets(), "general");
  AddRows(table, qsc::bench::CentralityDatasets(), "centrality");
  for (const auto& d : qsc::bench::FlowDatasets()) {
    table.AddRow({"max-flow", d.name, d.paper_name,
                  qsc::FormatCount(d.instance.graph.num_nodes()),
                  qsc::FormatCount(d.instance.graph.num_arcs()), "S",
                  "flow network"});
  }
  table.Print(stdout);
  std::printf("\nall stand-ins are synthetic (S) except the embedded "
              "karate club (R);\nsizes are scaled to single-core exact "
              "baselines (paper originals in DESIGN.md).\n");
  return 0;
}
