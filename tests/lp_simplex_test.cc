#include "qsc/lp/simplex.h"

#include <gtest/gtest.h>

#include "qsc/lp/generators.h"

namespace qsc {
namespace {

LpProblem SmallLp(int32_t rows, int32_t cols,
                  const std::vector<std::vector<double>>& a,
                  std::vector<double> b, std::vector<double> c) {
  LpProblem lp;
  lp.num_rows = rows;
  lp.num_cols = cols;
  for (int32_t i = 0; i < rows; ++i) {
    for (int32_t j = 0; j < cols; ++j) {
      if (a[i][j] != 0.0) lp.entries.push_back({i, j, a[i][j]});
    }
  }
  lp.b = std::move(b);
  lp.c = std::move(c);
  return lp;
}

TEST(SimplexTest, TextbookTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> 36 at (2,6).
  const LpProblem lp = SmallLp(3, 2, {{1, 0}, {0, 2}, {3, 2}}, {4, 12, 18},
                               {3, 5});
  const LpResult r = SolveSimplex(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 6.0, 1e-9);
}

TEST(SimplexTest, Figure3MatchesPaper) {
  const LpResult r = SolveSimplex(Figure3Lp());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 128.157, 1e-3);  // paper: 128.157
}

TEST(SimplexTest, UnboundedDetected) {
  // max x with no binding constraint on x (only -x <= 1).
  const LpProblem lp = SmallLp(1, 1, {{-1}}, {1}, {1});
  EXPECT_EQ(SolveSimplex(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= -1 with x >= 0 is infeasible.
  const LpProblem lp = SmallLp(1, 1, {{1}}, {-1}, {1});
  EXPECT_EQ(SolveSimplex(lp).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, NegativeBFeasibleViaPhase1) {
  // -x <= -2 (x >= 2), x <= 5, max -x -> optimum -2 at x = 2.
  const LpProblem lp = SmallLp(2, 1, {{-1}, {1}}, {-2, 5}, {-1});
  const LpResult r = SolveSimplex(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
}

TEST(SimplexTest, ZeroObjective) {
  const LpProblem lp = SmallLp(1, 2, {{1, 1}}, {10}, {0, 0});
  const LpResult r = SolveSimplex(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
}

TEST(SimplexTest, NoConstraints) {
  LpProblem lp;
  lp.num_rows = 0;
  lp.num_cols = 2;
  lp.c = {0.0, -1.0};
  const LpResult r = SolveSimplex(lp);
  EXPECT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
  lp.c = {1.0, 0.0};
  EXPECT_EQ(SolveSimplex(lp).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, DegenerateVertexTerminates) {
  // Classic degeneracy: three constraints meeting at one vertex.
  const LpProblem lp = SmallLp(3, 2, {{1, 0}, {0, 1}, {1, 1}}, {1, 1, 1},
                               {1, 1});
  const LpResult r = SolveSimplex(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

TEST(SimplexTest, SolutionIsFeasible) {
  const LpProblem lp = MakeBlockLp({});
  const LpResult r = SolveSimplex(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_LE(MaxConstraintViolation(lp, r.x), 1e-6);
  EXPECT_NEAR(Objective(lp, r.x), r.objective, 1e-6 * (1 + r.objective));
}

TEST(SimplexTest, AssignmentLpIntegralOptimum) {
  // 2x2 assignment relaxation: max 3x00 + x01 + x10 + 3x11 with row/col
  // sums <= 1; LP optimum = 6 (diagonal).
  const LpProblem lp = SmallLp(
      4, 4,
      {{1, 1, 0, 0}, {0, 0, 1, 1}, {1, 0, 1, 0}, {0, 1, 0, 1}},
      {1, 1, 1, 1}, {3, 1, 1, 3});
  const LpResult r = SolveSimplex(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 6.0, 1e-9);
}

// Property sweep over generated block LPs: simplex must find a feasible
// optimum whose objective matches the returned value.
class SimplexPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(SimplexPropertyTest, OptimalFeasibleConsistent) {
  BlockLpSpec spec;
  spec.num_row_groups = 4;
  spec.num_col_groups = 5;
  spec.rows_per_group = 6;
  spec.cols_per_group = 4;
  spec.density = 0.5;
  spec.noise = 0.1;
  spec.seed = GetParam();
  const LpProblem lp = MakeBlockLp(spec);
  const LpResult r = SolveSimplex(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_LE(MaxConstraintViolation(lp, r.x), 1e-6);
  EXPECT_NEAR(Objective(lp, r.x), r.objective,
              1e-6 * (1.0 + std::abs(r.objective)));
  EXPECT_GT(r.objective, 0.0);  // c > 0 and b > 0 admit positive value
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimplexPropertyTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace qsc
