#include "qsc/lp/reduce.h"

#include <gtest/gtest.h>

#include <cmath>

#include "qsc/lp/generators.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/stats.h"

namespace qsc {
namespace {

TEST(ReduceLpTest, Figure3ReproducesPaperNumbers) {
  // The paper's Figure 3: the 5x3 LP has optimum 128.157; the q=1 coloring
  // {rows 0-2}, {rows 3-4}, {cols 0-1}, {col 2} yields a reduced LP with
  // optimum 130.199.
  const LpProblem lp = Figure3Lp();
  LpReduceOptions options;
  options.max_colors = 6;  // 2 row + 2 col colors + 2 pinned
  const ReducedLp reduced = ReduceLp(lp, options);
  EXPECT_EQ(reduced.lp.num_rows, 2);
  EXPECT_EQ(reduced.lp.num_cols, 2);

  // The witness-split coloring should find the paper's block structure.
  EXPECT_EQ(reduced.row_color[0], reduced.row_color[1]);
  EXPECT_EQ(reduced.row_color[1], reduced.row_color[2]);
  EXPECT_EQ(reduced.row_color[3], reduced.row_color[4]);
  EXPECT_NE(reduced.row_color[0], reduced.row_color[3]);
  EXPECT_EQ(reduced.col_color[0], reduced.col_color[1]);
  EXPECT_NE(reduced.col_color[0], reduced.col_color[2]);

  const LpResult r = SolveSimplex(reduced.lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 130.199, 1e-2);  // paper: 130.199
}

TEST(ReduceLpTest, Figure3ReducedMatrixEntries) {
  // Check the reduced matrix against Figure 3(b): A^(0,0) = 34/sqrt(3*2).
  const LpProblem lp = Figure3Lp();
  LpReduceOptions options;
  options.max_colors = 6;
  const ReducedLp reduced = ReduceLp(lp, options);
  // Identify color ids.
  const int32_t r0 = reduced.row_color[0];  // rows {0,1,2}
  const int32_t r1 = reduced.row_color[3];  // rows {3,4}
  const int32_t s0 = reduced.col_color[0];  // cols {0,1}
  const int32_t s1 = reduced.col_color[2];  // col {2}
  auto entry = [&](int32_t r, int32_t s) {
    for (const LpEntry& e : reduced.lp.entries) {
      if (e.row == r && e.col == s) return e.value;
    }
    return 0.0;
  };
  EXPECT_NEAR(entry(r0, s0), 34.0 / std::sqrt(6.0), 1e-9);
  EXPECT_NEAR(entry(r0, s1), 5.0 / std::sqrt(3.0), 1e-9);
  EXPECT_NEAR(entry(r1, s0), 9.0 / std::sqrt(4.0), 1e-9);
  EXPECT_NEAR(entry(r1, s1), 43.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(reduced.lp.b[r0], 61.0 / std::sqrt(3.0), 1e-9);
  EXPECT_NEAR(reduced.lp.b[r1], 101.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(reduced.lp.c[s0], 19.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(reduced.lp.c[s1], 50.0, 1e-9);
}

TEST(ReduceLpTest, FullColorsReproduceExactly) {
  // With one color per row/column the reduction is the identity (up to
  // normalization with |P|=1) and the optimum matches exactly.
  const LpProblem lp = Figure3Lp();
  LpReduceOptions options;
  options.max_colors = 5 + 3 + 2;
  const ReducedLp reduced = ReduceLp(lp, options);
  EXPECT_EQ(reduced.lp.num_rows, 5);
  EXPECT_EQ(reduced.lp.num_cols, 3);
  const LpResult exact = SolveSimplex(lp);
  const LpResult red = SolveSimplex(reduced.lp);
  EXPECT_NEAR(exact.objective, red.objective, 1e-6);
}

TEST(ReduceLpTest, GroheVariantAgreesAtQZero) {
  // On an exactly block-structured LP (noise 0) both reductions recover
  // the exact optimum (Theorem 2 with q = 0, and [16]).
  BlockLpSpec spec;
  spec.num_row_groups = 3;
  spec.num_col_groups = 3;
  spec.rows_per_group = 4;
  spec.cols_per_group = 4;
  spec.density = 0.6;
  spec.noise = 0.0;
  spec.seed = 5;
  LpProblem lp = MakeBlockLp(spec);
  // Noise-free blocks still have noisy b; flatten b within groups so the
  // coloring is exactly stable.
  for (int32_t i = 0; i < lp.num_rows; ++i) {
    lp.b[i] = lp.b[(i / 4) * 4];
  }
  const LpResult exact = SolveSimplex(lp);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);

  for (LpReduction variant :
       {LpReduction::kSqrtNormalized, LpReduction::kGrohe}) {
    LpReduceOptions options;
    options.max_colors = 10;  // 3 row + 3 col + wiggle room + pins
    options.q_tolerance = 0.0;
    options.variant = variant;
    const ReducedLp reduced = ReduceLp(lp, options);
    EXPECT_NEAR(reduced.max_q, 0.0, 1e-9);
    const LpResult red = SolveSimplex(reduced.lp);
    ASSERT_EQ(red.status, LpStatus::kOptimal);
    EXPECT_NEAR(RelativeError(exact.objective, red.objective), 1.0, 1e-6)
        << "variant " << static_cast<int>(variant);
  }
}

TEST(ReduceLpTest, LiftedSolutionReproducesObjective) {
  const LpProblem lp = MakeQapLikeLp(4, 7);
  LpReduceOptions options;
  options.max_colors = 20;
  const ReducedLp reduced = ReduceLp(lp, options);
  const LpResult red = SolveSimplex(reduced.lp);
  ASSERT_EQ(red.status, LpStatus::kOptimal);
  const std::vector<double> lifted = LiftSolution(reduced, red.x);
  ASSERT_EQ(static_cast<int32_t>(lifted.size()), lp.num_cols);
  // c^T x_lifted equals the reduced objective (see reduce.h).
  EXPECT_NEAR(Objective(lp, lifted), red.objective,
              1e-6 * (1 + std::abs(red.objective)));
}

TEST(ReduceLpTest, ErrorShrinksWithMoreColors) {
  const LpProblem lp = MakeQapLikeLp(5, 3);
  const LpResult exact = SolveSimplex(lp);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);
  double err_small = 0.0, err_large = 0.0;
  for (ColorId k : {8, 60}) {
    LpReduceOptions options;
    options.max_colors = k;
    const ReducedLp reduced = ReduceLp(lp, options);
    const LpResult red = SolveSimplex(reduced.lp);
    ASSERT_EQ(red.status, LpStatus::kOptimal);
    const double err = RelativeError(exact.objective, red.objective);
    if (k == 8) {
      err_small = err;
    } else {
      err_large = err;
    }
  }
  EXPECT_LE(err_large, err_small + 0.05);
  EXPECT_LE(err_large, 1.5);
}

TEST(ReduceLpTest, RowAndColumnColorsNeverMix) {
  const LpProblem lp = MakeWideSupportLp(4, 11);
  LpReduceOptions options;
  options.max_colors = 16;
  const ReducedLp reduced = ReduceLp(lp, options);
  // Sizes account for all rows/cols.
  int64_t rows = 0, cols = 0;
  for (int64_t s : reduced.row_color_size) rows += s;
  for (int64_t s : reduced.col_color_size) cols += s;
  EXPECT_EQ(rows, lp.num_rows);
  EXPECT_EQ(cols, lp.num_cols);
  // Reduced dimensions leave room for the two pinned singletons.
  EXPECT_LE(reduced.lp.num_rows + reduced.lp.num_cols + 2,
            options.max_colors + 1);
}

TEST(LpColoringRefinerTest, AnytimeMatchesFromScratch) {
  // Growing the same refiner must produce the same reductions as fresh
  // ReduceLp calls (the refinement is deterministic).
  const LpProblem lp = MakeQapLikeLp(5, 17);
  LpReduceOptions options;
  LpColoringRefiner refiner(lp, options);
  for (ColorId k : {8, 16, 32, 64}) {
    const ReducedLp incremental = refiner.ReduceTo(k);
    LpReduceOptions fresh_options;
    fresh_options.max_colors = k;
    const ReducedLp fresh = ReduceLp(lp, fresh_options);
    EXPECT_EQ(incremental.lp.num_rows, fresh.lp.num_rows) << k;
    EXPECT_EQ(incremental.lp.num_cols, fresh.lp.num_cols) << k;
    const LpResult a = SolveSimplex(incremental.lp);
    const LpResult b = SolveSimplex(fresh.lp);
    ASSERT_EQ(a.status, LpStatus::kOptimal);
    EXPECT_NEAR(a.objective, b.objective,
                1e-9 * (1.0 + std::abs(b.objective)))
        << k;
  }
}

TEST(LpColoringRefinerTest, ColoringTimeAccumulates) {
  const LpProblem lp = MakeQapLikeLp(5, 18);
  LpReduceOptions options;
  LpColoringRefiner refiner(lp, options);
  const ReducedLp first = refiner.ReduceTo(8);
  const ReducedLp second = refiner.ReduceTo(32);
  EXPECT_GE(second.coloring_seconds, first.coloring_seconds);
  EXPECT_LE(second.max_q, first.max_q + 1e-9);
}

TEST(ReduceLpTest, MaxQReportedMatchesTolerance) {
  const LpProblem lp = MakeNugentLikeLp(4, 13);
  LpReduceOptions options;
  options.max_colors = 1000;
  options.q_tolerance = 3.0;
  const ReducedLp reduced = ReduceLp(lp, options);
  EXPECT_LE(reduced.max_q, 3.0);
}

}  // namespace
}  // namespace qsc
