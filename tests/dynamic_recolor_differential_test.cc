// The incremental-recoloring oracle (DifferentialRunner::CheckDynamic),
// swept over every registered compression backend on the shared 56-graph
// property corpus (tests/rothko_corpus.h) under insert-only, delete-only
// and mixed seeded edit streams. At every checkpoint of every stream and
// every budget of the sweep the served bound
//     q_incremental <= max(q_scratch, q_tolerance)
// must hold exactly, fallbacks must reproduce the from-scratch partition
// bit for bit, and the repair telemetry must be internally consistent
// (docs/DYNAMIC.md). The suite name matches the CI TSan regex
// ('DynamicRecolor') so the data-race build covers this file too.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qsc/coloring/backend.h"
#include "qsc/dynamic/edit_stream.h"
#include "qsc/eval/differential.h"
#include "qsc/eval/workload.h"
#include "qsc/graph/graph.h"

#include "rothko_corpus.h"

namespace qsc {
namespace eval {
namespace {

using testing_corpus::CorpusGraph;
using testing_corpus::CorpusSeeds;

EvalOptions OptionsFor(const std::string& backend, uint64_t seed) {
  EvalOptions options;
  options.seed = seed;
  options.backend = backend;
  return options;
}

DynamicCheckOptions StreamOf(uint64_t seed, double insert_weight,
                             double delete_weight, double update_weight) {
  DynamicCheckOptions dyn;
  dyn.stream.seed = seed * 31 + 7;
  dyn.stream.num_batches = 3;
  dyn.stream.edits_per_batch = 6;
  dyn.stream.insert_weight = insert_weight;
  dyn.stream.delete_weight = delete_weight;
  dyn.stream.update_weight = update_weight;
  return dyn;
}

class DynamicRecolorDifferentialTest
    : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, DynamicRecolorDifferentialTest,
    ::testing::ValuesIn(ColoringBackendRegistry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-' || c == '_') c = '0';
      }
      return name;
    });

// All 56 corpus cells under each single-kind stream and the mixed stream.
// Delete-only streams shrink the graph toward the repairable floor;
// insert-only streams densify it; the mixed stream exercises the
// feasibility fallthrough of GenerateEditBatches.
TEST_P(DynamicRecolorDifferentialTest, CorpusStreamsHaveNoViolations) {
  struct StreamKind {
    const char* name;
    double insert, del, update;
  };
  const StreamKind kStreams[] = {
      {"insert-only", 1.0, 0.0, 0.0},
      {"delete-only", 0.0, 1.0, 0.0},
      {"mixed", 1.0, 1.0, 1.0},
  };
  for (const uint64_t seed : CorpusSeeds()) {
    for (const bool directed : {false, true}) {
      const Graph g = CorpusGraph(seed, directed);
      const DifferentialRunner runner(OptionsFor(GetParam(), seed));
      for (const StreamKind& stream : kStreams) {
        const DynamicCheckOptions dyn =
            StreamOf(seed, stream.insert, stream.del, stream.update);
        const DifferentialReport report = runner.CheckDynamic(g, dyn);
        ASSERT_TRUE(report.ok())
            << GetParam() << " seed " << seed
            << (directed ? " directed " : " undirected ") << stream.name
            << ": " << report.Summary();
        EXPECT_GT(report.checks, 0);
      }
    }
  }
}

// q_tolerance = 0 disables the repair path entirely: every batch must fall
// back, and CheckDynamic then insists the lazily recomputed partitions are
// bitwise identical to from-scratch refinement at every budget. A corpus
// subset keeps the runtime proportionate (the bound itself is already
// checked everywhere above).
TEST_P(DynamicRecolorDifferentialTest, ZeroToleranceFallsBackBitwise) {
  for (const uint64_t seed : {1u, 6u, 11u}) {
    for (const bool directed : {false, true}) {
      const Graph g = CorpusGraph(seed, directed);
      const DifferentialRunner runner(OptionsFor(GetParam(), seed));
      DynamicCheckOptions dyn = StreamOf(seed, 1.0, 1.0, 1.0);
      dyn.q_tolerance = 0.0;
      const DifferentialReport report = runner.CheckDynamic(g, dyn);
      ASSERT_TRUE(report.ok())
          << GetParam() << " seed " << seed
          << (directed ? " directed" : " undirected") << ": "
          << report.Summary();
    }
  }
}

// A tiny repair budget forces fallbacks even at positive tolerance; the
// bound and the bitwise-fallback contract must survive budget starvation.
TEST_P(DynamicRecolorDifferentialTest, StarvedRepairBudgetStaysSound) {
  const Graph g = CorpusGraph(3, /*directed=*/false);
  const DifferentialRunner runner(OptionsFor(GetParam(), 3));
  DynamicCheckOptions dyn = StreamOf(3, 1.0, 1.0, 1.0);
  dyn.max_repair_splits = 1;
  const DifferentialReport report = runner.CheckDynamic(g, dyn);
  ASSERT_TRUE(report.ok()) << GetParam() << ": " << report.Summary();
}

}  // namespace
}  // namespace eval
}  // namespace qsc
