// The workload trace layer (qsc/workload/trace.h): registered generators
// are seed-deterministic, the text format round-trips bit-identically,
// and ParseTrace rejects malformed input with a descriptive
// InvalidArgument instead of crashing — including under a seeded
// truncation/mutation fuzz loop (the ASan leg runs this binary).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "qsc/util/random.h"
#include "qsc/util/status.h"
#include "qsc/workload/trace.h"

namespace qsc {
namespace workload {
namespace {

TraceGenOptions SmallOptions(uint64_t seed) {
  TraceGenOptions options;
  options.seed = seed;
  options.num_events = 200;
  options.num_specs = 6;
  options.budgets = {8, 16, 32};
  options.batch_size = 3;
  return options;
}

std::vector<TraceEvent> Generate(const std::string& name, uint64_t seed) {
  StatusOr<std::unique_ptr<TraceSource>> source =
      MakeTraceSource(name, SmallOptions(seed));
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  return DrainTrace(**source);
}

TEST(WorkloadTraceTest, RegistryListsBuiltinsAndRejectsUnknown) {
  const std::vector<std::string> names = TraceGeneratorNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "poisson-zipf-mixed"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "bursty-zipf-mixed"),
            names.end());

  const auto unknown = MakeTraceSource("no-such-generator", {});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(WorkloadTraceTest, GeneratorsAreSeedDeterministic) {
  for (const std::string& name : TraceGeneratorNames()) {
    SCOPED_TRACE(name);
    const std::vector<TraceEvent> a = Generate(name, 42);
    const std::vector<TraceEvent> b = Generate(name, 42);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);

    const std::vector<TraceEvent> c = Generate(name, 43);
    EXPECT_NE(a, c);  // a different seed moves the workload
  }
}

TEST(WorkloadTraceTest, GeneratedEventsHonorTheOptionsContract) {
  const TraceGenOptions options = SmallOptions(7);
  for (const std::string& name : TraceGeneratorNames()) {
    SCOPED_TRACE(name);
    const std::vector<TraceEvent> events = Generate(name, 7);
    ASSERT_EQ(static_cast<int64_t>(events.size()), options.num_events);
    double last_arrival = 0.0;
    std::vector<int64_t> kind_counts(kNumQueryKinds, 0);
    for (const TraceEvent& e : events) {
      EXPECT_GE(e.arrival_seconds, last_arrival);
      last_arrival = e.arrival_seconds;
      EXPECT_GE(e.spec_index, 0);
      EXPECT_LT(e.spec_index, options.num_specs);
      EXPECT_NE(std::find(options.budgets.begin(), options.budgets.end(),
                          e.budget),
                options.budgets.end());
      EXPECT_EQ(e.batch_size, e.kind == QueryKind::kMaxFlowBatch
                                  ? options.batch_size
                                  : 1);
      ++kind_counts[static_cast<int>(e.kind)];
    }
    // Every kind with positive weight shows up in 200 draws.
    for (int k = 0; k < kNumQueryKinds; ++k) {
      EXPECT_GT(kind_counts[k], 0) << "kind " << k << " never drawn";
    }
    // Zipf skew: rank 0 strictly hotter than the coldest rank.
    std::vector<int64_t> spec_counts(options.num_specs, 0);
    for (const TraceEvent& e : events) ++spec_counts[e.spec_index];
    EXPECT_GT(spec_counts[0], spec_counts[options.num_specs - 1]);
  }
}

TEST(WorkloadTraceTest, FormatParsesBackBitIdentically) {
  for (const std::string& name : TraceGeneratorNames()) {
    SCOPED_TRACE(name);
    const std::vector<TraceEvent> events = Generate(name, 99);
    const std::string text = FormatTrace(events);

    StatusOr<std::vector<TraceEvent>> parsed = ParseTrace(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(parsed->size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
      EXPECT_EQ((*parsed)[i], events[i]) << "event " << i;
    }
    // Second leg: re-formatting the parse reproduces the exact text.
    EXPECT_EQ(FormatTrace(*parsed), text);
  }
}

TEST(WorkloadTraceTest, ParserAcceptsCommentsBlanksAndCrLf) {
  const std::string text =
      "# a comment\n"
      "\n"
      "qsc-trace v1\r\n"
      "  \t \n"
      "0.5 coloring 8 0 1\r\n"
      "# mid-stream comment\n"
      "0.75 maxflow-batch 16 3 4\n";
  StatusOr<std::vector<TraceEvent>> parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].kind, QueryKind::kColoring);
  EXPECT_EQ((*parsed)[1].kind, QueryKind::kMaxFlowBatch);
  EXPECT_EQ((*parsed)[1].batch_size, 4);
}

TEST(WorkloadTraceTest, ParserRejectsMalformedInputDescriptively) {
  const struct {
    const char* text;
    const char* needle;  // expected fragment of the error message
  } cases[] = {
      {"", "missing"},
      {"qsc-trace v3\n", "expected header"},
      {"0.5 coloring 8 0 1\n", "expected header"},
      // Edit kinds are v2 vocabulary: under a v1 header they are line
      // errors, not silently accepted.
      {"qsc-trace v1\n0.5 insert 4 0 1\n", "qsc-trace v2"},
      {"qsc-trace v1\n0.5 delete 4 0 1\n", "qsc-trace v2"},
      {"qsc-trace v1\n0.5 update 4 0 1\n", "qsc-trace v2"},
      {"qsc-trace v2\n0.5 warp 8 0 1\n", "unknown query kind"},
      {"qsc-trace v1\n0.5 coloring 8 0\n", "5 fields"},
      {"qsc-trace v1\n0.5 coloring 8 0 1 extra\n", "5 fields"},
      {"qsc-trace v1\nnope coloring 8 0 1\n", "arrival_seconds"},
      {"qsc-trace v1\n-1 coloring 8 0 1\n", "arrival_seconds"},
      {"qsc-trace v1\ninf coloring 8 0 1\n", "arrival_seconds"},
      {"qsc-trace v1\n2 coloring 8 0 1\n1 coloring 8 0 1\n",
       "non-decreasing"},
      {"qsc-trace v1\n0.5 warp 8 0 1\n", "unknown query kind"},
      {"qsc-trace v1\n0.5 coloring 0 0 1\n", "budget"},
      {"qsc-trace v1\n0.5 coloring -3 0 1\n", "budget"},
      {"qsc-trace v1\n0.5 coloring 99999999999 0 1\n", "budget"},
      {"qsc-trace v1\n0.5 coloring 8 -1 1\n", "spec"},
      {"qsc-trace v1\n0.5 coloring 8 1.5 1\n", "spec"},
      {"qsc-trace v1\n0.5 coloring 8 0 0\n", "batch"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.text);
    const StatusOr<std::vector<TraceEvent>> parsed = ParseTrace(c.text);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find(c.needle), std::string::npos)
        << "message: " << parsed.status().message();
  }
  // Line numbers point at the offending line.
  const auto bad = ParseTrace("qsc-trace v1\n0.5 coloring 8 0 1\nbroken\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos)
      << bad.status().message();
}

TEST(WorkloadTraceTest, GeneratorOptionsAreValidated) {
  const auto expect_invalid = [](TraceGenOptions options) {
    const auto source = MakeTraceSource("poisson-zipf-mixed", options);
    ASSERT_FALSE(source.ok());
    EXPECT_EQ(source.status().code(), StatusCode::kInvalidArgument);
  };
  TraceGenOptions o = SmallOptions(1);
  o.num_specs = 0;
  expect_invalid(o);
  o = SmallOptions(1);
  o.budgets.clear();
  expect_invalid(o);
  o = SmallOptions(1);
  o.budgets = {0};
  expect_invalid(o);
  o = SmallOptions(1);
  o.kind_weights = {1.0};
  expect_invalid(o);
  o = SmallOptions(1);
  o.kind_weights = {0, 0, 0, 0, 0};
  expect_invalid(o);
  o = SmallOptions(1);
  o.mean_interarrival_seconds = 0.0;
  expect_invalid(o);
  o = SmallOptions(1);
  o.batch_size = 0;
  expect_invalid(o);
  o = SmallOptions(1);
  o.burst_speedup = 0.5;
  expect_invalid(o);
}

// ---- qsc-trace v2 (edit events) ----

std::vector<TraceEvent> GenerateWithEdits(uint64_t seed,
                                          int32_t edit_interval) {
  TraceGenOptions options = SmallOptions(seed);
  options.edit_interval = edit_interval;
  options.edits_per_batch = 5;
  StatusOr<std::unique_ptr<TraceSource>> source =
      MakeTraceSource("poisson-zipf-mixed", options);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  return DrainTrace(**source);
}

TEST(WorkloadTraceTest, EditTracesFormatAsV2AndRoundTrip) {
  const std::vector<TraceEvent> events = GenerateWithEdits(13, 4);
  const std::string text = FormatTrace(events);
  // The header upgrades exactly when edit events are present.
  EXPECT_EQ(text.rfind("qsc-trace v2\n", 0), 0u) << text.substr(0, 20);
  EXPECT_EQ(FormatTrace(Generate("poisson-zipf-mixed", 13))
                .rfind("qsc-trace v1\n", 0),
            0u);

  StatusOr<std::vector<TraceEvent>> parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ((*parsed)[i], events[i]) << "event " << i;
  }
  EXPECT_EQ(FormatTrace(*parsed), text);
}

TEST(WorkloadTraceTest, EditCadenceAndColumnsFollowTheContract) {
  const int32_t interval = 3;
  const std::vector<TraceEvent> events = GenerateWithEdits(21, interval);
  int64_t edits_seen = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const bool should_be_edit =
        (static_cast<int64_t>(i) + 1) % (interval + 1) == 0;
    ASSERT_EQ(IsEditEvent(events[i].kind), should_be_edit) << "event " << i;
    if (!should_be_edit) continue;
    // Kinds cycle insert -> delete -> update; the budget column carries
    // the batch size and the spec column the running edit counter.
    EXPECT_EQ(events[i].kind,
              static_cast<QueryKind>(kNumQueryKinds + edits_seen % 3));
    EXPECT_EQ(events[i].budget, 5);
    EXPECT_EQ(events[i].spec_index, edits_seen);
    EXPECT_EQ(events[i].batch_size, 1);
    ++edits_seen;
  }
  EXPECT_GT(edits_seen, 0);

  // Edits draw nothing from the query stream: stripping them recovers the
  // edits-off trace event for event (arrival times differ — the clock
  // still ticks through edit slots).
  const std::vector<TraceEvent> plain = Generate("poisson-zipf-mixed", 21);
  std::vector<TraceEvent> queries;
  for (const TraceEvent& e : events) {
    if (!IsEditEvent(e.kind)) queries.push_back(e);
  }
  ASSERT_LE(queries.size(), plain.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(queries[i].kind, plain[i].kind) << "query " << i;
    EXPECT_EQ(queries[i].spec_index, plain[i].spec_index) << "query " << i;
    EXPECT_EQ(queries[i].budget, plain[i].budget) << "query " << i;
    EXPECT_EQ(queries[i].batch_size, plain[i].batch_size) << "query " << i;
  }
}

TEST(WorkloadTraceTest, EditIntervalOffIsByteIdenticalToBefore) {
  TraceGenOptions options = SmallOptions(9);
  options.edit_interval = 0;
  StatusOr<std::unique_ptr<TraceSource>> source =
      MakeTraceSource("bursty-zipf-mixed", options);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(FormatTrace(DrainTrace(**source)),
            FormatTrace(Generate("bursty-zipf-mixed", 9)));
}

TEST(WorkloadTraceTest, EditGenOptionsAreValidated) {
  const auto expect_invalid = [](TraceGenOptions options) {
    const auto source = MakeTraceSource("poisson-zipf-mixed", options);
    ASSERT_FALSE(source.ok());
    EXPECT_EQ(source.status().code(), StatusCode::kInvalidArgument);
  };
  TraceGenOptions o = SmallOptions(1);
  o.edit_interval = -1;
  expect_invalid(o);
  o = SmallOptions(1);
  o.edits_per_batch = 0;
  expect_invalid(o);
}

// Fuzz-ish negative tier: random truncations and byte mutations of a
// valid trace must parse cleanly or fail with InvalidArgument — never
// crash or corrupt memory (this binary runs under ASan in CI). Covers
// both format versions.
TEST(WorkloadTraceTest, TruncationAndMutationFuzzNeverCrashes) {
  const std::string kCorpus[] = {
      FormatTrace(Generate("bursty-zipf-mixed", 5)),
      FormatTrace(GenerateWithEdits(5, 2)),  // v2 with edit events
  };
  Rng rng(20260808);
  for (int iteration = 0; iteration < 200; ++iteration) {
    for (const std::string& valid : kCorpus) {
      std::string text = valid;
      if (iteration % 2 == 0) {
        text.resize(rng.NextBounded(text.size() + 1));  // truncate
      } else {
        const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
        for (int m = 0; m < mutations; ++m) {
          text[rng.NextBounded(text.size())] =
              static_cast<char>(rng.NextBounded(256));
        }
      }
      const StatusOr<std::vector<TraceEvent>> parsed = ParseTrace(text);
      if (!parsed.ok()) {
        EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
        EXPECT_FALSE(parsed.status().message().empty());
      }
    }
  }
}

}  // namespace
}  // namespace workload
}  // namespace qsc
