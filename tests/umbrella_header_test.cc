// Guarantees the public API umbrella stays self-contained: this translation
// unit includes qsc/qsc.h and nothing else from the library, so any public
// header that stops compiling standalone (missing include, stale
// declaration) breaks this target.

#include "qsc/qsc.h"

#include <gtest/gtest.h>

namespace qsc {
namespace {

TEST(UmbrellaHeaderTest, PublicApiIsReachable) {
  // Touch one symbol from each module (api, graph, coloring, flow, lp,
  // centrality, util) to ensure the umbrella actually pulls in the full
  // public API, not just empty headers.
  const Graph g = Graph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}}, true);
  EXPECT_EQ(g.num_nodes(), 3);

  // qsc/api: the session facade and its cache types.
  Compressor session(Graph{g});
  const StatusOr<ColoringResult> coloring = session.Coloring();
  ASSERT_TRUE(coloring.ok());
  EXPECT_GE(coloring->coloring->num_colors(), 1);
  EXPECT_EQ(session.stats().coloring.misses, 1);
  EXPECT_EQ(ColoringSpec{}, ColoringSpec{});

  // The zero-copy serving surface: GraphView aliases an owning Graph,
  // and Compressor::FromFile is declared (a missing file exercises only
  // the Status path — no fixture needed here).
  const GraphView view(g);
  EXPECT_EQ(view.num_arcs(), g.num_arcs());
  const StatusOr<Compressor> absent =
      Compressor::FromFile("/nonexistent/umbrella.qscbin");
  EXPECT_FALSE(absent.ok());

  const Partition stable = StableColoring(g);
  EXPECT_GE(stable.num_colors(), 1);

  // qsc/dynamic: the edit-stream model behind Compressor::ApplyEdits.
  EXPECT_STREQ(dynamic::EditKindName(dynamic::EditKind::kInsertEdge),
               "insert");

  EXPECT_DOUBLE_EQ(MaxFlowDinic(g, 0, 2), 1.0);

  LpProblem lp;
  lp.num_rows = 1;
  lp.num_cols = 1;
  lp.entries = {{0, 0, 1.0}};
  lp.b = {1.0};
  lp.c = {1.0};
  const LpResult lp_result = SolveSimplex(lp);
  EXPECT_DOUBLE_EQ(lp_result.objective, 1.0);

  const std::vector<double> bc = BetweennessExact(g);
  EXPECT_GT(bc[1], 0.0);

  EXPECT_TRUE(Status::Ok().ok());
}

}  // namespace
}  // namespace qsc
