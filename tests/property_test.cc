// Cross-cutting property sweeps over generated instances: invariants that
// must hold for every workload, independent of the specific numbers the
// benches report. Uses the umbrella header as an include smoke test.

#include <gtest/gtest.h>

#include <cmath>

#include "qsc/qsc.h"

namespace qsc {
namespace {

// --- Max-flow invariants over segmentation instances -----------------

class FlowPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(FlowPropertyTest, SolversAgreeAndBoundsHold) {
  Rng rng(GetParam());
  const FlowInstance inst = SegmentationGridNetwork(24, 14, 2, rng);
  const double ek = MaxFlowEdmondsKarp(inst.graph, inst.source, inst.sink);
  const double dinic = MaxFlowDinic(inst.graph, inst.source, inst.sink);
  const double pr = MaxFlowPushRelabel(inst.graph, inst.source, inst.sink);
  EXPECT_NEAR(ek, dinic, 1e-6);
  EXPECT_NEAR(ek, pr, 1e-6);

  // The min cut certifies the flow (strong duality).
  const MinCutResult cut = MinCut(inst.graph, inst.source, inst.sink);
  EXPECT_NEAR(cut.value, ek, 1e-6);

  // Theorem-6 sandwich at a coarse budget.
  FlowApproxOptions options;
  options.rothko.max_colors = 12;
  options.compute_lower_bound = true;
  const FlowApproxResult approx =
      ApproximateMaxFlow(inst.graph, inst.source, inst.sink, options);
  EXPECT_GE(approx.upper_bound, ek - 1e-6);
  EXPECT_LE(approx.lower_bound, ek + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlowPropertyTest,
                         testing::Values(1, 2, 3, 4, 5, 6));

// --- LP reduction invariants ------------------------------------------

class LpPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(LpPropertyTest, ReductionInvariants) {
  const LpProblem lp = MakeQapLikeLp(4, GetParam());
  const LpResult exact = SolveSimplex(lp);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);
  for (ColorId k : {8, 24}) {
    LpReduceOptions options;
    options.max_colors = k;
    const ReducedLp reduced = ReduceLp(lp, options);
    // Dimensions shrink and block sums are conserved: the reduced LP's
    // total (denormalized) matrix mass equals the original's.
    EXPECT_LE(reduced.lp.num_rows + reduced.lp.num_cols + 2, k + 1);
    double original_mass = 0.0;
    for (const LpEntry& e : lp.entries) original_mass += e.value;
    double reduced_mass = 0.0;
    for (const LpEntry& e : reduced.lp.entries) {
      reduced_mass +=
          e.value * std::sqrt(
                        static_cast<double>(
                            reduced.row_color_size[e.row]) *
                        static_cast<double>(reduced.col_color_size[e.col]));
    }
    EXPECT_NEAR(reduced_mass, original_mass,
                1e-6 * (1.0 + std::abs(original_mass)));
    // Lifted solutions reproduce the reduced objective.
    const LpResult red = SolveSimplex(reduced.lp);
    ASSERT_EQ(red.status, LpStatus::kOptimal);
    const auto lifted = LiftSolution(reduced, red.x);
    EXPECT_NEAR(Objective(lp, lifted), red.objective,
                1e-6 * (1.0 + std::abs(red.objective)));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LpPropertyTest,
                         testing::Values(21, 22, 23, 24));

// --- Coloring invariants under perturbation and relabeling ------------

class ColoringPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ColoringPropertyTest, PerturbationOnlyGrowsQuasiStableMildly) {
  Rng rng(GetParam());
  const Graph base = BlockBiregularGraph(20, 8, 40, rng);
  const Graph noisy = AddRandomEdges(base, 20, rng);
  RothkoOptions options;
  options.max_colors = 1000;
  options.q_tolerance = 4.0;
  const ColorId before = RothkoColoring(base, options).num_colors();
  const ColorId after = RothkoColoring(noisy, options).num_colors();
  // Stable coloring blows up; the q-coloring stays within a small factor.
  EXPECT_LE(after, 3 * before + 10);
  EXPECT_GT(StableColoring(noisy).num_colors(), after);
}

TEST_P(ColoringPropertyTest, QErrorMatchesToleranceContract) {
  Rng rng(GetParam() + 100);
  const Graph g = PowerLawGraph(400, 2400, 2.6, rng);
  for (double q : {16.0, 4.0}) {
    RothkoOptions options;
    options.max_colors = g.num_nodes();
    options.q_tolerance = q;
    const Partition p = RothkoColoring(g, options);
    EXPECT_LE(ComputeQError(g, p).max_q, q + 1e-9);
  }
}

TEST_P(ColoringPropertyTest, StableRefinesEveryRothkoColoring) {
  Rng rng(GetParam() + 200);
  const Graph g = ErdosRenyiGnm(120, 400, rng);
  const Partition stable = StableColoring(g);
  RothkoOptions options;
  options.max_colors = 30;
  const Partition quasi = RothkoColoring(g, options);
  // Rothko only ever splits, so its coloring is a coarsening of some
  // sequence from the trivial partition; the exact stable coloring need
  // not refine it — but the discrete partition refines both, and both
  // refine the trivial one.
  EXPECT_TRUE(Partition::Discrete(120).IsRefinementOf(quasi));
  EXPECT_TRUE(quasi.IsRefinementOf(Partition::Trivial(120)));
  EXPECT_TRUE(stable.IsRefinementOf(Partition::Trivial(120)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ColoringPropertyTest,
                         testing::Values(31, 32, 33));

// --- Centrality estimator invariants -----------------------------------

TEST(CentralityPropertyTest, EstimateIsUnbiasedAtFullSampling) {
  // pivots_per_color = n guarantees every node is a pivot: the estimate
  // equals exact betweenness for any coloring.
  Rng rng(77);
  const Graph g = ErdosRenyiGnm(40, 120, rng);
  const auto exact = BetweennessExact(g);
  RothkoOptions rothko;
  rothko.max_colors = 5;
  const Partition p = RothkoColoring(g, rothko);
  ColorPivotOptions options;
  options.pivots_per_color = 40;  // clipped to the color size
  const auto approx = ApproximateBetweennessWithColoring(g, p, options);
  for (NodeId v = 0; v < 40; ++v) {
    EXPECT_NEAR(approx.scores[v], exact[v], 1e-8);
  }
}

}  // namespace
}  // namespace qsc
