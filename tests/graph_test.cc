#include "qsc/graph/graph.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "qsc/graph/datasets.h"

namespace qsc {
namespace {

TEST(GraphTest, EmptyGraph) {
  const Graph g = Graph::FromEdges(0, {}, false);
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_arcs(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphTest, DirectedArcsStoredOnce) {
  const Graph g = Graph::FromEdges(3, {{0, 1, 2.0}, {1, 2, 3.0}}, false);
  EXPECT_EQ(g.num_arcs(), 2);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_FALSE(g.undirected());
  EXPECT_EQ(g.OutDegree(0), 1);
  EXPECT_EQ(g.InDegree(0), 0);
  EXPECT_EQ(g.InDegree(1), 1);
  EXPECT_DOUBLE_EQ(g.ArcWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.ArcWeight(1, 0), 0.0);
}

TEST(GraphTest, UndirectedEdgesMirrored) {
  const Graph g = Graph::FromEdges(3, {{0, 1, 2.0}}, true);
  EXPECT_EQ(g.num_arcs(), 2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.undirected());
  EXPECT_DOUBLE_EQ(g.ArcWeight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.ArcWeight(1, 0), 2.0);
}

TEST(GraphTest, ParallelEdgesCoalesced) {
  const Graph g =
      Graph::FromEdges(2, {{0, 1, 1.0}, {0, 1, 2.5}}, false);
  EXPECT_EQ(g.num_arcs(), 1);
  EXPECT_DOUBLE_EQ(g.ArcWeight(0, 1), 3.5);
}

TEST(GraphTest, ZeroAggregateWeightDropped) {
  const Graph g =
      Graph::FromEdges(2, {{0, 1, 1.0}, {0, 1, -1.0}}, false);
  EXPECT_EQ(g.num_arcs(), 0);
  EXPECT_FALSE(g.HasArc(0, 1));
}

TEST(GraphTest, SelfLoopUndirectedStoredOnce) {
  const Graph g = Graph::FromEdges(2, {{0, 0, 4.0}, {0, 1, 1.0}}, true);
  EXPECT_EQ(g.num_arcs(), 3);  // loop + two mirrored arcs
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g.ArcWeight(0, 0), 4.0);
}

TEST(GraphTest, WeightCaches) {
  const Graph g = Graph::FromEdges(
      3, {{0, 1, 2.0}, {0, 2, 3.0}, {1, 2, 4.0}}, false);
  EXPECT_DOUBLE_EQ(g.OutWeight(0), 5.0);
  EXPECT_DOUBLE_EQ(g.InWeight(2), 7.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 9.0);
}

TEST(GraphTest, NegativeWeightsAllowed) {
  const Graph g = Graph::FromEdges(2, {{0, 1, -2.5}}, false);
  EXPECT_DOUBLE_EQ(g.ArcWeight(0, 1), -2.5);
  EXPECT_DOUBLE_EQ(g.OutWeight(0), -2.5);
}

TEST(GraphTest, AdjacencySortedByEndpoint) {
  const Graph g = Graph::FromEdges(
      4, {{0, 3, 1.0}, {0, 1, 1.0}, {0, 2, 1.0}}, false);
  NodeId prev = -1;
  for (const NeighborEntry& e : g.OutNeighbors(0)) {
    EXPECT_GT(e.node, prev);
    prev = e.node;
  }
}

TEST(GraphTest, ArcsRoundTrip) {
  const std::vector<EdgeTriple> edges{{0, 1, 1.5}, {2, 0, 2.5}};
  const Graph g = Graph::FromEdges(3, edges, false);
  const auto arcs = g.Arcs();
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_EQ(arcs[0].src, 0);
  EXPECT_EQ(arcs[0].dst, 1);
  EXPECT_EQ(arcs[1].src, 2);
  EXPECT_EQ(arcs[1].dst, 0);
}

TEST(GraphTest, InNeighborsMatchOutArcs) {
  const Graph g = Graph::FromEdges(
      4, {{0, 2, 1.0}, {1, 2, 5.0}, {3, 2, 2.0}}, false);
  double total_in = 0.0;
  int64_t count = 0;
  for (const NeighborEntry& e : g.InNeighbors(2)) {
    total_in += e.weight;
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(total_in, 8.0);
}

TEST(GraphTest, OutOfRangeEndpointDies) {
  EXPECT_DEATH(Graph::FromEdges(2, {{0, 2, 1.0}}, false), "QSC_CHECK");
}

TEST(GraphTest, UndirectedDuplicatesCoalescingToZeroDropBothArcs) {
  // {0,1,+2} and {0,1,-2} mirror to four arcs that cancel pairwise; the
  // edge must vanish entirely (paper convention: edge exists iff w != 0)
  // and never leave a one-sided residue.
  const Graph g = Graph::FromEdges(
      3, {{0, 1, 2.0}, {0, 1, -2.0}, {1, 2, 1.0}}, true);
  EXPECT_FALSE(g.HasArc(0, 1));
  EXPECT_FALSE(g.HasArc(1, 0));
  EXPECT_EQ(g.num_arcs(), 2);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.OutWeight(0), 0.0);
  EXPECT_DOUBLE_EQ(g.InWeight(0), 0.0);
}

TEST(GraphTest, UndirectedCancellationAcrossOrientations) {
  // The same logical edge given once per orientation: undirected
  // construction mirrors both, so all four arcs cancel.
  const Graph g = Graph::FromEdges(2, {{0, 1, 3.0}, {1, 0, -3.0}}, true);
  EXPECT_EQ(g.num_arcs(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(GraphTest, UndirectedSelfLoopDuplicatesCoalesced) {
  // Self-loops are stored once in undirected mode, including duplicates;
  // a loop coalescing to zero disappears without skewing num_edges.
  const Graph g = Graph::FromEdges(
      2, {{0, 0, 1.5}, {0, 0, 2.5}, {1, 1, 1.0}, {1, 1, -1.0}}, true);
  EXPECT_EQ(g.num_arcs(), 1);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.ArcWeight(0, 0), 4.0);
  EXPECT_FALSE(g.HasArc(1, 1));
}

TEST(GraphTest, FromArcsRoundTripsDirectedGraph) {
  const Graph g = Graph::FromEdges(
      4, {{0, 2, 1.0}, {1, 2, 5.0}, {3, 2, 2.0}, {2, 0, -1.5}}, false);
  const Graph back = Graph::FromArcs(g.num_nodes(), g.Arcs(), g.undirected());
  EXPECT_TRUE(g == back);
}

TEST(GraphTest, FromArcsRoundTripsUndirectedGraphWithLoops) {
  // FromEdges would re-mirror Arcs() and double every non-loop weight;
  // FromArcs is the exact inverse.
  const Graph g = Graph::FromEdges(
      4, {{0, 1, 2.0}, {1, 2, 3.0}, {2, 2, 4.0}, {0, 3, 1.0}}, true);
  const Graph back = Graph::FromArcs(g.num_nodes(), g.Arcs(), g.undirected());
  EXPECT_TRUE(g == back);
  EXPECT_DOUBLE_EQ(back.ArcWeight(0, 1), 2.0);  // not doubled
  EXPECT_EQ(back.num_edges(), g.num_edges());

  // The naive FromEdges round trip is NOT the identity — this asymmetry is
  // why FromArcs exists.
  const Graph doubled =
      Graph::FromEdges(g.num_nodes(), g.Arcs(), g.undirected());
  EXPECT_DOUBLE_EQ(doubled.ArcWeight(0, 1), 4.0);
}

TEST(GraphTest, FromArcsCoalescesDuplicates) {
  const Graph g = Graph::FromArcs(
      2, {{0, 1, 1.0}, {0, 1, 2.0}, {1, 0, -3.0}, {1, 0, 3.0}}, false);
  EXPECT_EQ(g.num_arcs(), 1);
  EXPECT_DOUBLE_EQ(g.ArcWeight(0, 1), 3.0);
  EXPECT_FALSE(g.HasArc(1, 0));
}

TEST(GraphTest, FromArcsRejectsAsymmetricUndirectedInput) {
  EXPECT_DEATH(Graph::FromArcs(2, {{0, 1, 1.0}}, true), "QSC_CHECK");
}

TEST(GraphTest, FromArcsToleratesRoundingResidueInCancelledEdges) {
  // Duplicate sums are order-dependent: one direction of this symmetric
  // multiset cancels to exactly 0 (dropped) while the mirror may keep an
  // ulp-sized residue. FromArcs must treat the residue as a cancelled
  // edge, not abort or keep a one-sided arc.
  const Graph g = Graph::FromArcs(3,
                                  {{0, 1, 1.0},
                                   {0, 1, -1.0},
                                   {0, 1, 1e-18},
                                   {1, 0, 1e-18},
                                   {1, 0, -1.0},
                                   {1, 0, 1.0},
                                   {1, 2, 2.0},
                                   {2, 1, 2.0}},
                                  true);
  EXPECT_FALSE(g.HasArc(0, 1));
  EXPECT_FALSE(g.HasArc(1, 0));
  EXPECT_DOUBLE_EQ(g.ArcWeight(1, 2), 2.0);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphTest, FromArcsSymmetrizesUlpWeightDifferences) {
  // Near-equal mirror weights (rounding skew) collapse onto one canonical
  // value so the stored representation is exactly symmetric.
  const double w = 3.0;
  const double w_skewed = w + 1e-12;
  const Graph g =
      Graph::FromArcs(2, {{0, 1, w}, {1, 0, w_skewed}}, true);
  EXPECT_DOUBLE_EQ(g.ArcWeight(0, 1), g.ArcWeight(1, 0));
  EXPECT_DOUBLE_EQ(g.ArcWeight(0, 1), w);
}

TEST(GraphTest, EqualityDetectsWeightAndStructureDifferences) {
  const Graph a = Graph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 2.0}}, false);
  const Graph b = Graph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 2.0}}, false);
  const Graph c = Graph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 2.5}}, false);
  const Graph d = Graph::FromEdges(3, {{0, 1, 1.0}, {0, 2, 2.0}}, false);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a != c);
  EXPECT_TRUE(a != d);
}

TEST(KarateClubTest, MatchesPaperStats) {
  const Graph g = KarateClub();
  EXPECT_EQ(g.num_nodes(), 34);
  EXPECT_EQ(g.num_edges(), 78);
  EXPECT_TRUE(g.undirected());
  // Leaders: node 1 (id 0) has degree 16, node 34 (id 33) degree 17.
  EXPECT_EQ(g.OutDegree(0), 16);
  EXPECT_EQ(g.OutDegree(33), 17);
}

TEST(Figure5GraphTest, EveryNodeDegreeTwo) {
  const auto ce = Figure5Graph();
  for (NodeId v = 0; v < ce.graph.num_nodes(); ++v) {
    EXPECT_EQ(ce.graph.OutDegree(v), 2);
  }
}

// ---- In-place single-edge mutators (docs/DYNAMIC.md) ----

// The mutator contract: a mutated graph is indistinguishable from
// FromArcs() over its mutated arc list, down to the cached weight
// aggregates (compared with exact equality, not a tolerance).
void ExpectEqualsRebuild(const Graph& g) {
  const Graph rebuilt =
      Graph::FromArcs(g.num_nodes(), g.Arcs(), g.undirected());
  ASSERT_TRUE(g == rebuilt);
  EXPECT_EQ(g.num_edges(), rebuilt.num_edges());
  EXPECT_EQ(g.num_arcs(), rebuilt.num_arcs());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.OutWeight(v), rebuilt.OutWeight(v)) << "node " << v;
    EXPECT_EQ(g.InWeight(v), rebuilt.InWeight(v)) << "node " << v;
    EXPECT_EQ(g.OutDegree(v), rebuilt.OutDegree(v)) << "node " << v;
    EXPECT_EQ(g.InDegree(v), rebuilt.InDegree(v)) << "node " << v;
  }
  EXPECT_EQ(g.TotalWeight(), rebuilt.TotalWeight());
}

TEST(GraphMutatorsTest, AddEdgeDirected) {
  Graph g = Graph::FromEdges(4, {{0, 1, 2.0}, {1, 2, 3.0}}, false);
  ASSERT_TRUE(g.AddEdge(2, 0, 0.5).ok());
  EXPECT_EQ(g.num_arcs(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_DOUBLE_EQ(g.ArcWeight(2, 0), 0.5);
  EXPECT_FALSE(g.HasArc(0, 2));  // directed: no mirror
  ExpectEqualsRebuild(g);
}

TEST(GraphMutatorsTest, AddEdgeUndirectedMirrorsBothArcs) {
  Graph g = Graph::FromEdges(4, {{0, 1, 2.0}}, true);
  ASSERT_TRUE(g.AddEdge(1, 3, 4.0).ok());
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.num_arcs(), 4);
  EXPECT_DOUBLE_EQ(g.ArcWeight(1, 3), 4.0);
  EXPECT_DOUBLE_EQ(g.ArcWeight(3, 1), 4.0);
  ExpectEqualsRebuild(g);
}

TEST(GraphMutatorsTest, AddSelfLoopUndirectedStoredOnce) {
  Graph g = Graph::FromEdges(3, {{0, 1, 1.0}}, true);
  ASSERT_TRUE(g.AddEdge(2, 2, 5.0).ok());
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.num_arcs(), 3);  // loop stored once
  EXPECT_DOUBLE_EQ(g.ArcWeight(2, 2), 5.0);
  ExpectEqualsRebuild(g);
}

TEST(GraphMutatorsTest, RemoveEdgeDirected) {
  Graph g = Graph::FromEdges(4, {{0, 1, 2.0}, {1, 2, 3.0}, {2, 3, 4.0}},
                             false);
  ASSERT_TRUE(g.RemoveEdge(1, 2).ok());
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_FALSE(g.HasArc(1, 2));
  EXPECT_DOUBLE_EQ(g.OutWeight(1), 0.0);
  ExpectEqualsRebuild(g);
}

TEST(GraphMutatorsTest, RemoveEdgeUndirectedDropsBothArcs) {
  Graph g = Graph::FromEdges(4, {{0, 1, 2.0}, {1, 2, 3.0}}, true);
  ASSERT_TRUE(g.RemoveEdge(2, 1).ok());  // either endpoint order
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.HasArc(1, 2));
  EXPECT_FALSE(g.HasArc(2, 1));
  ExpectEqualsRebuild(g);
}

TEST(GraphMutatorsTest, SetWeightUpdatesBothUndirectedArcs) {
  Graph g = Graph::FromEdges(3, {{0, 1, 2.0}, {1, 2, 3.0}}, true);
  ASSERT_TRUE(g.SetWeight(1, 0, 7.5).ok());
  EXPECT_DOUBLE_EQ(g.ArcWeight(0, 1), 7.5);
  EXPECT_DOUBLE_EQ(g.ArcWeight(1, 0), 7.5);
  EXPECT_EQ(g.num_edges(), 2);
  ExpectEqualsRebuild(g);
}

TEST(GraphMutatorsTest, MutationSequenceMatchesRebuildAtEveryStep) {
  Graph g = KarateClub();
  ASSERT_TRUE(g.AddEdge(0, 9, 2.0).ok());
  ExpectEqualsRebuild(g);
  ASSERT_TRUE(g.SetWeight(0, 9, 0.25).ok());
  ExpectEqualsRebuild(g);
  ASSERT_TRUE(g.RemoveEdge(33, 32).ok());
  ExpectEqualsRebuild(g);
  ASSERT_TRUE(g.AddEdge(33, 7, 1.0).ok());
  ExpectEqualsRebuild(g);
}

// Boundary rejection table: every invalid call reports the documented
// code with a descriptive message and leaves the graph untouched.
TEST(GraphMutatorsTest, RejectionTable) {
  struct Case {
    const char* name;
    Status (*apply)(Graph& g);
    StatusCode want_code;
    const char* want_substring;
  };
  const Case kCases[] = {
      {"add-src-out-of-range",
       [](Graph& g) { return g.AddEdge(-1, 0, 1.0); },
       StatusCode::kInvalidArgument, "out of range"},
      {"add-dst-out-of-range",
       [](Graph& g) { return g.AddEdge(0, 3, 1.0); },
       StatusCode::kInvalidArgument, "out of range"},
      {"add-nan-weight",
       [](Graph& g) {
         return g.AddEdge(0, 2, std::numeric_limits<double>::quiet_NaN());
       },
       StatusCode::kInvalidArgument, "finite"},
      {"add-inf-weight",
       [](Graph& g) {
         return g.AddEdge(0, 2, std::numeric_limits<double>::infinity());
       },
       StatusCode::kInvalidArgument, "finite"},
      {"add-zero-weight",
       [](Graph& g) { return g.AddEdge(0, 2, 0.0); },
       StatusCode::kInvalidArgument, "nonzero"},
      {"add-present-arc",
       [](Graph& g) { return g.AddEdge(0, 1, 1.0); },
       StatusCode::kInvalidArgument, "use SetWeight"},
      {"remove-src-out-of-range",
       [](Graph& g) { return g.RemoveEdge(3, 0); },
       StatusCode::kInvalidArgument, "out of range"},
      {"remove-absent-arc",
       [](Graph& g) { return g.RemoveEdge(0, 2); },
       StatusCode::kNotFound, "no arc"},
      {"set-weight-absent-arc",
       [](Graph& g) { return g.SetWeight(2, 0, 1.0); },
       StatusCode::kNotFound, "no arc"},
      {"set-weight-zero",
       [](Graph& g) { return g.SetWeight(0, 1, 0.0); },
       StatusCode::kInvalidArgument, "RemoveEdge"},
      {"set-weight-nan",
       [](Graph& g) {
         return g.SetWeight(0, 1, std::numeric_limits<double>::quiet_NaN());
       },
       StatusCode::kInvalidArgument, "finite"},
      {"set-weight-dst-out-of-range",
       [](Graph& g) { return g.SetWeight(0, -2, 1.0); },
       StatusCode::kInvalidArgument, "out of range"},
  };
  for (const bool undirected : {false, true}) {
    for (const Case& c : kCases) {
      Graph g = Graph::FromEdges(3, {{0, 1, 2.0}, {1, 2, 3.0}}, undirected);
      const Graph before = g;
      const Status s = c.apply(g);
      EXPECT_EQ(s.code(), c.want_code)
          << c.name << " (undirected=" << undirected << "): " << s.message();
      EXPECT_NE(s.message().find(c.want_substring), std::string::npos)
          << c.name << ": message was \"" << s.message() << "\"";
      EXPECT_TRUE(g == before) << c.name << " mutated the graph on error";
    }
  }
}

}  // namespace
}  // namespace qsc
