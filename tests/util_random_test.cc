#include "qsc/util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace qsc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  for (int64_t k : {0, 1, 5, 50, 100}) {
    const auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(static_cast<int64_t>(sample.size()), k);
    std::set<int64_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(static_cast<int64_t>(distinct.size()), k);
    for (int64_t s : sample) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 100);
    }
  }
}

TEST(RngTest, SampleFullRangeIsPermutation) {
  Rng rng(19);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

}  // namespace
}  // namespace qsc
