#include "qsc/lp/interior_point.h"

#include <gtest/gtest.h>

#include "qsc/lp/generators.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/stats.h"

namespace qsc {
namespace {

TEST(InteriorPointTest, TextbookTwoVariable) {
  LpProblem lp;
  lp.num_rows = 3;
  lp.num_cols = 2;
  lp.entries = {{0, 0, 1}, {1, 1, 2}, {2, 0, 3}, {2, 1, 2}};
  lp.b = {4, 12, 18};
  lp.c = {3, 5};
  const IpmResult r = SolveInteriorPoint(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, 1e-4);
}

TEST(InteriorPointTest, Figure3MatchesSimplex) {
  const LpProblem lp = Figure3Lp();
  const IpmResult ipm = SolveInteriorPoint(lp);
  const LpResult simplex = SolveSimplex(lp);
  ASSERT_EQ(ipm.status, LpStatus::kOptimal);
  EXPECT_NEAR(ipm.objective, simplex.objective,
              1e-4 * (1 + simplex.objective));
}

TEST(InteriorPointTest, AgreesWithSimplexOnBlockLps) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    BlockLpSpec spec;
    spec.num_row_groups = 3;
    spec.num_col_groups = 4;
    spec.rows_per_group = 5;
    spec.cols_per_group = 4;
    spec.density = 0.5;
    spec.noise = 0.1;
    spec.seed = seed;
    const LpProblem lp = MakeBlockLp(spec);
    const IpmResult ipm = SolveInteriorPoint(lp);
    const LpResult simplex = SolveSimplex(lp);
    ASSERT_EQ(simplex.status, LpStatus::kOptimal);
    ASSERT_EQ(ipm.status, LpStatus::kOptimal) << "seed " << seed;
    EXPECT_NEAR(RelativeError(simplex.objective, ipm.objective), 1.0, 1e-3)
        << "seed " << seed;
  }
}

TEST(InteriorPointTest, HistoryIsRecorded) {
  const IpmResult r = SolveInteriorPoint(Figure3Lp());
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_GT(r.history.size(), 2u);
  // Elapsed time is non-decreasing across iterations.
  for (size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_GE(r.history[i].elapsed_seconds,
              r.history[i - 1].elapsed_seconds);
  }
}

TEST(InteriorPointTest, EarlyStoppingIsFasterAndCoarser) {
  BlockLpSpec spec;
  spec.num_row_groups = 5;
  spec.num_col_groups = 6;
  spec.rows_per_group = 10;
  spec.cols_per_group = 8;
  spec.seed = 99;
  const LpProblem lp = MakeBlockLp(spec);

  const IpmResult exact = SolveInteriorPoint(lp);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);

  IpmOptions early;
  early.early_stop_rel_gap = 2.0;
  const IpmResult stopped = SolveInteriorPoint(lp, early);
  ASSERT_EQ(stopped.status, LpStatus::kOptimal);
  EXPECT_TRUE(stopped.early_stopped);
  EXPECT_LE(stopped.iterations, exact.iterations);
  // The certified gap guarantees the early answer is within 2x.
  EXPECT_LE(RelativeError(exact.objective, stopped.objective), 2.0 + 1e-6);
}

TEST(InteriorPointTest, EmptyLp) {
  LpProblem lp;
  lp.num_rows = 0;
  lp.num_cols = 0;
  EXPECT_EQ(SolveInteriorPoint(lp).status, LpStatus::kOptimal);
}

}  // namespace
}  // namespace qsc
