#include <gtest/gtest.h>

#include <vector>

#include "qsc/flow/dinic.h"
#include "qsc/flow/edmonds_karp.h"
#include "qsc/flow/min_cut.h"
#include "qsc/flow/network.h"
#include "qsc/flow/push_relabel.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

Graph ClassicNetwork() {
  // CLRS-style example with max-flow 23.
  return Graph::FromEdges(6,
                          {{0, 1, 16},
                           {0, 2, 13},
                           {1, 2, 10},
                           {2, 1, 4},
                           {1, 3, 12},
                           {3, 2, 9},
                           {2, 4, 14},
                           {4, 3, 7},
                           {3, 5, 20},
                           {4, 5, 4}},
                          false);
}

TEST(MaxFlowTest, ClassicExampleAllSolvers) {
  const Graph g = ClassicNetwork();
  EXPECT_DOUBLE_EQ(MaxFlowEdmondsKarp(g, 0, 5), 23.0);
  EXPECT_DOUBLE_EQ(MaxFlowDinic(g, 0, 5), 23.0);
  EXPECT_DOUBLE_EQ(MaxFlowPushRelabel(g, 0, 5), 23.0);
}

TEST(MaxFlowTest, SingleArc) {
  const Graph g = Graph::FromEdges(2, {{0, 1, 7.5}}, false);
  EXPECT_DOUBLE_EQ(MaxFlowDinic(g, 0, 1), 7.5);
  EXPECT_DOUBLE_EQ(MaxFlowPushRelabel(g, 0, 1), 7.5);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  const Graph g = Graph::FromEdges(4, {{0, 1, 3.0}, {2, 3, 4.0}}, false);
  EXPECT_DOUBLE_EQ(MaxFlowEdmondsKarp(g, 0, 3), 0.0);
  EXPECT_DOUBLE_EQ(MaxFlowDinic(g, 0, 3), 0.0);
  EXPECT_DOUBLE_EQ(MaxFlowPushRelabel(g, 0, 3), 0.0);
}

TEST(MaxFlowTest, SeriesBottleneck) {
  const Graph g = Graph::FromEdges(
      4, {{0, 1, 10.0}, {1, 2, 2.5}, {2, 3, 10.0}}, false);
  EXPECT_DOUBLE_EQ(MaxFlowDinic(g, 0, 3), 2.5);
  EXPECT_DOUBLE_EQ(MaxFlowPushRelabel(g, 0, 3), 2.5);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  const Graph g = Graph::FromEdges(
      4, {{0, 1, 3.0}, {1, 3, 3.0}, {0, 2, 4.0}, {2, 3, 4.0}}, false);
  EXPECT_DOUBLE_EQ(MaxFlowDinic(g, 0, 3), 7.0);
  EXPECT_DOUBLE_EQ(MaxFlowPushRelabel(g, 0, 3), 7.0);
}

TEST(MaxFlowTest, AntiparallelArcs) {
  const Graph g = Graph::FromEdges(
      3, {{0, 1, 5.0}, {1, 0, 9.0}, {1, 2, 3.0}}, false);
  EXPECT_DOUBLE_EQ(MaxFlowDinic(g, 0, 2), 3.0);
  EXPECT_DOUBLE_EQ(MaxFlowPushRelabel(g, 0, 2), 3.0);
}

TEST(MaxFlowTest, LayeredDiagonalHasFlowTwo) {
  // Paper Example 7 / Figure 4: with layer_width = num_layers + 1 the true
  // max-flow is 2 regardless of size, while every inter-layer capacity is
  // layer_width - 1.
  for (int layers : {3, 5, 8}) {
    const FlowInstance inst = LayeredDiagonalNetwork(layers, layers + 1);
    EXPECT_DOUBLE_EQ(
        MaxFlowDinic(inst.graph, inst.source, inst.sink), 2.0)
        << layers;
  }
}

TEST(MaxFlowTest, SolversAgreeOnRandomGrids) {
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    const FlowInstance inst = GridFlowNetwork(6 + trial, 5, 10, 15, rng);
    const double ek = MaxFlowEdmondsKarp(inst.graph, inst.source, inst.sink);
    const double dinic = MaxFlowDinic(inst.graph, inst.source, inst.sink);
    const double pr = MaxFlowPushRelabel(inst.graph, inst.source, inst.sink);
    EXPECT_NEAR(ek, dinic, 1e-6) << trial;
    EXPECT_NEAR(ek, pr, 1e-6) << trial;
  }
}

TEST(MaxFlowTest, SolversAgreeOnRandomSparseDigraphs) {
  Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<EdgeTriple> arcs;
    const NodeId n = 30;
    for (int e = 0; e < 150; ++e) {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (u == v) continue;
      arcs.push_back({u, v, static_cast<double>(rng.UniformInt(1, 20))});
    }
    const Graph g = Graph::FromEdges(n, arcs, false);
    const double ek = MaxFlowEdmondsKarp(g, 0, n - 1);
    EXPECT_NEAR(ek, MaxFlowDinic(g, 0, n - 1), 1e-6) << trial;
    EXPECT_NEAR(ek, MaxFlowPushRelabel(g, 0, n - 1), 1e-6) << trial;
  }
}

TEST(MaxFlowTest, FlowConservationInResidual) {
  const Graph g = ClassicNetwork();
  ResidualNetwork net = ResidualNetwork::FromGraph(g);
  const double value = MaxFlowDinic(net, 0, 5);
  // Net flow out of every interior node is zero.
  std::vector<double> net_out(g.num_nodes(), 0.0);
  for (int64_t id = 0; id < net.num_arcs(); id += 2) {
    const double flow = net.Flow(id);
    EXPECT_GE(flow, -1e-9);
    const NodeId head = net.arc(id).head;
    const NodeId tail = net.arc(id + 1).head;
    net_out[tail] += flow;
    net_out[head] -= flow;
  }
  EXPECT_NEAR(net_out[0], value, 1e-9);
  EXPECT_NEAR(net_out[5], -value, 1e-9);
  for (NodeId v = 1; v < 5; ++v) EXPECT_NEAR(net_out[v], 0.0, 1e-9);
}

TEST(MinCutTest, ClassicExample) {
  const MinCutResult cut = MinCut(ClassicNetwork(), 0, 5);
  EXPECT_DOUBLE_EQ(cut.value, 23.0);
  EXPECT_TRUE(cut.in_source_side[0]);
  EXPECT_FALSE(cut.in_source_side[5]);
  double cap = 0.0;
  for (const EdgeTriple& a : cut.cut_arcs) cap += a.weight;
  EXPECT_DOUBLE_EQ(cap, cut.value);
}

TEST(MinCutTest, CutCapacityEqualsFlowOnRandomInstances) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const FlowInstance inst = GridFlowNetwork(7, 4, 8, 12, rng);
    const MinCutResult cut = MinCut(inst.graph, inst.source, inst.sink);
    double cap = 0.0;
    for (const EdgeTriple& a : cut.cut_arcs) cap += a.weight;
    EXPECT_NEAR(cap, cut.value, 1e-6);
    // Removing the cut arcs must disconnect source from sink: verify via a
    // second max-flow on the remaining graph.
    std::vector<EdgeTriple> remaining;
    for (const EdgeTriple& a : inst.graph.Arcs()) {
      bool is_cut = false;
      for (const EdgeTriple& c : cut.cut_arcs) {
        if (a.src == c.src && a.dst == c.dst) {
          is_cut = true;
          break;
        }
      }
      if (!is_cut) remaining.push_back(a);
    }
    const Graph rest =
        Graph::FromEdges(inst.graph.num_nodes(), remaining, false);
    EXPECT_NEAR(MaxFlowDinic(rest, inst.source, inst.sink), 0.0, 1e-9);
  }
}

TEST(ResidualNetworkTest, PushUpdatesBothDirections) {
  ResidualNetwork net(2);
  const int64_t id = net.AddArc(0, 1, 5.0);
  net.Push(id, 2.0);
  EXPECT_DOUBLE_EQ(net.arc(id).residual, 3.0);
  EXPECT_DOUBLE_EQ(net.arc(id ^ 1).residual, 2.0);
  EXPECT_DOUBLE_EQ(net.Flow(id), 2.0);
}

TEST(ResidualNetworkTest, NegativeCapacityDies) {
  ResidualNetwork net(2);
  EXPECT_DEATH(net.AddArc(0, 1, -1.0), "QSC_CHECK");
}

// The CSR index must list each node's arcs in ascending arc id — the same
// order the old per-node vectors produced — so solver traversal order (and
// therefore every flow decomposition) is unchanged by the flattening.
TEST(ResidualNetworkTest, OutArcsAreSortedByArcId) {
  ResidualNetwork net(4);
  net.AddArc(0, 1, 1.0);  // ids 0, 1
  net.AddArc(2, 0, 2.0);  // ids 2, 3
  net.AddArc(0, 3, 3.0);  // ids 4, 5
  net.AddArc(1, 0, 4.0);  // ids 6, 7
  net.Finalize();
  const auto arcs = net.OutArcs(0);
  ASSERT_EQ(arcs.size(), 4u);
  EXPECT_EQ(arcs[0], 0);  // forward to 1
  EXPECT_EQ(arcs[1], 3);  // reverse of 2->0
  EXPECT_EQ(arcs[2], 4);  // forward to 3
  EXPECT_EQ(arcs[3], 7);  // reverse of 1->0
  for (const int64_t id : arcs) {
    EXPECT_EQ(net.tail(id), 0);
  }
}

TEST(ResidualNetworkTest, FromGraphMatchesIncrementalConstruction) {
  Rng rng(17);
  const Graph g = ErdosRenyiGnm(20, 60, rng);
  const ResidualNetwork from_graph = ResidualNetwork::FromGraph(g);
  EXPECT_TRUE(from_graph.finalized());

  ResidualNetwork incremental(g.num_nodes());
  incremental.ReserveArcs(g.num_arcs());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NeighborEntry& e : g.OutNeighbors(u)) {
      incremental.AddArc(u, e.node, e.weight);
    }
  }
  EXPECT_FALSE(incremental.finalized());
  incremental.Finalize();
  ASSERT_EQ(from_graph.num_arcs(), incremental.num_arcs());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto a = from_graph.OutArcs(u);
    const auto b = incremental.OutArcs(u);
    ASSERT_EQ(a.size(), b.size()) << "node " << u;
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k], b[k]);
      EXPECT_EQ(from_graph.arc(a[k]).head, incremental.arc(b[k]).head);
      EXPECT_DOUBLE_EQ(from_graph.arc(a[k]).residual,
                       incremental.arc(b[k]).residual);
    }
  }
}

TEST(ResidualNetworkTest, FinalizeAfterLateAddArcReindexes) {
  ResidualNetwork net(3);
  net.AddArc(0, 1, 4.0);
  net.Finalize();
  EXPECT_EQ(net.OutArcs(0).size(), 1u);
  // A later AddArc invalidates the index; Finalize rebuilds it and solvers
  // call it at entry, so the bypass arc becomes reachable.
  net.AddArc(1, 2, 4.0);
  EXPECT_FALSE(net.finalized());
  EXPECT_DOUBLE_EQ(MaxFlowDinic(net, 0, 2), 4.0);
  EXPECT_TRUE(net.finalized());
  EXPECT_EQ(net.OutArcs(1).size(), 2u);
}

}  // namespace
}  // namespace qsc
