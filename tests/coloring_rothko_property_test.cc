// Seeded property sweep for the Rothko refiner's anytime contract (paper
// Sec 5.2): across random graphs — directed and undirected, arithmetic and
// geometric split means — Step() never increases CurrentMaxError(), and
// the history() color counts are strictly increasing. 56 graphs total
// (14 seeds x 2 directedness x 2 split means, shared via
// rothko_corpus.h), all derived from fixed seeds, so every failure
// reproduces exactly (see docs/TESTING.md).

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "qsc/coloring/partition.h"
#include "qsc/coloring/q_error.h"
#include "qsc/coloring/rothko.h"
#include "qsc/graph/graph.h"
#include "rothko_corpus.h"

namespace qsc {
namespace {

class RothkoAnytimeTest
    : public testing::TestWithParam<
          std::tuple<uint64_t, bool, RothkoOptions::SplitMean>> {};

TEST_P(RothkoAnytimeTest, StepNeverIncreasesMaxErrorAndHistoryGrows) {
  const auto [seed, directed, split_mean] = GetParam();
  const Graph g = testing_corpus::CorpusGraph(seed, directed);

  RothkoOptions options;
  options.split_mean = split_mean;
  RothkoRefiner refiner(g, Partition::Trivial(g.num_nodes()), options);

  double prev_error = refiner.CurrentMaxError();
  int steps = 0;
  while (refiner.Step()) {
    ++steps;
    const double error = refiner.CurrentMaxError();
    EXPECT_LE(error, prev_error + 1e-9)
        << "Step " << steps << " raised the max q-error";
    // The refiner's incremental bookkeeping must agree with a from-scratch
    // recount on the final partitions; checking a prefix keeps this cheap.
    if (steps <= 5) {
      EXPECT_NEAR(error, ComputeQError(g, refiner.partition()).max_q, 1e-9);
    }
    prev_error = error;
  }
  EXPECT_GT(steps, 0);  // a 60-node random graph is never stable upfront
  EXPECT_DOUBLE_EQ(refiner.CurrentMaxError(), 0.0);  // ran to stability

  ColorId prev_colors = 1;  // trivial partition
  for (const RothkoStep& s : refiner.history()) {
    EXPECT_GT(s.num_colors, prev_colors);
    prev_colors = s.num_colors;
  }
  EXPECT_EQ(prev_colors, refiner.partition().num_colors());
}

std::string AnytimeParamName(
    const testing::TestParamInfo<RothkoAnytimeTest::ParamType>& info) {
  return "seed" + std::to_string(std::get<0>(info.param)) +
         (std::get<1>(info.param) ? "_directed_" : "_undirected_") +
         (std::get<2>(info.param) == RothkoOptions::SplitMean::kGeometric
              ? "geometric"
              : "arithmetic");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RothkoAnytimeTest,
    testing::Combine(
        testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3}, uint64_t{4},
                        uint64_t{5}, uint64_t{6}, uint64_t{7}, uint64_t{8},
                        uint64_t{9}, uint64_t{10}, uint64_t{11}, uint64_t{12},
                        uint64_t{13}, uint64_t{14}),
        testing::Bool(),
        testing::Values(RothkoOptions::SplitMean::kArithmetic,
                        RothkoOptions::SplitMean::kGeometric)),
    AnytimeParamName);

}  // namespace
}  // namespace qsc
