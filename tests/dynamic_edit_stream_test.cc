#include "qsc/dynamic/edit_stream.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "qsc/graph/datasets.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/perturb.h"
#include "qsc/util/random.h"

namespace qsc {
namespace dynamic {
namespace {

Graph ErdosRenyiGraph(uint64_t seed, bool undirected) {
  Rng rng(seed);
  const Graph g = ErdosRenyiGnm(40, 100, rng);
  if (undirected) return g;
  // Rebuild the same arc set as a directed graph (both directions kept).
  return Graph::FromArcs(g.num_nodes(), g.Arcs(), /*undirected=*/false);
}

// ---- Generator / perturb equivalence ----

// GenerateEdits draws exactly like graph/perturb, so applying an
// insert-only batch reproduces AddRandomEdges bit for bit.
TEST(EditStreamTest, InsertBatchMatchesAddRandomEdges) {
  for (const bool undirected : {false, true}) {
    for (const uint64_t seed : {3u, 7u, 11u}) {
      const Graph g = ErdosRenyiGraph(seed, undirected);
      const StatusOr<std::vector<EditOp>> edits =
          GenerateEdits(g, EditKind::kInsertEdge, 12, seed * 13);
      ASSERT_TRUE(edits.ok()) << edits.status().ToString();
      const StatusOr<Graph> mutated = ApplyEditBatch(g, *edits);
      ASSERT_TRUE(mutated.ok()) << mutated.status().ToString();

      Rng rng(seed * 13);
      const Graph want = AddRandomEdges(g, 12, rng);
      EXPECT_TRUE(*mutated == want)
          << "undirected=" << undirected << " seed=" << seed;
    }
  }
}

// Same equivalence for deletions against RemoveRandomEdges.
TEST(EditStreamTest, DeleteBatchMatchesRemoveRandomEdges) {
  for (const bool undirected : {false, true}) {
    for (const uint64_t seed : {3u, 7u, 11u}) {
      const Graph g = ErdosRenyiGraph(seed, undirected);
      const StatusOr<std::vector<EditOp>> edits =
          GenerateEdits(g, EditKind::kDeleteEdge, 9, seed * 17);
      ASSERT_TRUE(edits.ok()) << edits.status().ToString();
      const StatusOr<Graph> mutated = ApplyEditBatch(g, *edits);
      ASSERT_TRUE(mutated.ok()) << mutated.status().ToString();

      Rng rng(seed * 17);
      const Graph want = RemoveRandomEdges(g, 9, rng);
      EXPECT_TRUE(*mutated == want)
          << "undirected=" << undirected << " seed=" << seed;
    }
  }
}

TEST(EditStreamTest, UpdateBatchTargetsExistingEdges) {
  const Graph g = KarateClub();
  const StatusOr<std::vector<EditOp>> edits =
      GenerateEdits(g, EditKind::kUpdateWeight, 10, 5);
  ASSERT_TRUE(edits.ok());
  for (const EditOp& e : *edits) {
    EXPECT_EQ(e.kind, EditKind::kUpdateWeight);
    EXPECT_TRUE(g.HasArc(e.src, e.dst));
    EXPECT_GE(e.weight, 1.0);
    EXPECT_LE(e.weight, 8.0);
    EXPECT_EQ(e.weight, static_cast<double>(static_cast<int64_t>(e.weight)));
  }
  const StatusOr<Graph> mutated = ApplyEditBatch(g, *edits);
  ASSERT_TRUE(mutated.ok()) << mutated.status().ToString();
  EXPECT_EQ(mutated->num_edges(), g.num_edges());
}

TEST(EditStreamTest, GenerateEditsIsDeterministic) {
  const Graph g = KarateClub();
  for (const EditKind kind :
       {EditKind::kInsertEdge, EditKind::kDeleteEdge, EditKind::kUpdateWeight}) {
    const StatusOr<std::vector<EditOp>> a = GenerateEdits(g, kind, 6, 99);
    const StatusOr<std::vector<EditOp>> b = GenerateEdits(g, kind, 6, 99);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
}

// ---- Batch application ----

TEST(EditStreamTest, ApplyEditBatchIsAllOrNothing) {
  const Graph g = Graph::FromEdges(4, {{0, 1, 1.0}, {1, 2, 2.0}}, false);
  // Second edit deletes an absent arc: the whole batch must fail and the
  // error must name the offending edit.
  const std::vector<EditOp> batch = {
      {EditKind::kInsertEdge, 2, 3, 1.0},
      {EditKind::kDeleteEdge, 0, 3, 0.0},
  };
  const StatusOr<Graph> mutated = ApplyEditBatch(g, batch);
  ASSERT_FALSE(mutated.ok());
  EXPECT_EQ(mutated.status().code(), StatusCode::kNotFound);
  EXPECT_NE(mutated.status().message().find("edit 1"), std::string::npos)
      << mutated.status().message();
}

TEST(EditStreamTest, ApplyEditBatchLeavesInputUntouched) {
  const Graph g = Graph::FromEdges(3, {{0, 1, 1.0}}, true);
  const Graph before = g;
  const std::vector<EditOp> batch = {{EditKind::kInsertEdge, 1, 2, 2.0}};
  const StatusOr<Graph> mutated = ApplyEditBatch(g, batch);
  ASSERT_TRUE(mutated.ok());
  EXPECT_TRUE(g == before);
  EXPECT_FALSE(g.HasArc(1, 2));
  EXPECT_TRUE(mutated->HasArc(1, 2));
}

// ---- Mixed-kind stream ----

TEST(EditStreamTest, GenerateEditBatchesStaysValidAcrossBatches) {
  const Graph g = KarateClub();
  EditStreamOptions options;
  options.seed = 21;
  options.num_batches = 8;
  options.edits_per_batch = 6;
  const StatusOr<std::vector<std::vector<EditOp>>> batches =
      GenerateEditBatches(g, options);
  ASSERT_TRUE(batches.ok()) << batches.status().ToString();
  ASSERT_EQ(batches->size(), 8u);
  Graph current = g;
  for (const std::vector<EditOp>& batch : *batches) {
    EXPECT_EQ(batch.size(), 6u);
    StatusOr<Graph> next = ApplyEditBatch(current, batch);
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    current = std::move(next).value();
  }
}

TEST(EditStreamTest, SingleKindStreamsRespectTheWeights) {
  const Graph g = KarateClub();
  EditStreamOptions options;
  options.seed = 5;
  options.num_batches = 3;
  options.edits_per_batch = 5;
  options.insert_weight = 0.0;
  options.delete_weight = 0.0;
  options.update_weight = 1.0;
  const StatusOr<std::vector<std::vector<EditOp>>> batches =
      GenerateEditBatches(g, options);
  ASSERT_TRUE(batches.ok()) << batches.status().ToString();
  for (const std::vector<EditOp>& batch : *batches) {
    for (const EditOp& e : batch) {
      EXPECT_EQ(e.kind, EditKind::kUpdateWeight);
    }
  }
}

// ---- Rejection table ----

TEST(EditStreamTest, RejectionTable) {
  const Graph small = Graph::FromEdges(3, {{0, 1, 1.0}}, false);
  const Graph empty_graph = Graph::FromEdges(3, {}, false);
  const Graph one_node = Graph::FromEdges(1, {}, false);

  struct Case {
    const char* name;
    StatusOr<std::vector<EditOp>> result;
    StatusCode want_code;
    const char* want_substring;
  };
  const Case kCases[] = {
      {"negative-count",
       GenerateEdits(small, EditKind::kInsertEdge, -1, 1),
       StatusCode::kInvalidArgument, "count"},
      {"insert-one-node",
       GenerateEdits(one_node, EditKind::kInsertEdge, 1, 1),
       StatusCode::kInvalidArgument, "2 nodes"},
      {"insert-beyond-capacity",
       GenerateEdits(small, EditKind::kInsertEdge, 100, 1),
       StatusCode::kInvalidArgument, "absent"},
      {"delete-more-than-edges",
       GenerateEdits(small, EditKind::kDeleteEdge, 2, 1),
       StatusCode::kInvalidArgument, "edges"},
      {"update-edgeless",
       GenerateEdits(empty_graph, EditKind::kUpdateWeight, 1, 1),
       StatusCode::kInvalidArgument, "edge"},
  };
  for (const Case& c : kCases) {
    ASSERT_FALSE(c.result.ok()) << c.name;
    EXPECT_EQ(c.result.status().code(), c.want_code) << c.name;
    EXPECT_NE(c.result.status().message().find(c.want_substring),
              std::string::npos)
        << c.name << ": \"" << c.result.status().message() << "\"";
  }
}

TEST(EditStreamTest, BatchOptionsValidation) {
  const Graph g = KarateClub();
  EditStreamOptions bad_batches;
  bad_batches.num_batches = -1;
  EXPECT_EQ(GenerateEditBatches(g, bad_batches).status().code(),
            StatusCode::kInvalidArgument);

  EditStreamOptions bad_weights;
  bad_weights.insert_weight = 0.0;
  bad_weights.delete_weight = 0.0;
  bad_weights.update_weight = 0.0;
  EXPECT_EQ(GenerateEditBatches(g, bad_weights).status().code(),
            StatusCode::kInvalidArgument);

  EditStreamOptions bad_range;
  bad_range.min_weight = 5;
  bad_range.max_weight = 2;
  EXPECT_EQ(GenerateEditBatches(g, bad_range).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EditStreamTest, KindNamesAreTheWireNames) {
  EXPECT_STREQ(EditKindName(EditKind::kInsertEdge), "insert");
  EXPECT_STREQ(EditKindName(EditKind::kDeleteEdge), "delete");
  EXPECT_STREQ(EditKindName(EditKind::kUpdateWeight), "update");
}

}  // namespace
}  // namespace dynamic
}  // namespace qsc
