// The byte-budgeted ColoringCache's eviction contract
// (qsc/api/coloring_cache.h): eviction frees memory, never changes a
// result. The differential oracle here runs over the shared 56-graph
// property corpus (tests/rothko_corpus.h): for every (graph, split-mean)
// cell, a spec is queried, evicted under byte pressure, and re-queried —
// the recomputed partition must be bitwise equal to the evicted one, and
// bytes_in_use must respect the budget after every operation (the cache
// is single-threaded here, so no entry is pinned when eviction runs).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "qsc/api/coloring_cache.h"
#include "qsc/api/compressor.h"
#include "qsc/coloring/partition.h"
#include "qsc/coloring/rothko.h"
#include "qsc/graph/graph.h"
#include "rothko_corpus.h"

namespace qsc {
namespace {

using testing_corpus::CorpusGraph;
using testing_corpus::CorpusSeeds;

std::shared_ptr<const Graph> Shared(Graph g) {
  return std::make_shared<const Graph>(std::move(g));
}

ColoringSpec SpecWithPins(RothkoOptions::SplitMean split_mean,
                          std::vector<NodeId> pinned) {
  ColoringSpec spec;
  spec.split_mean = split_mean;
  spec.pinned = std::move(pinned);
  return spec;
}

void CheckStatsReconcile(const CacheStats& stats) {
  EXPECT_EQ(stats.hits + stats.misses + stats.recolorings, stats.lookups);
  EXPECT_GE(stats.bytes_in_use, 0);
  EXPECT_GE(stats.peak_bytes, stats.bytes_in_use);
}

// The corpus-wide oracle: evict-then-requery is bitwise invisible, and
// the budget holds after every operation.
TEST(CacheEvictionTest, EvictedSpecRecomputesBitIdenticallyAcrossCorpus) {
  const std::vector<RothkoOptions::SplitMean> means = {
      RothkoOptions::SplitMean::kArithmetic,
      RothkoOptions::SplitMean::kGeometric};
  for (const uint64_t seed : CorpusSeeds()) {
    for (const bool directed : {false, true}) {
      const auto graph = Shared(CorpusGraph(seed, directed));
      for (const auto mean : means) {
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " directed=" + std::to_string(directed) +
                     " geometric=" +
                     std::to_string(mean ==
                                    RothkoOptions::SplitMean::kGeometric));
        const ColoringSpec spec_a = SpecWithPins(mean, {});
        const ColoringSpec spec_b = SpecWithPins(mean, {0});
        const ColorId budget = 12;

        // Reference pass, unbudgeted: the partition to reproduce and the
        // footprint of one warm entry (the byte budget below).
        ColoringCache reference(graph);
        const auto want = reference.Refine(spec_a, budget);
        const int64_t one_entry_bytes = reference.stats().bytes_in_use;
        ASSERT_GT(one_entry_bytes, 0);

        // Budgeted cache sized for exactly one entry: serving a second
        // spec must evict the first.
        ColoringCacheOptions options;
        options.byte_budget = one_entry_bytes;
        ColoringCache cache(graph, /*pool=*/nullptr, options);

        const auto first = cache.Refine(spec_a, budget);
        EXPECT_EQ(*first.partition, *want.partition);
        EXPECT_EQ(first.max_error, want.max_error);
        EXPECT_LE(cache.stats().bytes_in_use, options.byte_budget);

        cache.Refine(spec_b, budget);
        const CacheStats after_b = cache.stats();
        EXPECT_LE(after_b.bytes_in_use, options.byte_budget);
        EXPECT_GE(after_b.evictions, 1);

        // Re-query the evicted spec: a recompute-from-scratch miss whose
        // partition and q-error are bitwise equal to the evicted run.
        const auto again = cache.Refine(spec_a, budget);
        EXPECT_EQ(*again.partition, *want.partition);
        EXPECT_EQ(again.max_error, want.max_error);
        EXPECT_FALSE(again.cache_hit);

        const CacheStats final_stats = cache.stats();
        EXPECT_LE(final_stats.bytes_in_use, options.byte_budget);
        EXPECT_EQ(final_stats.misses, 3);  // a, b, and re-queried a
        CheckStatsReconcile(final_stats);
      }
    }
  }
}

// Anytime continuation composes with eviction: refine up-budget, evict,
// re-query at the continued budget — still bitwise equal.
TEST(CacheEvictionTest, UpBudgetContinuationSurvivesEviction) {
  for (const uint64_t seed : {uint64_t{3}, uint64_t{11}}) {
    const auto graph = Shared(CorpusGraph(seed, /*directed=*/true));
    const ColoringSpec spec_a =
        SpecWithPins(RothkoOptions::SplitMean::kArithmetic, {});
    const ColoringSpec spec_b =
        SpecWithPins(RothkoOptions::SplitMean::kArithmetic, {1, 2});

    ColoringCache reference(graph);
    reference.Refine(spec_a, 8);
    const auto continued = reference.Refine(spec_a, 20);
    const int64_t warm_bytes = reference.stats().bytes_in_use;

    ColoringCacheOptions options;
    options.byte_budget = warm_bytes;
    ColoringCache cache(graph, /*pool=*/nullptr, options);
    cache.Refine(spec_a, 8);
    const auto up = cache.Refine(spec_a, 20);
    EXPECT_EQ(*up.partition, *continued.partition);

    cache.Refine(spec_b, 20);  // evicts spec_a
    EXPECT_GE(cache.stats().evictions, 1);
    EXPECT_LE(cache.stats().bytes_in_use, options.byte_budget);

    const auto again = cache.Refine(spec_a, 20);
    EXPECT_EQ(*again.partition, *continued.partition);
    EXPECT_EQ(again.max_error, continued.max_error);
    CheckStatsReconcile(cache.stats());
  }
}

// An unbudgeted cache never evicts but still meters its footprint.
TEST(CacheEvictionTest, UnbudgetedCacheTracksBytesWithoutEvicting) {
  const auto graph = Shared(CorpusGraph(5, /*directed=*/false));
  ColoringCache cache(graph);
  int64_t last_bytes = 0;
  for (const NodeId pin : {0, 1, 2, 3}) {
    cache.Refine(SpecWithPins(RothkoOptions::SplitMean::kArithmetic, {pin}),
                 16);
    const CacheStats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 0);
    EXPECT_GT(stats.bytes_in_use, last_bytes);  // one more live entry
    EXPECT_EQ(stats.peak_bytes, stats.bytes_in_use);
    last_bytes = stats.bytes_in_use;
  }
  EXPECT_EQ(cache.num_entries(), 4);
}

// A budget smaller than any single entry degenerates to cache-nothing:
// every request recomputes, every result still exact, and the cache
// empties after each call.
TEST(CacheEvictionTest, TinyBudgetDegeneratesToCacheNothing) {
  const auto graph = Shared(CorpusGraph(7, /*directed=*/true));
  const ColoringSpec spec =
      SpecWithPins(RothkoOptions::SplitMean::kArithmetic, {});

  ColoringCache reference(graph);
  const auto want = reference.Refine(spec, 12);

  ColoringCacheOptions options;
  options.byte_budget = 1;
  ColoringCache cache(graph, /*pool=*/nullptr, options);
  for (int i = 0; i < 3; ++i) {
    const auto got = cache.Refine(spec, 12);
    EXPECT_EQ(*got.partition, *want.partition);
    EXPECT_FALSE(got.cache_hit);
    EXPECT_EQ(cache.num_entries(), 0);
    EXPECT_EQ(cache.stats().bytes_in_use, 0);
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.evictions, 3);
  CheckStatsReconcile(stats);
}

// CompressorOptions plumbs the budget through to the session cache, and
// eviction stays invisible at the query API.
TEST(CacheEvictionTest, CompressorByteBudgetIsTransparent) {
  Graph g = CorpusGraph(9, /*directed=*/true);
  Compressor unbudgeted{Graph(g)};

  CompressorOptions options;
  options.coloring_cache_byte_budget = 1;  // evict after every query
  Compressor budgeted(std::move(g), /*pool=*/nullptr, options);

  QueryOptions query;
  query.max_colors = 12;
  for (const auto& [s, t] : std::vector<std::pair<NodeId, NodeId>>{
           {0, 59}, {1, 58}, {0, 59}, {2, 57}}) {
    const auto want = unbudgeted.MaxFlow(s, t, query);
    const auto got = budgeted.MaxFlow(s, t, query);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->upper_bound, want->upper_bound);
    EXPECT_EQ(*got->coloring, *want->coloring);
  }
  const CompressorStats stats = budgeted.stats();
  EXPECT_GE(stats.coloring.evictions, 3);
  EXPECT_EQ(stats.coloring.bytes_in_use, 0);
  EXPECT_GT(stats.coloring.peak_bytes, 0);
  // Every repeated query is a recompute-miss under the tiny budget.
  EXPECT_EQ(stats.coloring.hits + stats.coloring.misses +
                stats.coloring.recolorings,
            stats.coloring.lookups);
}

}  // namespace
}  // namespace qsc
