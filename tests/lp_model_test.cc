#include "qsc/lp/model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "qsc/lp/generators.h"
#include "qsc/lp/io.h"

namespace qsc {
namespace {

TEST(ValidateLpTest, AcceptsWellFormed) {
  const LpProblem lp = Figure3Lp();
  EXPECT_TRUE(ValidateLp(lp).ok());
}

TEST(ValidateLpTest, RejectsBadSizes) {
  LpProblem lp;
  lp.num_rows = 2;
  lp.num_cols = 1;
  lp.b = {1.0};  // wrong size
  lp.c = {1.0};
  EXPECT_FALSE(ValidateLp(lp).ok());
}

TEST(ValidateLpTest, RejectsOutOfRangeEntry) {
  LpProblem lp;
  lp.num_rows = 1;
  lp.num_cols = 1;
  lp.b = {1.0};
  lp.c = {1.0};
  lp.entries = {{0, 5, 1.0}};
  EXPECT_FALSE(ValidateLp(lp).ok());
}

TEST(ValidateLpTest, RejectsNonFinite) {
  LpProblem lp;
  lp.num_rows = 1;
  lp.num_cols = 1;
  lp.b = {std::numeric_limits<double>::infinity()};
  lp.c = {1.0};
  EXPECT_FALSE(ValidateLp(lp).ok());
}

TEST(CanonicalizeLpTest, MergesDuplicatesDropsZeros) {
  LpProblem lp;
  lp.num_rows = 2;
  lp.num_cols = 2;
  lp.b = {1, 1};
  lp.c = {1, 1};
  lp.entries = {{1, 1, 2.0}, {0, 0, 1.0}, {1, 1, 3.0}, {0, 1, 4.0},
                {0, 1, -4.0}};
  CanonicalizeLp(lp);
  ASSERT_EQ(lp.entries.size(), 2u);
  EXPECT_EQ(lp.entries[0].row, 0);
  EXPECT_EQ(lp.entries[0].col, 0);
  EXPECT_DOUBLE_EQ(lp.entries[1].value, 5.0);
}

TEST(BuildColumnsTest, ColumnMajorView) {
  const LpProblem lp = Figure3Lp();
  const LpColumns cols = BuildColumns(lp);
  ASSERT_EQ(cols.offsets.size(), 4u);
  EXPECT_EQ(cols.offsets[3], 15);  // dense 5x3
  // Column 2 holds A(:,2) = {2,1,2,22,21}.
  double sum = 0.0;
  for (int64_t p = cols.offsets[2]; p < cols.offsets[2 + 1]; ++p) {
    sum += cols.values[p];
  }
  EXPECT_DOUBLE_EQ(sum, 48.0);
}

TEST(ObjectiveTest, Figure3AtOnes) {
  const LpProblem lp = Figure3Lp();
  EXPECT_DOUBLE_EQ(Objective(lp, {1.0, 1.0, 1.0}), 69.0);
}

TEST(MaxConstraintViolationTest, FeasibleAndInfeasible) {
  const LpProblem lp = Figure3Lp();
  EXPECT_DOUBLE_EQ(MaxConstraintViolation(lp, {0.0, 0.0, 0.0}), 0.0);
  // x = (10,0,0): row 2 gives 7*10 = 70 > 21 -> violation 49.
  EXPECT_DOUBLE_EQ(MaxConstraintViolation(lp, {10.0, 0.0, 0.0}), 49.0);
  // Negative variables are violations too.
  EXPECT_DOUBLE_EQ(MaxConstraintViolation(lp, {-2.0, 0.0, 0.0}), 2.0);
}

TEST(LpIoTest, RoundTrip) {
  const LpProblem lp = MakeBlockLp({});
  const std::string path = testing::TempDir() + "/block.lp";
  ASSERT_TRUE(WriteLpText(lp, path).ok());
  const auto back = ReadLpText(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows, lp.num_rows);
  EXPECT_EQ(back->num_cols, lp.num_cols);
  ASSERT_EQ(back->entries.size(), lp.entries.size());
  for (size_t i = 0; i < lp.entries.size(); ++i) {
    EXPECT_EQ(back->entries[i].row, lp.entries[i].row);
    EXPECT_EQ(back->entries[i].col, lp.entries[i].col);
    EXPECT_DOUBLE_EQ(back->entries[i].value, lp.entries[i].value);
  }
  for (int32_t i = 0; i < lp.num_rows; ++i) {
    EXPECT_DOUBLE_EQ(back->b[i], lp.b[i]);
  }
}

TEST(LpIoTest, MissingFile) {
  EXPECT_EQ(ReadLpText("/no/such/file.lp").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace qsc
