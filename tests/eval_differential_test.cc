// Tests for the differential runner: every builtin workload passes its
// area's invariant suite under several seeds, the adversarial Example-7
// network exercises the Theorem-6 gap without violating the bound
// directions, and the report machinery itself (check counting, summary
// formatting) behaves.

#include "qsc/eval/differential.h"

#include <gtest/gtest.h>

#include "qsc/eval/suites.h"
#include "qsc/eval/workload.h"
#include "qsc/graph/generators.h"
#include "qsc/lp/generators.h"

namespace qsc {
namespace eval {
namespace {

TEST(DifferentialRunnerTest, AllBuiltinWorkloadsPassUnderMultipleSeeds) {
  RegisterBuiltinWorkloads();
  for (const uint64_t seed : {1ull, 42ull, 987654321ull}) {
    EvalOptions options;
    options.seed = seed;
    const DifferentialRunner runner(options);
    for (const Workload* w : WorkloadRegistry::Global().List()) {
      const DifferentialReport report = runner.Check(*w);
      EXPECT_TRUE(report.ok())
          << w->name() << " seed " << seed << ": " << report.Summary();
      EXPECT_GT(report.checks, 0) << w->name();
      EXPECT_EQ(report.workload, w->name());
      EXPECT_EQ(report.seed, seed);
      EXPECT_EQ(report.area, w->area());
    }
  }
}

TEST(DifferentialRunnerTest, GeometricSplitMeanAlsoPasses) {
  RegisterBuiltinWorkloads();
  EvalOptions options;
  options.seed = 5;
  options.split_mean = RothkoOptions::SplitMean::kGeometric;
  const DifferentialRunner runner(options);
  for (const char* name : {"maxflow/grid", "centrality/ba"}) {
    const Workload* w = WorkloadRegistry::Global().Find(name);
    ASSERT_NE(w, nullptr);
    const DifferentialReport report = runner.Check(*w);
    EXPECT_TRUE(report.ok()) << name << ": " << report.Summary();
  }
}

TEST(DifferentialRunnerTest, LayeredDiagonalExercisesTheoremSixGap) {
  // Example 7 / Figure 4: the c^2 upper bound is far above the true flow
  // and the c^1 lower bound far below — the bound *directions* must still
  // hold even when the gap is maximal.
  EvalOptions options;
  options.compute_flow_lower_bound = true;
  const DifferentialRunner runner(options);
  const DifferentialReport report =
      runner.CheckMaxFlow(LayeredDiagonalNetwork(6, 12), {4, 8});
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(DifferentialRunnerTest, TallLpFamilyPassesChecks) {
  // CheckLp always runs BOTH oracles (that is the differential), so
  // EvalOptions::lp_oracle is irrelevant here; this covers the tall
  // (rows >> cols) generator family the builtin workloads skip.
  const DifferentialRunner runner(EvalOptions{});
  const DifferentialReport report =
      runner.CheckLp(MakeTallLp(4, 21), {8, 16});
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(DifferentialReportTest, SummaryFormatsViolations) {
  DifferentialReport report;
  report.checks = 12;
  EXPECT_EQ(report.Summary(), "12 checks, 0 violations");
  EXPECT_TRUE(report.ok());

  report.violations.push_back({"flow/solver-agreement", "Dinic 3 vs EK 4"});
  EXPECT_FALSE(report.ok());
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("1 violation(s) in 12 checks"), std::string::npos);
  EXPECT_NE(summary.find("[flow/solver-agreement] Dinic 3 vs EK 4"),
            std::string::npos);
}

}  // namespace
}  // namespace eval
}  // namespace qsc
