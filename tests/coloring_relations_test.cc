// Tests for the alternative similarity relations of paper Sec 3.1:
// epsilon-relative coloring error and the bisimulation relation.

#include <gtest/gtest.h>

#include <cmath>

#include "qsc/coloring/q_error.h"
#include "qsc/coloring/stable.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

TEST(RelativeErrorTest, StableColoringHasZeroRelativeError) {
  Rng rng(1);
  const Graph g = ErdosRenyiGnm(40, 120, rng);
  const Partition p = StableColoring(g);
  EXPECT_DOUBLE_EQ(ComputeRelativeError(g, p), 0.0);
}

TEST(RelativeErrorTest, RatioBecomesLogEps) {
  // Weights 2 and 6 toward the same color: eps = ln 3.
  const Graph g =
      Graph::FromEdges(4, {{0, 2, 2.0}, {1, 2, 6.0}}, false);
  // In-direction at node 2 is within one color; nodes 2,3: node 3 has no
  // in-edge -> that pair is (0,0,2)... keep 3 isolated in its own color.
  const Partition p = Partition::FromColorIds({0, 0, 1, 2});
  EXPECT_NEAR(ComputeRelativeError(g, p), std::log(3.0), 1e-12);
}

TEST(RelativeErrorTest, MissingEdgeIsInfinite) {
  // Zero is similar only to itself (paper Sec 3.1): node 1 has no edge.
  const Graph g = Graph::FromEdges(3, {{0, 2, 1.0}}, false);
  const Partition p = Partition::FromColorIds({0, 0, 1});
  EXPECT_TRUE(std::isinf(ComputeRelativeError(g, p)));
}

TEST(RelativeErrorTest, Figure6Quantities) {
  // Paper Figure 6's quantitative claim, in weighted form: bottom nodes
  // with total weights n, n+1, n+2 toward the top. Grouping {n, n+1}
  // leaves absolute error 1 (a maximal 1-stable split) and relative error
  // ln((n+1)/n) <= 1/n (a maximal 1/n-relative split); grouping
  // {n+1, n+2} is the other maximal choice.
  const int n = 10;
  for (int group_start : {0, 1}) {
    const Graph g = Graph::FromEdges(4,
                                     {{0, 3, static_cast<double>(n)},
                                      {1, 3, static_cast<double>(n + 1)},
                                      {2, 3, static_cast<double>(n + 2)}},
                                     false);
    std::vector<int32_t> labels{2, 2, 2, 9};
    labels[group_start] = 0;
    labels[group_start + 1] = 0;
    labels[(group_start + 2) % 3] = 1;
    const Partition p = Partition::FromColorIds(labels);
    EXPECT_DOUBLE_EQ(ComputeQError(g, p).max_q, 1.0);
    const double eps = ComputeRelativeError(g, p);
    EXPECT_LE(eps, 1.0 / n);
    EXPECT_GT(eps, 0.0);
  }
}

TEST(BisimulationTest, IgnoresMultiplicity) {
  // Star with different leaf counts per hub: hubs 0 and 1 have 2 and 3
  // leaves. Stable coloring separates the hubs (different counts);
  // bisimulation keeps them together (same presence profile).
  const Graph g = Graph::FromEdges(7,
                                   {{0, 2, 1.0},
                                    {0, 3, 1.0},
                                    {1, 4, 1.0},
                                    {1, 5, 1.0},
                                    {1, 6, 1.0}},
                                   false);
  const Partition stable = StableColoring(g);
  EXPECT_NE(stable.ColorOf(0), stable.ColorOf(1));
  const Partition bisim = BisimulationColoring(g);
  EXPECT_EQ(bisim.ColorOf(0), bisim.ColorOf(1));
  EXPECT_EQ(bisim.ColorOf(2), bisim.ColorOf(6));
  EXPECT_EQ(bisim.num_colors(), 2);
}

TEST(BisimulationTest, CoarserThanStable) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = BarabasiAlbert(80, 2, rng);
    const Partition stable = StableColoring(g);
    const Partition bisim = BisimulationColoring(g);
    EXPECT_TRUE(stable.IsRefinementOf(bisim)) << trial;
  }
}

TEST(BisimulationTest, DirectedChainSeparatesByDepth) {
  // 0 -> 1 -> 2: distinct colors (source/middle/sink presence profiles).
  const Graph g = Graph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}}, false);
  EXPECT_EQ(BisimulationColoring(g).num_colors(), 3);
}

TEST(BisimulationTest, RegularGraphOneColor) {
  EXPECT_EQ(BisimulationColoring(CycleGraph(8)).num_colors(), 1);
}

TEST(BisimulationTest, WeightsIrrelevant) {
  const Graph weighted = Graph::FromEdges(
      4, {{0, 1, 5.0}, {2, 3, 0.25}}, true);
  const Partition bisim = BisimulationColoring(weighted);
  // All four nodes have one neighbor in the same (single) class.
  EXPECT_EQ(bisim.num_colors(), 1);
}

}  // namespace
}  // namespace qsc
