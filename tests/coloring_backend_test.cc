// The compression-backend registry and the ColoringBackend contract
// (src/qsc/coloring/backend.h): canonical-name handling, the three builtin
// registrations, and — per backend — the monotone anytime Step(), strict
// color growth, cap truncation, resume-equals-fresh determinism, and
// MemoryBytes accounting the ColoringCache depends on.

#include "qsc/coloring/backend.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qsc/coloring/partition.h"
#include "qsc/coloring/q_error.h"
#include "qsc/coloring/rothko.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/util/random.h"

#include "rothko_corpus.h"

namespace qsc {
namespace {

Graph DenseTestGraph(uint64_t seed = 3, bool directed = true) {
  return testing_corpus::CorpusGraph(seed, directed);
}

std::unique_ptr<ColoringBackend> Make(const std::string& name, const Graph& g,
                                      const ColoringParams& params = {}) {
  return ColoringBackendRegistry::Global().Create(
      name, g, Partition::Trivial(g.num_nodes()), params);
}

// --- canonical names ------------------------------------------------------

TEST(BackendNameTest, CanonicalizesTrimAndCase) {
  struct Case {
    const char* raw;
    const char* canonical;
  };
  const Case cases[] = {
      {"rothko", "rothko"},
      {"  Rothko  ", "rothko"},
      {"LP-Rounding", "lp-rounding"},
      {"\tbucket\n", "bucket"},
      {"", "rothko"},  // "" means the default backend
      {"a0_b-c9", "a0_b-c9"},
  };
  for (const Case& c : cases) {
    const StatusOr<std::string> got = CanonicalBackendName(c.raw);
    ASSERT_TRUE(got.ok()) << c.raw;
    EXPECT_EQ(*got, c.canonical) << c.raw;
  }
}

TEST(BackendNameTest, RejectsMalformedNames) {
  const std::vector<std::string> bad = {
      "bogus!",         // non-name character
      "-rothko",        // leading dash
      "_rothko",        // leading underscore
      "two words",      // interior whitespace
      "caf\xc3\xa9",    // non-ASCII
      std::string(65, 'a'),  // over the 64-char cap
  };
  for (const std::string& name : bad) {
    const StatusOr<std::string> got = CanonicalBackendName(name);
    ASSERT_FALSE(got.ok()) << name;
    EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument) << name;
  }
}

// --- registry -------------------------------------------------------------

TEST(BackendRegistryTest, BuiltinsAreRegistered) {
  ColoringBackendRegistry& registry = ColoringBackendRegistry::Global();
  EXPECT_TRUE(registry.Contains("rothko"));
  EXPECT_TRUE(registry.Contains("lp-rounding"));
  EXPECT_TRUE(registry.Contains("bucket"));
  EXPECT_TRUE(registry.Contains(kDefaultColoringBackend));
  EXPECT_FALSE(registry.Contains("no-such-backend"));

  const std::vector<std::string> names = registry.Names();
  ASSERT_GE(names.size(), 3u);
  for (size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);  // sorted, unique
  }
  for (const std::string& name : names) {
    EXPECT_FALSE(registry.Description(name).empty()) << name;
  }
}

TEST(BackendRegistryTest, DefaultFactoryProducesTheRothkoRefiner) {
  const Graph g = DenseTestGraph();
  const std::unique_ptr<ColoringBackend> backend =
      Make(kDefaultColoringBackend, g);
  EXPECT_NE(dynamic_cast<RothkoRefiner*>(backend.get()), nullptr);
}

// --- the ColoringBackend contract, per registered backend -----------------

class BackendContractTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendContractTest,
    ::testing::ValuesIn(ColoringBackendRegistry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-' || c == '_') c = '0';
      }
      return name;
    });

TEST_P(BackendContractTest, InitialErrorDescribesTheInitialPartition) {
  const Graph g = DenseTestGraph();
  const std::unique_ptr<ColoringBackend> backend = Make(GetParam(), g);
  // A dense random graph is nowhere near stable under the trivial
  // partition, and the backend must report that before the first Step().
  EXPECT_GT(backend->CurrentMaxError(), 0.0);
  EXPECT_EQ(backend->partition().num_colors(), 1);
}

TEST_P(BackendContractTest, UncappedStepsAreMonotoneAndGrowColors) {
  for (const bool directed : {false, true}) {
    const Graph g = DenseTestGraph(5, directed);
    const std::unique_ptr<ColoringBackend> backend = Make(GetParam(), g);
    double prev_error = backend->CurrentMaxError();
    ColorId prev_colors = backend->partition().num_colors();
    for (int step = 0; step < 25 && backend->Step(); ++step) {
      EXPECT_LE(backend->CurrentMaxError(), prev_error + 1e-9);
      EXPECT_GT(backend->partition().num_colors(), prev_colors);
      prev_error = backend->CurrentMaxError();
      prev_colors = backend->partition().num_colors();
    }
    // The reported error is the real q-error of the current partition.
    EXPECT_NEAR(backend->CurrentMaxError(),
                ComputeQError(g, backend->partition()).max_q, 1e-9);
  }
}

TEST_P(BackendContractTest, ColorCapTruncatesTheContinuation) {
  const Graph g = DenseTestGraph(7);
  const std::unique_ptr<ColoringBackend> backend = Make(GetParam(), g);
  const ColorId cap = 12;
  while (backend->partition().num_colors() < cap && backend->Step(cap)) {
  }
  EXPECT_LE(backend->partition().num_colors(), cap);
  EXPECT_EQ(backend->partition().num_colors(), cap);  // dense: cap reached
}

TEST_P(BackendContractTest, ResumeEqualsFresh) {
  // The cache-continuation property: refining to 12 colors and then on to
  // 24 must land on the identical partition as refining straight to 24 —
  // every split is a function of the current partition only.
  for (const bool directed : {false, true}) {
    const Graph g = DenseTestGraph(9, directed);

    const std::unique_ptr<ColoringBackend> fresh = Make(GetParam(), g);
    while (fresh->partition().num_colors() < 24 && fresh->Step(24)) {
    }

    const std::unique_ptr<ColoringBackend> resumed = Make(GetParam(), g);
    while (resumed->partition().num_colors() < 12 && resumed->Step(12)) {
    }
    while (resumed->partition().num_colors() < 24 && resumed->Step(24)) {
    }

    ASSERT_EQ(fresh->partition().num_colors(), resumed->partition().num_colors());
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(fresh->partition().ColorOf(v), resumed->partition().ColorOf(v));
    }
    EXPECT_EQ(fresh->CurrentMaxError(), resumed->CurrentMaxError());
  }
}

TEST_P(BackendContractTest, QToleranceStopsRefinement) {
  const Graph g = DenseTestGraph(11);
  ColoringParams params;
  const std::unique_ptr<ColoringBackend> reference = Make(GetParam(), g);
  params.q_tolerance = reference->CurrentMaxError() / 2.0;
  const std::unique_ptr<ColoringBackend> backend = Make(GetParam(), g, params);
  while (backend->Step()) {
  }
  // Step() returned false: either the tolerance was met or the partition
  // went fully stable; in both cases the error honors the tolerance.
  EXPECT_LE(backend->CurrentMaxError(), params.q_tolerance + 1e-9);
}

TEST_P(BackendContractTest, MemoryBytesIsPositiveAndTracksThePartition) {
  const Graph g = DenseTestGraph(13);
  const std::unique_ptr<ColoringBackend> backend = Make(GetParam(), g);
  const int64_t before = backend->MemoryBytes();
  EXPECT_GT(before, 0);
  for (int step = 0; step < 5 && backend->Step(); ++step) {
  }
  // Accounting covers at least the partition snapshot the backend owns.
  EXPECT_GE(backend->MemoryBytes(), backend->partition().MemoryBytes());
}

TEST(BackendDistinctnessTest, KernelsProduceDistinctColorings) {
  // The three builtins implement genuinely different split rules; on a
  // rough random graph they should not all collapse to the same partition
  // at a mid-range budget. (rothko vs bucket is the sharpest contrast:
  // witness-mean split vs degree median-rank split.)
  const Graph g = DenseTestGraph(2);
  auto color_to = [&g](const std::string& name, ColorId budget) {
    const std::unique_ptr<ColoringBackend> backend = Make(name, g);
    while (backend->partition().num_colors() < budget &&
           backend->Step(budget)) {
    }
    return backend->partition();
  };
  const Partition rothko = color_to("rothko", 16);
  const Partition bucket = color_to("bucket", 16);
  bool differs = rothko.num_colors() != bucket.num_colors();
  for (NodeId v = 0; !differs && v < g.num_nodes(); ++v) {
    differs = rothko.ColorOf(v) != bucket.ColorOf(v);
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace qsc
