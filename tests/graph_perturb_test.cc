#include "qsc/graph/perturb.h"

#include <gtest/gtest.h>

#include "qsc/graph/generators.h"

namespace qsc {
namespace {

TEST(AddRandomEdgesTest, CountsAndContainment) {
  Rng rng(1);
  const Graph g = ErdosRenyiGnm(40, 100, rng);
  const Graph h = AddRandomEdges(g, 25, rng);
  EXPECT_EQ(h.num_edges(), 125);
  EXPECT_TRUE(h.undirected());
  // Every original edge survives.
  for (const EdgeTriple& a : g.Arcs()) {
    EXPECT_TRUE(h.HasArc(a.src, a.dst));
  }
}

TEST(AddRandomEdgesTest, NoDuplicatesOrLoops) {
  Rng rng(2);
  const Graph g = CompleteGraph(8);  // only 28 possible edges, all present
  const Graph h = AddRandomEdges(g, 0, rng);
  EXPECT_EQ(h.num_edges(), 28);
}

TEST(AddRandomEdgesTest, DirectedGraph) {
  Rng rng(3);
  const Graph g = Graph::FromEdges(5, {{0, 1, 1.0}, {1, 2, 1.0}}, false);
  const Graph h = AddRandomEdges(g, 5, rng);
  EXPECT_EQ(h.num_arcs(), 7);
  EXPECT_FALSE(h.undirected());
  for (NodeId v = 0; v < h.num_nodes(); ++v) {
    EXPECT_FALSE(h.HasArc(v, v));
  }
}

TEST(RemoveRandomEdgesTest, Counts) {
  Rng rng(4);
  const Graph g = ErdosRenyiGnm(40, 100, rng);
  const Graph h = RemoveRandomEdges(g, 30, rng);
  EXPECT_EQ(h.num_edges(), 70);
  // Every remaining edge came from g.
  for (const EdgeTriple& a : h.Arcs()) {
    EXPECT_TRUE(g.HasArc(a.src, a.dst));
  }
}

TEST(RemoveRandomEdgesTest, RemoveAll) {
  Rng rng(5);
  const Graph g = CycleGraph(10);
  const Graph h = RemoveRandomEdges(g, 10, rng);
  EXPECT_EQ(h.num_edges(), 0);
  EXPECT_EQ(h.num_nodes(), 10);
}

TEST(RemoveRandomEdgesTest, TooManyDies) {
  Rng rng(6);
  const Graph g = CycleGraph(10);
  EXPECT_DEATH(RemoveRandomEdges(g, 11, rng), "QSC_CHECK");
}

}  // namespace
}  // namespace qsc
