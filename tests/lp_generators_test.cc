#include "qsc/lp/generators.h"

#include <gtest/gtest.h>

#include <vector>

#include "qsc/lp/simplex.h"

namespace qsc {
namespace {

TEST(BlockLpTest, DimensionsMatchSpec) {
  BlockLpSpec spec;
  spec.num_row_groups = 3;
  spec.num_col_groups = 4;
  spec.rows_per_group = 5;
  spec.cols_per_group = 6;
  const LpProblem lp = MakeBlockLp(spec);
  EXPECT_EQ(lp.num_rows, 15);
  EXPECT_EQ(lp.num_cols, 24);
  EXPECT_TRUE(ValidateLp(lp).ok());
}

TEST(BlockLpTest, WellBehaved) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    BlockLpSpec spec;
    spec.seed = seed;
    const LpProblem lp = MakeBlockLp(spec);
    // b > 0 (x = 0 strictly feasible) and c > 0.
    for (double v : lp.b) EXPECT_GT(v, 0.0);
    for (double v : lp.c) EXPECT_GT(v, 0.0);
    // Every column has a positive entry somewhere (boundedness).
    std::vector<bool> covered(lp.num_cols, false);
    for (const LpEntry& e : lp.entries) {
      if (e.value > 0.0) covered[e.col] = true;
    }
    for (int32_t j = 0; j < lp.num_cols; ++j) {
      EXPECT_TRUE(covered[j]) << "col " << j << " seed " << seed;
    }
  }
}

TEST(BlockLpTest, SolvableAndBounded) {
  BlockLpSpec spec;
  spec.seed = 3;
  const LpProblem lp = MakeBlockLp(spec);
  const LpResult r = SolveSimplex(lp);
  EXPECT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_GT(r.objective, 0.0);
}

TEST(BlockLpTest, Deterministic) {
  BlockLpSpec spec;
  spec.seed = 7;
  const LpProblem a = MakeBlockLp(spec);
  const LpProblem b = MakeBlockLp(spec);
  ASSERT_EQ(a.entries.size(), b.entries.size());
  for (size_t i = 0; i < a.entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.entries[i].value, b.entries[i].value);
  }
}

TEST(StandInTest, QapShapeWide) {
  const LpProblem lp = MakeQapLikeLp(6, 1);
  EXPECT_EQ(lp.num_rows, 6 * 12);
  EXPECT_EQ(lp.num_cols, 6 * 42);
  EXPECT_GT(lp.num_cols, 3 * lp.num_rows);  // qap15 is ~3.5x wide
}

TEST(StandInTest, NugentShapeSquare) {
  const LpProblem lp = MakeNugentLikeLp(6, 1);
  EXPECT_EQ(lp.num_rows, lp.num_cols);
}

TEST(StandInTest, SupportShapeVeryWide) {
  const LpProblem lp = MakeWideSupportLp(5, 1);
  EXPECT_GT(lp.num_cols, 10 * lp.num_rows);  // supportcase10 is ~130x wide
}

TEST(StandInTest, TallShape) {
  const LpProblem lp = MakeTallLp(5, 1);
  EXPECT_GT(lp.num_rows, 2 * lp.num_cols);  // ex10 is ~4x tall
}

TEST(Figure3LpTest, MatchesPaperText) {
  const LpProblem lp = Figure3Lp();
  EXPECT_EQ(lp.num_rows, 5);
  EXPECT_EQ(lp.num_cols, 3);
  EXPECT_EQ(lp.NumNonzeros(), 15);
  EXPECT_DOUBLE_EQ(lp.b[3], 50.0);
  EXPECT_DOUBLE_EQ(lp.c[2], 50.0);
}

}  // namespace
}  // namespace qsc
