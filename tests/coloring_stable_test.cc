#include "qsc/coloring/stable.h"

#include <gtest/gtest.h>

#include "qsc/coloring/q_error.h"
#include "qsc/graph/datasets.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

TEST(StableColoringTest, RegularGraphIsOneColor) {
  // Every node of a cycle has the same degree profile: coarsest stable
  // coloring is the trivial partition.
  const Partition p = StableColoring(CycleGraph(8));
  EXPECT_EQ(p.num_colors(), 1);
  EXPECT_TRUE(IsStableColoring(CycleGraph(8), p));
}

TEST(StableColoringTest, CompleteGraphIsOneColor) {
  EXPECT_EQ(StableColoring(CompleteGraph(6)).num_colors(), 1);
}

TEST(StableColoringTest, StarSplitsHubFromLeaves) {
  const Graph g = StarGraph(5);
  const Partition p = StableColoring(g);
  EXPECT_EQ(p.num_colors(), 2);
  EXPECT_EQ(p.ColorSize(p.ColorOf(0)), 1);  // hub alone
  EXPECT_TRUE(IsStableColoring(g, p));
}

TEST(StableColoringTest, PathColorsByDistanceToEnds) {
  // P5: colors {0,4}, {1,3}, {2}.
  const Partition p = StableColoring(PathGraph(5));
  EXPECT_EQ(p.num_colors(), 3);
  EXPECT_EQ(p.ColorOf(0), p.ColorOf(4));
  EXPECT_EQ(p.ColorOf(1), p.ColorOf(3));
  EXPECT_NE(p.ColorOf(0), p.ColorOf(2));
  EXPECT_NE(p.ColorOf(1), p.ColorOf(2));
}

TEST(StableColoringTest, PathEvenLength) {
  // P4: {0,3}, {1,2}.
  const Partition p = StableColoring(PathGraph(4));
  EXPECT_EQ(p.num_colors(), 2);
  EXPECT_EQ(p.ColorOf(0), p.ColorOf(3));
  EXPECT_EQ(p.ColorOf(1), p.ColorOf(2));
}

TEST(StableColoringTest, KarateClubMatchesPaperFigure1) {
  // The paper reports 27 colors for the stable coloring of the karate
  // club graph.
  const Graph g = KarateClub();
  const Partition p = StableColoring(g);
  EXPECT_EQ(p.num_colors(), 27);
  EXPECT_TRUE(IsStableColoring(g, p));
}

TEST(StableColoringTest, ResultIsAlwaysStable) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = ErdosRenyiGnm(60, 150 + 30 * trial, rng);
    const Partition p = StableColoring(g);
    EXPECT_TRUE(IsStableColoring(g, p)) << "trial " << trial;
  }
}

TEST(StableColoringTest, RandomGraphShattersToSingletons) {
  // Paper Sec 2 / [30, Sec 3.3]: random graphs have discrete stable
  // colorings with high probability.
  Rng rng(4);
  const Graph g = ErdosRenyiGnm(100, 600, rng);
  const Partition p = StableColoring(g);
  EXPECT_GT(p.num_colors(), 95);
}

TEST(StableColoringTest, BlockBiregularCompresses) {
  // The Figure-2 synthetic graph compresses to ~num_groups colors.
  Rng rng(5);
  const Graph g = BlockBiregularGraph(20, 8, 40, rng);
  const Partition p = StableColoring(g);
  EXPECT_LE(p.num_colors(), 20 + 2);
  EXPECT_TRUE(IsStableColoring(g, p));
}

TEST(StableColoringTest, RefinesInitialPartition) {
  const Graph g = CycleGraph(6);
  // Force nodes {0} vs rest apart initially.
  const Partition initial = Partition::FromColorIds({0, 1, 1, 1, 1, 1});
  const Partition p = StableColoring(g, initial);
  EXPECT_TRUE(p.IsRefinementOf(initial));
  EXPECT_TRUE(IsStableColoring(g, p));
  // Symmetry around node 0: nodes 1 and 5 pair up, 2 and 4 pair up.
  EXPECT_EQ(p.ColorOf(1), p.ColorOf(5));
  EXPECT_EQ(p.ColorOf(2), p.ColorOf(4));
  EXPECT_EQ(p.num_colors(), 4);
}

TEST(StableColoringTest, WeightsDistinguish) {
  // Two nodes with equal degree but different incident weights must split.
  const Graph g = Graph::FromEdges(
      4, {{0, 1, 1.0}, {2, 3, 2.0}}, true);
  const Partition p = StableColoring(g);
  EXPECT_NE(p.ColorOf(0), p.ColorOf(2));
  EXPECT_EQ(p.ColorOf(0), p.ColorOf(1));
  EXPECT_EQ(p.ColorOf(2), p.ColorOf(3));
}

TEST(StableColoringTest, DirectionMatters) {
  // Directed path 0 -> 1 -> 2: all three nodes differ (source, middle,
  // sink).
  const Graph g = Graph::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}}, false);
  const Partition p = StableColoring(g);
  EXPECT_EQ(p.num_colors(), 3);
}

TEST(StableColoringTest, DirectedCycleIsOneColor) {
  std::vector<EdgeTriple> arcs;
  for (NodeId i = 0; i < 6; ++i) {
    arcs.push_back({i, static_cast<NodeId>((i + 1) % 6), 1.0});
  }
  const Graph g = Graph::FromEdges(6, arcs, false);
  EXPECT_EQ(StableColoring(g).num_colors(), 1);
}

TEST(StableColoringTest, CoarsestAmongTested) {
  // The coarsest stable coloring must be no finer than any hand-built
  // stable coloring. For the complete bipartite graph K_{2,3} the
  // two-sides partition is stable, and so is the coarsest one.
  const Graph g = CompleteBipartiteGraph(2, 3);
  const Partition sides = Partition::FromColorIds({0, 0, 1, 1, 1});
  EXPECT_TRUE(IsStableColoring(g, sides));
  const Partition coarsest = StableColoring(g);
  EXPECT_TRUE(sides.IsRefinementOf(coarsest));
  EXPECT_EQ(coarsest.num_colors(), 2);
}

TEST(StableColoringTest, Figure5NodesShareColor) {
  // The counterexample: u (6-cycle) and v (triangle) share the stable
  // color because every node is 2-regular.
  const auto ce = Figure5Graph();
  const Partition p = StableColoring(ce.graph);
  EXPECT_EQ(p.num_colors(), 1);
  EXPECT_EQ(p.ColorOf(ce.u), p.ColorOf(ce.v));
}

}  // namespace
}  // namespace qsc
