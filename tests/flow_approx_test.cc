#include "qsc/flow/approx_flow.h"

#include <gtest/gtest.h>

#include "qsc/coloring/q_error.h"
#include "qsc/coloring/reduced_graph.h"
#include "qsc/coloring/stable.h"
#include "qsc/flow/dinic.h"
#include "qsc/flow/uniform_flow.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

TEST(ApproxFlowTest, UpperBoundHolds) {
  Rng rng(1);
  const FlowInstance inst = GridFlowNetwork(10, 6, 10, 20, rng);
  const double exact = MaxFlowDinic(inst.graph, inst.source, inst.sink);
  FlowApproxOptions options;
  options.rothko.max_colors = 12;
  const FlowApproxResult approx =
      ApproximateMaxFlow(inst.graph, inst.source, inst.sink, options);
  EXPECT_GE(approx.upper_bound, exact - 1e-6);
}

TEST(ApproxFlowTest, LowerBoundHolds) {
  Rng rng(2);
  const FlowInstance inst = GridFlowNetwork(6, 4, 8, 10, rng);
  const double exact = MaxFlowDinic(inst.graph, inst.source, inst.sink);
  FlowApproxOptions options;
  options.rothko.max_colors = 10;
  options.compute_lower_bound = true;
  const FlowApproxResult approx =
      ApproximateMaxFlow(inst.graph, inst.source, inst.sink, options);
  EXPECT_LE(approx.lower_bound, exact + 1e-4);
  EXPECT_LE(approx.lower_bound, approx.upper_bound + 1e-4);
}

TEST(ApproxFlowTest, TerminalsPinnedToSingletons) {
  Rng rng(3);
  const FlowInstance inst = GridFlowNetwork(8, 5, 10, 10, rng);
  FlowApproxOptions options;
  options.rothko.max_colors = 8;
  const FlowApproxResult approx =
      ApproximateMaxFlow(inst.graph, inst.source, inst.sink, options);
  const Partition& p = approx.coloring;
  EXPECT_EQ(p.ColorSize(p.ColorOf(inst.source)), 1);
  EXPECT_EQ(p.ColorSize(p.ColorOf(inst.sink)), 1);
  EXPECT_EQ(approx.num_colors, 8);
}

TEST(ApproxFlowTest, ExactWhenColoringIsDiscrete) {
  // With enough colors the coloring refines to singletons and the reduced
  // graph is the original: the bound becomes exact.
  Rng rng(4);
  const FlowInstance inst = GridFlowNetwork(4, 3, 6, 8, rng);
  const double exact = MaxFlowDinic(inst.graph, inst.source, inst.sink);
  FlowApproxOptions options;
  options.rothko.max_colors = inst.graph.num_nodes();
  const FlowApproxResult approx =
      ApproximateMaxFlow(inst.graph, inst.source, inst.sink, options);
  EXPECT_NEAR(approx.upper_bound, exact, 1e-6);
}

TEST(ApproxFlowTest, StableColoringBoundsCoincide) {
  // Corollary 9(2): on a stable coloring c^1 = c^2, so the lower and upper
  // bounds agree and equal the true max-flow. Build a network whose
  // stable coloring is coarse: layered complete-bipartite blocks.
  std::vector<EdgeTriple> arcs;
  // s(8) -> layer A {0..2} -> layer B {3..6} -> t(9), complete between
  // consecutive layers, unit capacities.
  for (NodeId a = 0; a < 3; ++a) arcs.push_back({8, a, 1.0});
  for (NodeId a = 0; a < 3; ++a) {
    for (NodeId b = 3; b < 7; ++b) arcs.push_back({a, b, 1.0});
  }
  for (NodeId b = 3; b < 7; ++b) arcs.push_back({b, 9, 1.0});
  const Graph g = Graph::FromEdges(10, arcs, false);
  const double exact = MaxFlowDinic(g, 8, 9);
  EXPECT_DOUBLE_EQ(exact, 3.0);

  FlowApproxOptions options;
  options.rothko.max_colors = 64;  // refine to stable (q = 0)
  options.rothko.q_tolerance = 0.0;
  options.compute_lower_bound = true;
  const FlowApproxResult approx = ApproximateMaxFlow(g, 8, 9, options);
  EXPECT_NEAR(approx.upper_bound, exact, 1e-5);
  EXPECT_NEAR(approx.lower_bound, exact, 1e-5);
}

TEST(ApproxFlowTest, PathologicalGapExample7) {
  // Figure 4: the layer coloring is q-stable with q = 1, yet its c^2 upper
  // bound is ~layer_width while the true flow is 2 and the uniform-flow
  // lower bound collapses to 0 between layers.
  const int32_t layers = 5;
  const int32_t width = layers + 1;
  const FlowInstance inst = LayeredDiagonalNetwork(layers, width);
  const double exact = MaxFlowDinic(inst.graph, inst.source, inst.sink);
  EXPECT_DOUBLE_EQ(exact, 2.0);

  // The layer coloring (paper Figure 4): source, layers, sink.
  std::vector<int32_t> labels(inst.graph.num_nodes());
  for (int32_t layer = 0; layer < layers; ++layer) {
    for (int32_t i = 0; i < width; ++i) {
      labels[layer * width + i] = layer + 1;
    }
  }
  labels[inst.source] = 0;
  labels[inst.sink] = layers + 1;
  const Partition p = Partition::FromColorIds(labels);
  EXPECT_LE(ComputeQError(inst.graph, p).max_q, 1.0);

  // c^2 upper bound: the reduced graph bottleneck is width - 1 >> 2.
  const Graph reduced =
      BuildReducedGraph(inst.graph, p, ReducedWeight::kSum);
  const double upper = MaxFlowDinic(reduced, p.ColorOf(inst.source),
                                    p.ColorOf(inst.sink));
  EXPECT_DOUBLE_EQ(upper, width - 1.0);

  // c^1 lower bound: maxUFlow between consecutive layers is 0, so the
  // lower-bound network is disconnected.
  const double c1 = MaxUniformFlow(
      inst.graph, p.Members(1), p.Members(2), 1e-6);
  EXPECT_NEAR(c1, 0.0, 1e-4);
}

TEST(ApproxFlowTest, MoreColorsTightenUpperBound) {
  Rng rng(6);
  const FlowInstance inst = GridFlowNetwork(12, 6, 10, 14, rng);
  const double exact = MaxFlowDinic(inst.graph, inst.source, inst.sink);
  double prev_err = 1e18;
  for (ColorId k : {4, 16, 64}) {
    FlowApproxOptions options;
    options.rothko.max_colors = k;
    const FlowApproxResult approx =
        ApproximateMaxFlow(inst.graph, inst.source, inst.sink, options);
    const double err = approx.upper_bound / exact;
    EXPECT_GE(err, 1.0 - 1e-9);
    EXPECT_LE(err, prev_err * 1.25 + 1e-9) << "k=" << k;
    prev_err = err;
  }
}

}  // namespace
}  // namespace qsc
