// Bench-JSON schema stability: the report writer emits schema-versioned
// documents whose "params"/"counters" sections are functions of
// (scenario, seed) alone — rerunning a scenario at a fixed seed must
// reproduce identical metric values (timings excluded), and the emitted
// JSON must parse back via the harness's own parser with the expected
// structure.

#include "qsc/bench/report.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "qsc/bench/compare.h"
#include "qsc/bench/scenario.h"

namespace qsc {
namespace bench {
namespace {

// A cheap deterministic scenario (no graph work) for structural tests.
Scenario TinyScenario() {
  Scenario::Info info;
  info.name = "test/tiny";
  info.group = "testgroup";
  info.description = "deterministic test scenario";
  info.smoke = true;
  return Scenario(std::move(info), [](const BenchContext& ctx) {
    ScenarioResult r;
    r.params = {{"size", 7.0}};
    r.counters = {{"value", static_cast<double>(ctx.seed) * 1.5}};
    r.timing = MeasureSeconds(ctx.measure, [] {});
    return r;
  });
}

BenchContext FastContext() {
  BenchContext ctx;
  ctx.measure.warmup = 0;
  ctx.measure.repeats = 1;
  return ctx;
}

TEST(BenchReportTest, GroupJsonParsesBackWithSchemaFields) {
  BenchReport report;
  report.suite = "custom";
  report.seed = 11;
  report.measure = FastContext().measure;
  BenchContext ctx = FastContext();
  ctx.seed = 11;
  report.results.push_back(TinyScenario().Run(ctx));

  const std::string json = ReportGroupJson(report, "testgroup", true);
  JsonValue doc;
  ASSERT_TRUE(ParseJson(json, &doc).ok()) << json;
  EXPECT_EQ(doc.Get("tool")->StringOr(""), "qsc_bench");
  EXPECT_EQ(doc.Get("schema_version")->NumberOr(-1), kBenchSchemaVersion);
  EXPECT_EQ(doc.Get("group")->StringOr(""), "testgroup");
  EXPECT_EQ(doc.Get("seed")->NumberOr(-1), 11);
  ASSERT_NE(doc.Get("scenarios"), nullptr);
  ASSERT_EQ(doc.Get("scenarios")->array.size(), 1u);
  const JsonValue& s = doc.Get("scenarios")->array[0];
  EXPECT_EQ(s.Get("name")->StringOr(""), "test/tiny");
  EXPECT_EQ(s.Get("params")->Get("size")->NumberOr(-1), 7.0);
  EXPECT_EQ(s.Get("counters")->Get("value")->NumberOr(-1), 16.5);
  ASSERT_NE(s.Get("timing"), nullptr);
  EXPECT_EQ(s.Get("timing")->Get("repeats")->NumberOr(-1), 1);
}

TEST(BenchReportTest, ScenariosAreSortedByNameRegardlessOfRunOrder) {
  BenchReport report;
  report.suite = "custom";
  BenchContext ctx = FastContext();
  ScenarioResult b = TinyScenario().Run(ctx);
  b.name = "test/b";
  ScenarioResult a = TinyScenario().Run(ctx);
  a.name = "test/a";
  report.results.push_back(std::move(b));
  report.results.push_back(std::move(a));

  JsonValue doc;
  ASSERT_TRUE(ParseJson(ReportGroupJson(report, "testgroup", false), &doc)
                  .ok());
  const auto& scenarios = doc.Get("scenarios")->array;
  ASSERT_EQ(scenarios.size(), 2u);
  EXPECT_EQ(scenarios[0].Get("name")->StringOr(""), "test/a");
  EXPECT_EQ(scenarios[1].Get("name")->StringOr(""), "test/b");
}

TEST(BenchReportTest, ReportGroupsAreDistinctAndSorted) {
  BenchReport report;
  ScenarioResult r1, r2, r3;
  r1.group = "pipelines";
  r2.group = "coloring";
  r3.group = "pipelines";
  report.results = {r1, r2, r3};
  EXPECT_EQ(ReportGroups(report),
            (std::vector<std::string>{"coloring", "pipelines"}));
  EXPECT_EQ(BenchFileName("coloring"), "BENCH_coloring.json");
}

// The reproducibility contract on a real registered scenario: same seed
// => bitwise-identical params and counters (timings are free to differ).
TEST(BenchReportTest, BuiltinScenarioCountersAreSeedDeterministic) {
  RegisterBuiltinScenarios();
  const Scenario* scenario =
      ScenarioRegistry::Global().Find("coloring/rothko-ba-10k-c64");
  ASSERT_NE(scenario, nullptr);
  BenchContext ctx = FastContext();
  ctx.seed = 5;
  const ScenarioResult first = scenario->Run(ctx);
  const ScenarioResult second = scenario->Run(ctx);
  EXPECT_EQ(first.params, second.params);
  EXPECT_EQ(first.counters, second.counters);
  ASSERT_FALSE(first.counters.empty());
}

TEST(BenchReportTest, WriteFileRejectsBadPath) {
  EXPECT_FALSE(WriteFile("/nonexistent-dir-qsc/x.json", "{}").ok());
}

}  // namespace
}  // namespace bench
}  // namespace qsc
