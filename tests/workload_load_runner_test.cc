// The seeded-determinism tier of the load harness
// (qsc/workload/load_runner.h): one trace replayed by 1, 2, and 8 client
// threads must produce bitwise-identical aggregate counters — counts and
// result checksums; latencies and qps are explicitly excluded — and a
// byte-budgeted session must not move any counter despite eviction
// churn. The CI `thread` sanitizer job runs this binary under TSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "qsc/api/compressor.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/lp/generators.h"
#include "qsc/util/random.h"
#include "qsc/workload/load_runner.h"
#include "qsc/workload/trace.h"

namespace qsc {
namespace workload {
namespace {

constexpr uint64_t kSeed = 20260808;

// Small directed scale-free graph: real refinement work, fast TSan runs.
std::shared_ptr<const Graph> ServiceGraph() {
  Rng rng(kSeed);
  const Graph ba = BarabasiAlbert(400, 3, rng);
  return std::make_shared<const Graph>(
      Graph::FromArcs(ba.num_nodes(), ba.Arcs(), /*undirected=*/false));
}

std::vector<TraceEvent> MixedTrace() {
  TraceGenOptions options;
  options.seed = kSeed;
  options.num_events = 120;
  options.num_specs = 6;
  options.budgets = {8, 16, 32};
  options.batch_size = 3;
  StatusOr<std::unique_ptr<TraceSource>> source =
      MakeTraceSource("poisson-zipf-mixed", options);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  return DrainTrace(**source);
}

LoadRunnerOptions BaseOptions(int32_t threads) {
  LoadRunnerOptions options;
  options.num_client_threads = threads;
  options.lp_universe = {Figure3Lp()};
  return options;
}

LoadReport RunFresh(const std::vector<TraceEvent>& trace,
                    const LoadRunnerOptions& options,
                    int64_t byte_budget = 0) {
  CompressorOptions session_options;
  session_options.coloring_cache_byte_budget = byte_budget;
  Compressor session(ServiceGraph(), /*pool=*/nullptr, session_options);
  StatusOr<LoadReport> report = RunLoad(session, trace, options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(report).value();
}

void ExpectSameCounters(const LoadReport& a, const LoadReport& b) {
  EXPECT_EQ(a.total_queries, b.total_queries);
  EXPECT_EQ(a.failed_queries, b.failed_queries);
  ASSERT_EQ(a.kind_counts.size(), b.kind_counts.size());
  for (size_t k = 0; k < a.kind_counts.size(); ++k) {
    EXPECT_EQ(a.kind_counts[k], b.kind_counts[k]) << "kind " << k;
    // Bitwise: checksums are sums of query results reduced in event
    // order, so no tolerance is needed or wanted.
    EXPECT_EQ(a.kind_checksums[k], b.kind_checksums[k]) << "kind " << k;
  }
  EXPECT_EQ(a.edit_events, b.edit_events);
  EXPECT_EQ(a.edits_applied, b.edits_applied);
  EXPECT_EQ(a.failed_edits, b.failed_edits);
  EXPECT_EQ(a.edit_repairs, b.edit_repairs);
  EXPECT_EQ(a.edit_fallbacks, b.edit_fallbacks);
}

TEST(LoadRunnerTest, CountersAreBitwiseIdenticalAcrossThreadCounts) {
  const std::vector<TraceEvent> trace = MixedTrace();
  const LoadReport single = RunFresh(trace, BaseOptions(1));
  EXPECT_EQ(single.total_queries, static_cast<int64_t>(trace.size()));
  EXPECT_EQ(single.failed_queries, 0);

  for (const int32_t threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const LoadReport parallel = RunFresh(trace, BaseOptions(threads));
    ExpectSameCounters(single, parallel);
  }
}

TEST(LoadRunnerTest, ByteBudgetChurnDoesNotMoveAnyCounter) {
  const std::vector<TraceEvent> trace = MixedTrace();
  const LoadReport unbudgeted = RunFresh(trace, BaseOptions(2));
  EXPECT_EQ(unbudgeted.session_stats.coloring.evictions, 0);

  // A 1-byte budget evicts every entry after every request — maximum
  // churn — yet every counter matches the unbudgeted run bitwise.
  const LoadReport churned = RunFresh(trace, BaseOptions(2),
                                      /*byte_budget=*/1);
  EXPECT_GT(churned.session_stats.coloring.evictions, 0);
  ExpectSameCounters(unbudgeted, churned);
}

TEST(LoadRunnerTest, PacedReplayMatchesClosedLoopCounters) {
  const std::vector<TraceEvent> trace = MixedTrace();
  const LoadReport closed = RunFresh(trace, BaseOptions(2));
  LoadRunnerOptions paced = BaseOptions(2);
  paced.paced = true;
  paced.time_scale = 1e-6;  // replay the arrival sequence, compressed
  ExpectSameCounters(closed, RunFresh(trace, paced));
}

TEST(LoadRunnerTest, ReportsGaugesAndSessionStats) {
  const std::vector<TraceEvent> trace = MixedTrace();
  const LoadReport report = RunFresh(trace, BaseOptions(2));
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.qps, 0.0);
  EXPECT_GE(report.latency_p95_s, report.latency_p50_s);
  EXPECT_GE(report.latency_p99_s, report.latency_p95_s);
  EXPECT_GE(report.latency_max_s, report.latency_p99_s);
  const CacheStats& cache = report.session_stats.coloring;
  EXPECT_GT(cache.lookups, 0);
  EXPECT_EQ(cache.hits + cache.misses + cache.recolorings, cache.lookups);
  EXPECT_GT(cache.bytes_in_use, 0);
}

// A qsc-trace v2 stream: every 6th event is an edit batch applied at a
// segment barrier.
std::vector<TraceEvent> EditTrace() {
  TraceGenOptions options;
  options.seed = kSeed + 1;
  options.num_events = 90;
  options.num_specs = 6;
  options.budgets = {8, 16, 32};
  options.batch_size = 3;
  options.edit_interval = 5;
  options.edits_per_batch = 6;
  StatusOr<std::unique_ptr<TraceSource>> source =
      MakeTraceSource("poisson-zipf-mixed", options);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  return DrainTrace(**source);
}

// The dynamic-serving determinism claim (docs/DYNAMIC.md): edit batches
// apply at segment barriers, so which queries precede each batch — and
// therefore every edit counter AND every query checksum on the evolving
// graph — is pinned regardless of client thread count.
TEST(LoadRunnerTest, EditCountersAreThreadCountInvariantAcrossThreads) {
  const std::vector<TraceEvent> trace = EditTrace();
  const LoadReport single = RunFresh(trace, BaseOptions(1));
  EXPECT_EQ(single.edit_events, 15);  // every 6th of 90 events
  EXPECT_EQ(single.total_queries,
            static_cast<int64_t>(trace.size()) - single.edit_events);
  EXPECT_EQ(single.failed_edits, 0);
  EXPECT_EQ(single.edits_applied, single.edit_events * 6);
  // Zero-tolerance specs always fall back; the repair path needs a
  // tolerance-bounded query, which this trace never issues.
  EXPECT_EQ(single.edit_repairs, 0);
  EXPECT_GT(single.edit_fallbacks, 0);
  EXPECT_EQ(single.session_stats.coloring.edit_batches, single.edit_events);

  for (const int32_t threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectSameCounters(single, RunFresh(trace, BaseOptions(threads)));
  }
}

// An infeasible edit event (deleting more edges than the graph has) must
// fail cleanly — graph untouched, later events still served — and count
// identically at every thread count.
TEST(LoadRunnerTest, FailedEditsAreDeterministicAndNonFatal) {
  std::vector<TraceEvent> trace = MixedTrace();
  TraceEvent doomed;
  doomed.kind = QueryKind::kDeleteEdge;
  doomed.budget = 1000000;  // ServiceGraph has ~1200 arcs
  doomed.spec_index = 0;
  doomed.arrival_seconds = 0.0;
  trace.insert(trace.begin() + 10, doomed);
  for (size_t i = 11; i < trace.size(); ++i) {
    trace[i].arrival_seconds =
        std::max(trace[i].arrival_seconds, trace[10].arrival_seconds);
  }

  const LoadReport single = RunFresh(trace, BaseOptions(1));
  EXPECT_EQ(single.edit_events, 1);
  EXPECT_EQ(single.failed_edits, 1);
  EXPECT_EQ(single.edits_applied, 0);
  EXPECT_EQ(single.failed_queries, 0);
  for (const int32_t threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExpectSameCounters(single, RunFresh(trace, BaseOptions(threads)));
  }
}

TEST(LoadRunnerTest, ValidatesOptionsAndTraceRequirements) {
  const std::vector<TraceEvent> trace = MixedTrace();
  Compressor session(ServiceGraph());

  LoadRunnerOptions zero_threads = BaseOptions(0);
  EXPECT_EQ(RunLoad(session, trace, zero_threads).status().code(),
            StatusCode::kInvalidArgument);

  // solvelp events demand an LP universe.
  LoadRunnerOptions no_lps = BaseOptions(1);
  no_lps.lp_universe.clear();
  EXPECT_EQ(RunLoad(session, trace, no_lps).status().code(),
            StatusCode::kInvalidArgument);

  // Graph queries demand a session with a graph.
  Compressor lp_only;
  EXPECT_EQ(RunLoad(lp_only, trace, BaseOptions(1)).status().code(),
            StatusCode::kFailedPrecondition);

  // So do edit events — they mutate the session graph.
  TraceEvent edit_event;
  edit_event.kind = QueryKind::kInsertEdge;
  edit_event.budget = 4;
  EXPECT_EQ(RunLoad(lp_only, {edit_event}, BaseOptions(1)).status().code(),
            StatusCode::kFailedPrecondition);

  // Repair budgets are validated up front.
  LoadRunnerOptions bad_repair = BaseOptions(1);
  bad_repair.max_repair_splits = -1;
  EXPECT_EQ(RunLoad(session, trace, bad_repair).status().code(),
            StatusCode::kInvalidArgument);

  // An LP-only trace on an LP-only session is fine.
  TraceEvent lp_event;
  lp_event.kind = QueryKind::kSolveLp;
  lp_event.budget = 8;
  const StatusOr<LoadReport> lp_run =
      RunLoad(lp_only, {lp_event}, BaseOptions(1));
  ASSERT_TRUE(lp_run.ok()) << lp_run.status().ToString();
  EXPECT_EQ(lp_run->total_queries, 1);
  EXPECT_EQ(lp_run->failed_queries, 0);
}

}  // namespace
}  // namespace workload
}  // namespace qsc
