#include "qsc/coloring/partition.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace qsc {
namespace {

TEST(PartitionTest, Trivial) {
  const Partition p = Partition::Trivial(5);
  EXPECT_EQ(p.num_nodes(), 5);
  EXPECT_EQ(p.num_colors(), 1);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(p.ColorOf(v), 0);
  EXPECT_EQ(p.ColorSize(0), 5);
  EXPECT_DOUBLE_EQ(p.CompressionRatio(), 5.0);
}

TEST(PartitionTest, Discrete) {
  const Partition p = Partition::Discrete(4);
  EXPECT_EQ(p.num_colors(), 4);
  EXPECT_EQ(p.NumSingletons(), 4);
  EXPECT_DOUBLE_EQ(p.CompressionRatio(), 1.0);
}

TEST(PartitionTest, FromColorIdsDensifies) {
  const Partition p = Partition::FromColorIds({7, 3, 7, 9, 3});
  EXPECT_EQ(p.num_colors(), 3);
  EXPECT_EQ(p.ColorOf(0), p.ColorOf(2));
  EXPECT_EQ(p.ColorOf(1), p.ColorOf(4));
  EXPECT_NE(p.ColorOf(0), p.ColorOf(3));
  // First appearance order: 7 -> 0, 3 -> 1, 9 -> 2.
  EXPECT_EQ(p.ColorOf(0), 0);
  EXPECT_EQ(p.ColorOf(1), 1);
  EXPECT_EQ(p.ColorOf(3), 2);
}

TEST(PartitionTest, MembersConsistent) {
  const Partition p = Partition::FromColorIds({0, 1, 0, 1, 0});
  EXPECT_EQ(p.ColorSize(0), 3);
  EXPECT_EQ(p.ColorSize(1), 2);
  for (ColorId c = 0; c < p.num_colors(); ++c) {
    for (NodeId v : p.Members(c)) EXPECT_EQ(p.ColorOf(v), c);
  }
}

TEST(PartitionTest, SplitColor) {
  Partition p = Partition::Trivial(6);
  const ColorId fresh = p.SplitColor(0, {1, 3, 5});
  EXPECT_EQ(fresh, 1);
  EXPECT_EQ(p.num_colors(), 2);
  EXPECT_EQ(p.ColorSize(0), 3);
  EXPECT_EQ(p.ColorSize(1), 3);
  EXPECT_EQ(p.ColorOf(1), 1);
  EXPECT_EQ(p.ColorOf(0), 0);
  // Old members list no longer contains moved nodes.
  for (NodeId v : p.Members(0)) EXPECT_EQ(v % 2, 0);
}

TEST(PartitionTest, SplitEntireColorDies) {
  Partition p = Partition::Trivial(3);
  EXPECT_DEATH(p.SplitColor(0, {0, 1, 2}), "QSC_CHECK");
}

TEST(PartitionTest, SplitWrongColorDies) {
  Partition p = Partition::FromColorIds({0, 0, 1, 1});
  EXPECT_DEATH(p.SplitColor(0, {2}), "QSC_CHECK");
}

TEST(PartitionTest, RefinementChecks) {
  const Partition fine = Partition::FromColorIds({0, 1, 2, 2});
  const Partition coarse = Partition::FromColorIds({0, 0, 1, 1});
  EXPECT_TRUE(fine.IsRefinementOf(coarse));
  EXPECT_FALSE(coarse.IsRefinementOf(fine));
  EXPECT_TRUE(fine.IsRefinementOf(fine));
  EXPECT_TRUE(Partition::Discrete(4).IsRefinementOf(coarse));
  EXPECT_TRUE(coarse.IsRefinementOf(Partition::Trivial(4)));
}

TEST(PartitionTest, CrossingPartitionsNotRefinements) {
  const Partition a = Partition::FromColorIds({0, 0, 1, 1});
  const Partition b = Partition::FromColorIds({0, 1, 1, 0});
  EXPECT_FALSE(a.IsRefinementOf(b));
  EXPECT_FALSE(b.IsRefinementOf(a));
}

TEST(PartitionTest, EqualityIgnoresLabeling) {
  const Partition a = Partition::FromColorIds({0, 0, 1, 2});
  const Partition b = Partition::FromColorIds({5, 5, 9, 7});
  EXPECT_TRUE(a == b);
}

TEST(PartitionTest, ColorSizes) {
  const Partition p = Partition::FromColorIds({0, 0, 1, 0, 2});
  const auto sizes = p.ColorSizes();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 3);
  EXPECT_EQ(sizes[1], 1);
  EXPECT_EQ(sizes[2], 1);
  EXPECT_EQ(p.NumSingletons(), 2);
}

}  // namespace
}  // namespace qsc
