// The full DifferentialRunner oracle suite, swept over every registered
// compression backend on the shared 56-graph property corpus
// (tests/rothko_corpus.h): Theorem-6 bound directions and min-cut duality
// for max-flow, Theorem-1 q = 0 exactness and lift round-trips for LP,
// the discrete-equals-Brandes degeneracy for centrality, and — via
// CheckColoringAnytime — the monotone-anytime and deterministic-replay
// contract of each backend. Every (backend, split-mean, seed) cell must
// come back violation-free; failures print the runner's evidence.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qsc/coloring/backend.h"
#include "qsc/eval/differential.h"
#include "qsc/eval/workload.h"
#include "qsc/graph/generators.h"
#include "qsc/lp/generators.h"

#include "rothko_corpus.h"

namespace qsc {
namespace eval {
namespace {

using testing_corpus::CorpusGraph;
using testing_corpus::CorpusSeeds;

const std::vector<ColorId> kBudgets = {4, 8, 16};

EvalOptions OptionsFor(const std::string& backend, uint64_t seed,
                       SplitMean split_mean) {
  EvalOptions options;
  options.seed = seed;
  options.backend = backend;
  options.split_mean = split_mean;
  return options;
}

class BackendDifferentialTest
    : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendDifferentialTest,
    ::testing::ValuesIn(ColoringBackendRegistry::Global().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-' || c == '_') c = '0';
      }
      return name;
    });

TEST_P(BackendDifferentialTest, CentralityCorpusHasNoViolations) {
  // All 56 cells: 14 seeds x {directed, undirected} x both split means.
  for (const SplitMean split_mean :
       {SplitMean::kArithmetic, SplitMean::kGeometric}) {
    for (const uint64_t seed : CorpusSeeds()) {
      for (const bool directed : {false, true}) {
        const DifferentialRunner runner(
            OptionsFor(GetParam(), seed, split_mean));
        const Graph g = CorpusGraph(seed, directed);
        const DifferentialReport report = runner.CheckCentrality(g, kBudgets);
        ASSERT_TRUE(report.ok())
            << GetParam() << " seed " << seed
            << (directed ? " directed " : " undirected ")
            << report.Summary();
      }
    }
  }
}

TEST_P(BackendDifferentialTest, MaxFlowCorpusHasNoViolations) {
  // The directed half of the corpus, recast as flow instances (terminals
  // 0 and n-1; a disconnected pair just makes the exact flow 0, which the
  // bound directions still have to respect).
  for (const SplitMean split_mean :
       {SplitMean::kArithmetic, SplitMean::kGeometric}) {
    for (const uint64_t seed : CorpusSeeds()) {
      const DifferentialRunner runner(
          OptionsFor(GetParam(), seed, split_mean));
      FlowInstance instance;
      instance.graph = CorpusGraph(seed, /*directed=*/true);
      instance.source = 0;
      instance.sink = instance.graph.num_nodes() - 1;
      const DifferentialReport report =
          runner.CheckMaxFlow(instance, kBudgets);
      ASSERT_TRUE(report.ok())
          << GetParam() << " seed " << seed << " " << report.Summary();
    }
  }
}

TEST_P(BackendDifferentialTest, LpCorpusHasNoViolations) {
  // Seeded feasible LPs (one per corpus seed); Theorem-1 exactness at the
  // full budget must hold for every backend's matrix coloring.
  for (const SplitMean split_mean :
       {SplitMean::kArithmetic, SplitMean::kGeometric}) {
    for (const uint64_t seed : CorpusSeeds()) {
      const DifferentialRunner runner(
          OptionsFor(GetParam(), seed, split_mean));
      const LpProblem lp = MakeQapLikeLp(4, seed);
      const DifferentialReport report = runner.CheckLp(lp, kBudgets);
      ASSERT_TRUE(report.ok())
          << GetParam() << " seed " << seed << " " << report.Summary();
    }
  }
}

TEST(BackendDifferentialRejectionTest, UnresolvableBackendIsAViolation) {
  // The runner reports an unresolvable backend instead of aborting, so a
  // bad --backend surfaces in the differential JSON like any finding.
  EvalOptions options;
  options.backend = "no-such-backend";
  const DifferentialRunner runner(options);
  const DifferentialReport report =
      runner.CheckCentrality(CorpusGraph(1, false), kBudgets);
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const InvariantViolation& v : report.violations) {
    found = found || v.invariant == "coloring/backend-registered";
  }
  EXPECT_TRUE(found) << report.Summary();
}

}  // namespace
}  // namespace eval
}  // namespace qsc
