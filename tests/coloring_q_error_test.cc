#include "qsc/coloring/q_error.h"

#include <gtest/gtest.h>

#include "qsc/coloring/stable.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

TEST(QErrorTest, DiscretePartitionIsZero) {
  Rng rng(1);
  const Graph g = ErdosRenyiGnm(20, 60, rng);
  const QErrorStats stats = ComputeQError(g, Partition::Discrete(20));
  EXPECT_DOUBLE_EQ(stats.max_q, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_q, 0.0);
}

TEST(QErrorTest, StableColoringIsZero) {
  Rng rng(2);
  const Graph g = ErdosRenyiGnm(50, 120, rng);
  const Partition p = StableColoring(g);
  EXPECT_DOUBLE_EQ(ComputeQError(g, p).max_q, 0.0);
}

TEST(QErrorTest, StarTrivialPartition) {
  // Star with 5 leaves, all nodes one color: hub degree 5, leaf degree 1.
  const Graph g = StarGraph(5);
  const QErrorStats stats = ComputeQError(g, Partition::Trivial(6));
  EXPECT_DOUBLE_EQ(stats.max_q, 4.0);
}

TEST(QErrorTest, AbsentMemberCountsAsZero) {
  // Color {0,1} -> color {2}: node 0 has an edge, node 1 does not, so the
  // spread is 1 - 0 = 1.
  const Graph g = Graph::FromEdges(3, {{0, 2, 1.0}}, false);
  const Partition p = Partition::FromColorIds({0, 0, 1});
  EXPECT_DOUBLE_EQ(ComputeQError(g, p).max_q, 1.0);
}

TEST(QErrorTest, NegativeWeightsSpread) {
  // Weights +2 and -3 toward the same color: spread 5.
  const Graph g =
      Graph::FromEdges(4, {{0, 2, 2.0}, {1, 2, -3.0}}, false);
  const Partition p = Partition::FromColorIds({0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(ComputeQError(g, p).max_q, 5.0);
}

TEST(QErrorTest, NegativeWeightWithAbsentMember) {
  // One member at -3, the other absent (0): spread 3, not -3.
  const Graph g = Graph::FromEdges(3, {{0, 2, -3.0}}, false);
  const Partition p = Partition::FromColorIds({0, 0, 1});
  EXPECT_DOUBLE_EQ(ComputeQError(g, p).max_q, 3.0);
}

TEST(QErrorTest, InDirectionDetected) {
  // Directed graph where out-profiles agree but in-profiles differ:
  // a -> x, b -> x, a -> y. Colors {a,b}, {x,y}:
  //   out: a has 2 toward {x,y}, b has 1 -> spread 1.
  // Make out equal by adding b -> y2... simpler: check in-direction via a
  // case where the in spread exceeds the out spread.
  const Graph g = Graph::FromEdges(
      4, {{0, 2, 1.0}, {1, 2, 1.0}}, false);
  const Partition p = Partition::FromColorIds({0, 0, 1, 1});
  // Out-direction: both sources send 1 -> spread 0. In-direction: x gets
  // 2, y gets 0 -> spread 2.
  EXPECT_DOUBLE_EQ(ComputeQError(g, p).max_q, 2.0);
}

TEST(QErrorTest, IntraColorPairCounted) {
  // Directed edge within a single color: 0 -> 1, both in color 0.
  const Graph g = Graph::FromEdges(2, {{0, 1, 1.0}}, false);
  const QErrorStats stats = ComputeQError(g, Partition::Trivial(2));
  EXPECT_DOUBLE_EQ(stats.max_q, 1.0);
}

TEST(QErrorTest, MeanLeqMax) {
  Rng rng(7);
  const Graph g = BarabasiAlbert(200, 3, rng);
  const Partition p = Partition::FromColorIds(
      [&] {
        std::vector<int32_t> labels(200);
        for (int i = 0; i < 200; ++i) labels[i] = i % 7;
        return labels;
      }());
  const QErrorStats stats = ComputeQError(g, p);
  EXPECT_GT(stats.max_q, 0.0);
  EXPECT_LE(stats.mean_q, stats.max_q);
  EXPECT_GT(stats.num_active_entries, 0);
}

TEST(QErrorTest, BlockBiregularGroupPartitionIsStable) {
  Rng rng(8);
  const Graph g = BlockBiregularGraph(10, 6, 20, rng);
  std::vector<int32_t> labels(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) labels[v] = v / 6;
  const QErrorStats stats =
      ComputeQError(g, Partition::FromColorIds(labels));
  EXPECT_DOUBLE_EQ(stats.max_q, 0.0);
}

TEST(QErrorTest, WeightedSpreadUsesSums) {
  // Node 0 sends weight 1+2=3 into {2,3}; node 1 sends 1.5. Spread 1.5.
  const Graph g = Graph::FromEdges(
      4, {{0, 2, 1.0}, {0, 3, 2.0}, {1, 2, 1.5}}, false);
  const Partition p = Partition::FromColorIds({0, 0, 1, 1});
  // In-direction: node 2 receives 2.5, node 3 receives 2 -> spread 0.5;
  // out-direction spread 1.5 dominates.
  EXPECT_DOUBLE_EQ(ComputeQError(g, p).max_q, 1.5);
}

}  // namespace
}  // namespace qsc
