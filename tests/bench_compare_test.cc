// Tests for the baseline comparator: the minimal JSON parser (round-trips
// of what eval::JsonWriter emits, escape handling, malformed-input
// rejection) and the gate logic (median slowdown tolerance, exact
// counter/param matching, missing scenarios, the noise floor).

#include "qsc/bench/compare.h"

#include <gtest/gtest.h>

#include <string>

namespace qsc {
namespace bench {
namespace {

JsonValue Parse(const std::string& text) {
  JsonValue value;
  const Status status = ParseJson(text, &value);
  EXPECT_TRUE(status.ok()) << status.message();
  return value;
}

TEST(JsonParserTest, ParsesScalars) {
  EXPECT_EQ(Parse("null").kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(Parse("true").bool_value);
  EXPECT_FALSE(Parse("false").bool_value);
  EXPECT_DOUBLE_EQ(Parse("-12.5e2").number_value, -1250.0);
  EXPECT_EQ(Parse("\"hi\"").string_value, "hi");
}

TEST(JsonParserTest, ParsesEscapes) {
  EXPECT_EQ(Parse(R"("a\"b\\c\/d\n\t")").string_value, "a\"b\\c/d\n\t");
  // eval::JsonEscape emits control characters as \u00XX.
  EXPECT_EQ(Parse(R"("\u0007")").string_value, "\a");
  EXPECT_EQ(Parse(R"("\u00e9")").string_value, "\xc3\xa9");  // e-acute, UTF-8
}

TEST(JsonParserTest, ParsesNestedContainers) {
  const JsonValue v = Parse(R"({"a": [1, 2, {"b": null}], "c": {}})");
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  const JsonValue* a = v.Get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number_value, 2.0);
  EXPECT_TRUE(a->array[2].Get("b")->is_null());
  EXPECT_EQ(v.Get("c")->object.size(), 0u);
  EXPECT_EQ(v.Get("missing"), nullptr);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  JsonValue v;
  EXPECT_FALSE(ParseJson("", &v).ok());
  EXPECT_FALSE(ParseJson("{", &v).ok());
  EXPECT_FALSE(ParseJson("[1,]", &v).ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}", &v).ok());
  EXPECT_FALSE(ParseJson("\"unterminated", &v).ok());
  EXPECT_FALSE(ParseJson("12 34", &v).ok());  // trailing garbage
  EXPECT_FALSE(ParseJson("nul", &v).ok());
}

// --- comparator ----------------------------------------------------------

std::string ReportDoc(double median, double counter,
                      const char* name = "coloring/x", int schema = 1) {
  return std::string("{\"schema_version\": ") + std::to_string(schema) +
         ", \"scenarios\": [{\"name\": \"" + name +
         "\", \"params\": {\"nodes\": 100}, \"counters\": {\"m\": " +
         std::to_string(counter) +
         "}, \"timing\": {\"median_s\": " + std::to_string(median) + "}}]}";
}

TEST(CompareTest, IdenticalReportsPass) {
  const JsonValue doc = Parse(ReportDoc(0.5, 7.0));
  const CompareReport r = CompareBenchReports(doc, doc, CompareOptions());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.compared, 1);
}

TEST(CompareTest, SlowdownBeyondToleranceFails) {
  const JsonValue base = Parse(ReportDoc(0.5, 7.0));
  const JsonValue slower = Parse(ReportDoc(1.2, 7.0));
  CompareOptions options;
  options.max_slowdown = 2.0;
  const CompareReport r = CompareBenchReports(base, slower, options);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].scenario, "coloring/x");
}

TEST(CompareTest, SlowdownWithinToleranceAndAnySpeedupPass) {
  const JsonValue base = Parse(ReportDoc(0.5, 7.0));
  EXPECT_TRUE(
      CompareBenchReports(base, Parse(ReportDoc(0.9, 7.0)), CompareOptions())
          .ok());
  EXPECT_TRUE(
      CompareBenchReports(base, Parse(ReportDoc(0.01, 7.0)), CompareOptions())
          .ok());
}

TEST(CompareTest, TinyBaselineMediansAreNotGated) {
  // 1ms baseline: far below the default 10ms floor; even a 100x "slowdown"
  // must be skipped (it is measurement noise at this scale).
  const JsonValue base = Parse(ReportDoc(0.001, 7.0));
  const JsonValue slower = Parse(ReportDoc(0.1, 7.0));
  const CompareReport r = CompareBenchReports(base, slower, CompareOptions());
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.notes.size(), 1u);
}

TEST(CompareTest, UlpLevelCounterDriftIsTolerated) {
  // Baselines recorded under a different glibc/compiler can differ by
  // ~1 ulp on libm-derived counters; the gate must not flake on that.
  const JsonValue base = Parse(ReportDoc(0.5, 0.819814341011425));
  const JsonValue drifted = Parse(ReportDoc(0.5, 0.819814341011426));
  EXPECT_TRUE(CompareBenchReports(base, drifted, CompareOptions()).ok());
}

TEST(CompareTest, CounterDriftFailsEvenWhenTimingIsFine) {
  const JsonValue base = Parse(ReportDoc(0.5, 7.0));
  const JsonValue drifted = Parse(ReportDoc(0.5, 8.0));
  const CompareReport r = CompareBenchReports(base, drifted, CompareOptions());
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_NE(r.violations[0].detail.find("counters.m"), std::string::npos);
}

// Counter-identity mode: the scenario sets must match exactly, and a
// mismatch is ONE aggregate violation naming every offender in both
// directions plus the baseline-update pointer — not a per-scenario drip.
TEST(CompareTest, CountersOnlyScenarioSetMismatchAggregatesOneViolation) {
  const auto doc = [](const char* first, const char* second) {
    return Parse(std::string("{\"schema_version\": 1, \"scenarios\": [") +
                 "{\"name\": \"" + first +
                 "\", \"params\": {}, \"counters\": {\"m\": 1}}, " +
                 "{\"name\": \"" + second +
                 "\", \"params\": {}, \"counters\": {\"m\": 1}}]}");
  };
  CompareOptions options;
  options.counters_only = true;

  // Identical sets: clean pass, both scenarios compared.
  EXPECT_TRUE(CompareBenchReports(doc("shared/x", "dynamic/a"),
                                  doc("shared/x", "dynamic/a"), options)
                  .ok());

  const CompareReport r = CompareBenchReports(
      doc("shared/x", "dynamic/a"), doc("shared/x", "dynamic/b"), options);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_TRUE(r.violations[0].scenario.empty());
  const std::string& detail = r.violations[0].detail;
  EXPECT_NE(detail.find("only in baseline: dynamic/a"), std::string::npos)
      << detail;
  EXPECT_NE(detail.find("only in current: dynamic/b"), std::string::npos)
      << detail;
  EXPECT_EQ(detail.find("shared/x"), std::string::npos) << detail;
  EXPECT_NE(detail.find("BENCHMARKING.md"), std::string::npos) << detail;
}

TEST(CompareTest, MissingScenarioFailsNewScenarioIsNoted) {
  const JsonValue base = Parse(ReportDoc(0.5, 7.0, "coloring/old"));
  const JsonValue current = Parse(ReportDoc(0.5, 7.0, "coloring/new"));
  const CompareReport r = CompareBenchReports(base, current, CompareOptions());
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].scenario, "coloring/old");
  ASSERT_EQ(r.notes.size(), 1u);
  EXPECT_NE(r.notes[0].find("coloring/new"), std::string::npos);
}

TEST(CompareTest, SchemaVersionMismatchFailsFast) {
  const JsonValue base = Parse(ReportDoc(0.5, 7.0, "coloring/x", 1));
  const JsonValue current = Parse(ReportDoc(0.5, 7.0, "coloring/x", 2));
  const CompareReport r = CompareBenchReports(base, current, CompareOptions());
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_TRUE(r.violations[0].scenario.empty());
}

TEST(CompareTest, NullCountersCompareEqual) {
  // JsonNumber renders NaN as null; two NaN counters must not flag drift.
  const std::string doc =
      "{\"schema_version\": 1, \"scenarios\": [{\"name\": \"x\", "
      "\"counters\": {\"m\": null}, \"timing\": {\"median_s\": 0.5}}]}";
  EXPECT_TRUE(
      CompareBenchReports(Parse(doc), Parse(doc), CompareOptions()).ok());
}

TEST(CompareTest, ReadFileErrorsOnMissingPath) {
  std::string contents;
  EXPECT_FALSE(ReadFile("/nonexistent-qsc/b.json", &contents).ok());
}

}  // namespace
}  // namespace bench
}  // namespace qsc
