// Dynamic-graph concurrency contract (docs/DYNAMIC.md): ApplyEdits may
// race queries on a shared Compressor session. Every query is stamped with
// the graph version it ran against, and its result must be exactly what a
// fresh session on that version's graph serves (zero-tolerance specs fall
// back to from-scratch recoloring, so the comparison is bitwise). With a
// positive tolerance the repaired path is checked phase by phase against a
// serialized oracle session replaying the identical edit/query history.
// The CI `thread` sanitizer job runs this binary under TSan (suite name
// matches the 'DynamicRecolor' regex).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "qsc/api/compressor.h"
#include "qsc/dynamic/edit_stream.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/parallel/thread_pool.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

constexpr uint64_t kSeed = 20260808;

// Directed scale-free graph sized for the TSan leg: refinement and repair
// both do real work, but a full run stays in the hundreds of milliseconds.
Graph StressGraph() {
  Rng rng(kSeed);
  const Graph ba = BarabasiAlbert(1200, 3, rng);
  return Graph::FromArcs(ba.num_nodes(), ba.Arcs(), /*undirected=*/false);
}

std::vector<std::vector<dynamic::EditOp>> StressBatches(const Graph& g,
                                                        int64_t num_batches) {
  dynamic::EditStreamOptions options;
  options.seed = kSeed * 3 + 1;
  options.num_batches = num_batches;
  options.edits_per_batch = 12;
  StatusOr<std::vector<std::vector<dynamic::EditOp>>> batches =
      dynamic::GenerateEditBatches(g, options);
  QSC_CHECK_OK(batches);
  return std::move(batches).value();
}

// The graph as it stands after each version: versions[v] is the session
// graph at graph_version v (version 0 = the construction graph).
std::vector<Graph> VersionChain(const Graph& g,
                                const std::vector<std::vector<dynamic::EditOp>>&
                                    batches) {
  std::vector<Graph> versions = {g};
  for (const std::vector<dynamic::EditOp>& batch : batches) {
    StatusOr<Graph> next = dynamic::ApplyEditBatch(versions.back(), batch);
    QSC_CHECK_OK(next);
    versions.push_back(std::move(next).value());
  }
  return versions;
}

struct VersionedObservation {
  int64_t graph_version = 0;
  ColorId budget = 0;
  double max_q = 0.0;
  Partition coloring;
};

// Six reader threads hammer Coloring queries at mixed budgets while the
// main thread pushes edit batches through ApplyEdits. The query options
// leave q_tolerance at 0, so every batch resets the cached spec to scratch
// and each observation must be bitwise identical to a fresh session on the
// graph version stamped into its telemetry — under ANY interleaving.
TEST(DynamicRecolorConcurrencyTest, EditsRacingQueriesMatchPerVersionOracle) {
  const Graph g = StressGraph();
  const std::vector<std::vector<dynamic::EditOp>> batches =
      StressBatches(g, 4);
  const std::vector<Graph> versions = VersionChain(g, batches);

  ThreadPool pool(4);
  Compressor session(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g), &pool);

  constexpr int kThreads = 6;
  const std::vector<ColorId> budgets = {8, 24, 16};
  std::vector<std::vector<VersionedObservation>> observations(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int round = 0; round < 4; ++round) {
          QueryOptions options;
          options.max_colors =
              budgets[static_cast<size_t>(t + round) % budgets.size()];
          const StatusOr<ColoringResult> result = session.Coloring(options);
          QSC_CHECK_OK(result);
          observations[t].push_back({result->telemetry.graph_version,
                                     options.max_colors, result->max_q,
                                     *result->coloring});
        }
      });
    }
    // Race the edit batches against the readers from this thread.
    for (const std::vector<dynamic::EditOp>& batch : batches) {
      const StatusOr<EditApplyResult> applied = session.ApplyEdits(batch);
      QSC_CHECK_OK(applied);
      EXPECT_EQ(applied->edits_applied,
                static_cast<int64_t>(batch.size()));
      // Zero-tolerance entries are never repairable.
      EXPECT_EQ(applied->repairs, 0);
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(session.graph_version(),
            static_cast<int64_t>(batches.size()));

  // Per-(version, budget) oracle: a fresh session on that version's graph.
  std::map<std::pair<int64_t, ColorId>, VersionedObservation> expected;
  for (int t = 0; t < kThreads; ++t) {
    for (const VersionedObservation& seen : observations[t]) {
      ASSERT_GE(seen.graph_version, 0);
      ASSERT_LT(seen.graph_version,
                static_cast<int64_t>(versions.size()));
      const std::pair<int64_t, ColorId> key{seen.graph_version, seen.budget};
      auto it = expected.find(key);
      if (it == expected.end()) {
        const Graph& at = versions[static_cast<size_t>(seen.graph_version)];
        Compressor oracle(
            std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &at));
        QueryOptions options;
        options.max_colors = seen.budget;
        const StatusOr<ColoringResult> want = oracle.Coloring(options);
        QSC_CHECK_OK(want);
        it = expected
                 .emplace(key, VersionedObservation{seen.graph_version,
                                                    seen.budget, want->max_q,
                                                    *want->coloring})
                 .first;
      }
      ASSERT_EQ(seen.max_q, it->second.max_q)
          << "version " << seen.graph_version << " budget " << seen.budget;
      ASSERT_TRUE(seen.coloring == it->second.coloring)
          << "version " << seen.graph_version << " budget " << seen.budget;
    }
  }
}

// Positive tolerance, phased: each phase fans concurrent queries at mixed
// budgets, then applies one batch (which must REPAIR the entry, not fall
// back). The whole history is replayed on a single-threaded oracle
// session; every concurrent observation must match the oracle's result
// for its (phase, budget) bitwise — repaired state included, because the
// entry's refinement trajectory is a deterministic function of the query
// set, not of arrival order.
TEST(DynamicRecolorConcurrencyTest, PhasedRepairsMatchSerializedOracle) {
  const Graph g = StressGraph();
  const std::vector<std::vector<dynamic::EditOp>> batches =
      StressBatches(g, 3);

  QueryOptions query;
  query.q_tolerance = 8.0;

  ThreadPool pool(4);
  Compressor session(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g), &pool);
  Compressor oracle(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g));

  constexpr int kThreads = 4;
  const std::vector<ColorId> budgets = {8, 32, 16};
  // phase -> budget -> observed partitions (one per thread).
  for (size_t phase = 0; phase <= batches.size(); ++phase) {
    std::vector<std::vector<std::pair<ColorId, Partition>>> seen(kThreads);
    {
      std::vector<std::thread> threads;
      threads.reserve(kThreads);
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
          for (size_t b = 0; b < budgets.size(); ++b) {
            QueryOptions options = query;
            options.max_colors =
                budgets[(b + static_cast<size_t>(t)) % budgets.size()];
            const StatusOr<ColoringResult> result =
                session.Coloring(options);
            QSC_CHECK_OK(result);
            seen[t].emplace_back(options.max_colors, *result->coloring);
          }
        });
      }
      for (std::thread& thread : threads) thread.join();
    }

    // Serialized oracle: the same query set, ascending, one thread.
    std::map<ColorId, Partition> want;
    for (const ColorId budget : budgets) {
      QueryOptions options = query;
      options.max_colors = budget;
      const StatusOr<ColoringResult> result = oracle.Coloring(options);
      QSC_CHECK_OK(result);
      want.emplace(budget, *result->coloring);
    }
    for (int t = 0; t < kThreads; ++t) {
      for (const auto& [budget, coloring] : seen[t]) {
        ASSERT_TRUE(coloring == want.at(budget))
            << "phase " << phase << " budget " << budget << " thread " << t;
      }
    }

    if (phase < batches.size()) {
      const StatusOr<EditApplyResult> applied =
          session.ApplyEdits(batches[phase]);
      const StatusOr<EditApplyResult> oracle_applied =
          oracle.ApplyEdits(batches[phase]);
      QSC_CHECK_OK(applied);
      QSC_CHECK_OK(oracle_applied);
      // The tolerance-bounded spec must take the repair path in both
      // sessions, and spend the identical split budget doing so.
      EXPECT_EQ(applied->repairs, 1) << "phase " << phase;
      EXPECT_EQ(applied->fallbacks, 0) << "phase " << phase;
      EXPECT_EQ(applied->repairs, oracle_applied->repairs);
      EXPECT_EQ(applied->repair_splits, oracle_applied->repair_splits);
    }
  }

  // Edit telemetry aggregates identically on both sessions.
  const CompressorStats concurrent_stats = session.stats();
  const CompressorStats serial_stats = oracle.stats();
  EXPECT_EQ(concurrent_stats.coloring.edit_batches,
            serial_stats.coloring.edit_batches);
  EXPECT_EQ(concurrent_stats.coloring.edits_applied,
            serial_stats.coloring.edits_applied);
  EXPECT_EQ(concurrent_stats.coloring.repairs,
            serial_stats.coloring.repairs);
  EXPECT_EQ(concurrent_stats.coloring.fallbacks,
            serial_stats.coloring.fallbacks);
}

}  // namespace
}  // namespace qsc
