// Differential tests for the LP stack: simplex and interior-point must
// agree on seeded feasible LPs from lp/generators, and the coloring
// reduction must round-trip objectives in the directions the paper
// guarantees — LiftSolution reproduces the reduced objective in the
// original objective exactly (both reduction variants), and a stable
// (q = 0) coloring loses nothing (Theorem 1).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "qsc/eval/differential.h"
#include "qsc/eval/workload.h"
#include "qsc/lp/generators.h"
#include "qsc/lp/interior_point.h"
#include "qsc/lp/model.h"
#include "qsc/lp/reduce.h"
#include "qsc/lp/simplex.h"
#include "qsc/util/stats.h"

namespace qsc {
namespace {

void ExpectOraclesAgree(const LpProblem& lp, const char* label) {
  const LpResult simplex = SolveSimplex(lp);
  const IpmResult ipm = SolveInteriorPoint(lp);
  ASSERT_EQ(simplex.status, LpStatus::kOptimal) << label;
  ASSERT_EQ(ipm.status, LpStatus::kOptimal) << label;
  EXPECT_NEAR(RelativeError(simplex.objective, ipm.objective), 1.0, 1e-3)
      << label << ": simplex " << simplex.objective << " vs interior point "
      << ipm.objective;
}

class LpDifferentialTest : public testing::TestWithParam<uint64_t> {};

TEST_P(LpDifferentialTest, OraclesAgreeAcrossGeneratorFamilies) {
  const uint64_t seed = GetParam();
  ExpectOraclesAgree(MakeQapLikeLp(4, seed), "qap");
  ExpectOraclesAgree(MakeWideSupportLp(5, seed), "wide");
  ExpectOraclesAgree(MakeTallLp(4, seed), "tall");
  BlockLpSpec spec;
  spec.num_row_groups = 3;
  spec.num_col_groups = 3;
  spec.rows_per_group = 5;
  spec.cols_per_group = 5;
  spec.seed = seed;
  ExpectOraclesAgree(MakeBlockLp(spec), "block");
}

TEST_P(LpDifferentialTest, LiftRoundTripsReducedObjective) {
  const LpProblem lp = MakeQapLikeLp(4, GetParam());
  for (const LpReduction variant :
       {LpReduction::kSqrtNormalized, LpReduction::kGrohe}) {
    LpReduceOptions options;
    options.max_colors = 16;
    options.variant = variant;
    const ReducedLp reduced = ReduceLp(lp, options);
    const LpResult red = SolveSimplex(reduced.lp);
    ASSERT_EQ(red.status, LpStatus::kOptimal);
    const std::vector<double> lifted = LiftSolution(reduced, red.x);
    EXPECT_NEAR(Objective(lp, lifted), red.objective,
                1e-9 * std::max(1.0, std::abs(red.objective)));
  }
}

TEST_P(LpDifferentialTest, StableColoringPreservesOptimum) {
  // Noise-free block LPs with block-constant b admit a q = 0 coloring of
  // the extended matrix; Theorem 1 then guarantees the reduced optimum
  // equals the exact one.
  BlockLpSpec spec;
  spec.num_row_groups = 3;
  spec.num_col_groups = 3;
  spec.rows_per_group = 4;
  spec.cols_per_group = 4;
  spec.noise = 0.0;
  spec.seed = GetParam();
  LpProblem lp = MakeBlockLp(spec);
  for (int32_t i = 0; i < lp.num_rows; ++i) lp.b[i] = lp.b[(i / 4) * 4];

  const LpResult exact = SolveSimplex(lp);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);

  LpReduceOptions options;
  options.max_colors = 10;
  options.q_tolerance = 0.0;
  const ReducedLp reduced = ReduceLp(lp, options);
  ASSERT_NEAR(reduced.max_q, 0.0, 1e-9);
  const LpResult red = SolveSimplex(reduced.lp);
  ASSERT_EQ(red.status, LpStatus::kOptimal);
  EXPECT_NEAR(RelativeError(exact.objective, red.objective), 1.0, 1e-6);
}

TEST_P(LpDifferentialTest, FullRefinementRecoversExactOptimum) {
  // The anytime refiner driven to an unlimited budget degenerates to the
  // identity reduction: stable matrix coloring (q = 0) and the exact
  // optimum. (Across *capped* budgets max_q may wiggle — a cap can
  // truncate a monotone refinement step mid-recovery — so monotonicity is
  // only asserted for uncapped Step(), in coloring_rothko_property_test.)
  const LpProblem lp = MakeNugentLikeLp(5, GetParam());
  const LpResult exact = SolveSimplex(lp);
  ASSERT_EQ(exact.status, LpStatus::kOptimal);

  LpReduceOptions options;
  LpColoringRefiner refiner(lp, options);
  ReducedLp previous = refiner.ReduceTo(10);  // capped checkpoint first
  EXPECT_GE(previous.max_q, 0.0);
  const ReducedLp full =
      refiner.ReduceTo(static_cast<ColorId>(lp.num_rows + lp.num_cols + 2));
  EXPECT_NEAR(full.max_q, 0.0, 1e-9);
  const LpResult red = SolveSimplex(full.lp);
  ASSERT_EQ(red.status, LpStatus::kOptimal);
  EXPECT_NEAR(RelativeError(exact.objective, red.objective), 1.0, 1e-6);
}

TEST_P(LpDifferentialTest, EvalRunnerFindsNoViolations) {
  eval::EvalOptions options;
  options.seed = GetParam();
  const eval::DifferentialReport report =
      eval::DifferentialRunner(options).CheckLp(MakeWideSupportLp(5, GetParam()),
                                                {8, 16, 24});
  EXPECT_TRUE(report.ok()) << report.Summary();
}

INSTANTIATE_TEST_SUITE_P(Sweep, LpDifferentialTest,
                         testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

}  // namespace
}  // namespace qsc
