#include "qsc/eval/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace qsc {
namespace eval {
namespace {

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonNumberTest, ShortestRoundTrippableForm) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(1.0 / 3.0), "0.3333333333333333");
  // Non-finite values have no JSON encoding.
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonNumberTest, Deterministic) {
  const double value = 0.1 + 0.2;  // classic non-exact double
  EXPECT_EQ(JsonNumber(value), JsonNumber(value));
  double parsed = 0.0;
  sscanf(JsonNumber(value).c_str(), "%lf", &parsed);
  EXPECT_EQ(parsed, value);  // round-trips exactly
}

TEST(JsonWriterTest, CompactDocument) {
  JsonWriter w;
  w.BeginObject();
  w.KV("name", "maxflow/grid");
  w.KV("seed", uint64_t{42});
  w.KV("ok", true);
  w.Key("runs");
  w.BeginArray();
  w.Value(1.5);
  w.Null();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"maxflow/grid\",\"seed\":42,\"ok\":true,"
            "\"runs\":[1.5,null]}");
}

TEST(JsonWriterTest, PrettyDocumentIndents) {
  JsonWriter w(/*pretty=*/true);
  w.BeginObject();
  w.KV("a", int64_t{1});
  w.Key("b");
  w.BeginArray();
  w.Value(int64_t{2});
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("empty_obj");
  w.BeginObject();
  w.EndObject();
  w.Key("empty_arr");
  w.BeginArray();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"empty_obj\":{},\"empty_arr\":[]}");
}

TEST(JsonWriterTest, UnbalancedEndDies) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_DEATH(w.EndArray(), "QSC_CHECK");
}

TEST(JsonWriterTest, ValueWithoutKeyInObjectDies) {
  JsonWriter w;
  w.BeginObject();
  EXPECT_DEATH(w.Value(1.0), "QSC_CHECK");
}

}  // namespace
}  // namespace eval
}  // namespace qsc
