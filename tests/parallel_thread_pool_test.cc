// qsc/parallel: the thread pool and the deterministic loop primitives.
// The load-bearing properties are (1) every index runs exactly once, (2)
// ParallelReduce and ParallelOrderedFor produce bit-identical results for
// every pool size at a fixed grain, and (3) reentrant and concurrent
// submissions neither deadlock nor lose work. The CI `thread` sanitizer
// job runs this binary under TSan (ParallelSuites in .github/workflows).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "qsc/parallel/parallel_for.h"
#include "qsc/parallel/thread_pool.h"

namespace qsc {
namespace {

TEST(ParallelThreadPoolTest, RunChunksExecutesEveryChunkOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.RunChunks(257, [&](int64_t chunk) { ++hits[chunk]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelThreadPoolTest, ZeroAndNegativeChunkCountsAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.RunChunks(0, [&](int64_t) { ++calls; });
  pool.RunChunks(-3, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int64_t> order;
  pool.RunChunks(5, [&](int64_t chunk) { order.push_back(chunk); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelThreadPoolTest, ReentrantSubmissionRunsInlineInOrder) {
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  std::atomic<int> ordered{1};
  pool.RunChunks(8, [&](int64_t) {
    // A nested RunChunks from a participating thread must execute inline
    // and in index order rather than deadlocking on busy workers.
    int64_t last = -1;
    bool in_order = true;
    pool.RunChunks(4, [&](int64_t inner) {
      in_order = in_order && inner == last + 1;
      last = inner;
      ++inner_total;
    });
    if (!in_order) ordered.store(0);
  });
  EXPECT_EQ(inner_total.load(), 8 * 4);
  EXPECT_EQ(ordered.load(), 1);
}

TEST(ParallelThreadPoolTest, ConcurrentExternalSubmissionsAllComplete) {
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr int64_t kChunks = 100;
  std::vector<std::atomic<int64_t>> totals(kSubmitters);
  for (auto& t : totals) t.store(0);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      pool.RunChunks(kChunks, [&, s](int64_t chunk) {
        totals[s].fetch_add(chunk + 1);
      });
    });
  }
  for (std::thread& t : submitters) t.join();
  for (const auto& t : totals) {
    EXPECT_EQ(t.load(), kChunks * (kChunks + 1) / 2);
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kSize = 10001;
  std::vector<int> hits(kSize, 0);
  // Each index writes only its own slot, so no synchronization is needed.
  ParallelFor(&pool, kSize, /*grain=*/64, [&](int64_t i) { ++hits[i]; });
  for (int64_t i = 0; i < kSize; ++i) ASSERT_EQ(hits[i], 1) << i;
}

TEST(ParallelForTest, NullPoolAndEmptyRangesAreSequentialNoOps) {
  std::vector<int64_t> order;
  ParallelFor(nullptr, 4, 1, [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3}));
  ParallelFor(nullptr, 0, 1, [&](int64_t) { FAIL(); });
  ThreadPool pool(2);
  ParallelFor(&pool, -5, 16, [&](int64_t) { FAIL(); });
}

TEST(ChunkGridTest, BoundariesDependOnlyOnSizeAndGrain) {
  const ChunkGrid grid{100, 32};
  ASSERT_EQ(grid.num_chunks(), 4);
  EXPECT_EQ(grid.begin(0), 0);
  EXPECT_EQ(grid.end(0), 32);
  EXPECT_EQ(grid.begin(3), 96);
  EXPECT_EQ(grid.end(3), 100);  // short tail chunk
  const ChunkGrid exact{64, 32};
  EXPECT_EQ(exact.num_chunks(), 2);
  EXPECT_EQ(exact.end(1), 64);
}

// The determinism contract: a floating-point reduction is not associative,
// so its value depends on the fold shape — but the fold shape depends only
// on the grain, so every pool size (including the sequential path) must
// produce the same bits.
TEST(ParallelReduceTest, SumBitIdenticalAcrossPoolSizes) {
  constexpr int64_t kSize = 5000;
  std::vector<double> values(kSize);
  for (int64_t i = 0; i < kSize; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto map = [&](int64_t i) { return values[i]; };
  auto combine = [](double a, double b) { return a + b; };

  const double reference =
      ParallelReduce(nullptr, kSize, /*grain=*/128, 0.0, map, combine);
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    for (int repeat = 0; repeat < 3; ++repeat) {
      const double sum =
          ParallelReduce(&pool, kSize, /*grain=*/128, 0.0, map, combine);
      ASSERT_EQ(sum, reference) << "threads=" << threads;
    }
  }
}

TEST(ParallelReduceTest, MaxMatchesSequentialFoldForAnyGrain) {
  constexpr int64_t kSize = 777;
  std::vector<double> values(kSize);
  for (int64_t i = 0; i < kSize; ++i) {
    values[i] = static_cast<double>((i * 2654435761u) % 10007);
  }
  double expected = values[0];
  for (double v : values) expected = std::max(expected, v);
  ThreadPool pool(4);
  for (const int64_t grain : {1, 7, 64, 1000}) {
    const double got = ParallelReduce(
        &pool, kSize, grain, values[0],
        [&](int64_t i) { return values[i]; },
        [](double a, double b) { return std::max(a, b); });
    // max is associative, so unlike a sum the result is grain-independent.
    EXPECT_EQ(got, expected) << "grain=" << grain;
  }
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const double got = ParallelReduce(
      &pool, 0, 16, 42.0, [](int64_t) { return 0.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(got, 42.0);
}

TEST(ParallelOrderedForTest, CommitsRunStrictlyInIndexOrder) {
  ThreadPool pool(8);
  constexpr int64_t kSize = 500;
  std::vector<int64_t> commit_order;
  std::vector<int> worked(kSize, 0);
  ParallelOrderedFor(
      &pool, kSize, [&](int64_t i) { worked[i] = 1; },
      // commit is serialized by the primitive: plain vector push is safe.
      [&](int64_t i) { commit_order.push_back(i); });
  ASSERT_EQ(commit_order.size(), static_cast<size_t>(kSize));
  for (int64_t i = 0; i < kSize; ++i) {
    EXPECT_EQ(commit_order[i], i);
    EXPECT_EQ(worked[i], 1);
  }
}

TEST(ParallelOrderedForTest, OrderedFloatAccumulationBitIdentical) {
  constexpr int64_t kSize = 300;
  auto run = [&](ThreadPool* pool) {
    std::vector<double> contributions(kSize);
    double acc = 0.0;
    ParallelOrderedFor(
        pool, kSize,
        [&](int64_t i) {
          contributions[i] = std::sin(static_cast<double>(i)) * 1e-3;
        },
        [&](int64_t i) { acc += contributions[i]; });
    return acc;
  };
  const double reference = run(nullptr);
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    ASSERT_EQ(run(&pool), reference) << "threads=" << threads;
  }
}

TEST(ParallelOrderedForTest, WorksFromInsideAPoolWorker) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.RunChunks(6, [&](int64_t) {
    std::vector<int64_t> order;
    ParallelOrderedFor(
        &pool, 5, [](int64_t) {}, [&](int64_t i) { order.push_back(i); });
    if (order == std::vector<int64_t>{0, 1, 2, 3, 4}) ++total;
  });
  EXPECT_EQ(total.load(), 6);
}

}  // namespace
}  // namespace qsc
