// The Compressor concurrency contract (docs/API.md): one session hammered
// from many threads must produce, for every query, exactly the result a
// single-threaded session produces for that (query, options) — coloring
// snapshots, flow bounds, LP objectives, and centrality scores all
// bitwise. Only stats *attribution* (hit vs recoloring for racing
// down-budget queries) may depend on arrival order; the totals still
// reconcile. The CI `thread` sanitizer job runs this binary under TSan.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "qsc/api/compressor.h"
#include "qsc/graph/generators.h"
#include "qsc/graph/graph.h"
#include "qsc/lp/generators.h"
#include "qsc/parallel/thread_pool.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

constexpr uint64_t kSeed = 20260729;

// A small directed scale-free graph: large enough that refinement takes
// real work, small enough that the TSan leg stays fast.
Graph StressGraph() {
  Rng rng(kSeed);
  const Graph ba = BarabasiAlbert(1500, 3, rng);
  return Graph::FromArcs(ba.num_nodes(), ba.Arcs(), /*undirected=*/false);
}

// The three query kinds exercised by the stress test; each maps to its
// own ColoringSpec in the session cache.
enum class Kind { kColoring, kMaxFlow, kCentrality };

struct StressQuery {
  Kind kind;
  ColorId budget;
};

// Deterministic per-thread schedule mixing up- and down-budget requests
// across the three specs.
std::vector<StressQuery> ScheduleFor(int thread_id) {
  const std::vector<ColorId> budgets = {8, 64, 16, 48, 12, 32, 96, 24};
  std::vector<StressQuery> schedule;
  for (int round = 0; round < 2; ++round) {
    for (const ColorId budget : budgets) {
      schedule.push_back(
          {static_cast<Kind>((thread_id + round +
                              static_cast<int>(budget)) %
                             3),
           budget});
    }
  }
  Rng rng(kSeed + static_cast<uint64_t>(thread_id));
  rng.Shuffle(schedule);
  return schedule;
}

struct QueryObservation {
  Kind kind;
  ColorId budget;
  double primary = 0.0;    // max_q / upper_bound / scores checksum proxy
  ColorId num_colors = 0;
  std::vector<double> scores;  // centrality only
  Partition coloring;          // coloring + flow queries
};

QueryObservation RunOne(Compressor& session, const StressQuery& query,
                        NodeId source, NodeId sink) {
  QueryObservation seen;
  seen.kind = query.kind;
  seen.budget = query.budget;
  QueryOptions options;
  options.max_colors = query.budget;
  switch (query.kind) {
    case Kind::kColoring: {
      const StatusOr<ColoringResult> result = session.Coloring(options);
      QSC_CHECK_OK(result);
      seen.primary = result->max_q;
      seen.num_colors = result->coloring->num_colors();
      seen.coloring = *result->coloring;
      break;
    }
    case Kind::kMaxFlow: {
      const StatusOr<FlowQueryResult> result =
          session.MaxFlow(source, sink, options);
      QSC_CHECK_OK(result);
      seen.primary = result->upper_bound;
      seen.num_colors = result->num_colors;
      seen.coloring = *result->coloring;
      break;
    }
    case Kind::kCentrality: {
      const StatusOr<CentralityQueryResult> result =
          session.Centrality(options);
      QSC_CHECK_OK(result);
      seen.num_colors = result->num_colors;
      seen.scores = result->scores;
      break;
    }
  }
  return seen;
}

// The satellite stress test: 8 threads, one shared session (which itself
// runs a 4-way pool inside queries), mixed up/down budgets across 3
// specs; every observation must equal the single-threaded oracle's answer
// for that (kind, budget).
TEST(CompressorConcurrencyTest, EightThreadsMatchSingleThreadedOracle) {
  const Graph g = StressGraph();
  const NodeId source = 0;
  const NodeId sink = g.num_nodes() - 1;

  ThreadPool pool(4);
  Compressor session(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g), &pool);

  constexpr int kThreads = 8;
  std::vector<std::vector<QueryObservation>> observations(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (const StressQuery& query : ScheduleFor(t)) {
          observations[t].push_back(RunOne(session, query, source, sink));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  // Single-threaded oracle: each (kind, budget) result is a deterministic
  // function of the spec and the budget — the whole point of the cache
  // contract — so one fresh query per distinct pair suffices.
  Compressor oracle(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g));
  std::map<std::pair<int, ColorId>, QueryObservation> expected;
  int64_t total_queries = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (const QueryObservation& seen : observations[t]) {
      ++total_queries;
      const std::pair<int, ColorId> key{static_cast<int>(seen.kind),
                                        seen.budget};
      auto it = expected.find(key);
      if (it == expected.end()) {
        it = expected
                 .emplace(key, RunOne(oracle, {seen.kind, seen.budget},
                                      source, sink))
                 .first;
      }
      const QueryObservation& want = it->second;
      ASSERT_EQ(seen.num_colors, want.num_colors)
          << "kind=" << static_cast<int>(seen.kind)
          << " budget=" << seen.budget;
      // Bitwise: the concurrent session must not perturb a single double.
      ASSERT_EQ(seen.primary, want.primary)
          << "kind=" << static_cast<int>(seen.kind)
          << " budget=" << seen.budget;
      ASSERT_TRUE(seen.coloring == want.coloring);
      ASSERT_EQ(seen.scores, want.scores);
    }
  }

  // Totals reconcile even though per-query attribution is order-dependent.
  const CompressorStats stats = session.stats();
  EXPECT_EQ(stats.coloring.lookups, total_queries);
  EXPECT_EQ(stats.coloring.misses, 3);  // one per spec
  EXPECT_EQ(stats.coloring.hits + stats.coloring.misses +
                stats.coloring.recolorings,
            stats.coloring.lookups);
}

// The same 8-thread stress under byte-budget eviction churn: a budget
// small enough that entries are evicted while sibling threads still
// query them. Every result must still equal the single-threaded
// unbudgeted oracle (eviction transparency under concurrency), and the
// stats invariant hits + misses + recolorings == lookups must survive
// the churn, with eviction actually observed.
TEST(CompressorConcurrencyTest, ByteBudgetChurnMatchesOracle) {
  const Graph g = StressGraph();
  const NodeId source = 0;
  const NodeId sink = g.num_nodes() - 1;

  ThreadPool pool(4);
  CompressorOptions session_options;
  session_options.coloring_cache_byte_budget = 1;  // evict everything idle
  Compressor session(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g), &pool,
      session_options);

  constexpr int kThreads = 8;
  std::vector<std::vector<QueryObservation>> observations(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (const StressQuery& query : ScheduleFor(t)) {
          observations[t].push_back(RunOne(session, query, source, sink));
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  Compressor oracle(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g));
  std::map<std::pair<int, ColorId>, QueryObservation> expected;
  int64_t total_queries = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (const QueryObservation& seen : observations[t]) {
      ++total_queries;
      const std::pair<int, ColorId> key{static_cast<int>(seen.kind),
                                        seen.budget};
      auto it = expected.find(key);
      if (it == expected.end()) {
        it = expected
                 .emplace(key, RunOne(oracle, {seen.kind, seen.budget},
                                      source, sink))
                 .first;
      }
      const QueryObservation& want = it->second;
      ASSERT_EQ(seen.num_colors, want.num_colors)
          << "kind=" << static_cast<int>(seen.kind)
          << " budget=" << seen.budget;
      ASSERT_EQ(seen.primary, want.primary)
          << "kind=" << static_cast<int>(seen.kind)
          << " budget=" << seen.budget;
      ASSERT_TRUE(seen.coloring == want.coloring);
      ASSERT_EQ(seen.scores, want.scores);
    }
  }

  const CompressorStats stats = session.stats();
  EXPECT_EQ(stats.coloring.lookups, total_queries);
  EXPECT_EQ(stats.coloring.hits + stats.coloring.misses +
                stats.coloring.recolorings,
            stats.coloring.lookups);
  // Under a 1-byte budget misses dominate: every idle entry is gone by
  // the time its spec comes around again (racing threads can still
  // share an in-flight entry, so hits are possible, not guaranteed).
  EXPECT_GT(stats.coloring.misses, 3);
  EXPECT_GT(stats.coloring.evictions, 0);
  EXPECT_EQ(stats.coloring.bytes_in_use, 0);
  EXPECT_GT(stats.coloring.peak_bytes, 0);
}

TEST(CompressorConcurrencyTest, ParallelBatchMatchesSequentialLoop) {
  const Graph g = StressGraph();
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (NodeId i = 0; i < 6; ++i) {
    pairs.push_back({i, g.num_nodes() - 1 - i});
  }
  pairs.push_back(pairs.front());  // a repeat, to exercise the shared spec

  QueryOptions options;
  options.max_colors = 24;

  ThreadPool pool(4);
  Compressor parallel_session(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g), &pool);
  const StatusOr<std::vector<FlowQueryResult>> batch =
      parallel_session.MaxFlowBatch(pairs, options);
  QSC_CHECK_OK(batch);

  Compressor sequential_session(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g));
  ASSERT_EQ(batch->size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    const StatusOr<FlowQueryResult> want = sequential_session.MaxFlow(
        pairs[i].first, pairs[i].second, options);
    QSC_CHECK_OK(want);
    EXPECT_EQ((*batch)[i].upper_bound, want->upper_bound) << "pair " << i;
    EXPECT_EQ((*batch)[i].num_colors, want->num_colors) << "pair " << i;
    EXPECT_TRUE(*(*batch)[i].coloring == *want->coloring) << "pair " << i;
  }

  // The repeated pair shares its spec's coloring: 7 lookups, 6 specs.
  const CompressorStats stats = parallel_session.stats();
  EXPECT_EQ(stats.coloring.lookups, 7);
  EXPECT_EQ(stats.coloring.misses, 6);
  EXPECT_EQ(stats.coloring.hits, 1);
}

TEST(CompressorConcurrencyTest, PooledCentralityBitIdenticalToSequential) {
  Rng rng(kSeed + 7);
  const Graph g = BarabasiAlbert(800, 3, rng);

  QueryOptions options;
  options.max_colors = 40;
  options.pivots_per_color = 2;

  ThreadPool pool(8);
  Compressor pooled(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g), &pool);
  Compressor sequential(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g));

  const StatusOr<CentralityQueryResult> got = pooled.Centrality(options);
  const StatusOr<CentralityQueryResult> want = sequential.Centrality(options);
  QSC_CHECK_OK(got);
  QSC_CHECK_OK(want);
  ASSERT_EQ(got->scores.size(), want->scores.size());
  for (size_t v = 0; v < got->scores.size(); ++v) {
    ASSERT_EQ(got->scores[v], want->scores[v]) << "node " << v;
  }
}

TEST(CompressorConcurrencyTest, ConcurrentSolveLpMatchesOracle) {
  BlockLpSpec spec;
  spec.num_row_groups = 4;
  spec.num_col_groups = 4;
  spec.rows_per_group = 6;
  spec.cols_per_group = 6;
  spec.seed = 11;
  const LpProblem lp_a = MakeBlockLp(spec);
  spec.seed = 12;
  const LpProblem lp_b = MakeBlockLp(spec);

  ThreadPool pool(4);
  Compressor session(Graph(), &pool);

  constexpr int kThreads = 8;
  const std::vector<ColorId> budgets = {8, 16, 12, 24};
  std::vector<std::vector<double>> objectives(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (size_t b = 0; b < budgets.size(); ++b) {
          QueryOptions options;
          options.max_colors = budgets[(b + static_cast<size_t>(t)) %
                                       budgets.size()];
          const StatusOr<LpQueryResult> result =
              session.SolveLp(t % 2 == 0 ? lp_a : lp_b, options);
          QSC_CHECK_OK(result);
          objectives[t].push_back(result->solution.objective);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  Compressor oracle;
  for (int t = 0; t < kThreads; ++t) {
    for (size_t b = 0; b < budgets.size(); ++b) {
      QueryOptions options;
      options.max_colors =
          budgets[(b + static_cast<size_t>(t)) % budgets.size()];
      const StatusOr<LpQueryResult> want =
          oracle.SolveLp(t % 2 == 0 ? lp_a : lp_b, options);
      QSC_CHECK_OK(want);
      EXPECT_EQ(objectives[t][b], want->solution.objective)
          << "thread " << t << " query " << b;
    }
  }

  const CompressorStats stats = session.stats();
  EXPECT_EQ(stats.lp_lookups, kThreads * static_cast<int64_t>(budgets.size()));
  EXPECT_EQ(stats.lp_misses, 2);  // one per distinct LP
  EXPECT_EQ(stats.lp_hits + stats.lp_misses + stats.lp_recolorings,
            stats.lp_lookups);
}

// Distinct coloring backends queried concurrently through one session:
// thread t hammers backend t mod 3 with mixed up/down budgets. Distinct
// backends are distinct specs, so they refine concurrently; every served
// coloring must equal the single-threaded oracle for that (backend,
// budget), and the per-backend stats rows must reconcile row by row
// (hits + misses + recolorings == lookups) under any interleaving. The CI
// TSan leg runs this against the registry's shared state.
TEST(CompressorConcurrencyTest, ConcurrentDistinctBackendsMatchOracle) {
  const Graph g = StressGraph();
  const std::vector<std::string> backends = {"rothko", "lp-rounding",
                                             "bucket"};

  ThreadPool pool(4);
  Compressor session(
      std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g), &pool);

  constexpr int kThreads = 6;
  const std::vector<ColorId> budgets = {8, 32, 16, 48, 12, 24};
  std::vector<std::vector<std::pair<ColorId, Partition>>> observations(
      kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        QueryOptions options;
        options.backend = backends[t % backends.size()];
        for (const ColorId budget : budgets) {
          options.max_colors = budget;
          const StatusOr<ColoringResult> result = session.Coloring(options);
          QSC_CHECK_OK(result);
          observations[t].emplace_back(budget, *result->coloring);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  // Single-threaded per-backend oracle sessions.
  for (int t = 0; t < kThreads; ++t) {
    Compressor oracle(
        std::shared_ptr<const Graph>(std::shared_ptr<const Graph>(), &g));
    QueryOptions options;
    options.backend = backends[t % backends.size()];
    for (const auto& [budget, coloring] : observations[t]) {
      options.max_colors = budget;
      const StatusOr<ColoringResult> want = oracle.Coloring(options);
      QSC_CHECK_OK(want);
      ASSERT_TRUE(coloring == *want->coloring)
          << options.backend << " budget " << budget;
    }
  }

  // Per-backend attribution reconciles row by row and sums to the totals.
  const CacheStats stats = session.stats().coloring;
  ASSERT_EQ(stats.per_backend.size(), backends.size());
  int64_t lookups = 0, attributed = 0;
  for (const auto& [name, row] : stats.per_backend) {
    EXPECT_EQ(row.hits + row.misses + row.recolorings, row.lookups) << name;
    EXPECT_EQ(row.lookups,
              static_cast<int64_t>(budgets.size()) * kThreads /
                  static_cast<int64_t>(backends.size()))
        << name;
    lookups += row.lookups;
    attributed += row.hits + row.misses + row.recolorings;
  }
  EXPECT_EQ(lookups, stats.lookups);
  EXPECT_EQ(attributed, stats.lookups);
  EXPECT_EQ(stats.lookups,
            static_cast<int64_t>(budgets.size()) * kThreads);
}

}  // namespace
}  // namespace qsc
