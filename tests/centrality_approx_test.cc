#include <gtest/gtest.h>

#include <cmath>

#include "qsc/centrality/brandes.h"
#include "qsc/centrality/color_pivot.h"
#include "qsc/centrality/path_sampling.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"
#include "qsc/util/stats.h"

namespace qsc {
namespace {

TEST(ColorPivotTest, DiscreteColoringIsExact) {
  Rng rng(1);
  const Graph g = ErdosRenyiGnm(30, 80, rng);
  ColorPivotOptions options;
  const auto approx = ApproximateBetweennessWithColoring(
      g, Partition::Discrete(30), options);
  const auto exact = BetweennessExact(g);
  for (NodeId v = 0; v < 30; ++v) {
    EXPECT_NEAR(approx.scores[v], exact[v], 1e-9);
  }
}

TEST(ColorPivotTest, HighRankCorrelationOnScaleFree) {
  Rng rng(2);
  const Graph g = BarabasiAlbert(500, 3, rng);
  ColorPivotOptions options;
  options.rothko.max_colors = 64;
  const auto approx = ApproximateBetweenness(g, options);
  const auto exact = BetweennessExact(g);
  EXPECT_GT(SpearmanCorrelation(approx.scores, exact), 0.85);
}

TEST(ColorPivotTest, MoreColorsImproveCorrelation) {
  Rng rng(3);
  const Graph g = BarabasiAlbert(400, 2, rng);
  const auto exact = BetweennessExact(g);
  double rho_small = 0.0, rho_large = 0.0;
  for (ColorId k : {4, 128}) {
    ColorPivotOptions options;
    options.rothko.max_colors = k;
    options.seed = 77;
    const auto approx = ApproximateBetweenness(g, options);
    const double rho = SpearmanCorrelation(approx.scores, exact);
    if (k == 4) {
      rho_small = rho;
    } else {
      rho_large = rho;
    }
  }
  EXPECT_GT(rho_large, rho_small - 0.05);
  EXPECT_GT(rho_large, 0.9);
}

TEST(ColorPivotTest, TelemetryPopulated) {
  Rng rng(4);
  const Graph g = BarabasiAlbert(200, 2, rng);
  ColorPivotOptions options;
  options.rothko.max_colors = 16;
  const auto approx = ApproximateBetweenness(g, options);
  EXPECT_EQ(approx.num_colors, 16);
  EXPECT_GE(approx.coloring_seconds, 0.0);
  EXPECT_GE(approx.solve_seconds, 0.0);
  EXPECT_EQ(approx.coloring.num_nodes(), 200);
}

TEST(ColorPivotTest, MultiplePivotsPerColor) {
  Rng rng(5);
  const Graph g = BarabasiAlbert(300, 2, rng);
  const auto exact = BetweennessExact(g);
  ColorPivotOptions options;
  options.rothko.max_colors = 20;
  options.pivots_per_color = 4;
  const auto approx = ApproximateBetweenness(g, options);
  EXPECT_GT(SpearmanCorrelation(approx.scores, exact), 0.8);
}

TEST(ColorPivotTest, OnePivotEstimateIsScaledDependency) {
  // With a single color, the estimate is n * delta_s for the sampled
  // pivot s — verify it matches one of the n possible dependency passes.
  const Graph g = CycleGraph(9);
  ColorPivotOptions options;
  options.rothko.max_colors = 1;
  const auto approx = ApproximateBetweenness(g, options);
  BrandesWorkspace ws(g);
  bool matched = false;
  for (NodeId s = 0; s < 9 && !matched; ++s) {
    std::vector<double> expected(9, 0.0);
    ws.AccumulateDependencies(s, 9.0, expected);
    bool all_equal = true;
    for (NodeId v = 0; v < 9; ++v) {
      all_equal &= std::abs(expected[v] - approx.scores[v]) < 1e-9;
    }
    matched |= all_equal;
  }
  EXPECT_TRUE(matched);
}

TEST(RkBaselineTest, VertexDiameterOnPath) {
  EXPECT_EQ(ApproximateVertexDiameter(PathGraph(10), 3), 10);
}

TEST(RkBaselineTest, SampleCountFollowsEpsilon) {
  Rng rng(6);
  const Graph g = BarabasiAlbert(200, 2, rng);
  RkOptions loose;
  loose.epsilon = 0.2;
  RkOptions tight;
  tight.epsilon = 0.05;
  const auto r_loose = BetweennessRk(g, loose);
  const auto r_tight = BetweennessRk(g, tight);
  EXPECT_GT(r_tight.samples, 10 * r_loose.samples);
}

TEST(RkBaselineTest, RanksCorrelateWithExact) {
  Rng rng(7);
  const Graph g = BarabasiAlbert(300, 3, rng);
  RkOptions options;
  options.epsilon = 0.03;
  const auto rk = BetweennessRk(g, options);
  const auto exact = BetweennessExact(g);
  EXPECT_GT(SpearmanCorrelation(rk.scores, exact), 0.7);
}

TEST(RkBaselineTest, ScoresAreNormalizedFractions) {
  Rng rng(8);
  const Graph g = BarabasiAlbert(100, 2, rng);
  const auto rk = BetweennessRk(g, RkOptions{});
  double total = 0.0;
  for (double s : rk.scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0 + 1e-9);
    total += s;
  }
  EXPECT_GT(total, 0.0);
}

TEST(RkBaselineTest, TinyGraphReturnsZeros) {
  const Graph g = PathGraph(2);
  const auto rk = BetweennessRk(g, RkOptions{});
  EXPECT_EQ(rk.samples, 0);
}

}  // namespace
}  // namespace qsc
