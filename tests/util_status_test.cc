#include "qsc/util/status.h"

#include <gtest/gtest.h>

namespace qsc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeNameTest, CoversAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("hello"));
  EXPECT_EQ(v->size(), 5u);
}

TEST(StatusOrTest, AccessingErrorValueDies) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_DEATH(v.value(), "QSC_CHECK");
}

TEST(CheckTest, PassingCheckDoesNothing) {
  QSC_CHECK(true);
  QSC_CHECK_EQ(1, 1);
  QSC_CHECK_LE(1, 2);
}

TEST(CheckTest, FailingCheckAborts) {
  EXPECT_DEATH(QSC_CHECK(1 == 2), "QSC_CHECK failed");
  EXPECT_DEATH(QSC_CHECK_GT(0, 1), "QSC_CHECK failed");
}

}  // namespace
}  // namespace qsc
