#include "qsc/centrality/brandes.h"

#include <gtest/gtest.h>

#include <vector>

#include "qsc/graph/datasets.h"
#include "qsc/graph/generators.h"
#include "qsc/util/random.h"

namespace qsc {
namespace {

// Brute-force betweenness via explicit shortest-path enumeration (BFS path
// counting per pair), used as ground truth on tiny graphs.
std::vector<double> BruteForceBetweenness(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<double> scores(n, 0.0);
  // all-pairs sigma via BFS from each source
  std::vector<std::vector<int32_t>> dist(n, std::vector<int32_t>(n, -1));
  std::vector<std::vector<double>> sigma(n, std::vector<double>(n, 0.0));
  for (NodeId s = 0; s < n; ++s) {
    std::vector<NodeId> queue{s};
    dist[s][s] = 0;
    sigma[s][s] = 1.0;
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      for (const NeighborEntry& e : g.OutNeighbors(u)) {
        if (dist[s][e.node] == -1) {
          dist[s][e.node] = dist[s][u] + 1;
          queue.push_back(e.node);
        }
        if (dist[s][e.node] == dist[s][u] + 1) {
          sigma[s][e.node] += sigma[s][u];
        }
      }
    }
  }
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t || sigma[s][t] == 0.0) continue;
      for (NodeId v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        if (dist[s][v] != -1 && dist[v][t] != -1 &&
            dist[s][v] + dist[v][t] == dist[s][t]) {
          scores[v] += sigma[s][v] * sigma[v][t] / sigma[s][t];
        }
      }
    }
  }
  return scores;
}

TEST(BrandesTest, PathGraphCenters) {
  // P5 (0-1-2-3-4): betweenness of middle node 2 is 2*(2*2)=8 (ordered
  // pairs), node 1 is 2*3 = 6, endpoints 0.
  const auto scores = BetweennessExact(PathGraph(5));
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[4], 0.0);
  EXPECT_DOUBLE_EQ(scores[2], 8.0);
  EXPECT_DOUBLE_EQ(scores[1], 6.0);
  EXPECT_DOUBLE_EQ(scores[3], 6.0);
}

TEST(BrandesTest, StarHub) {
  // Star with 5 leaves: hub lies on all 5*4 ordered leaf pairs.
  const auto scores = BetweennessExact(StarGraph(5));
  EXPECT_DOUBLE_EQ(scores[0], 20.0);
  for (NodeId v = 1; v <= 5; ++v) EXPECT_DOUBLE_EQ(scores[v], 0.0);
}

TEST(BrandesTest, CompleteGraphAllZero) {
  const auto scores = BetweennessExact(CompleteGraph(5));
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(BrandesTest, CycleEqualScores) {
  const auto scores = BetweennessExact(CycleGraph(7));
  for (NodeId v = 1; v < 7; ++v) {
    EXPECT_NEAR(scores[v], scores[0], 1e-9);
  }
  EXPECT_GT(scores[0], 0.0);
}

TEST(BrandesTest, MatchesBruteForceOnRandomGraphs) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = ErdosRenyiGnm(25, 60, rng);
    const auto fast = BetweennessExact(g);
    const auto slow = BruteForceBetweenness(g);
    for (NodeId v = 0; v < 25; ++v) {
      EXPECT_NEAR(fast[v], slow[v], 1e-9) << "trial " << trial << " v " << v;
    }
  }
}

TEST(BrandesTest, MatchesBruteForceOnDirected) {
  Rng rng(4);
  std::vector<EdgeTriple> arcs;
  for (int e = 0; e < 60; ++e) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(20));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(20));
    if (u != v) arcs.push_back({u, v, 1.0});
  }
  const Graph g = Graph::FromEdges(20, arcs, false);
  const auto fast = BetweennessExact(g);
  const auto slow = BruteForceBetweenness(g);
  for (NodeId v = 0; v < 20; ++v) EXPECT_NEAR(fast[v], slow[v], 1e-9);
}

TEST(BrandesTest, DisconnectedComponentsIndependent) {
  // Two P3s: middle nodes get betweenness 2 each (ordered pairs within
  // their component), no cross-component contribution.
  const Graph g = Graph::FromEdges(
      6, {{0, 1, 1.0}, {1, 2, 1.0}, {3, 4, 1.0}, {4, 5, 1.0}}, true);
  const auto scores = BetweennessExact(g);
  EXPECT_DOUBLE_EQ(scores[1], 2.0);
  EXPECT_DOUBLE_EQ(scores[4], 2.0);
  EXPECT_DOUBLE_EQ(scores[0], 0.0);
}

TEST(BrandesTest, Figure5PhenomenonSameColorDifferentCentrality) {
  // The stable coloring merges u and v (see coloring_stable_test), yet
  // their centralities differ — the paper's Figure-5 negative result.
  const auto ce = Figure5Graph();
  const auto scores = BetweennessExact(ce.graph);
  EXPECT_GT(scores[ce.u], scores[ce.v]);
  EXPECT_DOUBLE_EQ(scores[ce.v], 0.0);  // triangle node
}

TEST(BrandesWorkspaceTest, SingleSourceScaling) {
  const Graph g = PathGraph(4);
  std::vector<double> once(4, 0.0), twice(4, 0.0);
  BrandesWorkspace ws(g);
  ws.AccumulateDependencies(0, 1.0, once);
  ws.AccumulateDependencies(0, 2.0, twice);
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(twice[v], 2.0 * once[v]);
  }
}

TEST(BrandesWorkspaceTest, SumOverSourcesIsExact) {
  Rng rng(5);
  const Graph g = ErdosRenyiGnm(20, 50, rng);
  std::vector<double> accumulated(20, 0.0);
  BrandesWorkspace ws(g);
  for (NodeId s = 0; s < 20; ++s) {
    ws.AccumulateDependencies(s, 1.0, accumulated);
  }
  const auto exact = BetweennessExact(g);
  for (NodeId v = 0; v < 20; ++v) {
    EXPECT_NEAR(accumulated[v], exact[v], 1e-9);
  }
}

}  // namespace
}  // namespace qsc
